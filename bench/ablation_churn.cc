// Ablation: static vs epoch-versioned shard ownership under worker churn.
//
// The static shard map (bench/ablation_shards) prices every access against
// a table fixed at startup: each of the kMaxThreads possible home regions
// claims its hash shard forever, whether or not a thread ever lives there,
// and a cell's owner never changes. Epoch migration (Config::migrate)
// re-derives owners at every spawn/join boundary instead: only homes that
// have actually hosted a thread claim shards, a retiring worker's homes are
// inherited by its replacement, and the publisher freezes the shards it
// owns so other threads' reads need no sync until the owner changes again.
// Each owner change costs one OpCosts::sync publish charge, counted in
// shard_migrations.
//
// Expected shape: on the churn server — connection cells that outlive the
// worker generation that allocated them — static ownership never recovers
// (the allocating thread is gone, its shard stays foreign to the heir),
// while the epoch column decays with the shard count and lands near the
// true cross-thread share. Single-threaded workloads and the migrate-off
// column must be bit-identical to the static sweep at every shard count.
//
// Harness shape matches ablation_shards: one frontend build per workload,
// every (shard count × ownership model) configuration instruments its own
// clone, all cells run across the --jobs pool, and the sweep cross-checks
// that safe-store op counts never move.
#include <cstdio>

#include "bench/flags.h"
#include "src/support/stats.h"
#include "src/support/table.h"
#include "src/workloads/measure.h"

int main(int argc, char** argv) {
  const cpi::bench::Flags flags = cpi::bench::Parse(argc, argv);

  std::printf("Ablation — static vs epoch shard ownership under CPI (worker churn)\n\n");

  using cpi::core::Protection;
  using cpi::workloads::CellResult;
  using cpi::workloads::MeasureCell;

  const std::vector<uint32_t> shard_counts = {1, 2, 4, 8, 16, 64};

  // The churn server is the driving workload; the event-loop and
  // table4_concurrent scenarios ride along to show migration never hurts
  // workloads whose ownership is already static.
  std::vector<cpi::workloads::Workload> workloads = cpi::workloads::ChurnServer();
  for (const auto& w : cpi::workloads::EventLoop()) {
    workloads.push_back(w);
  }
  for (const auto& w : cpi::workloads::ConcurrentServer()) {
    workloads.push_back(w);
  }
  const auto built = cpi::workloads::BuildWorkloads(workloads, flags.scale, flags.jobs);
  const auto views = cpi::workloads::ModuleViews(built);

  // Per workload: vanilla baseline, then (static, epoch) at each shard count.
  std::vector<MeasureCell> cells;
  const size_t stride = 1 + 2 * shard_counts.size();
  cells.reserve(workloads.size() * stride);
  for (size_t wi = 0; wi < workloads.size(); ++wi) {
    MeasureCell vanilla;
    vanilla.workload = wi;
    vanilla.config = cpi::bench::BaseConfig(flags);
    cells.push_back(vanilla);
    for (uint32_t shards : shard_counts) {
      for (bool migrate : {false, true}) {
        MeasureCell cell;
        cell.workload = wi;
        cell.config = cpi::bench::BaseConfig(flags);
        cell.config.protection = Protection::kCpi;
        cell.config.shards = shards;
        cell.config.migrate = migrate;
        cells.push_back(cell);
      }
    }
  }
  const std::vector<CellResult> results =
      cpi::workloads::RunCells(workloads, views, cells, flags.jobs);

  std::vector<std::string> header = {"Benchmark"};
  for (uint32_t shards : shard_counts) {
    header.push_back("S=" + std::to_string(shards) + " st");
    header.push_back("S=" + std::to_string(shards) + " ep");
  }
  cpi::Table overhead_table(header);
  cpi::Table contended_table(header);
  const size_t n_cols = 2 * shard_counts.size();
  std::vector<std::vector<double>> overhead_cols(n_cols);
  std::vector<std::vector<double>> contended_cols(n_cols);
  uint64_t total_migrations = 0;
  for (size_t wi = 0; wi < workloads.size(); ++wi) {
    const CellResult& base = results[wi * stride];
    CPI_CHECK(base.status == cpi::vm::RunStatus::kOk);
    const double base_cycles = static_cast<double>(base.cycles);

    std::vector<std::string> overhead_row = {workloads[wi].name};
    std::vector<std::string> contended_row = {workloads[wi].name};
    for (size_t ci = 0; ci < n_cols; ++ci) {
      const CellResult& r = results[wi * stride + 1 + ci];
      CPI_CHECK(r.status == cpi::vm::RunStatus::kOk);
      // Ownership models only re-price accesses; behaviour must not move.
      CPI_CHECK(r.safe_store_ops == results[wi * stride + 1].safe_store_ops);
      const bool migrate = (ci & 1) != 0;
      // The epoch column at a given shard count never charges more
      // contended ops than the static column next to it.
      if (migrate) {
        CPI_CHECK(r.store_contended_ops <= results[wi * stride + ci].store_contended_ops);
        total_migrations += r.shard_migrations;
      } else {
        CPI_CHECK(r.shard_migrations == 0);
      }
      const double overhead =
          cpi::OverheadPercent(static_cast<double>(r.cycles), base_cycles);
      const double contended =
          r.safe_store_ops == 0
              ? 0.0
              : 100.0 * static_cast<double>(r.store_contended_ops) /
                    static_cast<double>(r.safe_store_ops);
      overhead_cols[ci].push_back(overhead);
      contended_cols[ci].push_back(contended);
      overhead_row.push_back(cpi::Table::FormatPercent(overhead));
      contended_row.push_back(cpi::Table::FormatPercent(contended));
    }
    overhead_table.AddRow(overhead_row);
    contended_table.AddRow(contended_row);
  }
  const auto add_average = [&](cpi::Table& table,
                               const std::vector<std::vector<double>>& cols) {
    table.AddSeparator();
    std::vector<std::string> avg = {"Average"};
    for (const auto& col : cols) {
      avg.push_back(cpi::Table::FormatPercent(cpi::Mean(col)));
    }
    table.AddRow(avg);
  };
  add_average(overhead_table, overhead_cols);
  add_average(contended_table, contended_cols);

  std::printf("CPI overhead vs vanilla, static (st) vs epoch (ep) ownership:\n\n");
  overhead_table.Print();
  std::printf("\nShare of safe-store ops paying the shard-crossing premium:\n\n");
  contended_table.Print();

  std::printf("\nEpoch publishes charged %llu shard-owner migrations in total\n"
              "(one OpCosts::sync each). The st columns reproduce the static\n"
              "ablation_shards pricing; the ep columns re-derive owners at every\n"
              "spawn/join so worker heirs stop paying for inherited connection\n"
              "cells and frozen read-mostly shards stop paying altogether.\n",
              static_cast<unsigned long long>(total_migrations));
  return 0;
}
