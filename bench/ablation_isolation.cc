// Ablation for §3.2.3: cost of the safe-region isolation mechanism.
//
// Segment protection and leak-proof information hiding add no per-access
// cost; SFI masks every regular memory operation, which the paper measured
// at "less than 5%" additional overhead. Expected shape: sfi column a few
// percent above the other two, which are identical.
#include <cstdio>

#include "src/support/stats.h"
#include "src/support/table.h"
#include "src/workloads/measure.h"

int main() {
  std::printf("Ablation (§3.2.3) — isolation mechanism cost under CPI\n\n");

  using cpi::core::Config;
  using cpi::core::Protection;
  using cpi::runtime::IsolationKind;

  cpi::Table table({"Benchmark", "segment", "info-hiding", "sfi"});
  std::map<IsolationKind, std::vector<double>> columns;
  for (const auto& w : cpi::workloads::SpecCpu2006()) {
    Config vanilla;
    auto base_module = w.build(1);
    auto base = cpi::core::InstrumentAndRun(*base_module, vanilla, w.input);
    const double base_cycles = static_cast<double>(base.counters.cycles);

    std::vector<std::string> row = {w.name};
    for (IsolationKind iso :
         {IsolationKind::kSegment, IsolationKind::kInfoHiding, IsolationKind::kSfi}) {
      Config config;
      config.protection = Protection::kCpi;
      config.isolation = iso;
      auto module = w.build(1);
      auto r = cpi::core::InstrumentAndRun(*module, config, w.input);
      CPI_CHECK(r.status == cpi::vm::RunStatus::kOk);
      const double overhead = cpi::OverheadPercent(
          static_cast<double>(r.counters.cycles), base_cycles);
      columns[iso].push_back(overhead);
      row.push_back(cpi::Table::FormatPercent(overhead));
    }
    table.AddRow(row);
  }
  table.AddSeparator();
  table.AddRow({"Average",
                cpi::Table::FormatPercent(cpi::Mean(columns[IsolationKind::kSegment])),
                cpi::Table::FormatPercent(cpi::Mean(columns[IsolationKind::kInfoHiding])),
                cpi::Table::FormatPercent(cpi::Mean(columns[IsolationKind::kSfi]))});
  table.Print();

  std::printf("\nPaper reference: \"the additional overhead introduced by SFI was less\n"
              "than 5%%\"; segments and info-hiding are free per-access.\n");
  return 0;
}
