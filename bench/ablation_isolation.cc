// Ablation for §3.2.3: cost of the safe-region isolation mechanism.
//
// Segment protection and leak-proof information hiding add no per-access
// cost; SFI masks every regular memory operation, which the paper measured
// at "less than 5%" additional overhead. Expected shape: sfi column a few
// percent above the other two, which are identical.
//
// Harness shape: each workload is frontend-built once; the vanilla baseline
// and every isolation configuration instrument their own clone, and all
// cells run across the --jobs pool.
#include <cstdio>

#include "bench/flags.h"
#include "src/support/stats.h"
#include "src/support/table.h"
#include "src/workloads/measure.h"

int main(int argc, char** argv) {
  const cpi::bench::Flags flags = cpi::bench::Parse(argc, argv);

  std::printf("Ablation (§3.2.3) — isolation mechanism cost under CPI\n\n");

  using cpi::core::Protection;
  using cpi::runtime::IsolationKind;
  using cpi::workloads::CellResult;
  using cpi::workloads::MeasureCell;

  const std::vector<IsolationKind> isolations = {
      IsolationKind::kSegment, IsolationKind::kInfoHiding, IsolationKind::kSfi};

  const auto& workloads = cpi::workloads::SpecCpu2006();
  const auto built = cpi::workloads::BuildWorkloads(workloads, flags.scale, flags.jobs);
  const auto views = cpi::workloads::ModuleViews(built);

  // Per workload: vanilla baseline, then CPI under each isolation kind.
  std::vector<MeasureCell> cells;
  const size_t stride = 1 + isolations.size();
  cells.reserve(workloads.size() * stride);
  for (size_t wi = 0; wi < workloads.size(); ++wi) {
    MeasureCell vanilla;
    vanilla.workload = wi;
    vanilla.config = cpi::bench::BaseConfig(flags);
    cells.push_back(vanilla);
    for (IsolationKind iso : isolations) {
      MeasureCell cell;
      cell.workload = wi;
      cell.config = cpi::bench::BaseConfig(flags);
      cell.config.protection = Protection::kCpi;
      cell.config.isolation = iso;
      cells.push_back(cell);
    }
  }
  const std::vector<CellResult> results =
      cpi::workloads::RunCells(workloads, views, cells, flags.jobs);

  cpi::Table table({"Benchmark", "segment", "info-hiding", "sfi"});
  std::map<IsolationKind, std::vector<double>> columns;
  for (size_t wi = 0; wi < workloads.size(); ++wi) {
    const CellResult& base = results[wi * stride];
    CPI_CHECK(base.status == cpi::vm::RunStatus::kOk);
    const double base_cycles = static_cast<double>(base.cycles);

    std::vector<std::string> row = {workloads[wi].name};
    for (size_t ii = 0; ii < isolations.size(); ++ii) {
      const CellResult& r = results[wi * stride + 1 + ii];
      CPI_CHECK(r.status == cpi::vm::RunStatus::kOk);
      const double overhead =
          cpi::OverheadPercent(static_cast<double>(r.cycles), base_cycles);
      columns[isolations[ii]].push_back(overhead);
      row.push_back(cpi::Table::FormatPercent(overhead));
    }
    table.AddRow(row);
  }
  table.AddSeparator();
  table.AddRow({"Average",
                cpi::Table::FormatPercent(cpi::Mean(columns[IsolationKind::kSegment])),
                cpi::Table::FormatPercent(cpi::Mean(columns[IsolationKind::kInfoHiding])),
                cpi::Table::FormatPercent(cpi::Mean(columns[IsolationKind::kSfi]))});
  table.Print();

  std::printf("\nPaper reference: \"the additional overhead introduced by SFI was less\n"
              "than 5%%\"; segments and info-hiding are free per-access.\n");
  return 0;
}
