// Ablation for §4 "Future MPX-based implementation": if bounds checks were
// executed by hardware (MPX-style bndcu/bndcl) their cycle cost disappears,
// while the metadata loads/stores remain. Expected shape: the mpx column
// strictly below software CPI, with the gap largest on check-heavy
// (pointer-intensive) workloads.
#include <cstdio>

#include "src/support/stats.h"
#include "src/support/table.h"
#include "src/workloads/measure.h"

int main() {
  std::printf("Ablation (§4) — projected hardware-assisted (MPX-style) CPI\n\n");

  using cpi::core::Config;
  using cpi::core::Protection;

  cpi::Table table({"Benchmark", "CPI (software)", "CPI (MPX-assisted)"});
  std::vector<double> sw;
  std::vector<double> hw;
  for (const auto& w : cpi::workloads::SpecCpu2006()) {
    Config vanilla;
    auto base_module = w.build(1);
    auto base = cpi::core::InstrumentAndRun(*base_module, vanilla, w.input);
    const double base_cycles = static_cast<double>(base.counters.cycles);

    auto measure = [&](bool mpx) {
      Config config;
      config.protection = Protection::kCpi;
      config.mpx_assist = mpx;
      auto module = w.build(1);
      auto r = cpi::core::InstrumentAndRun(*module, config, w.input);
      CPI_CHECK(r.status == cpi::vm::RunStatus::kOk);
      return cpi::OverheadPercent(static_cast<double>(r.counters.cycles), base_cycles);
    };
    const double software = measure(false);
    const double assisted = measure(true);
    sw.push_back(software);
    hw.push_back(assisted);
    table.AddRow({w.name, cpi::Table::FormatPercent(software),
                  cpi::Table::FormatPercent(assisted)});
  }
  table.AddSeparator();
  table.AddRow({"Average", cpi::Table::FormatPercent(cpi::Mean(sw)),
                cpi::Table::FormatPercent(cpi::Mean(hw))});
  table.Print();

  std::printf("\nThe paper projects (no numbers available at the time) that MPX-style\n"
              "hardware \"can reduce the overhead of a software-only CPI\" the way\n"
              "HardBound/Watchdog reduced SoftBound's. Expect assisted <= software on\n"
              "every row.\n");
  return 0;
}
