// Ablation for §4 "Future MPX-based implementation": if bounds checks were
// executed by hardware (MPX-style bndcu/bndcl) their cycle cost disappears,
// while the metadata loads/stores remain. Expected shape: the mpx column
// strictly below software CPI, with the gap largest on check-heavy
// (pointer-intensive) workloads.
//
// Harness shape: each workload is frontend-built once; the vanilla baseline
// and both CPI variants instrument their own clone, and all cells run
// across the --jobs pool.
#include <cstdio>

#include "bench/flags.h"
#include "src/support/stats.h"
#include "src/support/table.h"
#include "src/workloads/measure.h"

int main(int argc, char** argv) {
  const cpi::bench::Flags flags = cpi::bench::Parse(argc, argv);

  std::printf("Ablation (§4) — projected hardware-assisted (MPX-style) CPI\n\n");

  using cpi::core::Protection;
  using cpi::workloads::CellResult;
  using cpi::workloads::MeasureCell;

  const auto& workloads = cpi::workloads::SpecCpu2006();
  const auto built = cpi::workloads::BuildWorkloads(workloads, flags.scale, flags.jobs);
  const auto views = cpi::workloads::ModuleViews(built);

  // Per workload: vanilla baseline, software CPI, MPX-assisted CPI.
  std::vector<MeasureCell> cells;
  const size_t stride = 3;
  cells.reserve(workloads.size() * stride);
  for (size_t wi = 0; wi < workloads.size(); ++wi) {
    MeasureCell vanilla;
    vanilla.workload = wi;
    vanilla.config = cpi::bench::BaseConfig(flags);
    cells.push_back(vanilla);
    for (bool mpx : {false, true}) {
      MeasureCell cell;
      cell.workload = wi;
      cell.config = cpi::bench::BaseConfig(flags);
      cell.config.protection = Protection::kCpi;
      cell.config.mpx_assist = mpx;
      cells.push_back(cell);
    }
  }
  const std::vector<CellResult> results =
      cpi::workloads::RunCells(workloads, views, cells, flags.jobs);

  cpi::Table table({"Benchmark", "CPI (software)", "CPI (MPX-assisted)"});
  std::vector<double> sw;
  std::vector<double> hw;
  for (size_t wi = 0; wi < workloads.size(); ++wi) {
    const CellResult& base = results[wi * stride];
    CPI_CHECK(base.status == cpi::vm::RunStatus::kOk);
    const double base_cycles = static_cast<double>(base.cycles);

    auto overhead_at = [&](size_t offset) {
      const CellResult& r = results[wi * stride + offset];
      CPI_CHECK(r.status == cpi::vm::RunStatus::kOk);
      return cpi::OverheadPercent(static_cast<double>(r.cycles), base_cycles);
    };
    const double software = overhead_at(1);
    const double assisted = overhead_at(2);
    sw.push_back(software);
    hw.push_back(assisted);
    table.AddRow({workloads[wi].name, cpi::Table::FormatPercent(software),
                  cpi::Table::FormatPercent(assisted)});
  }
  table.AddSeparator();
  table.AddRow({"Average", cpi::Table::FormatPercent(cpi::Mean(sw)),
                cpi::Table::FormatPercent(cpi::Mean(hw))});
  table.Print();

  std::printf("\nThe paper projects (no numbers available at the time) that MPX-style\n"
              "hardware \"can reduce the overhead of a software-only CPI\" the way\n"
              "HardBound/Watchdog reduced SoftBound's. Expect assisted <= software on\n"
              "every row.\n");
  return 0;
}
