// Ablation — what the post-instrumentation optimizer buys (§5.2's
// prerequisite: the paper's low overheads assume the compiler optimizes
// *after* instrumentation; this table shows each scheme's overhead with the
// optimizer off (O0, the historical pipeline) and on (O1)).
//
// Per Table-1 workload and overhead scheme, the overhead is computed against
// the vanilla baseline *at the same opt level*, so the delta isolates what
// the optimizer recovers from the instrumentation rather than generic
// cleanups the baseline also enjoys.
#include <chrono>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/flags.h"
#include "src/core/scheme.h"
#include "src/support/stats.h"
#include "src/support/table.h"
#include "src/workloads/measure.h"

namespace {

using cpi::core::Protection;
using cpi::core::ProtectionScheme;
using cpi::workloads::CellResult;
using cpi::workloads::MeasureCell;

}  // namespace

int main(int argc, char** argv) {
  cpi::bench::Flags flags = cpi::bench::Parse(argc, argv);
  // The whole point of this driver is the O0-vs-ON comparison; default the
  // optimized level to 1 when --opt was not given.
  const int opt_level = flags.opt >= 1 ? flags.opt : 1;

  const auto schemes = cpi::core::SchemeRegistry::OverheadColumns();
  const auto& workloads = cpi::workloads::SpecCpu2006();

  const auto start = std::chrono::steady_clock::now();
  const auto built = cpi::workloads::BuildWorkloads(workloads, flags.scale, flags.jobs);
  const auto views = cpi::workloads::ModuleViews(built);

  // Per workload: vanilla at O0 and at O1, then each scheme at O0 and O1.
  const size_t stride = 2 * (1 + schemes.size());
  std::vector<MeasureCell> cells;
  cells.reserve(workloads.size() * stride);
  for (size_t wi = 0; wi < workloads.size(); ++wi) {
    for (int level : {0, opt_level}) {
      MeasureCell vanilla;
      vanilla.workload = wi;
      vanilla.config.opt_level = level;
      cells.push_back(vanilla);
    }
    for (const ProtectionScheme* s : schemes) {
      for (int level : {0, opt_level}) {
        MeasureCell cell;
        cell.workload = wi;
        cell.config.protection = s->id();
        cell.config.opt_level = level;
        cells.push_back(cell);
      }
    }
  }
  const std::vector<CellResult> results =
      cpi::workloads::RunCells(workloads, views, cells, flags.jobs);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();

  // Reduce, in cell order.
  struct Row {
    std::string workload;
    // scheme -> {O0 overhead pct, O1 overhead pct}
    std::map<Protection, std::pair<double, double>> overhead_pct;
  };
  std::vector<Row> rows;
  for (size_t wi = 0; wi < workloads.size(); ++wi) {
    const CellResult& vanilla_o0 = results[wi * stride];
    const CellResult& vanilla_o1 = results[wi * stride + 1];
    CPI_CHECK(vanilla_o0.status == cpi::vm::RunStatus::kOk);
    CPI_CHECK(vanilla_o1.status == cpi::vm::RunStatus::kOk);
    Row row;
    row.workload = workloads[wi].name;
    for (size_t si = 0; si < schemes.size(); ++si) {
      const CellResult& o0 = results[wi * stride + 2 + 2 * si];
      const CellResult& o1 = results[wi * stride + 2 + 2 * si + 1];
      CPI_CHECK(o0.status == cpi::vm::RunStatus::kOk);
      CPI_CHECK(o1.status == cpi::vm::RunStatus::kOk);
      row.overhead_pct[schemes[si]->id()] = {
          cpi::OverheadPercent(static_cast<double>(o0.cycles),
                               static_cast<double>(vanilla_o0.cycles)),
          cpi::OverheadPercent(static_cast<double>(o1.cycles),
                               static_cast<double>(vanilla_o1.cycles))};
    }
    rows.push_back(std::move(row));
  }

  std::map<Protection, std::pair<double, double>> average;
  for (const ProtectionScheme* s : schemes) {
    std::vector<double> o0s;
    std::vector<double> o1s;
    for (const Row& row : rows) {
      o0s.push_back(row.overhead_pct.at(s->id()).first);
      o1s.push_back(row.overhead_pct.at(s->id()).second);
    }
    average[s->id()] = {cpi::Mean(o0s), cpi::Mean(o1s)};
  }

  if (flags.json) {
    std::printf("{\"bench\":\"ablation_opt\",\"opt_level\":%d,\"wall_ms\":%.1f,\"rows\":[",
                opt_level, wall_ms);
    for (size_t i = 0; i < rows.size(); ++i) {
      std::printf("%s{\"workload\":\"%s\",\"overhead_pct\":{", i == 0 ? "" : ",",
                  rows[i].workload.c_str());
      for (size_t si = 0; si < schemes.size(); ++si) {
        const auto& [o0, o1] = rows[i].overhead_pct.at(schemes[si]->id());
        std::printf("%s\"%s\":{\"o0\":%.3f,\"o1\":%.3f}", si == 0 ? "" : ",",
                    schemes[si]->name(), o0, o1);
      }
      std::printf("}}");
    }
    std::printf("],\"average\":{");
    for (size_t si = 0; si < schemes.size(); ++si) {
      const auto& [o0, o1] = average.at(schemes[si]->id());
      std::printf("%s\"%s\":{\"o0\":%.3f,\"o1\":%.3f}", si == 0 ? "" : ",",
                  schemes[si]->name(), o0, o1);
    }
    std::printf("}}\n");
    return 0;
  }

  std::printf("Ablation — post-instrumentation optimizer (overhead at O0 vs O%d)\n\n",
              opt_level);
  std::vector<std::string> header = {"Benchmark"};
  for (const ProtectionScheme* s : schemes) {
    header.push_back(std::string(s->name()) + " O0");
    header.push_back(std::string(s->name()) + " O" + std::to_string(opt_level));
  }
  cpi::Table table(header);
  for (const Row& row : rows) {
    std::vector<std::string> cells_out = {row.workload};
    for (const ProtectionScheme* s : schemes) {
      const auto& [o0, o1] = row.overhead_pct.at(s->id());
      cells_out.push_back(cpi::Table::FormatPercent(o0));
      cells_out.push_back(cpi::Table::FormatPercent(o1));
    }
    table.AddRow(cells_out);
  }
  table.AddSeparator();
  std::vector<std::string> avg_row = {"Average"};
  for (const ProtectionScheme* s : schemes) {
    const auto& [o0, o1] = average.at(s->id());
    avg_row.push_back(cpi::Table::FormatPercent(o0));
    avg_row.push_back(cpi::Table::FormatPercent(o1));
  }
  table.AddRow(avg_row);
  table.Print();

  std::printf("\nPaper reference (§5.2): the reported 8.4%% CPI / 1.9%% CPS averages\n"
              "assume post-instrumentation optimization; expect every protected\n"
              "column to drop from O0 to O%d, most for CPI (redundant safe-store\n"
              "gets and dominated bounds checks fold away).\n",
              opt_level);
  if (flags.timing) {
    std::printf("\nwall-clock: %.1f ms (scale %d, jobs %d)\n", wall_ms, flags.scale,
                flags.jobs);
  }
  return 0;
}
