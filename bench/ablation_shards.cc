// Ablation: safe-region sharding under contended multi-threaded servers.
//
// The concurrent cost model charges an access the OpCosts::sync premium
// exactly when the key's shard is not owned by the accessing thread
// (src/vm/machine.h). At one shard everything is shared — every concurrent
// access pays, the historical flat model. As the shard count grows, each
// thread's static home regions hash into shards of their own and the
// premium decays toward the workload's true cross-thread share (worker
// threads reading the spawner-owned handler table, producer/consumer
// hand-offs). Expected shape: overhead and contended-op share fall
// monotonically with the shard count and flatten once every home has a
// private shard.
//
// Harness shape: each workload is frontend-built once; the vanilla baseline
// and every shard-count configuration instrument their own clone, and all
// cells run across the --jobs pool. The sweep also cross-checks behaviour
// invariance: safe-store op counts must be identical at every shard count.
#include <cstdio>

#include "bench/flags.h"
#include "src/support/stats.h"
#include "src/support/table.h"
#include "src/workloads/measure.h"

int main(int argc, char** argv) {
  const cpi::bench::Flags flags = cpi::bench::Parse(argc, argv);

  std::printf("Ablation — safe-region shard count under CPI (concurrent servers)\n\n");

  using cpi::core::Protection;
  using cpi::workloads::CellResult;
  using cpi::workloads::MeasureCell;

  const std::vector<uint32_t> shard_counts = {1, 2, 4, 8, 16, 64};

  // The event-loop server is the driving workload; the table4_concurrent
  // scenarios ride along for breadth.
  std::vector<cpi::workloads::Workload> workloads = cpi::workloads::EventLoop();
  for (const auto& w : cpi::workloads::ConcurrentServer()) {
    workloads.push_back(w);
  }
  const auto built = cpi::workloads::BuildWorkloads(workloads, flags.scale, flags.jobs);
  const auto views = cpi::workloads::ModuleViews(built);

  // Per workload: vanilla baseline, then CPI at each shard count.
  std::vector<MeasureCell> cells;
  const size_t stride = 1 + shard_counts.size();
  cells.reserve(workloads.size() * stride);
  for (size_t wi = 0; wi < workloads.size(); ++wi) {
    MeasureCell vanilla;
    vanilla.workload = wi;
    vanilla.config = cpi::bench::BaseConfig(flags);
    cells.push_back(vanilla);
    for (uint32_t shards : shard_counts) {
      MeasureCell cell;
      cell.workload = wi;
      cell.config = cpi::bench::BaseConfig(flags);
      cell.config.protection = Protection::kCpi;
      cell.config.shards = shards;
      cells.push_back(cell);
    }
  }
  const std::vector<CellResult> results =
      cpi::workloads::RunCells(workloads, views, cells, flags.jobs);

  std::vector<std::string> header = {"Benchmark"};
  for (uint32_t shards : shard_counts) {
    header.push_back("S=" + std::to_string(shards));
  }
  cpi::Table overhead_table(header);
  cpi::Table contended_table(header);
  std::vector<std::vector<double>> overhead_cols(shard_counts.size());
  std::vector<std::vector<double>> contended_cols(shard_counts.size());
  for (size_t wi = 0; wi < workloads.size(); ++wi) {
    const CellResult& base = results[wi * stride];
    CPI_CHECK(base.status == cpi::vm::RunStatus::kOk);
    const double base_cycles = static_cast<double>(base.cycles);

    std::vector<std::string> overhead_row = {workloads[wi].name};
    std::vector<std::string> contended_row = {workloads[wi].name};
    for (size_t si = 0; si < shard_counts.size(); ++si) {
      const CellResult& r = results[wi * stride + 1 + si];
      CPI_CHECK(r.status == cpi::vm::RunStatus::kOk);
      // Sharding only re-prices accesses; it must never change behaviour.
      CPI_CHECK(r.safe_store_ops == results[wi * stride + 1].safe_store_ops);
      const double overhead =
          cpi::OverheadPercent(static_cast<double>(r.cycles), base_cycles);
      const double contended =
          r.safe_store_ops == 0
              ? 0.0
              : 100.0 * static_cast<double>(r.store_contended_ops) /
                    static_cast<double>(r.safe_store_ops);
      overhead_cols[si].push_back(overhead);
      contended_cols[si].push_back(contended);
      overhead_row.push_back(cpi::Table::FormatPercent(overhead));
      contended_row.push_back(cpi::Table::FormatPercent(contended));
    }
    overhead_table.AddRow(overhead_row);
    contended_table.AddRow(contended_row);
  }
  const auto add_average = [&](cpi::Table& table,
                               const std::vector<std::vector<double>>& cols) {
    table.AddSeparator();
    std::vector<std::string> avg = {"Average"};
    for (const auto& col : cols) {
      avg.push_back(cpi::Table::FormatPercent(cpi::Mean(col)));
    }
    table.AddRow(avg);
  };
  add_average(overhead_table, overhead_cols);
  add_average(contended_table, contended_cols);

  std::printf("CPI overhead vs vanilla at each shard count:\n\n");
  overhead_table.Print();
  std::printf("\nShare of safe-store ops paying the shard-crossing premium:\n\n");
  contended_table.Print();

  std::printf("\nS=1 is the historical flat model (every concurrent access pays the\n"
              "sync premium); the floor at high shard counts is the workload's true\n"
              "cross-thread share of safe-store traffic.\n");
  return 0;
}
