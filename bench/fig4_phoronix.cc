// Reproduces Fig. 4: Phoronix-style "server setting" suite under SafeStack,
// CPS and CPI.
//
// Expected shape: most benchmarks within a few percent for SafeStack/CPS;
// CPI noticeably higher only on the pointer-intensive entries, with pybench
// (boxed-interpreter profile) the outlier — matching the "suspiciously high
// overhead of the pybench benchmark" the paper calls out in §5.3.
#include <cstdio>

#include "src/support/table.h"
#include "src/workloads/measure.h"

int main() {
  std::printf("Fig. 4 — Phoronix suite performance overhead\n\n");

  using cpi::core::Protection;
  const std::vector<Protection> protections = {Protection::kSafeStack, Protection::kCps,
                                               Protection::kCpi};
  const auto measurements = cpi::workloads::MeasureWorkloads(
      cpi::workloads::Phoronix(), protections, /*scale=*/1);

  cpi::Table table({"Benchmark", "Safe Stack", "CPS", "CPI"});
  for (const auto& m : measurements) {
    table.AddRow({m.workload,
                  cpi::Table::FormatPercent(m.overhead_pct.at(Protection::kSafeStack)),
                  cpi::Table::FormatPercent(m.overhead_pct.at(Protection::kCps)),
                  cpi::Table::FormatPercent(m.overhead_pct.at(Protection::kCpi))});
  }
  table.Print();
  std::printf("\nPaper reference: most Phoronix overheads within measurement noise for\n"
              "SafeStack/CPS; pybench the clear CPI outlier.\n");
  return 0;
}
