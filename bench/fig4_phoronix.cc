// Reproduces Fig. 4: Phoronix-style "server setting" suite under every
// registry scheme that reports an overhead column.
//
// Expected shape: most benchmarks within a few percent for SafeStack/CPS;
// CPI noticeably higher only on the pointer-intensive entries, with pybench
// (boxed-interpreter profile) the outlier — matching the "suspiciously high
// overhead of the pybench benchmark" the paper calls out in §5.3.
#include <cstdio>

#include "bench/flags.h"
#include "src/core/scheme.h"
#include "src/support/table.h"
#include "src/workloads/measure.h"

int main(int argc, char** argv) {
  const cpi::bench::Flags flags = cpi::bench::Parse(argc, argv);

  std::printf("Fig. 4 — Phoronix suite performance overhead\n\n");

  using cpi::core::ProtectionScheme;
  const auto schemes = cpi::core::SchemeRegistry::OverheadColumns();
  const auto measurements = cpi::workloads::MeasureWorkloads(
      cpi::workloads::Phoronix(), cpi::workloads::OverheadProtections(), flags.scale,
      cpi::bench::BaseConfig(flags), flags.jobs);

  std::vector<std::string> header = {"Benchmark"};
  for (const ProtectionScheme* s : schemes) {
    header.push_back(s->name());
  }
  cpi::Table table(header);
  for (const auto& m : measurements) {
    std::vector<std::string> row = {m.workload};
    for (const ProtectionScheme* s : schemes) {
      row.push_back(cpi::Table::FormatPercent(m.OverheadPct(s->id())));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\nPaper reference: most Phoronix overheads within measurement noise for\n"
              "SafeStack/CPS; pybench the clear CPI outlier.\n");
  return 0;
}
