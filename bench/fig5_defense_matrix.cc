// Reproduces Fig. 5: the defense-mechanism comparison matrix — for each
// registry scheme (SchemeRegistry::DefenseRows), whether it stops all
// control-flow hijacks (measured against the full RIPE-style matrix) and its
// average performance overhead (measured on the SPEC workload models).
//
// Expected shape, matching the figure's right-hand columns:
//   memory safety (SoftBound) : stops all, huge overhead
//   CPI                       : stops all, single-digit overhead
//   CPS                       : stops all matrix attacks, ~2%
//   SafeStack                 : return addresses only, ~0%
//   stack cookies             : contiguous ret smashes only, ~0-2%
//   CFI (coarse)              : bypassable, moderate overhead
//   PtrEnc                    : stops all, CPS-like overhead, no safe region
#include <cstdio>

#include "bench/flags.h"
#include "src/attacks/ripe.h"
#include "src/core/scheme.h"
#include "src/support/stats.h"
#include "src/support/table.h"
#include "src/workloads/measure.h"

int main(int argc, char** argv) {
  const cpi::bench::Flags flags = cpi::bench::Parse(argc, argv);

  std::printf("Fig. 5 — control-flow hijack defense mechanisms\n\n");

  using cpi::core::Config;
  using cpi::core::Protection;
  using cpi::core::ProtectionScheme;

  // Measure overheads on a representative subset (full SPEC set under
  // SoftBound is slow and partially unrunnable; use the Table 3 approach).
  const std::vector<std::string> subset = {"401.bzip2", "447.dealII", "458.sjeng",
                                           "464.h264ref"};
  std::vector<cpi::workloads::Workload> workloads;
  for (const auto& name : subset) {
    workloads.push_back(*cpi::workloads::FindWorkload(name));
  }

  // One build per subset workload; every defense row instruments clones, and
  // all (workload x defense) cells run across the --jobs pool.
  const auto rows = cpi::core::SchemeRegistry::DefenseRows();
  std::vector<Protection> protections;
  for (const ProtectionScheme* s : rows) {
    protections.push_back(s->id());
  }
  const auto measurements = cpi::workloads::MeasureWorkloads(
      workloads, protections, flags.scale, cpi::bench::BaseConfig(flags), flags.jobs);

  cpi::Table table({"Mechanism", "Stops all control-flow hijacks?", "Avg overhead"});
  for (const ProtectionScheme* s : rows) {
    Config config = cpi::bench::BaseConfig(flags);
    config.protection = s->id();

    int hijacked = 0;
    int total = 0;
    for (const auto& r : cpi::attacks::RunAttackMatrix(config, flags.jobs)) {
      ++total;
      if (r.Hijacked()) {
        ++hijacked;
      }
    }

    std::vector<double> overheads;
    bool any_failed = false;
    for (const auto& m : measurements) {
      if (m.status.at(s->id()) != cpi::vm::RunStatus::kOk) {
        any_failed = true;
        continue;
      }
      overheads.push_back(m.overhead_pct.at(s->id()));
    }

    std::string verdict = hijacked == 0
                              ? "Yes"
                              : "No: " + std::to_string(hijacked) + "/" +
                                    std::to_string(total) + " attacks still hijack";
    std::string overhead = overheads.empty()
                               ? "n/a"
                               : cpi::Table::FormatPercent(cpi::Mean(overheads));
    if (any_failed) {
      overhead += " (some fail)";
    }
    table.AddRow({s->description(), verdict, overhead});
  }
  table.Print();

  std::printf("\nPaper reference (Fig. 5 avg overheads): memory safety 116%%, CPI 8.4%%,\n"
              "CPS 1.9%%, SafeStack ~0%%, cookies ~2%%, CFI 20%%. Only memory safety and\n"
              "CPI stop all hijacks; CPS stops all attacks in practice (all matrix\n"
              "attacks here); cookies/CFI are bypassed.\n");
  return 0;
}
