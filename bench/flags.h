// Shared CLI parsing for the bench drivers.
//
//   --json       machine-readable output (where the driver supports it)
//   --time       print harness wall-clock
//   --scale N    workload size multiplier (also accepts "small" == 1)
//   --jobs N     measurement-cell parallelism; 0 or omitted = hardware
//                concurrency, 1 = strictly serial (bit-identical tables
//                either way — only wall-clock changes)
//   --opt N      post-instrumentation optimization level (default 0; every
//                historical table is recorded at O0). Most drivers measure
//                at the given level; the suite instead keeps its standard
//                tables at O0 and adds the ablation_opt O0-vs-O1 table.
//   --engine E   VM execution tier: fused (default), decoded, reference.
//                Simulated counters — and therefore every table — are
//                bit-identical across tiers; only wall-clock changes.
//   --shards N   safe-pointer-store shard count (default 1 — the legacy
//                shared store every historical table is recorded at).
//                Behaviour is shard-count-invariant; cycles model per-shard
//                contention (see bench/ablation_shards).
//   --migrate    epoch-based shard-ownership migration (default off — the
//                static owner table every historical table is recorded
//                under). Only meaningful with --shards > 1: ownership then
//                republishes at spawn/join boundaries and readers take the
//                RCU-style epoch path (see bench/ablation_churn).
//   --scheme S   a registered scheme name ("cpi") or a composite spec
//                ("ptrenc+safestack") resolved through
//                core::SchemeRegistry::FindOrRegisterComposite. Unknown
//                components and write-conflicting stacks fail with usage +
//                exit 2, like any other bad argument. Drivers that sweep the
//                registry ignore it; drivers that evaluate one configuration
//                (e.g. bench/ripe_effectiveness) consume Flags::scheme.
#ifndef CPI_BENCH_FLAGS_H_
#define CPI_BENCH_FLAGS_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/core/levee.h"
#include "src/core/scheme.h"
#include "src/support/pool.h"

namespace cpi::bench {

struct Flags {
  bool json = false;
  bool timing = false;
  int scale = 1;
  int jobs = 0;  // resolved to ThreadPool::DefaultJobs() by Parse
  int opt = 0;   // core::Config::opt_level for the measured cells
  vm::EngineKind engine = vm::EngineKind::kFused;  // core::Config::engine
  uint32_t shards = 1;   // core::Config::shards for the measured cells
  bool migrate = false;  // core::Config::migrate for the measured cells
  // Resolved --scheme selection (nullptr: not given). Deliberately NOT
  // applied by BaseConfig: Config::scheme overrides Config::protection, so
  // auto-applying it would silently pin every cell of a registry-sweeping
  // driver to one scheme. Drivers opt in where a single-scheme evaluation
  // makes sense.
  const core::ProtectionScheme* scheme = nullptr;
};

// The Config every measured cell starts from under these flags.
inline core::Config BaseConfig(const Flags& flags) {
  core::Config config;
  config.opt_level = flags.opt;
  config.engine = flags.engine;
  config.shards = flags.shards;
  config.migrate = flags.migrate;
  return config;
}

inline void PrintUsage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json] [--time] [--scale N|small] [--jobs N] [--opt N] "
               "[--engine fused|decoded|reference] [--shards N] [--migrate] "
               "[--scheme NAME[+NAME...]]\n",
               argv0);
}

inline Flags Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      flags.json = true;
    } else if (std::strcmp(argv[i], "--time") == 0) {
      flags.timing = true;
    } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      ++i;
      flags.scale = std::strcmp(argv[i], "small") == 0 ? 1 : std::atoi(argv[i]);
      if (flags.scale < 1) {
        std::fprintf(stderr, "invalid --scale; using 1\n");
        flags.scale = 1;
      }
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      flags.jobs = std::atoi(argv[++i]);
      if (flags.jobs < 0) {
        flags.jobs = 0;
      }
    } else if (std::strcmp(argv[i], "--opt") == 0 && i + 1 < argc) {
      flags.opt = std::atoi(argv[++i]);
      if (flags.opt < 0) {
        std::fprintf(stderr, "invalid --opt; using 0\n");
        flags.opt = 0;
      }
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      const int n = std::atoi(argv[++i]);
      if (n < 1) {
        std::fprintf(stderr, "invalid --shards; using 1\n");
        flags.shards = 1;
      } else {
        flags.shards = static_cast<uint32_t>(n);
      }
    } else if (std::strcmp(argv[i], "--migrate") == 0) {
      flags.migrate = true;
    } else if (std::strcmp(argv[i], "--scheme") == 0 && i + 1 < argc) {
      ++i;
      std::string error;
      flags.scheme = core::SchemeRegistry::FindOrRegisterComposite(argv[i], &error);
      if (flags.scheme == nullptr) {
        std::fprintf(stderr, "bad --scheme: %s\n", error.c_str());
        PrintUsage(argv[0]);
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      ++i;
      if (std::strcmp(argv[i], "fused") == 0) {
        flags.engine = vm::EngineKind::kFused;
      } else if (std::strcmp(argv[i], "decoded") == 0) {
        flags.engine = vm::EngineKind::kDecoded;
      } else if (std::strcmp(argv[i], "reference") == 0) {
        flags.engine = vm::EngineKind::kReference;
      } else {
        std::fprintf(stderr, "unknown --engine: %s\n", argv[i]);
        PrintUsage(argv[0]);
        std::exit(2);
      }
    } else {
      // Unknown (or value-less) arguments used to be silently ignored, so a
      // typo like `--job 4` recorded a whole table under default settings.
      // Fail loudly instead.
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      PrintUsage(argv[0]);
      std::exit(2);
    }
  }
  if (flags.jobs == 0) {
    flags.jobs = ThreadPool::DefaultJobs();
  }
  if (flags.migrate && flags.shards == 1) {
    // Ownership of a single shard can never migrate: the flag combination is
    // legal (runs are byte-identical to plain --shards 1) but almost
    // certainly not what the user meant.
    std::fprintf(stderr,
                 "warning: --migrate with --shards 1 is a no-op (nothing to migrate); "
                 "pass --shards N>1 to enable epoch ownership\n");
  }
  return flags;
}

}  // namespace cpi::bench

#endif  // CPI_BENCH_FLAGS_H_
