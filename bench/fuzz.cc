// Standing differential fuzzing campaign (see docs/FUZZING.md).
//
//   ./fuzz --cases 500 --seed 7            # the CI acceptance invocation
//   ./fuzz --replay corpus/case-123.plan   # re-run one saved corpus entry
//
// Each case: generate a random well-typed program (src/fuzz/generator),
// run it across engines x schemes x opt levels x quanta x store
// organisations plus the fault-injection campaign (src/fuzz/differential),
// and flag any disagreement. Failures are auto-minimized by delta-debugging
// the generator's decision trace and written to the corpus directory with an
// exact repro command.
//
// This driver parses its own flags (the campaign surface is disjoint from
// the measurement drivers' bench/flags.h).
//
//   --cases N        programs to generate (default 100)
//   --seed S         base seed; case i uses seed S+i (default 1)
//   --jobs N         parallel cases; 0 = hardware concurrency (default 0)
//   --max-steps N    per-cell step budget (default 2000000)
//   --corpus-dir D   where failures and self-test entries are written
//   --replay FILE    replay one corpus entry instead of a campaign
//   --inject N       arm the self-test divergence at oracle-instruction
//                    threshold N (used by the printed self-test repro)
//   --no-hazards     generate only hazard-free programs
//   --no-threads     generate only single-threaded programs
//   --no-self-test   skip the end-of-campaign injected-divergence self-test
//   --json           machine-readable summary on stdout
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/core/scheme.h"
#include "src/fuzz/corpus.h"
#include "src/fuzz/differential.h"
#include "src/fuzz/generator.h"
#include "src/fuzz/minimize.h"
#include "src/support/pool.h"

namespace cpi {
namespace {

struct FuzzFlags {
  int cases = 100;
  uint64_t seed = 1;
  int jobs = 0;
  uint64_t max_steps = 2'000'000;
  std::string corpus_dir = "fuzz_corpus";
  std::string replay;
  uint64_t inject = 0;
  bool hazards = true;
  bool threads = true;
  bool self_test = true;
  bool json = false;
};

void PrintUsage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--cases N] [--seed S] [--jobs N] [--max-steps N]\n"
               "       [--corpus-dir DIR] [--replay FILE] [--inject N]\n"
               "       [--no-hazards] [--no-threads] [--no-self-test] [--json]\n",
               argv0);
}

FuzzFlags ParseFlags(int argc, char** argv) {
  FuzzFlags flags;
  for (int i = 1; i < argc; ++i) {
    auto value = [&](uint64_t* out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        PrintUsage(argv[0]);
        std::exit(2);
      }
      *out = std::strtoull(argv[++i], nullptr, 10);
    };
    if (std::strcmp(argv[i], "--cases") == 0) {
      uint64_t v = 0;
      value(&v);
      flags.cases = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      value(&flags.seed);
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      uint64_t v = 0;
      value(&v);
      flags.jobs = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--max-steps") == 0) {
      value(&flags.max_steps);
    } else if (std::strcmp(argv[i], "--inject") == 0) {
      value(&flags.inject);
    } else if (std::strcmp(argv[i], "--corpus-dir") == 0 && i + 1 < argc) {
      flags.corpus_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--replay") == 0 && i + 1 < argc) {
      flags.replay = argv[++i];
    } else if (std::strcmp(argv[i], "--no-hazards") == 0) {
      flags.hazards = false;
    } else if (std::strcmp(argv[i], "--no-threads") == 0) {
      flags.threads = false;
    } else if (std::strcmp(argv[i], "--no-self-test") == 0) {
      flags.self_test = false;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      flags.json = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      PrintUsage(argv[0]);
      std::exit(2);
    }
  }
  if (flags.cases < 1) {
    flags.cases = 1;
  }
  return flags;
}

fuzz::DiffOptions DiffOptionsFor(const FuzzFlags& flags) {
  fuzz::DiffOptions options;
  options.max_steps = flags.max_steps;
  options.inject_divergence_at = flags.inject;
  return options;
}

int Replay(const FuzzFlags& flags, const char* argv0) {
  fuzz::Plan plan;
  if (!fuzz::LoadPlanFile(flags.replay, &plan)) {
    std::fprintf(stderr, "%s: cannot load corpus entry %s\n", argv0, flags.replay.c_str());
    return 2;
  }
  const fuzz::CaseResult result = fuzz::RunCase(plan, DiffOptionsFor(flags));
  std::printf("replay %s: %s%s%s (%d cells, %d fuel-skips)\n", flags.replay.c_str(),
              fuzz::CaseStatusName(result.status), result.detail.empty() ? "" : " — ",
              result.detail.c_str(), result.cells_run, result.fuel_skips);
  return result.status == fuzz::CaseStatus::kPass ? 0 : 1;
}

struct SelfTestOutcome {
  bool detected = false;
  bool minimized = false;
  bool reproduced = false;
  size_t ops_before = 0;
  size_t ops_after = 0;
  std::string entry;
};

// End-of-campaign honesty check: arm the executor's deliberate misreport,
// confirm the campaign machinery catches it, shrinks it, and reproduces it
// from the corpus entry it wrote. A harness that cannot detect its own
// injected divergence cannot be trusted with real ones.
SelfTestOutcome RunSelfTest(const FuzzFlags& flags, const fuzz::GenOptions& gopts) {
  SelfTestOutcome outcome;
  fuzz::DiffOptions st = DiffOptionsFor(flags);
  st.inject_divergence_at = 500;
  st.fault_campaign = false;  // irrelevant to the injected signal; saves time

  fuzz::Plan plan;
  for (int k = 0; k < 10 && !outcome.detected; ++k) {
    plan = fuzz::MakePlan(flags.seed + 1000 + static_cast<uint64_t>(k), gopts);
    const fuzz::CaseResult r = fuzz::RunCase(plan, st);
    outcome.detected = r.status == fuzz::CaseStatus::kDivergence &&
                       r.detail.find("self-test") != std::string::npos;
  }
  if (!outcome.detected) {
    return outcome;
  }
  outcome.ops_before = plan.ops.size();

  const fuzz::MinimizeResult mr = fuzz::Minimize(plan, st, fuzz::CaseStatus::kDivergence);
  outcome.ops_after = mr.plan.ops.size();
  outcome.minimized = outcome.ops_after <= outcome.ops_before;

  std::filesystem::create_directories(flags.corpus_dir);
  outcome.entry = flags.corpus_dir + "/self-test.plan";
  if (!fuzz::SavePlanFile(outcome.entry, mr.plan)) {
    return outcome;
  }
  fuzz::Plan reloaded;
  if (fuzz::LoadPlanFile(outcome.entry, &reloaded)) {
    outcome.reproduced = fuzz::RunCase(reloaded, st).status == fuzz::CaseStatus::kDivergence;
  }
  return outcome;
}

int Main(int argc, char** argv) {
  const FuzzFlags flags = ParseFlags(argc, argv);
  if (!flags.replay.empty()) {
    return Replay(flags, argv[0]);
  }

  fuzz::GenOptions gopts;
  gopts.hazards = flags.hazards;
  gopts.threads = flags.threads;
  const fuzz::DiffOptions dopts = DiffOptionsFor(flags);

  const size_t n = static_cast<size_t>(flags.cases);
  std::vector<fuzz::CaseResult> results(n);
  std::vector<fuzz::Plan> plans(n);
  {
    ThreadPool pool(flags.jobs);
    pool.ParallelFor(n, [&](size_t i) {
      plans[i] = fuzz::MakePlan(flags.seed + i, gopts);
      results[i] = fuzz::RunCase(plans[i], dopts);
    });
  }

  int divergences = 0;
  int host_errors = 0;
  int fuel_skips = 0;
  long cells = 0;
  std::map<std::string, std::set<std::string>> coverage;  // scheme -> kinds
  for (size_t i = 0; i < n; ++i) {
    const fuzz::CaseResult& r = results[i];
    cells += r.cells_run;
    fuel_skips += r.fuel_skips;
    for (const auto& [scheme, kind] : r.fault_coverage) {
      coverage[scheme].insert(kind);
    }
    if (r.status == fuzz::CaseStatus::kPass) {
      continue;
    }
    (r.status == fuzz::CaseStatus::kDivergence ? divergences : host_errors) += 1;
    const uint64_t case_seed = flags.seed + i;
    std::fprintf(stderr, "case seed=%llu: %s — %s\n",
                 static_cast<unsigned long long>(case_seed), fuzz::CaseStatusName(r.status),
                 r.detail.c_str());
    // Shrink and persist so the failure outlives this campaign.
    const fuzz::MinimizeResult mr = fuzz::Minimize(plans[i], dopts, r.status);
    std::filesystem::create_directories(flags.corpus_dir);
    const std::string entry = flags.corpus_dir + "/case-" + std::to_string(case_seed) + ".plan";
    fuzz::SavePlanFile(entry, mr.plan);
    std::fprintf(stderr,
                 "  minimized %zu -> %zu ops; saved %s\n  repro: %s --replay %s%s\n",
                 plans[i].ops.size(), mr.plan.ops.size(), entry.c_str(), argv[0],
                 entry.c_str(), flags.inject != 0 ? " --inject ..." : "");
  }

  // Every scheme must have at least one landed-and-contained fault category.
  const size_t schemes_covered = coverage.size();
  const size_t schemes_total = cpi::core::SchemeRegistry::All().size();
  const bool coverage_ok = schemes_covered == schemes_total;

  SelfTestOutcome self_test;
  if (flags.self_test) {
    self_test = RunSelfTest(flags, gopts);
  }
  const bool self_test_ok =
      !flags.self_test || (self_test.detected && self_test.minimized && self_test.reproduced);

  if (flags.json) {
    std::printf("{\n");
    std::printf("  \"cases\": %d,\n", flags.cases);
    std::printf("  \"cells\": %ld,\n", cells);
    std::printf("  \"divergences\": %d,\n", divergences);
    std::printf("  \"host_errors\": %d,\n", host_errors);
    std::printf("  \"fuel_skips\": %d,\n", fuel_skips);
    std::printf("  \"fault_coverage_schemes\": %zu,\n", schemes_covered);
    std::printf("  \"fault_coverage\": {\n");
    size_t si = 0;
    for (const auto& [scheme, kinds] : coverage) {
      std::printf("    \"%s\": [", scheme.c_str());
      size_t ki = 0;
      for (const std::string& kind : kinds) {
        std::printf("%s\"%s\"", ki++ == 0 ? "" : ", ", kind.c_str());
      }
      std::printf("]%s\n", ++si == coverage.size() ? "" : ",");
    }
    std::printf("  },\n");
    if (flags.self_test) {
      std::printf("  \"self_test\": {\"detected\": %s, \"minimized\": %s, \"reproduced\": %s, "
                  "\"ops_before\": %zu, \"ops_after\": %zu},\n",
                  self_test.detected ? "true" : "false", self_test.minimized ? "true" : "false",
                  self_test.reproduced ? "true" : "false", self_test.ops_before,
                  self_test.ops_after);
    }
    std::printf("  \"ok\": %s\n", divergences == 0 && host_errors == 0 && coverage_ok && self_test_ok
                                      ? "true"
                                      : "false");
    std::printf("}\n");
  } else {
    std::printf("fuzz: %d cases, %ld cells — %d divergences, %d host errors, %d fuel-skips\n",
                flags.cases, cells, divergences, host_errors, fuel_skips);
    std::printf("fault coverage: %zu/%zu schemes with >=1 contained category\n",
                schemes_covered, schemes_total);
    if (flags.self_test) {
      std::printf("self-test: detected=%s minimized(%zu->%zu) reproduced=%s (%s)\n",
                  self_test.detected ? "yes" : "NO", self_test.ops_before, self_test.ops_after,
                  self_test.reproduced ? "yes" : "NO", self_test.entry.c_str());
    }
  }

  return divergences == 0 && host_errors == 0 && coverage_ok && self_test_ok ? 0 : 1;
}

}  // namespace
}  // namespace cpi

int main(int argc, char** argv) { return cpi::Main(argc, argv); }
