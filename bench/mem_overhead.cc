// Reproduces the §5.2 memory-overhead numbers: resident memory of the safe
// region for each safe-pointer-store organisation, for every scheme in the
// registry's overhead columns — plus the resident safe-store bytes
// themselves, which expose each scheme's runtime shape (PtrEnc seals
// pointers in place and therefore holds exactly 0 safe-store bytes).
//
// Expected shape (paper medians): SafeStack ~0.1%; CPS 2.1% (hash table) vs
// 5.6% (array); CPI 13.9% (hash table) vs 105% (array) — the sparse array
// trades memory for speed, the hash table the reverse.
//
// Harness shape: one frontend build per workload for the whole
// store x scheme sweep, then every (store, workload, scheme) configuration
// becomes an independent MeasureCell executed across the --jobs pool.
#include <chrono>
#include <cstdio>
#include <map>

#include "bench/flags.h"
#include "src/core/scheme.h"
#include "src/support/stats.h"
#include "src/support/table.h"
#include "src/workloads/measure.h"

int main(int argc, char** argv) {
  const cpi::bench::Flags flags = cpi::bench::Parse(argc, argv);

  using cpi::core::Protection;
  using cpi::core::ProtectionScheme;
  using cpi::runtime::StoreKind;
  using cpi::workloads::CellResult;
  using cpi::workloads::MeasureCell;

  const auto schemes = cpi::core::SchemeRegistry::OverheadColumns();
  const auto& workloads = cpi::workloads::SpecCpu2006();
  const std::vector<StoreKind> stores = {StoreKind::kHash, StoreKind::kTwoLevel,
                                         StoreKind::kArray};

  struct StoreResult {
    StoreKind store;
    std::map<Protection, double> median_overhead_pct;
    std::map<Protection, double> median_safe_store_bytes;
  };
  std::vector<StoreResult> results;

  const auto start = std::chrono::steady_clock::now();

  const auto built = cpi::workloads::BuildWorkloads(workloads, flags.scale, flags.jobs);
  const auto views = cpi::workloads::ModuleViews(built);

  // Cell order: first one vanilla baseline per workload (the baseline never
  // touches the safe store, so it is independent of the organisation), then
  // the full store x workload x scheme sweep.
  std::vector<MeasureCell> cells;
  cells.reserve(workloads.size() * (1 + stores.size() * schemes.size()));
  for (size_t wi = 0; wi < workloads.size(); ++wi) {
    MeasureCell cell;
    cell.workload = wi;
    cell.config = cpi::bench::BaseConfig(flags);
    cells.push_back(cell);
  }
  for (StoreKind store : stores) {
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
      for (const ProtectionScheme* s : schemes) {
        MeasureCell cell;
        cell.workload = wi;
        cell.config = cpi::bench::BaseConfig(flags);
        cell.config.protection = s->id();
        cell.config.store = store;
        cells.push_back(cell);
      }
    }
  }

  const std::vector<CellResult> cell_results =
      cpi::workloads::RunCells(workloads, views, cells, flags.jobs);

  // Deterministic reduction in cell order.
  size_t ci = 0;
  std::vector<double> base_mem(workloads.size());
  for (size_t wi = 0; wi < workloads.size(); ++wi, ++ci) {
    CPI_CHECK(cell_results[ci].status == cpi::vm::RunStatus::kOk);
    base_mem[wi] = static_cast<double>(cell_results[ci].memory_bytes);
  }
  for (StoreKind store : stores) {
    std::map<Protection, std::vector<double>> overheads;
    std::map<Protection, std::vector<double>> store_bytes;
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
      for (const ProtectionScheme* s : schemes) {
        const CellResult& r = cell_results[ci++];
        CPI_CHECK(r.status == cpi::vm::RunStatus::kOk);
        overheads[s->id()].push_back(cpi::OverheadPercent(
            static_cast<double>(r.memory_bytes), base_mem[wi]));
        store_bytes[s->id()].push_back(static_cast<double>(r.safe_store_bytes));
      }
    }
    StoreResult result;
    result.store = store;
    for (const ProtectionScheme* s : schemes) {
      result.median_overhead_pct[s->id()] = cpi::Median(overheads[s->id()]);
      result.median_safe_store_bytes[s->id()] = cpi::Median(store_bytes[s->id()]);
    }
    results.push_back(result);
  }

  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();

  if (flags.json) {
    std::printf("{\"bench\":\"mem_overhead\",\"wall_ms\":%.1f,\"stores\":[", wall_ms);
    for (size_t i = 0; i < results.size(); ++i) {
      std::printf("%s{\"store\":\"%s\",\"median_overhead_pct\":{",
                  i == 0 ? "" : ",", cpi::runtime::StoreKindName(results[i].store));
      for (size_t j = 0; j < schemes.size(); ++j) {
        std::printf("%s\"%s\":%.3f", j == 0 ? "" : ",", schemes[j]->name(),
                    results[i].median_overhead_pct.at(schemes[j]->id()));
      }
      std::printf("},\"median_safe_store_bytes\":{");
      for (size_t j = 0; j < schemes.size(); ++j) {
        std::printf("%s\"%s\":%.0f", j == 0 ? "" : ",", schemes[j]->name(),
                    results[i].median_safe_store_bytes.at(schemes[j]->id()));
      }
      std::printf("}}");
    }
    std::printf("]}\n");
    return 0;
  }

  std::printf("§5.2 — memory overhead of the safe region (median over SPEC models)\n\n");

  std::vector<std::string> header = {"Configuration"};
  for (const ProtectionScheme* s : schemes) {
    header.push_back(s->name());
  }
  cpi::Table table(header);
  for (const auto& result : results) {
    std::vector<std::string> row = {std::string("store = ") +
                                    cpi::runtime::StoreKindName(result.store)};
    for (const ProtectionScheme* s : schemes) {
      row.push_back(cpi::Table::FormatPercent(result.median_overhead_pct.at(s->id())));
    }
    table.AddRow(row);
  }
  table.Print();

  std::printf("\nMedian resident safe-store bytes (runtime shape per scheme):\n\n");
  cpi::Table bytes_table(header);
  for (const auto& result : results) {
    std::vector<std::string> row = {std::string("store = ") +
                                    cpi::runtime::StoreKindName(result.store)};
    for (const ProtectionScheme* s : schemes) {
      row.push_back(std::to_string(
          static_cast<uint64_t>(result.median_safe_store_bytes.at(s->id()))));
    }
    bytes_table.AddRow(row);
  }
  bytes_table.Print();

  std::printf("\nPaper reference (medians): safe stack 0.1%%; CPS 2.1%% hash / 5.6%% array;\n"
              "CPI 13.9%% hash / 105%% array. Expect hash << array for CPI, CPS well below\n"
              "CPI for every organisation, and ptrenc at exactly 0 safe-store bytes (its\n"
              "MACs live in the pointers' own high bits).\n");
  if (flags.timing) {
    std::printf("\nwall-clock: %.1f ms (build + instrument + run, all stores, "
                "scale %d, jobs %d)\n",
                wall_ms, flags.scale, flags.jobs);
  }
  return 0;
}
