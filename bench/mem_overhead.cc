// Reproduces the §5.2 memory-overhead numbers: resident memory of the safe
// region for each safe-pointer-store organisation, for every scheme in the
// registry's overhead columns — plus the resident safe-store bytes
// themselves, which expose each scheme's runtime shape (PtrEnc seals
// pointers in place and therefore holds exactly 0 safe-store bytes).
//
// Expected shape (paper medians): SafeStack ~0.1%; CPS 2.1% (hash table) vs
// 5.6% (array); CPI 13.9% (hash table) vs 105% (array) — the sparse array
// trades memory for speed, the hash table the reverse.
#include <cstdio>
#include <cstring>
#include <map>

#include "src/core/scheme.h"
#include "src/support/stats.h"
#include "src/support/table.h"
#include "src/workloads/measure.h"

int main(int argc, char** argv) {
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;

  using cpi::core::Config;
  using cpi::core::Protection;
  using cpi::core::ProtectionScheme;
  using cpi::runtime::StoreKind;

  const auto schemes = cpi::core::SchemeRegistry::OverheadColumns();

  struct StoreResult {
    StoreKind store;
    std::map<Protection, double> median_overhead_pct;
    std::map<Protection, double> median_safe_store_bytes;
  };
  std::vector<StoreResult> results;

  // The vanilla baseline never touches the safe store; measure it once per
  // workload rather than once per store organisation.
  std::map<std::string, double> base_mem_by_workload;
  for (const auto& w : cpi::workloads::SpecCpu2006()) {
    Config vanilla;
    auto base_module = w.build(1);
    auto base = cpi::core::InstrumentAndRun(*base_module, vanilla, w.input);
    base_mem_by_workload[w.name] = static_cast<double>(base.memory.TotalBytes());
  }

  for (StoreKind store : {StoreKind::kHash, StoreKind::kTwoLevel, StoreKind::kArray}) {
    std::map<Protection, std::vector<double>> overheads;
    std::map<Protection, std::vector<double>> store_bytes;
    for (const auto& w : cpi::workloads::SpecCpu2006()) {
      const double base_mem = base_mem_by_workload.at(w.name);

      for (const ProtectionScheme* s : schemes) {
        Config config;
        config.protection = s->id();
        config.store = store;
        auto module = w.build(1);
        auto r = cpi::core::InstrumentAndRun(*module, config, w.input);
        CPI_CHECK(r.status == cpi::vm::RunStatus::kOk);
        overheads[s->id()].push_back(cpi::OverheadPercent(
            static_cast<double>(r.memory.TotalBytes()), base_mem));
        store_bytes[s->id()].push_back(static_cast<double>(r.memory.safe_store_bytes));
      }
    }
    StoreResult result;
    result.store = store;
    for (const ProtectionScheme* s : schemes) {
      result.median_overhead_pct[s->id()] = cpi::Median(overheads[s->id()]);
      result.median_safe_store_bytes[s->id()] = cpi::Median(store_bytes[s->id()]);
    }
    results.push_back(result);
  }

  if (json) {
    std::printf("{\"bench\":\"mem_overhead\",\"stores\":[");
    for (size_t i = 0; i < results.size(); ++i) {
      std::printf("%s{\"store\":\"%s\",\"median_overhead_pct\":{",
                  i == 0 ? "" : ",", cpi::runtime::StoreKindName(results[i].store));
      for (size_t j = 0; j < schemes.size(); ++j) {
        std::printf("%s\"%s\":%.3f", j == 0 ? "" : ",", schemes[j]->name(),
                    results[i].median_overhead_pct.at(schemes[j]->id()));
      }
      std::printf("},\"median_safe_store_bytes\":{");
      for (size_t j = 0; j < schemes.size(); ++j) {
        std::printf("%s\"%s\":%.0f", j == 0 ? "" : ",", schemes[j]->name(),
                    results[i].median_safe_store_bytes.at(schemes[j]->id()));
      }
      std::printf("}}");
    }
    std::printf("]}\n");
    return 0;
  }

  std::printf("§5.2 — memory overhead of the safe region (median over SPEC models)\n\n");

  std::vector<std::string> header = {"Configuration"};
  for (const ProtectionScheme* s : schemes) {
    header.push_back(s->name());
  }
  cpi::Table table(header);
  for (const auto& result : results) {
    std::vector<std::string> row = {std::string("store = ") +
                                    cpi::runtime::StoreKindName(result.store)};
    for (const ProtectionScheme* s : schemes) {
      row.push_back(cpi::Table::FormatPercent(result.median_overhead_pct.at(s->id())));
    }
    table.AddRow(row);
  }
  table.Print();

  std::printf("\nMedian resident safe-store bytes (runtime shape per scheme):\n\n");
  cpi::Table bytes_table(header);
  for (const auto& result : results) {
    std::vector<std::string> row = {std::string("store = ") +
                                    cpi::runtime::StoreKindName(result.store)};
    for (const ProtectionScheme* s : schemes) {
      row.push_back(std::to_string(
          static_cast<uint64_t>(result.median_safe_store_bytes.at(s->id()))));
    }
    bytes_table.AddRow(row);
  }
  bytes_table.Print();

  std::printf("\nPaper reference (medians): safe stack 0.1%%; CPS 2.1%% hash / 5.6%% array;\n"
              "CPI 13.9%% hash / 105%% array. Expect hash << array for CPI, CPS well below\n"
              "CPI for every organisation, and ptrenc at exactly 0 safe-store bytes (its\n"
              "MACs live in the pointers' own high bits).\n");
  return 0;
}
