// Reproduces the §5.2 memory-overhead numbers: resident memory of the safe
// region for each safe-pointer-store organisation, for every scheme in the
// registry's overhead columns — plus the resident safe-store bytes
// themselves, which expose each scheme's runtime shape (PtrEnc seals
// pointers in place and therefore holds exactly 0 safe-store bytes).
//
// Expected shape (paper medians): SafeStack ~0.1%; CPS 2.1% (hash table) vs
// 5.6% (array); CPI 13.9% (hash table) vs 105% (array) — the sparse array
// trades memory for speed, the hash table the reverse.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "src/core/scheme.h"
#include "src/ir/clone.h"
#include "src/support/stats.h"
#include "src/support/table.h"
#include "src/workloads/measure.h"

int main(int argc, char** argv) {
  bool json = false;
  bool timing = false;
  int scale = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--time") == 0) {
      timing = true;
    } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::atoi(argv[++i]);
    }
  }
  if (scale < 1) {
    std::fprintf(stderr, "invalid --scale; using 1\n");
    scale = 1;
  }

  using cpi::core::Config;
  using cpi::core::Protection;
  using cpi::core::ProtectionScheme;
  using cpi::runtime::StoreKind;

  const auto schemes = cpi::core::SchemeRegistry::OverheadColumns();

  struct StoreResult {
    StoreKind store;
    std::map<Protection, double> median_overhead_pct;
    std::map<Protection, double> median_safe_store_bytes;
  };
  std::vector<StoreResult> results;

  const auto start = std::chrono::steady_clock::now();

  // One frontend build per workload for the whole store x scheme sweep:
  // every configuration instruments its own clone.
  std::vector<std::unique_ptr<cpi::ir::Module>> built;
  for (const auto& w : cpi::workloads::SpecCpu2006()) {
    built.push_back(w.build(scale));
  }

  // The vanilla baseline never touches the safe store; measure it once per
  // workload rather than once per store organisation.
  std::map<std::string, double> base_mem_by_workload;
  {
    size_t wi = 0;
    for (const auto& w : cpi::workloads::SpecCpu2006()) {
      Config vanilla;
      auto base_module = cpi::ir::CloneModule(*built[wi++]);
      auto base = cpi::core::InstrumentAndRun(*base_module, vanilla, w.input);
      base_mem_by_workload[w.name] = static_cast<double>(base.memory.TotalBytes());
    }
  }

  for (StoreKind store : {StoreKind::kHash, StoreKind::kTwoLevel, StoreKind::kArray}) {
    std::map<Protection, std::vector<double>> overheads;
    std::map<Protection, std::vector<double>> store_bytes;
    size_t wi = 0;
    for (const auto& w : cpi::workloads::SpecCpu2006()) {
      const double base_mem = base_mem_by_workload.at(w.name);
      const cpi::ir::Module& base_module = *built[wi++];

      for (const ProtectionScheme* s : schemes) {
        Config config;
        config.protection = s->id();
        config.store = store;
        auto module = cpi::ir::CloneModule(base_module);
        auto r = cpi::core::InstrumentAndRun(*module, config, w.input);
        CPI_CHECK(r.status == cpi::vm::RunStatus::kOk);
        overheads[s->id()].push_back(cpi::OverheadPercent(
            static_cast<double>(r.memory.TotalBytes()), base_mem));
        store_bytes[s->id()].push_back(static_cast<double>(r.memory.safe_store_bytes));
      }
    }
    StoreResult result;
    result.store = store;
    for (const ProtectionScheme* s : schemes) {
      result.median_overhead_pct[s->id()] = cpi::Median(overheads[s->id()]);
      result.median_safe_store_bytes[s->id()] = cpi::Median(store_bytes[s->id()]);
    }
    results.push_back(result);
  }

  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();

  if (json) {
    std::printf("{\"bench\":\"mem_overhead\",\"wall_ms\":%.1f,\"stores\":[", wall_ms);
    for (size_t i = 0; i < results.size(); ++i) {
      std::printf("%s{\"store\":\"%s\",\"median_overhead_pct\":{",
                  i == 0 ? "" : ",", cpi::runtime::StoreKindName(results[i].store));
      for (size_t j = 0; j < schemes.size(); ++j) {
        std::printf("%s\"%s\":%.3f", j == 0 ? "" : ",", schemes[j]->name(),
                    results[i].median_overhead_pct.at(schemes[j]->id()));
      }
      std::printf("},\"median_safe_store_bytes\":{");
      for (size_t j = 0; j < schemes.size(); ++j) {
        std::printf("%s\"%s\":%.0f", j == 0 ? "" : ",", schemes[j]->name(),
                    results[i].median_safe_store_bytes.at(schemes[j]->id()));
      }
      std::printf("}}");
    }
    std::printf("]}\n");
    return 0;
  }

  std::printf("§5.2 — memory overhead of the safe region (median over SPEC models)\n\n");

  std::vector<std::string> header = {"Configuration"};
  for (const ProtectionScheme* s : schemes) {
    header.push_back(s->name());
  }
  cpi::Table table(header);
  for (const auto& result : results) {
    std::vector<std::string> row = {std::string("store = ") +
                                    cpi::runtime::StoreKindName(result.store)};
    for (const ProtectionScheme* s : schemes) {
      row.push_back(cpi::Table::FormatPercent(result.median_overhead_pct.at(s->id())));
    }
    table.AddRow(row);
  }
  table.Print();

  std::printf("\nMedian resident safe-store bytes (runtime shape per scheme):\n\n");
  cpi::Table bytes_table(header);
  for (const auto& result : results) {
    std::vector<std::string> row = {std::string("store = ") +
                                    cpi::runtime::StoreKindName(result.store)};
    for (const ProtectionScheme* s : schemes) {
      row.push_back(std::to_string(
          static_cast<uint64_t>(result.median_safe_store_bytes.at(s->id()))));
    }
    bytes_table.AddRow(row);
  }
  bytes_table.Print();

  std::printf("\nPaper reference (medians): safe stack 0.1%%; CPS 2.1%% hash / 5.6%% array;\n"
              "CPI 13.9%% hash / 105%% array. Expect hash << array for CPI, CPS well below\n"
              "CPI for every organisation, and ptrenc at exactly 0 safe-store bytes (its\n"
              "MACs live in the pointers' own high bits).\n");
  if (timing) {
    std::printf("\nwall-clock: %.1f ms (build + instrument + run, all stores, scale %d)\n",
                wall_ms, scale);
  }
  return 0;
}
