// Reproduces the §5.2 memory-overhead numbers: resident memory of the safe
// region for each safe-pointer-store organisation, under SafeStack / CPS /
// CPI.
//
// Expected shape (paper medians): SafeStack ~0.1%; CPS 2.1% (hash table) vs
// 5.6% (array); CPI 13.9% (hash table) vs 105% (array) — the sparse array
// trades memory for speed, the hash table the reverse.
#include <cstdio>

#include "src/support/stats.h"
#include "src/support/table.h"
#include "src/workloads/measure.h"

int main() {
  std::printf("§5.2 — memory overhead of the safe region (median over SPEC models)\n\n");

  using cpi::core::Config;
  using cpi::core::Protection;
  using cpi::runtime::StoreKind;

  cpi::Table table({"Configuration", "safestack", "cps", "cpi"});
  for (StoreKind store : {StoreKind::kHash, StoreKind::kTwoLevel, StoreKind::kArray}) {
    std::map<Protection, std::vector<double>> overheads;
    for (const auto& w : cpi::workloads::SpecCpu2006()) {
      Config vanilla;
      auto base_module = w.build(1);
      auto base = cpi::core::InstrumentAndRun(*base_module, vanilla, w.input);
      const double base_mem = static_cast<double>(base.memory.TotalBytes());

      for (Protection p : {Protection::kSafeStack, Protection::kCps, Protection::kCpi}) {
        Config config;
        config.protection = p;
        config.store = store;
        auto module = w.build(1);
        auto r = cpi::core::InstrumentAndRun(*module, config, w.input);
        CPI_CHECK(r.status == cpi::vm::RunStatus::kOk);
        overheads[p].push_back(cpi::OverheadPercent(
            static_cast<double>(r.memory.TotalBytes()), base_mem));
      }
    }
    table.AddRow({std::string("store = ") + cpi::runtime::StoreKindName(store),
                  cpi::Table::FormatPercent(cpi::Median(overheads[Protection::kSafeStack])),
                  cpi::Table::FormatPercent(cpi::Median(overheads[Protection::kCps])),
                  cpi::Table::FormatPercent(cpi::Median(overheads[Protection::kCpi]))});
  }
  table.Print();

  std::printf("\nPaper reference (medians): safe stack 0.1%%; CPS 2.1%% hash / 5.6%% array;\n"
              "CPI 13.9%% hash / 105%% array. Expect hash << array for CPI, and CPS well\n"
              "below CPI for every organisation.\n");
  return 0;
}
