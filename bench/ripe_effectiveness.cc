// Reproduces §5.1: effectiveness on the RIPE-style attack matrix, one row
// per registry scheme (SchemeRegistry::RipeRows), so new defenses join the
// matrix automatically.
//
// Expected shape: the vanilla build is hijacked by (nearly) all attacks;
// stack cookies stop only contiguous return-address smashes; coarse CFI is
// bypassed by its valid-set targets; the safe stack stops all return-address
// attacks; CPS, CPI and PtrEnc stop everything (the paper's "Levee
// deterministically prevents all attacks, both in CPS and CPI mode" —
// PtrEnc reaches the same verdict with sealed pointers instead of a safe
// region).
#include <cstdio>

#include "bench/flags.h"
#include "src/attacks/ripe.h"
#include "src/core/scheme.h"
#include "src/support/table.h"

int main(int argc, char** argv) {
  const cpi::bench::Flags flags = cpi::bench::Parse(argc, argv);

  using cpi::core::Config;
  using cpi::core::Protection;
  using cpi::core::ProtectionScheme;

  const auto specs = cpi::attacks::GenerateAttackMatrix();
  std::printf("RIPE-style attack matrix: %zu attack combinations\n\n", specs.size());

  // --scheme evaluates one (possibly composite) scheme against the vanilla
  // row; the default sweeps every registry ripe_row.
  std::vector<const ProtectionScheme*> rows;
  if (flags.scheme != nullptr) {
    rows = {&cpi::core::SchemeRegistry::Get(Protection::kNone), flags.scheme};
  } else {
    rows = cpi::core::SchemeRegistry::RipeRows();
  }

  cpi::Table table({"Protection", "Hijacked", "Prevented", "Crashed", "No effect"});
  for (const ProtectionScheme* s : rows) {
    Config config = cpi::bench::BaseConfig(flags);
    config.protection = s->id();
    config.scheme = s;
    int counts[4] = {0, 0, 0, 0};
    for (const auto& r : cpi::attacks::RunAttackMatrix(config, flags.jobs)) {
      ++counts[static_cast<int>(r.outcome)];
    }
    table.AddRow({s->name(), std::to_string(counts[0]), std::to_string(counts[1]),
                  std::to_string(counts[2]), std::to_string(counts[3])});
  }
  table.Print();

  std::printf("\nDetailed CFI bypasses (the [19,15,9]-style attacks):\n");
  Config cfi = cpi::bench::BaseConfig(flags);
  cfi.protection = Protection::kCfi;
  for (const auto& r : cpi::attacks::RunAttackMatrix(cfi, flags.jobs)) {
    if (r.Hijacked()) {
      std::printf("  HIJACKED under CFI: %s\n", r.spec.Name().c_str());
    }
  }

  std::printf("\nPaper reference: vanilla Ubuntu 6.06 833-848/850 exploits succeed;\n"
              "with CPS or CPI, none do. Expect 0 hijacks for cps, cpi and ptrenc rows.\n");
  return 0;
}
