// Micro-benchmark of the three safe-pointer-store organisations (§4
// "Runtime support library"): wall-clock set/get throughput measured with
// google-benchmark, plus the simulated access-cost comparison the VM's cost
// model charges (array cheapest — the paper found the sparse array with
// superpages fastest — hash table paying probe costs).
#include <benchmark/benchmark.h>

#include "src/runtime/safe_store.h"
#include "src/support/rng.h"

namespace {

using cpi::runtime::CreateSafeStore;
using cpi::runtime::SafeEntry;
using cpi::runtime::StoreKind;
using cpi::runtime::TouchList;

void RunStoreMix(benchmark::State& state, StoreKind kind) {
  auto store = CreateSafeStore(kind);
  cpi::Rng rng(42);
  // A working set shaped like a safe pointer store's: pointer-sized slots
  // spread over a few megabytes of address space.
  std::vector<uint64_t> addrs;
  for (int i = 0; i < 4096; ++i) {
    addrs.push_back(0x400000 + rng.NextBelow(1 << 22) * 8);
  }
  // The working set is known up front: pre-size the organisation so the
  // measurement loop never pays rehash churn.
  store->Reserve(addrs.size());
  size_t i = 0;
  uint64_t touches = 0;
  for (auto _ : state) {
    const uint64_t addr = addrs[i++ & 4095];
    TouchList t;
    store->Set(addr, SafeEntry::Code(0x1000 + addr), &t);
    touches += t.count;
    TouchList t2;
    SafeEntry e = store->Get(addr, &t2);
    touches += t2.count;
    benchmark::DoNotOptimize(e);
  }
  state.counters["region_touches_per_op"] =
      benchmark::Counter(static_cast<double>(touches) / 2,
                         benchmark::Counter::kIsIterationInvariant);
  state.counters["resident_bytes"] = static_cast<double>(store->MemoryBytes());
}

void BM_ArrayStore(benchmark::State& state) { RunStoreMix(state, StoreKind::kArray); }
void BM_TwoLevelStore(benchmark::State& state) { RunStoreMix(state, StoreKind::kTwoLevel); }
void BM_HashStore(benchmark::State& state) { RunStoreMix(state, StoreKind::kHash); }

BENCHMARK(BM_ArrayStore);
BENCHMARK(BM_TwoLevelStore);
BENCHMARK(BM_HashStore);

}  // namespace

BENCHMARK_MAIN();
