// The unified bench suite: every paper table/figure in one process, sharing
// one frontend build per workload across all of them, with every
// (workload × configuration) measurement cell executed across the --jobs
// thread pool (src/support/pool.h).
//
//   suite                 human-readable report, all tables
//   suite --json          one consolidated machine-readable report
//   suite --scale N       workload size multiplier ("small" == 1)
//   suite --jobs N        cell parallelism (default: hardware concurrency)
//   suite --time          append wall-clock summary to the human report
//   suite --opt N         additionally emit the ablation_opt table (per-
//                         scheme overhead with the post-instrumentation
//                         optimizer off/on). The standard tables always run
//                         at O0 and stay byte-identical at any --opt value.
//
// Table values are bit-identical to the individual bench binaries at any
// --jobs value (the cost model is simulated; the pool only changes
// wall-clock). The JSON layout keeps everything that varies between runs
// (wall_ms, jobs, host concurrency) outside "tables", so
// `jq .tables` output is byte-stable and CI diffs it against the committed
// BENCH_pr4.json baseline (recorded at --opt 1; dropping its ablation_opt
// table recovers the BENCH_pr3.json O0 payload byte for byte).
//
// docs/PAPER_MAP.md maps each table emitted here back to the paper.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/flags.h"
#include "src/attacks/ripe.h"
#include "src/core/scheme.h"
#include "src/support/stats.h"
#include "src/support/table.h"
#include "src/vm/decode.h"
#include "src/workloads/measure.h"

namespace {

using cpi::Table;
using cpi::core::Config;
using cpi::core::Protection;
using cpi::core::ProtectionScheme;
using cpi::runtime::StoreKind;
using cpi::workloads::CellResult;
using cpi::workloads::MeasureCell;
using cpi::workloads::Measurement;
using cpi::workloads::Workload;

class Stopwatch {
 public:
  double Ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_ = Clock::now();
};

const char* SchemeName(Protection p) { return cpi::core::SchemeRegistry::Get(p).name(); }

// ---------------------------------------------------------------------------
// Per-table data, reduced once and rendered twice (human table / JSON).

struct OverheadTable {  // table1 / table3 / table4 / fig4 shape
  std::vector<const Measurement*> rows;
  std::vector<Protection> columns;
};

struct Fig5Row {
  const ProtectionScheme* scheme = nullptr;
  int hijacked = 0;
  int attacks = 0;
  bool some_fail = false;
  bool has_overhead = false;
  double avg_overhead_pct = 0;
};

struct AblationIsolation {
  std::vector<std::string> workloads;
  // column name -> per-workload overheads (column order fixed below)
  std::vector<std::pair<std::string, std::vector<double>>> columns;
};

struct AblationMpx {
  std::vector<std::string> workloads;
  std::vector<double> software_pct;
  std::vector<double> mpx_pct;
};

struct RipeRow {
  const ProtectionScheme* scheme = nullptr;
  int counts[4] = {0, 0, 0, 0};  // AttackOutcome order
};

// One composite-table row (SchemeRegistry::CompositeTableRows): SPEC
// overhead column plus both attack matrices, with the auth-abort count
// (kPointerAuthFailure verdicts) broken out — the ret-chain schemes turn
// ret-hijacks into exactly these.
struct CompositeRow {
  const ProtectionScheme* scheme = nullptr;
  std::vector<double> overhead_pct;  // per SPEC workload
  double avg_overhead_pct = 0;
  RipeRow ripe;
  RipeRow ripe_concurrent;
  int ripe_auth_aborts = 0;
  int ripec_auth_aborts = 0;
};

struct MemStoreRow {
  StoreKind store;
  std::map<Protection, double> median_overhead_pct;
  std::map<Protection, double> median_safe_store_bytes;
};

struct AblationOpt {
  std::vector<std::string> workloads;
  // scheme -> per-workload {O0, O1} overhead percents
  std::map<Protection, std::vector<std::pair<double, double>>> overhead_pct;
};

struct AblationShards {
  std::vector<uint32_t> shard_counts;
  std::vector<std::string> workloads;
  // [workload][shard-count] CPI overhead vs vanilla / contended-op share.
  std::vector<std::vector<double>> overhead_pct;
  std::vector<std::vector<double>> contended_pct;
};

struct AblationChurn {
  std::vector<uint32_t> shard_counts;
  std::vector<std::string> workloads;
  // [workload][shard-count], static ownership vs epoch migration
  // (Config::migrate). The epoch column's one-time publish charges are
  // counted in `migrations` (owner changes across the whole run).
  std::vector<std::vector<double>> static_overhead_pct;
  std::vector<std::vector<double>> epoch_overhead_pct;
  std::vector<std::vector<double>> static_contended_pct;
  std::vector<std::vector<double>> epoch_contended_pct;
  std::vector<std::vector<uint64_t>> migrations;
};

// ---------------------------------------------------------------------------
// JSON emission. Percents use %.3f like the standalone binaries.

void JsonOverheadMap(const Measurement& m, const std::vector<Protection>& columns) {
  std::printf("\"overhead_pct\":{");
  bool first = true;
  for (Protection p : columns) {
    if (m.status.count(p) != 0 && m.status.at(p) != cpi::vm::RunStatus::kOk) {
      continue;
    }
    std::printf("%s\"%s\":%.3f", first ? "" : ",", SchemeName(p), m.overhead_pct.at(p));
    first = false;
  }
  std::printf("}");
}

void JsonFailList(const Measurement& m, const std::vector<Protection>& columns) {
  std::printf("\"fails\":[");
  bool first = true;
  for (Protection p : columns) {
    if (m.status.count(p) != 0 && m.status.at(p) != cpi::vm::RunStatus::kOk) {
      std::printf("%s\"%s\"", first ? "" : ",", SchemeName(p));
      first = false;
    }
  }
  std::printf("]");
}

void JsonOverheadTable(const OverheadTable& t, bool lang, bool fails) {
  std::printf("{\"rows\":[");
  for (size_t i = 0; i < t.rows.size(); ++i) {
    const Measurement& m = *t.rows[i];
    std::printf("%s{\"workload\":\"%s\",", i == 0 ? "" : ",", m.workload.c_str());
    if (lang) {
      std::printf("\"lang\":\"%s\",", m.language.c_str());
    }
    JsonOverheadMap(m, t.columns);
    if (fails) {
      std::printf(",");
      JsonFailList(m, t.columns);
    }
    std::printf("}");
  }
  std::printf("]}");
}

// ---------------------------------------------------------------------------
// Human rendering.

void PrintOverheadTable(const char* title, const OverheadTable& t, bool lang) {
  std::printf("%s\n\n", title);
  std::vector<std::string> header = {"Benchmark"};
  if (lang) {
    header.push_back("Lang");
  }
  for (Protection p : t.columns) {
    header.push_back(SchemeName(p));
  }
  Table table(header);
  for (const Measurement* m : t.rows) {
    std::vector<std::string> row = {m->workload};
    if (lang) {
      row.push_back(m->language);
    }
    for (Protection p : t.columns) {
      if (m->status.count(p) != 0 && m->status.at(p) != cpi::vm::RunStatus::kOk) {
        row.push_back("fails");
      } else {
        row.push_back(Table::FormatPercent(m->overhead_pct.at(p)));
      }
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const cpi::bench::Flags flags = cpi::bench::Parse(argc, argv);
  const Stopwatch total;
  // Every measured cell honors --engine. The standard tables stay at O0
  // regardless of --opt (see bench/flags.h), so this base carries only the
  // engine knob; tables are bit-identical across engines anyway.
  Config engine_base;
  engine_base.engine = flags.engine;
  std::map<std::string, double> table_wall_ms;

  const std::vector<Protection> overhead_protections = cpi::workloads::OverheadProtections();

  // -------------------------------------------------------------------------
  // Shared builds + the SPEC sweep. One frontend build per SPEC workload
  // serves Table 1, Table 2, Table 3, Fig. 5's subset, both ablations and
  // the §5.2 memory sweep. The measurement adds the SoftBound column to the
  // overhead schemes so Table 3 falls out of the same sweep.
  Stopwatch spec_watch;
  const auto& spec = cpi::workloads::SpecCpu2006();
  const auto spec_built = cpi::workloads::BuildWorkloads(spec, flags.scale, flags.jobs);
  const auto spec_views = cpi::workloads::ModuleViews(spec_built);

  std::vector<Protection> spec_protections = overhead_protections;
  spec_protections.push_back(Protection::kSoftBound);
  const auto spec_ms = cpi::workloads::MeasureWorkloads(spec, spec_views,
                                                        spec_protections, engine_base, flags.jobs);

  OverheadTable table1;
  table1.columns = overhead_protections;
  for (const auto& m : spec_ms) {
    table1.rows.push_back(&m);
  }
  table_wall_ms["table1_spec_overhead"] = spec_watch.Ms();

  OverheadTable table3;
  table3.columns = spec_protections;
  table3.rows = table1.rows;

  // -------------------------------------------------------------------------
  // Table 2: static compilation statistics from the vanilla-cell stats of
  // the shared sweep (the classification defaults match the standalone
  // bench).
  table_wall_ms["table2_compile_stats"] = 0;  // amortised into the SPEC sweep

  // -------------------------------------------------------------------------
  // Ablations on the shared builds. The "segment" / "software" columns are
  // plain CPI, already measured by the SPEC sweep; only the variant
  // configurations add cells.
  Stopwatch iso_watch;
  const std::vector<std::pair<std::string, Config>> iso_variants = [&flags] {
    Config info;
    info.protection = Protection::kCpi;
    info.isolation = cpi::runtime::IsolationKind::kInfoHiding;
    info.engine = flags.engine;
    Config sfi;
    sfi.protection = Protection::kCpi;
    sfi.isolation = cpi::runtime::IsolationKind::kSfi;
    sfi.engine = flags.engine;
    return std::vector<std::pair<std::string, Config>>{{"info-hiding", info},
                                                       {"sfi", sfi}};
  }();
  std::vector<MeasureCell> iso_cells;
  iso_cells.reserve(spec.size() * iso_variants.size());
  for (size_t wi = 0; wi < spec.size(); ++wi) {
    for (const auto& [name, config] : iso_variants) {
      MeasureCell cell;
      cell.workload = wi;
      cell.config = config;
      iso_cells.push_back(cell);
    }
  }
  const auto iso_results = cpi::workloads::RunCells(spec, spec_views, iso_cells, flags.jobs);

  AblationIsolation iso;
  iso.columns = {{"segment", {}}, {"info-hiding", {}}, {"sfi", {}}};
  for (size_t wi = 0; wi < spec.size(); ++wi) {
    iso.workloads.push_back(spec[wi].name);
    iso.columns[0].second.push_back(spec_ms[wi].OverheadPct(Protection::kCpi));
    for (size_t vi = 0; vi < iso_variants.size(); ++vi) {
      const CellResult& r = iso_results[wi * iso_variants.size() + vi];
      CPI_CHECK(r.status == cpi::vm::RunStatus::kOk);
      iso.columns[1 + vi].second.push_back(cpi::OverheadPercent(
          static_cast<double>(r.cycles), static_cast<double>(spec_ms[wi].vanilla_cycles)));
    }
  }
  table_wall_ms["ablation_isolation"] = iso_watch.Ms();

  Stopwatch mpx_watch;
  std::vector<MeasureCell> mpx_cells;
  mpx_cells.reserve(spec.size());
  for (size_t wi = 0; wi < spec.size(); ++wi) {
    MeasureCell cell;
    cell.workload = wi;
    cell.config.protection = Protection::kCpi;
    cell.config.mpx_assist = true;
    cell.config.engine = flags.engine;
    mpx_cells.push_back(cell);
  }
  const auto mpx_results = cpi::workloads::RunCells(spec, spec_views, mpx_cells, flags.jobs);

  AblationMpx mpx;
  for (size_t wi = 0; wi < spec.size(); ++wi) {
    CPI_CHECK(mpx_results[wi].status == cpi::vm::RunStatus::kOk);
    mpx.workloads.push_back(spec[wi].name);
    mpx.software_pct.push_back(spec_ms[wi].OverheadPct(Protection::kCpi));
    mpx.mpx_pct.push_back(
        cpi::OverheadPercent(static_cast<double>(mpx_results[wi].cycles),
                             static_cast<double>(spec_ms[wi].vanilla_cycles)));
  }
  table_wall_ms["ablation_mpx"] = mpx_watch.Ms();

  // -------------------------------------------------------------------------
  // §5.2 memory sweep on the shared builds (vanilla footprints come from
  // the SPEC sweep's baseline cells).
  Stopwatch mem_watch;
  const std::vector<StoreKind> stores = {StoreKind::kHash, StoreKind::kTwoLevel,
                                         StoreKind::kArray};
  std::vector<MeasureCell> mem_cells;
  mem_cells.reserve(stores.size() * spec.size() * overhead_protections.size());
  for (StoreKind store : stores) {
    for (size_t wi = 0; wi < spec.size(); ++wi) {
      for (Protection p : overhead_protections) {
        MeasureCell cell;
        cell.workload = wi;
        cell.config.protection = p;
        cell.config.store = store;
        cell.config.engine = flags.engine;
        mem_cells.push_back(cell);
      }
    }
  }
  const auto mem_results = cpi::workloads::RunCells(spec, spec_views, mem_cells, flags.jobs);

  std::vector<MemStoreRow> mem_rows;
  {
    size_t ci = 0;
    for (StoreKind store : stores) {
      std::map<Protection, std::vector<double>> overheads;
      std::map<Protection, std::vector<double>> store_bytes;
      for (size_t wi = 0; wi < spec.size(); ++wi) {
        const double base_mem = static_cast<double>(spec_ms[wi].vanilla_memory_bytes);
        for (Protection p : overhead_protections) {
          const CellResult& r = mem_results[ci++];
          CPI_CHECK(r.status == cpi::vm::RunStatus::kOk);
          overheads[p].push_back(
              cpi::OverheadPercent(static_cast<double>(r.memory_bytes), base_mem));
          store_bytes[p].push_back(static_cast<double>(r.safe_store_bytes));
        }
      }
      MemStoreRow row;
      row.store = store;
      for (Protection p : overhead_protections) {
        row.median_overhead_pct[p] = cpi::Median(overheads[p]);
        row.median_safe_store_bytes[p] = cpi::Median(store_bytes[p]);
      }
      mem_rows.push_back(row);
    }
  }
  table_wall_ms["mem_overhead"] = mem_watch.Ms();

  // -------------------------------------------------------------------------
  // Fig. 4 (Phoronix) and Table 4 (web server) — their own workload sets,
  // built once each.
  Stopwatch fig4_watch;
  const auto phoronix_ms = cpi::workloads::MeasureWorkloads(
      cpi::workloads::Phoronix(), overhead_protections, flags.scale, engine_base,
      flags.jobs);
  OverheadTable fig4;
  fig4.columns = overhead_protections;
  for (const auto& m : phoronix_ms) {
    fig4.rows.push_back(&m);
  }
  table_wall_ms["fig4_phoronix"] = fig4_watch.Ms();

  Stopwatch table4_watch;
  const auto web_ms = cpi::workloads::MeasureWorkloads(
      cpi::workloads::WebServer(), overhead_protections, flags.scale, engine_base,
      flags.jobs);
  OverheadTable table4;
  table4.columns = overhead_protections;
  for (const auto& m : web_ms) {
    table4.rows.push_back(&m);
  }
  table_wall_ms["table4_webserver"] = table4_watch.Ms();

  // Table 4 "concurrent": the same scenarios as multi-worker servers on the
  // VM's thread scheduler (per-thread safe stacks, shared safe store), plus
  // the producer/consumer pair. Deterministic at any --jobs value and any
  // scheduler quantum — the differential tests enforce both.
  Stopwatch table4c_watch;
  const auto& mt_workloads = cpi::workloads::ConcurrentServer();
  const auto mt_built =
      cpi::workloads::BuildWorkloads(mt_workloads, flags.scale, flags.jobs);
  const auto mt_views = cpi::workloads::ModuleViews(mt_built);
  const auto mt_ms = cpi::workloads::MeasureWorkloads(
      mt_workloads, mt_views, overhead_protections, engine_base, flags.jobs);
  OverheadTable table4_concurrent;
  table4_concurrent.columns = overhead_protections;
  for (const auto& m : mt_ms) {
    table4_concurrent.rows.push_back(&m);
  }
  table_wall_ms["table4_concurrent"] = table4c_watch.Ms();

  // -------------------------------------------------------------------------
  // ablation_shards: the safe-region shard sweep over the event-loop server
  // plus the concurrent scenarios (the ConcurrentServer builds are shared
  // with Table 4). S=1 is the historical flat contention model; the sweep
  // cross-checks that sharding only re-prices accesses (identical
  // safe-store op counts at every shard count).
  Stopwatch shards_watch;
  const std::vector<uint32_t> shard_counts = {1, 2, 4, 8, 16, 64};
  const auto& ev_workloads = cpi::workloads::EventLoop();
  const auto ev_built =
      cpi::workloads::BuildWorkloads(ev_workloads, flags.scale, flags.jobs);
  std::vector<Workload> shard_workloads = ev_workloads;
  std::vector<const cpi::ir::Module*> shard_views =
      cpi::workloads::ModuleViews(ev_built);
  for (size_t wi = 0; wi < mt_workloads.size(); ++wi) {
    shard_workloads.push_back(mt_workloads[wi]);
    shard_views.push_back(mt_views[wi]);
  }
  std::vector<MeasureCell> shard_cells;
  const size_t shard_stride = 1 + shard_counts.size();
  shard_cells.reserve(shard_workloads.size() * shard_stride);
  for (size_t wi = 0; wi < shard_workloads.size(); ++wi) {
    MeasureCell vanilla;
    vanilla.workload = wi;
    vanilla.config = engine_base;
    shard_cells.push_back(vanilla);
    for (uint32_t shards : shard_counts) {
      MeasureCell cell;
      cell.workload = wi;
      cell.config = engine_base;
      cell.config.protection = Protection::kCpi;
      cell.config.shards = shards;
      shard_cells.push_back(cell);
    }
  }
  const auto shard_results =
      cpi::workloads::RunCells(shard_workloads, shard_views, shard_cells, flags.jobs);

  AblationShards shard_ablation;
  shard_ablation.shard_counts = shard_counts;
  for (size_t wi = 0; wi < shard_workloads.size(); ++wi) {
    const CellResult& base = shard_results[wi * shard_stride];
    CPI_CHECK(base.status == cpi::vm::RunStatus::kOk);
    shard_ablation.workloads.push_back(shard_workloads[wi].name);
    std::vector<double> overheads;
    std::vector<double> contended;
    for (size_t si = 0; si < shard_counts.size(); ++si) {
      const CellResult& r = shard_results[wi * shard_stride + 1 + si];
      CPI_CHECK(r.status == cpi::vm::RunStatus::kOk);
      CPI_CHECK(r.safe_store_ops == shard_results[wi * shard_stride + 1].safe_store_ops);
      overheads.push_back(cpi::OverheadPercent(static_cast<double>(r.cycles),
                                               static_cast<double>(base.cycles)));
      contended.push_back(r.safe_store_ops == 0
                              ? 0.0
                              : 100.0 * static_cast<double>(r.store_contended_ops) /
                                    static_cast<double>(r.safe_store_ops));
    }
    shard_ablation.overhead_pct.push_back(std::move(overheads));
    shard_ablation.contended_pct.push_back(std::move(contended));
  }
  table_wall_ms["ablation_shards"] = shards_watch.Ms();

  // -------------------------------------------------------------------------
  // ablation_churn: static vs epoch-versioned shard ownership. The churn
  // server retires and respawns its worker pool so connection cells outlive
  // the generation that allocated them; the event-loop and concurrent
  // scenarios ride along (their builds are shared with ablation_shards) to
  // show migration never charges more than the static table. Per shard
  // count the sweep runs a static and an epoch (Config::migrate) CPI cell
  // and cross-checks: identical safe-store op counts, epoch contended ops
  // <= static, and zero migrations with the flag off.
  Stopwatch churn_watch;
  const auto& churn_only = cpi::workloads::ChurnServer();
  const auto churn_built =
      cpi::workloads::BuildWorkloads(churn_only, flags.scale, flags.jobs);
  std::vector<Workload> churn_workloads = churn_only;
  std::vector<const cpi::ir::Module*> churn_views =
      cpi::workloads::ModuleViews(churn_built);
  churn_workloads.reserve(churn_only.size() + shard_workloads.size());
  churn_views.reserve(churn_only.size() + shard_workloads.size());
  for (size_t wi = 0; wi < shard_workloads.size(); ++wi) {
    churn_workloads.push_back(shard_workloads[wi]);
    churn_views.push_back(shard_views[wi]);
  }
  std::vector<MeasureCell> churn_cells;
  const size_t churn_stride = 1 + 2 * shard_counts.size();
  churn_cells.reserve(churn_workloads.size() * churn_stride);
  for (size_t wi = 0; wi < churn_workloads.size(); ++wi) {
    MeasureCell vanilla;
    vanilla.workload = wi;
    vanilla.config = engine_base;
    churn_cells.push_back(vanilla);
    for (uint32_t shards : shard_counts) {
      for (bool migrate : {false, true}) {
        MeasureCell cell;
        cell.workload = wi;
        cell.config = engine_base;
        cell.config.protection = Protection::kCpi;
        cell.config.shards = shards;
        cell.config.migrate = migrate;
        churn_cells.push_back(cell);
      }
    }
  }
  const auto churn_results =
      cpi::workloads::RunCells(churn_workloads, churn_views, churn_cells, flags.jobs);

  AblationChurn churn_ablation;
  churn_ablation.shard_counts = shard_counts;
  for (size_t wi = 0; wi < churn_workloads.size(); ++wi) {
    const CellResult& base = churn_results[wi * churn_stride];
    CPI_CHECK(base.status == cpi::vm::RunStatus::kOk);
    churn_ablation.workloads.push_back(churn_workloads[wi].name);
    std::vector<double> st_over, ep_over, st_cont, ep_cont;
    std::vector<uint64_t> migrations;
    for (size_t si = 0; si < shard_counts.size(); ++si) {
      const CellResult& st = churn_results[wi * churn_stride + 1 + 2 * si];
      const CellResult& ep = churn_results[wi * churn_stride + 2 + 2 * si];
      CPI_CHECK(st.status == cpi::vm::RunStatus::kOk);
      CPI_CHECK(ep.status == cpi::vm::RunStatus::kOk);
      CPI_CHECK(st.safe_store_ops == churn_results[wi * churn_stride + 1].safe_store_ops);
      CPI_CHECK(ep.safe_store_ops == st.safe_store_ops);
      CPI_CHECK(ep.store_contended_ops <= st.store_contended_ops);
      CPI_CHECK(st.shard_migrations == 0);
      const double base_cycles = static_cast<double>(base.cycles);
      const auto contended_share = [](const CellResult& r) {
        return r.safe_store_ops == 0
                   ? 0.0
                   : 100.0 * static_cast<double>(r.store_contended_ops) /
                         static_cast<double>(r.safe_store_ops);
      };
      st_over.push_back(
          cpi::OverheadPercent(static_cast<double>(st.cycles), base_cycles));
      ep_over.push_back(
          cpi::OverheadPercent(static_cast<double>(ep.cycles), base_cycles));
      st_cont.push_back(contended_share(st));
      ep_cont.push_back(contended_share(ep));
      migrations.push_back(ep.shard_migrations);
    }
    churn_ablation.static_overhead_pct.push_back(std::move(st_over));
    churn_ablation.epoch_overhead_pct.push_back(std::move(ep_over));
    churn_ablation.static_contended_pct.push_back(std::move(st_cont));
    churn_ablation.epoch_contended_pct.push_back(std::move(ep_cont));
    churn_ablation.migrations.push_back(std::move(migrations));
  }
  table_wall_ms["ablation_churn"] = churn_watch.Ms();

  // -------------------------------------------------------------------------
  // §5.1 RIPE matrix (one row per registry RipeRow) and Fig. 5 (defense
  // rows: matrix verdict + average overhead on the Table-3 subset).
  // One row per registry RipeRow scheme; `attacks` reports the matrix size
  // (the per-scheme result count — identical across schemes, since every
  // scheme runs the same spec list).
  const auto run_ripe_table = [&flags](
      std::vector<cpi::attacks::AttackResult> (*run)(const Config&, int),
      std::vector<RipeRow>* rows, int* attacks) {
    for (const ProtectionScheme* s : cpi::core::SchemeRegistry::RipeRows()) {
      Config config;
      config.protection = s->id();
      config.engine = flags.engine;
      RipeRow row;
      row.scheme = s;
      *attacks = 0;
      for (const auto& r : run(config, flags.jobs)) {
        ++row.counts[static_cast<int>(r.outcome)];
        ++*attacks;
      }
      rows->push_back(row);
    }
  };

  Stopwatch ripe_watch;
  std::vector<RipeRow> ripe_rows;
  int ripe_attacks = 0;
  run_ripe_table(&cpi::attacks::RunAttackMatrix, &ripe_rows, &ripe_attacks);
  table_wall_ms["ripe_effectiveness"] = ripe_watch.Ms();

  // Cross-thread rows: thread A corrupting thread B's saved return address
  // (regular slot) and probing its safe-stack home. A separate table so the
  // historical ripe_effectiveness payload stays byte-identical.
  Stopwatch ripec_watch;
  std::vector<RipeRow> ripe_concurrent_rows;
  int ripe_concurrent_attacks = 0;
  run_ripe_table(&cpi::attacks::RunCrossThreadMatrix, &ripe_concurrent_rows,
                 &ripe_concurrent_attacks);
  table_wall_ms["ripe_concurrent"] = ripec_watch.Ms();

  Stopwatch fig5_watch;
  const std::vector<std::string> fig5_subset = {"401.bzip2", "447.dealII", "458.sjeng",
                                                "464.h264ref"};
  std::vector<size_t> fig5_indices;
  for (size_t wi = 0; wi < spec.size(); ++wi) {
    for (const auto& name : fig5_subset) {
      if (spec[wi].name == name) {
        fig5_indices.push_back(wi);
      }
    }
  }
  // Defense rows not covered by the SPEC sweep (cookies, CFI) get their own
  // cells against the shared subset builds.
  const auto defense_rows = cpi::core::SchemeRegistry::DefenseRows();
  std::vector<Protection> extra_protections;
  for (const ProtectionScheme* s : defense_rows) {
    bool covered = false;
    for (Protection p : spec_protections) {
      covered = covered || p == s->id();
    }
    if (!covered) {
      extra_protections.push_back(s->id());
    }
  }
  std::vector<Workload> subset_workloads;
  std::vector<const cpi::ir::Module*> subset_views;
  for (size_t wi : fig5_indices) {
    subset_workloads.push_back(spec[wi]);
    subset_views.push_back(spec_views[wi]);
  }
  const auto subset_ms = cpi::workloads::MeasureWorkloads(
      subset_workloads, subset_views, extra_protections, engine_base, flags.jobs);

  std::vector<Fig5Row> fig5_rows;
  for (const ProtectionScheme* s : defense_rows) {
    Fig5Row row;
    row.scheme = s;
    // Matrix verdict: reuse the RIPE rows where possible (every built-in
    // defense row is also a RIPE row), so the matrix runs once per scheme
    // in the whole suite; a defense-only scheme gets its own matrix run
    // rather than a silent hijacked=0 default.
    bool have_matrix = false;
    for (const RipeRow& r : ripe_rows) {
      if (r.scheme->id() == s->id()) {
        row.hijacked = r.counts[0];
        row.attacks = r.counts[0] + r.counts[1] + r.counts[2] + r.counts[3];
        have_matrix = true;
      }
    }
    if (!have_matrix) {
      Config config;
      config.protection = s->id();
      config.engine = flags.engine;
      for (const auto& r : cpi::attacks::RunAttackMatrix(config, flags.jobs)) {
        ++row.attacks;
        if (r.Hijacked()) {
          ++row.hijacked;
        }
      }
    }
    std::vector<double> overheads;
    const bool from_spec =
        std::count(spec_protections.begin(), spec_protections.end(), s->id()) > 0;
    for (size_t k = 0; k < fig5_indices.size(); ++k) {
      const Measurement& m = from_spec ? spec_ms[fig5_indices[k]] : subset_ms[k];
      if (m.status.at(s->id()) != cpi::vm::RunStatus::kOk) {
        row.some_fail = true;
        continue;
      }
      overheads.push_back(m.overhead_pct.at(s->id()));
    }
    if (!overheads.empty()) {
      row.has_overhead = true;
      row.avg_overhead_pct = cpi::Mean(overheads);
    }
    fig5_rows.push_back(row);
  }
  table_wall_ms["fig5_defense_matrix"] = fig5_watch.Ms();

  // -------------------------------------------------------------------------
  // table_composites: the composable-scheme evaluation
  // (SchemeRegistry::CompositeTableRows — ptrenc-ret-chain and the
  // registered composites). Cells select by Config::scheme, since a
  // composite has no Protection id of its own; overheads reuse the shared
  // SPEC sweep's vanilla baselines, and both attack matrices run per row. A
  // separate table so every frozen single-scheme table stays byte-identical
  // (CI recovers the previous payload via del(.table_composites)).
  Stopwatch comp_watch;
  const auto composite_schemes = cpi::core::SchemeRegistry::CompositeTableRows();
  std::vector<MeasureCell> comp_cells;
  comp_cells.reserve(spec.size() * composite_schemes.size());
  for (size_t wi = 0; wi < spec.size(); ++wi) {
    for (const ProtectionScheme* s : composite_schemes) {
      MeasureCell cell;
      cell.workload = wi;
      cell.config.protection = s->id();
      cell.config.scheme = s;
      cell.config.engine = flags.engine;
      comp_cells.push_back(cell);
    }
  }
  const auto comp_results = cpi::workloads::RunCells(spec, spec_views, comp_cells, flags.jobs);

  std::vector<CompositeRow> composite_rows;
  for (size_t si = 0; si < composite_schemes.size(); ++si) {
    const ProtectionScheme* s = composite_schemes[si];
    CompositeRow row;
    row.scheme = s;
    for (size_t wi = 0; wi < spec.size(); ++wi) {
      const CellResult& r = comp_results[wi * composite_schemes.size() + si];
      CPI_CHECK(r.status == cpi::vm::RunStatus::kOk);
      row.overhead_pct.push_back(cpi::OverheadPercent(
          static_cast<double>(r.cycles), static_cast<double>(spec_ms[wi].vanilla_cycles)));
    }
    row.avg_overhead_pct = cpi::Mean(row.overhead_pct);

    Config config;
    config.protection = s->id();
    config.scheme = s;
    config.engine = flags.engine;
    row.ripe.scheme = s;
    for (const auto& r : cpi::attacks::RunAttackMatrix(config, flags.jobs)) {
      ++row.ripe.counts[static_cast<int>(r.outcome)];
      if (r.violation == cpi::runtime::Violation::kPointerAuthFailure) {
        ++row.ripe_auth_aborts;
      }
    }
    row.ripe_concurrent.scheme = s;
    for (const auto& r : cpi::attacks::RunCrossThreadMatrix(config, flags.jobs)) {
      ++row.ripe_concurrent.counts[static_cast<int>(r.outcome)];
      if (r.violation == cpi::runtime::Violation::kPointerAuthFailure) {
        ++row.ripec_auth_aborts;
      }
    }
    composite_rows.push_back(std::move(row));
  }
  table_wall_ms["table_composites"] = comp_watch.Ms();

  // -------------------------------------------------------------------------
  // ablation_opt (--opt >= 1 only): per-scheme overhead with the
  // post-instrumentation optimizer off and on. The standard tables above
  // always run at O0 — they are the paper baselines and stay byte-identical
  // at any --opt value; this table adds the O1 cells (overheads at each
  // level are computed against the same-level vanilla baseline). The O0
  // column is reused from the shared SPEC sweep.
  AblationOpt opt_ablation;
  if (flags.opt >= 1) {
    Stopwatch opt_watch;
    std::vector<MeasureCell> opt_cells;
    const size_t opt_stride = 1 + overhead_protections.size();
    opt_cells.reserve(spec.size() * opt_stride);
    for (size_t wi = 0; wi < spec.size(); ++wi) {
      MeasureCell vanilla;
      vanilla.workload = wi;
      vanilla.config.opt_level = flags.opt;
      vanilla.config.engine = flags.engine;
      opt_cells.push_back(vanilla);
      for (Protection p : overhead_protections) {
        MeasureCell cell;
        cell.workload = wi;
        cell.config.protection = p;
        cell.config.opt_level = flags.opt;
        cell.config.engine = flags.engine;
        opt_cells.push_back(cell);
      }
    }
    const auto opt_results =
        cpi::workloads::RunCells(spec, spec_views, opt_cells, flags.jobs);
    for (size_t wi = 0; wi < spec.size(); ++wi) {
      opt_ablation.workloads.push_back(spec[wi].name);
      const CellResult& vanilla = opt_results[wi * opt_stride];
      CPI_CHECK(vanilla.status == cpi::vm::RunStatus::kOk);
      for (size_t pi = 0; pi < overhead_protections.size(); ++pi) {
        const Protection p = overhead_protections[pi];
        const CellResult& r = opt_results[wi * opt_stride + 1 + pi];
        CPI_CHECK(r.status == cpi::vm::RunStatus::kOk);
        opt_ablation.overhead_pct[p].push_back(
            {spec_ms[wi].OverheadPct(p),
             cpi::OverheadPercent(static_cast<double>(r.cycles),
                                  static_cast<double>(vanilla.cycles))});
      }
    }
    table_wall_ms["ablation_opt"] = opt_watch.Ms();
  }

  const double wall_ms = total.Ms();

  // -------------------------------------------------------------------------
  // Failure audit. The overhead tables tolerate failing cells (they surface
  // in the JSON "fails" arrays) so one bad scheme cannot abort a long sweep,
  // but the suite as a whole must not exit 0 when a cell silently failed.
  // SoftBound is the documented exemption: the paper reports it breaking on
  // unsafe pointer idioms (Table 3), and the recorded baselines carry those
  // cells as fails:["softbound"].
  int unexpected_failures = 0;
  const auto audit = [&unexpected_failures](const char* table,
                                            const std::vector<Measurement>& ms) {
    for (const Measurement& m : ms) {
      for (const auto& [p, st] : m.status) {
        if (st == cpi::vm::RunStatus::kOk || p == Protection::kSoftBound) {
          continue;
        }
        std::fprintf(stderr, "suite: FAILED cell %s/%s under %s: %s\n", table,
                     m.workload.c_str(), SchemeName(p), cpi::vm::RunStatusName(st));
        ++unexpected_failures;
      }
    }
  };
  audit("table1/table3", spec_ms);
  audit("fig4_phoronix", phoronix_ms);
  audit("table4_webserver", web_ms);
  audit("table4_concurrent", mt_ms);
  audit("fig5_subset", subset_ms);
  if (unexpected_failures != 0) {
    std::fprintf(stderr, "suite: %d unexpected cell failure(s); exiting non-zero\n",
                 unexpected_failures);
  }
  const int exit_code = unexpected_failures == 0 ? 0 : 1;

  // -------------------------------------------------------------------------
  // JSON report.
  if (flags.json) {
    std::printf("{\"bench\":\"suite\",\"scale\":%d,\"jobs\":%d,"
                "\"hardware_concurrency\":%d,\"wall_ms\":%.1f,\"table_wall_ms\":{",
                flags.scale, flags.jobs, cpi::ThreadPool::DefaultJobs(), wall_ms);
    {
      bool first = true;
      for (const auto& [name, ms] : table_wall_ms) {
        std::printf("%s\"%s\":%.1f", first ? "" : ",", name.c_str(), ms);
        first = false;
      }
    }
    std::printf("},\"tables\":{");

    std::printf("\"table1_spec_overhead\":");
    JsonOverheadTable(table1, /*lang=*/true, /*fails=*/false);

    std::printf(",\"table2_compile_stats\":{\"rows\":[");
    for (size_t i = 0; i < spec_ms.size(); ++i) {
      const Measurement& m = spec_ms[i];
      std::printf("%s{\"workload\":\"%s\",\"lang\":\"%s\",\"fnustack_pct\":%.3f,"
                  "\"mocps_pct\":%.3f,\"mocpi_pct\":%.3f}",
                  i == 0 ? "" : ",", m.workload.c_str(), m.language.c_str(),
                  m.stats.FnuStackPercent(), m.stats.MoCpsPercent(),
                  m.stats.MoCpiPercent());
    }
    std::printf("]}");

    std::printf(",\"table3_softbound\":");
    JsonOverheadTable(table3, /*lang=*/false, /*fails=*/true);

    std::printf(",\"table4_webserver\":");
    JsonOverheadTable(table4, /*lang=*/false, /*fails=*/false);

    std::printf(",\"table4_concurrent\":");
    JsonOverheadTable(table4_concurrent, /*lang=*/false, /*fails=*/false);

    std::printf(",\"fig4_phoronix\":");
    JsonOverheadTable(fig4, /*lang=*/false, /*fails=*/false);

    std::printf(",\"fig5_defense_matrix\":{\"rows\":[");
    for (size_t i = 0; i < fig5_rows.size(); ++i) {
      const Fig5Row& r = fig5_rows[i];
      std::printf("%s{\"name\":\"%s\",\"mechanism\":\"%s\",\"hijacked\":%d,"
                  "\"attacks\":%d,\"stops_all\":%s,\"some_fail\":%s,"
                  "\"avg_overhead_pct\":",
                  i == 0 ? "" : ",", r.scheme->name(), r.scheme->description(),
                  r.hijacked, r.attacks, r.hijacked == 0 ? "true" : "false",
                  r.some_fail ? "true" : "false");
      if (r.has_overhead) {
        std::printf("%.3f}", r.avg_overhead_pct);
      } else {
        std::printf("null}");
      }
    }
    std::printf("]}");

    std::printf(",\"ablation_isolation\":{\"rows\":[");
    for (size_t wi = 0; wi < iso.workloads.size(); ++wi) {
      std::printf("%s{\"workload\":\"%s\",\"overhead_pct\":{", wi == 0 ? "" : ",",
                  iso.workloads[wi].c_str());
      for (size_t c = 0; c < iso.columns.size(); ++c) {
        std::printf("%s\"%s\":%.3f", c == 0 ? "" : ",", iso.columns[c].first.c_str(),
                    iso.columns[c].second[wi]);
      }
      std::printf("}}");
    }
    std::printf("],\"average\":{");
    for (size_t c = 0; c < iso.columns.size(); ++c) {
      std::printf("%s\"%s\":%.3f", c == 0 ? "" : ",", iso.columns[c].first.c_str(),
                  cpi::Mean(iso.columns[c].second));
    }
    std::printf("}}");

    std::printf(",\"ablation_mpx\":{\"rows\":[");
    for (size_t wi = 0; wi < mpx.workloads.size(); ++wi) {
      std::printf("%s{\"workload\":\"%s\",\"software_pct\":%.3f,\"mpx_pct\":%.3f}",
                  wi == 0 ? "" : ",", mpx.workloads[wi].c_str(), mpx.software_pct[wi],
                  mpx.mpx_pct[wi]);
    }
    std::printf("],\"average\":{\"software_pct\":%.3f,\"mpx_pct\":%.3f}}",
                cpi::Mean(mpx.software_pct), cpi::Mean(mpx.mpx_pct));

    std::printf(",\"ripe_effectiveness\":{\"attacks\":%d,\"rows\":[", ripe_attacks);
    for (size_t i = 0; i < ripe_rows.size(); ++i) {
      const RipeRow& r = ripe_rows[i];
      std::printf("%s{\"name\":\"%s\",\"hijacked\":%d,\"prevented\":%d,"
                  "\"crashed\":%d,\"no_effect\":%d}",
                  i == 0 ? "" : ",", r.scheme->name(), r.counts[0], r.counts[1],
                  r.counts[2], r.counts[3]);
    }
    std::printf("]}");

    std::printf(",\"ripe_concurrent\":{\"attacks\":%d,\"rows\":[",
                ripe_concurrent_attacks);
    for (size_t i = 0; i < ripe_concurrent_rows.size(); ++i) {
      const RipeRow& r = ripe_concurrent_rows[i];
      std::printf("%s{\"name\":\"%s\",\"hijacked\":%d,\"prevented\":%d,"
                  "\"crashed\":%d,\"no_effect\":%d}",
                  i == 0 ? "" : ",", r.scheme->name(), r.counts[0], r.counts[1],
                  r.counts[2], r.counts[3]);
    }
    std::printf("]}");

    if (flags.opt >= 1) {
      std::printf(",\"ablation_opt\":{\"opt_level\":%d,\"rows\":[", flags.opt);
      for (size_t wi = 0; wi < opt_ablation.workloads.size(); ++wi) {
        std::printf("%s{\"workload\":\"%s\",\"overhead_pct\":{", wi == 0 ? "" : ",",
                    opt_ablation.workloads[wi].c_str());
        for (size_t pi = 0; pi < overhead_protections.size(); ++pi) {
          const Protection p = overhead_protections[pi];
          const auto& [o0, o1] = opt_ablation.overhead_pct.at(p)[wi];
          std::printf("%s\"%s\":{\"o0\":%.3f,\"o1\":%.3f}", pi == 0 ? "" : ",",
                      SchemeName(p), o0, o1);
        }
        std::printf("}}");
      }
      std::printf("],\"average\":{");
      for (size_t pi = 0; pi < overhead_protections.size(); ++pi) {
        const Protection p = overhead_protections[pi];
        std::vector<double> o0s;
        std::vector<double> o1s;
        for (const auto& [o0, o1] : opt_ablation.overhead_pct.at(p)) {
          o0s.push_back(o0);
          o1s.push_back(o1);
        }
        std::printf("%s\"%s\":{\"o0\":%.3f,\"o1\":%.3f}", pi == 0 ? "" : ",",
                    SchemeName(p), cpi::Mean(o0s), cpi::Mean(o1s));
      }
      std::printf("}}");
    }

    std::printf(",\"mem_overhead\":{\"stores\":[");
    for (size_t i = 0; i < mem_rows.size(); ++i) {
      std::printf("%s{\"store\":\"%s\",\"median_overhead_pct\":{", i == 0 ? "" : ",",
                  cpi::runtime::StoreKindName(mem_rows[i].store));
      for (size_t j = 0; j < overhead_protections.size(); ++j) {
        const Protection p = overhead_protections[j];
        std::printf("%s\"%s\":%.3f", j == 0 ? "" : ",", SchemeName(p),
                    mem_rows[i].median_overhead_pct.at(p));
      }
      std::printf("},\"median_safe_store_bytes\":{");
      for (size_t j = 0; j < overhead_protections.size(); ++j) {
        const Protection p = overhead_protections[j];
        std::printf("%s\"%s\":%.0f", j == 0 ? "" : ",", SchemeName(p),
                    mem_rows[i].median_safe_store_bytes.at(p));
      }
      std::printf("}}");
    }
    std::printf("]}");

    std::printf(",\"ablation_shards\":{\"shard_counts\":[");
    for (size_t si = 0; si < shard_ablation.shard_counts.size(); ++si) {
      std::printf("%s%u", si == 0 ? "" : ",", shard_ablation.shard_counts[si]);
    }
    std::printf("],\"rows\":[");
    for (size_t wi = 0; wi < shard_ablation.workloads.size(); ++wi) {
      std::printf("%s{\"workload\":\"%s\",\"overhead_pct\":{", wi == 0 ? "" : ",",
                  shard_ablation.workloads[wi].c_str());
      for (size_t si = 0; si < shard_ablation.shard_counts.size(); ++si) {
        std::printf("%s\"%u\":%.3f", si == 0 ? "" : ",",
                    shard_ablation.shard_counts[si],
                    shard_ablation.overhead_pct[wi][si]);
      }
      std::printf("},\"contended_pct\":{");
      for (size_t si = 0; si < shard_ablation.shard_counts.size(); ++si) {
        std::printf("%s\"%u\":%.3f", si == 0 ? "" : ",",
                    shard_ablation.shard_counts[si],
                    shard_ablation.contended_pct[wi][si]);
      }
      std::printf("}}");
    }
    std::printf("],\"average\":{\"overhead_pct\":{");
    const auto shard_column_mean = [&shard_ablation](
        const std::vector<std::vector<double>>& rows, size_t si) {
      std::vector<double> col;
      for (size_t wi = 0; wi < shard_ablation.workloads.size(); ++wi) {
        col.push_back(rows[wi][si]);
      }
      return cpi::Mean(col);
    };
    for (size_t si = 0; si < shard_ablation.shard_counts.size(); ++si) {
      std::printf("%s\"%u\":%.3f", si == 0 ? "" : ",", shard_ablation.shard_counts[si],
                  shard_column_mean(shard_ablation.overhead_pct, si));
    }
    std::printf("},\"contended_pct\":{");
    for (size_t si = 0; si < shard_ablation.shard_counts.size(); ++si) {
      std::printf("%s\"%u\":%.3f", si == 0 ? "" : ",", shard_ablation.shard_counts[si],
                  shard_column_mean(shard_ablation.contended_pct, si));
    }
    std::printf("}}}");

    std::printf(",\"ablation_churn\":{\"shard_counts\":[");
    for (size_t si = 0; si < churn_ablation.shard_counts.size(); ++si) {
      std::printf("%s%u", si == 0 ? "" : ",", churn_ablation.shard_counts[si]);
    }
    std::printf("],\"rows\":[");
    const auto print_churn_map = [&](const char* key,
                                     const std::vector<double>& vals) {
      std::printf("\"%s\":{", key);
      for (size_t si = 0; si < churn_ablation.shard_counts.size(); ++si) {
        std::printf("%s\"%u\":%.3f", si == 0 ? "" : ",",
                    churn_ablation.shard_counts[si], vals[si]);
      }
      std::printf("}");
    };
    for (size_t wi = 0; wi < churn_ablation.workloads.size(); ++wi) {
      std::printf("%s{\"workload\":\"%s\",", wi == 0 ? "" : ",",
                  churn_ablation.workloads[wi].c_str());
      print_churn_map("static_overhead_pct", churn_ablation.static_overhead_pct[wi]);
      std::printf(",");
      print_churn_map("epoch_overhead_pct", churn_ablation.epoch_overhead_pct[wi]);
      std::printf(",");
      print_churn_map("static_contended_pct", churn_ablation.static_contended_pct[wi]);
      std::printf(",");
      print_churn_map("epoch_contended_pct", churn_ablation.epoch_contended_pct[wi]);
      std::printf(",\"migrations\":{");
      for (size_t si = 0; si < churn_ablation.shard_counts.size(); ++si) {
        std::printf("%s\"%u\":%llu", si == 0 ? "" : ",",
                    churn_ablation.shard_counts[si],
                    static_cast<unsigned long long>(churn_ablation.migrations[wi][si]));
      }
      std::printf("}}");
    }
    std::printf("],\"average\":{");
    const auto churn_column_mean = [&churn_ablation](
        const std::vector<std::vector<double>>& rows, size_t si) {
      std::vector<double> col;
      for (size_t wi = 0; wi < churn_ablation.workloads.size(); ++wi) {
        col.push_back(rows[wi][si]);
      }
      return cpi::Mean(col);
    };
    const auto print_churn_avg = [&](const char* key,
                                     const std::vector<std::vector<double>>& rows) {
      std::printf("\"%s\":{", key);
      for (size_t si = 0; si < churn_ablation.shard_counts.size(); ++si) {
        std::printf("%s\"%u\":%.3f", si == 0 ? "" : ",",
                    churn_ablation.shard_counts[si], churn_column_mean(rows, si));
      }
      std::printf("}");
    };
    print_churn_avg("static_contended_pct", churn_ablation.static_contended_pct);
    std::printf(",");
    print_churn_avg("epoch_contended_pct", churn_ablation.epoch_contended_pct);
    std::printf("}}");

    std::printf(",\"table_composites\":{\"attacks\":%d,\"concurrent_attacks\":%d,"
                "\"rows\":[",
                ripe_attacks, ripe_concurrent_attacks);
    const auto print_composite_ripe = [](const char* key, const RipeRow& r,
                                         int auth_aborts) {
      std::printf("\"%s\":{\"hijacked\":%d,\"prevented\":%d,\"crashed\":%d,"
                  "\"no_effect\":%d,\"auth_aborts\":%d}",
                  key, r.counts[0], r.counts[1], r.counts[2], r.counts[3],
                  auth_aborts);
    };
    for (size_t ri = 0; ri < composite_rows.size(); ++ri) {
      const CompositeRow& row = composite_rows[ri];
      std::printf("%s{\"name\":\"%s\",\"mechanism\":\"%s\",", ri == 0 ? "" : ",",
                  row.scheme->name(), row.scheme->description());
      std::printf("\"avg_overhead_pct\":%.3f,\"overhead_pct\":{",
                  row.avg_overhead_pct);
      for (size_t wi = 0; wi < spec.size(); ++wi) {
        std::printf("%s\"%s\":%.3f", wi == 0 ? "" : ",", spec[wi].name.c_str(),
                    row.overhead_pct[wi]);
      }
      std::printf("},");
      print_composite_ripe("ripe", row.ripe, row.ripe_auth_aborts);
      std::printf(",");
      print_composite_ripe("ripe_concurrent", row.ripe_concurrent,
                           row.ripec_auth_aborts);
      std::printf("}");
    }
    std::printf("]}");

    std::printf("}");  // closes "tables" — byte-identical across engines

    // Fusion statistics live OUTSIDE .tables: they describe the execution
    // tier, not the measured program, and vary with --engine while the
    // tables never do.
    const cpi::vm::FusionStats fusion = cpi::vm::GetFusionStats();
    std::printf(",\"engine\":\"%s\",\"fusion\":{\"modules\":%llu,"
                "\"ops_before\":%llu,\"ops_after\":%llu,\"patterns\":[",
                cpi::vm::EngineKindName(flags.engine),
                static_cast<unsigned long long>(fusion.modules),
                static_cast<unsigned long long>(fusion.ops_before),
                static_cast<unsigned long long>(fusion.ops_after));
    const size_t npat = std::min<size_t>(fusion.patterns.size(), 10);
    for (size_t i = 0; i < npat; ++i) {
      const cpi::vm::FusionPatternStat& ps = fusion.patterns[i];
      std::printf("%s{\"name\":\"%s\",\"sites\":%llu,\"weight\":%llu,"
                  "\"hits\":%llu}",
                  i == 0 ? "" : ",", ps.name.c_str(),
                  static_cast<unsigned long long>(ps.sites),
                  static_cast<unsigned long long>(ps.weight),
                  static_cast<unsigned long long>(ps.hits));
    }
    std::printf("]}}\n");
    return exit_code;
  }

  // -------------------------------------------------------------------------
  // Human report.
  std::printf("Unified bench suite — all paper tables, one process "
              "(scale %d, jobs %d)\n\n",
              flags.scale, flags.jobs);

  std::printf("Table 1 / Fig. 3 — SPEC CPU2006 performance overhead\n\n");
  {
    std::vector<std::string> header = {"Benchmark", "Lang"};
    for (Protection p : table1.columns) {
      header.push_back(SchemeName(p));
    }
    Table t(header);
    for (const Measurement* m : table1.rows) {
      std::vector<std::string> row = {m->workload, m->language};
      for (Protection p : table1.columns) {
        row.push_back(Table::FormatPercent(m->OverheadPct(p)));
      }
      t.AddRow(row);
    }
    t.AddSeparator();
    // The paper's headline summary rows, matching the standalone binary.
    const struct {
      const char* label;
      const char* language;  // "" = all
      double (*reduce)(const std::vector<double>&);
    } summaries[] = {
        {"Average (C/C++)", "", +[](const std::vector<double>& xs) { return cpi::Mean(xs); }},
        {"Median (C/C++)", "", +[](const std::vector<double>& xs) { return cpi::Median(xs); }},
        {"Maximum (C/C++)", "", +[](const std::vector<double>& xs) { return cpi::Max(xs); }},
        {"Average (C only)", "C", +[](const std::vector<double>& xs) { return cpi::Mean(xs); }},
        {"Median (C only)", "C", +[](const std::vector<double>& xs) { return cpi::Median(xs); }},
        {"Maximum (C only)", "C", +[](const std::vector<double>& xs) { return cpi::Max(xs); }},
    };
    for (const auto& s : summaries) {
      std::vector<std::string> row = {s.label, ""};
      for (Protection p : table1.columns) {
        const std::vector<double> xs =
            s.language[0] == '\0'
                ? cpi::workloads::OverheadColumn(spec_ms, p)
                : cpi::workloads::OverheadColumnForLanguage(spec_ms, p, s.language);
        row.push_back(Table::FormatPercent(s.reduce(xs)));
      }
      t.AddRow(row);
    }
    t.Print();
    std::printf("\n");
  }

  std::printf("Table 2 — Levee compilation statistics\n\n");
  {
    Table t({"Benchmark", "Lang", "FNUStack", "MOCPS", "MOCPI"});
    for (const auto& m : spec_ms) {
      t.AddRow({m.workload, m.language, Table::FormatPercent(m.stats.FnuStackPercent()),
                Table::FormatPercent(m.stats.MoCpsPercent()),
                Table::FormatPercent(m.stats.MoCpiPercent())});
    }
    t.Print();
    std::printf("\n");
  }

  PrintOverheadTable("Table 3 — Levee vs SoftBound-style full memory safety", table3,
                     /*lang=*/false);
  PrintOverheadTable("Table 4 — web-server stack throughput overhead", table4,
                     /*lang=*/false);
  PrintOverheadTable("Table 4 (concurrent) — multi-worker servers, simulated threads",
                     table4_concurrent, /*lang=*/false);
  PrintOverheadTable("Fig. 4 — Phoronix suite performance overhead", fig4,
                     /*lang=*/false);

  std::printf("Fig. 5 — control-flow hijack defense mechanisms\n\n");
  {
    Table t({"Mechanism", "Stops all control-flow hijacks?", "Avg overhead"});
    for (const Fig5Row& r : fig5_rows) {
      std::string verdict = r.hijacked == 0
                                ? "Yes"
                                : "No: " + std::to_string(r.hijacked) + "/" +
                                      std::to_string(r.attacks) + " attacks still hijack";
      std::string overhead =
          r.has_overhead ? Table::FormatPercent(r.avg_overhead_pct) : std::string("n/a");
      if (r.some_fail) {
        overhead += " (some fail)";
      }
      t.AddRow({r.scheme->description(), verdict, overhead});
    }
    t.Print();
    std::printf("\n");
  }

  std::printf("Ablation (§3.2.3) — isolation mechanism cost under CPI\n\n");
  {
    Table t({"Benchmark", "segment", "info-hiding", "sfi"});
    for (size_t wi = 0; wi < iso.workloads.size(); ++wi) {
      t.AddRow({iso.workloads[wi], Table::FormatPercent(iso.columns[0].second[wi]),
                Table::FormatPercent(iso.columns[1].second[wi]),
                Table::FormatPercent(iso.columns[2].second[wi])});
    }
    t.AddSeparator();
    t.AddRow({"Average", Table::FormatPercent(cpi::Mean(iso.columns[0].second)),
              Table::FormatPercent(cpi::Mean(iso.columns[1].second)),
              Table::FormatPercent(cpi::Mean(iso.columns[2].second))});
    t.Print();
    std::printf("\n");
  }

  std::printf("Ablation (§4) — projected hardware-assisted (MPX-style) CPI\n\n");
  {
    Table t({"Benchmark", "CPI (software)", "CPI (MPX-assisted)"});
    for (size_t wi = 0; wi < mpx.workloads.size(); ++wi) {
      t.AddRow({mpx.workloads[wi], Table::FormatPercent(mpx.software_pct[wi]),
                Table::FormatPercent(mpx.mpx_pct[wi])});
    }
    t.AddSeparator();
    t.AddRow({"Average", Table::FormatPercent(cpi::Mean(mpx.software_pct)),
              Table::FormatPercent(cpi::Mean(mpx.mpx_pct))});
    t.Print();
    std::printf("\n");
  }

  std::printf("Ablation — safe-region shard count (event-loop + concurrent servers)\n\n");
  {
    std::vector<std::string> header = {"Benchmark"};
    for (uint32_t shards : shard_ablation.shard_counts) {
      header.push_back("S=" + std::to_string(shards));
    }
    const auto print_shard_table = [&](const std::vector<std::vector<double>>& rows) {
      Table t(header);
      for (size_t wi = 0; wi < shard_ablation.workloads.size(); ++wi) {
        std::vector<std::string> row = {shard_ablation.workloads[wi]};
        for (double v : rows[wi]) {
          row.push_back(Table::FormatPercent(v));
        }
        t.AddRow(row);
      }
      t.AddSeparator();
      std::vector<std::string> avg = {"Average"};
      for (size_t si = 0; si < shard_ablation.shard_counts.size(); ++si) {
        std::vector<double> col;
        for (size_t wi = 0; wi < shard_ablation.workloads.size(); ++wi) {
          col.push_back(rows[wi][si]);
        }
        avg.push_back(Table::FormatPercent(cpi::Mean(col)));
      }
      t.AddRow(avg);
      t.Print();
    };
    std::printf("CPI overhead vs vanilla at each shard count:\n\n");
    print_shard_table(shard_ablation.overhead_pct);
    std::printf("\nShare of safe-store ops paying the shard-crossing premium:\n\n");
    print_shard_table(shard_ablation.contended_pct);
    std::printf("\n");
  }

  std::printf("Ablation — static vs epoch shard ownership (worker churn)\n\n");
  {
    std::vector<std::string> header = {"Benchmark"};
    for (uint32_t shards : churn_ablation.shard_counts) {
      header.push_back("S=" + std::to_string(shards) + " st");
      header.push_back("S=" + std::to_string(shards) + " ep");
    }
    const auto print_churn_table = [&](const std::vector<std::vector<double>>& st,
                                       const std::vector<std::vector<double>>& ep) {
      Table t(header);
      const size_t n_counts = churn_ablation.shard_counts.size();
      for (size_t wi = 0; wi < churn_ablation.workloads.size(); ++wi) {
        std::vector<std::string> row = {churn_ablation.workloads[wi]};
        for (size_t si = 0; si < n_counts; ++si) {
          row.push_back(Table::FormatPercent(st[wi][si]));
          row.push_back(Table::FormatPercent(ep[wi][si]));
        }
        t.AddRow(row);
      }
      t.AddSeparator();
      std::vector<std::string> avg = {"Average"};
      for (size_t si = 0; si < n_counts; ++si) {
        for (const auto* rows : {&st, &ep}) {
          std::vector<double> col;
          for (size_t wi = 0; wi < churn_ablation.workloads.size(); ++wi) {
            col.push_back((*rows)[wi][si]);
          }
          avg.push_back(Table::FormatPercent(cpi::Mean(col)));
        }
      }
      t.AddRow(avg);
      t.Print();
    };
    std::printf("CPI overhead vs vanilla, static (st) vs epoch (ep) ownership:\n\n");
    print_churn_table(churn_ablation.static_overhead_pct,
                      churn_ablation.epoch_overhead_pct);
    std::printf("\nShare of safe-store ops paying the shard-crossing premium:\n\n");
    print_churn_table(churn_ablation.static_contended_pct,
                      churn_ablation.epoch_contended_pct);
    std::printf("\n");
  }

  std::printf("RIPE-style attack matrix (§5.1): %d attack combinations\n\n", ripe_attacks);
  {
    Table t({"Protection", "Hijacked", "Prevented", "Crashed", "No effect"});
    for (const RipeRow& r : ripe_rows) {
      t.AddRow({r.scheme->name(), std::to_string(r.counts[0]),
                std::to_string(r.counts[1]), std::to_string(r.counts[2]),
                std::to_string(r.counts[3])});
    }
    t.Print();
    std::printf("\n");
  }

  std::printf("Cross-thread attack matrix: %d combinations (thread A vs thread B)\n\n",
              ripe_concurrent_attacks);
  {
    Table t({"Protection", "Hijacked", "Prevented", "Crashed", "No effect"});
    for (const RipeRow& r : ripe_concurrent_rows) {
      t.AddRow({r.scheme->name(), std::to_string(r.counts[0]),
                std::to_string(r.counts[1]), std::to_string(r.counts[2]),
                std::to_string(r.counts[3])});
    }
    t.Print();
    std::printf("\n");
  }

  std::printf("Composite schemes — stacked pipelines (overhead + both matrices)\n\n");
  {
    Table t({"Scheme", "Avg overhead", "RIPE hijacked", "RIPE auth-aborts",
             "X-thread hijacked", "X-thread auth-aborts"});
    for (const CompositeRow& row : composite_rows) {
      t.AddRow({row.scheme->name(), Table::FormatPercent(row.avg_overhead_pct),
                std::to_string(row.ripe.counts[0]) + "/" + std::to_string(ripe_attacks),
                std::to_string(row.ripe_auth_aborts),
                std::to_string(row.ripe_concurrent.counts[0]) + "/" +
                    std::to_string(ripe_concurrent_attacks),
                std::to_string(row.ripec_auth_aborts)});
    }
    t.Print();
    std::printf("\nThe ret-chain rows convert saved-return corruption — including the\n"
                "cross-thread variants — into kPointerAuthFailure aborts (auth-aborts).\n\n");
  }

  if (flags.opt >= 1) {
    std::printf("Ablation — post-instrumentation optimizer (overhead at O0 vs O%d)\n\n",
                flags.opt);
    std::vector<std::string> header = {"Benchmark"};
    for (Protection p : overhead_protections) {
      header.push_back(std::string(SchemeName(p)) + " O0");
      header.push_back(std::string(SchemeName(p)) + " O" + std::to_string(flags.opt));
    }
    Table t(header);
    for (size_t wi = 0; wi < opt_ablation.workloads.size(); ++wi) {
      std::vector<std::string> row = {opt_ablation.workloads[wi]};
      for (Protection p : overhead_protections) {
        const auto& [o0, o1] = opt_ablation.overhead_pct.at(p)[wi];
        row.push_back(Table::FormatPercent(o0));
        row.push_back(Table::FormatPercent(o1));
      }
      t.AddRow(row);
    }
    t.AddSeparator();
    std::vector<std::string> avg = {"Average"};
    for (Protection p : overhead_protections) {
      std::vector<double> o0s;
      std::vector<double> o1s;
      for (const auto& [o0, o1] : opt_ablation.overhead_pct.at(p)) {
        o0s.push_back(o0);
        o1s.push_back(o1);
      }
      avg.push_back(Table::FormatPercent(cpi::Mean(o0s)));
      avg.push_back(Table::FormatPercent(cpi::Mean(o1s)));
    }
    t.AddRow(avg);
    t.Print();
    std::printf("\n");
  }

  std::printf("§5.2 — memory overhead of the safe region (median over SPEC models)\n\n");
  {
    std::vector<std::string> header = {"Configuration"};
    for (Protection p : overhead_protections) {
      header.push_back(SchemeName(p));
    }
    Table t(header);
    for (const auto& row : mem_rows) {
      std::vector<std::string> cells = {std::string("store = ") +
                                        cpi::runtime::StoreKindName(row.store)};
      for (Protection p : overhead_protections) {
        cells.push_back(Table::FormatPercent(row.median_overhead_pct.at(p)));
      }
      t.AddRow(cells);
    }
    t.Print();

    std::printf("\nMedian resident safe-store bytes (runtime shape per scheme):\n\n");
    Table bytes_table(header);
    for (const auto& row : mem_rows) {
      std::vector<std::string> cells = {std::string("store = ") +
                                        cpi::runtime::StoreKindName(row.store)};
      for (Protection p : overhead_protections) {
        cells.push_back(std::to_string(
            static_cast<uint64_t>(row.median_safe_store_bytes.at(p))));
      }
      bytes_table.AddRow(cells);
    }
    bytes_table.Print();
    std::printf("\n");
  }

  if (flags.timing) {
    std::printf("wall-clock: %.1f ms total (scale %d, jobs %d)\n", wall_ms, flags.scale,
                flags.jobs);
    for (const auto& [name, ms] : table_wall_ms) {
      std::printf("  %-22s %8.1f ms\n", name.c_str(), ms);
    }
  }
  return exit_code;
}
