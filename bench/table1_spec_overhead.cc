// Reproduces Table 1 + Fig. 3: SafeStack/CPS/CPI overhead on the SPEC
// CPU2006 workload models, with the paper's language-split summary rows.
//
// Expected shape (paper values in parentheses): SafeStack ~0% (0.0%),
// CPS low single digits (1.9%), CPI higher and dominated by the C++
// workloads (8.4%); maxima on vtable-heavy workloads (omnetpp/xalancbmk).
#include <cstdio>

#include "src/support/stats.h"
#include "src/support/table.h"
#include "src/workloads/measure.h"

namespace {

using cpi::core::Protection;
using cpi::workloads::Measurement;

void SummaryRow(cpi::Table& table, const std::vector<Measurement>& ms, const char* label,
                const std::string& language,
                double (*reduce)(const std::vector<double>&)) {
  auto column = [&](Protection p) {
    std::vector<double> xs = language.empty()
                                 ? cpi::workloads::OverheadColumn(ms, p)
                                 : cpi::workloads::OverheadColumnForLanguage(ms, p, language);
    return cpi::Table::FormatPercent(reduce(xs));
  };
  table.AddRow({label, "", column(Protection::kSafeStack), column(Protection::kCps),
                column(Protection::kCpi)});
}

double MaxReduce(const std::vector<double>& xs) { return cpi::Max(xs); }
double MeanReduce(const std::vector<double>& xs) { return cpi::Mean(xs); }
double MedianReduce(const std::vector<double>& xs) { return cpi::Median(xs); }

}  // namespace

int main() {
  std::printf("Table 1 / Fig. 3 — SPEC CPU2006 performance overhead "
              "(simulated cycles vs vanilla)\n\n");

  const std::vector<Protection> protections = {Protection::kSafeStack, Protection::kCps,
                                               Protection::kCpi};
  const auto measurements =
      cpi::workloads::MeasureWorkloads(cpi::workloads::SpecCpu2006(), protections,
                                       /*scale=*/1);

  cpi::Table table({"Benchmark", "Lang", "Safe Stack", "CPS", "CPI"});
  for (const auto& m : measurements) {
    table.AddRow({m.workload, m.language,
                  cpi::Table::FormatPercent(m.overhead_pct.at(Protection::kSafeStack)),
                  cpi::Table::FormatPercent(m.overhead_pct.at(Protection::kCps)),
                  cpi::Table::FormatPercent(m.overhead_pct.at(Protection::kCpi))});
  }
  table.AddSeparator();
  SummaryRow(table, measurements, "Average (C/C++)", "", MeanReduce);
  SummaryRow(table, measurements, "Median (C/C++)", "", MedianReduce);
  SummaryRow(table, measurements, "Maximum (C/C++)", "", MaxReduce);
  SummaryRow(table, measurements, "Average (C only)", "C", MeanReduce);
  SummaryRow(table, measurements, "Median (C only)", "C", MedianReduce);
  SummaryRow(table, measurements, "Maximum (C only)", "C", MaxReduce);
  table.Print();

  std::printf("\nPaper reference: SafeStack 0.0%% / CPS 1.9%% / CPI 8.4%% average (C/C++);\n"
              "C-only averages -0.4%% / 1.2%% / 2.9%%. Expect the same ordering and the\n"
              "C++ rows (omnetpp, xalancbmk, dealII) dominating CPI.\n");
  return 0;
}
