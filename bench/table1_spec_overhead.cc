// Reproduces Table 1 + Fig. 3: performance overhead on the SPEC CPU2006
// workload models, with the paper's language-split summary rows. Columns
// come from the scheme registry (every scheme reporting an overhead column),
// so new schemes appear here without touching this driver.
//
// Expected shape (paper values in parentheses): SafeStack ~0% (0.0%),
// CPS low single digits (1.9%), CPI higher and dominated by the C++
// workloads (8.4%); maxima on vtable-heavy workloads (omnetpp/xalancbmk).
// PtrEnc sits between CPS and CPI: it touches the same code-pointer ops as
// CPS but pays sign/authenticate latency instead of safe-region traffic.
#include <chrono>
#include <cstdio>

#include "bench/flags.h"
#include "src/core/scheme.h"
#include "src/support/stats.h"
#include "src/support/table.h"
#include "src/workloads/measure.h"

namespace {

using cpi::core::Protection;
using cpi::core::ProtectionScheme;
using cpi::workloads::Measurement;

void SummaryRow(cpi::Table& table, const std::vector<Measurement>& ms,
                const std::vector<const ProtectionScheme*>& schemes, const char* label,
                const std::string& language,
                double (*reduce)(const std::vector<double>&)) {
  std::vector<std::string> row = {label, ""};
  for (const ProtectionScheme* s : schemes) {
    std::vector<double> xs =
        language.empty() ? cpi::workloads::OverheadColumn(ms, s->id())
                         : cpi::workloads::OverheadColumnForLanguage(ms, s->id(), language);
    row.push_back(cpi::Table::FormatPercent(reduce(xs)));
  }
  table.AddRow(row);
}

double MaxReduce(const std::vector<double>& xs) { return cpi::Max(xs); }
double MeanReduce(const std::vector<double>& xs) { return cpi::Mean(xs); }
double MedianReduce(const std::vector<double>& xs) { return cpi::Median(xs); }

void PrintJson(const std::vector<Measurement>& ms,
               const std::vector<const ProtectionScheme*>& schemes, double wall_ms) {
  std::printf("{\"bench\":\"table1_spec_overhead\",\"wall_ms\":%.1f,\"rows\":[", wall_ms);
  for (size_t i = 0; i < ms.size(); ++i) {
    std::printf("%s{\"workload\":\"%s\",\"lang\":\"%s\",\"overhead_pct\":{",
                i == 0 ? "" : ",", ms[i].workload.c_str(), ms[i].language.c_str());
    for (size_t j = 0; j < schemes.size(); ++j) {
      std::printf("%s\"%s\":%.3f", j == 0 ? "" : ",", schemes[j]->name(),
                  ms[i].OverheadPct(schemes[j]->id()));
    }
    std::printf("}}");
  }
  std::printf("]}\n");
}

}  // namespace

int main(int argc, char** argv) {
  const cpi::bench::Flags flags = cpi::bench::Parse(argc, argv);

  const auto schemes = cpi::core::SchemeRegistry::OverheadColumns();
  const auto start = std::chrono::steady_clock::now();
  const auto measurements = cpi::workloads::MeasureWorkloads(
      cpi::workloads::SpecCpu2006(), cpi::workloads::OverheadProtections(), flags.scale,
      cpi::bench::BaseConfig(flags), flags.jobs);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();

  if (flags.json) {
    PrintJson(measurements, schemes, wall_ms);
    return 0;
  }

  std::printf("Table 1 / Fig. 3 — SPEC CPU2006 performance overhead "
              "(simulated cycles vs vanilla)\n\n");

  std::vector<std::string> header = {"Benchmark", "Lang"};
  for (const ProtectionScheme* s : schemes) {
    header.push_back(s->name());
  }
  cpi::Table table(header);
  for (const auto& m : measurements) {
    std::vector<std::string> row = {m.workload, m.language};
    for (const ProtectionScheme* s : schemes) {
      row.push_back(cpi::Table::FormatPercent(m.OverheadPct(s->id())));
    }
    table.AddRow(row);
  }
  table.AddSeparator();
  SummaryRow(table, measurements, schemes, "Average (C/C++)", "", MeanReduce);
  SummaryRow(table, measurements, schemes, "Median (C/C++)", "", MedianReduce);
  SummaryRow(table, measurements, schemes, "Maximum (C/C++)", "", MaxReduce);
  SummaryRow(table, measurements, schemes, "Average (C only)", "C", MeanReduce);
  SummaryRow(table, measurements, schemes, "Median (C only)", "C", MedianReduce);
  SummaryRow(table, measurements, schemes, "Maximum (C only)", "C", MaxReduce);
  table.Print();

  std::printf("\nPaper reference: SafeStack 0.0%% / CPS 1.9%% / CPI 8.4%% average (C/C++);\n"
              "C-only averages -0.4%% / 1.2%% / 2.9%%. Expect the same ordering and the\n"
              "C++ rows (omnetpp, xalancbmk, dealII) dominating CPI. PtrEnc has no paper\n"
              "counterpart; expect it near CPS (same instrumented ops, PAC-style costs).\n");
  if (flags.timing) {
    std::printf("\nwall-clock: %.1f ms (build + instrument + run, all columns, "
                "scale %d, jobs %d)\n",
                wall_ms, flags.scale, flags.jobs);
  }
  return 0;
}
