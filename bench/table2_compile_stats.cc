// Reproduces Table 2: compilation statistics — the fraction of functions
// needing an unsafe stack frame (FNUStack) and the fraction of memory
// operations instrumented for CPS (MOCPS) and CPI (MOCPI).
//
// Expected shape: FNUStack mostly between 10%% and 75%%; MOCPS well below
// MOCPI everywhere; MOCPI highest for the C++/vtable workloads (omnetpp,
// xalancbmk, dealII) and the function-pointer-table C programs (perlbench,
// gcc); near zero for pure numeric kernels.
#include <cstdio>
#include <map>

#include "bench/flags.h"
#include "src/analysis/classify.h"
#include "src/ir/clone.h"
#include "src/support/table.h"
#include "src/workloads/measure.h"

int main(int argc, char** argv) {
  const cpi::bench::Flags flags = cpi::bench::Parse(argc, argv);

  std::printf("Table 2 — Levee compilation statistics\n\n");

  const auto& workloads = cpi::workloads::SpecCpu2006();
  const auto built = cpi::workloads::BuildWorkloads(workloads, flags.scale, flags.jobs);

  // The classification is a pure static analysis; run it across the pool
  // too, reducing into per-workload slots.
  std::vector<cpi::analysis::ModuleStats> stats(workloads.size());
  cpi::ThreadPool pool(flags.jobs);
  pool.ParallelFor(workloads.size(), [&](size_t i) {
    cpi::analysis::ClassifyOptions options;
    stats[i] = cpi::analysis::ComputeModuleStats(*built[i], options);
  });

  cpi::Table table({"Benchmark", "Lang", "FNUStack", "MOCPS", "MOCPI"});
  for (size_t i = 0; i < workloads.size(); ++i) {
    table.AddRow({workloads[i].name, workloads[i].language,
                  cpi::Table::FormatPercent(stats[i].FnuStackPercent()),
                  cpi::Table::FormatPercent(stats[i].MoCpsPercent()),
                  cpi::Table::FormatPercent(stats[i].MoCpiPercent())});
  }
  table.Print();

  std::printf("\nPaper reference: FNUStack 6.9%%-75.8%%, MOCPS 0.1%%-17.5%%, "
              "MOCPI 0.1%%-36.6%%;\nMOCPS <= MOCPI on every row, C++ rows highest.\n");

  if (flags.opt >= 1) {
    // §5.2's prerequisite: the instrumentation count before/after the
    // post-instrumentation optimizer, under the headline CPI configuration,
    // with the optimizer's per-pass breakdown aggregated over the suite.
    std::printf("\nCPI instrumentation counts at --opt %d "
                "(instructions: vanilla / instrumented / optimized)\n\n",
                flags.opt);
    std::vector<cpi::core::CompileOutput> outputs(workloads.size());
    pool.ParallelFor(workloads.size(), [&](size_t i) {
      auto clone = cpi::ir::CloneModule(*built[i]);
      cpi::core::Config config = cpi::bench::BaseConfig(flags);
      config.protection = cpi::core::Protection::kCpi;
      outputs[i] = cpi::core::Compiler(config).Instrument(*clone);
    });

    cpi::Table opt_table({"Benchmark", "Vanilla", "Instrumented", "Optimized",
                          "Removed", "ChecksElim", "StoreOpsElim"});
    for (size_t i = 0; i < workloads.size(); ++i) {
      const cpi::core::CompileOutput& co = outputs[i];
      uint64_t checks = 0;
      uint64_t store_ops = 0;
      for (const cpi::opt::PassStats& ps : co.opt.passes) {
        checks += ps.eliminated_checks;
        store_ops += ps.eliminated_safe_store_ops;
      }
      opt_table.AddRow({workloads[i].name, std::to_string(co.instructions_before),
                        std::to_string(co.instructions_after),
                        std::to_string(co.instructions_after_opt),
                        std::to_string(co.opt.TotalRemoved()), std::to_string(checks),
                        std::to_string(store_ops)});
    }
    opt_table.Print();

    std::printf("\nPer-pass statistics (aggregated over the SPEC set):\n\n");
    std::map<std::string, cpi::opt::PassStats> per_pass;
    for (const cpi::core::CompileOutput& co : outputs) {
      for (const cpi::opt::PassStats& ps : co.opt.passes) {
        cpi::opt::PassStats& agg = per_pass[ps.pass];
        agg.pass = ps.pass;
        agg.removed_instructions += ps.removed_instructions;
        agg.eliminated_checks += ps.eliminated_checks;
        agg.eliminated_safe_store_ops += ps.eliminated_safe_store_ops;
        agg.eliminated_seal_ops += ps.eliminated_seal_ops;
        agg.forwarded_loads += ps.forwarded_loads;
        agg.leaf_ret_elisions += ps.leaf_ret_elisions;
      }
    }
    cpi::Table pass_table({"Pass", "Removed", "ChecksElim", "StoreOpsElim",
                           "SealOpsElim", "ForwardedLoads", "LeafRetElisions"});
    for (const auto& [name, ps] : per_pass) {
      pass_table.AddRow({name, std::to_string(ps.removed_instructions),
                         std::to_string(ps.eliminated_checks),
                         std::to_string(ps.eliminated_safe_store_ops),
                         std::to_string(ps.eliminated_seal_ops),
                         std::to_string(ps.forwarded_loads),
                         std::to_string(ps.leaf_ret_elisions)});
    }
    pass_table.Print();
  }
  return 0;
}
