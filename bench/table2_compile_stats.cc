// Reproduces Table 2: compilation statistics — the fraction of functions
// needing an unsafe stack frame (FNUStack) and the fraction of memory
// operations instrumented for CPS (MOCPS) and CPI (MOCPI).
//
// Expected shape: FNUStack mostly between 10%% and 75%%; MOCPS well below
// MOCPI everywhere; MOCPI highest for the C++/vtable workloads (omnetpp,
// xalancbmk, dealII) and the function-pointer-table C programs (perlbench,
// gcc); near zero for pure numeric kernels.
#include <cstdio>

#include "bench/flags.h"
#include "src/analysis/classify.h"
#include "src/support/table.h"
#include "src/workloads/measure.h"

int main(int argc, char** argv) {
  const cpi::bench::Flags flags = cpi::bench::Parse(argc, argv);

  std::printf("Table 2 — Levee compilation statistics\n\n");

  const auto& workloads = cpi::workloads::SpecCpu2006();
  const auto built = cpi::workloads::BuildWorkloads(workloads, flags.scale, flags.jobs);

  // The classification is a pure static analysis; run it across the pool
  // too, reducing into per-workload slots.
  std::vector<cpi::analysis::ModuleStats> stats(workloads.size());
  cpi::ThreadPool pool(flags.jobs);
  pool.ParallelFor(workloads.size(), [&](size_t i) {
    cpi::analysis::ClassifyOptions options;
    stats[i] = cpi::analysis::ComputeModuleStats(*built[i], options);
  });

  cpi::Table table({"Benchmark", "Lang", "FNUStack", "MOCPS", "MOCPI"});
  for (size_t i = 0; i < workloads.size(); ++i) {
    table.AddRow({workloads[i].name, workloads[i].language,
                  cpi::Table::FormatPercent(stats[i].FnuStackPercent()),
                  cpi::Table::FormatPercent(stats[i].MoCpsPercent()),
                  cpi::Table::FormatPercent(stats[i].MoCpiPercent())});
  }
  table.Print();

  std::printf("\nPaper reference: FNUStack 6.9%%-75.8%%, MOCPS 0.1%%-17.5%%, "
              "MOCPI 0.1%%-36.6%%;\nMOCPS <= MOCPI on every row, C++ rows highest.\n");
  return 0;
}
