// Reproduces Table 2: compilation statistics — the fraction of functions
// needing an unsafe stack frame (FNUStack) and the fraction of memory
// operations instrumented for CPS (MOCPS) and CPI (MOCPI).
//
// Expected shape: FNUStack mostly between 10%% and 75%%; MOCPS well below
// MOCPI everywhere; MOCPI highest for the C++/vtable workloads (omnetpp,
// xalancbmk, dealII) and the function-pointer-table C programs (perlbench,
// gcc); near zero for pure numeric kernels.
#include <cstdio>

#include "src/analysis/classify.h"
#include "src/support/table.h"
#include "src/workloads/workloads.h"

int main() {
  std::printf("Table 2 — Levee compilation statistics\n\n");

  cpi::Table table({"Benchmark", "Lang", "FNUStack", "MOCPS", "MOCPI"});
  for (const auto& w : cpi::workloads::SpecCpu2006()) {
    auto module = w.build(1);
    cpi::analysis::ClassifyOptions options;
    const cpi::analysis::ModuleStats stats =
        cpi::analysis::ComputeModuleStats(*module, options);
    table.AddRow({w.name, w.language, cpi::Table::FormatPercent(stats.FnuStackPercent()),
                  cpi::Table::FormatPercent(stats.MoCpsPercent()),
                  cpi::Table::FormatPercent(stats.MoCpiPercent())});
  }
  table.Print();

  std::printf("\nPaper reference: FNUStack 6.9%%-75.8%%, MOCPS 0.1%%-17.5%%, "
              "MOCPI 0.1%%-36.6%%;\nMOCPS <= MOCPI on every row, C++ rows highest.\n");
  return 0;
}
