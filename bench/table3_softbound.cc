// Reproduces Table 3: Levee (the registry's overhead-column schemes) vs
// SoftBound-style full memory safety on the benchmarks SoftBound can run.
//
// Expected shape: SoftBound an order of magnitude above CPI (paper: 60-250%
// vs 2.6-5.8%), and — like the paper observed — some workloads simply do not
// run to completion under SoftBound (unsafe pointer idioms produce false
// violations); those rows are reported as "fails".
#include <cstdio>

#include "src/core/scheme.h"
#include "src/support/stats.h"
#include "src/support/table.h"
#include "src/workloads/measure.h"

int main() {
  std::printf("Table 3 — Levee vs SoftBound-style full memory safety\n\n");

  using cpi::core::Config;
  using cpi::core::Protection;
  using cpi::core::ProtectionScheme;

  // The comparison columns: every overhead scheme, then the SoftBound row
  // subject (its own column, since it is this table's point).
  std::vector<const ProtectionScheme*> schemes =
      cpi::core::SchemeRegistry::OverheadColumns();
  schemes.push_back(&cpi::core::SchemeRegistry::Get(Protection::kSoftBound));

  std::vector<std::string> header = {"Benchmark"};
  for (const ProtectionScheme* s : schemes) {
    header.push_back(s->name());
  }
  cpi::Table table(header);
  int softbound_failures = 0;

  for (const auto& w : cpi::workloads::SpecCpu2006()) {
    // Vanilla baseline.
    Config vanilla;
    auto base_module = w.build(1);
    cpi::core::Compiler base_compiler(vanilla);
    base_compiler.Instrument(*base_module);
    auto base = cpi::core::Run(*base_module, vanilla, w.input);
    CPI_CHECK(base.status == cpi::vm::RunStatus::kOk);
    const double base_cycles = static_cast<double>(base.counters.cycles);

    std::vector<std::string> row = {w.name};
    for (const ProtectionScheme* s : schemes) {
      Config config;
      config.protection = s->id();
      auto module = w.build(1);
      auto r = cpi::core::InstrumentAndRun(*module, config, w.input);
      if (r.status != cpi::vm::RunStatus::kOk) {
        if (s->id() == Protection::kSoftBound) {
          ++softbound_failures;
        }
        row.push_back("fails");
        continue;
      }
      row.push_back(cpi::Table::FormatPercent(
          cpi::OverheadPercent(static_cast<double>(r.counters.cycles), base_cycles)));
    }
    table.AddRow(row);
  }
  table.Print();

  std::printf("\nSoftBound failures: %d (the paper likewise reports that many SPEC\n"
              "benchmarks do not compile or run under SoftBound).\n"
              "Paper reference rows: bzip2 2.8%% CPI vs 90.2%% SoftBound; h264ref\n"
              "5.8%% vs 249.4%% — CPI should be an order of magnitude cheaper.\n",
              softbound_failures);
  return 0;
}
