// Reproduces Table 3: Levee (the registry's overhead-column schemes) vs
// SoftBound-style full memory safety on the benchmarks SoftBound can run.
//
// Expected shape: SoftBound an order of magnitude above CPI (paper: 60-250%
// vs 2.6-5.8%), and — like the paper observed — some workloads simply do not
// run to completion under SoftBound (unsafe pointer idioms produce false
// violations); those rows are reported as "fails".
#include <cstdio>

#include "bench/flags.h"
#include "src/core/scheme.h"
#include "src/support/stats.h"
#include "src/support/table.h"
#include "src/workloads/measure.h"

int main(int argc, char** argv) {
  const cpi::bench::Flags flags = cpi::bench::Parse(argc, argv);

  std::printf("Table 3 — Levee vs SoftBound-style full memory safety\n\n");

  using cpi::core::Protection;
  using cpi::core::ProtectionScheme;

  // The comparison columns: every overhead scheme, then the SoftBound row
  // subject (its own column, since it is this table's point).
  std::vector<const ProtectionScheme*> schemes =
      cpi::core::SchemeRegistry::OverheadColumns();
  schemes.push_back(&cpi::core::SchemeRegistry::Get(Protection::kSoftBound));

  std::vector<Protection> protections;
  for (const ProtectionScheme* s : schemes) {
    protections.push_back(s->id());
  }

  const auto& workloads = cpi::workloads::SpecCpu2006();
  const auto measurements = cpi::workloads::MeasureWorkloads(
      workloads, protections, flags.scale, cpi::bench::BaseConfig(flags), flags.jobs);

  std::vector<std::string> header = {"Benchmark"};
  for (const ProtectionScheme* s : schemes) {
    header.push_back(s->name());
  }
  cpi::Table table(header);
  int softbound_failures = 0;

  for (const auto& m : measurements) {
    std::vector<std::string> row = {m.workload};
    for (const ProtectionScheme* s : schemes) {
      if (m.status.at(s->id()) != cpi::vm::RunStatus::kOk) {
        if (s->id() == Protection::kSoftBound) {
          ++softbound_failures;
        }
        row.push_back("fails");
        continue;
      }
      row.push_back(cpi::Table::FormatPercent(m.overhead_pct.at(s->id())));
    }
    table.AddRow(row);
  }
  table.Print();

  std::printf("\nSoftBound failures: %d (the paper likewise reports that many SPEC\n"
              "benchmarks do not compile or run under SoftBound).\n"
              "Paper reference rows: bzip2 2.8%% CPI vs 90.2%% SoftBound; h264ref\n"
              "5.8%% vs 249.4%% — CPI should be an order of magnitude cheaper.\n",
              softbound_failures);
  return 0;
}
