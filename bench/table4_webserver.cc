// Reproduces Table 4: web-server stack throughput (static page / wsgi /
// dynamic page) under every registry scheme that reports an overhead column,
// plus the concurrent variant: the same scenarios served by multi-worker
// servers on the VM's simulated thread scheduler (per-thread safe stacks,
// shared safe pointer store).
//
// Throughput degradation is reported as overhead (the paper reports
// throughput loss; with a deterministic cost model the cycle overhead is the
// same quantity). Expected shape: static < wsgi << dynamic, with CPI on the
// dynamic (interpreter-style, universal-pointer-heavy) page far above
// everything else (paper: 138.8%).
#include <cstdio>

#include "bench/flags.h"
#include "src/core/scheme.h"
#include "src/support/table.h"
#include "src/workloads/measure.h"

namespace {

void PrintOverheads(const char* title,
                    const std::vector<cpi::workloads::Measurement>& measurements) {
  std::printf("%s\n\n", title);
  const auto schemes = cpi::core::SchemeRegistry::OverheadColumns();
  std::vector<std::string> header = {"Benchmark"};
  for (const cpi::core::ProtectionScheme* s : schemes) {
    header.push_back(s->name());
  }
  cpi::Table table(header);
  for (const auto& m : measurements) {
    std::vector<std::string> row = {m.workload};
    for (const cpi::core::ProtectionScheme* s : schemes) {
      row.push_back(cpi::Table::FormatPercent(m.OverheadPct(s->id())));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const cpi::bench::Flags flags = cpi::bench::Parse(argc, argv);

  const auto measurements = cpi::workloads::MeasureWorkloads(
      cpi::workloads::WebServer(), cpi::workloads::OverheadProtections(), flags.scale,
      cpi::bench::BaseConfig(flags), flags.jobs);
  PrintOverheads("Table 4 — web-server stack throughput overhead", measurements);

  const auto concurrent = cpi::workloads::MeasureWorkloads(
      cpi::workloads::ConcurrentServer(), cpi::workloads::OverheadProtections(),
      flags.scale, cpi::bench::BaseConfig(flags), flags.jobs);
  PrintOverheads("Table 4 (concurrent) — multi-worker servers, simulated threads",
                 concurrent);

  std::printf("Paper reference: static 1.7/8.9/16.9%%, wsgi 1.0/4.0/15.3%%, dynamic\n"
              "1.4/15.9/138.8%% (SafeStack/CPS/CPI) — expect the same ordering with the\n"
              "dynamic page dominating CPI, single- and multi-threaded alike.\n");
  return 0;
}
