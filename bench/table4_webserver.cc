// Reproduces Table 4: web-server stack throughput (static page / wsgi /
// dynamic page) under SafeStack, CPS and CPI.
//
// Throughput degradation is reported as overhead (the paper reports
// throughput loss; with a deterministic cost model the cycle overhead is the
// same quantity). Expected shape: static < wsgi << dynamic, with CPI on the
// dynamic (interpreter-style, universal-pointer-heavy) page far above
// everything else (paper: 138.8%).
#include <cstdio>

#include "src/support/table.h"
#include "src/workloads/measure.h"

int main() {
  std::printf("Table 4 — web-server stack throughput overhead\n\n");

  using cpi::core::Protection;
  const std::vector<Protection> protections = {Protection::kSafeStack, Protection::kCps,
                                               Protection::kCpi};
  const auto measurements =
      cpi::workloads::MeasureWorkloads(cpi::workloads::WebServer(), protections,
                                       /*scale=*/1);

  cpi::Table table({"Benchmark", "Safe Stack", "CPS", "CPI"});
  for (const auto& m : measurements) {
    table.AddRow({m.workload,
                  cpi::Table::FormatPercent(m.overhead_pct.at(Protection::kSafeStack)),
                  cpi::Table::FormatPercent(m.overhead_pct.at(Protection::kCps)),
                  cpi::Table::FormatPercent(m.overhead_pct.at(Protection::kCpi))});
  }
  table.Print();

  std::printf("\nPaper reference: static 1.7/8.9/16.9%%, wsgi 1.0/4.0/15.3%%, dynamic\n"
              "1.4/15.9/138.8%% (SafeStack/CPS/CPI) — expect the same ordering with the\n"
              "dynamic page dominating CPI.\n");
  return 0;
}
