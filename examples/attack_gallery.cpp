// Attack gallery: sweep the full RIPE-style matrix under every protection
// level and print the verdict grid — a compact view of Fig. 5's security
// columns.
//
//   $ ./examples/example_attack_gallery
#include <cstdio>

#include "src/attacks/ripe.h"
#include "src/support/table.h"

int main() {
  using cpi::attacks::AttackOutcome;
  using cpi::core::Config;
  using cpi::core::Protection;

  const Protection protections[] = {Protection::kNone, Protection::kStackCookies,
                                    Protection::kCfi, Protection::kSafeStack,
                                    Protection::kCps, Protection::kCpi};

  cpi::Table table({"attack", "vanilla", "cookies", "cfi", "safestack", "cps", "cpi"});
  const auto specs = cpi::attacks::GenerateAttackMatrix();
  for (const auto& spec : specs) {
    std::vector<std::string> row = {spec.Name()};
    for (Protection p : protections) {
      Config config;
      config.protection = p;
      auto r = cpi::attacks::RunAttack(spec, config);
      row.push_back(r.Hijacked() ? "HIJACK" : "-");
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\n'-' = attack failed (prevented, crashed, or neutralised).\n"
              "Note the cps/cpi columns: no HIJACK anywhere, including the\n"
              "addr-taken variants that bypass coarse CFI.\n");
  return 0;
}
