// Debug utility: dump a workload's IR after instrumentation and after
// optimization, with the per-pass statistics.
//
//   dump_opt <workload-name> [scheme-name]
#include <cstdio>
#include <cstring>

#include "src/core/scheme.h"
#include "src/ir/printer.h"
#include "src/workloads/workloads.h"

int main(int argc, char** argv) {
  const char* workload_name = argc > 1 ? argv[1] : "400.perlbench";
  const char* scheme_name = argc > 2 ? argv[2] : "cpi";

  const cpi::workloads::Workload* w = cpi::workloads::FindWorkload(workload_name);
  if (w == nullptr) {
    std::fprintf(stderr, "unknown workload %s\n", workload_name);
    return 1;
  }
  const cpi::core::ProtectionScheme* s =
      cpi::core::SchemeRegistry::FindByName(scheme_name);
  if (s == nullptr) {
    std::fprintf(stderr, "unknown scheme %s\n", scheme_name);
    return 1;
  }

  cpi::core::Config config;
  config.protection = s->id();
  auto instrumented = w->build(1);
  cpi::core::Compiler(config).Instrument(*instrumented);
  std::printf("=== %s under %s, O0 ===\n%s\n", workload_name, scheme_name,
              cpi::ir::PrintModule(*instrumented).c_str());

  config.opt_level = 1;
  auto optimized = w->build(1);
  const cpi::core::CompileOutput co = cpi::core::Compiler(config).Instrument(*optimized);
  std::printf("=== %s under %s, O1 ===\n%s\n", workload_name, scheme_name,
              cpi::ir::PrintModule(*optimized).c_str());
  for (const auto& ps : co.opt.passes) {
    std::printf("pass %-22s removed=%llu checks=%llu store_ops=%llu seal_ops=%llu "
                "forwarded=%llu leaf_rets=%llu\n",
                ps.pass.c_str(), (unsigned long long)ps.removed_instructions,
                (unsigned long long)ps.eliminated_checks,
                (unsigned long long)ps.eliminated_safe_store_ops,
                (unsigned long long)ps.eliminated_seal_ops,
                (unsigned long long)ps.forwarded_loads,
                (unsigned long long)ps.leaf_ret_elisions);
  }
  return 0;
}
