// The Perl-opcode-dispatch example from §3.3, in code.
//
// The paper uses a bytecode interpreter to explain why CPS is stronger than
// CFI: CFI admits *any* opcode handler at an indirect call site, while CPS
// only admits code pointers that were actually stored by the program. This
// example builds such an interpreter in the C subset, corrupts the dispatch
// table with a function that IS in the CFI valid set, and shows CFI accept
// the hijack while CPS rejects it.
//
//   $ ./examples/example_opcode_interpreter
#include <cstdio>

#include "src/core/levee.h"
#include "src/frontend/compile.h"
#include "src/vm/machine.h"

int main() {
  const char* source = R"(
    void (*dispatch[8])();
    int acc;

    void op_push() { acc = acc + 1; }
    void op_add()  { acc = acc + 10; }
    void op_halt() { output(acc); }
    // A handler the interpreter knows but this program never installs —
    // think of it as Perl's `system` opcode. Its address IS taken (it lives
    // in a registry), so coarse CFI considers it a valid call target.
    void op_system() { output(666); }
    void (*registry)();

    int main() {
      registry = op_system;           // address taken: in CFI's valid set
      dispatch[0] = op_push;
      dispatch[1] = op_add;
      dispatch[2] = op_halt;

      // The memory bug: an attacker-controlled write into the dispatch
      // table (any heap/global corruption gets them this).
      int index = input();
      int value = input();
      if (value != 0) {
        int* cell = (int*)(dispatch + index);
        *cell = value;
      }

      // The interpreter's main loop: opcodes 0,1,1,2.
      dispatch[0]();
      dispatch[1]();
      dispatch[1]();
      dispatch[2]();
      return 0;
    }
  )";

  auto compiled = cpi::frontend::CompileC(source, "interp");
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile error: %s\n", compiled.error.c_str());
    return 1;
  }
  const cpi::vm::ProgramLayout layout = cpi::vm::ComputeProgramLayout(*compiled.module);
  const uint64_t op_system =
      layout.CodeAddress(compiled.module->FindFunction("op_system"));

  // Overwrite dispatch[1] with op_system.
  cpi::core::Input exploit;
  exploit.words = {1, op_system};

  for (cpi::core::Protection p :
       {cpi::core::Protection::kNone, cpi::core::Protection::kCfi,
        cpi::core::Protection::kCps, cpi::core::Protection::kCpi}) {
    auto module = cpi::frontend::CompileC(source, "interp").module;
    cpi::core::Config config;
    config.protection = p;
    auto r = cpi::core::InstrumentAndRun(*module, config, exploit);
    std::printf("%-9s: status=%-9s %s\n", cpi::core::ProtectionName(p),
                cpi::vm::RunStatusName(r.status),
                r.OutputContains(666) ? "op_system EXECUTED (hijack)"
                                      : "op_system never ran");
  }
  std::printf("\nCFI admits the hijack (op_system is in the valid target set);\n"
              "CPS/CPI reject it: the corrupted slot never went through a\n"
              "code-pointer store, so the loaded value is not a safe code pointer.\n");
  return 0;
}
