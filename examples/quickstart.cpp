// Quickstart: compile a C program with a classic function-pointer overflow,
// run it unprotected (hijacked), then rebuild with -fcpi (safe).
//
//   $ ./examples/example_quickstart
#include <cstdio>

#include "src/core/levee.h"
#include "src/frontend/compile.h"
#include "src/vm/machine.h"

int main() {
  const char* source = R"(
    // A web server's callback registry: name buffer followed by the handler.
    struct route { char path[16]; void (*handler)(); };
    struct route table[1];

    void serve_index()  { output(200); }
    void debug_shell()  { output(31337); }   // the function attackers want

    int main() {
      table[0].handler = serve_index;
      char request[64];
      input_bytes(request, 64);
      strcpy(table[0].path, request);        // classic unbounded copy
      table[0].handler();
      return 0;
    }
  )";

  auto compiled = cpi::frontend::CompileC(source, "quickstart");
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile error: %s\n", compiled.error.c_str());
    return 1;
  }

  // Craft the exploit the way RIPE does: padding up to the handler field,
  // then the address of debug_shell (the program layout is known, as a
  // binary's layout is to an attacker).
  const cpi::vm::ProgramLayout layout = cpi::vm::ComputeProgramLayout(*compiled.module);
  const uint64_t target =
      layout.CodeAddress(compiled.module->FindFunction("debug_shell"));
  cpi::core::Input exploit;
  exploit.bytes.assign(16, 'A');
  for (int i = 0; i < 8; ++i) {
    exploit.bytes.push_back(static_cast<uint8_t>(target >> (8 * i)));
  }
  exploit.bytes.push_back(0);

  std::printf("== vanilla build ==\n");
  {
    auto module = cpi::frontend::CompileC(source, "quickstart").module;
    cpi::core::Config config;  // Protection::kNone
    auto r = cpi::core::InstrumentAndRun(*module, config, exploit);
    std::printf("status: %s, output:", cpi::vm::RunStatusName(r.status));
    for (uint64_t v : r.output) {
      std::printf(" %llu", static_cast<unsigned long long>(v));
    }
    std::printf("  %s\n",
                r.OutputContains(31337) ? "<-- debug_shell executed: HIJACKED" : "");
  }

  std::printf("\n== rebuilt with -fcpi ==\n");
  {
    auto module = cpi::frontend::CompileC(source, "quickstart").module;
    cpi::core::Config config;
    config.protection = cpi::core::Protection::kCpi;
    auto r = cpi::core::InstrumentAndRun(*module, config, exploit);
    std::printf("status: %s, output:", cpi::vm::RunStatusName(r.status));
    for (uint64_t v : r.output) {
      std::printf(" %llu", static_cast<unsigned long long>(v));
    }
    std::printf("  %s\n", !r.OutputContains(31337)
                              ? "<-- handler loaded from the safe store: attack neutralised"
                              : "");
  }
  return 0;
}
