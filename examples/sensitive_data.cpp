// §4 "Sensitive data protection": CPI's machinery applied to non-code data.
//
// The paper's example is FreeBSD's `struct ucred` (process credentials): a
// programmer annotation marks the type sensitive and CPI keeps every pointer
// to it in the safe region. This example shows a privilege-escalation-style
// corruption of a credential object pointer being neutralised.
//
//   $ ./examples/example_sensitive_data
#include <cstdio>

#include "src/core/levee.h"
#include "src/ir/builder.h"
#include "src/vm/machine.h"

using namespace cpi;  // an example: brevity over style here

std::unique_ptr<ir::Module> BuildKernelModule(bool annotate) {
  auto m = std::make_unique<ir::Module>("mini_kernel");
  auto& t = m->types();
  ir::IRBuilder b(m.get());

  // struct ucred { uid: i64; };  curproc_cred: ucred*
  ir::StructType* ucred = t.GetOrCreateStruct("ucred");
  ucred->SetBody({{"uid", t.I64(), 0}});
  if (annotate) {
    m->AnnotateSensitive(ucred);  // the programmer annotation of §3.2.1
  }
  ir::GlobalVariable* curproc_cred = m->CreateGlobal("curproc_cred", t.PointerTo(ucred));

  ir::Function* main = m->CreateFunction("main", t.FunctionTy(t.I64(), {}));
  b.SetInsertPoint(main->CreateBlock("entry"));

  // Boot: allocate credentials with uid = 1000 (unprivileged).
  ir::Value* cred = b.Malloc(b.I64(8), t.PointerTo(ucred));
  b.Store(b.I64(1000), b.FieldAddr(cred, "uid"));
  b.Store(cred, b.GlobalAddr(curproc_cred));

  // Attacker primitive: an arbitrary write redirects curproc_cred to a fake
  // credential struct (uid = 0) built in attacker-reachable memory.
  ir::Value* fake = b.Malloc(b.I64(8), t.PointerTo(t.I64()));
  b.Store(b.I64(0), fake);  // uid 0 == root
  ir::Value* attacker_addr = b.Input();
  ir::Value* attacker_val = b.Input();
  b.Store(attacker_val, b.IntToPtr(attacker_addr, t.PointerTo(t.I64())));
  (void)fake;

  // Kernel privilege check: load the cred pointer, read uid.
  ir::Value* loaded = b.Load(b.GlobalAddr(curproc_cred));
  ir::Value* uid = b.Load(b.FieldAddr(loaded, "uid"));
  b.Output(uid);
  b.Ret(b.I64(0));
  return m;
}

int main() {
  // The fake cred is the second malloc: at a known heap offset.
  const uint64_t fake_addr = vm::FirstHeapAddress() + 16;

  for (bool annotate : {false, true}) {
    auto module = BuildKernelModule(annotate);
    const vm::ProgramLayout layout = vm::ComputeProgramLayout(*module);
    const uint64_t cred_ptr_addr =
        layout.GlobalAddress(module->FindGlobal("curproc_cred"));

    core::Config config;
    config.protection = core::Protection::kCpi;
    core::Input exploit;
    exploit.words = {cred_ptr_addr, fake_addr};

    auto r = core::InstrumentAndRun(*module, config, exploit);
    std::printf("ucred %-13s: status=%-9s uid=%s\n",
                annotate ? "annotated" : "not annotated",
                vm::RunStatusName(r.status),
                r.output.empty() ? "-" : std::to_string(r.output[0]).c_str());
  }
  std::printf("\nWithout the annotation the attacker's fake credential (uid 0) is\n"
              "used; with `ucred` annotated sensitive, the pointer is loaded from\n"
              "the safe store and the real uid (1000) survives.\n");
  return 0;
}
