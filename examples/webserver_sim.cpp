// The §5.3 case study in miniature: "rebuild the whole stack with CPI/CPS/
// SafeStack and measure throughput" — runs the three web-server scenarios
// under all four configurations and prints requests-per-megacycle.
//
//   $ ./examples/example_webserver_sim
#include <cstdio>

#include "src/support/table.h"
#include "src/workloads/measure.h"

int main() {
  using cpi::core::Config;
  using cpi::core::Protection;

  std::printf("Mini web-server stack (static / wsgi / dynamic), all builds\n\n");
  cpi::Table table({"scenario", "build", "cycles", "throughput (req/Mcycle)", "vs vanilla"});
  for (const auto& w : cpi::workloads::WebServer()) {
    double vanilla_cycles = 0;
    for (Protection p : {Protection::kNone, Protection::kSafeStack, Protection::kCps,
                         Protection::kCpi}) {
      Config config;
      config.protection = p;
      auto module = w.build(1);
      auto r = cpi::core::InstrumentAndRun(*module, config, w.input);
      if (r.status != cpi::vm::RunStatus::kOk) {
        table.AddRow({w.name, cpi::core::ProtectionName(p), "-", "-", "fails"});
        continue;
      }
      const double cycles = static_cast<double>(r.counters.cycles);
      if (p == Protection::kNone) {
        vanilla_cycles = cycles;
      }
      // Every scenario serves a fixed request count per run; relative
      // throughput is inverse relative cycles.
      const double requests = 400.0;
      const double throughput = requests / (cycles / 1e6);
      char rel[32];
      std::snprintf(rel, sizeof(rel), "%.1f%%", (vanilla_cycles / cycles) * 100.0);
      table.AddRow({w.name, cpi::core::ProtectionName(p),
                    cpi::Table::FormatDouble(cycles, 0),
                    cpi::Table::FormatDouble(throughput, 1), rel});
    }
    table.AddSeparator();
  }
  table.Print();
  std::printf("\nAll scenarios keep working under every build — the paper's\n"
              "practicality claim — with throughput ordered vanilla >= safestack\n"
              ">= cps >= cpi, and the dynamic page hit hardest by CPI.\n");
  return 0;
}
