#include "src/analysis/classify.h"

#include <vector>

namespace cpi::analysis {

using ir::CastKind;
using ir::Function;
using ir::Instruction;
using ir::LibFunc;
using ir::Opcode;
using ir::PointerType;
using ir::Type;
using ir::Value;
using ir::ValueKind;

double ModuleStats::FnuStackPercent() const {
  return total_functions == 0
             ? 0.0
             : 100.0 * static_cast<double>(unsafe_frame_functions) /
                   static_cast<double>(total_functions);
}
double ModuleStats::MoCpiPercent() const {
  return total_mem_ops == 0 ? 0.0
                            : 100.0 * static_cast<double>(instrumented_cpi) /
                                  static_cast<double>(total_mem_ops);
}
double ModuleStats::MoCpsPercent() const {
  return total_mem_ops == 0 ? 0.0
                            : 100.0 * static_cast<double>(instrumented_cps) /
                                  static_cast<double>(total_mem_ops);
}

namespace {

const Type* Pointee(const Value* v) {
  return static_cast<const PointerType*>(v->type())->pointee();
}

bool IsStringLibFunc(LibFunc f) {
  switch (f) {
    case LibFunc::kStrcpy:
    case LibFunc::kStrncpy:
    case LibFunc::kStrcat:
    case LibFunc::kStrlen:
    case LibFunc::kStrcmp:
      return true;
    default:
      return false;
  }
}

bool IsMemTransferLibFunc(LibFunc f) {
  switch (f) {
    case LibFunc::kMemcpy:
    case LibFunc::kMemset:
    case LibFunc::kMemmove:
    case LibFunc::kStrcpy:
    case LibFunc::kStrncpy:
    case LibFunc::kStrcat:
    case LibFunc::kInputBytes:
      return true;
    default:
      return false;
  }
}

// Looks through pointer bitcasts to recover the "real" type of a pointer
// argument before it was cast to void*/char* for a libc call (§3.2.2: the
// analysis inspects the real types of memset/memcpy arguments prior to the
// cast).
const Type* RealPointeeType(const Value* ptr) {
  const Value* v = ptr;
  while (v->value_kind() == ValueKind::kInstruction) {
    const auto* inst = static_cast<const Instruction*>(v);
    if (inst->op() == Opcode::kCast && inst->cast_kind() == CastKind::kBitcast) {
      v = inst->operand(0);
      continue;
    }
    break;
  }
  if (!v->type()->IsPointer()) {
    return nullptr;
  }
  return Pointee(v);
}

}  // namespace

const Value* Classifier::AddressRoot(const Value* ptr) {
  const Value* v = ptr;
  for (;;) {
    if (v->value_kind() != ValueKind::kInstruction) {
      return v;
    }
    const auto* inst = static_cast<const Instruction*>(v);
    switch (inst->op()) {
      case Opcode::kFieldAddr:
      case Opcode::kIndexAddr:
        v = inst->operand(0);
        break;
      case Opcode::kCast:
        if (inst->cast_kind() == CastKind::kBitcast) {
          v = inst->operand(0);
          break;
        }
        return v;
      default:
        return v;
    }
  }
}

Classifier::Classifier(const ir::Module& module, ClassifyOptions options)
    : module_(module), options_(options), sensitivity_(module) {
  for (const auto& f : module.functions()) {
    ClassifyFunction(*f);
  }
}

const FunctionClassification& Classifier::ForFunction(const Function* f) const {
  auto it = per_function_.find(f);
  CPI_CHECK(it != per_function_.end());
  return it->second;
}

void Classifier::ClassifyFunction(const Function& f) {
  FunctionClassification& fc = per_function_[&f];
  const bool cpi = options_.protection == Protection::kCpi;

  // ---- char*-string heuristic: values that demonstrably behave as strings.
  std::set<const Value*> string_values;
  if (options_.char_star_heuristic) {
    for (const auto& bb : f.blocks()) {
      for (const Instruction* inst : bb->instructions()) {
        if (inst->op() == Opcode::kLibCall && IsStringLibFunc(inst->lib_func())) {
          for (const Value* op : inst->operands()) {
            if (op->type()->IsPointer()) {
              string_values.insert(op);
            }
          }
        }
        // Pointers into constant character data (string literals).
        if (inst->op() == Opcode::kGlobalAddr && inst->global()->is_const()) {
          const Type* t = inst->global()->type();
          if (t->IsArray() &&
              static_cast<const ir::ArrayType*>(t)->element()->IsInt() &&
              static_cast<const ir::IntType*>(static_cast<const ir::ArrayType*>(t)->element())
                  ->is_char()) {
            string_values.insert(inst);
          }
        }
      }
    }
    // One backward step through address computations: an IndexAddr/bitcast of
    // a string value is a string value too.
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& bb : f.blocks()) {
        for (const Instruction* inst : bb->instructions()) {
          if (string_values.count(inst) > 0) {
            continue;
          }
          const bool derives = (inst->op() == Opcode::kIndexAddr ||
                                (inst->op() == Opcode::kCast &&
                                 inst->cast_kind() == CastKind::kBitcast)) &&
                               string_values.count(inst->operand(0)) > 0;
          if (derives) {
            string_values.insert(inst);
            changed = true;
          }
        }
      }
    }
  }

  // ---- unsafe-cast dataflow (§3.2.1): any value cast to a sensitive pointer
  // type is itself sensitive; propagate backwards through pure value
  // computations and through stack slots.
  std::set<const Value*> cast_sensitive;
  if (options_.cast_dataflow && cpi) {
    std::vector<const Value*> worklist;
    for (const auto& bb : f.blocks()) {
      for (const Instruction* inst : bb->instructions()) {
        if (inst->op() != Opcode::kCast) {
          continue;
        }
        const bool to_sensitive = sensitivity_.IsSensitive(inst->type());
        const bool from_sensitive = sensitivity_.IsSensitive(inst->operand(0)->type());
        if (to_sensitive && !from_sensitive) {
          worklist.push_back(inst->operand(0));
        }
      }
    }
    // Backward closure over operand edges; loads pull in their address roots
    // so that stores into the same slot get instrumented as well.
    std::set<const Value*> slot_roots;
    while (!worklist.empty()) {
      const Value* v = worklist.back();
      worklist.pop_back();
      if (!cast_sensitive.insert(v).second) {
        continue;
      }
      if (v->value_kind() != ValueKind::kInstruction) {
        continue;
      }
      const auto* inst = static_cast<const Instruction*>(v);
      switch (inst->op()) {
        case Opcode::kCast:
        case Opcode::kSelect:
        case Opcode::kBinOp:
        case Opcode::kIndexAddr:
          for (const Value* op : inst->operands()) {
            worklist.push_back(op);
          }
          break;
        case Opcode::kLoad:
          slot_roots.insert(AddressRoot(inst->operand(0)));
          break;
        default:
          break;
      }
    }
    // Mark every load/store rooted at a tainted slot as sensitive.
    for (const auto& bb : f.blocks()) {
      for (const Instruction* inst : bb->instructions()) {
        if (inst->op() == Opcode::kLoad &&
            slot_roots.count(AddressRoot(inst->operand(0))) > 0) {
          cast_sensitive.insert(inst);
        }
        if (inst->op() == Opcode::kStore &&
            slot_roots.count(AddressRoot(inst->operand(1))) > 0) {
          cast_sensitive.insert(inst->operand(0));
        }
      }
    }
  }

  // ---- main per-instruction classification.
  for (const auto& bb : f.blocks()) {
    for (const Instruction* inst : bb->instructions()) {
      switch (inst->op()) {
        case Opcode::kLoad:
        case Opcode::kStore: {
          const bool is_store = inst->op() == Opcode::kStore;
          const Value* addr = inst->operand(is_store ? 1 : 0);
          const Type* value_type = is_store ? inst->operand(0)->type() : inst->type();
          const Value* moved = is_store ? inst->operand(0) : static_cast<const Value*>(inst);

          MemOpClass cls = MemOpClass::kNone;
          const bool sensitive = cpi ? sensitivity_.IsSensitive(value_type)
                                     : sensitivity_.IsSensitiveForCps(value_type);
          if (sensitive) {
            const bool universal = Sensitivity::IsUniversal(value_type);
            const bool is_string = universal && string_values.count(moved) > 0;
            if (is_string) {
              cls = MemOpClass::kNone;  // char* heuristic: plain C string
            } else if (universal) {
              cls = MemOpClass::kProtectedUni;
            } else {
              cls = MemOpClass::kProtected;
            }
          }
          // Unsafe-cast dataflow can only add instrumentation.
          if (cls == MemOpClass::kNone && cpi &&
              (cast_sensitive.count(moved) > 0 || cast_sensitive.count(inst) > 0)) {
            cls = MemOpClass::kProtectedUni;
          }
          fc.mem_ops[inst] = cls;

          // CPI bounds checks: dereferences whose address derives from a
          // sensitive pointer *value* (loaded, passed in, or computed), as
          // opposed to a locally-proven object address.
          if (cpi) {
            // Accesses rooted directly at an alloca or global are provably
            // safe at compile time (the "powerful static analysis passes"
            // §3.2.2 lets optimise checks away). Malloc-rooted accesses keep
            // their check: the object may be freed (temporal safety).
            const Value* root = AddressRoot(addr);
            const bool statically_safe =
                root->value_kind() == ValueKind::kInstruction &&
                (static_cast<const Instruction*>(root)->op() == Opcode::kAlloca ||
                 static_cast<const Instruction*>(root)->op() == Opcode::kGlobalAddr);
            if (!statically_safe && root->type()->IsPointer() &&
                sensitivity_.IsSensitive(root->type())) {
              fc.needs_bounds_check.insert(inst);
            }
          }
          break;
        }
        case Opcode::kLibCall: {
          if (!IsMemTransferLibFunc(inst->lib_func())) {
            break;
          }
          // §3.2.2: memory-transfer calls whose arguments really point to
          // sensitive data must use the checked, metadata-moving variant.
          bool touches_sensitive = false;
          for (const Value* op : inst->operands()) {
            if (!op->type()->IsPointer()) {
              continue;
            }
            const Type* real = RealPointeeType(op);
            if (real == nullptr) {
              continue;
            }
            const bool hit = cpi ? sensitivity_.IsSensitive(real) : ContainsCodePointer(real);
            // char* heuristic: transfers between plain strings stay cheap.
            const bool is_string_arg =
                options_.char_star_heuristic && string_values.count(op) > 0;
            if (hit && !is_string_arg) {
              touches_sensitive = true;
            }
          }
          if (touches_sensitive) {
            fc.checked_libcalls.insert(inst);
          }
          break;
        }
        default:
          break;
      }
    }
  }
}

ModuleStats ComputeModuleStats(const ir::Module& module, const ClassifyOptions& base_options) {
  ModuleStats stats;

  ClassifyOptions cpi_options = base_options;
  cpi_options.protection = Protection::kCpi;
  Classifier cpi(module, cpi_options);

  ClassifyOptions cps_options = base_options;
  cps_options.protection = Protection::kCps;
  Classifier cps(module, cps_options);

  for (const auto& f : module.functions()) {
    ++stats.total_functions;
    if (AnalyzeSafeStack(*f).NeedsUnsafeFrame()) {
      ++stats.unsafe_frame_functions;
    }
    const FunctionClassification& fc_cpi = cpi.ForFunction(f.get());
    const FunctionClassification& fc_cps = cps.ForFunction(f.get());
    for (const auto& bb : f->blocks()) {
      for (const Instruction* inst : bb->instructions()) {
        const bool is_mem_op =
            inst->op() == Opcode::kLoad || inst->op() == Opcode::kStore ||
            (inst->op() == Opcode::kLibCall && IsMemTransferLibFunc(inst->lib_func()));
        if (!is_mem_op) {
          continue;
        }
        ++stats.total_mem_ops;
        auto counts = [&](const FunctionClassification& fc) {
          auto it = fc.mem_ops.find(inst);
          const bool instrumented_memop = it != fc.mem_ops.end() && it->second != MemOpClass::kNone;
          return instrumented_memop || fc.needs_bounds_check.count(inst) > 0 ||
                 fc.checked_libcalls.count(inst) > 0;
        };
        if (counts(fc_cpi)) {
          ++stats.instrumented_cpi;
        }
        if (counts(fc_cps)) {
          ++stats.instrumented_cps;
        }
      }
    }
  }
  return stats;
}

}  // namespace cpi::analysis
