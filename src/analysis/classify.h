// Memory-operation classification (§3.2.1-§3.2.2).
//
// Given the type-based sensitivity criterion, this pass walks every function
// and decides, per load/store/libcall, what instrumentation CPI and CPS
// require:
//   - sensitive loads/stores -> safe-pointer-store intrinsics
//     (universal types get the runtime-dispatched *Uni variants),
//   - dereferences through sensitive pointers -> bounds checks,
//   - memory-transfer libcalls touching sensitive data -> checked,
//     metadata-aware variants (the paper's type-specific memset/memcpy),
//   - the char*-string heuristic and the unsafe-cast dataflow analysis
//     refine the type-based result in both directions.
//
// The aggregate counts are exactly what Table 2 reports (MOCPS / MOCPI /
// FNUStack).
#ifndef CPI_SRC_ANALYSIS_CLASSIFY_H_
#define CPI_SRC_ANALYSIS_CLASSIFY_H_

#include <map>
#include <set>

#include "src/analysis/safe_stack.h"
#include "src/analysis/sensitivity.h"
#include "src/ir/module.h"

namespace cpi::analysis {

enum class Protection { kCpi, kCps };

struct ClassifyOptions {
  Protection protection = Protection::kCpi;
  // §3.2.1: char* values that demonstrably behave as C strings (flow into
  // libc string functions or come from string constants) are not treated as
  // universal pointers.
  bool char_star_heuristic = true;
  // §3.2.1: the dataflow analysis that marks values cast to sensitive
  // pointer types (and the memory slots they flow through) as sensitive.
  bool cast_dataflow = true;
};

// How a single load/store must be instrumented.
enum class MemOpClass {
  kNone,         // regular memory operation, zero overhead
  kProtected,    // sensitive: value+metadata via the safe pointer store
  kProtectedUni, // universal type: runtime-dispatched safe/regular variant
};

struct FunctionClassification {
  // Classification for every kLoad/kStore instruction.
  std::map<const ir::Instruction*, MemOpClass> mem_ops;
  // Loads/stores that additionally need a bounds check on their address
  // operand because the address derives from a sensitive pointer value
  // (CPI only; CPS has no bounds metadata).
  std::set<const ir::Instruction*> needs_bounds_check;
  // Memory-transfer libcalls (memcpy & co.) that must use the checked,
  // metadata-moving variant because they touch sensitive data.
  std::set<const ir::Instruction*> checked_libcalls;
};

// Table 2 equivalents.
struct ModuleStats {
  uint64_t total_functions = 0;
  uint64_t unsafe_frame_functions = 0;  // FNUStack numerator
  uint64_t total_mem_ops = 0;
  uint64_t instrumented_cpi = 0;  // MOCPI numerator
  uint64_t instrumented_cps = 0;  // MOCPS numerator

  double FnuStackPercent() const;
  double MoCpiPercent() const;
  double MoCpsPercent() const;
};

class Classifier {
 public:
  Classifier(const ir::Module& module, ClassifyOptions options);

  const FunctionClassification& ForFunction(const ir::Function* f) const;
  const ClassifyOptions& options() const { return options_; }
  const Sensitivity& sensitivity() const { return sensitivity_; }

  // Walks the address-computation chain (field/index/bitcast) of a pointer
  // value back to its root. Exposed for tests.
  static const ir::Value* AddressRoot(const ir::Value* ptr);

 private:
  void ClassifyFunction(const ir::Function& f);

  const ir::Module& module_;
  ClassifyOptions options_;
  Sensitivity sensitivity_;
  std::map<const ir::Function*, FunctionClassification> per_function_;
};

// Computes Table 2 statistics for a module under both protections.
// `classifier` must have been built with the wanted options.
ModuleStats ComputeModuleStats(const ir::Module& module, const ClassifyOptions& base_options);

}  // namespace cpi::analysis

#endif  // CPI_SRC_ANALYSIS_CLASSIFY_H_
