#include "src/analysis/safe_stack.h"

#include <map>
#include <vector>

namespace cpi::analysis {

using ir::ArrayType;
using ir::Instruction;
using ir::Opcode;
using ir::PointerType;
using ir::Value;

namespace {

// An object is safe iff every value derived from its address (via constant,
// in-bounds field/index steps) is used only as the address operand of a load
// or store. Any other use — being stored as data, passed to a call, cast,
// returned, indexed dynamically — makes the object unsafe.
class EscapeWalker {
 public:
  explicit EscapeWalker(const ir::Function& function) {
    for (const auto& bb : function.blocks()) {
      for (Instruction* inst : bb->instructions()) {
        for (Value* op : inst->operands()) {
          users_[op].push_back(inst);
        }
      }
    }
  }

  bool IsSafe(const Instruction* alloca_inst) {
    return DerivedUsesAreSafe(alloca_inst);
  }

 private:
  bool DerivedUsesAreSafe(const Value* derived) {
    auto it = users_.find(const_cast<Value*>(derived));
    if (it == users_.end()) {
      return true;  // no uses
    }
    for (const Instruction* user : it->second) {
      switch (user->op()) {
        case Opcode::kLoad:
          // Always the address operand: safe access.
          break;
        case Opcode::kStore:
          // Safe only when used as the address, not as the stored value.
          if (user->operand(0) == derived) {
            return false;  // address escapes into memory
          }
          break;
        case Opcode::kFieldAddr:
          // Constant offset into the object; recurse into the derived value.
          if (!DerivedUsesAreSafe(user)) {
            return false;
          }
          break;
        case Opcode::kIndexAddr: {
          // Safe only for a constant, in-bounds index into an array object.
          const Value* index = user->operand(1);
          if (index->value_kind() != ir::ValueKind::kConstInt) {
            return false;
          }
          const uint64_t c = static_cast<const ir::ConstantInt*>(index)->value();
          const auto* ptr_type = static_cast<const PointerType*>(user->operand(0)->type());
          if (!ptr_type->pointee()->IsArray()) {
            return false;  // raw pointer arithmetic
          }
          const auto* arr = static_cast<const ArrayType*>(ptr_type->pointee());
          if (c >= arr->count()) {
            return false;
          }
          if (!DerivedUsesAreSafe(user)) {
            return false;
          }
          break;
        }
        default:
          // Call/libcall argument, cast, select, return, output, intrinsic,
          // comparison... — address escapes or is used non-trivially.
          return false;
      }
    }
    return true;
  }

  std::map<Value*, std::vector<Instruction*>> users_;
};

}  // namespace

SafeStackResult AnalyzeSafeStack(const ir::Function& function) {
  SafeStackResult result;
  EscapeWalker walker(function);
  for (const auto& bb : function.blocks()) {
    for (const Instruction* inst : bb->instructions()) {
      if (inst->op() != Opcode::kAlloca) {
        continue;
      }
      ++result.total_allocas;
      if (!walker.IsSafe(inst)) {
        result.unsafe_allocas.insert(inst);
      }
    }
  }
  return result;
}

}  // namespace cpi::analysis
