// Safe-stack escape analysis (§3.2.4).
//
// Decides, per alloca, whether every access to the object is statically
// provably safe — in which case it may live on the safe stack with no runtime
// checks — or whether it must move to the unsafe stack in regular memory
// (arrays indexed dynamically, objects whose address escapes the function,
// etc.). Return addresses and spilled registers always satisfy the criterion
// and are handled directly by the VM.
#ifndef CPI_SRC_ANALYSIS_SAFE_STACK_H_
#define CPI_SRC_ANALYSIS_SAFE_STACK_H_

#include <set>

#include "src/ir/function.h"

namespace cpi::analysis {

struct SafeStackResult {
  // Allocas that must be placed on the unsafe stack.
  std::set<const ir::Instruction*> unsafe_allocas;
  // Total number of allocas seen (safe + unsafe).
  size_t total_allocas = 0;

  bool NeedsUnsafeFrame() const { return !unsafe_allocas.empty(); }
};

SafeStackResult AnalyzeSafeStack(const ir::Function& function);

}  // namespace cpi::analysis

#endif  // CPI_SRC_ANALYSIS_SAFE_STACK_H_
