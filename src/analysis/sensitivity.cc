#include "src/analysis/sensitivity.h"

namespace cpi::analysis {

using ir::ArrayType;
using ir::PointerType;
using ir::StructType;
using ir::Type;
using ir::TypeKind;

bool Sensitivity::IsSensitive(const Type* type) const {
  auto it = cache_.find(type);
  if (it != cache_.end()) {
    return it->second;
  }
  std::set<const Type*> visiting;
  const bool result = Compute(type, visiting);
  // Only the root query is cached: results for types on a cycle that were
  // provisionally treated as "not sensitive" (back-edges) must not leak into
  // the cache, or a later query through a different path could go wrong.
  cache_[type] = result;
  return result;
}

bool Sensitivity::Compute(const Type* type, std::set<const Type*>& visiting) const {
  if (module_.IsAnnotatedSensitive(type)) {
    return true;
  }
  switch (type->kind()) {
    case TypeKind::kInt:
    case TypeKind::kFloat:
      return false;
    case TypeKind::kVoid:
    case TypeKind::kFunction:
      // void only occurs behind void* (universal); function types only behind
      // code pointers. Both make the enclosing pointer sensitive.
      return true;
    case TypeKind::kPointer: {
      if (ir::IsUniversalPointer(type)) {
        return true;
      }
      const Type* pointee = static_cast<const PointerType*>(type)->pointee();
      return Compute(pointee, visiting);
    }
    case TypeKind::kArray:
      return Compute(static_cast<const ArrayType*>(type)->element(), visiting);
    case TypeKind::kStruct: {
      const auto* st = static_cast<const StructType*>(type);
      if (st->is_opaque()) {
        // The struct body is unknown; the *pointer to it* is universal (and
        // thus sensitive) but the struct itself contributes nothing here.
        return false;
      }
      // Least fixpoint: a back-edge contributes "not sensitive"; if any other
      // path reaches a code pointer, the OR still turns the result true.
      if (!visiting.insert(st).second) {
        return false;
      }
      bool result = false;
      for (const ir::StructField& f : st->fields()) {
        if (Compute(f.type, visiting)) {
          result = true;
          break;
        }
      }
      visiting.erase(st);
      return result;
    }
  }
  CPI_UNREACHABLE();
}

namespace {

bool ContainsCodePointerImpl(const Type* type, std::set<const Type*>& visiting) {
  switch (type->kind()) {
    case TypeKind::kInt:
    case TypeKind::kFloat:
    case TypeKind::kVoid:
    case TypeKind::kFunction:
      return false;
    case TypeKind::kPointer:
      return ir::IsCodePointer(type);
    case TypeKind::kArray:
      return ContainsCodePointerImpl(static_cast<const ArrayType*>(type)->element(), visiting);
    case TypeKind::kStruct: {
      const auto* st = static_cast<const StructType*>(type);
      if (st->is_opaque() || !visiting.insert(st).second) {
        return false;
      }
      bool result = false;
      for (const ir::StructField& f : st->fields()) {
        if (ContainsCodePointerImpl(f.type, visiting)) {
          result = true;
          break;
        }
      }
      visiting.erase(st);
      return result;
    }
  }
  CPI_UNREACHABLE();
}

}  // namespace

bool ContainsCodePointer(const Type* type) {
  std::set<const Type*> visiting;
  return ContainsCodePointerImpl(type, visiting);
}

bool Sensitivity::IsSensitiveForCps(const Type* type) const {
  if (ir::IsCodePointer(type)) {
    return true;
  }
  // Universal pointers can hold code pointers at runtime; CPS handles their
  // loads/stores with the cheap runtime-dispatched variants (§3.3).
  return ir::IsUniversalPointer(type);
}

}  // namespace cpi::analysis
