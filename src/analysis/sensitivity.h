// Type-based sensitivity classification (§3.2.1, Fig. 7).
//
// A type is *sensitive* when memory of that type may (transitively) hold a
// code pointer:
//   sensitive(int)    = false
//   sensitive(void)   = true            (void* is universal)
//   sensitive(f)      = true            (function types / code pointers)
//   sensitive(p*)     = universal(p*) || sensitive(p)
//   sensitive(struct) = OR over field sensitivity
// plus module-level programmer annotations (§4 "Sensitive data protection").
//
// Struct graphs may be cyclic (lists, trees); classification is computed as a
// least fixpoint: a cycle that never reaches a code pointer or universal
// pointer is not sensitive.
#ifndef CPI_SRC_ANALYSIS_SENSITIVITY_H_
#define CPI_SRC_ANALYSIS_SENSITIVITY_H_

#include <map>
#include <set>

#include "src/ir/module.h"

namespace cpi::analysis {

class Sensitivity {
 public:
  explicit Sensitivity(const ir::Module& module) : module_(module) {}

  // CPI's criterion: may this type transitively reach a code pointer?
  bool IsSensitive(const ir::Type* type) const;

  // CPS's restricted criterion (§3.3): code pointers themselves, plus
  // universal pointers (which may hold code pointers at runtime). Pointers
  // *to* code pointers are NOT included.
  bool IsSensitiveForCps(const ir::Type* type) const;

  // True when loads/stores of this type must use the universal-pointer
  // intrinsic variants (runtime-dispatched safe/regular region).
  static bool IsUniversal(const ir::Type* type) { return ir::IsUniversalPointer(type); }

 private:
  bool Compute(const ir::Type* type, std::set<const ir::Type*>& visiting) const;

  const ir::Module& module_;
  mutable std::map<const ir::Type*, bool> cache_;
};

// True when an object of this type directly embeds code pointers (a function
// pointer scalar, a struct with a function-pointer member, an array of
// them...). Unlike the CPI criterion this does NOT recurse through data
// pointers: it answers "would memcpy'ing this object move code pointers?",
// which is what CPS's checked memory-transfer handling needs (§3.3).
bool ContainsCodePointer(const ir::Type* type);

}  // namespace cpi::analysis

#endif  // CPI_SRC_ANALYSIS_SENSITIVITY_H_
