#include "src/attacks/ripe.h"

#include "src/ir/builder.h"
#include "src/support/check.h"
#include "src/support/pool.h"
#include "src/vm/layout.h"

namespace cpi::attacks {

using ir::Function;
using ir::GlobalVariable;
using ir::IRBuilder;
using ir::Module;
using ir::StructType;
using ir::Value;

const char* TechniqueName(Technique t) {
  switch (t) {
    case Technique::kDirectOverflow: return "direct-overflow";
    case Technique::kIndexedWrite: return "indexed-write";
    case Technique::kArbitraryWrite: return "arbitrary-write";
  }
  CPI_UNREACHABLE();
}

const char* LocationName(Location l) {
  switch (l) {
    case Location::kStack: return "stack";
    case Location::kHeap: return "heap";
    case Location::kGlobal: return "global";
  }
  CPI_UNREACHABLE();
}

const char* TargetName(Target t) {
  switch (t) {
    case Target::kReturnAddress: return "ret-addr";
    case Target::kFunctionPointer: return "func-ptr";
    case Target::kStructFuncPtr: return "struct-func-ptr";
    case Target::kLongjmpBuffer: return "longjmp-buf";
    case Target::kVtablePointer: return "vtable-ptr";
    case Target::kSafeStackSlot: return "safe-stack-slot";
  }
  CPI_UNREACHABLE();
}

const char* AttackOutcomeName(AttackOutcome o) {
  switch (o) {
    case AttackOutcome::kHijacked: return "HIJACKED";
    case AttackOutcome::kPrevented: return "prevented";
    case AttackOutcome::kCrashed: return "crashed";
    case AttackOutcome::kNoEffect: return "no-effect";
  }
  CPI_UNREACHABLE();
}

std::string AttackSpec::Name() const {
  std::string name = std::string(TechniqueName(technique)) + "/" + LocationName(location) +
                     "/" + TargetName(target);
  if (gadget_address_taken) {
    name += "/addr-taken";
  }
  if (cross_thread) {
    name += "/cross-thread";
  }
  return name;
}

std::vector<AttackSpec> GenerateAttackMatrix() {
  std::vector<AttackSpec> specs;
  const Technique techniques[] = {Technique::kDirectOverflow, Technique::kIndexedWrite,
                                  Technique::kArbitraryWrite};
  const Location locations[] = {Location::kStack, Location::kHeap, Location::kGlobal};
  const Target targets[] = {Target::kReturnAddress, Target::kFunctionPointer,
                            Target::kStructFuncPtr, Target::kLongjmpBuffer,
                            Target::kVtablePointer};
  for (Technique tech : techniques) {
    for (Location loc : locations) {
      for (Target target : targets) {
        // Validity rules, mirroring which RIPE exploits are possible.
        if (target == Target::kReturnAddress &&
            (loc != Location::kStack || tech == Technique::kArbitraryWrite)) {
          continue;  // return addresses live only in stack frames; their
                     // address is not assumed known (ASLR)
        }
        if (target == Target::kVtablePointer && loc == Location::kStack) {
          continue;  // the fake-vtable attack needs a predictable buffer addr
        }
        if (tech == Technique::kArbitraryWrite && loc == Location::kStack) {
          continue;  // stack addresses are not assumed known
        }
        for (bool taken : {false, true}) {
          specs.push_back(AttackSpec{tech, loc, target, taken});
        }
      }
    }
  }
  return specs;
}

std::vector<AttackSpec> GenerateCrossThreadMatrix() {
  // Both rows use the arbitrary-write primitive: unlike same-frame
  // overflows, thread stacks are reached by address, and the per-thread
  // stack layout is deterministic (vm::UnsafeStackTopFor /
  // vm::SafeStackTopFor), exactly like mmap-predictable thread stacks.
  return {
      AttackSpec{Technique::kArbitraryWrite, Location::kStack, Target::kReturnAddress,
                 /*gadget_address_taken=*/false, /*cross_thread=*/true},
      AttackSpec{Technique::kArbitraryWrite, Location::kStack, Target::kSafeStackSlot,
                 /*gadget_address_taken=*/false, /*cross_thread=*/true},
  };
}

namespace {

constexpr uint64_t kBufBytes = 32;

// Field/variable naming shared between the program builder and the payload
// crafter.
constexpr const char* kVictimStruct = "victim";
constexpr const char* kVtableStruct = "fake_vtbl_layout";

// The distance from the start of the buffer to the overwritten word, for the
// overflow techniques.
struct TargetOffsets {
  uint64_t target_offset = 0;      // from buffer start (overflow techniques)
  uint64_t target_addr = 0;        // absolute (arbitrary-write), 0 if unused
  uint64_t buffer_addr = 0;        // absolute buffer address, 0 if unknown
};

// Builds the vulnerable program. Structure:
//   gadget()         — outputs kGadgetMarker (the attacker's goal)
//   legit()          — outputs a benign marker; initial target value
//   vulnerable()     — owns/reaches the buffer, performs the attacker-
//                      controlled writes, then uses the code pointer
//   main()           — (optionally leaks gadget's address into the CFI set,)
//                      calls vulnerable, outputs kSurvivedMarker
class AttackProgramBuilder {
 public:
  explicit AttackProgramBuilder(const AttackSpec& spec) : spec_(spec) {}

  std::unique_ptr<Module> Build() {
    auto m = std::make_unique<Module>("ripe." + spec_.Name());
    module_ = m.get();
    auto& t = m->types();
    IRBuilder b(m.get());
    b_ = &b;

    const ir::FunctionType* void_fn_ty = t.FunctionTy(t.VoidTy(), {});
    void_fn_ptr_ty_ = t.PointerTo(void_fn_ty);

    if (spec_.cross_thread) {
      gadget_ = m->CreateFunction("gadget", void_fn_ty);
      b.SetInsertPoint(gadget_->CreateBlock("entry"));
      b.Output(b.I64(kGadgetMarker));
      b.Ret();
      BuildCrossThread(void_fn_ty);
      return m;
    }

    // The victim struct: buffer first, then the code-pointer-bearing fields.
    victim_ = t.GetOrCreateStruct(kVictimStruct);
    switch (spec_.target) {
      case Target::kStructFuncPtr:
        victim_->SetBody({{"buf", t.ArrayOf(t.CharTy(), kBufBytes), 0},
                          {"fp", void_fn_ptr_ty_, 0}});
        break;
      case Target::kLongjmpBuffer:
        victim_->SetBody({{"buf", t.ArrayOf(t.CharTy(), kBufBytes), 0},
                          {"saved_sp", t.I64(), 0},
                          {"pc", void_fn_ptr_ty_, 0}});
        break;
      case Target::kVtablePointer: {
        StructType* vtbl = t.GetOrCreateStruct(kVtableStruct);
        vtbl->SetBody({{"m", void_fn_ptr_ty_, 0}});
        victim_->SetBody({{"buf", t.ArrayOf(t.CharTy(), kBufBytes), 0},
                          {"vt", t.PointerTo(vtbl), 0}});
        break;
      }
      default:
        victim_->SetBody({{"buf", t.ArrayOf(t.CharTy(), kBufBytes), 0},
                          {"fp", void_fn_ptr_ty_, 0}});
        break;
    }

    gadget_ = m->CreateFunction("gadget", void_fn_ty);
    b.SetInsertPoint(gadget_->CreateBlock("entry"));
    b.Output(b.I64(kGadgetMarker));
    b.Ret();

    legit_ = m->CreateFunction("legit", void_fn_ty);
    b.SetInsertPoint(legit_->CreateBlock("entry"));
    b.Output(b.I64(0x1e617));
    b.Ret();

    // Globals for the kGlobal location (created in adjacency order).
    if (spec_.location == Location::kGlobal) {
      if (UsesSeparateTarget()) {
        g_buf_ = m->CreateGlobal("g_buf", t.ArrayOf(t.CharTy(), kBufBytes));
        g_fp_ = m->CreateGlobal("g_fp", void_fn_ptr_ty_);
      } else {
        g_victim_ = m->CreateGlobal("g_victim", victim_);
      }
    }

    BuildVulnerable();
    BuildMain();
    return m;
  }

  TargetOffsets Offsets(const vm::ProgramLayout& layout) const {
    TargetOffsets off;
    if (spec_.cross_thread) {
      // The victim is the first spawned thread (tid 1); its root frame's
      // saved-return slot sits 24 bytes below its stack top (16-byte bias +
      // one pushed word) — on the regular stack, or on the thread's safe
      // stack when the probe row asks for it.
      off.target_addr = (spec_.target == Target::kSafeStackSlot
                             ? vm::SafeStackTopFor(1)
                             : vm::UnsafeStackTopFor(1)) -
                        24;
      return off;
    }
    const uint64_t field_offset = UsesSeparateTarget() ? kBufBytes : TargetFieldOffset();
    off.target_offset = field_offset;
    switch (spec_.location) {
      case Location::kStack:
        break;  // overflow-only; absolute addresses unused
      case Location::kHeap:
        off.buffer_addr = vm::FirstHeapAddress();
        off.target_addr = off.buffer_addr + field_offset;
        break;
      case Location::kGlobal:
        if (UsesSeparateTarget()) {
          off.buffer_addr = layout.GlobalAddress(g_buf_);
          off.target_addr = layout.GlobalAddress(g_fp_);
        } else {
          off.buffer_addr = layout.GlobalAddress(g_victim_);
          off.target_addr = off.buffer_addr + field_offset;
        }
        break;
    }
    return off;
  }

  const Function* gadget() const { return gadget_; }

 private:
  // Plain function-pointer targets use two separate variables (buffer, then
  // pointer); the struct-based targets embed both in the victim struct.
  bool UsesSeparateTarget() const { return spec_.target == Target::kFunctionPointer; }

  uint64_t TargetFieldOffset() const {
    const std::string field = spec_.target == Target::kLongjmpBuffer ? "pc"
                              : spec_.target == Target::kVtablePointer ? "vt"
                                                                       : "fp";
    for (const ir::StructField& f : victim_->fields()) {
      if (f.name == field) {
        return f.offset;
      }
    }
    CPI_UNREACHABLE();
  }

  // Emits the attacker-controlled writes into `buf` (a char*).
  void EmitCorruption(Function* f, Value* buf) {
    IRBuilder& b = *b_;
    auto& t = module_->types();
    switch (spec_.technique) {
      case Technique::kDirectOverflow:
        // Unbounded copy of attacker bytes — strcpy/read-style.
        b.LibCall(ir::LibFunc::kInputBytes, {buf, b.I64(512)});
        break;
      case Technique::kIndexedWrite: {
        // for (i = 0; i < attacker_n; i++) buf[i] = attacker_byte;
        Value* n_slot = b.Alloca(t.I64(), "n");
        Value* i_slot = b.Alloca(t.I64(), "i");
        b.Store(b.Input(), n_slot);
        b.Store(b.I64(0), i_slot);
        ir::BasicBlock* header = f->CreateBlock("w.header");
        ir::BasicBlock* body = f->CreateBlock("w.body");
        ir::BasicBlock* exit = f->CreateBlock("w.exit");
        b.Br(header);
        b.SetInsertPoint(header);
        Value* i = b.Load(i_slot);
        b.CondBr(b.ICmpSLt(i, b.Load(n_slot)), body, exit);
        b.SetInsertPoint(body);
        Value* i2 = b.Load(i_slot);
        Value* v = b.Cast(ir::CastKind::kTrunc, b.Input(), t.CharTy());
        b.Store(v, b.IndexAddr(buf, i2));
        b.Store(b.Add(i2, b.I64(1)), i_slot);
        b.Br(header);
        b.SetInsertPoint(exit);
        break;
      }
      case Technique::kArbitraryWrite: {
        // n pairs of (address, value) — the format-string primitive.
        Value* n_slot = b.Alloca(t.I64(), "n");
        Value* i_slot = b.Alloca(t.I64(), "i");
        b.Store(b.Input(), n_slot);
        b.Store(b.I64(0), i_slot);
        ir::BasicBlock* header = f->CreateBlock("a.header");
        ir::BasicBlock* body = f->CreateBlock("a.body");
        ir::BasicBlock* exit = f->CreateBlock("a.exit");
        b.Br(header);
        b.SetInsertPoint(header);
        Value* i = b.Load(i_slot);
        b.CondBr(b.ICmpSLt(i, b.Load(n_slot)), body, exit);
        b.SetInsertPoint(body);
        Value* addr = b.Input();
        Value* val = b.Input();
        Value* p = b.IntToPtr(addr, t.PointerTo(t.I64()));
        b.Store(val, p);
        b.Store(b.Add(b.Load(i_slot), b.I64(1)), i_slot);
        b.Br(header);
        b.SetInsertPoint(exit);
        break;
      }
    }
  }

  // Emits the control transfer through the (possibly corrupted) pointer.
  void EmitUse(Value* target_holder) {
    IRBuilder& b = *b_;
    switch (spec_.target) {
      case Target::kReturnAddress:
        break;  // the use is the vulnerable function's own return
      case Target::kFunctionPointer: {
        Value* fp = b.Load(target_holder, "fp");
        b.IndirectCall(fp, {});
        break;
      }
      case Target::kStructFuncPtr: {
        Value* fp = b.Load(b.FieldAddr(target_holder, "fp"), "fp");
        b.IndirectCall(fp, {});
        break;
      }
      case Target::kLongjmpBuffer: {
        // longjmp: restore the saved context and jump through jb->pc.
        Value* pc = b.Load(b.FieldAddr(target_holder, "pc"), "pc");
        b.IndirectCall(pc, {});
        break;
      }
      case Target::kVtablePointer: {
        Value* vt = b.Load(b.FieldAddr(target_holder, "vt"), "vt");
        Value* m = b.Load(b.FieldAddr(vt, "m"), "m");
        b.IndirectCall(m, {});
        break;
      }
    }
  }

  void BuildVulnerable() {
    IRBuilder& b = *b_;
    auto& t = module_->types();
    Function* f = module_->CreateFunction(
        "vulnerable", t.FunctionTy(t.VoidTy(), {}));
    vulnerable_ = f;
    b.SetInsertPoint(f->CreateBlock("entry"));

    Value* buf = nullptr;            // char* to the vulnerable buffer
    Value* target_holder = nullptr;  // slot or struct pointer for EmitUse

    switch (spec_.location) {
      case Location::kStack: {
        if (spec_.target == Target::kReturnAddress) {
          Value* arr = b.Alloca(t.ArrayOf(t.CharTy(), kBufBytes), "buf");
          buf = b.IndexAddr(arr, b.I64(0));
        } else if (UsesSeparateTarget()) {
          // Target allocated first (higher address), buffer second: a
          // contiguous overflow from the buffer reaches the pointer.
          Value* fp_slot = b.Alloca(void_fn_ptr_ty_, "fp_slot");
          Value* arr = b.Alloca(t.ArrayOf(t.CharTy(), kBufBytes), "buf");
          b.Store(b.FuncAddr(legit_), fp_slot);
          buf = b.IndexAddr(arr, b.I64(0));
          target_holder = fp_slot;
        } else {
          Value* vic = b.Alloca(victim_, "victim");
          InitVictim(vic);
          buf = b.IndexAddr(b.FieldAddr(vic, "buf"), b.I64(0));
          target_holder = vic;
        }
        break;
      }
      case Location::kHeap: {
        if (UsesSeparateTarget()) {
          Value* heap_buf = b.Malloc(b.I64(kBufBytes), t.PointerTo(t.CharTy()));
          Value* fp_cell = b.Malloc(b.I64(8), t.PointerTo(void_fn_ptr_ty_));
          b.Store(b.FuncAddr(legit_), fp_cell);
          buf = heap_buf;
          target_holder = fp_cell;
        } else {
          Value* vic = b.Malloc(b.I64(victim_->SizeInBytes()), t.PointerTo(victim_));
          InitVictim(vic);
          buf = b.IndexAddr(b.FieldAddr(vic, "buf"), b.I64(0));
          target_holder = vic;
        }
        break;
      }
      case Location::kGlobal: {
        if (UsesSeparateTarget()) {
          b.Store(b.FuncAddr(legit_), b.GlobalAddr(g_fp_));
          buf = b.IndexAddr(b.GlobalAddr(g_buf_), b.I64(0));
          target_holder = b.GlobalAddr(g_fp_);
        } else {
          Value* vic = b.GlobalAddr(g_victim_);
          InitVictim(vic);
          buf = b.IndexAddr(b.FieldAddr(vic, "buf"), b.I64(0));
          target_holder = vic;
        }
        break;
      }
    }

    EmitCorruption(f, buf);
    EmitUse(target_holder);
    b.Ret();
  }

  void InitVictim(Value* vic) {
    IRBuilder& b = *b_;
    switch (spec_.target) {
      case Target::kStructFuncPtr:
        b.Store(b.FuncAddr(legit_), b.FieldAddr(vic, "fp"));
        break;
      case Target::kLongjmpBuffer:
        b.Store(b.I64(0), b.FieldAddr(vic, "saved_sp"));
        b.Store(b.FuncAddr(legit_), b.FieldAddr(vic, "pc"));
        break;
      case Target::kVtablePointer: {
        // A real vtable for `legit`, heap-allocated at startup.
        auto& t = module_->types();
        const StructType* vtbl = t.FindStruct(kVtableStruct);
        Value* vt = b.Malloc(b.I64(vtbl->SizeInBytes()),
                             t.PointerTo(vtbl));
        b.Store(b.FuncAddr(legit_), b.FieldAddr(vt, "m"));
        b.Store(vt, b.FieldAddr(vic, "vt"));
        break;
      }
      default:
        b.Store(b.FuncAddr(legit_), b.FieldAddr(vic, "fp"));
        break;
    }
  }

  // Cross-thread program:
  //   victim_thread()    — parks in a yield loop long enough for the
  //                        attacker to strike, then returns (the use)
  //   attacker_thread()  — arbitrary-write primitive against the victim's
  //                        deterministic stack slot
  //   main()             — spawn victim (tid 1), spawn attacker (tid 2),
  //                        join attacker then victim, output survival marker
  void BuildCrossThread(const ir::FunctionType* void_fn_ty) {
    (void)void_fn_ty;
    IRBuilder& b = *b_;
    auto& t = module_->types();

    Function* victim = module_->CreateFunction("victim_thread", t.FunctionTy(t.I64(), {}));
    {
      b.SetInsertPoint(victim->CreateBlock("entry"));
      Value* i_slot = b.Alloca(t.I64(), "i");
      b.Store(b.I64(0), i_slot);
      ir::BasicBlock* header = victim->CreateBlock("park.header");
      ir::BasicBlock* body = victim->CreateBlock("park.body");
      ir::BasicBlock* exit = victim->CreateBlock("park.exit");
      b.Br(header);
      b.SetInsertPoint(header);
      // Generous budget: the attacker needs only a few dozen instructions,
      // and every victim yield hands it a whole quantum.
      b.CondBr(b.ICmpSLt(b.Load(i_slot), b.I64(200)), body, exit);
      b.SetInsertPoint(body);
      b.Yield();
      b.Store(b.Add(b.Load(i_slot), b.I64(1)), i_slot);
      b.Br(header);
      b.SetInsertPoint(exit);
      b.Ret(b.I64(0));  // the victim's return is the hijacked control transfer
    }

    Function* attacker = module_->CreateFunction("attacker_thread", t.FunctionTy(t.I64(), {}));
    {
      b.SetInsertPoint(attacker->CreateBlock("entry"));
      EmitCorruption(attacker, /*buf=*/nullptr);  // arbitrary-write primitive
      b.Ret(b.I64(0));
    }

    Function* main = module_->CreateFunction("main", t.FunctionTy(t.I64(), {}));
    b.SetInsertPoint(main->CreateBlock("entry"));
    Value* victim_tid = b.Spawn(victim, {}, "victim");
    Value* attacker_tid = b.Spawn(attacker, {}, "attacker");
    b.Join(attacker_tid);
    b.Join(victim_tid);
    b.Output(b.I64(kSurvivedMarker));
    b.Ret(b.I64(0));
  }

  void BuildMain() {
    IRBuilder& b = *b_;
    auto& t = module_->types();
    Function* main = module_->CreateFunction("main", t.FunctionTy(t.I64(), {}));
    b.SetInsertPoint(main->CreateBlock("entry"));
    if (spec_.gadget_address_taken) {
      // A benign address-of elsewhere in the program puts the gadget into
      // coarse CFI's valid target set.
      GlobalVariable* cb = module_->CreateGlobal("registered_cb", void_fn_ptr_ty_);
      b.Store(b.FuncAddr(gadget_), b.GlobalAddr(cb));
    }
    b.Call(vulnerable_, {});
    b.Output(b.I64(kSurvivedMarker));
    b.Ret(b.I64(0));
  }

  AttackSpec spec_;
  Module* module_ = nullptr;
  IRBuilder* b_ = nullptr;
  StructType* victim_ = nullptr;
  const ir::PointerType* void_fn_ptr_ty_ = nullptr;
  Function* gadget_ = nullptr;
  Function* legit_ = nullptr;
  Function* vulnerable_ = nullptr;
  GlobalVariable* g_buf_ = nullptr;
  GlobalVariable* g_fp_ = nullptr;
  GlobalVariable* g_victim_ = nullptr;
};

void AppendWordBytes(std::vector<uint8_t>* bytes, uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    bytes->push_back(static_cast<uint8_t>(word >> (8 * i)));
  }
}

// Crafts the payload for one attack, given the built module's layout and the
// protection configuration (a real attacker adapts the exploit to the target
// build: e.g. the return-address offset shifts when cookies are enabled).
core::Input CraftPayload(const AttackSpec& spec, const TargetOffsets& off,
                         uint64_t gadget_addr, const core::Config& config) {
  core::Input input;
  switch (spec.technique) {
    case Technique::kDirectOverflow: {
      uint64_t target_offset = off.target_offset;
      if (spec.target == Target::kReturnAddress &&
          config.protection == core::Protection::kStackCookies) {
        target_offset += 8;  // skip over the canary slot
      }
      std::vector<uint8_t> bytes(target_offset, 0x41);  // 'A' filler
      if (spec.target == Target::kVtablePointer) {
        // The buffer itself doubles as the fake vtable: its first word is
        // the gadget address; the overwritten vt field points back at it.
        for (int i = 0; i < 8; ++i) {
          bytes[i] = static_cast<uint8_t>(gadget_addr >> (8 * i));
        }
        AppendWordBytes(&bytes, off.buffer_addr);
      } else {
        AppendWordBytes(&bytes, gadget_addr);
      }
      input.bytes = std::move(bytes);
      break;
    }
    case Technique::kIndexedWrite: {
      uint64_t target_offset = off.target_offset;
      if (spec.target == Target::kReturnAddress &&
          config.protection == core::Protection::kStackCookies) {
        target_offset += 8;
      }
      std::vector<uint8_t> bytes(target_offset, 0x41);
      if (spec.target == Target::kVtablePointer) {
        for (int i = 0; i < 8; ++i) {
          bytes[i] = static_cast<uint8_t>(gadget_addr >> (8 * i));
        }
        for (int i = 0; i < 8; ++i) {
          bytes.push_back(static_cast<uint8_t>(off.buffer_addr >> (8 * i)));
        }
      } else {
        for (int i = 0; i < 8; ++i) {
          bytes.push_back(static_cast<uint8_t>(gadget_addr >> (8 * i)));
        }
      }
      input.words.push_back(bytes.size());
      for (uint8_t byte : bytes) {
        input.words.push_back(byte);
      }
      break;
    }
    case Technique::kArbitraryWrite: {
      if (spec.target == Target::kVtablePointer) {
        // Two writes: plant the fake vtable in the buffer, then swing the
        // object's vt pointer onto it.
        input.words = {2, off.buffer_addr, gadget_addr, off.target_addr, off.buffer_addr};
      } else {
        input.words = {1, off.target_addr, gadget_addr};
      }
      break;
    }
  }
  return input;
}

}  // namespace

std::unique_ptr<Module> BuildAttackProgram(const AttackSpec& spec) {
  AttackProgramBuilder builder(spec);
  return builder.Build();
}

AttackResult RunAttack(const AttackSpec& spec, const core::Config& config) {
  AttackProgramBuilder builder(spec);
  std::unique_ptr<Module> module = builder.Build();
  const vm::ProgramLayout layout = vm::ComputeProgramLayout(*module);
  const TargetOffsets offsets = builder.Offsets(layout);
  const uint64_t gadget_addr = layout.CodeAddress(builder.gadget());
  const core::Input payload = CraftPayload(spec, offsets, gadget_addr, config);

  core::Compiler compiler(config);
  compiler.Instrument(*module);
  const vm::RunResult run = core::Run(*module, config, payload);

  AttackResult result;
  result.spec = spec;
  result.status = run.status;
  result.violation = run.violation;
  result.message = run.message;
  if (run.OutputContains(kGadgetMarker)) {
    result.outcome = AttackOutcome::kHijacked;
  } else if (run.status == vm::RunStatus::kViolation) {
    result.outcome = AttackOutcome::kPrevented;
  } else if (run.status == vm::RunStatus::kCrash) {
    result.outcome = AttackOutcome::kCrashed;
  } else {
    result.outcome = AttackOutcome::kNoEffect;
  }
  return result;
}

std::vector<AttackResult> RunAttackMatrix(const core::Config& config, int jobs) {
  const std::vector<AttackSpec> specs = GenerateAttackMatrix();
  std::vector<AttackResult> results(specs.size());
  ThreadPool pool(jobs);
  pool.ParallelFor(specs.size(),
                   [&](size_t i) { results[i] = RunAttack(specs[i], config); });
  return results;
}

std::vector<AttackResult> RunCrossThreadMatrix(const core::Config& config, int jobs) {
  const std::vector<AttackSpec> specs = GenerateCrossThreadMatrix();
  std::vector<AttackResult> results(specs.size());
  ThreadPool pool(jobs);
  pool.ParallelFor(specs.size(),
                   [&](size_t i) { results[i] = RunAttack(specs[i], config); });
  return results;
}

}  // namespace cpi::attacks
