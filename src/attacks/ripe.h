// RIPE-like control-flow hijack attack matrix (§5.1).
//
// The RIPE benchmark sweeps attack dimensions — where the vulnerable buffer
// lives, how the overflow is performed, which code pointer is targeted — and
// counts which combinations still hijack control under a given protection.
// This module regenerates that matrix: every AttackSpec is instantiated as a
// vulnerable IR program plus an input payload crafted (like a real exploit)
// from the program's known memory layout, then executed under the protection
// configuration being evaluated.
//
// Outcomes:
//   kHijacked  — the gadget ran (its marker appears in the output)
//   kPrevented — a protection mechanism aborted the program
//   kCrashed   — the attack caused a fault without reaching the gadget
//   kNoEffect  — the program finished normally (the corruption was silently
//                neutralised, e.g. by CPI's safe store; the paper's default
//                non-debug mode prevents silently)
// Everything except kHijacked counts as a prevented attack.
#ifndef CPI_SRC_ATTACKS_RIPE_H_
#define CPI_SRC_ATTACKS_RIPE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/levee.h"

namespace cpi::attacks {

inline constexpr uint64_t kGadgetMarker = 0xDEAD10CCULL;    // gadget executed
inline constexpr uint64_t kSurvivedMarker = 0x5AFEULL;      // program finished

enum class Technique {
  kDirectOverflow,  // unbounded strcpy-style copy of attacker bytes
  kIndexedWrite,    // loop writing attacker bytes with attacker-chosen length
  kArbitraryWrite,  // format-string-style writes to attacker-chosen addresses
};

enum class Location {
  kStack,   // vulnerable buffer in a stack frame
  kHeap,    // vulnerable buffer inside a heap object
  kGlobal,  // vulnerable buffer in a writable global
};

enum class Target {
  kReturnAddress,    // saved return address of the vulnerable frame
  kFunctionPointer,  // a plain function-pointer variable
  kStructFuncPtr,    // function pointer embedded in a struct after the buffer
  kLongjmpBuffer,    // jmp_buf-style structure holding a code pointer
  kVtablePointer,    // C++-style object: overwrite its vtable pointer
  // Cross-thread only: the word where the victim thread's saved return
  // address would live on its *safe* stack — a direct probe of the safe
  // region's isolation under concurrent mutation (§3.2.3).
  kSafeStackSlot,
};

const char* TechniqueName(Technique t);
const char* LocationName(Location l);
const char* TargetName(Target t);

struct AttackSpec {
  Technique technique;
  Location location;
  Target target;
  // When true, the program also takes the gadget's address somewhere benign,
  // putting it into coarse-grained CFI's valid target set — the CFI-bypass
  // variants of [19, 15, 9].
  bool gadget_address_taken = false;
  // Cross-thread variant: thread A (the attacker) corrupts thread B's (the
  // victim's) saved return address while B is parked in the scheduler. The
  // victim stack layout is deterministic, so the attacker derives the slot
  // address the way real exploits derive thread-stack locations from known
  // mmap behaviour.
  bool cross_thread = false;

  std::string Name() const;
};

// All valid combinations (invalid ones, e.g. arbitrary-write against a stack
// return address, are skipped the way RIPE skips impossible exploits).
// Single-threaded rows only; the historical matrix is frozen so recorded
// tables stay byte-identical.
std::vector<AttackSpec> GenerateAttackMatrix();

// The cross-thread rows: thread A overwrites thread B's saved return
// address on the regular stack (hijacks vanilla, neutralised by per-thread
// safe stacks / sealed tokens) and probes the slot's safe-stack home (faults
// on the isolation mechanism under every configuration).
std::vector<AttackSpec> GenerateCrossThreadMatrix();

enum class AttackOutcome { kHijacked, kPrevented, kCrashed, kNoEffect };

const char* AttackOutcomeName(AttackOutcome o);

struct AttackResult {
  AttackSpec spec;
  AttackOutcome outcome = AttackOutcome::kNoEffect;
  vm::RunStatus status = vm::RunStatus::kOk;
  runtime::Violation violation = runtime::Violation::kNone;
  std::string message;

  bool Hijacked() const { return outcome == AttackOutcome::kHijacked; }
};

// Builds the vulnerable program for `spec` (exposed for tests and examples).
std::unique_ptr<ir::Module> BuildAttackProgram(const AttackSpec& spec);

// Runs one attack under the given protection configuration.
AttackResult RunAttack(const AttackSpec& spec, const core::Config& config);

// Runs the whole matrix; returns one result per attack, in matrix order.
// Attacks are independent programs, so `jobs` > 1 runs them across a thread
// pool; results are identical at any jobs value.
std::vector<AttackResult> RunAttackMatrix(const core::Config& config, int jobs = 1);

// Same, over the cross-thread rows.
std::vector<AttackResult> RunCrossThreadMatrix(const core::Config& config, int jobs = 1);

}  // namespace cpi::attacks

#endif  // CPI_SRC_ATTACKS_RIPE_H_
