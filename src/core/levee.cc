#include "src/core/levee.h"

#include "src/core/scheme.h"
#include "src/ir/verifier.h"

namespace cpi::core {

namespace {

const ProtectionScheme& SchemeFor(const Config& config) {
  return config.scheme != nullptr ? *config.scheme
                                  : SchemeRegistry::Get(config.protection);
}

}  // namespace

const char* ProtectionName(Protection p) { return SchemeRegistry::Get(p).name(); }

namespace {

void VerifyOrDie(const ir::Module& module, const char* when) {
  const std::vector<std::string> errors = ir::VerifyModule(module);
  for (const std::string& e : errors) {
    std::fprintf(stderr, "module %s (%s): %s\n", module.name().c_str(), when, e.c_str());
  }
  CPI_CHECK(errors.empty());
}

}  // namespace

CompileOutput Compiler::Instrument(ir::Module& module) const {
  VerifyOrDie(module, "before instrumentation");

  const ProtectionScheme& scheme = SchemeFor(config_);

  CompileOutput out;
  out.instructions_before = module.InstructionCount();

  analysis::ClassifyOptions copts;
  copts.char_star_heuristic = config_.char_star_heuristic;
  copts.cast_dataflow = config_.cast_dataflow;
  scheme.ConfigureClassification(copts);
  out.stats = analysis::ComputeModuleStats(module, copts);

  instrument::PassOptions popts;
  popts.char_star_heuristic = config_.char_star_heuristic;
  popts.cast_dataflow = config_.cast_dataflow;
  popts.debug_mode = config_.debug_mode;
  popts.temporal = config_.temporal;

  scheme.Instrument(module, popts);
  VerifyOrDie(module, "after instrumentation");

  out.instructions_after = module.InstructionCount();
  out.instructions_after_opt = out.instructions_after;

  if (config_.opt_level >= 1) {
    // Standard pipeline, then scheme-specific cleanup, then DCE last so it
    // sweeps whatever the other passes left without uses. The pass manager
    // re-verifies the module after every pass.
    opt::PassManager pm;
    pm.Add(opt::CreateMem2RegPass());
    pm.Add(opt::CreateRedundancyEliminationPass());
    scheme.ContributeOptPasses(pm);
    pm.Add(opt::CreateDcePass());
    out.opt = pm.Run(module);
    out.instructions_after_opt = module.InstructionCount();
  }
  return out;
}

vm::RunResult Run(const ir::Module& module, const Config& config, const Input& input) {
  vm::RunOptions options;
  SchemeFor(config).ConfigureRun(options);
  options.store = config.store;
  options.isolation = config.isolation;
  options.shards = config.shards;
  options.migrate = config.migrate;
  options.mpx_assist = config.mpx_assist;
  options.engine =
      config.reference_interpreter ? vm::EngineKind::kReference : config.engine;
  options.quantum = config.thread_quantum;
  options.max_steps = config.max_steps;
  options.seed = config.seed;
  options.input_words = input.words;
  options.input_bytes = input.bytes;
  options.faults = config.faults;
  return vm::Execute(module, options);
}

vm::RunResult InstrumentAndRun(ir::Module& module, const Config& config, const Input& input) {
  Compiler compiler(config);
  compiler.Instrument(module);
  return Run(module, config, input);
}

}  // namespace cpi::core
