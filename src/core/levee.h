// The public facade of the library — the equivalent of the paper's Levee
// tool (§4): pick a protection configuration, instrument a module, run it.
//
//   ir::Module m = ...;                         // or frontend::CompileC(...)
//   core::Config cfg;
//   cfg.protection = core::Protection::kCpi;    // -fcpi
//   core::Compiler compiler(cfg);
//   compiler.Instrument(m);
//   vm::RunResult r = core::Run(m, cfg, input);
//
// Protection levels map to the paper's flags:
//   kSafeStack   -fstack-protector-safe   (§3.2.4)
//   kCps         -fcps                    (§3.3)
//   kCpi         -fcpi                    (§3.2.2)
// and the baselines used in the evaluation: SoftBound, coarse CFI, stack
// cookies.
#ifndef CPI_SRC_CORE_LEVEE_H_
#define CPI_SRC_CORE_LEVEE_H_

#include <string>
#include <vector>

#include "src/analysis/classify.h"
#include "src/instrument/passes.h"
#include "src/ir/module.h"
#include "src/opt/pass_manager.h"
#include "src/vm/machine.h"

namespace cpi::core {

enum class Protection {
  kNone,          // vanilla build
  kSafeStack,     // safe stack only
  kCps,           // code-pointer separation (includes safe stack)
  kCpi,           // code-pointer integrity (includes safe stack)
  kSoftBound,     // full-memory-safety baseline
  kCfi,           // coarse-grained CFI baseline
  kStackCookies,  // canary baseline
  kPtrEnc,        // PACTight/LIPPEN-style in-place pointer sealing
  // PACStack-style chained return MACs: each sealed return token
  // authenticates over its predecessor, so swapping two live tokens (or
  // replaying a stale one) breaks the chain even though each token alone
  // would authenticate. Return protection only — composes with data-pointer
  // schemes (see core::CompositeScheme).
  kPtrEncRetChain,
};

const char* ProtectionName(Protection p);

class ProtectionScheme;  // src/core/scheme.h

struct Config {
  Protection protection = Protection::kNone;
  // When set, overrides `protection`: compilation and execution are driven
  // by this (possibly out-of-tree) scheme instead of a registry built-in.
  const ProtectionScheme* scheme = nullptr;
  runtime::StoreKind store = runtime::StoreKind::kArray;
  runtime::IsolationKind isolation = runtime::IsolationKind::kSegment;
  // Safe-pointer-store shard count (vm::RunOptions::shards). 1 — the default
  // every historical table is recorded at — is the legacy shared store with
  // the flat concurrent sync premium; higher counts partition the store into
  // per-thread write-local shards and charge the modeled shard-crossing cost
  // instead. Behaviour is identical at any count (tests/shard_test.cc).
  uint32_t shards = 1;
  // Epoch-based shard-ownership migration (vm::RunOptions::migrate). Off —
  // the default every historical table is recorded at — keeps the static
  // owner table; on (with shards > 1) the VM republishes ownership at every
  // spawn/join boundary and gives readers the RCU-style epoch-local path
  // (tests/epoch_test.cc; a no-op at shards == 1 or single-threaded).
  bool migrate = false;
  bool debug_mode = false;          // §3.2.2 mirror-and-compare
  bool temporal = false;            // CETS-style temporal extension
  bool char_star_heuristic = true;  // §3.2.1
  bool cast_dataflow = true;        // §3.2.1
  bool mpx_assist = false;          // §4 MPX projection: free bounds checks
  // Which VM execution tier runs the program (all tiers produce
  // bit-identical results; tier 3, the fused superinstruction engine, is the
  // default and fastest). Bench drivers expose this as `--engine`.
  vm::EngineKind engine = vm::EngineKind::kFused;
  // Legacy switch for the tree-walking oracle: when set it overrides
  // `engine` with vm::EngineKind::kReference (kept because the differential
  // tests toggle the oracle through this knob).
  bool reference_interpreter = false;
  // Post-instrumentation optimization level (src/opt). 0 — the default —
  // runs no passes, so every O0 run is byte-identical to the historical
  // pipeline. 1 runs the standard pipeline (mem2reg, redundant-check
  // elimination, scheme-contributed cleanup, DCE); optimized runs keep the
  // program's output, exit code and protection verdicts bit-identical to O0
  // while cycle/access counters drop (tests/opt_test.cc enforces this).
  int opt_level = 0;
  // Scheduling quantum for the VM's deterministic round-robin thread
  // scheduler (vm::RunOptions::quantum). Irrelevant to single-threaded
  // programs; race-free threaded workloads produce identical counters at
  // any value.
  uint64_t thread_quantum = 64;
  uint64_t max_steps = 200'000'000;
  uint64_t seed = 1;
  // Optional adversarial fault plan forwarded to vm::RunOptions::faults (see
  // src/vm/fault.h). Null for every normal run; the fuzz harness uses it to
  // prove schemes contain injected runtime failures instead of crashing the
  // host.
  const vm::FaultPlan* faults = nullptr;
};

// Static compilation statistics — Table 2's columns for this module, plus
// the optimizer's per-pass report when opt_level > 0.
struct CompileOutput {
  analysis::ModuleStats stats;
  size_t instructions_before = 0;
  size_t instructions_after = 0;        // after instrumentation
  size_t instructions_after_opt = 0;    // after optimization (== after at O0)
  opt::OptReport opt;                   // empty at O0
};

class Compiler {
 public:
  explicit Compiler(const Config& config) : config_(config) {}

  // Instruments `module` in place according to the configuration; the module
  // must verify cleanly. Returns static statistics gathered before
  // instrumentation.
  CompileOutput Instrument(ir::Module& module) const;

  const Config& config() const { return config_; }

 private:
  Config config_;
};

struct Input {
  std::vector<uint64_t> words;
  std::vector<uint8_t> bytes;
};

// Executes an (already instrumented) module under `config`'s runtime
// settings.
vm::RunResult Run(const ir::Module& module, const Config& config, const Input& input = {});

// Convenience used throughout benches/tests: instrument a freshly built
// module and run it.
vm::RunResult InstrumentAndRun(ir::Module& module, const Config& config,
                               const Input& input = {});

}  // namespace cpi::core

#endif  // CPI_SRC_CORE_LEVEE_H_
