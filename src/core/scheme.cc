#include "src/core/scheme.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>

#include "src/support/check.h"

namespace cpi::core {

std::string DescribeStageTags(uint32_t tags) {
  static constexpr struct {
    StageTag tag;
    const char* name;
  } kNames[] = {
      {kTagStackLayout, "stack-layout"}, {kTagPtrLoads, "ptr-loads"},
      {kTagPtrStores, "ptr-stores"},     {kTagICalls, "icalls"},
      {kTagRetMac, "ret-mac"},
  };
  std::string out = "{";
  for (const auto& entry : kNames) {
    if ((tags & entry.tag) == 0) {
      continue;
    }
    if (out.size() > 1) {
      out += ", ";
    }
    out += entry.name;
  }
  out += "}";
  return out;
}

void RunStagePipeline(std::vector<PipelineStage> stages, ir::Module& module,
                      const instrument::PassOptions& options) {
  std::stable_sort(stages.begin(), stages.end(),
                   [](const PipelineStage& a, const PipelineStage& b) {
                     return a.order < b.order;
                   });
  for (const PipelineStage& stage : stages) {
    stage.run(module, options);
  }
  instrument::FinalizeModule(module);
}

uint32_t ProtectionScheme::StageWrites() const {
  uint32_t writes = 0;
  for (const PipelineStage& stage : Stages()) {
    writes |= stage.writes;
  }
  return writes;
}

// ---------------------------------------------------------------------------
// CompositeScheme

CompositeScheme::CompositeScheme(std::vector<const ProtectionScheme*> parts)
    : parts_(std::move(parts)) {
  for (const ProtectionScheme* p : parts_) {
    if (!name_.empty()) {
      name_ += "+";
      description_ += " + ";
    }
    name_ += p->name();
    description_ += p->description();
  }
}

std::unique_ptr<CompositeScheme> CompositeScheme::Make(
    std::vector<const ProtectionScheme*> parts, std::string* error) {
  CPI_CHECK(error != nullptr);
  CPI_CHECK(!parts.empty());
  for (const ProtectionScheme* p : parts) {
    CPI_CHECK(p != nullptr);
  }
  for (size_t i = 0; i < parts.size(); ++i) {
    for (size_t j = i + 1; j < parts.size(); ++j) {
      if (parts[i] == parts[j]) {
        *error = std::string("scheme '") + parts[i]->name() +
                 "' appears twice in the composite";
        return nullptr;
      }
      const uint32_t overlap = parts[i]->StageWrites() & parts[j]->StageWrites();
      if (overlap != 0) {
        *error = std::string("conflict: '") + parts[i]->name() + "' and '" +
                 parts[j]->name() + "' both write " + DescribeStageTags(overlap);
        return nullptr;
      }
    }
  }
  error->clear();
  return std::unique_ptr<CompositeScheme>(new CompositeScheme(std::move(parts)));
}

std::vector<PipelineStage> CompositeScheme::Stages() const {
  std::vector<PipelineStage> stages;
  for (const ProtectionScheme* p : parts_) {
    for (PipelineStage& stage : p->Stages()) {
      stages.push_back(std::move(stage));
    }
  }
  return stages;
}

bool CompositeScheme::UsesSafeStore() const {
  for (const ProtectionScheme* p : parts_) {
    if (p->UsesSafeStore()) {
      return true;
    }
  }
  return false;
}

void CompositeScheme::ConfigureRun(vm::RunOptions& options) const {
  options.use_safe_store = UsesSafeStore();
  // Per-op costs add up as deltas against the default cost model: each
  // component contributes what it charges beyond the baseline, so stacking
  // schemes sums their premiums and a 1-element composite reproduces its
  // base scheme's costs bit for bit.
  const vm::OpCosts base;
  vm::OpCosts sum = base;
  for (const ProtectionScheme* p : parts_) {
    vm::RunOptions part;
    p->ConfigureRun(part);
    sum.check += part.costs.check - base.check;
    sum.cfi_check += part.costs.cfi_check - base.cfi_check;
    sum.seal += part.costs.seal - base.seal;
    sum.auth += part.costs.auth - base.auth;
    sum.sync += part.costs.sync - base.sync;
  }
  options.costs = sum;
}

void CompositeScheme::ConfigureClassification(
    analysis::ClassifyOptions& options) const {
  for (const ProtectionScheme* p : parts_) {
    p->ConfigureClassification(options);
  }
}

void CompositeScheme::ContributeOptPasses(opt::PassManager& pm) const {
  for (const ProtectionScheme* p : parts_) {
    p->ContributeOptPasses(pm);
  }
}

namespace {

// The built-in schemes share one implementation driven by a descriptor; an
// out-of-tree scheme subclasses ProtectionScheme directly instead.
class BuiltinScheme final : public ProtectionScheme {
 public:
  struct Spec {
    Protection id;
    const char* name;
    const char* description;
    // Instrumentation as pipeline stages (empty for vanilla: the pipeline
    // runner's FinalizeModule is the whole pass).
    std::vector<PipelineStage> stages;
    bool uses_safe_store = false;
    // Sensitivity criterion, when the scheme runs the classifier.
    std::optional<analysis::Protection> classification;
    vm::OpCosts costs;
    SchemeReporting reporting;
    // Scheme-specific optimizer cleanup (may be null).
    void (*contribute_opt)(opt::PassManager&) = nullptr;
  };

  explicit BuiltinScheme(Spec spec) : spec_(std::move(spec)) {}

  Protection id() const override { return spec_.id; }
  const char* name() const override { return spec_.name; }
  const char* description() const override { return spec_.description; }

  std::vector<PipelineStage> Stages() const override { return spec_.stages; }

  bool UsesSafeStore() const override { return spec_.uses_safe_store; }

  void ConfigureRun(vm::RunOptions& options) const override {
    options.use_safe_store = spec_.uses_safe_store;
    options.costs = spec_.costs;
  }

  void ConfigureClassification(analysis::ClassifyOptions& options) const override {
    if (spec_.classification.has_value()) {
      options.protection = *spec_.classification;
    }
  }

  SchemeReporting reporting() const override { return spec_.reporting; }

  void ContributeOptPasses(opt::PassManager& pm) const override {
    if (spec_.contribute_opt != nullptr) {
      spec_.contribute_opt(pm);
    }
  }

 private:
  Spec spec_;
};

// Stage order values are pairwise distinct across every built-in, so the
// merged schedule of any conflict-free composite is the same no matter how
// the components were listed: rewrites (10–18) before layout (30–32) before
// the return-MAC flag (40).
constexpr int kOrderSoftBound = 10;
constexpr int kOrderCfi = 12;
constexpr int kOrderCpsRewrites = 14;
constexpr int kOrderCpiRewrites = 16;
constexpr int kOrderPtrEncRewrites = 18;
constexpr int kOrderSafeStack = 30;
constexpr int kOrderCookies = 32;
constexpr int kOrderRetChain = 40;

PipelineStage SafeStackStage() {
  return {"safestack-layout", kOrderSafeStack, kTagStackLayout,
          [](ir::Module& m, const instrument::PassOptions&) {
            instrument::ApplySafeStack(m);
          }};
}

struct Registry {
  std::vector<std::unique_ptr<ProtectionScheme>> owned;
  std::vector<const ProtectionScheme*> all;

  void Add(std::unique_ptr<ProtectionScheme> scheme) {
    CPI_CHECK(scheme != nullptr);
    for (const ProtectionScheme* existing : all) {
      if (std::string_view(existing->name()) == scheme->name()) {
        std::fprintf(stderr,
                     "SchemeRegistry::Register: duplicate scheme name '%s'\n",
                     scheme->name());
        std::abort();
      }
    }
    all.push_back(scheme.get());
    owned.push_back(std::move(scheme));
  }

  void AddComposite(std::initializer_list<const char*> part_names) {
    std::vector<const ProtectionScheme*> parts;
    for (const char* name : part_names) {
      const ProtectionScheme* found = nullptr;
      for (const ProtectionScheme* s : all) {
        if (std::string_view(s->name()) == name) {
          found = s;
          break;
        }
      }
      CPI_CHECK(found != nullptr);
      parts.push_back(found);
    }
    std::string error;
    std::unique_ptr<CompositeScheme> composite =
        CompositeScheme::Make(std::move(parts), &error);
    CPI_CHECK(composite != nullptr);
    Add(std::move(composite));
  }

  Registry() {
    using instrument::PassOptions;
    // Weakest to strongest, matching the §5.1 matrix ordering; the paper's
    // evaluation columns (SafeStack/CPS/CPI + PtrEnc) opt into
    // overhead_column.
    Add(std::make_unique<BuiltinScheme>(BuiltinScheme::Spec{
        Protection::kNone, "vanilla", "No protection",
        {},
        /*uses_safe_store=*/false, std::nullopt, vm::OpCosts{},
        SchemeReporting{false, true, false}}));
    Add(std::make_unique<BuiltinScheme>(BuiltinScheme::Spec{
        Protection::kStackCookies, "cookies", "Stack cookies",
        {{"cookie-prologues", kOrderCookies, kTagStackLayout,
          [](ir::Module& m, const PassOptions&) {
            instrument::ApplyStackCookiesRewrites(m);
          }}},
        /*uses_safe_store=*/false, std::nullopt, vm::OpCosts{},
        SchemeReporting{false, true, true}}));
    Add(std::make_unique<BuiltinScheme>(BuiltinScheme::Spec{
        Protection::kCfi, "cfi", "Control-Flow Integrity",
        {{"cfi-icall-checks", kOrderCfi, kTagICalls,
          [](ir::Module& m, const PassOptions&) {
            instrument::ApplyCfiRewrites(m);
          }}},
        /*uses_safe_store=*/false, std::nullopt,
        vm::OpCosts{/*check=*/1, /*cfi_check=*/3, /*seal=*/4, /*auth=*/4},
        SchemeReporting{false, true, true}}));
    Add(std::make_unique<BuiltinScheme>(BuiltinScheme::Spec{
        Protection::kSafeStack, "safestack", "Safe Stack",
        {SafeStackStage()},
        /*uses_safe_store=*/false, std::nullopt, vm::OpCosts{},
        SchemeReporting{true, true, true}}));
    Add(std::make_unique<BuiltinScheme>(BuiltinScheme::Spec{
        Protection::kCps, "cps", "Code-Pointer Separation",
        {{"cps-rewrites", kOrderCpsRewrites,
          kTagPtrLoads | kTagPtrStores | kTagICalls,
          [](ir::Module& m, const PassOptions& o) {
            instrument::ApplyCpsRewrites(m, o);
          }},
         SafeStackStage()},
        /*uses_safe_store=*/true, analysis::Protection::kCps,
        vm::OpCosts{/*check=*/1, /*cfi_check=*/3, /*seal=*/4, /*auth=*/4},
        SchemeReporting{true, true, true}}));
    Add(std::make_unique<BuiltinScheme>(BuiltinScheme::Spec{
        Protection::kCpi, "cpi", "Code-Pointer Integrity",
        {{"cpi-rewrites", kOrderCpiRewrites,
          kTagPtrLoads | kTagPtrStores | kTagICalls,
          [](ir::Module& m, const PassOptions& o) {
            instrument::ApplyCpiRewrites(m, o);
          }},
         SafeStackStage()},
        /*uses_safe_store=*/true, analysis::Protection::kCpi,
        vm::OpCosts{/*check=*/1, /*cfi_check=*/3, /*seal=*/4, /*auth=*/4},
        SchemeReporting{true, true, true}}));
    Add(std::make_unique<BuiltinScheme>(BuiltinScheme::Spec{
        Protection::kSoftBound, "softbound", "Memory Safety",
        {{"softbound-checks", kOrderSoftBound, kTagPtrLoads | kTagPtrStores,
          [](ir::Module& m, const PassOptions&) {
            instrument::ApplySoftBoundRewrites(m);
          }}},
        /*uses_safe_store=*/false, std::nullopt,
        vm::OpCosts{/*check=*/1, /*cfi_check=*/3, /*seal=*/4, /*auth=*/4},
        SchemeReporting{false, true, true}}));
    Add(std::make_unique<BuiltinScheme>(BuiltinScheme::Spec{
        Protection::kPtrEnc, "ptrenc", "In-Place Pointer Encryption",
        {{"ptrenc-rewrites", kOrderPtrEncRewrites,
          kTagPtrLoads | kTagPtrStores | kTagICalls | kTagRetMac,
          [](ir::Module& m, const PassOptions& o) {
            instrument::ApplyPtrEncRewrites(m, o);
          }}},
        /*uses_safe_store=*/false, analysis::Protection::kCps,
        // PAC-style sign/authenticate latency dominates; no separate checks.
        vm::OpCosts{/*check=*/1, /*cfi_check=*/3, /*seal=*/4, /*auth=*/4},
        SchemeReporting{true, true, true},
        // Seal→auth pair elision folds the pattern only this scheme emits.
        +[](opt::PassManager& pm) { pm.Add(opt::CreateSealElisionPass()); }}));
    // PACStack-style chained return MACs: return protection only, so it
    // stacks onto data-pointer schemes. Reports into the composite table —
    // the frozen single-scheme tables stay byte-identical.
    Add(std::make_unique<BuiltinScheme>(BuiltinScheme::Spec{
        Protection::kPtrEncRetChain, "ptrenc-ret-chain",
        "Chained Return Authentication",
        {{"ret-chain", kOrderRetChain, kTagRetMac,
          [](ir::Module& m, const PassOptions&) {
            instrument::ApplyRetChain(m);
          }}},
        /*uses_safe_store=*/false, std::nullopt,
        vm::OpCosts{/*check=*/1, /*cfi_check=*/3, /*seal=*/4, /*auth=*/4},
        SchemeReporting{false, false, false, /*composite_table=*/true}}));
    // The blessed composites of the evaluation: pointer sealing over an
    // isolated return stack, and full CPI with chain-authenticated returns.
    AddComposite({"ptrenc", "safestack"});
    AddComposite({"cpi", "ptrenc-ret-chain"});
  }
};

Registry& TheRegistry() {
  static Registry* registry = new Registry;
  return *registry;
}

std::vector<const ProtectionScheme*> Filter(bool SchemeReporting::*flag) {
  std::vector<const ProtectionScheme*> out;
  for (const ProtectionScheme* s : SchemeRegistry::All()) {
    if (s->reporting().*flag) {
      out.push_back(s);
    }
  }
  return out;
}

}  // namespace

const std::vector<const ProtectionScheme*>& SchemeRegistry::All() {
  return TheRegistry().all;
}

const ProtectionScheme& SchemeRegistry::Get(Protection p) {
  for (const ProtectionScheme* s : All()) {
    if (s->id() == p) {
      return *s;
    }
  }
  CPI_UNREACHABLE();
}

const ProtectionScheme* SchemeRegistry::FindByName(std::string_view name) {
  for (const ProtectionScheme* s : All()) {
    if (name == s->name()) {
      return s;
    }
  }
  return nullptr;
}

const ProtectionScheme& SchemeRegistry::Register(
    std::unique_ptr<ProtectionScheme> scheme) {
  CPI_CHECK(scheme != nullptr);
  Registry& registry = TheRegistry();
  registry.Add(std::move(scheme));
  return *registry.all.back();
}

const ProtectionScheme* SchemeRegistry::FindOrRegisterComposite(
    std::string_view spec, std::string* error) {
  CPI_CHECK(error != nullptr);
  error->clear();
  // An exact spelling that is already registered (a plain scheme or a
  // previously built composite) wins outright.
  if (const ProtectionScheme* existing = FindByName(spec)) {
    return existing;
  }
  std::vector<const ProtectionScheme*> parts;
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find('+', begin);
    if (end == std::string_view::npos) {
      end = spec.size();
    }
    const std::string_view component = spec.substr(begin, end - begin);
    const ProtectionScheme* part =
        component.empty() ? nullptr : FindByName(component);
    if (part == nullptr) {
      *error = "unknown scheme '" + std::string(component) + "' in '" +
               std::string(spec) + "'";
      return nullptr;
    }
    parts.push_back(part);
    begin = end + 1;
  }
  // A single unknown name lands above; a single known name was found by the
  // exact-spelling lookup, so reaching here means a genuine composite.
  std::unique_ptr<CompositeScheme> composite =
      CompositeScheme::Make(std::move(parts), error);
  if (composite == nullptr) {
    return nullptr;
  }
  return &Register(std::move(composite));
}

std::vector<const ProtectionScheme*> SchemeRegistry::OverheadColumns() {
  return Filter(&SchemeReporting::overhead_column);
}

std::vector<const ProtectionScheme*> SchemeRegistry::RipeRows() {
  return Filter(&SchemeReporting::ripe_row);
}

std::vector<const ProtectionScheme*> SchemeRegistry::DefenseRows() {
  return Filter(&SchemeReporting::defense_row);
}

std::vector<const ProtectionScheme*> SchemeRegistry::CompositeTableRows() {
  return Filter(&SchemeReporting::composite_table);
}

}  // namespace cpi::core
