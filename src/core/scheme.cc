#include "src/core/scheme.h"

#include <optional>

#include "src/support/check.h"

namespace cpi::core {

namespace {

// The built-in schemes share one implementation driven by a descriptor; an
// out-of-tree scheme subclasses ProtectionScheme directly instead.
class BuiltinScheme final : public ProtectionScheme {
 public:
  struct Spec {
    Protection id;
    const char* name;
    const char* description;
    void (*instrument)(ir::Module&, const instrument::PassOptions&);
    bool uses_safe_store = false;
    // Sensitivity criterion, when the scheme runs the classifier.
    std::optional<analysis::Protection> classification;
    vm::OpCosts costs;
    SchemeReporting reporting;
    // Scheme-specific optimizer cleanup (may be null).
    void (*contribute_opt)(opt::PassManager&) = nullptr;
  };

  explicit BuiltinScheme(const Spec& spec) : spec_(spec) {}

  Protection id() const override { return spec_.id; }
  const char* name() const override { return spec_.name; }
  const char* description() const override { return spec_.description; }

  void Instrument(ir::Module& module,
                  const instrument::PassOptions& options) const override {
    spec_.instrument(module, options);
  }

  bool UsesSafeStore() const override { return spec_.uses_safe_store; }

  void ConfigureRun(vm::RunOptions& options) const override {
    options.use_safe_store = spec_.uses_safe_store;
    options.costs = spec_.costs;
  }

  void ConfigureClassification(analysis::ClassifyOptions& options) const override {
    if (spec_.classification.has_value()) {
      options.protection = *spec_.classification;
    }
  }

  SchemeReporting reporting() const override { return spec_.reporting; }

  void ContributeOptPasses(opt::PassManager& pm) const override {
    if (spec_.contribute_opt != nullptr) {
      spec_.contribute_opt(pm);
    }
  }

 private:
  Spec spec_;
};

struct Registry {
  std::vector<std::unique_ptr<ProtectionScheme>> owned;
  std::vector<const ProtectionScheme*> all;

  void Add(std::unique_ptr<ProtectionScheme> scheme) {
    all.push_back(scheme.get());
    owned.push_back(std::move(scheme));
  }

  Registry() {
    using instrument::PassOptions;
    // Weakest to strongest, matching the §5.1 matrix ordering; the paper's
    // evaluation columns (SafeStack/CPS/CPI + PtrEnc) opt into
    // overhead_column.
    Add(std::make_unique<BuiltinScheme>(BuiltinScheme::Spec{
        Protection::kNone, "vanilla", "No protection",
        +[](ir::Module& m, const PassOptions&) { instrument::FinalizeModule(m); },
        /*uses_safe_store=*/false, std::nullopt, vm::OpCosts{},
        SchemeReporting{false, true, false}}));
    Add(std::make_unique<BuiltinScheme>(BuiltinScheme::Spec{
        Protection::kStackCookies, "cookies", "Stack cookies",
        +[](ir::Module& m, const PassOptions&) { instrument::ApplyStackCookies(m); },
        /*uses_safe_store=*/false, std::nullopt, vm::OpCosts{},
        SchemeReporting{false, true, true}}));
    Add(std::make_unique<BuiltinScheme>(BuiltinScheme::Spec{
        Protection::kCfi, "cfi", "Control-Flow Integrity",
        +[](ir::Module& m, const PassOptions&) { instrument::ApplyCfi(m); },
        /*uses_safe_store=*/false, std::nullopt,
        vm::OpCosts{/*check=*/1, /*cfi_check=*/3, /*seal=*/4, /*auth=*/4},
        SchemeReporting{false, true, true}}));
    Add(std::make_unique<BuiltinScheme>(BuiltinScheme::Spec{
        Protection::kSafeStack, "safestack", "Safe Stack",
        +[](ir::Module& m, const PassOptions&) { instrument::ApplySafeStack(m); },
        /*uses_safe_store=*/false, std::nullopt, vm::OpCosts{},
        SchemeReporting{true, true, true}}));
    Add(std::make_unique<BuiltinScheme>(BuiltinScheme::Spec{
        Protection::kCps, "cps", "Code-Pointer Separation",
        +[](ir::Module& m, const PassOptions& o) { instrument::ApplyCps(m, o); },
        /*uses_safe_store=*/true, analysis::Protection::kCps,
        vm::OpCosts{/*check=*/1, /*cfi_check=*/3, /*seal=*/4, /*auth=*/4},
        SchemeReporting{true, true, true}}));
    Add(std::make_unique<BuiltinScheme>(BuiltinScheme::Spec{
        Protection::kCpi, "cpi", "Code-Pointer Integrity",
        +[](ir::Module& m, const PassOptions& o) { instrument::ApplyCpi(m, o); },
        /*uses_safe_store=*/true, analysis::Protection::kCpi,
        vm::OpCosts{/*check=*/1, /*cfi_check=*/3, /*seal=*/4, /*auth=*/4},
        SchemeReporting{true, true, true}}));
    Add(std::make_unique<BuiltinScheme>(BuiltinScheme::Spec{
        Protection::kSoftBound, "softbound", "Memory Safety",
        +[](ir::Module& m, const PassOptions&) { instrument::ApplySoftBound(m); },
        /*uses_safe_store=*/false, std::nullopt,
        vm::OpCosts{/*check=*/1, /*cfi_check=*/3, /*seal=*/4, /*auth=*/4},
        SchemeReporting{false, true, true}}));
    Add(std::make_unique<BuiltinScheme>(BuiltinScheme::Spec{
        Protection::kPtrEnc, "ptrenc", "In-Place Pointer Encryption",
        +[](ir::Module& m, const PassOptions& o) { instrument::ApplyPtrEnc(m, o); },
        /*uses_safe_store=*/false, analysis::Protection::kCps,
        // PAC-style sign/authenticate latency dominates; no separate checks.
        vm::OpCosts{/*check=*/1, /*cfi_check=*/3, /*seal=*/4, /*auth=*/4},
        SchemeReporting{true, true, true},
        // Seal→auth pair elision folds the pattern only this scheme emits.
        +[](opt::PassManager& pm) { pm.Add(opt::CreateSealElisionPass()); }}));
  }
};

Registry& TheRegistry() {
  static Registry* registry = new Registry;
  return *registry;
}

std::vector<const ProtectionScheme*> Filter(bool SchemeReporting::*flag) {
  std::vector<const ProtectionScheme*> out;
  for (const ProtectionScheme* s : SchemeRegistry::All()) {
    if (s->reporting().*flag) {
      out.push_back(s);
    }
  }
  return out;
}

}  // namespace

const std::vector<const ProtectionScheme*>& SchemeRegistry::All() {
  return TheRegistry().all;
}

const ProtectionScheme& SchemeRegistry::Get(Protection p) {
  for (const ProtectionScheme* s : All()) {
    if (s->id() == p) {
      return *s;
    }
  }
  CPI_UNREACHABLE();
}

const ProtectionScheme* SchemeRegistry::FindByName(std::string_view name) {
  for (const ProtectionScheme* s : All()) {
    if (name == s->name()) {
      return s;
    }
  }
  return nullptr;
}

const ProtectionScheme& SchemeRegistry::Register(
    std::unique_ptr<ProtectionScheme> scheme) {
  CPI_CHECK(scheme != nullptr);
  Registry& registry = TheRegistry();
  registry.Add(std::move(scheme));
  return *registry.all.back();
}

std::vector<const ProtectionScheme*> SchemeRegistry::OverheadColumns() {
  return Filter(&SchemeReporting::overhead_column);
}

std::vector<const ProtectionScheme*> SchemeRegistry::RipeRows() {
  return Filter(&SchemeReporting::ripe_row);
}

std::vector<const ProtectionScheme*> SchemeRegistry::DefenseRows() {
  return Filter(&SchemeReporting::defense_row);
}

}  // namespace cpi::core
