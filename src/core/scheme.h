// The ProtectionScheme extension point.
//
// The paper's Levee prototype (§4) composes a protection out of (a)
// instrumentation passes, (b) runtime support, (c) a sensitivity analysis
// configuration and (d) an evaluation harness. A ProtectionScheme bundles
// those four facets into one self-describing object, and the SchemeRegistry
// makes the set of schemes open-ended: the compiler facade, the VM option
// plumbing and every bench driver iterate the registry instead of switching
// on an enum, so adding a defense means registering one object — no edits
// across layers.
//
// The seven protections of the paper's evaluation (vanilla, SafeStack, CPS,
// CPI, SoftBound, coarse CFI, stack cookies) are registered built-ins, as is
// PtrEnc, the PACTight/LIPPEN-style in-place pointer-sealing scheme that
// exercises the "fundamentally different runtime shape" case: no safe region
// at all.
#ifndef CPI_SRC_CORE_SCHEME_H_
#define CPI_SRC_CORE_SCHEME_H_

#include <memory>
#include <string_view>
#include <vector>

#include "src/analysis/classify.h"
#include "src/core/levee.h"
#include "src/instrument/passes.h"
#include "src/opt/pass_manager.h"
#include "src/vm/machine.h"

namespace cpi::core {

// Where the scheme's results appear in the paper-style reports.
struct SchemeReporting {
  // Overhead column in the Table 1 / Fig. 4 / Table 4 / §5.2 memory benches.
  bool overhead_column = false;
  // Row in the §5.1 RIPE-style attack matrix.
  bool ripe_row = true;
  // Row in the Fig. 5 defense-mechanism comparison.
  bool defense_row = true;
};

class ProtectionScheme {
 public:
  virtual ~ProtectionScheme() = default;

  virtual Protection id() const = 0;
  // Short reporting name used for table rows/columns ("cpi", "ptrenc").
  virtual const char* name() const = 0;
  // Fig. 5-style mechanism label ("Code-Pointer Integrity").
  virtual const char* description() const = 0;

  // (a) Applies the scheme's instrumentation passes to a verified module.
  virtual void Instrument(ir::Module& module,
                          const instrument::PassOptions& options) const = 0;

  // (b) Runtime requirements: whether a safe pointer store backs the run
  // (mirrored into vm::RunOptions::use_safe_store — a scheme without it
  // never allocates one) and the scheme's per-op cycle costs for the VM's
  // cost model.
  virtual bool UsesSafeStore() const { return false; }
  virtual void ConfigureRun(vm::RunOptions& options) const {
    options.use_safe_store = UsesSafeStore();
  }

  // (c) Classification options for the scheme's sensitivity analysis
  // (schemes without a static analysis leave the defaults untouched).
  virtual void ConfigureClassification(analysis::ClassifyOptions& options) const {
    (void)options;
  }

  // Scheme-specific cleanup passes for the post-instrumentation optimizer
  // (Config::opt_level >= 1). Called after the standard pipeline's analysis
  // passes and before the final DCE, so a scheme can fold patterns only its
  // own instrumentation emits (PtrEnc contributes seal→auth pair elision).
  virtual void ContributeOptPasses(opt::PassManager& pm) const { (void)pm; }

  // (d) Reporting name/columns for the Table 1/2-style output.
  virtual SchemeReporting reporting() const { return {}; }
};

// Process-global scheme registry. Registration order is reporting order.
class SchemeRegistry {
 public:
  // Every registered scheme: the eight built-ins, then runtime extensions.
  static const std::vector<const ProtectionScheme*>& All();

  // The built-in (or first registered) scheme with the given id.
  static const ProtectionScheme& Get(Protection p);

  // Lookup by reporting name; nullptr when unknown.
  static const ProtectionScheme* FindByName(std::string_view name);

  // The pluggable extension point: registers an out-of-tree scheme. The
  // registry takes ownership; the scheme outlives every later lookup.
  static const ProtectionScheme& Register(std::unique_ptr<ProtectionScheme> scheme);

  // Reporting filters used by the bench drivers.
  static std::vector<const ProtectionScheme*> OverheadColumns();
  static std::vector<const ProtectionScheme*> RipeRows();
  static std::vector<const ProtectionScheme*> DefenseRows();
};

}  // namespace cpi::core

#endif  // CPI_SRC_CORE_SCHEME_H_
