// The ProtectionScheme extension point.
//
// The paper's Levee prototype (§4) composes a protection out of (a)
// instrumentation passes, (b) runtime support, (c) a sensitivity analysis
// configuration and (d) an evaluation harness. A ProtectionScheme bundles
// those four facets into one self-describing object, and the SchemeRegistry
// makes the set of schemes open-ended: the compiler facade, the VM option
// plumbing and every bench driver iterate the registry instead of switching
// on an enum, so adding a defense means registering one object — no edits
// across layers.
//
// Instrumentation is declared as a *staged pipeline*: a scheme exposes a
// list of named, ordered PipelineStages, each tagged with the module aspects
// it writes (stack layout, pointer loads/stores, indirect calls, the saved
// return-token format). The default Instrument runs the stages through a
// deterministic scheduler, which is what makes schemes stackable: a
// CompositeScheme merges the stage lists of N component schemes, rejects
// combinations whose write tags overlap, and merges the runtime facets
// (safe-store use OR'd, per-op costs summed, classification and optimizer
// contributions applied in pipeline order).
//
// The seven protections of the paper's evaluation (vanilla, SafeStack, CPS,
// CPI, SoftBound, coarse CFI, stack cookies) are registered built-ins, as is
// PtrEnc, the PACTight/LIPPEN-style in-place pointer-sealing scheme that
// exercises the "fundamentally different runtime shape" case: no safe region
// at all. On top of the pipeline come ptrenc-ret-chain (PACStack-style
// chained return MACs — return protection only, so it stacks onto data
// schemes) and the two registered composites, ptrenc+safestack and
// cpi+ptrenc-ret-chain.
#ifndef CPI_SRC_CORE_SCHEME_H_
#define CPI_SRC_CORE_SCHEME_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/analysis/classify.h"
#include "src/core/levee.h"
#include "src/instrument/passes.h"
#include "src/opt/pass_manager.h"
#include "src/vm/machine.h"

namespace cpi::core {

// Module aspects a pipeline stage may write. Two schemes compose only when
// their stages' write sets are disjoint — overlapping writers (e.g. CPI and
// CPS both rewriting pointer loads) have no order-independent meaning, so
// CompositeScheme::Make rejects them instead of picking an order silently.
enum StageTag : uint32_t {
  kTagStackLayout = 1u << 0,  // frame layout: alloca placement, prologues
  kTagPtrLoads = 1u << 1,     // rewrites pointer-typed loads
  kTagPtrStores = 1u << 2,    // rewrites pointer-typed stores
  kTagICalls = 1u << 3,       // rewrites/checks indirect-call sites
  kTagRetMac = 1u << 4,       // owns the saved return-token format
};

// "{stack-layout, icalls}"-style rendering of a StageTag bitmask, for
// conflict diagnostics.
std::string DescribeStageTags(uint32_t tags);

// One named unit of instrumentation. Stages are merged across schemes by
// `order` (stable: equal orders keep declaration order), so built-ins use
// pairwise-distinct order values — any conflict-free composite schedules the
// same pipeline regardless of the order its components were listed in.
struct PipelineStage {
  const char* name;
  int order = 0;
  uint32_t writes = 0;  // StageTag bitmask
  std::function<void(ir::Module&, const instrument::PassOptions&)> run;
};

// Sorts `stages` by (order, declaration index), runs them, and re-numbers
// the module (instrument::FinalizeModule) — the shared tail every historical
// monolithic Instrument ended with.
void RunStagePipeline(std::vector<PipelineStage> stages, ir::Module& module,
                      const instrument::PassOptions& options);

// Where the scheme's results appear in the paper-style reports.
struct SchemeReporting {
  // Overhead column in the Table 1 / Fig. 4 / Table 4 / §5.2 memory benches.
  bool overhead_column = false;
  // Row in the §5.1 RIPE-style attack matrix.
  bool ripe_row = true;
  // Row in the Fig. 5 defense-mechanism comparison.
  bool defense_row = true;
  // Row in the composite-scheme table (overhead + attack-matrix columns for
  // stacked schemes; kept out of the frozen single-scheme tables).
  bool composite_table = false;
};

class ProtectionScheme {
 public:
  virtual ~ProtectionScheme() = default;

  virtual Protection id() const = 0;
  // Short reporting name used for table rows/columns ("cpi", "ptrenc").
  virtual const char* name() const = 0;
  // Fig. 5-style mechanism label ("Code-Pointer Integrity").
  virtual const char* description() const = 0;

  // (a) The scheme's instrumentation, as an ordered, conflict-tagged stage
  // list. The default Instrument below runs it through RunStagePipeline;
  // composition (CompositeScheme) merges these lists, so a scheme is
  // stackable exactly when its stages carry honest write tags.
  virtual std::vector<PipelineStage> Stages() const { return {}; }

  // Union of the write tags of every stage (the conflict signature).
  uint32_t StageWrites() const;

  // Applies the scheme's instrumentation passes to a verified module. The
  // default runs the declared stage pipeline; a scheme may still override
  // this directly, at the price of not composing.
  virtual void Instrument(ir::Module& module,
                          const instrument::PassOptions& options) const {
    RunStagePipeline(Stages(), module, options);
  }

  // (b) Runtime requirements: whether a safe pointer store backs the run
  // (mirrored into vm::RunOptions::use_safe_store — a scheme without it
  // never allocates one) and the scheme's per-op cycle costs for the VM's
  // cost model.
  virtual bool UsesSafeStore() const { return false; }
  virtual void ConfigureRun(vm::RunOptions& options) const {
    options.use_safe_store = UsesSafeStore();
  }

  // (c) Classification options for the scheme's sensitivity analysis
  // (schemes without a static analysis leave the defaults untouched).
  virtual void ConfigureClassification(analysis::ClassifyOptions& options) const {
    (void)options;
  }

  // Scheme-specific cleanup passes for the post-instrumentation optimizer
  // (Config::opt_level >= 1). Called after the standard pipeline's analysis
  // passes and before the final DCE, so a scheme can fold patterns only its
  // own instrumentation emits (PtrEnc contributes seal→auth pair elision).
  virtual void ContributeOptPasses(opt::PassManager& pm) const { (void)pm; }

  // (d) Reporting name/columns for the Table 1/2-style output.
  virtual SchemeReporting reporting() const { return {}; }
};

// A stack of component schemes behaving as one scheme: stages merged by the
// deterministic scheduler, safe-store use OR'd, per-op costs summed (as
// deltas against the default vm::OpCosts, so a 1-element composite is
// byte-identical to its base scheme), classification options and optimizer
// contributions applied in component order. Reports only into the composite
// table, keeping every frozen single-scheme table byte-identical.
class CompositeScheme final : public ProtectionScheme {
 public:
  // Builds a composite of one or more components. Returns nullptr and fills
  // *error when two components' stage write tags overlap (or a component
  // repeats) — such stacks have no order-independent meaning.
  static std::unique_ptr<CompositeScheme> Make(
      std::vector<const ProtectionScheme*> parts, std::string* error);

  // The composite inherits the first component's id for Protection-keyed
  // consumers; name() is the canonical "a+b" spec string.
  Protection id() const override { return parts_.front()->id(); }
  const char* name() const override { return name_.c_str(); }
  const char* description() const override { return description_.c_str(); }

  std::vector<PipelineStage> Stages() const override;
  bool UsesSafeStore() const override;
  void ConfigureRun(vm::RunOptions& options) const override;
  void ConfigureClassification(analysis::ClassifyOptions& options) const override;
  void ContributeOptPasses(opt::PassManager& pm) const override;
  SchemeReporting reporting() const override {
    return SchemeReporting{false, false, false, /*composite_table=*/true};
  }

  const std::vector<const ProtectionScheme*>& parts() const { return parts_; }

 private:
  explicit CompositeScheme(std::vector<const ProtectionScheme*> parts);

  std::vector<const ProtectionScheme*> parts_;
  std::string name_;         // "a+b+..."
  std::string description_;  // "A + B + ..."
};

// Process-global scheme registry. Registration order is reporting order.
class SchemeRegistry {
 public:
  // Every registered scheme: the built-ins (including ptrenc-ret-chain and
  // the two blessed composites), then runtime extensions.
  static const std::vector<const ProtectionScheme*>& All();

  // The built-in (or first registered) scheme with the given id.
  static const ProtectionScheme& Get(Protection p);

  // Lookup by reporting name; nullptr when unknown.
  static const ProtectionScheme* FindByName(std::string_view name);

  // The pluggable extension point: registers an out-of-tree scheme. The
  // registry takes ownership; the scheme outlives every later lookup.
  // Reporting names are the lookup key, so registering a name that is
  // already taken is a fatal error.
  static const ProtectionScheme& Register(std::unique_ptr<ProtectionScheme> scheme);

  // Resolves a "name" or "name+name+..." spec: single names look up the
  // registered scheme, composite specs return the already-registered
  // composite of that spelling or build and register a new one. Returns
  // nullptr and fills *error for unknown components, repeated components or
  // stage write conflicts.
  static const ProtectionScheme* FindOrRegisterComposite(std::string_view spec,
                                                         std::string* error);

  // Reporting filters used by the bench drivers.
  static std::vector<const ProtectionScheme*> OverheadColumns();
  static std::vector<const ProtectionScheme*> RipeRows();
  static std::vector<const ProtectionScheme*> DefenseRows();
  static std::vector<const ProtectionScheme*> CompositeTableRows();
};

}  // namespace cpi::core

#endif  // CPI_SRC_CORE_SCHEME_H_
