// Compiling the Appendix-A C subset to IR.
//
// The grammar follows Fig. 6 of the paper, extended with what real programs
// in the evaluation need: function definitions, control flow (if/while/for),
// arrays, string literals, the libc routines the analysis special-cases
// (strcpy & co.), and function-pointer declarations `T (*name)(params...)`.
//
//   struct handler { char name[16]; int (*fn)(int); };
//   int dispatch(struct handler* h, int arg) { return (*h->fn)(arg); }
//
// `input()` / `output(e)` map to the VM's observable I/O; `malloc`/`free`
// are the heap interface of the formal model.
#ifndef CPI_SRC_FRONTEND_COMPILE_H_
#define CPI_SRC_FRONTEND_COMPILE_H_

#include <memory>
#include <string>

#include "src/ir/module.h"

namespace cpi::frontend {

struct CompileResult {
  std::unique_ptr<ir::Module> module;  // null on error
  std::string error;

  bool ok() const { return module != nullptr; }
};

CompileResult CompileC(const std::string& source, const std::string& module_name = "program");

}  // namespace cpi::frontend

#endif  // CPI_SRC_FRONTEND_COMPILE_H_
