#include "src/frontend/lexer.h"

#include <cctype>
#include <map>

namespace cpi::frontend {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "<eof>";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kIntLiteral: return "integer";
    case TokenKind::kStringLiteral: return "string";
    case TokenKind::kInt: return "int";
    case TokenKind::kChar: return "char";
    case TokenKind::kVoid: return "void";
    case TokenKind::kFloat: return "float";
    case TokenKind::kStruct: return "struct";
    case TokenKind::kIf: return "if";
    case TokenKind::kElse: return "else";
    case TokenKind::kWhile: return "while";
    case TokenKind::kFor: return "for";
    case TokenKind::kReturn: return "return";
    case TokenKind::kSizeof: return "sizeof";
    case TokenKind::kMalloc: return "malloc";
    case TokenKind::kFree: return "free";
    case TokenKind::kConst: return "const";
    case TokenKind::kOutput: return "output";
    case TokenKind::kInput: return "input";
    case TokenKind::kLParen: return "(";
    case TokenKind::kRParen: return ")";
    case TokenKind::kLBrace: return "{";
    case TokenKind::kRBrace: return "}";
    case TokenKind::kLBracket: return "[";
    case TokenKind::kRBracket: return "]";
    case TokenKind::kSemicolon: return ";";
    case TokenKind::kComma: return ",";
    case TokenKind::kDot: return ".";
    case TokenKind::kArrow: return "->";
    case TokenKind::kAmp: return "&";
    case TokenKind::kStar: return "*";
    case TokenKind::kPlus: return "+";
    case TokenKind::kMinus: return "-";
    case TokenKind::kSlash: return "/";
    case TokenKind::kPercent: return "%";
    case TokenKind::kAssign: return "=";
    case TokenKind::kEq: return "==";
    case TokenKind::kNe: return "!=";
    case TokenKind::kLt: return "<";
    case TokenKind::kLe: return "<=";
    case TokenKind::kGt: return ">";
    case TokenKind::kGe: return ">=";
    case TokenKind::kAndAnd: return "&&";
    case TokenKind::kOrOr: return "||";
    case TokenKind::kNot: return "!";
    case TokenKind::kPipe: return "|";
    case TokenKind::kCaret: return "^";
    case TokenKind::kShl: return "<<";
    case TokenKind::kShr: return ">>";
  }
  return "?";
}

namespace {

const std::map<std::string, TokenKind>& Keywords() {
  static const auto* keywords = new std::map<std::string, TokenKind>{
      {"int", TokenKind::kInt},       {"char", TokenKind::kChar},
      {"void", TokenKind::kVoid},     {"float", TokenKind::kFloat},
      {"struct", TokenKind::kStruct}, {"if", TokenKind::kIf},
      {"else", TokenKind::kElse},     {"while", TokenKind::kWhile},
      {"for", TokenKind::kFor},       {"return", TokenKind::kReturn},
      {"sizeof", TokenKind::kSizeof}, {"malloc", TokenKind::kMalloc},
      {"free", TokenKind::kFree},     {"const", TokenKind::kConst},
      {"output", TokenKind::kOutput}, {"input", TokenKind::kInput},
  };
  return *keywords;
}

}  // namespace

bool Lex(const std::string& source, std::vector<Token>* tokens, std::string* error) {
  tokens->clear();
  int line = 1;
  int column = 1;
  size_t i = 0;
  const size_t n = source.size();

  auto make = [&](TokenKind kind) {
    Token t;
    t.kind = kind;
    t.line = line;
    t.column = column;
    return t;
  };
  auto fail = [&](const std::string& message) {
    *error = "lex error at line " + std::to_string(line) + ": " + message;
    return false;
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      column = 1;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      ++column;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') {
        ++i;
      }
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') {
          ++line;
        }
        ++i;
      }
      if (i + 1 >= n) {
        return fail("unterminated block comment");
      }
      i += 2;
      continue;
    }
    // Identifiers and keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '_')) {
        ++i;
      }
      std::string word = source.substr(start, i - start);
      auto kw = Keywords().find(word);
      Token t = make(kw != Keywords().end() ? kw->second : TokenKind::kIdentifier);
      t.text = std::move(word);
      tokens->push_back(std::move(t));
      column += static_cast<int>(i - start);
      continue;
    }
    // Numbers (decimal and hex).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      uint64_t value = 0;
      if (c == '0' && i + 1 < n && (source[i + 1] == 'x' || source[i + 1] == 'X')) {
        i += 2;
        while (i < n && std::isxdigit(static_cast<unsigned char>(source[i]))) {
          const char d = source[i];
          value = value * 16 +
                  (std::isdigit(static_cast<unsigned char>(d))
                       ? static_cast<uint64_t>(d - '0')
                       : static_cast<uint64_t>(std::tolower(d) - 'a' + 10));
          ++i;
        }
      } else {
        while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
          value = value * 10 + static_cast<uint64_t>(source[i] - '0');
          ++i;
        }
      }
      Token t = make(TokenKind::kIntLiteral);
      t.int_value = value;
      tokens->push_back(std::move(t));
      column += static_cast<int>(i - start);
      continue;
    }
    // Character literal -> integer token.
    if (c == '\'') {
      if (i + 2 >= n) {
        return fail("unterminated character literal");
      }
      char v = source[i + 1];
      size_t close = i + 2;
      if (v == '\\') {
        if (i + 3 >= n) {
          return fail("unterminated character literal");
        }
        switch (source[i + 2]) {
          case 'n': v = '\n'; break;
          case 't': v = '\t'; break;
          case '0': v = '\0'; break;
          case '\\': v = '\\'; break;
          case '\'': v = '\''; break;
          default: return fail("unknown escape in character literal");
        }
        close = i + 3;
      }
      if (close >= n || source[close] != '\'') {
        return fail("unterminated character literal");
      }
      Token t = make(TokenKind::kIntLiteral);
      t.int_value = static_cast<uint8_t>(v);
      tokens->push_back(std::move(t));
      column += static_cast<int>(close + 1 - i);
      i = close + 1;
      continue;
    }
    // String literal.
    if (c == '"') {
      std::string text;
      size_t j = i + 1;
      while (j < n && source[j] != '"') {
        char v = source[j];
        if (v == '\\' && j + 1 < n) {
          ++j;
          switch (source[j]) {
            case 'n': v = '\n'; break;
            case 't': v = '\t'; break;
            case '0': v = '\0'; break;
            case '\\': v = '\\'; break;
            case '"': v = '"'; break;
            default: return fail("unknown escape in string literal");
          }
        }
        text.push_back(v);
        ++j;
      }
      if (j >= n) {
        return fail("unterminated string literal");
      }
      Token t = make(TokenKind::kStringLiteral);
      t.text = std::move(text);
      tokens->push_back(std::move(t));
      column += static_cast<int>(j + 1 - i);
      i = j + 1;
      continue;
    }
    // Operators and punctuation.
    auto two = [&](char second) { return i + 1 < n && source[i + 1] == second; };
    Token t = make(TokenKind::kEof);
    int consumed = 1;
    switch (c) {
      case '(': t.kind = TokenKind::kLParen; break;
      case ')': t.kind = TokenKind::kRParen; break;
      case '{': t.kind = TokenKind::kLBrace; break;
      case '}': t.kind = TokenKind::kRBrace; break;
      case '[': t.kind = TokenKind::kLBracket; break;
      case ']': t.kind = TokenKind::kRBracket; break;
      case ';': t.kind = TokenKind::kSemicolon; break;
      case ',': t.kind = TokenKind::kComma; break;
      case '.': t.kind = TokenKind::kDot; break;
      case '+': t.kind = TokenKind::kPlus; break;
      case '*': t.kind = TokenKind::kStar; break;
      case '/': t.kind = TokenKind::kSlash; break;
      case '%': t.kind = TokenKind::kPercent; break;
      case '^': t.kind = TokenKind::kCaret; break;
      case '-':
        if (two('>')) { t.kind = TokenKind::kArrow; consumed = 2; }
        else { t.kind = TokenKind::kMinus; }
        break;
      case '&':
        if (two('&')) { t.kind = TokenKind::kAndAnd; consumed = 2; }
        else { t.kind = TokenKind::kAmp; }
        break;
      case '|':
        if (two('|')) { t.kind = TokenKind::kOrOr; consumed = 2; }
        else { t.kind = TokenKind::kPipe; }
        break;
      case '=':
        if (two('=')) { t.kind = TokenKind::kEq; consumed = 2; }
        else { t.kind = TokenKind::kAssign; }
        break;
      case '!':
        if (two('=')) { t.kind = TokenKind::kNe; consumed = 2; }
        else { t.kind = TokenKind::kNot; }
        break;
      case '<':
        if (two('=')) { t.kind = TokenKind::kLe; consumed = 2; }
        else if (two('<')) { t.kind = TokenKind::kShl; consumed = 2; }
        else { t.kind = TokenKind::kLt; }
        break;
      case '>':
        if (two('=')) { t.kind = TokenKind::kGe; consumed = 2; }
        else if (two('>')) { t.kind = TokenKind::kShr; consumed = 2; }
        else { t.kind = TokenKind::kGt; }
        break;
      default:
        return fail(std::string("unexpected character '") + c + "'");
    }
    tokens->push_back(std::move(t));
    i += consumed;
    column += consumed;
  }

  tokens->push_back(Token{TokenKind::kEof, "", 0, line, column});
  return true;
}

}  // namespace cpi::frontend
