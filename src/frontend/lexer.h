// Lexer for the C subset of Appendix A (Fig. 6), extended with control flow,
// function definitions and the libc calls the paper's analysis special-cases.
#ifndef CPI_SRC_FRONTEND_LEXER_H_
#define CPI_SRC_FRONTEND_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cpi::frontend {

enum class TokenKind {
  kEof,
  kIdentifier,
  kIntLiteral,
  kStringLiteral,
  // keywords
  kInt, kChar, kVoid, kFloat, kStruct, kIf, kElse, kWhile, kFor, kReturn,
  kSizeof, kMalloc, kFree, kConst, kOutput, kInput,
  // punctuation / operators
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kSemicolon, kComma, kDot, kArrow, kAmp, kStar, kPlus, kMinus, kSlash,
  kPercent, kAssign, kEq, kNe, kLt, kLe, kGt, kGe, kAndAnd, kOrOr, kNot,
  kPipe, kCaret, kShl, kShr,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;      // identifier / string literal contents
  uint64_t int_value = 0;
  int line = 0;
  int column = 0;
};

const char* TokenKindName(TokenKind kind);

// Tokenises `source`. On error, returns false and fills `error`.
bool Lex(const std::string& source, std::vector<Token>* tokens, std::string* error);

}  // namespace cpi::frontend

#endif  // CPI_SRC_FRONTEND_LEXER_H_
