// Recursive-descent parser and IR lowering for the Appendix-A C subset.
//
// The parser is single-pass per function body but two-pass over the top
// level: first struct bodies, global variables and function signatures are
// collected, then function bodies are lowered. Expressions are lowered with
// an lvalue/rvalue discipline: an lvalue carries the *address* of the
// object; loads materialise only when the value is needed.
#include <map>
#include <optional>
#include <vector>

#include "src/frontend/compile.h"
#include "src/frontend/lexer.h"
#include "src/ir/builder.h"
#include "src/ir/verifier.h"

namespace cpi::frontend {
namespace {

using ir::BasicBlock;
using ir::BinOp;
using ir::CastKind;
using ir::Function;
using ir::GlobalVariable;
using ir::IRBuilder;
using ir::LibFunc;
using ir::Module;
using ir::StructType;
using ir::Type;
using ir::Value;

struct ExprValue {
  Value* value = nullptr;     // rvalue, or the address when is_lvalue
  const Type* type = nullptr; // the value's C type (not the address type)
  bool is_lvalue = false;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, const std::string& module_name)
      : tokens_(std::move(tokens)),
        module_(std::make_unique<Module>(module_name)),
        builder_(module_.get()) {}

  CompileResult Run() {
    // Pass 1: collect top-level declarations.
    while (!AtEnd() && ok()) {
      ParseTopLevel(/*bodies=*/false);
    }
    // Pass 2: lower function bodies.
    pos_ = 0;
    pass_two_ = true;
    while (!AtEnd() && ok()) {
      ParseTopLevel(/*bodies=*/true);
    }

    CompileResult result;
    if (!ok()) {
      result.error = error_;
      return result;
    }
    const std::vector<std::string> errors = ir::VerifyModule(*module_);
    if (!errors.empty()) {
      result.error = "internal lowering error: " + errors.front();
      return result;
    }
    result.module = std::move(module_);
    return result;
  }

 private:
  // --- token plumbing ------------------------------------------------------
  const Token& Peek(int ahead = 0) const {
    const size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool AtEnd() const { return Peek().kind == TokenKind::kEof; }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool Match(TokenKind kind) {
    if (Check(kind)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Token Expect(TokenKind kind, const char* what) {
    if (!Check(kind)) {
      Fail(std::string("expected ") + what + ", got '" + TokenKindName(Peek().kind) + "'");
      return Token{};
    }
    return tokens_[pos_++];
  }
  bool ok() const { return error_.empty(); }
  void Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = "line " + std::to_string(Peek().line) + ": " + message;
    }
  }

  // --- types ---------------------------------------------------------------
  bool StartsType() const {
    switch (Peek().kind) {
      case TokenKind::kInt:
      case TokenKind::kChar:
      case TokenKind::kVoid:
      case TokenKind::kFloat:
      case TokenKind::kStruct:
      case TokenKind::kConst:
        return true;
      default:
        return false;
    }
  }

  // Parses a base type plus pointer stars: `int**`, `struct s*`, `void*`.
  const Type* ParseType() {
    Match(TokenKind::kConst);
    const Type* base = nullptr;
    auto& t = module_->types();
    if (Match(TokenKind::kInt)) {
      base = t.I64();
    } else if (Match(TokenKind::kChar)) {
      base = t.CharTy();
    } else if (Match(TokenKind::kVoid)) {
      base = t.VoidTy();
    } else if (Match(TokenKind::kFloat)) {
      base = t.FloatTy();
    } else if (Match(TokenKind::kStruct)) {
      Token name = Expect(TokenKind::kIdentifier, "struct name");
      if (!ok()) {
        return nullptr;
      }
      base = t.GetOrCreateStruct(name.text);
    } else {
      Fail("expected a type");
      return nullptr;
    }
    while (Match(TokenKind::kStar)) {
      base = t.PointerTo(base);
    }
    return base;
  }

  // Declarator suffixes after the name: arrays `[N]`. Returns adjusted type.
  const Type* ParseArraySuffix(const Type* base) {
    auto& t = module_->types();
    std::vector<uint64_t> dims;
    while (Match(TokenKind::kLBracket)) {
      Token n = Expect(TokenKind::kIntLiteral, "array size");
      Expect(TokenKind::kRBracket, "]");
      if (!ok()) {
        return nullptr;
      }
      dims.push_back(n.int_value);
    }
    for (auto it = dims.rbegin(); it != dims.rend(); ++it) {
      base = t.ArrayOf(base, *it);
    }
    return base;
  }

  // Function-pointer declarator: `T (*name)(params)` — or an array of them,
  // `T (*name[N])(params)` — after T was parsed. Returns the declared type
  // and fills `name`.
  const Type* ParseFunctionPointerDeclarator(const Type* ret, std::string* name) {
    auto& t = module_->types();
    Expect(TokenKind::kLParen, "(");
    Expect(TokenKind::kStar, "*");
    Token id = Expect(TokenKind::kIdentifier, "declarator name");
    uint64_t array_count = 0;
    if (Match(TokenKind::kLBracket)) {
      Token n = Expect(TokenKind::kIntLiteral, "array size");
      Expect(TokenKind::kRBracket, "]");
      array_count = n.int_value;
    }
    Expect(TokenKind::kRParen, ")");
    Expect(TokenKind::kLParen, "(");
    std::vector<const Type*> params;
    if (!Check(TokenKind::kRParen)) {
      do {
        const Type* p = ParseType();
        if (!ok()) {
          return nullptr;
        }
        // Parameter names in prototypes are optional.
        Match(TokenKind::kIdentifier);
        params.push_back(p);
      } while (Match(TokenKind::kComma));
    }
    Expect(TokenKind::kRParen, ")");
    if (!ok()) {
      return nullptr;
    }
    *name = id.text;
    const Type* fp = t.PointerTo(t.FunctionTy(ret, std::move(params)));
    if (array_count > 0) {
      return t.ArrayOf(fp, array_count);
    }
    return fp;
  }

  // --- top level -------------------------------------------------------------
  void ParseTopLevel(bool bodies) {
    if (Check(TokenKind::kStruct) && Peek(1).kind == TokenKind::kIdentifier &&
        Peek(2).kind == TokenKind::kLBrace) {
      ParseStructDecl(bodies);
      return;
    }
    if (Check(TokenKind::kStruct) && Peek(1).kind == TokenKind::kIdentifier &&
        Peek(2).kind == TokenKind::kSemicolon) {
      // Forward declaration: `struct s;` — creates an opaque struct.
      ++pos_;
      Token name = Expect(TokenKind::kIdentifier, "struct name");
      Expect(TokenKind::kSemicolon, ";");
      if (ok() && !pass_two_) {
        module_->types().GetOrCreateStruct(name.text);
      }
      return;
    }
    ParseGlobalOrFunction(bodies);
  }

  void ParseStructDecl(bool bodies) {
    (void)bodies;  // struct bodies are fully handled in pass one
    Expect(TokenKind::kStruct, "struct");
    Token name = Expect(TokenKind::kIdentifier, "struct name");
    Expect(TokenKind::kLBrace, "{");
    std::vector<ir::StructField> fields;
    while (ok() && !Check(TokenKind::kRBrace)) {
      const Type* base = ParseType();
      if (!ok()) {
        return;
      }
      std::string field_name;
      const Type* field_type = nullptr;
      if (Check(TokenKind::kLParen)) {
        field_type = ParseFunctionPointerDeclarator(base, &field_name);
      } else {
        Token id = Expect(TokenKind::kIdentifier, "field name");
        field_name = id.text;
        field_type = ParseArraySuffix(base);
      }
      Expect(TokenKind::kSemicolon, ";");
      if (!ok()) {
        return;
      }
      fields.push_back({field_name, field_type, 0});
    }
    Expect(TokenKind::kRBrace, "}");
    Expect(TokenKind::kSemicolon, ";");
    if (ok() && !pass_two_) {
      StructType* st = module_->types().GetOrCreateStruct(name.text);
      if (!st->is_opaque()) {
        Fail("struct " + name.text + " redefined");
        return;
      }
      st->SetBody(std::move(fields));
    }
  }

  void ParseGlobalOrFunction(bool bodies) {
    const bool is_const = Check(TokenKind::kConst);
    const Type* base = ParseType();
    if (!ok()) {
      return;
    }

    // Function-pointer global: `T (*name)(params);`
    if (Check(TokenKind::kLParen)) {
      std::string name;
      const Type* fp_type = ParseFunctionPointerDeclarator(base, &name);
      Expect(TokenKind::kSemicolon, ";");
      if (ok() && !pass_two_) {
        module_->CreateGlobal(name, fp_type, is_const);
      }
      return;
    }

    Token id = Expect(TokenKind::kIdentifier, "name");
    if (!ok()) {
      return;
    }

    if (Check(TokenKind::kLParen)) {
      ParseFunction(base, id.text, bodies);
      return;
    }

    // Global variable.
    const Type* var_type = ParseArraySuffix(base);
    Expect(TokenKind::kSemicolon, ";");
    if (ok() && !pass_two_) {
      module_->CreateGlobal(id.text, var_type, is_const);
    }
  }

  void ParseFunction(const Type* ret, const std::string& name, bool bodies) {
    auto& t = module_->types();
    Expect(TokenKind::kLParen, "(");
    std::vector<const Type*> param_types;
    std::vector<std::string> param_names;
    if (!Check(TokenKind::kRParen)) {
      do {
        const Type* p = ParseType();
        if (!ok()) {
          return;
        }
        if (Check(TokenKind::kLParen)) {  // function-pointer parameter
          std::string pname;
          p = ParseFunctionPointerDeclarator(p, &pname);
          param_names.push_back(pname);
        } else {
          Token pid = Expect(TokenKind::kIdentifier, "parameter name");
          param_names.push_back(pid.text);
        }
        param_types.push_back(p);
      } while (Match(TokenKind::kComma));
    }
    Expect(TokenKind::kRParen, ")");
    if (!ok()) {
      return;
    }

    Function* fn = nullptr;
    if (!pass_two_) {
      fn = module_->CreateFunction(name, t.FunctionTy(ret, param_types));
    } else {
      fn = module_->FindFunction(name);
      CPI_CHECK(fn != nullptr);
    }

    Expect(TokenKind::kLBrace, "{");
    if (!ok()) {
      return;
    }
    if (!bodies) {
      // Skip over the body, tracking brace depth.
      int depth = 1;
      while (depth > 0 && !AtEnd()) {
        if (Check(TokenKind::kLBrace)) {
          ++depth;
        } else if (Check(TokenKind::kRBrace)) {
          --depth;
        }
        ++pos_;
      }
      return;
    }

    // --- lower the body -----------------------------------------------------
    function_ = fn;
    alloca_block_ = fn->CreateBlock("entry");
    BasicBlock* body = fn->CreateBlock("body");
    builder_.SetInsertPoint(body);
    scopes_.clear();
    PushScope();
    for (size_t i = 0; i < param_names.size(); ++i) {
      // Parameters are spilled into locals so their address can be taken.
      ir::Instruction* slot = EmitAlloca(param_types[i], param_names[i]);
      builder_.Store(fn->arg(i), slot);
      DeclareLocal(param_names[i], slot, param_types[i]);
    }
    ParseBlockStatements();
    PopScope();

    // Seal the function: fall-through returns, and the alloca block.
    if (!builder_.insert_block()->HasTerminator()) {
      if (ret->IsVoid()) {
        builder_.Ret();
      } else if (ret->IsFloat()) {
        builder_.Ret(builder_.F64(0.0));
      } else if (ret->IsPointer()) {
        builder_.Ret(builder_.Null(ret));
      } else {
        builder_.Ret(module_->GetConstInt(ret, 0));
      }
    }
    BasicBlock* saved = builder_.insert_block();
    builder_.SetInsertPoint(alloca_block_);
    builder_.Br(body);
    builder_.SetInsertPoint(saved);
    function_ = nullptr;
  }

  // --- scopes ----------------------------------------------------------------
  struct LocalVar {
    Value* address = nullptr;  // alloca or global address
    const Type* type = nullptr;
  };

  void PushScope() { scopes_.emplace_back(); }
  void PopScope() { scopes_.pop_back(); }
  void DeclareLocal(const std::string& name, Value* address, const Type* type) {
    scopes_.back()[name] = LocalVar{address, type};
  }
  const LocalVar* LookupLocal(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) {
        return &found->second;
      }
    }
    return nullptr;
  }

  ir::Instruction* EmitAlloca(const Type* type, const std::string& name) {
    // All allocas live in the entry block so loops do not grow the frame.
    ir::Instruction* inst = function_->CreateInstruction(ir::Opcode::kAlloca,
                                                         module_->types().PointerTo(type));
    inst->set_extra_type(type);
    inst->set_name(name);
    alloca_block_->Append(inst);
    return inst;
  }

  // --- statements -------------------------------------------------------------
  void ParseBlockStatements() {
    while (ok() && !Check(TokenKind::kRBrace) && !AtEnd()) {
      ParseStatement();
    }
    Expect(TokenKind::kRBrace, "}");
  }

  void ParseStatement() {
    if (Match(TokenKind::kLBrace)) {
      PushScope();
      ParseBlockStatements();
      PopScope();
      return;
    }
    if (StartsType()) {
      ParseLocalDecl();
      return;
    }
    if (Match(TokenKind::kIf)) {
      ParseIf();
      return;
    }
    if (Match(TokenKind::kWhile)) {
      ParseWhile();
      return;
    }
    if (Match(TokenKind::kFor)) {
      ParseFor();
      return;
    }
    if (Match(TokenKind::kReturn)) {
      if (Check(TokenKind::kSemicolon)) {
        builder_.Ret();
      } else {
        ExprValue v = ParseExpression();
        if (!ok()) {
          return;
        }
        const Type* ret = function_->type()->return_type();
        Value* coerced = Coerce(Rvalue(v), v.type, ret);
        if (coerced == nullptr) {
          Fail("return type mismatch");
          return;
        }
        builder_.Ret(coerced);
      }
      Expect(TokenKind::kSemicolon, ";");
      // Unreachable code after return still needs a block to land in.
      builder_.SetInsertPoint(function_->CreateBlock("postret"));
      return;
    }
    if (Match(TokenKind::kOutput)) {
      Expect(TokenKind::kLParen, "(");
      ExprValue v = ParseExpression();
      Expect(TokenKind::kRParen, ")");
      Expect(TokenKind::kSemicolon, ";");
      if (ok()) {
        builder_.Output(ToWord(v));
      }
      return;
    }
    if (Match(TokenKind::kFree)) {
      Expect(TokenKind::kLParen, "(");
      ExprValue v = ParseExpression();
      Expect(TokenKind::kRParen, ")");
      Expect(TokenKind::kSemicolon, ";");
      if (ok()) {
        if (!v.type->IsPointer()) {
          Fail("free() needs a pointer");
          return;
        }
        builder_.Free(Rvalue(v));
      }
      return;
    }
    // Expression statement (assignments happen inside ParseExpression).
    ParseExpression();
    Expect(TokenKind::kSemicolon, ";");
  }

  void ParseLocalDecl() {
    const Type* base = ParseType();
    if (!ok()) {
      return;
    }
    do {
      std::string name;
      const Type* var_type = nullptr;
      if (Check(TokenKind::kLParen)) {
        var_type = ParseFunctionPointerDeclarator(base, &name);
      } else {
        Token id = Expect(TokenKind::kIdentifier, "variable name");
        if (!ok()) {
          return;
        }
        name = id.text;
        var_type = ParseArraySuffix(base);
      }
      if (!ok()) {
        return;
      }
      ir::Instruction* slot = EmitAlloca(var_type, name);
      DeclareLocal(name, slot, var_type);
      if (Match(TokenKind::kAssign)) {
        ExprValue init = ParseExpression();
        if (!ok()) {
          return;
        }
        EmitAssignment(slot, var_type, init);
      }
    } while (Match(TokenKind::kComma));
    Expect(TokenKind::kSemicolon, ";");
  }

  void ParseIf() {
    Expect(TokenKind::kLParen, "(");
    ExprValue cond = ParseExpression();
    Expect(TokenKind::kRParen, ")");
    if (!ok()) {
      return;
    }
    BasicBlock* then_bb = function_->CreateBlock("if.then");
    BasicBlock* else_bb = function_->CreateBlock("if.else");
    BasicBlock* join_bb = function_->CreateBlock("if.join");
    builder_.CondBr(ToWord(cond), then_bb, else_bb);

    builder_.SetInsertPoint(then_bb);
    ParseStatement();
    if (!builder_.insert_block()->HasTerminator()) {
      builder_.Br(join_bb);
    }
    builder_.SetInsertPoint(else_bb);
    if (Match(TokenKind::kElse)) {
      ParseStatement();
    }
    if (!builder_.insert_block()->HasTerminator()) {
      builder_.Br(join_bb);
    }
    builder_.SetInsertPoint(join_bb);
  }

  void ParseWhile() {
    BasicBlock* header = function_->CreateBlock("while.header");
    BasicBlock* body = function_->CreateBlock("while.body");
    BasicBlock* exit = function_->CreateBlock("while.exit");
    builder_.Br(header);
    builder_.SetInsertPoint(header);
    Expect(TokenKind::kLParen, "(");
    ExprValue cond = ParseExpression();
    Expect(TokenKind::kRParen, ")");
    if (!ok()) {
      return;
    }
    builder_.CondBr(ToWord(cond), body, exit);
    builder_.SetInsertPoint(body);
    ParseStatement();
    if (!builder_.insert_block()->HasTerminator()) {
      builder_.Br(header);
    }
    builder_.SetInsertPoint(exit);
  }

  void ParseFor() {
    Expect(TokenKind::kLParen, "(");
    PushScope();
    if (!Check(TokenKind::kSemicolon)) {
      if (StartsType()) {
        ParseLocalDecl();  // consumes the ';'
      } else {
        ParseExpression();
        Expect(TokenKind::kSemicolon, ";");
      }
    } else {
      Expect(TokenKind::kSemicolon, ";");
    }

    BasicBlock* header = function_->CreateBlock("for.header");
    BasicBlock* body = function_->CreateBlock("for.body");
    BasicBlock* step = function_->CreateBlock("for.step");
    BasicBlock* exit = function_->CreateBlock("for.exit");
    builder_.Br(header);

    builder_.SetInsertPoint(header);
    if (!Check(TokenKind::kSemicolon)) {
      ExprValue cond = ParseExpression();
      if (!ok()) {
        return;
      }
      builder_.CondBr(ToWord(cond), body, exit);
    } else {
      builder_.Br(body);
    }
    Expect(TokenKind::kSemicolon, ";");

    // The step expression is parsed now but must execute after the body:
    // remember its token range and re-parse it in the step block.
    const size_t step_begin = pos_;
    int depth = 0;
    while (!AtEnd() && (depth > 0 || !Check(TokenKind::kRParen))) {
      if (Check(TokenKind::kLParen)) {
        ++depth;
      } else if (Check(TokenKind::kRParen)) {
        --depth;
      }
      ++pos_;
    }
    const size_t step_end = pos_;
    Expect(TokenKind::kRParen, ")");

    builder_.SetInsertPoint(body);
    ParseStatement();
    if (!builder_.insert_block()->HasTerminator()) {
      builder_.Br(step);
    }

    builder_.SetInsertPoint(step);
    if (step_end > step_begin) {
      const size_t saved = pos_;
      pos_ = step_begin;
      ParseExpression();
      pos_ = saved;
    }
    builder_.Br(header);
    builder_.SetInsertPoint(exit);
    PopScope();
  }

  // --- expressions -------------------------------------------------------------
  // assignment -> logical_or ('=' assignment)?
  ExprValue ParseExpression() { return ParseAssignment(); }

  ExprValue ParseAssignment() {
    ExprValue lhs = ParseLogicalOr();
    if (!ok() || !Match(TokenKind::kAssign)) {
      return lhs;
    }
    if (!lhs.is_lvalue) {
      Fail("left side of '=' is not assignable");
      return {};
    }
    ExprValue rhs = ParseAssignment();
    if (!ok()) {
      return {};
    }
    EmitAssignment(lhs.value, lhs.type, rhs);
    ExprValue out;
    out.value = Rvalue(rhs);
    out.type = lhs.type;
    return out;
  }

  void EmitAssignment(Value* address, const Type* type, const ExprValue& rhs) {
    Value* value = Coerce(Rvalue(rhs), rhs.type, type);
    if (value == nullptr) {
      Fail("type mismatch in assignment");
      return;
    }
    builder_.Store(value, address);
  }

  ExprValue ParseLogicalOr() {
    ExprValue lhs = ParseLogicalAnd();
    while (ok() && Check(TokenKind::kOrOr)) {
      ++pos_;
      lhs = EmitShortCircuit(lhs, /*is_and=*/false);
    }
    return lhs;
  }

  ExprValue ParseLogicalAnd() {
    ExprValue lhs = ParseBitOr();
    while (ok() && Check(TokenKind::kAndAnd)) {
      ++pos_;
      lhs = EmitShortCircuit(lhs, /*is_and=*/true);
    }
    return lhs;
  }

  ExprValue EmitShortCircuit(const ExprValue& lhs, bool is_and) {
    auto& t = module_->types();
    ir::Instruction* slot = EmitAlloca(t.I64(), "sc");
    Value* l = ToWord(lhs);
    builder_.Store(builder_.ICmpNe(l, builder_.I64(0)), slot);
    BasicBlock* rhs_bb = function_->CreateBlock(is_and ? "and.rhs" : "or.rhs");
    BasicBlock* join = function_->CreateBlock("sc.join");
    if (is_and) {
      builder_.CondBr(l, rhs_bb, join);
    } else {
      builder_.CondBr(l, join, rhs_bb);
    }
    builder_.SetInsertPoint(rhs_bb);
    ExprValue rhs = ParseBitOr();
    if (!ok()) {
      return {};
    }
    builder_.Store(builder_.ICmpNe(ToWord(rhs), builder_.I64(0)), slot);
    builder_.Br(join);
    builder_.SetInsertPoint(join);
    ExprValue out;
    out.value = builder_.Load(slot);
    out.type = t.I64();
    return out;
  }

  ExprValue ParseBitOr() { return ParseLeftAssoc(&Parser::ParseBitXor, {{TokenKind::kPipe, BinOp::kOr}}); }
  ExprValue ParseBitXor() { return ParseLeftAssoc(&Parser::ParseBitAnd, {{TokenKind::kCaret, BinOp::kXor}}); }
  ExprValue ParseBitAnd() { return ParseLeftAssoc(&Parser::ParseEquality, {{TokenKind::kAmp, BinOp::kAnd}}); }
  ExprValue ParseEquality() {
    return ParseLeftAssoc(&Parser::ParseRelational,
                          {{TokenKind::kEq, BinOp::kEq}, {TokenKind::kNe, BinOp::kNe}});
  }
  ExprValue ParseRelational() {
    return ParseLeftAssoc(&Parser::ParseShift,
                          {{TokenKind::kLt, BinOp::kSLt},
                           {TokenKind::kLe, BinOp::kSLe},
                           {TokenKind::kGt, BinOp::kSGt},
                           {TokenKind::kGe, BinOp::kSGe}});
  }
  ExprValue ParseShift() {
    return ParseLeftAssoc(&Parser::ParseAdditive,
                          {{TokenKind::kShl, BinOp::kShl}, {TokenKind::kShr, BinOp::kLShr}});
  }
  ExprValue ParseAdditive() {
    return ParseLeftAssoc(&Parser::ParseMultiplicative,
                          {{TokenKind::kPlus, BinOp::kAdd}, {TokenKind::kMinus, BinOp::kSub}});
  }
  ExprValue ParseMultiplicative() {
    return ParseLeftAssoc(&Parser::ParseUnary,
                          {{TokenKind::kStar, BinOp::kMul},
                           {TokenKind::kSlash, BinOp::kSDiv},
                           {TokenKind::kPercent, BinOp::kSRem}});
  }

  using SubParser = ExprValue (Parser::*)();

  ExprValue ParseLeftAssoc(SubParser next, std::vector<std::pair<TokenKind, BinOp>> ops) {
    ExprValue lhs = (this->*next)();
    for (;;) {
      if (!ok()) {
        return lhs;
      }
      const BinOp* op = nullptr;
      for (const auto& [kind, binop] : ops) {
        if (Check(kind)) {
          op = &binop;
          break;
        }
      }
      if (op == nullptr) {
        return lhs;
      }
      ++pos_;
      ExprValue rhs = (this->*next)();
      if (!ok()) {
        return lhs;
      }
      lhs = EmitBinary(*op, lhs, rhs);
    }
  }

  ExprValue EmitBinary(BinOp op, const ExprValue& lhs, const ExprValue& rhs) {
    auto& t = module_->types();
    ExprValue out;
    // Arrays decay to element pointers in binary expressions.
    const Type* lt = RvalueType(lhs);
    const Type* rt = RvalueType(rhs);
    // Pointer arithmetic: p + i / p - i via element indexing.
    if (lt->IsPointer() && rt->IsInt() && (op == BinOp::kAdd || op == BinOp::kSub)) {
      Value* index = Coerce(Rvalue(rhs), rhs.type, t.I64());
      if (op == BinOp::kSub) {
        index = builder_.Sub(builder_.I64(0), index);
      }
      out.value = builder_.IndexAddr(Rvalue(lhs), index);
      out.type = lt;
      return out;
    }
    // Pointer comparisons.
    if (lt->IsPointer() && rt->IsPointer() && (op == BinOp::kEq || op == BinOp::kNe)) {
      Value* l = builder_.PtrToInt(Rvalue(lhs));
      Value* r = builder_.PtrToInt(Rvalue(rhs));
      out.value = builder_.Binary(op, l, r);
      out.type = t.I64();
      return out;
    }
    // Float arithmetic.
    if (lt->IsFloat() || rt->IsFloat()) {
      static const std::map<BinOp, BinOp> kFloatOps = {
          {BinOp::kAdd, BinOp::kFAdd}, {BinOp::kSub, BinOp::kFSub},
          {BinOp::kMul, BinOp::kFMul}, {BinOp::kSDiv, BinOp::kFDiv},
          {BinOp::kEq, BinOp::kFEq},   {BinOp::kNe, BinOp::kFNe},
          {BinOp::kSLt, BinOp::kFLt},  {BinOp::kSLe, BinOp::kFLe},
          {BinOp::kSGt, BinOp::kFGt},  {BinOp::kSGe, BinOp::kFGe}};
      auto it = kFloatOps.find(op);
      if (it == kFloatOps.end()) {
        Fail("invalid operator for float operands");
        return {};
      }
      Value* l = Coerce(Rvalue(lhs), lhs.type, t.FloatTy());
      Value* r = Coerce(Rvalue(rhs), rhs.type, t.FloatTy());
      out.value = builder_.Binary(it->second, l, r);
      const bool is_compare = op == BinOp::kEq || op == BinOp::kNe || op == BinOp::kSLt ||
                              op == BinOp::kSLe || op == BinOp::kSGt || op == BinOp::kSGe;
      out.type = is_compare ? static_cast<const Type*>(t.I64())
                            : static_cast<const Type*>(t.FloatTy());
      return out;
    }
    if (!lt->IsInt() || !rt->IsInt()) {
      Fail("invalid operand types for binary operator");
      return {};
    }
    // Integers: usual promotion to int (i64).
    Value* l = Coerce(Rvalue(lhs), lhs.type, t.I64());
    Value* r = Coerce(Rvalue(rhs), rhs.type, t.I64());
    out.value = builder_.Binary(op, l, r);
    out.type = t.I64();
    return out;
  }

  ExprValue ParseUnary() {
    auto& t = module_->types();
    if (Match(TokenKind::kStar)) {
      ExprValue operand = ParseUnary();
      if (!ok()) {
        return {};
      }
      if (!operand.type->IsPointer()) {
        Fail("dereference of a non-pointer");
        return {};
      }
      const Type* pointee = static_cast<const ir::PointerType*>(operand.type)->pointee();
      ExprValue out;
      out.value = Rvalue(operand);  // address
      out.type = pointee;
      out.is_lvalue = true;
      return out;
    }
    if (Match(TokenKind::kAmp)) {
      ExprValue operand = ParseUnary();
      if (!ok()) {
        return {};
      }
      if (!operand.is_lvalue) {
        Fail("cannot take the address of an rvalue");
        return {};
      }
      ExprValue out;
      out.value = operand.value;
      out.type = t.PointerTo(operand.type);
      return out;
    }
    if (Match(TokenKind::kMinus)) {
      ExprValue operand = ParseUnary();
      if (!ok()) {
        return {};
      }
      ExprValue out;
      if (operand.type->IsFloat()) {
        out.value = builder_.Binary(BinOp::kFSub, builder_.F64(0.0), Rvalue(operand));
        out.type = t.FloatTy();
      } else {
        out.value = builder_.Sub(builder_.I64(0), Coerce(Rvalue(operand), operand.type, t.I64()));
        out.type = t.I64();
      }
      return out;
    }
    if (Match(TokenKind::kNot)) {
      ExprValue operand = ParseUnary();
      if (!ok()) {
        return {};
      }
      ExprValue out;
      out.value = builder_.ICmpEq(ToWord(operand), builder_.I64(0));
      out.type = t.I64();
      return out;
    }
    // Cast: '(' type ')' unary — distinguished from parenthesised exprs.
    if (Check(TokenKind::kLParen)) {
      const size_t after = pos_ + 1;
      const TokenKind k = tokens_[after].kind;
      const bool is_type = k == TokenKind::kInt || k == TokenKind::kChar ||
                           k == TokenKind::kVoid || k == TokenKind::kFloat ||
                           k == TokenKind::kStruct;
      if (is_type) {
        ++pos_;  // '('
        const Type* to = ParseType();
        Expect(TokenKind::kRParen, ")");
        ExprValue operand = ParseUnary();
        if (!ok()) {
          return {};
        }
        return EmitCast(operand, to);
      }
    }
    return ParsePostfix();
  }

  ExprValue EmitCast(const ExprValue& operand, const Type* to) {
    auto& t = module_->types();
    Value* v = Rvalue(operand);
    const Type* from = operand.type;
    ExprValue out;
    out.type = to;
    if (from == to) {
      out.value = v;
    } else if (from->IsPointer() && to->IsPointer()) {
      out.value = builder_.Bitcast(v, to);
    } else if (from->IsPointer() && to->IsInt()) {
      out.value = Coerce(builder_.PtrToInt(v), t.I64(), to);
    } else if (from->IsInt() && to->IsPointer()) {
      out.value = builder_.IntToPtr(Coerce(v, from, t.I64()), to);
    } else if (from->IsInt() && to->IsInt()) {
      out.value = Coerce(v, from, to);
    } else if (from->IsInt() && to->IsFloat()) {
      out.value = builder_.Cast(CastKind::kIntToFloat, Coerce(v, from, t.I64()), to);
    } else if (from->IsFloat() && to->IsInt()) {
      out.value = Coerce(builder_.Cast(CastKind::kFloatToInt, v, t.I64()), t.I64(), to);
    } else {
      Fail("unsupported cast");
      return {};
    }
    return out;
  }

  ExprValue ParsePostfix() {
    ExprValue base = ParsePrimary();
    auto& t = module_->types();
    for (;;) {
      if (!ok()) {
        return base;
      }
      if (Match(TokenKind::kLBracket)) {
        ExprValue index = ParseExpression();
        Expect(TokenKind::kRBracket, "]");
        if (!ok()) {
          return {};
        }
        // a[i]: `a` is an array lvalue or a pointer rvalue.
        Value* base_ptr = nullptr;
        const Type* elem = nullptr;
        if (base.type->IsArray()) {
          base_ptr = base.value;  // address of the array
          elem = static_cast<const ir::ArrayType*>(base.type)->element();
        } else if (base.type->IsPointer()) {
          base_ptr = Rvalue(base);
          elem = static_cast<const ir::PointerType*>(base.type)->pointee();
        } else {
          Fail("subscript of a non-array");
          return {};
        }
        ExprValue out;
        out.value = builder_.IndexAddr(base_ptr, Coerce(Rvalue(index), index.type, t.I64()));
        out.type = elem;
        out.is_lvalue = true;
        base = out;
        continue;
      }
      if (Check(TokenKind::kDot) || Check(TokenKind::kArrow)) {
        const bool arrow = Check(TokenKind::kArrow);
        ++pos_;
        Token field = Expect(TokenKind::kIdentifier, "field name");
        if (!ok()) {
          return {};
        }
        Value* struct_addr = nullptr;
        const Type* struct_type = nullptr;
        if (arrow) {
          if (!base.type->IsPointer()) {
            Fail("'->' on a non-pointer");
            return {};
          }
          struct_addr = Rvalue(base);
          struct_type = static_cast<const ir::PointerType*>(base.type)->pointee();
        } else {
          if (!base.is_lvalue || !base.type->IsStruct()) {
            Fail("'.' on a non-struct");
            return {};
          }
          struct_addr = base.value;
          struct_type = base.type;
        }
        if (!struct_type->IsStruct() ||
            static_cast<const StructType*>(struct_type)->is_opaque()) {
          Fail("member access into an incomplete type");
          return {};
        }
        const auto* st = static_cast<const StructType*>(struct_type);
        int index = -1;
        for (size_t i = 0; i < st->fields().size(); ++i) {
          if (st->fields()[i].name == field.text) {
            index = static_cast<int>(i);
            break;
          }
        }
        if (index < 0) {
          Fail("no field '" + field.text + "' in " + st->ToString());
          return {};
        }
        // Bitcast in case the expression type is nominally the same struct.
        Value* typed = struct_addr;
        if (typed->type() != t.PointerTo(st)) {
          typed = builder_.Bitcast(typed, t.PointerTo(st));
        }
        ExprValue out;
        out.value = builder_.FieldAddr(typed, static_cast<unsigned>(index));
        out.type = st->fields()[static_cast<size_t>(index)].type;
        out.is_lvalue = true;
        base = out;
        continue;
      }
      if (Check(TokenKind::kLParen)) {
        base = EmitCall(base);
        continue;
      }
      return base;
    }
  }

  ExprValue EmitCall(const ExprValue& callee) {
    // Capture the direct-call target before parsing arguments: nested calls
    // in the argument list overwrite callee_function_.
    Function* direct = callee_function_;
    callee_function_ = nullptr;

    Expect(TokenKind::kLParen, "(");
    std::vector<ExprValue> args;
    if (!Check(TokenKind::kRParen)) {
      do {
        args.push_back(ParseExpression());
      } while (ok() && Match(TokenKind::kComma));
    }
    Expect(TokenKind::kRParen, ")");
    if (!ok()) {
      return {};
    }

    const ir::FunctionType* fn_type = nullptr;
    Value* fn_ptr = nullptr;
    if (direct != nullptr) {
      fn_type = direct->type();
    } else if (callee.type->IsPointer() &&
               static_cast<const ir::PointerType*>(callee.type)->pointee()->IsFunction()) {
      fn_ptr = Rvalue(callee);
      fn_type = static_cast<const ir::FunctionType*>(
          static_cast<const ir::PointerType*>(callee.type)->pointee());
    } else {
      Fail("called object is not a function");
      return {};
    }

    if (args.size() != fn_type->params().size()) {
      Fail("wrong number of arguments");
      return {};
    }
    std::vector<Value*> lowered;
    for (size_t i = 0; i < args.size(); ++i) {
      Value* v = Coerce(Rvalue(args[i]), args[i].type, fn_type->params()[i]);
      if (v == nullptr) {
        Fail("argument " + std::to_string(i + 1) + " type mismatch");
        return {};
      }
      lowered.push_back(v);
    }

    ExprValue out;
    out.type = fn_type->return_type();
    if (direct != nullptr) {
      out.value = builder_.Call(direct, lowered);
    } else {
      out.value = builder_.IndirectCall(fn_ptr, lowered);
    }
    return out;
  }

  ExprValue ParsePrimary() {
    auto& t = module_->types();
    if (Check(TokenKind::kIntLiteral)) {
      Token tok = tokens_[pos_++];
      ExprValue out;
      out.value = builder_.I64(tok.int_value);
      out.type = t.I64();
      return out;
    }
    if (Check(TokenKind::kStringLiteral)) {
      Token tok = tokens_[pos_++];
      GlobalVariable* g = module_->CreateGlobal(
          "str." + std::to_string(string_counter_++),
          t.ArrayOf(t.CharTy(), tok.text.size() + 1), /*is_const=*/true);
      std::vector<uint8_t> bytes(tok.text.begin(), tok.text.end());
      bytes.push_back(0);
      g->set_initializer(std::move(bytes));
      ExprValue out;
      out.value = builder_.IndexAddr(builder_.GlobalAddr(g), builder_.I64(0));
      out.type = t.CharPtrTy();
      return out;
    }
    if (Match(TokenKind::kInput)) {
      Expect(TokenKind::kLParen, "(");
      Expect(TokenKind::kRParen, ")");
      ExprValue out;
      out.value = builder_.Input();
      out.type = t.I64();
      return out;
    }
    if (Match(TokenKind::kMalloc)) {
      Expect(TokenKind::kLParen, "(");
      ExprValue size = ParseExpression();
      Expect(TokenKind::kRParen, ")");
      if (!ok()) {
        return {};
      }
      ExprValue out;
      out.value = builder_.Malloc(Coerce(Rvalue(size), size.type, t.I64()), t.VoidPtrTy());
      out.type = t.VoidPtrTy();
      return out;
    }
    if (Match(TokenKind::kSizeof)) {
      Expect(TokenKind::kLParen, "(");
      const Type* type = ParseType();
      Expect(TokenKind::kRParen, ")");
      if (!ok()) {
        return {};
      }
      ExprValue out;
      out.value = builder_.I64(type->SizeInBytes());
      out.type = t.I64();
      return out;
    }
    if (Match(TokenKind::kLParen)) {
      ExprValue inner = ParseExpression();
      Expect(TokenKind::kRParen, ")");
      return inner;
    }
    if (Check(TokenKind::kIdentifier)) {
      Token id = tokens_[pos_++];
      // libc routines.
      static const std::map<std::string, LibFunc> kLibFuncs = {
          {"strcpy", LibFunc::kStrcpy},   {"strncpy", LibFunc::kStrncpy},
          {"strcat", LibFunc::kStrcat},   {"strlen", LibFunc::kStrlen},
          {"strcmp", LibFunc::kStrcmp},   {"memcpy", LibFunc::kMemcpy},
          {"memset", LibFunc::kMemset},   {"memmove", LibFunc::kMemmove},
          {"input_bytes", LibFunc::kInputBytes}};
      auto lib = kLibFuncs.find(id.text);
      if (lib != kLibFuncs.end()) {
        return EmitLibCall(lib->second);
      }
      // Local variable?
      const LocalVar* local = LookupLocal(id.text);
      if (local != nullptr) {
        ExprValue out;
        out.value = local->address;
        out.type = local->type;
        out.is_lvalue = true;
        return out;
      }
      // Global variable?
      GlobalVariable* g = module_->FindGlobal(id.text);
      if (g != nullptr) {
        ExprValue out;
        out.value = builder_.GlobalAddr(g);
        out.type = g->type();
        out.is_lvalue = true;
        return out;
      }
      // Function: either a direct call target or &f / plain f decays to a
      // function pointer.
      Function* fn = module_->FindFunction(id.text);
      if (fn != nullptr) {
        if (Check(TokenKind::kLParen)) {
          callee_function_ = fn;
          ExprValue out;
          out.type = module_->types().PointerTo(fn->type());
          return out;
        }
        ExprValue out;
        out.value = builder_.FuncAddr(fn);
        out.type = module_->types().PointerTo(fn->type());
        return out;
      }
      Fail("unknown identifier '" + id.text + "'");
      return {};
    }
    Fail("expected an expression");
    return {};
  }

  ExprValue EmitLibCall(LibFunc f) {
    auto& t = module_->types();
    Expect(TokenKind::kLParen, "(");
    std::vector<Value*> args;
    if (!Check(TokenKind::kRParen)) {
      do {
        ExprValue a = ParseExpression();
        if (!ok()) {
          return {};
        }
        Value* v = Rvalue(a);
        // Array arguments decay to element pointers.
        if (a.is_lvalue && a.type->IsArray()) {
          v = builder_.IndexAddr(a.value, builder_.I64(0));
        } else if (a.type->IsInt() && a.type != t.I64()) {
          v = Coerce(v, a.type, t.I64());
        }
        args.push_back(v);
      } while (Match(TokenKind::kComma));
    }
    Expect(TokenKind::kRParen, ")");
    if (!ok()) {
      return {};
    }
    ExprValue out;
    Value* r = builder_.LibCall(f, args);
    out.value = r;
    out.type = r->type();
    return out;
  }

  // --- value helpers -------------------------------------------------------
  // Materialises an rvalue: loads lvalues, decays arrays to pointers.
  Value* Rvalue(const ExprValue& v) {
    if (!v.is_lvalue) {
      return v.value;
    }
    if (v.type->IsArray()) {
      // Array lvalue decays to a pointer to its first element.
      return builder_.IndexAddr(v.value, builder_.I64(0));
    }
    if (v.type->IsStruct()) {
      Fail("struct values are not supported; use pointers or memcpy");
      return v.value;  // address, keeps lowering alive until the error stops it
    }
    return builder_.Load(v.value);
  }

  // The rvalue's type after decay.
  const Type* RvalueType(const ExprValue& v) {
    if (v.is_lvalue && v.type->IsArray()) {
      return module_->types().PointerTo(
          static_cast<const ir::ArrayType*>(v.type)->element());
    }
    return v.type;
  }

  // Implicit conversions: integer width changes, char<->int, void* to/from
  // any pointer, array decay. Returns nullptr when incompatible.
  Value* Coerce(Value* v, const Type* from, const Type* to) {
    auto& t = module_->types();
    if (from == to) {
      return v;
    }
    if (from->IsArray() && to->IsPointer()) {
      return v;  // already decayed by Rvalue
    }
    if (from->IsInt() && to->IsInt()) {
      const int fb = static_cast<const ir::IntType*>(from)->bits();
      const int tb = static_cast<const ir::IntType*>(to)->bits();
      // Same-width casts (i8 vs char) are representation-preserving zexts.
      return builder_.Cast(fb <= tb ? CastKind::kZExt : CastKind::kTrunc, v, to);
    }
    if (from->IsPointer() && to->IsPointer()) {
      // void* and char* convert freely (C semantics for void*; char* is
      // permitted for the string routines).
      return builder_.Bitcast(v, to);
    }
    if (from->IsInt() && to->IsFloat()) {
      return builder_.Cast(CastKind::kIntToFloat, Coerce(v, from, t.I64()), to);
    }
    return nullptr;
  }

  // Condition/output value as a plain word.
  Value* ToWord(const ExprValue& v) {
    Value* r = Rvalue(v);
    const Type* type = RvalueType(v);
    auto& t = module_->types();
    if (type->IsPointer()) {
      return builder_.PtrToInt(r);
    }
    if (type->IsFloat()) {
      return builder_.Cast(CastKind::kFloatToInt, r, t.I64());
    }
    if (type->IsInt() && type != t.I64()) {
      return Coerce(r, type, t.I64());
    }
    return r;
  }

  // --- state ------------------------------------------------------------------
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  bool pass_two_ = false;
  std::string error_;
  std::unique_ptr<Module> module_;
  IRBuilder builder_;
  Function* function_ = nullptr;
  BasicBlock* alloca_block_ = nullptr;
  std::vector<std::map<std::string, LocalVar>> scopes_;
  Function* callee_function_ = nullptr;  // set by ParsePrimary for direct calls
  uint64_t string_counter_ = 0;
};

}  // namespace

CompileResult CompileC(const std::string& source, const std::string& module_name) {
  std::vector<Token> tokens;
  std::string error;
  if (!Lex(source, &tokens, &error)) {
    CompileResult r;
    r.error = error;
    return r;
  }
  Parser parser(std::move(tokens), module_name);
  return parser.Run();
}

}  // namespace cpi::frontend
