#include "src/fuzz/corpus.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace cpi::fuzz {

namespace {
constexpr char kMagic[] = "cpi-fuzz-plan v1";
}  // namespace

std::string SerializePlan(const Plan& plan) {
  std::ostringstream out;
  out << kMagic << "\n";
  out << "seed " << plan.seed << "\n";
  out << "pools " << plan.num_slots << " " << plan.num_leaves << " " << plan.num_pure
      << " " << plan.num_cells << " " << plan.num_workers << "\n";
  for (const PlannedOp& op : plan.ops) {
    out << "op " << static_cast<unsigned>(op.kind) << " " << op.a << " " << op.b << " "
        << op.c << " " << op.d << "\n";
  }
  return out.str();
}

bool ParsePlan(const std::string& text, Plan* out) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return false;
  }
  Plan plan;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag)) {
      continue;  // blank line
    }
    if (tag == "seed") {
      ls >> plan.seed;
    } else if (tag == "pools") {
      ls >> plan.num_slots >> plan.num_leaves >> plan.num_pure >> plan.num_cells >>
          plan.num_workers;
    } else if (tag == "op") {
      unsigned kind = 0;
      PlannedOp op;
      if (ls >> kind >> op.a >> op.b >> op.c >> op.d) {
        op.kind = static_cast<uint8_t>(kind);
        plan.ops.push_back(op);
      }
    }
    // Unknown tags are skipped: forward-compatible with annotated entries.
  }
  *out = std::move(plan);
  return true;
}

bool SavePlanFile(const std::string& path, const Plan& plan) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return false;
  }
  out << SerializePlan(plan);
  return static_cast<bool>(out);
}

bool LoadPlanFile(const std::string& path, Plan* out) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParsePlan(buf.str(), out);
}

}  // namespace cpi::fuzz
