// Plan serialization: the corpus format of the differential fuzzer.
//
// A corpus entry is a small line-oriented text file holding one Plan — the
// generator's complete decision trace — so any failure is replayable exactly,
// on any machine, without re-running the campaign:
//
//   cpi-fuzz-plan v1
//   seed 7
//   pools 4 4 2 4 1          (slots leaves pure cells workers)
//   op 8 123 456 789 0       (kind a b c d), one line per op
//
// Entries written by the minimizer are already shrunk; hand-editing is fine —
// Materialize clamps every field, so any parsed plan builds a valid module.
#ifndef CPI_SRC_FUZZ_CORPUS_H_
#define CPI_SRC_FUZZ_CORPUS_H_

#include <string>

#include "src/fuzz/generator.h"

namespace cpi::fuzz {

std::string SerializePlan(const Plan& plan);

// Parses SerializePlan's format. Returns false (and leaves *out untouched)
// on a malformed header; unknown or trailing lines are ignored.
bool ParsePlan(const std::string& text, Plan* out);

// File convenience wrappers; return false on I/O failure.
bool SavePlanFile(const std::string& path, const Plan& plan);
bool LoadPlanFile(const std::string& path, Plan* out);

}  // namespace cpi::fuzz

#endif  // CPI_SRC_FUZZ_CORPUS_H_
