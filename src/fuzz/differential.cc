#include "src/fuzz/differential.h"

#include <algorithm>
#include <exception>
#include <sstream>

#include "src/core/levee.h"
#include "src/core/scheme.h"
#include "src/vm/fault.h"

namespace cpi::fuzz {

namespace {

struct Cell {
  vm::RunResult result;
  bool ok = false;  // ran to a reported RunResult without a host exception
  std::string host_error;
};

// Materializes the plan fresh for every cell (instrumentation mutates the
// module in place) and traps any host-level exception: a cell can fail, the
// campaign cannot.
Cell RunCell(const Plan& plan, const core::Config& config) {
  Cell cell;
  try {
    auto module = Materialize(plan);
    cell.result = core::InstrumentAndRun(*module, config);
    cell.ok = true;
  } catch (const std::exception& e) {
    cell.host_error = e.what();
  } catch (...) {
    cell.host_error = "non-standard host exception";
  }
  return cell;
}

// Behaviour tuple: what every configuration of a scheme-preserving pipeline
// must agree on. Messages are excluded (schemes word their verdicts
// differently); counters are excluded (legitimately configuration-shaped).
std::string DiffBehaviour(const vm::RunResult& a, const vm::RunResult& b) {
  std::ostringstream out;
  if (a.status != b.status) {
    out << "status " << vm::RunStatusName(a.status) << " vs " << vm::RunStatusName(b.status);
  } else if (a.violation != b.violation) {
    out << "violation kind differs";
  } else if (a.exit_code != b.exit_code) {
    out << "exit " << a.exit_code << " vs " << b.exit_code;
  } else if (a.output != b.output) {
    out << "output differs (" << a.output.size() << " vs " << b.output.size() << " words)";
  }
  return out.str();
}

// Full identity: behaviour plus every counter, the memory footprint and the
// trap message. This is the contract between engines and across quanta.
std::string DiffCounters(const vm::RunResult& a, const vm::RunResult& b) {
  std::string d = DiffBehaviour(a, b);
  if (!d.empty()) {
    return d;
  }
  std::ostringstream out;
  const vm::Counters& x = a.counters;
  const vm::Counters& y = b.counters;
  if (a.message != b.message) {
    out << "trap message differs";
  } else if (x.instructions != y.instructions) {
    out << "instructions " << x.instructions << " vs " << y.instructions;
  } else if (x.cycles != y.cycles) {
    out << "cycles " << x.cycles << " vs " << y.cycles;
  } else if (x.mem_accesses != y.mem_accesses) {
    out << "mem_accesses " << x.mem_accesses << " vs " << y.mem_accesses;
  } else if (x.safe_store_ops != y.safe_store_ops) {
    out << "safe_store_ops " << x.safe_store_ops << " vs " << y.safe_store_ops;
  } else if (x.store_contended_ops != y.store_contended_ops) {
    out << "store_contended_ops " << x.store_contended_ops << " vs " << y.store_contended_ops;
  } else if (x.shard_migrations != y.shard_migrations) {
    out << "shard_migrations " << x.shard_migrations << " vs " << y.shard_migrations;
  } else if (x.seal_ops != y.seal_ops) {
    out << "seal_ops " << x.seal_ops << " vs " << y.seal_ops;
  } else if (x.checks != y.checks) {
    out << "checks " << x.checks << " vs " << y.checks;
  } else if (x.calls != y.calls) {
    out << "calls " << x.calls << " vs " << y.calls;
  } else if (x.hijack_transfers != y.hijack_transfers) {
    out << "hijack_transfers " << x.hijack_transfers << " vs " << y.hijack_transfers;
  } else if (x.cache_hits != y.cache_hits) {
    out << "cache_hits " << x.cache_hits << " vs " << y.cache_hits;
  } else if (x.cache_misses != y.cache_misses) {
    out << "cache_misses " << x.cache_misses << " vs " << y.cache_misses;
  } else if (x.thread_spawns != y.thread_spawns) {
    out << "thread_spawns " << x.thread_spawns << " vs " << y.thread_spawns;
  } else if (a.memory.TotalBytes() != b.memory.TotalBytes() ||
             a.memory.safe_store_entries != b.memory.safe_store_entries) {
    out << "memory footprint differs";
  }
  return out.str();
}

uint64_t Mix(uint64_t seed, uint64_t salt) {
  uint64_t z = seed + salt * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

const char* CaseStatusName(CaseStatus s) {
  switch (s) {
    case CaseStatus::kPass:
      return "pass";
    case CaseStatus::kDivergence:
      return "divergence";
    case CaseStatus::kHostError:
      return "host-error";
  }
  return "?";
}

CaseResult RunCase(const Plan& plan, const DiffOptions& options) {
  CaseResult out;
  auto fail = [&out](CaseStatus status, const std::string& where, const std::string& what) {
    out.status = status;
    out.detail = where + ": " + what;
  };

  // The scheme axis is the registry itself, so the ret-chain variant and the
  // registered composites (ptrenc+safestack, cpi+ptrenc-ret-chain) join the
  // sweep automatically. Cells select by Config::scheme — the composite
  // pointer, not just its Protection id.
  auto base_config = [&options](const core::ProtectionScheme* s) {
    core::Config c;
    c.protection = s->id();
    c.scheme = s;
    c.max_steps = options.max_steps;
    return c;
  };

  vm::RunResult vanilla_oracle;
  bool have_vanilla = false;

  for (const core::ProtectionScheme* s : core::SchemeRegistry::All()) {
    const std::string scheme = s->name();

    // In-scheme oracle: the reference tree-walker at O0, array store, the
    // default quantum.
    core::Config oracle_config = base_config(s);
    oracle_config.engine = vm::EngineKind::kReference;
    Cell oracle = RunCell(plan, oracle_config);
    ++out.cells_run;
    if (!oracle.ok) {
      fail(CaseStatus::kHostError, scheme + "/oracle", oracle.host_error);
      return out;
    }
    if (oracle.result.status == vm::RunStatus::kOutOfFuel) {
      // The budget edge is not comparable across configurations
      // (instrumentation changes instruction counts); skip the scheme.
      ++out.fuel_skips;
      continue;
    }

    // Counter-identity cells: engines and the quantum sweep.
    struct IdCell {
      const char* label;
      vm::EngineKind engine;
      uint64_t quantum;
    };
    static const IdCell kIdCells[] = {
        {"decoded/O0", vm::EngineKind::kDecoded, 64},
        {"fused/O0", vm::EngineKind::kFused, 64},
        {"fused/O0/q1", vm::EngineKind::kFused, 1},
        {"fused/O0/q4096", vm::EngineKind::kFused, 4096},
    };
    for (const IdCell& spec : kIdCells) {
      core::Config config = base_config(s);
      config.engine = spec.engine;
      config.thread_quantum = spec.quantum;
      Cell c = RunCell(plan, config);
      ++out.cells_run;
      if (!c.ok) {
        fail(CaseStatus::kHostError, scheme + "/" + spec.label, c.host_error);
        return out;
      }
      std::string diff = DiffCounters(oracle.result, c.result);
      // Self-test: deliberately misreport this one cell so the harness's
      // detect -> minimize -> replay machinery is exercised end to end.
      if (diff.empty() && options.inject_divergence_at != 0 &&
          scheme == "cpi" && std::string(spec.label) == "fused/O0" &&
          oracle.result.counters.instructions >= options.inject_divergence_at) {
        std::ostringstream msg;
        msg << "self-test injected divergence (oracle instructions "
            << oracle.result.counters.instructions << " >= " << options.inject_divergence_at
            << ")";
        diff = msg.str();
      }
      if (!diff.empty()) {
        fail(CaseStatus::kDivergence, scheme + "/" + spec.label, diff);
        return out;
      }
    }

    // Behaviour cells: the optimizer and the other store organisations.
    struct BehCell {
      const char* label;
      int opt;
      runtime::StoreKind store;
    };
    static const BehCell kBehCells[] = {
        {"fused/O1", 1, runtime::StoreKind::kArray},
        {"fused/O0/hash", 0, runtime::StoreKind::kHash},
        {"fused/O0/two-level", 0, runtime::StoreKind::kTwoLevel},
    };
    for (const BehCell& spec : kBehCells) {
      core::Config config = base_config(s);
      config.opt_level = spec.opt;
      config.store = spec.store;
      Cell c = RunCell(plan, config);
      ++out.cells_run;
      if (!c.ok) {
        fail(CaseStatus::kHostError, scheme + "/" + spec.label, c.host_error);
        return out;
      }
      if (c.result.status == vm::RunStatus::kOutOfFuel) {
        ++out.fuel_skips;
        continue;
      }
      const std::string diff = DiffBehaviour(oracle.result, c.result);
      if (!diff.empty()) {
        fail(CaseStatus::kDivergence, scheme + "/" + spec.label, diff);
        return out;
      }
    }

    // Sharded-store cells: the shard count must be invisible to behaviour,
    // and at any fixed count the engines must stay at full counter identity
    // (the shard-crossing premium is part of the deterministic cost model,
    // so reference and fused have to agree on it cycle for cycle).
    static const uint32_t kShardCounts[] = {2, 64};
    for (uint32_t shards : kShardCounts) {
      core::Config ref = base_config(s);
      ref.shards = shards;
      ref.engine = vm::EngineKind::kReference;
      core::Config fused = ref;
      fused.engine = vm::EngineKind::kFused;
      Cell cr = RunCell(plan, ref);
      Cell cf = RunCell(plan, fused);
      out.cells_run += 2;
      const std::string label = "shards" + std::to_string(shards);
      if (!cr.ok || !cf.ok) {
        fail(CaseStatus::kHostError, scheme + "/" + label,
             !cr.ok ? cr.host_error : cf.host_error);
        return out;
      }
      if (cr.result.status == vm::RunStatus::kOutOfFuel) {
        ++out.fuel_skips;
        continue;
      }
      std::string diff = DiffCounters(cr.result, cf.result);
      if (diff.empty()) {
        diff = DiffBehaviour(oracle.result, cr.result);
      }
      if (!diff.empty()) {
        fail(CaseStatus::kDivergence, scheme + "/" + label, diff);
        return out;
      }
    }

    // Epoch-migration cell: with ownership re-derived at every spawn/join
    // boundary (Config::migrate), the engines must still agree at full
    // counter identity — publish charges and shard_migrations included —
    // and behaviour must match the flat oracle exactly.
    {
      core::Config ref = base_config(s);
      ref.shards = 8;
      ref.migrate = true;
      ref.engine = vm::EngineKind::kReference;
      core::Config fused = ref;
      fused.engine = vm::EngineKind::kFused;
      Cell cr = RunCell(plan, ref);
      Cell cf = RunCell(plan, fused);
      out.cells_run += 2;
      if (!cr.ok || !cf.ok) {
        fail(CaseStatus::kHostError, scheme + "/migrate",
             !cr.ok ? cr.host_error : cf.host_error);
        return out;
      }
      if (cr.result.status != vm::RunStatus::kOutOfFuel) {
        std::string diff = DiffCounters(cr.result, cf.result);
        if (diff.empty()) {
          diff = DiffBehaviour(oracle.result, cr.result);
        }
        if (!diff.empty()) {
          fail(CaseStatus::kDivergence, scheme + "/migrate", diff);
          return out;
        }
      } else {
        ++out.fuel_skips;
      }
    }

    // Cross-scheme: instrumentation must preserve behaviour against vanilla.
    if (scheme == "vanilla") {
      vanilla_oracle = oracle.result;
      have_vanilla = true;
    } else if (have_vanilla) {
      const std::string diff = DiffBehaviour(vanilla_oracle, oracle.result);
      if (!diff.empty()) {
        fail(CaseStatus::kDivergence, scheme + "/cross-scheme", diff);
        return out;
      }
    }

    // CPI extras: debug (mirror-and-compare) and the temporal extension,
    // each at full reference-vs-fused counter identity. (Not compared to
    // the plain oracle: temporal checks legitimately turn a hazardous
    // program's stale reads into violations.)
    if (scheme == "cpi") {
      for (int mode = 0; mode < 2; ++mode) {
        const char* label = mode == 0 ? "debug" : "temporal";
        core::Config ref = base_config(s);
        ref.debug_mode = mode == 0;
        ref.temporal = mode == 1;
        ref.engine = vm::EngineKind::kReference;
        core::Config fused = ref;
        fused.engine = vm::EngineKind::kFused;
        Cell cr = RunCell(plan, ref);
        Cell cf = RunCell(plan, fused);
        out.cells_run += 2;
        if (!cr.ok || !cf.ok) {
          fail(CaseStatus::kHostError, scheme + std::string("/") + label,
               !cr.ok ? cr.host_error : cf.host_error);
          return out;
        }
        if (cr.result.status == vm::RunStatus::kOutOfFuel) {
          ++out.fuel_skips;
          continue;
        }
        const std::string diff = DiffCounters(cr.result, cf.result);
        if (!diff.empty()) {
          fail(CaseStatus::kDivergence, scheme + std::string("/") + label, diff);
          return out;
        }
      }
    }

    // Fault campaign: inject every kind mid-run on the fused tier and
    // require graceful containment. Firing points derive from the oracle's
    // instruction count so they land inside the program, not after it.
    if (options.fault_campaign) {
      const uint64_t span = oracle.result.counters.instructions;
      static const vm::FaultKind kKinds[] = {
          vm::FaultKind::kCorruptSafeStack, vm::FaultKind::kCorruptSafeStore,
          vm::FaultKind::kOomSafeStore,     vm::FaultKind::kOomHeapArena,
          vm::FaultKind::kOomPageAlloc,     vm::FaultKind::kForcePreempt,
          vm::FaultKind::kCorruptShard,     vm::FaultKind::kOomShard,
      };
      for (vm::FaultKind kind : kKinds) {
        vm::FaultPlan fplan;
        fplan.events.push_back(
            {kind, std::max<uint64_t>(1, span / 3), Mix(plan.seed, static_cast<uint64_t>(kind))});
        fplan.events.push_back({kind, std::max<uint64_t>(2, 2 * span / 3),
                                Mix(plan.seed, 16 + static_cast<uint64_t>(kind))});
        core::Config config = base_config(s);
        if (kind == vm::FaultKind::kCorruptShard || kind == vm::FaultKind::kOomShard) {
          config.shards = 8;  // per-shard containment needs real shards
        }
        config.faults = &fplan;
        Cell c = RunCell(plan, config);
        ++out.cells_run;
        const char* kind_name = vm::FaultKindName(kind);
        if (!c.ok) {
          // The whole point: an injected fault must surface as a reported
          // RunResult, never as an escaped exception.
          fail(CaseStatus::kHostError, scheme + "/fault/" + kind_name, c.host_error);
          return out;
        }
        if (kind == vm::FaultKind::kForcePreempt &&
            c.result.status != vm::RunStatus::kOutOfFuel) {
          // Scheduling is unobservable for race-free programs, so forced
          // preemption must leave behaviour intact.
          const std::string diff = DiffBehaviour(oracle.result, c.result);
          if (!diff.empty()) {
            fail(CaseStatus::kDivergence, scheme + "/fault/" + kind_name, diff);
            return out;
          }
        }
        if (c.result.faults_injected > 0) {
          out.fault_coverage.emplace_back(scheme, kind_name);
        }
      }
    }
  }
  return out;
}

}  // namespace cpi::fuzz
