// The differential executor: runs one generated program across the full
// configuration matrix and flags any disagreement.
//
// Per scheme (every registry entry — the eight classic schemes, the
// ret-chain variant and the registered composites, vanilla included), with
// the scheme's reference-engine run as the in-scheme oracle:
//
//   counter-identity cells  — decoded and fused engines at O0, plus a fused
//     quantum sweep (1, 64, 4096). Every simulated observable must match the
//     oracle bit for bit: status, violation, output, exit code, all
//     counters, memory footprint. This is the three-tier equivalence and
//     scheduler-determinism contract, checked on arbitrary programs.
//   behaviour cells — O1, and the hash/two-level store organisations.
//     Status, violation, output and exit must match; counters legitimately
//     differ (O1 removes work; store organisations have different touch
//     sequences, and the hash store's probe order is even
//     interleaving-dependent for threaded programs).
//   cross-scheme — each scheme's behaviour (status, output, exit) must match
//     the vanilla oracle: instrumentation must be behaviour-preserving even
//     on hazardous programs (a double free crashes identically everywhere;
//     stale reads are scheme-neutral while temporal checks are off).
//     Skipped when either side ran out of fuel (instrumentation changes
//     instruction counts, so the budget edge is not comparable).
//   CPI extras — debug (mirror-and-compare) and temporal modes, each
//     compared reference-vs-fused at full counter identity.
//   fault campaign — every FaultKind injected mid-run (firing points derived
//     from the oracle's instruction count). The contract is graceful
//     containment: the run reports a status, the host survives. Forced
//     preemption additionally keeps behaviour identical (race-free programs
//     cannot observe scheduling). Coverage of (scheme × kind) pairs that
//     actually injected is reported for the campaign-level assertion.
//
// Every cell is wrapped in a catch-all: a host-level exception becomes
// CaseStatus::kHostError in the CaseResult, never an aborted campaign.
#ifndef CPI_SRC_FUZZ_DIFFERENTIAL_H_
#define CPI_SRC_FUZZ_DIFFERENTIAL_H_

#include <string>
#include <utility>
#include <vector>

#include "src/fuzz/generator.h"

namespace cpi::fuzz {

enum class CaseStatus {
  kPass,        // all cells agree (possibly with fuel-capped comparisons skipped)
  kDivergence,  // two configurations disagreed on the same program
  kHostError,   // a cell threw a host-level exception (simulator bug)
};

const char* CaseStatusName(CaseStatus s);

struct DiffOptions {
  // Per-cell step budget. Generated programs are sized well below this;
  // cells that still hit it are skipped from comparison (fuel_skips) rather
  // than failed, because instrumentation legitimately changes step counts.
  uint64_t max_steps = 2'000'000;
  bool fault_campaign = true;
  // Self-test knob: when nonzero, the CPI fused/O0 cell is deliberately
  // misreported as divergent whenever the oracle executed at least this many
  // instructions. Drives an honest end-to-end test of detection,
  // minimization and corpus replay (bench/fuzz --self-test).
  uint64_t inject_divergence_at = 0;
};

struct CaseResult {
  CaseStatus status = CaseStatus::kPass;
  // First failure, as "scheme/cell: what differed". Empty on pass.
  std::string detail;
  int cells_run = 0;
  int fuel_skips = 0;
  // (scheme name, fault kind name) pairs whose injection actually landed and
  // was contained.
  std::vector<std::pair<std::string, std::string>> fault_coverage;
};

CaseResult RunCase(const Plan& plan, const DiffOptions& options = {});

}  // namespace cpi::fuzz

#endif  // CPI_SRC_FUZZ_DIFFERENTIAL_H_
