#include "src/fuzz/generator.h"

#include <algorithm>
#include <deque>
#include <string>

#include "src/ir/builder.h"
#include "src/support/check.h"
#include "src/support/rng.h"

namespace cpi::fuzz {

namespace {

using ir::BasicBlock;
using ir::BinOp;
using ir::Function;
using ir::GlobalVariable;
using ir::IRBuilder;
using ir::Module;
using ir::StructType;
using ir::Value;

constexpr uint64_t kBufBytes = 64;   // global char buffers
constexpr int kMaxSpawnsTotal = 6;   // well under vm::kMaxThreads

uint32_t Clamp(uint32_t v, uint32_t lo, uint32_t hi) {
  return std::min(std::max(v, lo), hi);
}

// Materialization state: the straight-line op trace lets the generator track
// the exact runtime state of every cell and worker statically, which is how
// hazard windows stay *chosen* rather than accidental.
enum class CellState { kNone, kLive, kFreed };

// Builds the module for one plan. A plain struct (not a class with an Rng):
// everything is a deterministic function of the plan.
struct Builder {
  const Plan& plan;
  std::unique_ptr<Module> m;
  ir::TypeContext* t = nullptr;
  IRBuilder b;

  const ir::FunctionType* fn_ty = nullptr;
  GlobalVariable* table = nullptr;
  GlobalVariable* acc = nullptr;
  GlobalVariable* buf_a = nullptr;
  GlobalVariable* buf_b = nullptr;
  StructType* box_ty = nullptr;

  std::vector<Function*> leaves;   // mutate acc; main-thread only
  std::vector<Function*> pures;    // arithmetic only; worker-safe
  std::vector<Function*> mids;     // call leaves (nested call graph)
  std::vector<Function*> workers;  // self-contained thread bodies
  Function* shared_reader = nullptr;  // cross-shard reader worker
  Value* shared_cell = nullptr;       // main-homed code-pointer cell it reads

  Function* main_fn = nullptr;
  std::vector<Value*> slots;      // i64 allocas
  std::vector<Value*> cell_ptrs;  // i64* allocas holding cell addresses
  std::vector<CellState> cells;
  Value* the_box = nullptr;

  std::vector<Value*> tid_slots;    // one alloca per executed spawn
  std::deque<size_t> outstanding;   // indices into tid_slots, FIFO
  int spawns_total = 0;

  uint32_t num_slots, num_leaves, num_pure, num_cells, num_workers;

  explicit Builder(const Plan& p)
      : plan(p),
        m(std::make_unique<Module>("fuzz")),
        b(m.get()),
        num_slots(Clamp(p.num_slots, 1, 8)),
        num_leaves(Clamp(p.num_leaves, 1, 6)),
        num_pure(Clamp(p.num_pure, 1, 4)),
        num_cells(Clamp(p.num_cells, 1, 8)),
        num_workers(std::min(p.num_workers, 4u)) {
    t = &m->types();
  }

  Value* Slot(uint32_t raw) { return slots[raw % num_slots]; }
  Value* LoadSlot(uint32_t raw) { return b.Load(Slot(raw)); }
  void FoldInto(uint32_t raw, Value* v) { b.Store(b.Add(b.Load(Slot(raw)), v), Slot(raw)); }

  void BuildCallees() {
    for (uint32_t k = 0; k < num_leaves; ++k) {
      Function* fn = m->CreateFunction("leaf" + std::to_string(k), fn_ty);
      b.SetInsertPoint(fn->CreateBlock("entry"));
      Value* x = fn->arg(0);
      Value* g = b.Load(b.GlobalAddr(acc));
      Value* r;
      switch (k % 4) {
        case 0: r = b.Add(x, g); break;
        case 1: r = b.Xor(b.Mul(x, b.I64(3)), g); break;
        case 2: r = b.Sub(g, x); break;
        default: r = b.Binary(BinOp::kOr, x, b.I64(0x55)); break;
      }
      b.Store(r, b.GlobalAddr(acc));
      b.Ret(r);
      leaves.push_back(fn);
    }
    // Pure leaves never touch globals or shared memory: a worker calling one
    // concurrently with main is race-free by construction.
    for (uint32_t k = 0; k < num_pure; ++k) {
      Function* fn = m->CreateFunction("pure" + std::to_string(k), fn_ty);
      b.SetInsertPoint(fn->CreateBlock("entry"));
      Value* x = fn->arg(0);
      Value* r = k % 2 == 0 ? b.Add(b.Mul(x, b.I64(5 + k)), b.I64(17))
                            : b.Xor(b.Binary(BinOp::kShl, x, b.I64(1)), b.I64(0x2a + k));
      b.Ret(r);
      pures.push_back(fn);
    }
    // Mid-level functions give call chains depth: main -> mid -> leaf.
    for (uint32_t k = 0; k < 2; ++k) {
      Function* fn = m->CreateFunction("mid" + std::to_string(k), fn_ty);
      b.SetInsertPoint(fn->CreateBlock("entry"));
      Value* x = fn->arg(0);
      Value* r1 = b.Call(leaves[k % num_leaves], {b.Add(x, b.I64(k))});
      Value* r2 = b.Call(leaves[(k + 1) % num_leaves], {b.Xor(x, b.I64(3))});
      b.Ret(b.Add(r1, r2));
      mids.push_back(fn);
    }
  }

  // A worker is entirely self-contained: its own allocas (per-thread stacks),
  // its own heap cell (per-thread arena + free lists), indirect calls through
  // a private pointer table into pure leaves. It never reads or writes state
  // main (or another worker) mutates, so any interleaving yields the same
  // result — the property that keeps the quantum sweep a counter-identity
  // check even for threaded plans.
  void BuildWorkers() {
    for (uint32_t w = 0; w < num_workers; ++w) {
      Function* fn = m->CreateFunction("worker" + std::to_string(w), fn_ty);
      b.SetInsertPoint(fn->CreateBlock("entry"));
      Value* x = fn->arg(0);
      Value* h = b.Malloc(b.I64(8), t->PointerTo(t->I64()));
      b.Store(b.Add(x, b.I64(w)), h);
      Value* tbl = b.Alloca(t->ArrayOf(t->PointerTo(fn_ty), 2), "wtbl");
      b.Store(b.FuncAddr(pures[w % num_pure]), b.IndexAddr(tbl, b.I64(0)));
      b.Store(b.FuncAddr(pures[(w + 1) % num_pure]), b.IndexAddr(tbl, b.I64(1)));

      Value* s_slot = b.Alloca(t->I64(), "ws");
      Value* i_slot = b.Alloca(t->I64(), "wi");
      b.Store(b.I64(0), s_slot);
      b.Store(b.I64(0), i_slot);
      const uint64_t iters = 3 + w % 4;
      BasicBlock* header = fn->CreateBlock("w.h");
      BasicBlock* body = fn->CreateBlock("w.b");
      BasicBlock* exit = fn->CreateBlock("w.e");
      b.Br(header);
      b.SetInsertPoint(header);
      b.CondBr(b.ICmpSLt(b.Load(i_slot), b.I64(iters)), body, exit);
      b.SetInsertPoint(body);
      Value* i = b.Load(i_slot);
      Value* fp = b.Load(b.IndexAddr(tbl, b.And(i, b.I64(1))));
      Value* r = b.IndirectCall(fp, {b.Add(x, i)});
      b.Store(b.Add(b.Load(s_slot), r), s_slot);
      b.Store(b.Add(b.Load(h), r), h);
      if (w % 2 == 1) {
        b.Yield();
      }
      b.Store(b.Add(i, b.I64(1)), i_slot);
      b.Br(header);
      b.SetInsertPoint(exit);
      Value* v = b.Load(h);
      b.Free(h);
      b.Ret(b.Add(b.Load(s_slot), v));
      workers.push_back(fn);
    }
    // The shared-reader worker generates cross-shard safe-store traffic by
    // construction: its only input is a main-homed heap cell holding a code
    // pointer. Every iteration re-reads that cell (under CPI, a safe-store
    // load homed to another thread's shard) and republishes the pointer
    // through a private arena cell before the indirect call. Race-free: the
    // shared cell is written once in the prologue and never mutated again.
    if (num_workers > 0) {
      const auto* sreader_ty =
          t->FunctionTy(t->I64(), {t->PointerTo(t->PointerTo(fn_ty))});
      Function* fn = m->CreateFunction("shared_reader", sreader_ty);
      b.SetInsertPoint(fn->CreateBlock("entry"));
      Value* src = fn->arg(0);
      Value* mine = b.Malloc(b.I64(8), t->PointerTo(t->PointerTo(fn_ty)));
      Value* s_slot = b.Alloca(t->I64(), "srs");
      Value* i_slot = b.Alloca(t->I64(), "sri");
      b.Store(b.I64(0), s_slot);
      b.Store(b.I64(0), i_slot);
      BasicBlock* header = fn->CreateBlock("sr.h");
      BasicBlock* body = fn->CreateBlock("sr.b");
      BasicBlock* exit = fn->CreateBlock("sr.e");
      b.Br(header);
      b.SetInsertPoint(header);
      b.CondBr(b.ICmpSLt(b.Load(i_slot), b.I64(5)), body, exit);
      b.SetInsertPoint(body);
      Value* fp = b.Load(src);
      b.Store(fp, mine);
      Value* i = b.Load(i_slot);
      Value* r = b.IndirectCall(b.Load(mine), {i});
      b.Store(b.Add(b.Load(s_slot), r), s_slot);
      b.Store(b.Add(i, b.I64(1)), i_slot);
      b.Br(header);
      b.SetInsertPoint(exit);
      Value* v = b.Load(s_slot);
      b.Free(mine);
      b.Ret(v);
      shared_reader = fn;
    }
  }

  void BuildMainPrologue() {
    main_fn = m->CreateFunction("main", t->FunctionTy(t->I64(), {}));
    b.SetInsertPoint(main_fn->CreateBlock("entry"));

    for (uint32_t i = 0; i < num_slots; ++i) {
      Value* s = b.Alloca(t->I64(), "l" + std::to_string(i));
      // Seed values come from the plan trace indirectly: the (i*2654435761)
      // mix keeps them distinct without consuming randomness here.
      b.Store(b.I64((plan.seed + i * 2654435761ULL) % 1000), s);
      slots.push_back(s);
    }
    for (int i = 0; i < 4; ++i) {
      b.Store(b.FuncAddr(leaves[i % num_leaves]),
              b.IndexAddr(b.GlobalAddr(table), b.I64(static_cast<uint64_t>(i))));
    }
    the_box = b.Malloc(b.I64(box_ty->SizeInBytes()), t->PointerTo(box_ty));
    b.Store(b.FuncAddr(leaves[0]), b.FieldAddr(the_box, "fp"));
    b.Store(b.I64(7), b.FieldAddr(the_box, "data"));
    Value* cell = b.Malloc(b.I64(8), t->PointerTo(t->I64()));
    b.Store(b.I64(11), cell);
    b.Store(b.Bitcast(cell, t->VoidPtrTy()), b.FieldAddr(the_box, "any"));

    if (shared_reader != nullptr) {
      shared_cell = b.Malloc(b.I64(8), t->PointerTo(t->PointerTo(fn_ty)));
      b.Store(b.FuncAddr(pures[0]), shared_cell);
    }

    const ir::PointerType* cell_ty = t->PointerTo(t->I64());
    for (uint32_t c = 0; c < num_cells; ++c) {
      Value* p = b.Alloca(cell_ty, "cell" + std::to_string(c));
      b.Store(b.Null(cell_ty), p);
      cell_ptrs.push_back(p);
      cells.push_back(CellState::kNone);
    }
  }

  // Degraded form for ops whose preconditions don't hold at this point of
  // the trace (e.g. kOpJoin with nothing outstanding): plain arithmetic, so
  // every trace position still does *something* observable.
  void EmitArith(const PlannedOp& op) {
    static const BinOp kOps[] = {BinOp::kAdd, BinOp::kSub, BinOp::kMul, BinOp::kAnd,
                                 BinOp::kOr,  BinOp::kXor, BinOp::kShl};
    Value* a = LoadSlot(op.a);
    Value* c = LoadSlot(op.b);
    Value* r = b.Binary(kOps[op.d % 7], a, b.And(c, b.I64(63)));
    b.Store(r, Slot(op.c));
  }

  void EmitOp(size_t index, const PlannedOp& op) {
    switch (static_cast<OpKind>(op.kind % kNumOpKinds)) {
      case kOpArith:
        EmitArith(op);
        break;
      case kOpDiv: {
        Value* divisor = b.Binary(BinOp::kOr, LoadSlot(op.b), b.I64(1));
        b.Store(b.Binary(BinOp::kUDiv, LoadSlot(op.a), divisor), Slot(op.c));
        break;
      }
      case kOpTableCall: {
        Value* idx = b.And(LoadSlot(op.a), b.I64(3));
        Value* fp = b.Load(b.IndexAddr(b.GlobalAddr(table), idx));
        b.Store(b.IndirectCall(fp, {LoadSlot(op.b)}), Slot(op.c));
        break;
      }
      case kOpTableRotate: {
        Value* idx = b.And(LoadSlot(op.a), b.I64(3));
        Value* jdx = b.And(LoadSlot(op.b), b.I64(3));
        Value* fi = b.Load(b.IndexAddr(b.GlobalAddr(table), idx));
        b.Store(fi, b.IndexAddr(b.GlobalAddr(table), jdx));
        break;
      }
      case kOpBoxCall: {
        Value* fp = b.Load(b.FieldAddr(the_box, "fp"));
        Value* r = b.IndirectCall(fp, {LoadSlot(op.a)});
        b.Store(b.Add(r, b.Load(b.FieldAddr(the_box, "data"))),
                b.FieldAddr(the_box, "data"));
        break;
      }
      case kOpAnyRoundTrip: {
        Value* any = b.Load(b.FieldAddr(the_box, "any"));
        Value* as_int = b.Bitcast(any, t->PointerTo(t->I64()));
        b.Store(b.Add(b.Load(as_int), b.I64(1)), as_int);
        break;
      }
      case kOpLoop: {
        Value* n = b.And(LoadSlot(op.a), b.I64(15));
        Value* i_slot = b.Alloca(t->I64(), "fi");
        b.Store(b.I64(0), i_slot);
        const std::string tag = std::to_string(index);
        BasicBlock* header = main_fn->CreateBlock("f.h" + tag);
        BasicBlock* body = main_fn->CreateBlock("f.b" + tag);
        BasicBlock* exit = main_fn->CreateBlock("f.e" + tag);
        b.Br(header);
        b.SetInsertPoint(header);
        b.CondBr(b.ICmpSLt(b.Load(i_slot), n), body, exit);
        b.SetInsertPoint(body);
        b.Store(b.Add(b.Load(b.GlobalAddr(acc)), b.Load(i_slot)), b.GlobalAddr(acc));
        b.Store(b.Add(b.Load(i_slot), b.I64(1)), i_slot);
        b.Br(header);
        b.SetInsertPoint(exit);
        break;
      }
      case kOpSelect: {
        Value* a = LoadSlot(op.a);
        Value* c = LoadSlot(op.b);
        Value* r = b.Select(b.ICmpSLt(a, c), b.Add(a, b.I64(1)), b.Sub(c, b.I64(1)));
        b.Store(r, Slot(op.c));
        break;
      }
      case kOpCellAlloc: {
        const size_t c = op.a % num_cells;
        if (cells[c] == CellState::kLive) {
          EmitArith(op);
          break;
        }
        // Re-allocating a previously freed cell draws from the thread's free
        // list: the recycled address makes earlier stale pointers alias the
        // new object — the classic reuse window temporal defenses target.
        Value* p = b.Malloc(b.I64(8), t->PointerTo(t->I64()));
        b.Store(b.I64(100 + op.b % 97), p);
        b.Store(p, cell_ptrs[c]);
        cells[c] = CellState::kLive;
        break;
      }
      case kOpCellUse: {
        const size_t c = op.a % num_cells;
        if (cells[c] != CellState::kLive) {
          EmitArith(op);
          break;
        }
        Value* p = b.Load(cell_ptrs[c]);
        b.Store(b.Add(b.Load(p), b.I64(1 + op.b % 7)), p);
        break;
      }
      case kOpCellFree: {
        const size_t c = op.a % num_cells;
        if (cells[c] != CellState::kLive) {
          EmitArith(op);
          break;
        }
        // The stale pointer intentionally stays in the cell slot.
        b.Free(b.Load(cell_ptrs[c]));
        cells[c] = CellState::kFreed;
        break;
      }
      case kOpUafRead: {
        const size_t c = op.a % num_cells;
        if (cells[c] != CellState::kFreed) {
          EmitArith(op);
          break;
        }
        // Freed heap stays mapped, so the stale read is deterministic (it
        // sees the old value, or the recycled object after a kOpCellAlloc
        // reuse) and identical for every scheme with temporal checks off.
        FoldInto(op.b, b.Load(b.Load(cell_ptrs[c])));
        break;
      }
      case kOpDoubleFree: {
        const size_t c = op.a % num_cells;
        // Only fire with no worker outstanding: the crash ends the run
        // immediately, and in-flight workers' partial progress at that
        // instant would make counters quantum-dependent.
        if (cells[c] != CellState::kFreed || !outstanding.empty()) {
          EmitArith(op);
          break;
        }
        // Deterministic crash ("invalid or double free") in every scheme and
        // engine; the trace's remaining ops are emitted but never execute.
        b.Free(b.Load(cell_ptrs[c]));
        break;
      }
      case kOpNestedCall: {
        Value* r = b.Call(mids[op.a % mids.size()], {LoadSlot(op.b)});
        b.Store(r, Slot(op.c));
        break;
      }
      case kOpStrTraffic: {
        const uint64_t n = 1 + op.a % (kBufBytes / 2 - 1);
        const uint64_t fill = 'a' + op.b % 26;
        Value* pa = b.IndexAddr(b.GlobalAddr(buf_a), b.I64(0));
        b.LibCall(ir::LibFunc::kMemset, {pa, b.I64(fill), b.I64(n)});
        b.Store(b.Char(0), b.IndexAddr(b.GlobalAddr(buf_a), b.I64(n)));
        Value* len = b.LibCall(ir::LibFunc::kStrlen, {pa});
        Value* pb = b.IndexAddr(b.GlobalAddr(buf_b), b.I64(0));
        b.LibCall(ir::LibFunc::kStrcpy, {pb, pa});
        Value* cmp = b.LibCall(ir::LibFunc::kStrcmp, {pb, pa});
        FoldInto(op.c, b.Add(len, cmp));
        break;
      }
      case kOpMemCopy: {
        const uint64_t off = op.a % 16;
        const uint64_t n = 8 + op.b % 17;  // off + n <= 40 < kBufBytes
        Value* pa = b.IndexAddr(b.GlobalAddr(buf_a), b.I64(0));
        Value* pb = b.IndexAddr(b.GlobalAddr(buf_b), b.I64(off));
        b.LibCall(ir::LibFunc::kMemcpy, {pb, pa, b.I64(n)});
        Value* byte = b.Load(b.IndexAddr(b.GlobalAddr(buf_b), b.I64(off + op.c % n)));
        FoldInto(op.d, b.Cast(ir::CastKind::kZExt, byte, t->I64()));
        break;
      }
      case kOpSpawn: {
        if (workers.empty() || spawns_total >= kMaxSpawnsTotal) {
          EmitArith(op);
          break;
        }
        Value* tid = b.Spawn(workers[op.a % workers.size()], {LoadSlot(op.b)});
        Value* slot = b.Alloca(t->I64(), "tid" + std::to_string(tid_slots.size()));
        b.Store(tid, slot);
        outstanding.push_back(tid_slots.size());
        tid_slots.push_back(slot);
        ++spawns_total;
        break;
      }
      case kOpJoin: {
        if (outstanding.empty()) {
          EmitArith(op);
          break;
        }
        const size_t idx = outstanding.front();
        outstanding.pop_front();
        Value* r = b.Join(b.Load(tid_slots[idx]));
        FoldInto(op.b, r);
        break;
      }
      case kOpYield:
        b.Yield();
        break;
      case kOpSpawnShared: {
        if (shared_reader == nullptr || spawns_total >= kMaxSpawnsTotal) {
          EmitArith(op);
          break;
        }
        Value* tid = b.Spawn(shared_reader, {shared_cell});
        Value* slot = b.Alloca(t->I64(), "tid" + std::to_string(tid_slots.size()));
        b.Store(tid, slot);
        outstanding.push_back(tid_slots.size());
        tid_slots.push_back(slot);
        ++spawns_total;
        break;
      }
      case kOpWorkerChurn: {
        // Worker churn in one op: spawn the shared reader, join it, spawn a
        // replacement, join that too. Under epoch migration every join
        // retires the worker's home group and every spawn re-publishes
        // ownership with the replacement inheriting the group — the server
        // worker-pool pattern, exercised at fuzz scale. Both workers are
        // fully reaped inside the op, so the outstanding set is unchanged.
        if (shared_reader == nullptr || spawns_total + 2 > kMaxSpawnsTotal) {
          EmitArith(op);
          break;
        }
        for (int g = 0; g < 2; ++g) {
          Value* tid = b.Spawn(shared_reader, {shared_cell});
          FoldInto(g == 0 ? op.b : op.c, b.Join(tid));
          ++spawns_total;
        }
        break;
      }
      case kNumOpKinds:
        break;
    }
  }

  void EmitEpilogue() {
    // Every spawned thread is joined before main returns; otherwise worker
    // progress at process exit — and with it the counters — would depend on
    // the scheduling quantum.
    while (!outstanding.empty()) {
      const size_t idx = outstanding.front();
      outstanding.pop_front();
      Value* r = b.Join(b.Load(tid_slots[idx]));
      b.Store(b.Add(b.Load(b.GlobalAddr(acc)), r), b.GlobalAddr(acc));
    }
    for (Value* s : slots) {
      b.Output(b.Load(s));
    }
    b.Output(b.Load(b.GlobalAddr(acc)));
    b.Output(b.Load(b.FieldAddr(the_box, "data")));
    Value* any = b.Load(b.FieldAddr(the_box, "any"));
    b.Output(b.Load(b.Bitcast(any, t->PointerTo(t->I64()))));
    for (size_t c = 0; c < cells.size(); ++c) {
      if (cells[c] == CellState::kLive) {
        b.Output(b.Load(b.Load(cell_ptrs[c])));
      } else {
        // State marker so a shrunk plan that flips a cell's fate still
        // changes the output vector.
        b.Output(b.I64(0xdead0000 + c * 16 + (cells[c] == CellState::kFreed ? 1 : 0)));
      }
    }
    b.Ret(b.I64(0));
  }

  std::unique_ptr<Module> Build() {
    fn_ty = t->FunctionTy(t->I64(), {t->I64()});
    table = m->CreateGlobal("table", t->ArrayOf(t->PointerTo(fn_ty), 4));
    acc = m->CreateGlobal("acc", t->I64());
    buf_a = m->CreateGlobal("buf_a", t->ArrayOf(t->CharTy(), kBufBytes));
    buf_b = m->CreateGlobal("buf_b", t->ArrayOf(t->CharTy(), kBufBytes));
    box_ty = t->GetOrCreateStruct("box");
    box_ty->SetBody({{"fp", t->PointerTo(fn_ty), 0},
                     {"data", t->I64(), 0},
                     {"any", t->VoidPtrTy(), 0}});
    BuildCallees();
    BuildWorkers();
    BuildMainPrologue();
    for (size_t i = 0; i < plan.ops.size(); ++i) {
      EmitOp(i, plan.ops[i]);
    }
    EmitEpilogue();
    return std::move(m);
  }
};

}  // namespace

const char* OpKindName(OpKind k) {
  switch (k) {
    case kOpArith: return "arith";
    case kOpDiv: return "div";
    case kOpTableCall: return "table-call";
    case kOpTableRotate: return "table-rotate";
    case kOpBoxCall: return "box-call";
    case kOpAnyRoundTrip: return "any-round-trip";
    case kOpLoop: return "loop";
    case kOpSelect: return "select";
    case kOpCellAlloc: return "cell-alloc";
    case kOpCellUse: return "cell-use";
    case kOpCellFree: return "cell-free";
    case kOpUafRead: return "uaf-read";
    case kOpDoubleFree: return "double-free";
    case kOpNestedCall: return "nested-call";
    case kOpStrTraffic: return "str-traffic";
    case kOpMemCopy: return "mem-copy";
    case kOpSpawn: return "spawn";
    case kOpJoin: return "join";
    case kOpYield: return "yield";
    case kOpSpawnShared: return "spawn-shared";
    case kOpWorkerChurn: return "worker-churn";
    case kNumOpKinds: break;
  }
  return "?";
}

Plan MakePlan(uint64_t seed, const GenOptions& options) {
  Rng rng(seed);
  Plan plan;
  plan.seed = seed;
  plan.num_slots = 3 + static_cast<uint32_t>(rng.NextBelow(4));
  plan.num_leaves = 3 + static_cast<uint32_t>(rng.NextBelow(3));
  plan.num_pure = 2 + static_cast<uint32_t>(rng.NextBelow(2));
  plan.num_cells = 2 + static_cast<uint32_t>(rng.NextBelow(4));
  plan.num_workers = options.threads ? static_cast<uint32_t>(rng.NextBelow(3)) : 0;

  // Weighted grammar: hazards are rare (a double free ends the program) and
  // thread ops moderate; plain data/control/pointer traffic dominates.
  std::vector<OpKind> bag;
  auto add = [&bag](OpKind k, int weight) { bag.insert(bag.end(), weight, k); };
  add(kOpArith, 6);
  add(kOpDiv, 3);
  add(kOpTableCall, 5);
  add(kOpTableRotate, 3);
  add(kOpBoxCall, 4);
  add(kOpAnyRoundTrip, 3);
  add(kOpLoop, 3);
  add(kOpSelect, 3);
  add(kOpCellAlloc, 5);
  add(kOpCellUse, 4);
  add(kOpCellFree, 4);
  add(kOpNestedCall, 3);
  add(kOpStrTraffic, 2);
  add(kOpMemCopy, 2);
  if (options.hazards) {
    add(kOpUafRead, 3);
    add(kOpDoubleFree, 1);
  }
  if (options.threads && plan.num_workers > 0) {
    add(kOpSpawn, 3);
    add(kOpJoin, 2);
    add(kOpYield, 1);
    add(kOpSpawnShared, 2);
    add(kOpWorkerChurn, 2);
  }

  CPI_CHECK(options.min_ops >= 1 && options.max_ops >= options.min_ops);
  const int num_ops =
      options.min_ops +
      static_cast<int>(rng.NextBelow(static_cast<uint64_t>(options.max_ops - options.min_ops) + 1));
  plan.ops.reserve(static_cast<size_t>(num_ops));
  for (int i = 0; i < num_ops; ++i) {
    PlannedOp op;
    op.kind = static_cast<uint8_t>(bag[rng.NextBelow(bag.size())]);
    op.a = static_cast<uint32_t>(rng.NextU64());
    op.b = static_cast<uint32_t>(rng.NextU64());
    op.c = static_cast<uint32_t>(rng.NextU64());
    op.d = static_cast<uint32_t>(rng.NextU64());
    plan.ops.push_back(op);
  }
  return plan;
}

std::unique_ptr<ir::Module> Materialize(const Plan& plan) {
  return Builder(plan).Build();
}

}  // namespace cpi::fuzz
