// Random well-typed IR program generator for the differential fuzzer.
//
// Generation is split in two so failing cases can be delta-debugged:
//
//   Plan plan = MakePlan(seed, options);   // all randomness happens here
//   auto module = Materialize(plan);       // pure function of the plan
//
// MakePlan draws every decision from the seeded Rng and records it as data (a
// handful of pool sizes plus a linear decision trace of PlannedOps).
// Materialize never consumes randomness: it interprets the trace
// deterministically, reducing raw fields modulo the relevant pool sizes. Any
// Plan — including one with ops deleted, fields zeroed, or counts shrunk by
// the minimizer, or one parsed from a hand-edited corpus file — materialises
// to a valid, verifying module.
//
// Generated programs are free of undefined behaviour *by construction* except
// for the explicitly requested hazard windows (GenOptions::hazards): stale
// reads of freed heap cells and double frees. Hazard behaviour is still
// deterministic and scheme-neutral under the default configuration (freed
// heap stays mapped; a double free is a deterministic crash in every scheme),
// which is what lets the differential executor compare hazardous programs
// across schemes too.
//
// Threaded programs (GenOptions::threads) are data-race-free by construction:
// workers touch only their own stack, their own heap arena, and pure leaf
// functions; every spawned thread is joined before main returns. This keeps
// counters identical at any scheduling quantum (tests/sched_test.cc's
// invariant), so the quantum sweep stays a strict counter-identity check.
#ifndef CPI_SRC_FUZZ_GENERATOR_H_
#define CPI_SRC_FUZZ_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/ir/module.h"

namespace cpi::fuzz {

// One recorded generator decision. `kind` selects the grammar production
// (OpKind below, reduced modulo kNumOpKinds); a..d are raw draws that
// Materialize reduces modulo pool sizes, loop bounds, etc. — so the minimizer
// can zero them freely.
struct PlannedOp {
  uint8_t kind = 0;
  uint32_t a = 0;
  uint32_t b = 0;
  uint32_t c = 0;
  uint32_t d = 0;
};

enum OpKind : uint8_t {
  kOpArith = 0,     // masked binary arithmetic between slots
  kOpDiv,           // division with a forced-nonzero divisor
  kOpTableCall,     // indirect call through the global fn-pointer table
  kOpTableRotate,   // copy one table entry over another (code-pointer store)
  kOpBoxCall,       // call through the heap box's fp field, mutate its data
  kOpAnyRoundTrip,  // void* universal-pointer load/bump/store
  kOpLoop,          // bounded loop accumulating into the global
  kOpSelect,        // conditional select between slots
  kOpCellAlloc,     // malloc a heap cell (re-alloc of a freed cell reuses
                    // the free list: the address-recycling window)
  kOpCellUse,       // read-modify-write a live cell
  kOpCellFree,      // free a live cell (stale pointer stays in its slot)
  kOpUafRead,       // hazard: read through a freed cell's stale pointer
  kOpDoubleFree,    // hazard: free a freed cell (deterministic crash)
  kOpNestedCall,    // call a mid-level function that calls leaves
  kOpStrTraffic,    // memset/strlen/strcpy/strcmp over global char buffers
  kOpMemCopy,       // memcpy between the char buffers + byte readback
  kOpSpawn,         // spawn a worker thread (tracked; all joined by exit)
  kOpJoin,          // join the oldest outstanding worker
  kOpYield,         // end the current scheduling quantum
  kOpSpawnShared,   // spawn the shared-reader worker: cross-shard traffic
                    // (reads a main-homed code-pointer cell; race-free)
  kOpWorkerChurn,   // spawn/join the shared reader twice back to back: the
                    // replacement inherits the retiree's homes under epoch
                    // ownership migration (Config::migrate)
  kNumOpKinds,
};

const char* OpKindName(OpKind k);

struct GenOptions {
  int min_ops = 12;
  int max_ops = 32;
  bool threads = true;
  bool hazards = false;
};

struct Plan {
  uint64_t seed = 0;  // provenance only; Materialize never reads it
  uint32_t num_slots = 4;
  uint32_t num_leaves = 4;   // acc-mutating leaves (main thread only)
  uint32_t num_pure = 2;     // pure leaves (callable from workers)
  uint32_t num_cells = 4;    // heap cell pool
  uint32_t num_workers = 0;  // worker function pool (0 = single-threaded)
  std::vector<PlannedOp> ops;
};

Plan MakePlan(uint64_t seed, const GenOptions& options = {});

// Deterministically builds the module a plan describes. The result always
// verifies (ir::IsValid); callers still run it through core::Compiler as
// usual.
std::unique_ptr<ir::Module> Materialize(const Plan& plan);

}  // namespace cpi::fuzz

#endif  // CPI_SRC_FUZZ_GENERATOR_H_
