#include "src/fuzz/minimize.h"

#include <algorithm>

namespace cpi::fuzz {

namespace {

class Shrinker {
 public:
  Shrinker(const Plan& seed, const DiffOptions& options, CaseStatus failure, int budget)
      : best_(seed), options_(options), failure_(failure), budget_(budget) {}

  MinimizeResult Run() {
    bool progress = true;
    while (progress && evaluations_ < budget_) {
      progress = false;
      progress |= DdminOps();
      progress |= SimplifyOps();
      progress |= ShrinkPools();
    }
    return MinimizeResult{best_, evaluations_};
  }

 private:
  // True when `candidate` still fails the same way; adopts it if so.
  bool Try(const Plan& candidate) {
    if (evaluations_ >= budget_) {
      return false;
    }
    ++evaluations_;
    if (RunCase(candidate, options_).status == failure_) {
      best_ = candidate;
      return true;
    }
    return false;
  }

  // Classic ddmin over the op trace: try removing chunks of ops, halving the
  // chunk size whenever a full sweep makes no progress.
  bool DdminOps() {
    bool any = false;
    size_t chunk = std::max<size_t>(best_.ops.size() / 2, 1);
    while (chunk >= 1 && evaluations_ < budget_) {
      bool removed = false;
      for (size_t start = 0; start < best_.ops.size() && evaluations_ < budget_;) {
        Plan candidate = best_;
        const size_t end = std::min(start + chunk, candidate.ops.size());
        candidate.ops.erase(candidate.ops.begin() + static_cast<long>(start),
                            candidate.ops.begin() + static_cast<long>(end));
        if (!candidate.ops.empty() && Try(candidate)) {
          removed = true;
          any = true;
          // best_ shrank; retry the same start index against the new trace.
        } else {
          start += chunk;
        }
      }
      if (chunk == 1) {
        break;
      }
      if (!removed) {
        chunk /= 2;
      }
    }
    return any;
  }

  // Zero the raw fields (Materialize reduces them, so zero is always the
  // canonical smallest choice) and pull kinds toward plain arithmetic.
  bool SimplifyOps() {
    bool any = false;
    for (size_t i = 0; i < best_.ops.size() && evaluations_ < budget_; ++i) {
      {
        Plan candidate = best_;
        PlannedOp& op = candidate.ops[i];
        if (op.a != 0 || op.b != 0 || op.c != 0 || op.d != 0) {
          op.a = op.b = op.c = op.d = 0;
          any |= Try(candidate);
        }
      }
      if (best_.ops[i].kind % kNumOpKinds != kOpArith) {
        Plan candidate = best_;
        candidate.ops[i].kind = kOpArith;
        any |= Try(candidate);
      }
    }
    return any;
  }

  bool ShrinkPools() {
    bool any = false;
    auto shrink = [this, &any](uint32_t Plan::* field, uint32_t floor) {
      while (best_.*field > floor && evaluations_ < budget_) {
        Plan candidate = best_;
        candidate.*field -= 1;
        if (!Try(candidate)) {
          break;
        }
        any = true;
      }
    };
    shrink(&Plan::num_workers, 0);
    shrink(&Plan::num_cells, 1);
    shrink(&Plan::num_leaves, 1);
    shrink(&Plan::num_pure, 1);
    shrink(&Plan::num_slots, 1);
    return any;
  }

  Plan best_;
  const DiffOptions& options_;
  const CaseStatus failure_;
  const int budget_;
  int evaluations_ = 0;
};

}  // namespace

MinimizeResult Minimize(const Plan& plan, const DiffOptions& options, CaseStatus failure,
                        int max_evaluations) {
  return Shrinker(plan, options, failure, max_evaluations).Run();
}

}  // namespace cpi::fuzz
