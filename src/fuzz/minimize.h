// Delta-debugging minimizer for failing fuzz cases.
//
// Because generation is plan-based (src/fuzz/generator.h), shrinking never
// has to reason about IR: it edits the recorded decision trace and
// re-materializes. The predicate is "RunCase still reports the same failure
// status"; any edit that loses the failure is rolled back.
//
// Three phases, iterated to a fixed point under an evaluation budget:
//   1. ddmin over the op trace: remove chunks, halving granularity.
//   2. per-op simplification: zero fields, rewrite kinds toward kOpArith.
//   3. pool shrinking: workers, cells, leaves, slots down to their minima.
#ifndef CPI_SRC_FUZZ_MINIMIZE_H_
#define CPI_SRC_FUZZ_MINIMIZE_H_

#include "src/fuzz/differential.h"
#include "src/fuzz/generator.h"

namespace cpi::fuzz {

struct MinimizeResult {
  Plan plan;           // smallest failing plan found
  int evaluations = 0; // RunCase calls spent
};

// Shrinks `plan`, preserving `failure` (the status RunCase(plan, options)
// reported; callers pass what they observed). `max_evaluations` bounds the
// work; the best plan so far is returned when the budget runs out.
MinimizeResult Minimize(const Plan& plan, const DiffOptions& options, CaseStatus failure,
                        int max_evaluations = 600);

}  // namespace cpi::fuzz

#endif  // CPI_SRC_FUZZ_MINIMIZE_H_
