// Baseline protection passes the paper compares against (§5.2, Fig. 5):
// SoftBound-style full memory safety, coarse-grained CFI, and stack cookies.
#include <map>
#include <vector>

#include "src/analysis/classify.h"
#include "src/instrument/passes.h"
#include "src/instrument/rewrite.h"
#include "src/ir/verifier.h"

namespace cpi::instrument {
namespace {

using analysis::Classifier;
using ir::Instruction;
using ir::IntrinsicId;
using ir::Opcode;
using ir::Value;

// A dereference directly through an alloca result (a scalar local accessed at
// a constant location) is statically safe; even SoftBound's own optimisations
// drop those checks. Everything else is checked.
bool IsDirectAllocaAccess(const Value* addr) {
  return addr->value_kind() == ir::ValueKind::kInstruction &&
         static_cast<const Instruction*>(addr)->op() == Opcode::kAlloca;
}

bool IsMemTransfer(ir::LibFunc f) {
  switch (f) {
    case ir::LibFunc::kMemcpy:
    case ir::LibFunc::kMemset:
    case ir::LibFunc::kMemmove:
    case ir::LibFunc::kStrcpy:
    case ir::LibFunc::kStrncpy:
    case ir::LibFunc::kStrcat:
    case ir::LibFunc::kInputBytes:
      return true;
    default:
      return false;
  }
}

}  // namespace

void ApplySoftBoundRewrites(ir::Module& module) {
  CPI_CHECK(!module.protection().cpi && !module.protection().cps &&
            !module.protection().softbound && !module.protection().ptrenc);

  for (const auto& f : module.functions()) {
    std::map<Value*, Value*> replacements;
    for (const auto& bb : f->blocks()) {
      std::vector<Instruction*> out;
      out.reserve(bb->instructions().size());
      for (Instruction* inst : bb->instructions()) {
        const bool is_load = inst->op() == Opcode::kLoad;
        const bool is_store = inst->op() == Opcode::kStore;
        if (is_load || is_store) {
          Value* addr = inst->operand(is_store ? 1 : 0);
          // Full memory safety: check every non-trivial dereference.
          if (!IsDirectAllocaAccess(addr)) {
            const ir::Type* pointee =
                static_cast<const ir::PointerType*>(addr->type())->pointee();
            const uint64_t size = pointee->IsVoid() ? 8 : pointee->SizeInBytes();
            Instruction* check =
                f->CreateInstruction(Opcode::kIntrinsic, module.types().VoidTy());
            check->set_intrinsic(IntrinsicId::kSbCheck);
            check->AddOperand(addr);
            check->AddOperand(module.GetI64(size));
            out.push_back(check);
          }
          // Pointer-typed values additionally maintain shadow metadata.
          const ir::Type* value_type = is_store ? inst->operand(0)->type() : inst->type();
          if (value_type->IsPointer()) {
            if (is_load) {
              Instruction* repl = f->CreateInstruction(Opcode::kIntrinsic, inst->type());
              repl->set_intrinsic(IntrinsicId::kSbLoad);
              repl->AddOperand(addr);
              out.push_back(repl);
              replacements[inst] = repl;
            } else {
              Instruction* repl =
                  f->CreateInstruction(Opcode::kIntrinsic, module.types().VoidTy());
              repl->set_intrinsic(IntrinsicId::kSbStore);
              repl->AddOperand(addr);
              repl->AddOperand(inst->operand(0));
              out.push_back(repl);
            }
            continue;
          }
          out.push_back(inst);
          continue;
        }
        if (inst->op() == Opcode::kLibCall && IsMemTransfer(inst->lib_func())) {
          inst->set_checked(true);
        }
        out.push_back(inst);
      }
      bb->ReplaceInstructions(std::move(out));
    }
    RemapOperands(*f, replacements);
  }

  module.protection().softbound = true;
}

void ApplySoftBound(ir::Module& module) {
  ApplySoftBoundRewrites(module);
  FinalizeModule(module);
  CPI_CHECK(ir::IsValid(module));
}

void ApplyCfiRewrites(ir::Module& module) {
  module.ComputeAddressTaken();
  for (const auto& f : module.functions()) {
    for (const auto& bb : f->blocks()) {
      std::vector<Instruction*> out;
      out.reserve(bb->instructions().size());
      for (Instruction* inst : bb->instructions()) {
        if (inst->op() == Opcode::kIndirectCall) {
          Instruction* check =
              f->CreateInstruction(Opcode::kIntrinsic, inst->operand(0)->type());
          check->set_intrinsic(IntrinsicId::kCfiCheck);
          check->AddOperand(inst->operand(0));
          out.push_back(check);
          inst->SetOperand(0, check);
        }
        out.push_back(inst);
      }
      bb->ReplaceInstructions(std::move(out));
    }
  }
  module.protection().cfi = true;
}

void ApplyCfi(ir::Module& module) {
  ApplyCfiRewrites(module);
  FinalizeModule(module);
  CPI_CHECK(ir::IsValid(module));
}

void ApplyStackCookiesRewrites(ir::Module& module) {
  // The compiler heuristic of -fstack-protector: protect functions with
  // character-array locals of at least 8 bytes.
  for (const auto& f : module.functions()) {
    bool needs_cookie = false;
    for (const auto& bb : f->blocks()) {
      for (const Instruction* inst : bb->instructions()) {
        if (inst->op() != Opcode::kAlloca || !inst->extra_type()->IsArray()) {
          continue;
        }
        const auto* arr = static_cast<const ir::ArrayType*>(inst->extra_type());
        if (arr->element()->IsInt() &&
            static_cast<const ir::IntType*>(arr->element())->bits() == 8 &&
            arr->SizeInBytes() >= 8) {
          needs_cookie = true;
        }
      }
    }
    f->set_has_stack_cookie(needs_cookie);
  }
  module.protection().stack_cookies = true;
}

void ApplyStackCookies(ir::Module& module) {
  ApplyStackCookiesRewrites(module);
  FinalizeModule(module);
}

}  // namespace cpi::instrument
