// The CPI and CPS instrumentation passes (§3.2.2, §3.3).
//
// Both passes share their skeleton and differ only in the classification
// criterion (via analysis::Classifier) and in which intrinsics they emit:
// CPI maintains full based-on metadata and checks sensitive dereferences,
// CPS only moves code pointers through the safe store.
#include <map>
#include <vector>

#include "src/analysis/classify.h"
#include "src/instrument/passes.h"
#include "src/instrument/rewrite.h"
#include "src/ir/verifier.h"

namespace cpi::instrument {
namespace {

using analysis::Classifier;
using analysis::FunctionClassification;
using analysis::MemOpClass;
using ir::Instruction;
using ir::IntrinsicId;
using ir::Opcode;
using ir::Value;

struct IntrinsicSet {
  IntrinsicId store;
  IntrinsicId store_uni;
  IntrinsicId load;
  IntrinsicId load_uni;
  IntrinsicId assert_code;
};

constexpr IntrinsicSet kCpiIntrinsics = {
    IntrinsicId::kCpiStore, IntrinsicId::kCpiStoreUni, IntrinsicId::kCpiLoad,
    IntrinsicId::kCpiLoadUni, IntrinsicId::kCpiAssertCode};
constexpr IntrinsicSet kCpsIntrinsics = {
    IntrinsicId::kCpsStore, IntrinsicId::kCpsStoreUni, IntrinsicId::kCpsLoad,
    IntrinsicId::kCpsLoadUni, IntrinsicId::kCpsAssertCode};

void InstrumentModule(ir::Module& module, analysis::Protection protection,
                      const PassOptions& options, const IntrinsicSet& ids) {
  CPI_CHECK(!module.protection().cpi && !module.protection().cps &&
            !module.protection().softbound && !module.protection().ptrenc);

  analysis::ClassifyOptions copts;
  copts.protection = protection;
  copts.char_star_heuristic = options.char_star_heuristic;
  copts.cast_dataflow = options.cast_dataflow;
  Classifier classifier(module, copts);

  for (const auto& f : module.functions()) {
    const FunctionClassification& fc = classifier.ForFunction(f.get());
    std::map<Value*, Value*> replacements;

    for (const auto& bb : f->blocks()) {
      std::vector<Instruction*> out;
      out.reserve(bb->instructions().size());

      for (Instruction* inst : bb->instructions()) {
        // Bounds check on dereferences through sensitive pointers (CPI only;
        // the classifier leaves this set empty for CPS).
        if (fc.needs_bounds_check.count(inst) > 0) {
          const bool is_store = inst->op() == Opcode::kStore;
          Value* addr = inst->operand(is_store ? 1 : 0);
          const ir::Type* pointee =
              static_cast<const ir::PointerType*>(addr->type())->pointee();
          const uint64_t size = pointee->IsVoid() ? 8 : pointee->SizeInBytes();
          Instruction* check =
              f->CreateInstruction(Opcode::kIntrinsic, module.types().VoidTy());
          check->set_intrinsic(IntrinsicId::kCpiBoundsCheck);
          check->AddOperand(addr);
          check->AddOperand(module.GetI64(size));
          out.push_back(check);
        }

        auto cls_it = fc.mem_ops.find(inst);
        const MemOpClass cls =
            cls_it == fc.mem_ops.end() ? MemOpClass::kNone : cls_it->second;

        switch (inst->op()) {
          case Opcode::kLoad: {
            if (cls == MemOpClass::kNone) {
              out.push_back(inst);
              break;
            }
            Instruction* repl = f->CreateInstruction(Opcode::kIntrinsic, inst->type());
            repl->set_intrinsic(cls == MemOpClass::kProtectedUni ? ids.load_uni : ids.load);
            repl->AddOperand(inst->operand(0));
            repl->set_name(inst->name());
            out.push_back(repl);
            replacements[inst] = repl;
            break;
          }
          case Opcode::kStore: {
            if (cls == MemOpClass::kNone) {
              out.push_back(inst);
              break;
            }
            Instruction* repl =
                f->CreateInstruction(Opcode::kIntrinsic, module.types().VoidTy());
            repl->set_intrinsic(cls == MemOpClass::kProtectedUni ? ids.store_uni : ids.store);
            repl->AddOperand(inst->operand(1));  // address
            repl->AddOperand(inst->operand(0));  // value
            out.push_back(repl);
            break;
          }
          case Opcode::kLibCall:
            if (fc.checked_libcalls.count(inst) > 0) {
              inst->set_checked(true);
            }
            out.push_back(inst);
            break;
          case Opcode::kIndirectCall: {
            // Assert the target is a safe code pointer, then call through the
            // asserted value.
            Instruction* assert_inst =
                f->CreateInstruction(Opcode::kIntrinsic, inst->operand(0)->type());
            assert_inst->set_intrinsic(ids.assert_code);
            assert_inst->AddOperand(inst->operand(0));
            out.push_back(assert_inst);
            inst->SetOperand(0, assert_inst);
            out.push_back(inst);
            break;
          }
          default:
            out.push_back(inst);
            break;
        }
      }
      bb->ReplaceInstructions(std::move(out));
    }
    RemapOperands(*f, replacements);
  }

  if (protection == analysis::Protection::kCpi) {
    module.protection().cpi = true;
  } else {
    module.protection().cps = true;
  }
  module.protection().debug_mode = options.debug_mode;
  module.protection().temporal = options.temporal;
}

}  // namespace

void ApplyCpiRewrites(ir::Module& module, const PassOptions& options) {
  InstrumentModule(module, analysis::Protection::kCpi, options, kCpiIntrinsics);
}

void ApplyCpsRewrites(ir::Module& module, const PassOptions& options) {
  InstrumentModule(module, analysis::Protection::kCps, options, kCpsIntrinsics);
}

void ApplyCpi(ir::Module& module, const PassOptions& options) {
  ApplyCpiRewrites(module, options);
  // CPI/CPS deployments include the safe stack (§3.2.4).
  ApplySafeStack(module);
  FinalizeModule(module);
  CPI_CHECK(ir::IsValid(module));
}

void ApplyCps(ir::Module& module, const PassOptions& options) {
  ApplyCpsRewrites(module, options);
  ApplySafeStack(module);
  FinalizeModule(module);
  CPI_CHECK(ir::IsValid(module));
}

}  // namespace cpi::instrument
