// The instrumentation passes of the Levee prototype (§4), plus the baselines
// the paper compares against.
//
// Every pass rewrites the module in place, re-numbers values, and records
// itself in Module::protection(). Composition rules follow the paper: the
// SafeStack pass is part of both CPI and CPS deployments and also works
// stand-alone (-fstack-protector-safe); the baselines are mutually exclusive
// with CPI/CPS.
#ifndef CPI_SRC_INSTRUMENT_PASSES_H_
#define CPI_SRC_INSTRUMENT_PASSES_H_

#include "src/ir/module.h"

namespace cpi::instrument {

struct PassOptions {
  bool char_star_heuristic = true;  // §3.2.1 char*-as-string refinement
  bool cast_dataflow = true;        // §3.2.1 unsafe-cast dataflow analysis
  bool debug_mode = false;          // §3.2.2 mirror-and-compare mode
  bool temporal = false;            // CETS-style temporal extension (§4)
};

// §3.2.4: classifies every alloca as safe/unsafe, marks functions that need
// an unsafe frame, and enables the dual-stack runtime.
void ApplySafeStack(ir::Module& module);

// §3.2.2: rewrites sensitive loads/stores into safe-pointer-store intrinsics,
// adds bounds checks on sensitive dereferences and code-pointer assertions on
// indirect calls. Includes the safe stack.
void ApplyCpi(ir::Module& module, const PassOptions& options = {});

// §3.3: code-pointer-only protection, no bounds metadata. Includes the safe
// stack.
void ApplyCps(ir::Module& module, const PassOptions& options = {});

// Baseline: SoftBound-style full spatial memory safety — every pointer-typed
// load/store maintains shadow metadata and every non-trivial dereference is
// checked.
void ApplySoftBound(ir::Module& module);

// Baseline: coarse-grained CFI — indirect calls may only target
// address-taken functions.
void ApplyCfi(ir::Module& module);

// Baseline: stack cookies for functions with character-array locals.
void ApplyStackCookies(ir::Module& module);

// PACTight/LIPPEN-style in-place pointer sealing: code pointers are stored
// sealed (keyed MAC over value+location in their high bits) in regular
// memory, loads authenticate, indirect calls assert authentication. Needs no
// safe region at all; the VM also seals saved return tokens in place.
void ApplyPtrEnc(ir::Module& module, const PassOptions& options = {});

// PACStack-style chained return MACs (ProtectionFlags::ret_chain): the VM
// seals every saved return token over its predecessor and keeps a per-thread
// chain head, so a return authenticates the whole chain suffix. Pure flag
// pass — all the work happens in the VM. Mutually exclusive with PtrEnc,
// which owns the plain sealed-return-slot format.
void ApplyRetChain(ir::Module& module);

// Rewrite-only stage entry points, as the scheme layer's staged pipeline
// (core::PipelineStage) consumes them: each applies one scheme's IR rewrites
// and records its protection flags, but leaves the final module re-numbering
// to the pipeline runner. The ApplyX wrappers above remain byte-identical
// compositions of these stages (rewrites, then FinalizeModule).
void ApplyCpiRewrites(ir::Module& module, const PassOptions& options = {});
void ApplyCpsRewrites(ir::Module& module, const PassOptions& options = {});
void ApplyPtrEncRewrites(ir::Module& module, const PassOptions& options = {});
void ApplySoftBoundRewrites(ir::Module& module);
void ApplyCfiRewrites(ir::Module& module);
void ApplyStackCookiesRewrites(ir::Module& module);

// Re-numbers all functions; needed before execution even when no pass ran.
void FinalizeModule(ir::Module& module);

}  // namespace cpi::instrument

#endif  // CPI_SRC_INSTRUMENT_PASSES_H_
