// The PtrEnc instrumentation pass: PACTight/LIPPEN-style in-place pointer
// sealing.
//
// Uses the CPS sensitivity criterion (code pointers and the universal slots
// they may flow through) but a fundamentally different runtime shape: instead
// of diverting protected pointers into a safe region, every protected store
// seals the pointer in place (keyed MAC in the unused high bits, bound to the
// storage location) and every protected load authenticates it. Indirect
// calls assert that the target value authenticated. The VM additionally
// seals saved return tokens in place (see ProtectionFlags::ptrenc), so the
// scheme needs neither a safe pointer store nor a safe stack.
#include <map>
#include <vector>

#include "src/analysis/classify.h"
#include "src/instrument/passes.h"
#include "src/instrument/rewrite.h"
#include "src/ir/verifier.h"

namespace cpi::instrument {

void ApplyPtrEncRewrites(ir::Module& module, const PassOptions& options) {
  CPI_CHECK(!module.protection().cpi && !module.protection().cps &&
            !module.protection().softbound && !module.protection().ptrenc);
  // PtrEnc owns the plain sealed-return-slot format; the chained variant
  // must not stack on top of it (the scheme layer rejects the combination
  // as a ret-mac write conflict before instrumentation ever runs).
  CPI_CHECK(!module.protection().ret_chain);

  using analysis::MemOpClass;
  using ir::Instruction;
  using ir::IntrinsicId;
  using ir::Opcode;
  using ir::Value;

  analysis::ClassifyOptions copts;
  copts.protection = analysis::Protection::kCps;
  copts.char_star_heuristic = options.char_star_heuristic;
  copts.cast_dataflow = options.cast_dataflow;
  analysis::Classifier classifier(module, copts);

  for (const auto& f : module.functions()) {
    const analysis::FunctionClassification& fc = classifier.ForFunction(f.get());
    std::map<Value*, Value*> replacements;

    for (const auto& bb : f->blocks()) {
      std::vector<Instruction*> out;
      out.reserve(bb->instructions().size());

      for (Instruction* inst : bb->instructions()) {
        auto cls_it = fc.mem_ops.find(inst);
        const MemOpClass cls =
            cls_it == fc.mem_ops.end() ? MemOpClass::kNone : cls_it->second;

        switch (inst->op()) {
          case Opcode::kLoad: {
            if (cls == MemOpClass::kNone) {
              out.push_back(inst);
              break;
            }
            // In-place sealing dispatches on the stored word itself, so the
            // definite and universal variants collapse into one intrinsic.
            Instruction* repl = f->CreateInstruction(Opcode::kIntrinsic, inst->type());
            repl->set_intrinsic(IntrinsicId::kSealLoad);
            repl->AddOperand(inst->operand(0));
            repl->set_name(inst->name());
            out.push_back(repl);
            replacements[inst] = repl;
            break;
          }
          case Opcode::kStore: {
            if (cls == MemOpClass::kNone) {
              out.push_back(inst);
              break;
            }
            Instruction* repl =
                f->CreateInstruction(Opcode::kIntrinsic, module.types().VoidTy());
            repl->set_intrinsic(IntrinsicId::kSealStore);
            repl->AddOperand(inst->operand(1));  // address
            repl->AddOperand(inst->operand(0));  // value
            out.push_back(repl);
            break;
          }
          case Opcode::kLibCall:
            // Checked memory transfers re-seal moved pointers for their new
            // location (the location is part of the MAC domain).
            if (fc.checked_libcalls.count(inst) > 0) {
              inst->set_checked(true);
            }
            out.push_back(inst);
            break;
          case Opcode::kIndirectCall: {
            Instruction* assert_inst =
                f->CreateInstruction(Opcode::kIntrinsic, inst->operand(0)->type());
            assert_inst->set_intrinsic(IntrinsicId::kSealAssertCode);
            assert_inst->AddOperand(inst->operand(0));
            out.push_back(assert_inst);
            inst->SetOperand(0, assert_inst);
            out.push_back(inst);
            break;
          }
          default:
            out.push_back(inst);
            break;
        }
      }
      bb->ReplaceInstructions(std::move(out));
    }
    RemapOperands(*f, replacements);
  }

  module.protection().ptrenc = true;
}

void ApplyPtrEnc(ir::Module& module, const PassOptions& options) {
  ApplyPtrEncRewrites(module, options);
  FinalizeModule(module);
  CPI_CHECK(ir::IsValid(module));
}

}  // namespace cpi::instrument
