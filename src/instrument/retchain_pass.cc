// The PACStack-style chained-return-MAC pass (ProtectionFlags::ret_chain).
//
// Like the paper's safe stack, return protection is a property of the saved
// return token, not of the program's data flow — so this pass rewrites no
// instructions. It records the flag that makes the VM seal every saved
// return token over its predecessor (keyed MAC bound to slot ⊕ previous
// sealed token) and track a per-thread chain head that returns verify
// against: swapping two live tokens, or replaying a stale-but-genuine one,
// breaks the chain even though each token alone would authenticate. PtrEnc
// owns the plain sealed-return-slot format, so the two are mutually
// exclusive (the scheme layer rejects the composite as a ret-mac conflict).
#include "src/instrument/passes.h"
#include "src/support/check.h"

namespace cpi::instrument {

void ApplyRetChain(ir::Module& module) {
  CPI_CHECK(!module.protection().ptrenc && !module.protection().ret_chain);
  module.protection().ret_chain = true;
  FinalizeModule(module);
}

}  // namespace cpi::instrument
