#include "src/instrument/rewrite.h"

namespace cpi::instrument {

void RemapOperands(ir::Function& function,
                   const std::map<ir::Value*, ir::Value*>& replacements) {
  if (replacements.empty()) {
    return;
  }
  for (const auto& bb : function.blocks()) {
    for (ir::Instruction* inst : bb->instructions()) {
      for (size_t i = 0; i < inst->operands().size(); ++i) {
        auto it = replacements.find(inst->operand(i));
        if (it != replacements.end()) {
          inst->SetOperand(i, it->second);
        }
      }
    }
  }
}

}  // namespace cpi::instrument
