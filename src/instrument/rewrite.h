// Shared rewriting machinery for instrumentation passes.
#ifndef CPI_SRC_INSTRUMENT_REWRITE_H_
#define CPI_SRC_INSTRUMENT_REWRITE_H_

#include <map>

#include "src/ir/module.h"

namespace cpi::instrument {

// Replaces, in every instruction of `function`, operands according to
// `replacements` (old value -> new value). Single-level: passes record the
// final replacement directly.
void RemapOperands(ir::Function& function,
                   const std::map<ir::Value*, ir::Value*>& replacements);

}  // namespace cpi::instrument

#endif  // CPI_SRC_INSTRUMENT_REWRITE_H_
