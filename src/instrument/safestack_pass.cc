// The safe stack pass (§3.2.4).
#include "src/analysis/safe_stack.h"
#include "src/instrument/passes.h"

namespace cpi::instrument {

void ApplySafeStack(ir::Module& module) {
  for (const auto& f : module.functions()) {
    const analysis::SafeStackResult result = analysis::AnalyzeSafeStack(*f);
    for (const auto& bb : f->blocks()) {
      for (ir::Instruction* inst : bb->instructions()) {
        if (inst->op() != ir::Opcode::kAlloca) {
          continue;
        }
        inst->set_stack_kind(result.unsafe_allocas.count(inst) > 0 ? ir::StackKind::kUnsafe
                                                                   : ir::StackKind::kSafe);
      }
    }
    f->set_needs_unsafe_frame(result.NeedsUnsafeFrame());
  }
  module.protection().safe_stack = true;
  FinalizeModule(module);
}

void FinalizeModule(ir::Module& module) {
  for (const auto& f : module.functions()) {
    f->RenumberValues();
  }
}

}  // namespace cpi::instrument
