// Basic blocks: straight-line instruction sequences ending in a terminator.
#ifndef CPI_SRC_IR_BASIC_BLOCK_H_
#define CPI_SRC_IR_BASIC_BLOCK_H_

#include <string>
#include <vector>

#include "src/ir/instruction.h"

namespace cpi::ir {

class Function;

class BasicBlock {
 public:
  BasicBlock(std::string name, Function* parent) : name_(std::move(name)), parent_(parent) {}

  const std::string& name() const { return name_; }
  Function* parent() const { return parent_; }

  const std::vector<Instruction*>& instructions() const { return instructions_; }

  void Append(Instruction* inst) {
    CPI_CHECK(inst != nullptr);
    instructions_.push_back(inst);
  }

  // Replaces the whole instruction list; used by rewriting passes, which
  // build a new list per block. Instruction memory stays owned by the
  // enclosing Function.
  void ReplaceInstructions(std::vector<Instruction*> insts) { instructions_ = std::move(insts); }

  bool empty() const { return instructions_.empty(); }

  Instruction* terminator() const {
    CPI_CHECK(!instructions_.empty());
    Instruction* last = instructions_.back();
    CPI_CHECK(last->IsTerminator());
    return last;
  }

  bool HasTerminator() const {
    return !instructions_.empty() && instructions_.back()->IsTerminator();
  }

 private:
  std::string name_;
  Function* parent_;
  std::vector<Instruction*> instructions_;
};

}  // namespace cpi::ir

#endif  // CPI_SRC_IR_BASIC_BLOCK_H_
