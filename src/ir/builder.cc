#include "src/ir/builder.h"

namespace cpi::ir {

Instruction* IRBuilder::Emit(Opcode op, const Type* result_type) {
  CPI_CHECK(bb_ != nullptr);
  Instruction* inst = bb_->parent()->CreateInstruction(op, result_type);
  bb_->Append(inst);
  return inst;
}

Instruction* IRBuilder::Alloca(const Type* type, const std::string& name) {
  Instruction* inst = Emit(Opcode::kAlloca, module_->types().PointerTo(type));
  inst->set_extra_type(type);
  inst->set_name(name);
  return inst;
}

Value* IRBuilder::Load(Value* ptr, const std::string& name) {
  CPI_CHECK(ptr->type()->IsPointer());
  const Type* pointee = static_cast<const PointerType*>(ptr->type())->pointee();
  // Loads move scalar values only; aggregates are copied field-wise or via
  // memcpy, as clang does for our C subset.
  CPI_CHECK(pointee->IsInt() || pointee->IsFloat() || pointee->IsPointer());
  Instruction* inst = Emit(Opcode::kLoad, pointee);
  inst->AddOperand(ptr);
  inst->set_name(name);
  return inst;
}

void IRBuilder::Store(Value* value, Value* ptr) {
  CPI_CHECK(ptr->type()->IsPointer());
  Instruction* inst = Emit(Opcode::kStore, module_->types().VoidTy());
  inst->AddOperand(value);
  inst->AddOperand(ptr);
}

Value* IRBuilder::FieldAddr(Value* struct_ptr, unsigned field_index, const std::string& name) {
  CPI_CHECK(struct_ptr->type()->IsPointer());
  const Type* pointee = static_cast<const PointerType*>(struct_ptr->type())->pointee();
  CPI_CHECK(pointee->IsStruct());
  const auto* st = static_cast<const StructType*>(pointee);
  CPI_CHECK(field_index < st->fields().size());
  const Type* field_type = st->fields()[field_index].type;
  Instruction* inst = Emit(Opcode::kFieldAddr, module_->types().PointerTo(field_type));
  inst->AddOperand(struct_ptr);
  inst->set_field_index(field_index);
  inst->set_name(name);
  return inst;
}

Value* IRBuilder::FieldAddr(Value* struct_ptr, const std::string& field_name) {
  CPI_CHECK(struct_ptr->type()->IsPointer());
  const Type* pointee = static_cast<const PointerType*>(struct_ptr->type())->pointee();
  CPI_CHECK(pointee->IsStruct());
  const auto* st = static_cast<const StructType*>(pointee);
  for (unsigned i = 0; i < st->fields().size(); ++i) {
    if (st->fields()[i].name == field_name) {
      return FieldAddr(struct_ptr, i, field_name);
    }
  }
  CPI_UNREACHABLE();
}

Value* IRBuilder::IndexAddr(Value* ptr, Value* index, const std::string& name) {
  CPI_CHECK(ptr->type()->IsPointer());
  CPI_CHECK(index->type()->IsInt());
  const Type* pointee = static_cast<const PointerType*>(ptr->type())->pointee();
  const Type* result;
  if (pointee->IsArray()) {
    // &arr[i]: decays to a pointer to the element type.
    result = module_->types().PointerTo(static_cast<const ArrayType*>(pointee)->element());
  } else {
    // Pointer arithmetic on an element pointer: same type.
    result = ptr->type();
  }
  Instruction* inst = Emit(Opcode::kIndexAddr, result);
  inst->AddOperand(ptr);
  inst->AddOperand(index);
  inst->set_name(name);
  return inst;
}

Value* IRBuilder::Malloc(Value* size, const PointerType* result_type, const std::string& name) {
  CPI_CHECK(size->type()->IsInt());
  Instruction* inst = Emit(Opcode::kMalloc, result_type);
  inst->AddOperand(size);
  inst->set_extra_type(result_type);
  inst->set_name(name);
  return inst;
}

void IRBuilder::Free(Value* ptr) {
  CPI_CHECK(ptr->type()->IsPointer());
  Instruction* inst = Emit(Opcode::kFree, module_->types().VoidTy());
  inst->AddOperand(ptr);
}

Value* IRBuilder::Binary(BinOp op, Value* a, Value* b, const std::string& name) {
  const bool is_float_op = op >= BinOp::kFAdd;
  const bool is_compare = (op >= BinOp::kEq && op <= BinOp::kULe) || op >= BinOp::kFEq;
  const Type* result;
  if (is_compare) {
    result = module_->types().I64();
  } else if (is_float_op) {
    result = module_->types().FloatTy();
  } else {
    result = a->type();
  }
  Instruction* inst = Emit(Opcode::kBinOp, result);
  inst->set_binop(op);
  inst->AddOperand(a);
  inst->AddOperand(b);
  inst->set_name(name);
  return inst;
}

Value* IRBuilder::Select(Value* cond, Value* a, Value* b, const std::string& name) {
  Instruction* inst = Emit(Opcode::kSelect, a->type());
  inst->AddOperand(cond);
  inst->AddOperand(a);
  inst->AddOperand(b);
  inst->set_name(name);
  return inst;
}

Value* IRBuilder::Cast(CastKind kind, Value* v, const Type* to, const std::string& name) {
  Instruction* inst = Emit(Opcode::kCast, to);
  inst->set_cast_kind(kind);
  inst->set_extra_type(to);
  inst->AddOperand(v);
  inst->set_name(name);
  return inst;
}

Value* IRBuilder::Call(Function* callee, std::vector<Value*> args, const std::string& name) {
  CPI_CHECK(callee != nullptr);
  CPI_CHECK(args.size() == callee->type()->params().size());
  Instruction* inst = Emit(Opcode::kCall, callee->type()->return_type());
  inst->set_callee(callee);
  for (Value* a : args) {
    inst->AddOperand(a);
  }
  inst->set_name(name);
  return inst;
}

Value* IRBuilder::Spawn(Function* worker, std::vector<Value*> args, const std::string& name) {
  CPI_CHECK(worker != nullptr);
  CPI_CHECK(args.size() == worker->type()->params().size());
  // Join surfaces the worker's return value as an i64, so the root function
  // of a thread must produce one.
  CPI_CHECK(worker->type()->return_type()->IsInt());
  Instruction* inst = Emit(Opcode::kSpawn, module_->types().I64());
  inst->set_callee(worker);
  for (Value* a : args) {
    inst->AddOperand(a);
  }
  inst->set_name(name);
  return inst;
}

Value* IRBuilder::Join(Value* tid, const std::string& name) {
  CPI_CHECK(tid->type()->IsInt());
  Instruction* inst = Emit(Opcode::kJoin, module_->types().I64());
  inst->AddOperand(tid);
  inst->set_name(name);
  return inst;
}

void IRBuilder::Yield() { Emit(Opcode::kYield, module_->types().VoidTy()); }

Value* IRBuilder::IndirectCall(Value* fnptr, std::vector<Value*> args, const std::string& name) {
  CPI_CHECK(IsCodePointer(fnptr->type()));
  const auto* fn_type =
      static_cast<const FunctionType*>(static_cast<const PointerType*>(fnptr->type())->pointee());
  CPI_CHECK(args.size() == fn_type->params().size());
  Instruction* inst = Emit(Opcode::kIndirectCall, fn_type->return_type());
  inst->AddOperand(fnptr);
  for (Value* a : args) {
    inst->AddOperand(a);
  }
  inst->set_name(name);
  return inst;
}

Value* IRBuilder::LibCall(LibFunc f, std::vector<Value*> args, const std::string& name) {
  const Type* result = module_->types().I64();
  switch (f) {
    case LibFunc::kStrlen:
    case LibFunc::kStrcmp:
    case LibFunc::kInputBytes:
      result = module_->types().I64();
      break;
    case LibFunc::kStrcpy:
    case LibFunc::kStrncpy:
    case LibFunc::kStrcat:
    case LibFunc::kMemcpy:
    case LibFunc::kMemset:
    case LibFunc::kMemmove:
      result = args.empty() ? module_->types().VoidPtrTy()
                            : static_cast<const Type*>(args[0]->type());
      break;
  }
  Instruction* inst = Emit(Opcode::kLibCall, result);
  inst->set_lib_func(f);
  for (Value* a : args) {
    inst->AddOperand(a);
  }
  inst->set_name(name);
  return inst;
}

Value* IRBuilder::FuncAddr(Function* f, const std::string& name) {
  CPI_CHECK(f != nullptr);
  Instruction* inst = Emit(Opcode::kFuncAddr, module_->types().PointerTo(f->type()));
  inst->set_callee(f);
  inst->set_name(name);
  return inst;
}

Value* IRBuilder::GlobalAddr(GlobalVariable* g, const std::string& name) {
  CPI_CHECK(g != nullptr);
  Instruction* inst = Emit(Opcode::kGlobalAddr, module_->types().PointerTo(g->type()));
  inst->set_global(g);
  inst->set_name(name);
  return inst;
}

void IRBuilder::Br(BasicBlock* target) {
  Instruction* inst = Emit(Opcode::kBr, module_->types().VoidTy());
  inst->set_successor(0, target);
}

void IRBuilder::CondBr(Value* cond, BasicBlock* if_true, BasicBlock* if_false) {
  Instruction* inst = Emit(Opcode::kCondBr, module_->types().VoidTy());
  inst->AddOperand(cond);
  inst->set_successor(0, if_true);
  inst->set_successor(1, if_false);
}

void IRBuilder::Ret(Value* value) {
  Instruction* inst = Emit(Opcode::kRet, module_->types().VoidTy());
  if (value != nullptr) {
    inst->AddOperand(value);
  }
}

Value* IRBuilder::Input(const std::string& name) {
  Instruction* inst = Emit(Opcode::kInput, module_->types().I64());
  inst->set_name(name);
  return inst;
}

void IRBuilder::Output(Value* v) {
  Instruction* inst = Emit(Opcode::kOutput, module_->types().VoidTy());
  inst->AddOperand(v);
}

Instruction* IRBuilder::Intrinsic(IntrinsicId id, const Type* result_type,
                                  std::vector<Value*> operands) {
  Instruction* inst = Emit(Opcode::kIntrinsic, result_type);
  inst->set_intrinsic(id);
  for (Value* v : operands) {
    inst->AddOperand(v);
  }
  return inst;
}

}  // namespace cpi::ir
