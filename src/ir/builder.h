// IRBuilder: convenience API for constructing IR with inferred result types.
// All workload generators, the frontend lowering, and the tests build IR
// through this class.
#ifndef CPI_SRC_IR_BUILDER_H_
#define CPI_SRC_IR_BUILDER_H_

#include <string>
#include <vector>

#include "src/ir/module.h"

namespace cpi::ir {

class IRBuilder {
 public:
  explicit IRBuilder(Module* module) : module_(module) { CPI_CHECK(module != nullptr); }

  Module* module() const { return module_; }

  void SetInsertPoint(BasicBlock* bb) {
    CPI_CHECK(bb != nullptr);
    bb_ = bb;
  }
  BasicBlock* insert_block() const { return bb_; }

  // --- constants ----------------------------------------------------------
  Value* I8(uint64_t v) { return module_->GetConstInt(module_->types().I8(), v & 0xff); }
  Value* Char(uint64_t v) { return module_->GetConstInt(module_->types().CharTy(), v & 0xff); }
  Value* I32(uint64_t v) { return module_->GetConstInt(module_->types().I32(), v); }
  Value* I64(uint64_t v) { return module_->GetConstInt(module_->types().I64(), v); }
  Value* F64(double v) { return module_->GetConstFloat(v); }
  Value* Null(const Type* pointer_type) { return module_->GetNull(pointer_type); }

  // --- memory -------------------------------------------------------------
  Instruction* Alloca(const Type* type, const std::string& name = "");
  Value* Load(Value* ptr, const std::string& name = "");
  void Store(Value* value, Value* ptr);
  Value* FieldAddr(Value* struct_ptr, unsigned field_index, const std::string& name = "");
  Value* FieldAddr(Value* struct_ptr, const std::string& field_name);
  Value* IndexAddr(Value* ptr, Value* index, const std::string& name = "");
  Value* Malloc(Value* size, const PointerType* result_type, const std::string& name = "");
  void Free(Value* ptr);

  // --- arithmetic ---------------------------------------------------------
  Value* Binary(BinOp op, Value* a, Value* b, const std::string& name = "");
  Value* Add(Value* a, Value* b) { return Binary(BinOp::kAdd, a, b); }
  Value* Sub(Value* a, Value* b) { return Binary(BinOp::kSub, a, b); }
  Value* Mul(Value* a, Value* b) { return Binary(BinOp::kMul, a, b); }
  Value* And(Value* a, Value* b) { return Binary(BinOp::kAnd, a, b); }
  Value* Xor(Value* a, Value* b) { return Binary(BinOp::kXor, a, b); }
  Value* ICmpEq(Value* a, Value* b) { return Binary(BinOp::kEq, a, b); }
  Value* ICmpNe(Value* a, Value* b) { return Binary(BinOp::kNe, a, b); }
  Value* ICmpSLt(Value* a, Value* b) { return Binary(BinOp::kSLt, a, b); }
  Value* ICmpSGe(Value* a, Value* b) { return Binary(BinOp::kSGe, a, b); }
  Value* Select(Value* cond, Value* a, Value* b, const std::string& name = "");

  // --- casts --------------------------------------------------------------
  Value* Cast(CastKind kind, Value* v, const Type* to, const std::string& name = "");
  Value* Bitcast(Value* v, const Type* to) { return Cast(CastKind::kBitcast, v, to); }
  Value* PtrToInt(Value* v) { return Cast(CastKind::kPtrToInt, v, module_->types().I64()); }
  Value* IntToPtr(Value* v, const Type* to) { return Cast(CastKind::kIntToPtr, v, to); }

  // --- calls and control flow ---------------------------------------------
  Value* Call(Function* callee, std::vector<Value*> args, const std::string& name = "");
  Value* IndirectCall(Value* fnptr, std::vector<Value*> args, const std::string& name = "");
  // --- simulated threading (vm::Scheduler) ---------------------------------
  // Starts `worker` (which must return an integer) on a fresh simulated
  // thread; the result is the new thread's id.
  Value* Spawn(Function* worker, std::vector<Value*> args, const std::string& name = "");
  // Blocks until the thread `tid` finishes; yields its return value.
  Value* Join(Value* tid, const std::string& name = "");
  // Ends the current thread's scheduling quantum.
  void Yield();
  Value* LibCall(LibFunc f, std::vector<Value*> args, const std::string& name = "");
  Value* FuncAddr(Function* f, const std::string& name = "");
  Value* GlobalAddr(GlobalVariable* g, const std::string& name = "");
  void Br(BasicBlock* target);
  void CondBr(Value* cond, BasicBlock* if_true, BasicBlock* if_false);
  void Ret(Value* value = nullptr);

  // --- program I/O ---------------------------------------------------------
  Value* Input(const std::string& name = "");
  void Output(Value* v);

  // --- instrumentation ------------------------------------------------------
  Instruction* Intrinsic(IntrinsicId id, const Type* result_type, std::vector<Value*> operands);

 private:
  Instruction* Emit(Opcode op, const Type* result_type);

  Module* module_;
  BasicBlock* bb_ = nullptr;
};

}  // namespace cpi::ir

#endif  // CPI_SRC_IR_BUILDER_H_
