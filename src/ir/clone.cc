#include "src/ir/clone.h"

#include <unordered_map>
#include <vector>

#include "src/support/check.h"

namespace cpi::ir {

namespace {

class Cloner {
 public:
  explicit Cloner(const Module& src)
      : src_(src), dst_(std::make_unique<Module>(src.name())) {}

  std::unique_ptr<Module> Run() {
    // Globals first (instructions reference them), in creation order so
    // ordinals — and with them the program layout — are preserved.
    for (const auto& g : src_.globals()) {
      GlobalVariable* ng = dst_->CreateGlobal(g->name(), MapType(g->type()), g->is_const());
      ng->set_initializer(g->initializer());
      global_map_[g.get()] = ng;
    }
    // Function shells next, so calls can reference forward declarations.
    for (const auto& f : src_.functions()) {
      Function* nf = dst_->CreateFunction(
          f->name(), static_cast<const FunctionType*>(MapType(f->type())));
      func_map_[f.get()] = nf;
      for (size_t i = 0; i < f->args().size(); ++i) {
        value_map_[f->args()[i].get()] = nf->arg(i);
      }
      nf->set_needs_unsafe_frame(f->needs_unsafe_frame());
      nf->set_has_stack_cookie(f->has_stack_cookie());
      nf->set_address_taken(f->address_taken());
      nf->set_ret_token_elidable(f->ret_token_elidable());
    }
    for (const auto& f : src_.functions()) {
      CloneBody(*f, *func_map_.at(f.get()));
    }
    for (const Type* t : src_.annotated_sensitive()) {
      dst_->AnnotateSensitive(MapType(t));
    }
    dst_->protection() = src_.protection();
    // Same block order as the source, so renumbering reproduces the source's
    // value ids (when the source has been renumbered at all).
    for (const auto& f : dst_->functions()) {
      f->RenumberValues();
    }
    return std::move(dst_);
  }

 private:
  const Type* MapType(const Type* t) {
    auto it = type_map_.find(t);
    if (it != type_map_.end()) {
      return it->second;
    }
    TypeContext& tc = dst_->types();
    const Type* nt = nullptr;
    switch (t->kind()) {
      case TypeKind::kVoid:
        nt = tc.VoidTy();
        break;
      case TypeKind::kFloat:
        nt = tc.FloatTy();
        break;
      case TypeKind::kInt: {
        const auto* i = static_cast<const IntType*>(t);
        nt = i->is_char() ? tc.CharTy() : tc.IntTy(i->bits());
        break;
      }
      case TypeKind::kPointer:
        nt = tc.PointerTo(MapType(static_cast<const PointerType*>(t)->pointee()));
        break;
      case TypeKind::kFunction: {
        const auto* ft = static_cast<const FunctionType*>(t);
        std::vector<const Type*> params;
        params.reserve(ft->params().size());
        for (const Type* p : ft->params()) {
          params.push_back(MapType(p));
        }
        nt = tc.FunctionTy(MapType(ft->return_type()), std::move(params));
        break;
      }
      case TypeKind::kArray: {
        const auto* at = static_cast<const ArrayType*>(t);
        nt = tc.ArrayOf(MapType(at->element()), at->count());
        break;
      }
      case TypeKind::kStruct: {
        const auto* st = static_cast<const StructType*>(t);
        StructType* ns = tc.GetOrCreateStruct(st->name());
        type_map_[t] = ns;  // memoise before the fields: structs may self-reference
        if (!st->is_opaque() && ns->is_opaque()) {
          std::vector<StructField> fields;
          fields.reserve(st->fields().size());
          for (const StructField& fld : st->fields()) {
            fields.push_back(StructField{fld.name, MapType(fld.type), 0});
          }
          ns->SetBody(std::move(fields));  // recomputes the same layout
        }
        return ns;
      }
    }
    CPI_CHECK(nt != nullptr);
    type_map_[t] = nt;
    return nt;
  }

  Value* MapValue(const Value* v) {
    auto it = value_map_.find(v);
    if (it != value_map_.end()) {
      return it->second;
    }
    Value* nv = nullptr;
    switch (v->value_kind()) {
      case ValueKind::kConstInt: {
        const auto* c = static_cast<const ConstantInt*>(v);
        nv = dst_->GetConstInt(MapType(c->type()), c->value());
        break;
      }
      case ValueKind::kConstFloat:
        nv = dst_->GetConstFloat(static_cast<const ConstantFloat*>(v)->value());
        break;
      case ValueKind::kConstNull:
        nv = dst_->GetNull(MapType(v->type()));
        break;
      case ValueKind::kArgument:
      case ValueKind::kInstruction:
        // Registered up front (arguments) or during pass 1 (instructions);
        // reaching here means an operand references a value outside the
        // module.
        CPI_UNREACHABLE();
    }
    value_map_[v] = nv;
    return nv;
  }

  void CloneBody(const Function& sf, Function& df) {
    std::unordered_map<const BasicBlock*, BasicBlock*> block_map;
    for (const auto& bb : sf.blocks()) {
      block_map[bb.get()] = df.CreateBlock(bb->name());
    }
    // Pass 1: create every instruction (operands may reference instructions
    // from later blocks).
    for (const auto& bb : sf.blocks()) {
      for (const Instruction* inst : bb->instructions()) {
        Instruction* ni = df.CreateInstruction(inst->op(), MapType(inst->type()));
        if (inst->extra_type() != nullptr) {
          ni->set_extra_type(MapType(inst->extra_type()));
        }
        switch (inst->op()) {
          case Opcode::kAlloca:
            ni->set_stack_kind(inst->stack_kind());
            break;
          case Opcode::kBinOp:
            ni->set_binop(inst->binop());
            break;
          case Opcode::kCast:
            ni->set_cast_kind(inst->cast_kind());
            break;
          case Opcode::kLibCall:
            ni->set_lib_func(inst->lib_func());
            break;
          case Opcode::kIntrinsic:
            ni->set_intrinsic(inst->intrinsic());
            break;
          case Opcode::kFieldAddr:
            ni->set_field_index(inst->field_index());
            break;
          case Opcode::kCall:
          case Opcode::kFuncAddr:
          case Opcode::kSpawn:
            ni->set_callee(func_map_.at(inst->callee()));
            break;
          case Opcode::kGlobalAddr:
            ni->set_global(global_map_.at(inst->global()));
            break;
          case Opcode::kBr:
          case Opcode::kCondBr:
            for (size_t i = 0; i < inst->successor_count(); ++i) {
              ni->set_successor(i, block_map.at(inst->successor(i)));
            }
            break;
          default:
            break;
        }
        ni->set_checked(inst->checked());
        ni->set_name(inst->name());
        value_map_[inst] = ni;
        block_map.at(bb.get())->Append(ni);
      }
    }
    // Pass 2: operands, now that every instruction has a counterpart.
    for (const auto& bb : sf.blocks()) {
      for (const Instruction* inst : bb->instructions()) {
        auto* ni = static_cast<Instruction*>(value_map_.at(inst));
        for (const Value* operand : inst->operands()) {
          ni->AddOperand(MapValue(operand));
        }
      }
    }
  }

  const Module& src_;
  std::unique_ptr<Module> dst_;
  std::unordered_map<const Type*, const Type*> type_map_;
  std::unordered_map<const Function*, Function*> func_map_;
  std::unordered_map<const GlobalVariable*, GlobalVariable*> global_map_;
  std::unordered_map<const Value*, Value*> value_map_;
};

}  // namespace

std::unique_ptr<Module> CloneModule(const Module& module) {
  return Cloner(module).Run();
}

}  // namespace cpi::ir
