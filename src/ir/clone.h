// Deep module cloning.
//
// Instrumentation mutates modules in place, so measuring N protection
// schemes used to mean building each workload module N+1 times from
// scratch. CloneModule lets the harness build once and instrument clones:
// the clone owns its own TypeContext, constants, functions and globals, with
// every cross-reference remapped. Creation order (and therefore ordinals,
// value numbering, program layout and simulated behaviour) is preserved
// exactly — a clone instruments and runs bit-identically to a fresh build.
#ifndef CPI_SRC_IR_CLONE_H_
#define CPI_SRC_IR_CLONE_H_

#include <memory>

#include "src/ir/module.h"

namespace cpi::ir {

std::unique_ptr<Module> CloneModule(const Module& module);

}  // namespace cpi::ir

#endif  // CPI_SRC_IR_CLONE_H_
