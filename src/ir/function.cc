#include "src/ir/function.h"

namespace cpi::ir {

Function::Function(std::string name, const FunctionType* type, Module* parent)
    : name_(std::move(name)), type_(type), parent_(parent) {
  CPI_CHECK(type != nullptr);
  for (size_t i = 0; i < type->params().size(); ++i) {
    args_.push_back(std::make_unique<Argument>(type->params()[i], static_cast<unsigned>(i), this,
                                               "arg" + std::to_string(i)));
  }
}

BasicBlock* Function::CreateBlock(std::string name) {
  blocks_.push_back(std::make_unique<BasicBlock>(std::move(name), this));
  return blocks_.back().get();
}

Instruction* Function::CreateInstruction(Opcode op, const Type* result_type) {
  instruction_arena_.push_back(std::make_unique<Instruction>(op, result_type));
  return instruction_arena_.back().get();
}

uint32_t Function::RenumberValues() {
  uint32_t next = 0;
  for (const auto& arg : args_) {
    arg->set_value_id(next++);
  }
  for (const auto& bb : blocks_) {
    for (Instruction* inst : bb->instructions()) {
      inst->set_value_id(next++);
    }
  }
  register_count_ = next;
  return next;
}

void Function::ClearAllUses() {
  for (const auto& arg : args_) {
    arg->ClearUses();
  }
  for (const auto& inst : instruction_arena_) {
    inst->ClearUses();
  }
}

size_t Function::InstructionCount() const {
  size_t n = 0;
  for (const auto& bb : blocks_) {
    n += bb->instructions().size();
  }
  return n;
}

}  // namespace cpi::ir
