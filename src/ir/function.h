// Functions: arguments, basic blocks, and per-function attributes that the
// analyses and instrumentation passes compute (unsafe-frame requirement,
// stack-cookie marker).
#ifndef CPI_SRC_IR_FUNCTION_H_
#define CPI_SRC_IR_FUNCTION_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/ir/basic_block.h"
#include "src/ir/instruction.h"
#include "src/ir/value.h"

namespace cpi::ir {

class Module;

class Function {
 public:
  Function(std::string name, const FunctionType* type, Module* parent);

  const std::string& name() const { return name_; }
  const FunctionType* type() const { return type_; }
  Module* parent() const { return parent_; }

  const std::vector<std::unique_ptr<Argument>>& args() const { return args_; }
  Argument* arg(size_t i) const {
    CPI_CHECK(i < args_.size());
    return args_[i].get();
  }

  const std::vector<std::unique_ptr<BasicBlock>>& blocks() const { return blocks_; }
  BasicBlock* entry() const {
    CPI_CHECK(!blocks_.empty());
    return blocks_.front().get();
  }

  BasicBlock* CreateBlock(std::string name);

  // Creates an instruction owned by this function. It is NOT appended to any
  // block; the builder / passes do that.
  Instruction* CreateInstruction(Opcode op, const Type* result_type);

  // Assigns dense value ids to arguments and instructions (in block order);
  // returns the total register count. The VM sizes its register file from
  // this.
  uint32_t RenumberValues();
  uint32_t register_count() const { return register_count_; }

  // Position of this function in its module's function list; assigned by
  // Module::CreateFunction. The VM derives code addresses and indexes its
  // decoded-function cache from this, so lookups are flat-array reads.
  uint32_t ordinal() const { return ordinal_; }
  void set_ordinal(uint32_t o) { ordinal_ = o; }

  // --- attributes written by passes --------------------------------------

  // §3.2.4: does this function own objects that must live on the unsafe
  // stack? (Set by the SafeStack pass; Table 2's FNUStack column.)
  bool needs_unsafe_frame() const { return needs_unsafe_frame_; }
  void set_needs_unsafe_frame(bool v) { needs_unsafe_frame_ = v; }

  // Stack-cookie baseline: VM writes/validates a canary for this function.
  bool has_stack_cookie() const { return has_stack_cookie_; }
  void set_has_stack_cookie(bool v) { has_stack_cookie_ = v; }

  // True once any FuncAddr instruction anywhere takes this function's
  // address; computed by Module::ComputeAddressTaken. This is the set
  // coarse-grained CFI admits as indirect-call targets.
  bool address_taken() const { return address_taken_; }
  void set_address_taken(bool v) { address_taken_ = v; }

  // PtrEnc leaf-frame optimization (set by the seal-elision pass at O1, in
  // the spirit of PACTight/"PAC it up"'s leaf-function handling): this
  // function provably cannot write memory or transfer control (no stores,
  // calls or writing libcalls), so nothing can touch its saved return token
  // while its frame is live and the VM may skip the PAC-style epilogue
  // *authenticate* (the prologue sign is kept, so the frame image in memory
  // stays byte-identical across opt levels). Behaviour is bit-identical
  // either way; only the seal-op and cycle counters change.
  bool ret_token_elidable() const { return ret_token_elidable_; }
  void set_ret_token_elidable(bool v) { ret_token_elidable_ = v; }

  size_t InstructionCount() const;

  // Clears the use-lists of every value this function owns (arguments plus
  // every arena instruction, block-resident or orphaned). Part of
  // Module::RecomputeUses().
  void ClearAllUses();

 private:
  std::string name_;
  const FunctionType* type_;
  Module* parent_;
  std::vector<std::unique_ptr<Argument>> args_;
  std::vector<std::unique_ptr<BasicBlock>> blocks_;
  std::deque<std::unique_ptr<Instruction>> instruction_arena_;
  uint32_t register_count_ = 0;
  uint32_t ordinal_ = 0;
  bool needs_unsafe_frame_ = false;
  bool has_stack_cookie_ = false;
  bool address_taken_ = false;
  bool ret_token_elidable_ = false;
};

}  // namespace cpi::ir

#endif  // CPI_SRC_IR_FUNCTION_H_
