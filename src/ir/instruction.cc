#include "src/ir/instruction.h"

namespace cpi::ir {

void Value::ReplaceAllUsesWith(Value* replacement) {
  CPI_CHECK(replacement != nullptr);
  CPI_CHECK(replacement != this);
  // Move the whole list out first: rewriting operand slots directly keeps
  // RemoveUse's strict bookkeeping out of the loop.
  std::vector<Instruction*> users = std::move(users_);
  users_.clear();
  for (Instruction* user : users) {
    bool rewired = false;
    for (size_t i = 0; i < user->operands_.size(); ++i) {
      if (user->operands_[i] == this) {
        user->operands_[i] = replacement;
        replacement->AddUse(user);
        rewired = true;
        break;  // one use-list entry covers exactly one operand slot
      }
    }
    CPI_CHECK(rewired);
  }
}

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kAlloca: return "alloca";
    case Opcode::kLoad: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kFieldAddr: return "fieldaddr";
    case Opcode::kIndexAddr: return "indexaddr";
    case Opcode::kBinOp: return "binop";
    case Opcode::kCast: return "cast";
    case Opcode::kSelect: return "select";
    case Opcode::kCall: return "call";
    case Opcode::kIndirectCall: return "icall";
    case Opcode::kLibCall: return "libcall";
    case Opcode::kMalloc: return "malloc";
    case Opcode::kFree: return "free";
    case Opcode::kFuncAddr: return "funcaddr";
    case Opcode::kGlobalAddr: return "globaladdr";
    case Opcode::kBr: return "br";
    case Opcode::kCondBr: return "condbr";
    case Opcode::kRet: return "ret";
    case Opcode::kInput: return "input";
    case Opcode::kOutput: return "output";
    case Opcode::kIntrinsic: return "intrinsic";
    case Opcode::kSpawn: return "spawn";
    case Opcode::kJoin: return "join";
    case Opcode::kYield: return "yield";
  }
  CPI_UNREACHABLE();
}

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "add";
    case BinOp::kSub: return "sub";
    case BinOp::kMul: return "mul";
    case BinOp::kSDiv: return "sdiv";
    case BinOp::kUDiv: return "udiv";
    case BinOp::kSRem: return "srem";
    case BinOp::kURem: return "urem";
    case BinOp::kAnd: return "and";
    case BinOp::kOr: return "or";
    case BinOp::kXor: return "xor";
    case BinOp::kShl: return "shl";
    case BinOp::kLShr: return "lshr";
    case BinOp::kAShr: return "ashr";
    case BinOp::kEq: return "eq";
    case BinOp::kNe: return "ne";
    case BinOp::kSLt: return "slt";
    case BinOp::kSLe: return "sle";
    case BinOp::kSGt: return "sgt";
    case BinOp::kSGe: return "sge";
    case BinOp::kULt: return "ult";
    case BinOp::kULe: return "ule";
    case BinOp::kFAdd: return "fadd";
    case BinOp::kFSub: return "fsub";
    case BinOp::kFMul: return "fmul";
    case BinOp::kFDiv: return "fdiv";
    case BinOp::kFEq: return "feq";
    case BinOp::kFNe: return "fne";
    case BinOp::kFLt: return "flt";
    case BinOp::kFLe: return "fle";
    case BinOp::kFGt: return "fgt";
    case BinOp::kFGe: return "fge";
  }
  CPI_UNREACHABLE();
}

const char* CastKindName(CastKind kind) {
  switch (kind) {
    case CastKind::kBitcast: return "bitcast";
    case CastKind::kPtrToInt: return "ptrtoint";
    case CastKind::kIntToPtr: return "inttoptr";
    case CastKind::kTrunc: return "trunc";
    case CastKind::kZExt: return "zext";
    case CastKind::kSExt: return "sext";
    case CastKind::kIntToFloat: return "inttofloat";
    case CastKind::kFloatToInt: return "floattoint";
  }
  CPI_UNREACHABLE();
}

const char* LibFuncName(LibFunc f) {
  switch (f) {
    case LibFunc::kStrcpy: return "strcpy";
    case LibFunc::kStrncpy: return "strncpy";
    case LibFunc::kStrcat: return "strcat";
    case LibFunc::kStrlen: return "strlen";
    case LibFunc::kStrcmp: return "strcmp";
    case LibFunc::kMemcpy: return "memcpy";
    case LibFunc::kMemset: return "memset";
    case LibFunc::kMemmove: return "memmove";
    case LibFunc::kInputBytes: return "input_bytes";
  }
  CPI_UNREACHABLE();
}

const char* StackKindName(StackKind k) {
  switch (k) {
    case StackKind::kDefault: return "default";
    case StackKind::kSafe: return "safe";
    case StackKind::kUnsafe: return "unsafe";
  }
  CPI_UNREACHABLE();
}

const char* IntrinsicName(IntrinsicId id) {
  switch (id) {
    case IntrinsicId::kCpiStore: return "cpi_store";
    case IntrinsicId::kCpiLoad: return "cpi_load";
    case IntrinsicId::kCpiStoreUni: return "cpi_store_uni";
    case IntrinsicId::kCpiLoadUni: return "cpi_load_uni";
    case IntrinsicId::kCpiBoundsCheck: return "cpi_bounds_check";
    case IntrinsicId::kCpiAssertCode: return "cpi_assert_code";
    case IntrinsicId::kCpsStore: return "cps_store";
    case IntrinsicId::kCpsLoad: return "cps_load";
    case IntrinsicId::kCpsStoreUni: return "cps_store_uni";
    case IntrinsicId::kCpsLoadUni: return "cps_load_uni";
    case IntrinsicId::kCpsAssertCode: return "cps_assert_code";
    case IntrinsicId::kSbStore: return "sb_store";
    case IntrinsicId::kSbLoad: return "sb_load";
    case IntrinsicId::kSbCheck: return "sb_check";
    case IntrinsicId::kCfiCheck: return "cfi_check";
    case IntrinsicId::kSealStore: return "seal_store";
    case IntrinsicId::kSealLoad: return "seal_load";
    case IntrinsicId::kSealAssertCode: return "seal_assert_code";
  }
  CPI_UNREACHABLE();
}

}  // namespace cpi::ir
