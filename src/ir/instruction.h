// IR instructions.
//
// A single Instruction class carries an opcode plus opcode-specific payload;
// accessors CHECK the opcode so misuse fails fast. This keeps the instruction
// set compact while still modelling everything CPI's analyses care about:
// loads/stores, address computations (field/index), pointer casts, direct and
// indirect calls, allocation, and the libc-style calls whose arguments the
// static analysis special-cases (§3.2.1-§3.2.2).
#ifndef CPI_SRC_IR_INSTRUCTION_H_
#define CPI_SRC_IR_INSTRUCTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ir/intrinsics.h"
#include "src/ir/value.h"

namespace cpi::ir {

class BasicBlock;
class Function;
class GlobalVariable;

enum class Opcode {
  kAlloca,      // stack allocation of extra_type; result: extra_type*
  kLoad,        // (ptr) -> pointee
  kStore,       // (value, ptr) -> void
  kFieldAddr,   // (struct_ptr) -> field_type* ; narrows to a sub-object
  kIndexAddr,   // (ptr, index) -> element*    ; array indexing / ptr arithmetic
  kBinOp,       // (a, b) -> int/float
  kCast,        // (v) -> extra_type
  kSelect,      // (cond, a, b) -> type of a/b
  kCall,        // direct call: callee + args
  kIndirectCall,// (fnptr, args...) ; the control transfer CPI protects
  kLibCall,     // libc-style helper (strcpy & co.); see LibFunc
  kMalloc,      // (size) -> extra_type (a pointer type)
  kFree,        // (ptr) -> void
  kFuncAddr,    // &f -> fnptr ; explicit address-taking of a function
  kGlobalAddr,  // &g -> type-of-g*
  kBr,          // unconditional branch
  kCondBr,      // (cond) + two successor blocks
  kRet,         // optional value
  kInput,       // () -> i64 ; next word of program input
  kOutput,      // (v) -> void ; appends to observable program output
  kIntrinsic,   // runtime intrinsic inserted by instrumentation passes
  // Simulated threading (vm::Scheduler). Spawn starts the named callee on a
  // fresh simulated thread with its own safe/unsafe stacks and returns the
  // thread id; join blocks until that thread's root function returns and
  // yields its i64 return value; yield ends the current scheduling quantum.
  kSpawn,       // direct callee + args -> i64 thread id
  kJoin,        // (tid) -> i64 ; the joined thread's return value
  kYield,       // () -> void
};

enum class BinOp {
  kAdd, kSub, kMul, kSDiv, kUDiv, kSRem, kURem,
  kAnd, kOr, kXor, kShl, kLShr, kAShr,
  kEq, kNe, kSLt, kSLe, kSGt, kSGe, kULt, kULe,
  kFAdd, kFSub, kFMul, kFDiv,
  kFEq, kFNe, kFLt, kFLe, kFGt, kFGe,
};

enum class CastKind {
  kBitcast,    // pointer -> pointer
  kPtrToInt,
  kIntToPtr,
  kTrunc,
  kZExt,
  kSExt,
  kIntToFloat,
  kFloatToInt,
};

// Libc-style functions with VM-implemented semantics. The unbounded ones
// (strcpy/strcat/sprintf-style) are the classic overflow vectors RIPE uses.
enum class LibFunc {
  kStrcpy,   // (dst, src) -> dst          ; unbounded: overflow vector
  kStrncpy,  // (dst, src, n) -> dst
  kStrcat,   // (dst, src) -> dst          ; unbounded: overflow vector
  kStrlen,   // (s) -> i64
  kStrcmp,   // (a, b) -> i64
  kMemcpy,   // (dst, src, n) -> dst
  kMemset,   // (dst, byte, n) -> dst
  kMemmove,  // (dst, src, n) -> dst
  kInputBytes,  // (dst, max) -> i64 ; copies program input bytes, returns count
};

// Which stack an alloca lives on after the SafeStack pass (§3.2.4).
enum class StackKind {
  kDefault,  // single unprotected stack (no SafeStack pass run)
  kSafe,     // proven-safe object: safe stack in the safe region
  kUnsafe,   // needs runtime checks / escapes: unsafe stack in regular memory
};

class Instruction final : public Value {
 public:
  Instruction(Opcode op, const Type* result_type)
      : Value(ValueKind::kInstruction, result_type), op_(op) {}

  Opcode op() const { return op_; }

  const std::vector<Value*>& operands() const { return operands_; }
  Value* operand(size_t i) const {
    CPI_CHECK(i < operands_.size());
    return operands_[i];
  }
  void AddOperand(Value* v) {
    CPI_CHECK(v != nullptr);
    operands_.push_back(v);
    v->AddUse(this);
  }
  void SetOperand(size_t i, Value* v) {
    CPI_CHECK(i < operands_.size());
    CPI_CHECK(v != nullptr);
    operands_[i]->RemoveUse(this);
    operands_[i] = v;
    v->AddUse(this);
  }
  // Unregisters this instruction from its operands' use-lists; called by the
  // optimizer right before dropping the instruction from its block.
  void DropOperandUses() {
    for (Value* v : operands_) {
      v->RemoveUse(this);
    }
  }

  // --- opcode-specific payload -------------------------------------------

  const Type* extra_type() const { return extra_type_; }
  void set_extra_type(const Type* t) { extra_type_ = t; }

  BinOp binop() const {
    CPI_CHECK(op_ == Opcode::kBinOp);
    return binop_;
  }
  void set_binop(BinOp b) { binop_ = b; }

  CastKind cast_kind() const {
    CPI_CHECK(op_ == Opcode::kCast);
    return cast_;
  }
  void set_cast_kind(CastKind c) { cast_ = c; }

  LibFunc lib_func() const {
    CPI_CHECK(op_ == Opcode::kLibCall);
    return lib_func_;
  }
  void set_lib_func(LibFunc f) { lib_func_ = f; }

  IntrinsicId intrinsic() const {
    CPI_CHECK(op_ == Opcode::kIntrinsic);
    return intrinsic_;
  }
  void set_intrinsic(IntrinsicId id) { intrinsic_ = id; }

  unsigned field_index() const {
    CPI_CHECK(op_ == Opcode::kFieldAddr);
    return field_index_;
  }
  void set_field_index(unsigned i) { field_index_ = i; }

  Function* callee() const {
    CPI_CHECK(op_ == Opcode::kCall || op_ == Opcode::kFuncAddr || op_ == Opcode::kSpawn);
    return callee_;
  }
  void set_callee(Function* f) { callee_ = f; }

  GlobalVariable* global() const {
    CPI_CHECK(op_ == Opcode::kGlobalAddr);
    return global_;
  }
  void set_global(GlobalVariable* g) { global_ = g; }

  StackKind stack_kind() const {
    CPI_CHECK(op_ == Opcode::kAlloca);
    return stack_kind_;
  }
  void set_stack_kind(StackKind k) { stack_kind_ = k; }

  // Branch successors (kBr: one, kCondBr: two).
  BasicBlock* successor(size_t i) const {
    CPI_CHECK(i < 2 && successors_[i] != nullptr);
    return successors_[i];
  }
  void set_successor(size_t i, BasicBlock* bb) {
    CPI_CHECK(i < 2);
    successors_[i] = bb;
  }
  size_t successor_count() const {
    if (op_ == Opcode::kBr) {
      return 1;
    }
    if (op_ == Opcode::kCondBr) {
      return 2;
    }
    return 0;
  }

  bool IsTerminator() const {
    return op_ == Opcode::kBr || op_ == Opcode::kCondBr || op_ == Opcode::kRet;
  }

  // True for operations that read or write program memory; these are the
  // operations CPI's static analysis classifies (Table 2's denominators).
  bool IsMemoryAccess() const {
    switch (op_) {
      case Opcode::kLoad:
      case Opcode::kStore:
        return true;
      case Opcode::kIntrinsic:
        switch (intrinsic_) {
          case IntrinsicId::kCpiStore:
          case IntrinsicId::kCpiLoad:
          case IntrinsicId::kCpiStoreUni:
          case IntrinsicId::kCpiLoadUni:
          case IntrinsicId::kCpsStore:
          case IntrinsicId::kCpsLoad:
          case IntrinsicId::kCpsStoreUni:
          case IntrinsicId::kCpsLoadUni:
          case IntrinsicId::kSbStore:
          case IntrinsicId::kSbLoad:
            return true;
          default:
            return false;
        }
      default:
        return false;
    }
  }

  // For kLibCall memory-transfer functions: true once an instrumentation pass
  // marked this call as needing the checked, metadata-aware variant (§3.2.2's
  // type-specific memcpy/memset handling; SoftBound's checked libc).
  bool checked() const { return checked_; }
  void set_checked(bool v) { checked_ = v; }

  // Debug/printer name, optional.
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

 private:
  friend class Value;  // ReplaceAllUsesWith rewrites operand slots in place

  Opcode op_;
  std::vector<Value*> operands_;
  const Type* extra_type_ = nullptr;
  BinOp binop_ = BinOp::kAdd;
  CastKind cast_ = CastKind::kBitcast;
  LibFunc lib_func_ = LibFunc::kStrlen;
  IntrinsicId intrinsic_ = IntrinsicId::kCpiStore;
  unsigned field_index_ = 0;
  Function* callee_ = nullptr;
  GlobalVariable* global_ = nullptr;
  StackKind stack_kind_ = StackKind::kDefault;
  BasicBlock* successors_[2] = {nullptr, nullptr};
  bool checked_ = false;
  std::string name_;
};

const char* OpcodeName(Opcode op);
const char* BinOpName(BinOp op);
const char* CastKindName(CastKind kind);
const char* LibFuncName(LibFunc f);
const char* StackKindName(StackKind k);

}  // namespace cpi::ir

#endif  // CPI_SRC_IR_INSTRUCTION_H_
