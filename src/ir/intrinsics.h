// Runtime intrinsics that instrumentation passes insert.
//
// These correspond to the Levee runtime-support calls of §4 (cpi_ptr_store()
// and friends). The VM executes them against the runtime's safe pointer
// store; their cost is charged according to the configured store
// organisation.
#ifndef CPI_SRC_IR_INTRINSICS_H_
#define CPI_SRC_IR_INTRINSICS_H_

namespace cpi::ir {

enum class IntrinsicId {
  // --- CPI (§3.2.2): sensitive pointer loads/stores via the safe store, with
  // full based-on metadata (bounds + temporal id).
  kCpiStore,     // (addr, value) -> void   ; writes value+metadata to Ms[addr]
  kCpiLoad,      // (addr) -> value         ; reads value+metadata from Ms[addr]
  kCpiStoreUni,  // universal-pointer store: Ms if metadata valid, else Mu
  kCpiLoadUni,   // universal-pointer load: Ms if it holds a safe value, else Mu

  // Bounds (and, when enabled, temporal) check of the pointer being
  // dereferenced; aborts the program on violation.
  kCpiBoundsCheck,  // (addr, access_size) -> void

  // Indirect-call target check: the value must be a safe code pointer.
  kCpiAssertCode,  // (fnptr) -> fnptr

  // --- CPS (§3.3): code-pointer-only protection, no metadata.
  kCpsStore,     // (addr, value) -> void   ; code pointer into Ms[addr]
  kCpsLoad,      // (addr) -> value         ; code pointer out of Ms[addr]
  kCpsStoreUni,  // universal store: Ms when the value is a code pointer
  kCpsLoadUni,   // universal load: Ms when it holds a code pointer, else Mu
  kCpsAssertCode,  // (fnptr) -> fnptr      ; value must stem from a code-ptr store

  // --- SoftBound baseline (§5.2 comparison): full spatial memory safety.
  kSbStore,  // (addr, value) -> void ; pointer store + shadow metadata update
  kSbLoad,   // (addr) -> value       ; pointer load + shadow metadata fetch
  kSbCheck,  // (addr, access_size) -> void ; checked on every dereference

  // --- CFI baseline: coarse-grained valid-target-set check.
  kCfiCheck,  // (fnptr) -> fnptr ; target must be an address-taken function

  // --- PtrEnc (PACTight/LIPPEN-style in-place pointer sealing): protected
  // pointers stay in regular memory, carrying a keyed MAC over (value,
  // location) in their unused high bits. No safe-region storage at all.
  kSealStore,       // (addr, value) -> void ; seal code pointers in place
  kSealLoad,        // (addr) -> value       ; authenticate + strip on load
  kSealAssertCode,  // (fnptr) -> fnptr      ; value must have authenticated
};

const char* IntrinsicName(IntrinsicId id);

}  // namespace cpi::ir

#endif  // CPI_SRC_IR_INTRINSICS_H_
