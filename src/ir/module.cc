#include "src/ir/module.h"

namespace cpi::ir {

Function* Module::CreateFunction(const std::string& name, const FunctionType* type) {
  CPI_CHECK(FindFunction(name) == nullptr);
  functions_.push_back(std::make_unique<Function>(name, type, this));
  functions_.back()->set_ordinal(static_cast<uint32_t>(functions_.size() - 1));
  return functions_.back().get();
}

Function* Module::FindFunction(const std::string& name) const {
  for (const auto& f : functions_) {
    if (f->name() == name) {
      return f.get();
    }
  }
  return nullptr;
}

GlobalVariable* Module::CreateGlobal(const std::string& name, const Type* type, bool is_const) {
  CPI_CHECK(FindGlobal(name) == nullptr);
  globals_.push_back(std::make_unique<GlobalVariable>(name, type, is_const));
  globals_.back()->set_ordinal(static_cast<uint32_t>(globals_.size() - 1));
  return globals_.back().get();
}

GlobalVariable* Module::FindGlobal(const std::string& name) const {
  for (const auto& g : globals_) {
    if (g->name() == name) {
      return g.get();
    }
  }
  return nullptr;
}

ConstantInt* Module::GetConstInt(const Type* type, uint64_t value) {
  auto owned = std::make_unique<ConstantInt>(type, value);
  ConstantInt* raw = owned.get();
  constants_.push_back(std::move(owned));
  return raw;
}

ConstantFloat* Module::GetConstFloat(double value) {
  auto owned = std::make_unique<ConstantFloat>(types_.FloatTy(), value);
  ConstantFloat* raw = owned.get();
  constants_.push_back(std::move(owned));
  return raw;
}

ConstantNull* Module::GetNull(const Type* pointer_type) {
  auto owned = std::make_unique<ConstantNull>(pointer_type);
  ConstantNull* raw = owned.get();
  constants_.push_back(std::move(owned));
  return raw;
}

void Module::ComputeAddressTaken() {
  for (const auto& f : functions_) {
    f->set_address_taken(false);
  }
  for (const auto& f : functions_) {
    for (const auto& bb : f->blocks()) {
      for (const Instruction* inst : bb->instructions()) {
        if (inst->op() == Opcode::kFuncAddr) {
          inst->callee()->set_address_taken(true);
        }
      }
    }
  }
}

size_t Module::InstructionCount() const {
  size_t n = 0;
  for (const auto& f : functions_) {
    n += f->InstructionCount();
  }
  return n;
}

void Module::RecomputeUses() {
  // Clear everything a block-resident operand could point at — including
  // arena-orphaned instructions, which the instrumentation rewrites leave
  // behind with their use registrations intact.
  for (const auto& c : constants_) {
    c->ClearUses();
  }
  for (const auto& f : functions_) {
    f->ClearAllUses();
  }
  // Re-register exactly the block-resident references.
  for (const auto& f : functions_) {
    for (const auto& bb : f->blocks()) {
      for (Instruction* inst : bb->instructions()) {
        for (Value* op : inst->operands()) {
          op->AddUse(inst);
        }
      }
    }
  }
}

}  // namespace cpi::ir
