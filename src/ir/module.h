// Module: the unit of compilation. Owns the type context, functions, globals
// and constants, plus the record of which protection passes have been applied
// (the VM consults this to route return addresses, cookies, etc.).
#ifndef CPI_SRC_IR_MODULE_H_
#define CPI_SRC_IR_MODULE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/ir/function.h"
#include "src/ir/type.h"

namespace cpi::ir {

class GlobalVariable {
 public:
  GlobalVariable(std::string name, const Type* type, bool is_const)
      : name_(std::move(name)), type_(type), is_const_(is_const) {
    CPI_CHECK(type != nullptr);
  }

  const std::string& name() const { return name_; }
  const Type* type() const { return type_; }

  // Const globals are placed in read-only memory by the VM (like jump tables
  // and string constants, §4 "Binary level functionality"): the attacker
  // cannot overwrite them.
  bool is_const() const { return is_const_; }

  // Optional initial bytes (zero-filled when shorter than the type size).
  const std::vector<uint8_t>& initializer() const { return initializer_; }
  void set_initializer(std::vector<uint8_t> bytes) { initializer_ = std::move(bytes); }

  // Position in the module's global list; assigned by Module::CreateGlobal.
  // Lets the VM's program layout be a flat vector instead of a map.
  uint32_t ordinal() const { return ordinal_; }
  void set_ordinal(uint32_t o) { ordinal_ = o; }

 private:
  std::string name_;
  const Type* type_;
  bool is_const_;
  std::vector<uint8_t> initializer_;
  uint32_t ordinal_ = 0;
};

// Which protection mechanisms the instrumentation configured on this module.
// Written by the passes, read by the VM and by reporting code.
struct ProtectionFlags {
  bool safe_stack = false;    // §3.2.4
  bool cpi = false;           // §3.2.2
  bool cps = false;           // §3.3
  bool softbound = false;     // full-memory-safety baseline
  bool cfi = false;           // coarse CFI baseline
  bool stack_cookies = false; // canary baseline
  // PACTight/LIPPEN-style in-place pointer sealing: code pointers (and the
  // VM's saved return tokens) carry a keyed MAC in their high bits instead
  // of living in a separate safe region.
  bool ptrenc = false;
  // PACStack-style chained return MACs: the VM seals every saved return
  // token over the previous sealed token (per-thread chain head), so each
  // return authenticates the whole chain suffix. Mutually exclusive with
  // `ptrenc`, which owns the plain sealed-return-slot format.
  bool ret_chain = false;
  // Debug mode (§3.2.2): mirror sensitive pointers into both regions and
  // compare on load — detects (rather than silently neutralises) attacks.
  bool debug_mode = false;
  // Enforce temporal (CETS-style) safety in addition to spatial. The paper's
  // prototype is spatial-only; the design covers both (§4 "Limitations").
  bool temporal = false;
};

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }
  TypeContext& types() { return types_; }
  const TypeContext& types() const { return types_; }

  Function* CreateFunction(const std::string& name, const FunctionType* type);
  Function* FindFunction(const std::string& name) const;
  const std::vector<std::unique_ptr<Function>>& functions() const { return functions_; }

  GlobalVariable* CreateGlobal(const std::string& name, const Type* type, bool is_const = false);
  GlobalVariable* FindGlobal(const std::string& name) const;
  const std::vector<std::unique_ptr<GlobalVariable>>& globals() const { return globals_; }

  // Constant factories (module-owned).
  ConstantInt* GetConstInt(const Type* type, uint64_t value);
  ConstantInt* GetI64(uint64_t value) { return GetConstInt(types_.I64(), value); }
  ConstantFloat* GetConstFloat(double value);
  ConstantNull* GetNull(const Type* pointer_type);

  // §3.2.1 / §4 "Sensitive data protection": programmer-annotated types that
  // must be treated as sensitive even though they contain no code pointers
  // (e.g. the FreeBSD `struct ucred` analogue).
  void AnnotateSensitive(const Type* type) { annotated_sensitive_.insert(type); }
  bool IsAnnotatedSensitive(const Type* type) const {
    return annotated_sensitive_.count(type) > 0;
  }
  const std::set<const Type*>& annotated_sensitive() const { return annotated_sensitive_; }

  ProtectionFlags& protection() { return protection_; }
  const ProtectionFlags& protection() const { return protection_; }

  // Marks functions whose address is taken by a FuncAddr instruction
  // anywhere in the module (the coarse-CFI target set).
  void ComputeAddressTaken();

  // Rebuilds every value's use-list from the block-resident instructions.
  // Instrumentation passes orphan replaced instructions in the arena without
  // unregistering their uses; the optimizer calls this before relying on
  // use-lists (see src/opt/pass_manager.h).
  void RecomputeUses();

  size_t InstructionCount() const;

 private:
  std::string name_;
  TypeContext types_;
  std::vector<std::unique_ptr<Function>> functions_;
  std::vector<std::unique_ptr<GlobalVariable>> globals_;
  std::deque<std::unique_ptr<Value>> constants_;
  std::set<const Type*> annotated_sensitive_;
  ProtectionFlags protection_;
};

}  // namespace cpi::ir

#endif  // CPI_SRC_IR_MODULE_H_
