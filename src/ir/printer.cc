#include "src/ir/printer.h"

#include <sstream>

namespace cpi::ir {
namespace {

std::string ValueRef(const Value* v) {
  switch (v->value_kind()) {
    case ValueKind::kConstInt: {
      const auto* c = static_cast<const ConstantInt*>(v);
      return std::to_string(static_cast<int64_t>(c->value())) + ":" + c->type()->ToString();
    }
    case ValueKind::kConstFloat:
      return std::to_string(static_cast<const ConstantFloat*>(v)->value());
    case ValueKind::kConstNull:
      return "null:" + v->type()->ToString();
    case ValueKind::kArgument: {
      const auto* a = static_cast<const Argument*>(v);
      return "%" + a->name();
    }
    case ValueKind::kInstruction: {
      const auto* inst = static_cast<const Instruction*>(v);
      if (!inst->name().empty()) {
        return "%" + inst->name();
      }
      return "%v" + std::to_string(inst->value_id());
    }
  }
  CPI_UNREACHABLE();
}

void PrintInstructionTo(std::ostringstream& os, const Instruction& inst) {
  if (!inst.type()->IsVoid()) {
    os << ValueRef(&inst) << " = ";
  }
  switch (inst.op()) {
    case Opcode::kAlloca:
      os << "alloca " << inst.extra_type()->ToString() << " ["
         << StackKindName(inst.stack_kind()) << "]";
      return;
    case Opcode::kBinOp:
      os << BinOpName(inst.binop());
      break;
    case Opcode::kCast:
      os << CastKindName(inst.cast_kind());
      break;
    case Opcode::kLibCall:
      os << LibFuncName(inst.lib_func());
      break;
    case Opcode::kIntrinsic:
      os << IntrinsicName(inst.intrinsic());
      break;
    case Opcode::kCall:
      os << "call @" << inst.callee()->name();
      break;
    case Opcode::kSpawn:
      os << "spawn @" << inst.callee()->name();
      break;
    case Opcode::kFuncAddr:
      os << "funcaddr @" << inst.callee()->name();
      return;
    case Opcode::kGlobalAddr:
      os << "globaladdr @" << inst.global()->name();
      return;
    case Opcode::kFieldAddr: {
      const auto* st = static_cast<const StructType*>(
          static_cast<const PointerType*>(inst.operand(0)->type())->pointee());
      os << "fieldaddr " << ValueRef(inst.operand(0)) << ", ."
         << st->fields()[inst.field_index()].name;
      return;
    }
    case Opcode::kBr:
      os << "br ^" << inst.successor(0)->name();
      return;
    case Opcode::kCondBr:
      os << "condbr " << ValueRef(inst.operand(0)) << ", ^" << inst.successor(0)->name() << ", ^"
         << inst.successor(1)->name();
      return;
    default:
      os << OpcodeName(inst.op());
      break;
  }
  for (size_t i = 0; i < inst.operands().size(); ++i) {
    os << (i == 0 ? " " : ", ") << ValueRef(inst.operand(i));
  }
  if (inst.op() == Opcode::kCast || inst.op() == Opcode::kMalloc) {
    os << " to " << inst.type()->ToString();
  }
}

}  // namespace

std::string PrintInstruction(const Instruction& inst) {
  std::ostringstream os;
  PrintInstructionTo(os, inst);
  return os.str();
}

std::string PrintFunction(const Function& function) {
  std::ostringstream os;
  os << "func @" << function.name() << "(";
  for (size_t i = 0; i < function.args().size(); ++i) {
    if (i != 0) {
      os << ", ";
    }
    os << "%" << function.args()[i]->name() << ": " << function.args()[i]->type()->ToString();
  }
  os << ") -> " << function.type()->return_type()->ToString();
  if (function.needs_unsafe_frame()) {
    os << " [unsafe-frame]";
  }
  if (function.has_stack_cookie()) {
    os << " [cookie]";
  }
  os << " {\n";
  for (const auto& bb : function.blocks()) {
    os << "^" << bb->name() << ":\n";
    for (const Instruction* inst : bb->instructions()) {
      os << "  ";
      std::ostringstream line;
      PrintInstructionTo(line, *inst);
      os << line.str() << "\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string PrintModule(const Module& module) {
  std::ostringstream os;
  os << "; module " << module.name() << "\n";
  for (const auto& g : module.globals()) {
    os << "global @" << g->name() << ": " << g->type()->ToString()
       << (g->is_const() ? " const" : "") << "\n";
  }
  for (const auto& f : module.functions()) {
    os << "\n" << PrintFunction(*f);
  }
  return os.str();
}

}  // namespace cpi::ir
