// Textual rendering of modules, functions and instructions, in an
// LLVM-flavoured format. Used for debugging, golden tests, and inspecting
// what the instrumentation passes did.
#ifndef CPI_SRC_IR_PRINTER_H_
#define CPI_SRC_IR_PRINTER_H_

#include <string>

#include "src/ir/module.h"

namespace cpi::ir {

std::string PrintModule(const Module& module);
std::string PrintFunction(const Function& function);
std::string PrintInstruction(const Instruction& inst);

}  // namespace cpi::ir

#endif  // CPI_SRC_IR_PRINTER_H_
