#include "src/ir/type.h"

#include <algorithm>

namespace cpi::ir {

std::string FunctionType::ToString() const {
  std::string out = ret_->ToString() + "(";
  for (size_t i = 0; i < params_.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    out += params_[i]->ToString();
  }
  out += ")";
  return out;
}

uint64_t AlignmentOf(const Type* type) {
  switch (type->kind()) {
    case TypeKind::kInt:
    case TypeKind::kFloat:
    case TypeKind::kPointer:
      return std::min<uint64_t>(type->SizeInBytes(), 8);
    case TypeKind::kArray:
      return AlignmentOf(static_cast<const ArrayType*>(type)->element());
    case TypeKind::kStruct: {
      const auto* st = static_cast<const StructType*>(type);
      uint64_t align = 1;
      for (const StructField& f : st->fields()) {
        align = std::max(align, AlignmentOf(f.type));
      }
      return align;
    }
    case TypeKind::kVoid:
    case TypeKind::kFunction:
      CPI_UNREACHABLE();
  }
  CPI_UNREACHABLE();
}

void StructType::SetBody(std::vector<StructField> fields) {
  CPI_CHECK(opaque_);
  uint64_t offset = 0;
  for (StructField& f : fields) {
    CPI_CHECK(f.type != nullptr);
    const uint64_t align = AlignmentOf(f.type);
    offset = (offset + align - 1) / align * align;
    f.offset = offset;
    offset += f.type->SizeInBytes();
  }
  // Round the total size up to the struct's own alignment so arrays of the
  // struct keep every element aligned.
  uint64_t struct_align = 1;
  for (const StructField& f : fields) {
    struct_align = std::max(struct_align, AlignmentOf(f.type));
  }
  fields_ = std::move(fields);
  opaque_ = false;
  size_ = (offset + struct_align - 1) / struct_align * struct_align;
  if (size_ == 0) {
    size_ = 1;  // empty structs occupy one byte, as in C++
  }
}

TypeContext::TypeContext() {
  void_type_ = Create<VoidType>();
  float_type_ = Create<FloatType>();
  char_type_ = Create<IntType>(8, /*is_char=*/true);
}

const IntType* TypeContext::IntTy(int bits) {
  auto it = int_types_.find(bits);
  if (it != int_types_.end()) {
    return it->second;
  }
  const IntType* t = Create<IntType>(bits, /*is_char=*/false);
  int_types_[bits] = t;
  return t;
}

const IntType* TypeContext::CharTy() { return char_type_; }

const PointerType* TypeContext::PointerTo(const Type* pointee) {
  auto it = pointer_types_.find(pointee);
  if (it != pointer_types_.end()) {
    return it->second;
  }
  const PointerType* t = Create<PointerType>(pointee);
  pointer_types_[pointee] = t;
  return t;
}

const FunctionType* TypeContext::FunctionTy(const Type* ret, std::vector<const Type*> params) {
  auto key = std::make_pair(ret, params);
  auto it = function_types_.find(key);
  if (it != function_types_.end()) {
    return it->second;
  }
  const FunctionType* t = Create<FunctionType>(ret, std::move(params));
  function_types_[key] = t;
  return t;
}

const ArrayType* TypeContext::ArrayOf(const Type* element, uint64_t count) {
  auto key = std::make_pair(element, count);
  auto it = array_types_.find(key);
  if (it != array_types_.end()) {
    return it->second;
  }
  const ArrayType* t = Create<ArrayType>(element, count);
  array_types_[key] = t;
  return t;
}

StructType* TypeContext::GetOrCreateStruct(const std::string& name) {
  auto it = struct_types_.find(name);
  if (it != struct_types_.end()) {
    return it->second;
  }
  StructType* t = Create<StructType>(name);
  struct_types_[name] = t;
  return t;
}

const StructType* TypeContext::FindStruct(const std::string& name) const {
  auto it = struct_types_.find(name);
  return it == struct_types_.end() ? nullptr : it->second;
}

bool IsUniversalPointer(const Type* type) {
  if (!type->IsPointer()) {
    return false;
  }
  const Type* pointee = static_cast<const PointerType*>(type)->pointee();
  if (pointee->IsVoid()) {
    return true;
  }
  if (pointee->IsInt() && static_cast<const IntType*>(pointee)->is_char()) {
    return true;
  }
  if (pointee->IsStruct() && static_cast<const StructType*>(pointee)->is_opaque()) {
    return true;
  }
  return false;
}

bool IsCodePointer(const Type* type) {
  return type->IsPointer() && static_cast<const PointerType*>(type)->pointee()->IsFunction();
}

}  // namespace cpi::ir
