// The IR type system.
//
// This models the slice of C's type system that the CPI paper's analysis is
// defined over (§3.2.1 and Appendix A Fig. 6/7): integers, floats, pointers,
// function types, structs (including opaque forward declarations), and
// arrays. Universal pointers — void*, char*, and pointers to opaque structs —
// are first-class notions here because the sensitivity criterion treats them
// specially.
//
// Types are interned: within one TypeContext, structurally equal types are
// pointer-equal, so analyses can key maps by `const Type*`.
#ifndef CPI_SRC_IR_TYPE_H_
#define CPI_SRC_IR_TYPE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/support/check.h"

namespace cpi::ir {

enum class TypeKind {
  kVoid,      // only valid as a function return type or pointee of void*
  kInt,       // i8/i16/i32/i64; i8 may additionally be marked "char"
  kFloat,     // 64-bit IEEE double
  kPointer,   // T*
  kFunction,  // ret(params...)
  kStruct,    // named, possibly opaque (forward-declared)
  kArray,     // T[n]
};

class Type;

// One struct member: a name, a type, and a byte offset computed at layout
// time.
struct StructField {
  std::string name;
  const Type* type = nullptr;
  uint64_t offset = 0;
};

class Type {
 public:
  virtual ~Type() = default;

  TypeKind kind() const { return kind_; }

  bool IsVoid() const { return kind_ == TypeKind::kVoid; }
  bool IsInt() const { return kind_ == TypeKind::kInt; }
  bool IsFloat() const { return kind_ == TypeKind::kFloat; }
  bool IsPointer() const { return kind_ == TypeKind::kPointer; }
  bool IsFunction() const { return kind_ == TypeKind::kFunction; }
  bool IsStruct() const { return kind_ == TypeKind::kStruct; }
  bool IsArray() const { return kind_ == TypeKind::kArray; }

  // Object size in bytes. CHECK-fails for void, function and opaque struct
  // types, which are not sized.
  virtual uint64_t SizeInBytes() const = 0;

  // Human-readable rendering, e.g. "struct node*", "i64[16]".
  virtual std::string ToString() const = 0;

 protected:
  explicit Type(TypeKind kind) : kind_(kind) {}

 private:
  TypeKind kind_;
};

class VoidType final : public Type {
 public:
  VoidType() : Type(TypeKind::kVoid) {}
  uint64_t SizeInBytes() const override { CPI_UNREACHABLE(); }
  std::string ToString() const override { return "void"; }
};

class IntType final : public Type {
 public:
  IntType(int bits, bool is_char) : Type(TypeKind::kInt), bits_(bits), is_char_(is_char) {
    CPI_CHECK(bits == 8 || bits == 16 || bits == 32 || bits == 64);
    CPI_CHECK(!is_char || bits == 8);
  }

  int bits() const { return bits_; }
  // True for C's `char`: i8 that participates in the universal-pointer rules.
  bool is_char() const { return is_char_; }

  uint64_t SizeInBytes() const override { return static_cast<uint64_t>(bits_) / 8; }
  std::string ToString() const override {
    if (is_char_) {
      return "char";
    }
    return "i" + std::to_string(bits_);
  }

 private:
  int bits_;
  bool is_char_;
};

class FloatType final : public Type {
 public:
  FloatType() : Type(TypeKind::kFloat) {}
  uint64_t SizeInBytes() const override { return 8; }
  std::string ToString() const override { return "f64"; }
};

class PointerType final : public Type {
 public:
  explicit PointerType(const Type* pointee) : Type(TypeKind::kPointer), pointee_(pointee) {
    CPI_CHECK(pointee != nullptr);
  }

  const Type* pointee() const { return pointee_; }

  uint64_t SizeInBytes() const override { return 8; }
  std::string ToString() const override { return pointee_->ToString() + "*"; }

 private:
  const Type* pointee_;
};

class FunctionType final : public Type {
 public:
  FunctionType(const Type* ret, std::vector<const Type*> params)
      : Type(TypeKind::kFunction), ret_(ret), params_(std::move(params)) {
    CPI_CHECK(ret != nullptr);
  }

  const Type* return_type() const { return ret_; }
  const std::vector<const Type*>& params() const { return params_; }

  uint64_t SizeInBytes() const override { CPI_UNREACHABLE(); }
  std::string ToString() const override;

 private:
  const Type* ret_;
  std::vector<const Type*> params_;
};

class StructType final : public Type {
 public:
  explicit StructType(std::string name) : Type(TypeKind::kStruct), name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // A struct starts out opaque (forward-declared); SetBody gives it fields
  // and computes the layout. Pointers to still-opaque structs are universal.
  bool is_opaque() const { return opaque_; }
  void SetBody(std::vector<StructField> fields);

  const std::vector<StructField>& fields() const {
    CPI_CHECK(!opaque_);
    return fields_;
  }

  uint64_t SizeInBytes() const override {
    CPI_CHECK(!opaque_);
    return size_;
  }
  std::string ToString() const override { return "struct " + name_; }

 private:
  std::string name_;
  bool opaque_ = true;
  std::vector<StructField> fields_;
  uint64_t size_ = 0;
};

class ArrayType final : public Type {
 public:
  ArrayType(const Type* element, uint64_t count)
      : Type(TypeKind::kArray), element_(element), count_(count) {
    CPI_CHECK(element != nullptr);
    CPI_CHECK(count > 0);
  }

  const Type* element() const { return element_; }
  uint64_t count() const { return count_; }

  uint64_t SizeInBytes() const override { return element_->SizeInBytes() * count_; }
  std::string ToString() const override {
    return element_->ToString() + "[" + std::to_string(count_) + "]";
  }

 private:
  const Type* element_;
  uint64_t count_;
};

// Interning context; owns all types it hands out. One per Module.
class TypeContext {
 public:
  TypeContext();
  TypeContext(const TypeContext&) = delete;
  TypeContext& operator=(const TypeContext&) = delete;

  const VoidType* VoidTy() const { return void_type_; }
  const FloatType* FloatTy() const { return float_type_; }
  const IntType* IntTy(int bits);
  const IntType* CharTy();  // i8 flagged as char
  const IntType* I8() { return IntTy(8); }
  const IntType* I32() { return IntTy(32); }
  const IntType* I64() { return IntTy(64); }

  const PointerType* PointerTo(const Type* pointee);
  const PointerType* VoidPtrTy() { return PointerTo(VoidTy()); }
  const PointerType* CharPtrTy() { return PointerTo(CharTy()); }

  const FunctionType* FunctionTy(const Type* ret, std::vector<const Type*> params);
  const ArrayType* ArrayOf(const Type* element, uint64_t count);

  // Structs are nominal: each name maps to exactly one StructType, created
  // opaque on first request.
  StructType* GetOrCreateStruct(const std::string& name);
  const StructType* FindStruct(const std::string& name) const;

 private:
  template <typename T, typename... Args>
  T* Create(Args&&... args) {
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = owned.get();
    owned_.push_back(std::move(owned));
    return raw;
  }

  std::deque<std::unique_ptr<Type>> owned_;
  const VoidType* void_type_;
  const FloatType* float_type_;
  const IntType* char_type_;
  std::map<int, const IntType*> int_types_;
  std::map<const Type*, const PointerType*> pointer_types_;
  std::map<std::pair<const Type*, std::vector<const Type*>>, const FunctionType*> function_types_;
  std::map<std::pair<const Type*, uint64_t>, const ArrayType*> array_types_;
  std::map<std::string, StructType*> struct_types_;
};

// True for void*, char* and pointers to opaque structs — the "universal
// pointer" notion of §3.2.1.
bool IsUniversalPointer(const Type* type);

// True for pointers to function types (code pointers).
bool IsCodePointer(const Type* type);

// Natural alignment used by struct layout: min(size, 8) for scalars,
// element/field alignment for aggregates.
uint64_t AlignmentOf(const Type* type);

}  // namespace cpi::ir

#endif  // CPI_SRC_IR_TYPE_H_
