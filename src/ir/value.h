// IR value hierarchy: constants, function arguments, and instruction results.
//
// Values are identified by a function-local register id (assigned by
// Function::RenumberValues) that the VM uses to index its register file.
// Constants live outside the register file.
#ifndef CPI_SRC_IR_VALUE_H_
#define CPI_SRC_IR_VALUE_H_

#include <cstdint>
#include <string>

#include "src/ir/type.h"
#include "src/support/check.h"

namespace cpi::ir {

class Function;

enum class ValueKind {
  kConstInt,
  kConstFloat,
  kConstNull,  // null pointer of some pointer type
  kArgument,
  kInstruction,
};

inline constexpr uint32_t kInvalidValueId = 0xffffffff;

class Value {
 public:
  virtual ~Value() = default;

  ValueKind value_kind() const { return value_kind_; }
  const Type* type() const { return type_; }

  bool IsConstant() const {
    return value_kind_ == ValueKind::kConstInt || value_kind_ == ValueKind::kConstFloat ||
           value_kind_ == ValueKind::kConstNull;
  }

  // Register id within the enclosing function; only meaningful for arguments
  // and instructions after RenumberValues().
  uint32_t value_id() const { return value_id_; }
  void set_value_id(uint32_t id) { value_id_ = id; }

 protected:
  Value(ValueKind kind, const Type* type) : value_kind_(kind), type_(type) {
    CPI_CHECK(type != nullptr);
  }

 private:
  ValueKind value_kind_;
  const Type* type_;
  uint32_t value_id_ = kInvalidValueId;
};

class ConstantInt final : public Value {
 public:
  ConstantInt(const Type* type, uint64_t value)
      : Value(ValueKind::kConstInt, type), value_(value) {
    CPI_CHECK(type->IsInt());
  }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_;
};

class ConstantFloat final : public Value {
 public:
  ConstantFloat(const Type* type, double value)
      : Value(ValueKind::kConstFloat, type), value_(value) {
    CPI_CHECK(type->IsFloat());
  }
  double value() const { return value_; }

 private:
  double value_;
};

class ConstantNull final : public Value {
 public:
  explicit ConstantNull(const Type* type) : Value(ValueKind::kConstNull, type) {
    CPI_CHECK(type->IsPointer());
  }
};

class Argument final : public Value {
 public:
  Argument(const Type* type, unsigned index, Function* parent, std::string name)
      : Value(ValueKind::kArgument, type), index_(index), parent_(parent),
        name_(std::move(name)) {}

  unsigned index() const { return index_; }
  Function* parent() const { return parent_; }
  const std::string& name() const { return name_; }

 private:
  unsigned index_;
  Function* parent_;
  std::string name_;
};

}  // namespace cpi::ir

#endif  // CPI_SRC_IR_VALUE_H_
