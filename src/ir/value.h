// IR value hierarchy: constants, function arguments, and instruction results.
//
// Values are identified by a function-local register id (assigned by
// Function::RenumberValues) that the VM uses to index its register file.
// Constants live outside the register file.
//
// Every value also carries a use-list: the block-resident instructions whose
// operand lists reference it (one entry per referencing operand slot). The
// list is maintained automatically by Instruction::AddOperand/SetOperand;
// passes that orphan instructions wholesale (the instrumentation rewrites)
// leave stale entries behind, so the optimizer calls Module::RecomputeUses()
// to rebuild the lists from the block-resident instructions before relying
// on them.
#ifndef CPI_SRC_IR_VALUE_H_
#define CPI_SRC_IR_VALUE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ir/type.h"
#include "src/support/check.h"

namespace cpi::ir {

class Function;
class Instruction;

enum class ValueKind {
  kConstInt,
  kConstFloat,
  kConstNull,  // null pointer of some pointer type
  kArgument,
  kInstruction,
};

inline constexpr uint32_t kInvalidValueId = 0xffffffff;

class Value {
 public:
  virtual ~Value() = default;

  ValueKind value_kind() const { return value_kind_; }
  const Type* type() const { return type_; }

  bool IsConstant() const {
    return value_kind_ == ValueKind::kConstInt || value_kind_ == ValueKind::kConstFloat ||
           value_kind_ == ValueKind::kConstNull;
  }

  // Register id within the enclosing function; only meaningful for arguments
  // and instructions after RenumberValues().
  uint32_t value_id() const { return value_id_; }
  void set_value_id(uint32_t id) { value_id_ = id; }

  // --- use-list ----------------------------------------------------------
  // One entry per operand slot that references this value.
  const std::vector<Instruction*>& users() const { return users_; }
  bool HasUses() const { return !users_.empty(); }
  size_t UseCount() const { return users_.size(); }

  void AddUse(Instruction* user) { users_.push_back(user); }
  // Removes one occurrence of `user` (a user referencing this value through
  // two operand slots appears twice).
  void RemoveUse(Instruction* user) {
    for (size_t i = users_.size(); i > 0; --i) {
      if (users_[i - 1] == user) {
        users_.erase(users_.begin() + static_cast<ptrdiff_t>(i - 1));
        return;
      }
    }
    CPI_CHECK(false && "RemoveUse: user not found");
  }
  void ClearUses() { users_.clear(); }

  // Rewrites every user's matching operand slots to `replacement` and moves
  // the uses over. Defined in instruction.cc (needs the Instruction layout).
  void ReplaceAllUsesWith(Value* replacement);

 protected:
  Value(ValueKind kind, const Type* type) : value_kind_(kind), type_(type) {
    CPI_CHECK(type != nullptr);
  }

 private:
  ValueKind value_kind_;
  const Type* type_;
  uint32_t value_id_ = kInvalidValueId;
  std::vector<Instruction*> users_;
};

class ConstantInt final : public Value {
 public:
  ConstantInt(const Type* type, uint64_t value)
      : Value(ValueKind::kConstInt, type), value_(value) {
    CPI_CHECK(type->IsInt());
  }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_;
};

class ConstantFloat final : public Value {
 public:
  ConstantFloat(const Type* type, double value)
      : Value(ValueKind::kConstFloat, type), value_(value) {
    CPI_CHECK(type->IsFloat());
  }
  double value() const { return value_; }

 private:
  double value_;
};

class ConstantNull final : public Value {
 public:
  explicit ConstantNull(const Type* type) : Value(ValueKind::kConstNull, type) {
    CPI_CHECK(type->IsPointer());
  }
};

class Argument final : public Value {
 public:
  Argument(const Type* type, unsigned index, Function* parent, std::string name)
      : Value(ValueKind::kArgument, type), index_(index), parent_(parent),
        name_(std::move(name)) {}

  unsigned index() const { return index_; }
  Function* parent() const { return parent_; }
  const std::string& name() const { return name_; }

 private:
  unsigned index_;
  Function* parent_;
  std::string name_;
};

}  // namespace cpi::ir

#endif  // CPI_SRC_IR_VALUE_H_
