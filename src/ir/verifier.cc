#include "src/ir/verifier.h"

#include <set>
#include <sstream>

namespace cpi::ir {
namespace {

class Verifier {
 public:
  explicit Verifier(const Module& module) : module_(module) {}

  std::vector<std::string> Run() {
    bool has_main = false;
    for (const auto& f : module_.functions()) {
      if (f->name() == "main") {
        has_main = true;
      }
      VerifyFunction(*f);
    }
    if (!has_main) {
      Error("module", "no main function");
    }
    return std::move(errors_);
  }

 private:
  void Error(const std::string& where, const std::string& what) {
    errors_.push_back(where + ": " + what);
  }

  void VerifyFunction(const Function& f) {
    if (f.blocks().empty()) {
      Error(f.name(), "function has no blocks");
      return;
    }

    // Collect all values defined in this function so operand ownership can be
    // validated.
    std::set<const Value*> defined;
    for (const auto& arg : f.args()) {
      defined.insert(arg.get());
    }
    for (const auto& bb : f.blocks()) {
      for (const Instruction* inst : bb->instructions()) {
        defined.insert(inst);
      }
    }
    std::set<const BasicBlock*> blocks;
    for (const auto& bb : f.blocks()) {
      blocks.insert(bb.get());
    }

    for (const auto& bb : f.blocks()) {
      const std::string where = f.name() + "/" + bb->name();
      if (bb->instructions().empty()) {
        Error(where, "empty block");
        continue;
      }
      if (!bb->HasTerminator()) {
        Error(where, "block does not end in a terminator");
      }
      for (size_t i = 0; i < bb->instructions().size(); ++i) {
        const Instruction* inst = bb->instructions()[i];
        if (inst->IsTerminator() && i + 1 != bb->instructions().size()) {
          Error(where, "terminator in the middle of a block");
        }
        for (const Value* op : inst->operands()) {
          if (!op->IsConstant() && defined.count(op) == 0) {
            Error(where, std::string(OpcodeName(inst->op())) +
                             " uses a value from another function");
          }
        }
        for (size_t s = 0; s < inst->successor_count(); ++s) {
          if (blocks.count(inst->successor(s)) == 0) {
            Error(where, "branch to a block of another function");
          }
        }
        VerifyInstruction(where, f, *inst);
      }
    }
  }

  static const Type* Pointee(const Value* v) {
    return static_cast<const PointerType*>(v->type())->pointee();
  }

  void VerifyInstruction(const std::string& where, const Function& f, const Instruction& inst) {
    auto expect_operands = [&](size_t n) {
      if (inst.operands().size() != n) {
        std::ostringstream os;
        os << OpcodeName(inst.op()) << ": expected " << n << " operands, got "
           << inst.operands().size();
        Error(where, os.str());
        return false;
      }
      return true;
    };
    auto expect_ptr = [&](size_t i) {
      if (!inst.operand(i)->type()->IsPointer()) {
        Error(where, std::string(OpcodeName(inst.op())) + ": operand " + std::to_string(i) +
                         " must be a pointer");
        return false;
      }
      return true;
    };
    auto expect_int = [&](size_t i) {
      if (!inst.operand(i)->type()->IsInt()) {
        Error(where, std::string(OpcodeName(inst.op())) + ": operand " + std::to_string(i) +
                         " must be an integer");
        return false;
      }
      return true;
    };

    switch (inst.op()) {
      case Opcode::kAlloca:
        expect_operands(0);
        if (inst.extra_type() == nullptr) {
          Error(where, "alloca without allocated type");
        }
        break;
      case Opcode::kLoad:
        if (expect_operands(1) && expect_ptr(0)) {
          const Type* pointee = Pointee(inst.operand(0));
          if (!pointee->IsInt() && !pointee->IsFloat() && !pointee->IsPointer()) {
            Error(where, "load of non-scalar type");
          } else if (pointee != inst.type()) {
            Error(where, "load result type does not match pointee");
          }
        }
        break;
      case Opcode::kStore:
        if (expect_operands(2) && expect_ptr(1)) {
          const Type* pointee = Pointee(inst.operand(1));
          if (pointee->IsStruct() || pointee->IsArray()) {
            Error(where, "store of non-scalar type");
          } else if (!pointee->IsVoid() && pointee != inst.operand(0)->type()) {
            // Stores through void* are untyped; all others must match.
            Error(where, "store value type does not match pointee");
          }
        }
        break;
      case Opcode::kFieldAddr:
        if (expect_operands(1) && expect_ptr(0)) {
          const Type* pointee = Pointee(inst.operand(0));
          if (!pointee->IsStruct() || static_cast<const StructType*>(pointee)->is_opaque()) {
            Error(where, "fieldaddr base is not a sized struct pointer");
          } else if (inst.field_index() >=
                     static_cast<const StructType*>(pointee)->fields().size()) {
            Error(where, "fieldaddr index out of range");
          }
        }
        break;
      case Opcode::kIndexAddr:
        if (expect_operands(2) && expect_ptr(0)) {
          expect_int(1);
        }
        break;
      case Opcode::kBinOp: {
        if (!expect_operands(2)) {
          break;
        }
        const bool is_float_op = inst.binop() >= BinOp::kFAdd;
        for (size_t i = 0; i < 2; ++i) {
          const Type* t = inst.operand(i)->type();
          if (is_float_op && !t->IsFloat()) {
            Error(where, "float binop with non-float operand");
          }
          if (!is_float_op && !t->IsInt() && !t->IsPointer()) {
            Error(where, "integer binop with non-integer operand");
          }
        }
        break;
      }
      case Opcode::kCast: {
        if (!expect_operands(1)) {
          break;
        }
        const Type* from = inst.operand(0)->type();
        const Type* to = inst.type();
        switch (inst.cast_kind()) {
          case CastKind::kBitcast:
            if (!from->IsPointer() || !to->IsPointer()) {
              Error(where, "bitcast requires pointer types");
            }
            break;
          case CastKind::kPtrToInt:
            if (!from->IsPointer() || !to->IsInt()) {
              Error(where, "ptrtoint requires pointer -> int");
            }
            break;
          case CastKind::kIntToPtr:
            if (!from->IsInt() || !to->IsPointer()) {
              Error(where, "inttoptr requires int -> pointer");
            }
            break;
          case CastKind::kTrunc:
          case CastKind::kZExt:
          case CastKind::kSExt:
            if (!from->IsInt() || !to->IsInt()) {
              Error(where, "integer cast requires int -> int");
            }
            break;
          case CastKind::kIntToFloat:
            if (!from->IsInt() || !to->IsFloat()) {
              Error(where, "inttofloat requires int -> float");
            }
            break;
          case CastKind::kFloatToInt:
            if (!from->IsFloat() || !to->IsInt()) {
              Error(where, "floattoint requires float -> int");
            }
            break;
        }
        break;
      }
      case Opcode::kSelect:
        if (expect_operands(3)) {
          expect_int(0);
          if (inst.operand(1)->type() != inst.operand(2)->type()) {
            Error(where, "select arms have different types");
          }
        }
        break;
      case Opcode::kCall: {
        const Function* callee = inst.callee();
        if (callee == nullptr) {
          Error(where, "call without callee");
          break;
        }
        const auto& params = callee->type()->params();
        if (inst.operands().size() != params.size()) {
          Error(where, "call argument count mismatch");
          break;
        }
        for (size_t i = 0; i < params.size(); ++i) {
          if (inst.operand(i)->type() != params[i]) {
            Error(where, "call argument " + std::to_string(i) + " type mismatch");
          }
        }
        break;
      }
      case Opcode::kSpawn: {
        const Function* worker = inst.callee();
        if (worker == nullptr) {
          Error(where, "spawn without callee");
          break;
        }
        if (!worker->type()->return_type()->IsInt()) {
          Error(where, "spawn callee must return an integer (join's result)");
        }
        if (!inst.type()->IsInt()) {
          Error(where, "spawn must produce an integer thread id");
        }
        const auto& params = worker->type()->params();
        if (inst.operands().size() != params.size()) {
          Error(where, "spawn argument count mismatch");
          break;
        }
        for (size_t i = 0; i < params.size(); ++i) {
          if (inst.operand(i)->type() != params[i]) {
            Error(where, "spawn argument " + std::to_string(i) + " type mismatch");
          }
        }
        break;
      }
      case Opcode::kJoin:
        if (expect_operands(1)) {
          expect_int(0);
        }
        if (!inst.type()->IsInt()) {
          Error(where, "join must produce an integer");
        }
        break;
      case Opcode::kYield:
        expect_operands(0);
        break;
      case Opcode::kIndirectCall: {
        if (inst.operands().empty() || !inst.operand(0)->type()->IsPointer() ||
            !IsCodePointer(inst.operand(0)->type())) {
          Error(where, "indirect call target is not a function pointer");
          break;
        }
        const auto* fn_type = static_cast<const FunctionType*>(Pointee(inst.operand(0)));
        if (inst.operands().size() - 1 != fn_type->params().size()) {
          Error(where, "indirect call argument count mismatch");
        }
        break;
      }
      case Opcode::kLibCall:
        switch (inst.lib_func()) {
          case LibFunc::kStrcpy:
          case LibFunc::kStrcat:
          case LibFunc::kStrcmp:
            expect_operands(2);
            break;
          case LibFunc::kStrlen:
            expect_operands(1);
            break;
          case LibFunc::kStrncpy:
          case LibFunc::kMemcpy:
          case LibFunc::kMemset:
          case LibFunc::kMemmove:
            expect_operands(3);
            break;
          case LibFunc::kInputBytes:
            expect_operands(2);
            break;
        }
        for (size_t i = 0; i < inst.operands().size(); ++i) {
          const Type* t = inst.operand(i)->type();
          if (!t->IsPointer() && !t->IsInt()) {
            Error(where, "libcall operand must be pointer or integer");
          }
        }
        break;
      case Opcode::kMalloc:
        if (expect_operands(1)) {
          expect_int(0);
          if (!inst.type()->IsPointer()) {
            Error(where, "malloc must produce a pointer");
          }
        }
        break;
      case Opcode::kFree:
        if (expect_operands(1)) {
          expect_ptr(0);
        }
        break;
      case Opcode::kFuncAddr:
        expect_operands(0);
        if (inst.callee() == nullptr) {
          Error(where, "funcaddr without callee");
        }
        break;
      case Opcode::kGlobalAddr:
        expect_operands(0);
        if (inst.global() == nullptr) {
          Error(where, "globaladdr without global");
        }
        break;
      case Opcode::kBr:
        expect_operands(0);
        break;
      case Opcode::kCondBr:
        if (expect_operands(1)) {
          expect_int(0);
        }
        break;
      case Opcode::kRet: {
        const Type* ret = f.type()->return_type();
        if (ret->IsVoid()) {
          expect_operands(0);
        } else if (expect_operands(1)) {
          if (inst.operand(0)->type() != ret) {
            Error(where, "return value type mismatch");
          }
        }
        break;
      }
      case Opcode::kInput:
        expect_operands(0);
        break;
      case Opcode::kOutput:
        expect_operands(1);
        break;
      case Opcode::kIntrinsic: {
        const char* iname = IntrinsicName(inst.intrinsic());
        switch (inst.intrinsic()) {
          case IntrinsicId::kCpiStore:
          case IntrinsicId::kCpiStoreUni:
          case IntrinsicId::kCpsStore:
          case IntrinsicId::kCpsStoreUni:
          case IntrinsicId::kSbStore:
          case IntrinsicId::kSealStore:
            if (expect_operands(2)) {
              expect_ptr(0);
              const Type* vt = inst.operand(1)->type();
              if (!vt->IsInt() && !vt->IsFloat() && !vt->IsPointer()) {
                Error(where, std::string(iname) + ": stored value must be scalar");
              }
            }
            if (!inst.type()->IsVoid()) {
              Error(where, std::string(iname) + ": store intrinsic must produce void");
            }
            break;
          case IntrinsicId::kCpiLoad:
          case IntrinsicId::kCpiLoadUni:
          case IntrinsicId::kCpsLoad:
          case IntrinsicId::kCpsLoadUni:
          case IntrinsicId::kSbLoad:
          case IntrinsicId::kSealLoad:
            if (expect_operands(1)) {
              expect_ptr(0);
            }
            if (!inst.type()->IsInt() && !inst.type()->IsFloat() &&
                !inst.type()->IsPointer()) {
              Error(where, std::string(iname) + ": load intrinsic must produce a scalar");
            }
            break;
          case IntrinsicId::kCpiBoundsCheck:
          case IntrinsicId::kSbCheck:
            if (expect_operands(2)) {
              expect_ptr(0);
              expect_int(1);
            }
            if (!inst.type()->IsVoid()) {
              Error(where, std::string(iname) + ": check intrinsic must produce void");
            }
            break;
          case IntrinsicId::kCpiAssertCode:
          case IntrinsicId::kCpsAssertCode:
          case IntrinsicId::kCfiCheck:
          case IntrinsicId::kSealAssertCode:
            if (expect_operands(1)) {
              expect_ptr(0);
              if (inst.type() != inst.operand(0)->type()) {
                Error(where, std::string(iname) +
                                 ": assert result type must match its operand");
              }
            }
            break;
        }
        break;
      }
    }
  }

  const Module& module_;
  std::vector<std::string> errors_;
};

}  // namespace

std::vector<std::string> VerifyModule(const Module& module) { return Verifier(module).Run(); }

bool IsValid(const Module& module) { return VerifyModule(module).empty(); }

}  // namespace cpi::ir
