// Structural and type verification of modules.
//
// The verifier runs after construction and after every instrumentation pass;
// it is the IR-level analogue of `opt -verify`. It returns a list of
// human-readable errors (empty == valid).
#ifndef CPI_SRC_IR_VERIFIER_H_
#define CPI_SRC_IR_VERIFIER_H_

#include <string>
#include <vector>

#include "src/ir/module.h"

namespace cpi::ir {

std::vector<std::string> VerifyModule(const Module& module);

// Convenience for tests: true iff VerifyModule returns no errors.
bool IsValid(const Module& module);

}  // namespace cpi::ir

#endif  // CPI_SRC_IR_VERIFIER_H_
