#include "src/opt/analysis.h"

#include "src/ir/type.h"

namespace cpi::opt {

AllocaUses AnalyzeAllocaUses(const ir::Instruction* alloca) {
  CPI_CHECK(alloca->op() == ir::Opcode::kAlloca);
  AllocaUses out;
  for (ir::Instruction* user : alloca->users()) {
    switch (user->op()) {
      case ir::Opcode::kLoad:
        if (user->operand(0) == alloca) {
          out.loads.push_back(user);
          continue;
        }
        break;
      case ir::Opcode::kStore:
        // Address operand only; storing the alloca's address as a value is
        // an escape.
        if (user->operand(1) == alloca && user->operand(0) != alloca) {
          out.stores.push_back(user);
          continue;
        }
        break;
      default:
        break;
    }
    out.escapes = true;
  }
  return out;
}

bool MetaNoneAnalysis::DefinitelyNoMeta(const ir::Value* v) {
  using ir::BinOp;
  using ir::CastKind;
  using ir::Opcode;
  using ir::ValueKind;

  switch (v->value_kind()) {
    case ValueKind::kConstInt:
    case ValueKind::kConstFloat:
    case ValueKind::kConstNull:
      return true;  // constants evaluate with RegMeta::None
    case ValueKind::kArgument:
      return false;  // callers may pass pointers with provenance
    case ValueKind::kInstruction:
      break;
  }

  auto it = cache_.find(v);
  if (it != cache_.end()) {
    return it->second == 1;  // an in-progress cycle resolves pessimistically
  }
  cache_[v] = 0;

  const auto* inst = static_cast<const ir::Instruction*>(v);
  bool none = false;
  switch (inst->op()) {
    case Opcode::kLoad:
    case Opcode::kInput:
      none = true;  // the VM sets RegMeta::None on both
      break;
    case Opcode::kBinOp: {
      const BinOp op = inst->binop();
      if (op == BinOp::kAdd || op == BinOp::kSub) {
        // Add/sub propagate a safe operand's metadata.
        none = DefinitelyNoMeta(inst->operand(0)) && DefinitelyNoMeta(inst->operand(1));
      } else {
        none = true;  // every other binop produces RegMeta::None
      }
      break;
    }
    case Opcode::kCast:
      switch (inst->cast_kind()) {
        case CastKind::kIntToFloat:
        case CastKind::kFloatToInt:
          none = true;
          break;
        case CastKind::kTrunc:
          // A truncation below 64 bits strips metadata in the VM.
          none = (inst->type()->IsInt() &&
                  static_cast<const ir::IntType*>(inst->type())->bits() < 64) ||
                 DefinitelyNoMeta(inst->operand(0));
          break;
        default:
          none = DefinitelyNoMeta(inst->operand(0));  // casts forward metadata
          break;
      }
      break;
    case Opcode::kSelect:
      none = DefinitelyNoMeta(inst->operand(1)) && DefinitelyNoMeta(inst->operand(2));
      break;
    case Opcode::kLibCall:
      switch (inst->lib_func()) {
        case ir::LibFunc::kStrlen:
        case ir::LibFunc::kStrcmp:
        case ir::LibFunc::kInputBytes:
          none = true;  // integer results with RegMeta::None
          break;
        default:
          none = false;  // copy routines return the dst pointer + metadata
          break;
      }
      break;
    default:
      none = false;
      break;
  }
  cache_[v] = none ? 1 : -1;
  return none;
}

bool WritesMemory(const ir::Instruction* inst) {
  using ir::IntrinsicId;
  using ir::Opcode;
  switch (inst->op()) {
    case Opcode::kStore:
    case Opcode::kCall:
    case Opcode::kIndirectCall:
    // Thread ops are scheduling points: while the current thread is parked,
    // any other thread may write memory, so they clobber like calls do.
    case Opcode::kSpawn:
    case Opcode::kJoin:
    case Opcode::kYield:
      return true;
    case Opcode::kLibCall:
      return inst->lib_func() != ir::LibFunc::kStrlen &&
             inst->lib_func() != ir::LibFunc::kStrcmp;
    case Opcode::kIntrinsic:
      switch (inst->intrinsic()) {
        case IntrinsicId::kCpiStore:
        case IntrinsicId::kCpiStoreUni:
        case IntrinsicId::kCpsStore:
        case IntrinsicId::kCpsStoreUni:
        case IntrinsicId::kSbStore:
        case IntrinsicId::kSealStore:
          return true;
        default:
          return false;
      }
    default:
      return false;
  }
}

void EraseInstructions(ir::Function& function,
                       const std::unordered_set<const ir::Instruction*>& dead) {
  if (dead.empty()) {
    return;
  }
  for (const auto& bb : function.blocks()) {
    bool hit = false;
    for (const ir::Instruction* inst : bb->instructions()) {
      hit = hit || dead.count(inst) > 0;
    }
    if (!hit) {
      continue;
    }
    std::vector<ir::Instruction*> kept;
    kept.reserve(bb->instructions().size());
    for (ir::Instruction* inst : bb->instructions()) {
      if (dead.count(inst) == 0) {
        kept.push_back(inst);
      }
    }
    bb->ReplaceInstructions(std::move(kept));
  }
}

}  // namespace cpi::opt
