// Local analyses shared by the optimization passes: alloca escape analysis
// and register-metadata provenance.
//
// Both lean on the use-lists rebuilt by Module::RecomputeUses(); the pass
// manager guarantees they are current before any pass runs.
#ifndef CPI_SRC_OPT_ANALYSIS_H_
#define CPI_SRC_OPT_ANALYSIS_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/ir/function.h"

namespace cpi::opt {

// Simple escape analysis for one alloca: the object's address escapes unless
// every use is a direct scalar access — the address operand of a load, or
// the address (not value!) operand of a store. Field/index arithmetic,
// libcalls, calls, casts and intrinsics all count as escapes; so does
// storing the address itself somewhere.
struct AllocaUses {
  bool escapes = false;
  std::vector<ir::Instruction*> loads;   // kLoad through the alloca
  std::vector<ir::Instruction*> stores;  // kStore with the alloca as address
};

AllocaUses AnalyzeAllocaUses(const ir::Instruction* alloca);

// Conservative static check that a value's register never carries based-on
// metadata (vm::RegMeta::None()) no matter what the program does. Forwarding
// such a value in place of a plain load is exact: a plain load also produces
// a metadata-free register, so uses observe an identical (value, meta) pair.
//
// The VM's metadata propagation rules (machine.cc) drive the lattice:
// comparisons, non-add/sub arithmetic, float ops, narrowing truncations,
// int<->float casts, input words and plain loads all produce RegMeta::None;
// add/sub propagate a safe operand's metadata, so they qualify only when
// both operands qualify. Everything else (allocas, address producers, safe
// loads, calls, casts that forward metadata) is assumed tainted.
class MetaNoneAnalysis {
 public:
  bool DefinitelyNoMeta(const ir::Value* v);

 private:
  std::unordered_map<const ir::Value*, int> cache_;  // 0 in-progress, 1 yes, -1 no
};

// Drops `dead` from the function's blocks. The caller has already called
// DropOperandUses() on (and ReplaceAllUsesWith() away from) every member.
void EraseInstructions(ir::Function& function,
                       const std::unordered_set<const ir::Instruction*>& dead);

// True for every instruction that can write program memory — regular
// region, safe region, safe pointer store or shadow metadata: stores, store
// intrinsics, writing libcalls (strlen/strcmp are the only read-only ones),
// and calls (the callee may write). The single definition every pass's kill
// logic shares: an entry missing here silently breaks the O0/O1
// differential contract under attack.
bool WritesMemory(const ir::Instruction* inst);

}  // namespace cpi::opt

#endif  // CPI_SRC_OPT_ANALYSIS_H_
