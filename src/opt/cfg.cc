#include "src/opt/cfg.h"

#include <algorithm>

namespace cpi::opt {

std::vector<const ir::BasicBlock*> Cfg::successors(const ir::BasicBlock* bb) const {
  std::vector<const ir::BasicBlock*> out;
  if (bb->HasTerminator()) {
    const ir::Instruction* term = bb->terminator();
    for (size_t i = 0; i < term->successor_count(); ++i) {
      out.push_back(term->successor(i));
    }
  }
  return out;
}

Cfg::Cfg(const ir::Function& function) : function_(&function) {
  CPI_CHECK(!function.blocks().empty());

  // Iterative postorder DFS from the entry. Each frame owns its successor
  // list, computed once at push time.
  struct DfsFrame {
    const ir::BasicBlock* bb;
    std::vector<const ir::BasicBlock*> succs;
    size_t next = 0;
  };
  std::unordered_map<const ir::BasicBlock*, int> state;  // 0 new, 1 open, 2 done
  std::vector<const ir::BasicBlock*> postorder;
  std::vector<DfsFrame> stack;
  const ir::BasicBlock* entry = function.entry();
  stack.push_back(DfsFrame{entry, successors(entry)});
  state[entry] = 1;
  while (!stack.empty()) {
    DfsFrame& frame = stack.back();
    if (frame.next < frame.succs.size()) {
      const ir::BasicBlock* s = frame.succs[frame.next++];
      const int st = state[s];
      if (st == 1) {
        has_back_edge_ = true;  // edge into an open block: a cycle
      } else if (st == 0) {
        state[s] = 1;
        stack.push_back(DfsFrame{s, successors(s)});
      }
    } else {
      state[frame.bb] = 2;
      postorder.push_back(frame.bb);
      stack.pop_back();
    }
  }

  rpo_.assign(postorder.rbegin(), postorder.rend());
  for (size_t i = 0; i < rpo_.size(); ++i) {
    rpo_index_[rpo_[i]] = i;
    preds_[rpo_[i]];  // ensure an entry exists even with no predecessors
  }
  for (const ir::BasicBlock* bb : rpo_) {
    for (const ir::BasicBlock* s : successors(bb)) {
      if (IsReachable(s)) {
        preds_[s].push_back(bb);
      }
    }
  }
}

}  // namespace cpi::opt
