// Control-flow graph view of an ir::Function.
//
// The IR itself only stores successor pointers on terminators; the optimizer
// needs predecessors, a reverse-postorder walk and reachability, so this
// builds them once per function. Blocks unreachable from the entry are
// excluded from the RPO (passes skip them — they never execute).
#ifndef CPI_SRC_OPT_CFG_H_
#define CPI_SRC_OPT_CFG_H_

#include <unordered_map>
#include <vector>

#include "src/ir/function.h"

namespace cpi::opt {

class Cfg {
 public:
  explicit Cfg(const ir::Function& function);

  const ir::Function& function() const { return *function_; }

  // Blocks reachable from the entry, in reverse postorder (entry first).
  const std::vector<const ir::BasicBlock*>& rpo() const { return rpo_; }

  bool IsReachable(const ir::BasicBlock* bb) const { return rpo_index_.count(bb) > 0; }
  // Position of `bb` in rpo(); bb must be reachable.
  size_t RpoIndex(const ir::BasicBlock* bb) const {
    auto it = rpo_index_.find(bb);
    CPI_CHECK(it != rpo_index_.end());
    return it->second;
  }

  const std::vector<const ir::BasicBlock*>& predecessors(const ir::BasicBlock* bb) const {
    auto it = preds_.find(bb);
    CPI_CHECK(it != preds_.end());
    return it->second;
  }
  std::vector<const ir::BasicBlock*> successors(const ir::BasicBlock* bb) const;

  // True when some reachable terminator branches to a block that does not
  // come later in the RPO — i.e. the function has a loop. Passes whose
  // reasoning assumes every instruction executes at most once per call
  // consult this.
  bool HasBackEdge() const { return has_back_edge_; }

 private:
  const ir::Function* function_;
  std::vector<const ir::BasicBlock*> rpo_;
  std::unordered_map<const ir::BasicBlock*, size_t> rpo_index_;
  std::unordered_map<const ir::BasicBlock*, std::vector<const ir::BasicBlock*>> preds_;
  bool has_back_edge_ = false;
};

}  // namespace cpi::opt

#endif  // CPI_SRC_OPT_CFG_H_
