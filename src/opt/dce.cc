// Dead-code elimination for instructions the optimizer itself orphaned.
//
// Seeded exclusively from PipelineContext::orphaned — the operand
// instructions of everything the earlier passes deleted — plus whatever the
// sweep cascades into. Pre-existing dead code is deliberately left alone: it
// also executes in the vanilla baseline, and removing it only on the
// instrumented side would make protection overheads read better than they
// are (a protected run must never beat the baseline it is measured against).
//
// Within the seeded set, an instruction is removed only when its result has
// no remaining uses AND executing it can affect nothing but the cycle
// counter. That excludes, beyond the obvious (stores, calls, terminators):
//   - integer div/rem (divide-by-zero crashes are observable behaviour);
//   - loads and every intrinsic (they touch memory, the cache, the safe
//     store, or can trap — the redundancy passes are the ones entitled to
//     remove them, against a proven-identical instance);
//   - kInput (consumes the input stream; removal would shift later reads);
//   - kFuncAddr (its existence defines the coarse-CFI valid-target set via
//     Module::ComputeAddressTaken);
//   - kAlloca (frame layout is program-visible: alloca addresses flow into
//     registers, and attack payloads are crafted against the concrete
//     layout).
#include "src/opt/analysis.h"
#include "src/opt/pass_manager.h"

namespace cpi::opt {
namespace {

using ir::BinOp;
using ir::Instruction;
using ir::Opcode;

bool IsRemovablePure(const Instruction* inst) {
  switch (inst->op()) {
    case Opcode::kBinOp:
      switch (inst->binop()) {
        case BinOp::kSDiv:
        case BinOp::kUDiv:
        case BinOp::kSRem:
        case BinOp::kURem:
          return false;  // may crash on a zero divisor
        default:
          return true;
      }
    case Opcode::kCast:
    case Opcode::kSelect:
    case Opcode::kFieldAddr:
    case Opcode::kIndexAddr:
    case Opcode::kGlobalAddr:
      return true;  // pure register computations; address *computation* does
                    // not touch memory
    default:
      return false;
  }
}

class DcePass final : public Pass {
 public:
  const char* name() const override { return "dce"; }

  bool Run(ir::Module& module, PipelineContext& ctx, PassStats& stats) override {
    if (!HasInstrumentation(module) || ctx.orphaned.empty()) {
      return false;  // see HasInstrumentation: -O2-modelled baseline
    }
    bool changed = false;
    for (const auto& f : module.functions()) {
      // Only block-resident seeds: an orphan may itself have been deleted by
      // a later elimination already.
      std::unordered_set<const Instruction*> resident;
      for (const auto& bb : f->blocks()) {
        for (const Instruction* inst : bb->instructions()) {
          resident.insert(inst);
        }
      }
      std::vector<Instruction*> worklist;
      for (const auto& bb : f->blocks()) {
        for (Instruction* inst : bb->instructions()) {
          if (ctx.orphaned.count(inst) > 0) {
            worklist.push_back(inst);
          }
        }
      }
      std::unordered_set<const Instruction*> dead;
      while (!worklist.empty()) {
        Instruction* inst = worklist.back();
        worklist.pop_back();
        if (dead.count(inst) > 0 || resident.count(inst) == 0 || inst->HasUses() ||
            !IsRemovablePure(inst)) {
          continue;
        }
        // Capture operands before unregistering, then cascade into them.
        std::vector<ir::Value*> ops(inst->operands().begin(), inst->operands().end());
        inst->DropOperandUses();
        dead.insert(inst);
        ++stats.removed_instructions;
        for (ir::Value* op : ops) {
          if (op->value_kind() == ir::ValueKind::kInstruction && !op->HasUses()) {
            worklist.push_back(static_cast<Instruction*>(op));
          }
        }
      }
      changed = changed || !dead.empty();
      EraseInstructions(*f, dead);
    }
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> CreateDcePass() { return std::make_unique<DcePass>(); }

}  // namespace cpi::opt
