#include "src/opt/dominators.h"

namespace cpi::opt {

DominatorTree::DominatorTree(const Cfg& cfg) : cfg_(&cfg) {
  const auto& rpo = cfg.rpo();
  const size_t n = rpo.size();
  constexpr size_t kUndef = static_cast<size_t>(-1);
  idom_.assign(n, kUndef);
  idom_[0] = 0;  // entry

  auto intersect = [&](size_t a, size_t b) {
    while (a != b) {
      while (a > b) {
        a = idom_[a];
      }
      while (b > a) {
        b = idom_[b];
      }
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 1; i < n; ++i) {
      size_t new_idom = kUndef;
      for (const ir::BasicBlock* p : cfg.predecessors(rpo[i])) {
        const size_t pi = cfg.RpoIndex(p);
        if (idom_[pi] == kUndef) {
          continue;  // not yet processed
        }
        new_idom = new_idom == kUndef ? pi : intersect(pi, new_idom);
      }
      CPI_CHECK(new_idom != kUndef);  // reachable => has a processed pred
      if (idom_[i] != new_idom) {
        idom_[i] = new_idom;
        changed = true;
      }
    }
  }

  for (const ir::BasicBlock* bb : rpo) {
    for (size_t k = 0; k < bb->instructions().size(); ++k) {
      positions_[bb->instructions()[k]] = InstPos{bb, k};
    }
  }
}

const ir::BasicBlock* DominatorTree::idom(const ir::BasicBlock* bb) const {
  const size_t i = cfg_->RpoIndex(bb);
  return i == 0 ? nullptr : cfg_->rpo()[idom_[i]];
}

bool DominatorTree::Dominates(const ir::BasicBlock* a, const ir::BasicBlock* b) const {
  const size_t ai = cfg_->RpoIndex(a);
  size_t bi = cfg_->RpoIndex(b);
  while (bi > ai) {
    bi = idom_[bi];
  }
  return bi == ai;
}

bool DominatorTree::Dominates(const ir::Instruction* a, const ir::Instruction* b) const {
  auto ita = positions_.find(a);
  auto itb = positions_.find(b);
  CPI_CHECK(ita != positions_.end() && itb != positions_.end());
  if (ita->second.block == itb->second.block) {
    return ita->second.index < itb->second.index;
  }
  return Dominates(ita->second.block, itb->second.block);
}

const ir::BasicBlock* DominatorTree::BlockOf(const ir::Instruction* inst) const {
  auto it = positions_.find(inst);
  return it == positions_.end() ? nullptr : it->second.block;
}

bool DominatorTree::DominatesAllReachableUses(const ir::Instruction* def) const {
  for (const ir::Instruction* user : def->users()) {
    if (BlockOf(user) != nullptr && !Dominates(def, user)) {
      return false;
    }
  }
  return true;
}

}  // namespace cpi::opt
