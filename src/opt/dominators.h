// Dominator tree over a Cfg (Cooper/Harvey/Kennedy's iterative algorithm).
//
// Supports both block-level and instruction-level dominance queries; the
// redundancy-elimination pass uses the latter to decide whether an earlier
// identical expression can stand in for a later one.
#ifndef CPI_SRC_OPT_DOMINATORS_H_
#define CPI_SRC_OPT_DOMINATORS_H_

#include <unordered_map>

#include "src/opt/cfg.h"

namespace cpi::opt {

class DominatorTree {
 public:
  explicit DominatorTree(const Cfg& cfg);

  // Immediate dominator; nullptr for the entry block.
  const ir::BasicBlock* idom(const ir::BasicBlock* bb) const;

  // Reflexive: Dominates(b, b) is true. Both blocks must be reachable.
  bool Dominates(const ir::BasicBlock* a, const ir::BasicBlock* b) const;

  // Instruction-level: true when `a` executes before `b` on every path that
  // reaches `b` (same block: `a` strictly earlier; different blocks: a's
  // block dominates b's block). Both must be block-resident and reachable.
  bool Dominates(const ir::Instruction* a, const ir::Instruction* b) const;

  // The block an instruction resides in; nullptr when it is not resident in
  // a reachable block.
  const ir::BasicBlock* BlockOf(const ir::Instruction* inst) const;

  // Gate for ReplaceAllUsesWith-based rewrites. The verifier does not
  // enforce dominance, so a user may execute *before* `def` and read its
  // register pre-definition; rewiring such a user would change what that
  // read observes. True when every user that can execute (lives in a
  // reachable block) is dominated by `def` — unreachable users never run,
  // so rewiring them is harmless.
  bool DominatesAllReachableUses(const ir::Instruction* def) const;

  const Cfg& cfg() const { return *cfg_; }

 private:
  const Cfg* cfg_;
  // idom, indexed by RPO position; entry maps to itself.
  std::vector<size_t> idom_;
  // Block + index of every block-resident instruction, for same-block order
  // queries.
  struct InstPos {
    const ir::BasicBlock* block = nullptr;
    size_t index = 0;
  };
  std::unordered_map<const ir::Instruction*, InstPos> positions_;
};

}  // namespace cpi::opt

#endif  // CPI_SRC_OPT_DOMINATORS_H_
