// Mem2reg-style promotion of non-escaping scalar safe-stack allocas.
//
// The pass forwards loads of a single-store alloca to the stored value and
// deletes the loads; the store and the alloca themselves are kept. That
// split matters for the O0/O1 differential contract:
//
//   - Only *safe-stack* residents (StackKind::kSafe under an active safe
//     stack) are promoted. The safe region is unreachable to memory errors
//     by construction (§3.2.3 isolation), so the slot provably holds the
//     stored value at every dominated load — even while an attack is
//     actively corrupting regular memory. A default-stack scalar enjoys no
//     such guarantee: an overflow in an adjacent buffer may legally change
//     what the O0 load observes, and forwarding would mask it.
//   - Keeping the store and alloca keeps frame layout and memory contents
//     bit-identical to O0. Alloca addresses are program-visible values and
//     attack payloads are crafted against the concrete layout; a removed
//     read is invisible to both, a moved frame slot is not.
//   - The stored value must provably carry no based-on metadata
//     (MetaNoneAnalysis): a plain load produces a metadata-free register,
//     and forwarding must reproduce that exact (value, meta) pair.
//
// Loops: a load observes the *most recent* execution of the store, so the
// forwarded value's own definition must not be able to re-execute between
// the store and the load. Constants and arguments never re-execute; an
// instruction defined in the store's own block re-executes only together
// with the store; in an acyclic CFG nothing re-executes at all.
#include <unordered_map>

#include "src/opt/analysis.h"
#include "src/opt/dominators.h"
#include "src/opt/pass_manager.h"

namespace cpi::opt {
namespace {

using ir::Instruction;
using ir::Opcode;
using ir::StackKind;
using ir::Value;

class Mem2RegPass final : public Pass {
 public:
  const char* name() const override { return "mem2reg"; }

  bool Run(ir::Module& module, PipelineContext& ctx, PassStats& stats) override {
    // Only safe-stack slots are attack-immune (see above), and — like every
    // pass — the work must target instrumentation overhead
    // (HasInstrumentation), not program-level redundancy the vanilla
    // baseline also carries.
    if (!module.protection().safe_stack || !HasInstrumentation(module)) {
      return false;
    }
    bool changed = false;
    for (const auto& f : module.functions()) {
      if (f->blocks().empty()) {
        continue;
      }
      changed = PromoteInFunction(*f, ctx, stats) || changed;
    }
    return changed;
  }

 private:
  bool PromoteInFunction(ir::Function& f, PipelineContext& ctx, PassStats& stats) {
    const Cfg cfg(f);
    const DominatorTree dt(cfg);
    MetaNoneAnalysis meta;

    // Block residency, for reachability and same-block checks.
    std::unordered_map<const Instruction*, const ir::BasicBlock*> block_of;
    for (const auto& bb : f.blocks()) {
      for (const Instruction* inst : bb->instructions()) {
        block_of[inst] = bb.get();
      }
    }
    auto reachable = [&](const Instruction* inst) {
      auto it = block_of.find(inst);
      return it != block_of.end() && cfg.IsReachable(it->second);
    };

    std::unordered_set<const Instruction*> dead;
    for (const auto& bb : f.blocks()) {
      if (!cfg.IsReachable(bb.get())) {
        continue;
      }
      for (Instruction* inst : bb->instructions()) {
        if (inst->op() != Opcode::kAlloca || inst->stack_kind() != StackKind::kSafe) {
          continue;
        }
        const ir::Type* t = inst->extra_type();
        if (!t->IsInt() && !t->IsFloat() && !t->IsPointer()) {
          continue;  // direct scalar accesses only
        }

        const AllocaUses uses = AnalyzeAllocaUses(inst);
        if (uses.escapes || uses.stores.size() != 1 || uses.loads.empty()) {
          continue;
        }
        Instruction* store = uses.stores[0];
        Value* value = store->operand(0);
        if (value->type() != t || !reachable(store)) {
          continue;
        }
        if (!meta.DefinitelyNoMeta(value)) {
          continue;
        }
        if (!ValueStableAcrossReexecution(value, store, cfg, dt, block_of)) {
          continue;
        }

        for (Instruction* load : uses.loads) {
          if (dead.count(load) > 0 || !reachable(load) || !dt.Dominates(store, load)) {
            continue;
          }
          // A use-before-def user would read the load's register before the
          // load ran; rewiring it would change that read (verifier-legal IR).
          if (!dt.DominatesAllReachableUses(load)) {
            continue;
          }
          load->ReplaceAllUsesWith(value);
          ctx.RecordOperands(load);
          load->DropOperandUses();
          dead.insert(load);
          ++stats.forwarded_loads;
          ++stats.removed_instructions;
        }
      }
    }

    EraseInstructions(f, dead);
    return !dead.empty();
  }

  // The slot's content at a dominated load equals the value operand's
  // register only if the operand cannot be (re)defined between the store and
  // the load. Constants and arguments are immutable; an instruction operand
  // must execute *before* the store (dominate it), and — when the CFG has
  // loops — must sit in the store's own block so a re-execution of the
  // definition always re-executes the store with it.
  static bool ValueStableAcrossReexecution(
      const Value* value, const Instruction* store, const Cfg& cfg,
      const DominatorTree& dt,
      const std::unordered_map<const Instruction*, const ir::BasicBlock*>& block_of) {
    if (value->IsConstant() || value->value_kind() == ir::ValueKind::kArgument) {
      return true;
    }
    if (value->value_kind() != ir::ValueKind::kInstruction) {
      return false;
    }
    const auto* def = static_cast<const Instruction*>(value);
    auto dit = block_of.find(def);
    auto sit = block_of.find(store);
    if (dit == block_of.end() || !cfg.IsReachable(dit->second) ||
        !dt.Dominates(def, store)) {
      return false;
    }
    return !cfg.HasBackEdge() || dit->second == sit->second;
  }
};

}  // namespace

std::unique_ptr<Pass> CreateMem2RegPass() { return std::make_unique<Mem2RegPass>(); }

}  // namespace cpi::opt
