// The optimization-pass interface and its statistics record.
//
// A pass rewrites a module in place. It may delete block-resident
// instructions (after DropOperandUses) and rewire values with
// ReplaceAllUsesWith, but must keep use-lists exact: the pass manager
// rebuilds them once before the pipeline and verifies the module after every
// pass, so a buggy pass fails loudly rather than corrupting a later one.
#ifndef CPI_SRC_OPT_PASS_H_
#define CPI_SRC_OPT_PASS_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/ir/module.h"

namespace cpi::opt {

// Per-pass statistics, reported through core::CompileOutput into the
// Table 2-style compile-stats bench.
struct PassStats {
  std::string pass;
  uint64_t removed_instructions = 0;  // block-resident instructions deleted
  uint64_t eliminated_checks = 0;     // bounds/assert/CFI checks among them
  uint64_t eliminated_safe_store_ops = 0;  // safe-store get/set intrinsics
  uint64_t eliminated_seal_ops = 0;        // PtrEnc seal/auth intrinsics
  uint64_t forwarded_loads = 0;            // loads replaced by a known value
  uint64_t leaf_ret_elisions = 0;          // pure-leaf frames whose return
                                           // token skips PAC sign/auth
};

// State shared along one pipeline run. `orphaned` collects the operand
// instructions of everything the passes deleted: dead-code elimination is
// *seeded* from this set (plus its transitive operands), so it only sweeps
// code that the optimizer itself orphaned. Pre-existing dead code also
// exists in the vanilla baseline — removing it would make protected runs
// faster than the baseline they are measured against.
struct PipelineContext {
  std::unordered_set<const ir::Instruction*> orphaned;

  // Call right before DropOperandUses() on an instruction being deleted.
  void RecordOperands(const ir::Instruction* inst) {
    for (const ir::Value* v : inst->operands()) {
      if (v->value_kind() == ir::ValueKind::kInstruction) {
        orphaned.insert(static_cast<const ir::Instruction*>(v));
      }
    }
  }
};

class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;
  // Returns true when the module changed.
  virtual bool Run(ir::Module& module, PipelineContext& ctx, PassStats& stats) = 0;
};

// True when instrumentation inserted runtime intrinsics into the module.
// The optimizer is an intentional no-op on uninstrumented modules: the
// workload generators model binaries already compiled at -O2 (the paper's
// baseline), so the only redundancy in scope is what instrumentation
// introduces — and keeping vanilla runs byte-identical across opt levels
// keeps every overhead denominator stable.
inline bool HasInstrumentation(const ir::Module& module) {
  const ir::ProtectionFlags& p = module.protection();
  return p.cpi || p.cps || p.softbound || p.cfi || p.ptrenc;
}

}  // namespace cpi::opt

#endif  // CPI_SRC_OPT_PASS_H_
