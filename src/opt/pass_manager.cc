#include "src/opt/pass_manager.h"

#include <cstdio>

#include "src/ir/verifier.h"

namespace cpi::opt {

void PassManager::Add(std::unique_ptr<Pass> pass) {
  CPI_CHECK(pass != nullptr);
  passes_.push_back(std::move(pass));
}

OptReport PassManager::Run(ir::Module& module) {
  module.RecomputeUses();

  OptReport report;
  PipelineContext ctx;
  for (const auto& pass : passes_) {
    PassStats stats;
    stats.pass = pass->name();
    const bool changed = pass->Run(module, ctx, stats);
    if (changed) {
      // Deleted instructions leave register-id gaps; keep the VM's register
      // file dense.
      for (const auto& f : module.functions()) {
        f->RenumberValues();
      }
    }
    const std::vector<std::string> errors = ir::VerifyModule(module);
    for (const std::string& e : errors) {
      std::fprintf(stderr, "after pass %s: %s\n", pass->name(), e.c_str());
    }
    CPI_CHECK(errors.empty());
    report.passes.push_back(std::move(stats));
  }
  return report;
}

}  // namespace cpi::opt
