// Runs an ordered pipeline of optimization passes over a module.
//
// Invariants enforced here rather than in every pass:
//   - use-lists are rebuilt (Module::RecomputeUses) before the first pass;
//   - after every pass the module is re-numbered and re-verified
//     (ir::VerifyModule) — ARCHITECTURE.md's "verify after every pass" rule;
//   - per-pass statistics are collected into an OptReport.
#ifndef CPI_SRC_OPT_PASS_MANAGER_H_
#define CPI_SRC_OPT_PASS_MANAGER_H_

#include <memory>

#include "src/opt/pass.h"

namespace cpi::opt {

struct OptReport {
  std::vector<PassStats> passes;

  uint64_t TotalRemoved() const {
    uint64_t n = 0;
    for (const PassStats& s : passes) {
      n += s.removed_instructions;
    }
    return n;
  }
  uint64_t TotalEliminatedChecks() const {
    uint64_t n = 0;
    for (const PassStats& s : passes) {
      n += s.eliminated_checks;
    }
    return n;
  }
};

class PassManager {
 public:
  void Add(std::unique_ptr<Pass> pass);

  // Runs the pipeline; the module must verify on entry and is left verified,
  // re-numbered and with exact use-lists.
  OptReport Run(ir::Module& module);

  size_t size() const { return passes_.size(); }

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

// --- standard pipeline ------------------------------------------------------
// Factories for the built-in passes; core::Compiler assembles the pipeline
// (standard passes, then scheme-contributed cleanup, then DCE last).
std::unique_ptr<Pass> CreateMem2RegPass();
std::unique_ptr<Pass> CreateRedundancyEliminationPass();
std::unique_ptr<Pass> CreateSealElisionPass();
std::unique_ptr<Pass> CreateDcePass();

}  // namespace cpi::opt

#endif  // CPI_SRC_OPT_PASS_MANAGER_H_
