// Dominated-duplicate elimination for safe-store gets, bounds checks and
// code-pointer asserts — the pass that recovers the paper's premise that
// instrumentation is optimized after insertion (§5.2).
//
// Only instrumentation intrinsics are ever deleted. The program-level
// instructions around them (address arithmetic, loads, stores) also exist in
// the vanilla build and are left untouched, so an optimized protected run
// differs from its O0 counterpart exactly by folded *instrumentation* work —
// overhead numbers shrink and can never artificially invert against an
// unoptimized baseline.
//
// Identity. The instrumentation rewrites re-emit address computations per
// access site, so the same field address appears as many distinct
// instructions and naive operand-pointer keys never match. Candidates are
// therefore keyed on *value numbers*: constants canonicalize by value, and
// frame-invariant expressions — pure computations over constants, arguments,
// globaladdr and funcaddr, which rewrite their register with identical bits
// on every execution within a frame — canonicalize structurally. Everything
// else keys on operand identity.
//
// A candidate X is redundant when an identical instance M dominates it and
// *no path from M to X contains a kill* of the expression. Then every
// execution reaching X has executed M since the last event that could change
// the expression's outcome, so M either produced the same (value, metadata)
// register — X's uses are rewired onto M — or, for void checks, already
// enforced the same predicate (had X been due to fail, M would have failed
// first and the run never reaches X).
//
// Kills model everything that can change an expression's outcome between two
// instances. The VM is deterministic and single-threaded, so state changes
// only when the program itself acts:
//   - safe-store / shadow / sealed-slot gets are killed by every instruction
//     that can write memory (stores, store intrinsics, writing libcalls,
//     calls) — this is also what makes the elimination sound under *active
//     attacks*: an attack corrupts memory through program writes, and every
//     such write kills;
//   - bounds checks additionally depend on temporal liveness: they are
//     killed by free and by calls (a callee may free) — unless the module
//     contains no free instruction at all, in which case the temporal state
//     provably never changes and even an arbitrary hijacked control transfer
//     cannot free anything;
//   - asserts are deterministic functions of their operand registers;
//   - every expression is killed when a non-invariant operand's register is
//     redefined, i.e. when the operand's defining instruction (or, after a
//     rewire, the master standing in for it — always a generator of the
//     operand's own key) executes.
//
// The no-kill-path condition is checked exactly: a per-(key, master) taint
// propagation marks every block reachable from the master through a path
// containing a kill; a re-execution of the master itself resets the taint
// (its register is fresh again). Rewires can make further instances
// identical (asserts keyed on a deleted load), so the pass re-collects and
// repeats until a fixpoint.
#include <cstring>
#include <map>
#include <tuple>
#include <unordered_map>

#include "src/opt/analysis.h"
#include "src/opt/dominators.h"
#include "src/opt/pass_manager.h"

namespace cpi::opt {
namespace {

using ir::Instruction;
using ir::IntrinsicId;
using ir::Opcode;
using ir::Value;

enum class ExprKind {
  kSafeLoad,   // safe-store / shadow / sealed-slot get: killed by memory writes
  kTempCheck,  // bounds check: killed by free (and calls, if the module frees)
  kAssert,     // code-pointer assert: pure in the operand register
};

bool ClassifyIntrinsic(IntrinsicId id, ExprKind* kind) {
  switch (id) {
    case IntrinsicId::kCpiLoad:
    case IntrinsicId::kCpiLoadUni:
    case IntrinsicId::kCpsLoad:
    case IntrinsicId::kCpsLoadUni:
    case IntrinsicId::kSbLoad:
    case IntrinsicId::kSealLoad:
      *kind = ExprKind::kSafeLoad;
      return true;
    case IntrinsicId::kCpiBoundsCheck:
    case IntrinsicId::kSbCheck:
      *kind = ExprKind::kTempCheck;
      return true;
    case IntrinsicId::kCpiAssertCode:
    case IntrinsicId::kCpsAssertCode:
    case IntrinsicId::kCfiCheck:
    case IntrinsicId::kSealAssertCode:
      *kind = ExprKind::kAssert;
      return true;
    default:
      return false;
  }
}

struct Position {
  size_t block = 0;  // RPO index
  size_t index = 0;  // position within the block
};

// Expression identity: intrinsic id + result type + operand value numbers
// (the result type guards against two loads routed through the same
// universal-pointer address at different types).
using ExprKey = std::tuple<IntrinsicId, const void*, const void*, const void*>;

// Where a safe-load's address provably points, for the one alias refinement
// the attack model admits (see the kill-positions comment below).
enum class AddrClass {
  kBareGlobal,  // address is exactly a globaladdr result: fixed global slot
  kBareAlloca,  // address is exactly one alloca's result: that frame slot
  kOther,       // anything derived: may point anywhere once corrupted
};

struct ExprInfo {
  ExprKind kind = ExprKind::kSafeLoad;
  AddrClass addr_class = AddrClass::kOther;      // safe loads only
  const Value* addr_alloca = nullptr;            // the alloca when kBareAlloca
  std::vector<Instruction*> generators;  // every instance, in RPO scan order
  // Sorted kill positions, per RPO block.
  std::vector<std::vector<size_t>> kills;
};

// Value numbering scoped to one function. A frame-invariant expression —
// constants, arguments, globaladdr/funcaddr, and pure computations over them
// — rewrites its register with identical bits on every execution within a
// frame, so distinct instances are interchangeable regardless of when they
// ran. Everything else numbers by identity, and the kill sets take over the
// timing argument.
class ValueNumbering {
 public:
  const void* Number(const Value* v) {
    switch (v->value_kind()) {
      case ir::ValueKind::kConstInt:
        return CanonConst(0, v->type(), static_cast<const ir::ConstantInt*>(v)->value());
      case ir::ValueKind::kConstFloat: {
        const double d = static_cast<const ir::ConstantFloat*>(v)->value();
        uint64_t bits = 0;
        std::memcpy(&bits, &d, sizeof(bits));
        return CanonConst(1, v->type(), bits);
      }
      case ir::ValueKind::kConstNull:
        return CanonConst(2, v->type(), 0);
      case ir::ValueKind::kArgument:
        return v;
      case ir::ValueKind::kInstruction:
        break;
    }
    auto it = vn_.find(v);
    if (it != vn_.end()) {
      return it->second;
    }
    const auto* inst = static_cast<const Instruction*>(v);
    const void* n = v;  // identity unless frame-invariant
    if (IsInvariant(v)) {
      InvKey key{static_cast<int>(inst->op()), 0, inst->type(), nullptr, {}};
      switch (inst->op()) {
        case Opcode::kGlobalAddr:
          key.aux = inst->global();
          break;
        case Opcode::kFuncAddr:
          key.aux = inst->callee();
          break;
        case Opcode::kBinOp:
          key.payload = static_cast<uint64_t>(inst->binop());
          break;
        case Opcode::kCast:
          key.payload = static_cast<uint64_t>(inst->cast_kind());
          break;
        case Opcode::kFieldAddr:
          key.payload = inst->field_index();
          break;
        default:
          break;
      }
      for (const Value* op : inst->operands()) {
        key.operands.push_back(Number(op));
      }
      n = invariants_.emplace(key, v).first->second;
    }
    vn_[v] = n;
    return n;
  }

  // Frame-invariant: every execution rewrites the register with the same
  // bits. Arguments are written once per frame (no instruction can redefine
  // an argument register); globaladdr/funcaddr yield program constants.
  bool IsInvariant(const Value* v) {
    if (v->IsConstant() || v->value_kind() == ir::ValueKind::kArgument) {
      return true;
    }
    if (v->value_kind() != ir::ValueKind::kInstruction) {
      return false;
    }
    auto it = inv_cache_.find(v);
    if (it != inv_cache_.end()) {
      return it->second == 1;  // in-progress cycles resolve pessimistically
    }
    inv_cache_[v] = 0;
    const auto* inst = static_cast<const Instruction*>(v);
    bool invariant = false;
    switch (inst->op()) {
      case Opcode::kGlobalAddr:
      case Opcode::kFuncAddr:
        invariant = true;
        break;
      case Opcode::kBinOp:
      case Opcode::kCast:
      case Opcode::kSelect:
      case Opcode::kFieldAddr:
      case Opcode::kIndexAddr: {
        invariant = true;
        for (const Value* op : inst->operands()) {
          invariant = invariant && IsInvariant(op);
        }
        break;
      }
      default:
        break;
    }
    inv_cache_[v] = invariant ? 1 : -1;
    return invariant;
  }

 private:
  struct InvKey {
    int op;
    uint64_t payload;
    const void* type;
    const void* aux;
    std::vector<const void*> operands;
    bool operator<(const InvKey& o) const {
      return std::tie(op, payload, type, aux, operands) <
             std::tie(o.op, o.payload, o.type, o.aux, o.operands);
    }
  };

  const void* CanonConst(int kind, const ir::Type* type, uint64_t bits) {
    const auto key = std::make_tuple(kind, static_cast<const void*>(type), bits);
    auto [it, fresh] = consts_.emplace(key, nullptr);
    if (fresh) {
      it->second = &it->first;  // stable unique address per constant value
    }
    return it->second;
  }

  std::unordered_map<const Value*, const void*> vn_;
  std::unordered_map<const Value*, int> inv_cache_;
  std::map<InvKey, const Value*> invariants_;
  std::map<std::tuple<int, const void*, uint64_t>, const void*> consts_;
};

class RedundancyEliminationPass final : public Pass {
 public:
  const char* name() const override { return "redundant-check-elim"; }

  bool Run(ir::Module& module, PipelineContext& ctx, PassStats& stats) override {
    if (!HasInstrumentation(module)) {
      return false;  // see HasInstrumentation: -O2-modelled baseline
    }
    bool module_frees = false;
    for (const auto& f : module.functions()) {
      for (const auto& bb : f->blocks()) {
        for (const Instruction* inst : bb->instructions()) {
          module_frees = module_frees || inst->op() == Opcode::kFree;
        }
      }
    }

    bool changed = false;
    for (int round = 0; round < 8; ++round) {
      bool round_changed = false;
      for (const auto& f : module.functions()) {
        if (f->blocks().empty()) {
          continue;
        }
        round_changed = RunOnFunction(*f, module_frees, ctx, stats) || round_changed;
      }
      changed = changed || round_changed;
      if (!round_changed) {
        break;
      }
    }
    return changed;
  }

 private:
  bool RunOnFunction(ir::Function& f, bool module_frees, PipelineContext& ctx,
                     PassStats& stats) {
    const Cfg cfg(f);
    const DominatorTree dt(cfg);
    const auto& rpo = cfg.rpo();
    const size_t nblocks = rpo.size();

    // --- collect candidates ------------------------------------------------
    ValueNumbering vn;
    std::map<ExprKey, size_t> index;
    std::vector<ExprInfo> exprs;
    std::unordered_map<const Instruction*, size_t> expr_of;
    std::unordered_map<const Instruction*, Position> pos;
    std::unordered_set<const Instruction*> dead;

    for (size_t b = 0; b < nblocks; ++b) {
      for (size_t i = 0; i < rpo[b]->instructions().size(); ++i) {
        Instruction* inst = rpo[b]->instructions()[i];
        pos[inst] = Position{b, i};
        if (inst->op() != Opcode::kIntrinsic) {
          continue;
        }
        ExprKind kind;
        if (!ClassifyIntrinsic(inst->intrinsic(), &kind)) {
          continue;
        }
        // Fold asserts over a direct function address immediately: a
        // FuncAddr register provably satisfies every assert variant (it is
        // Code-tagged, and a CFI target is address-taken by this very
        // instruction), so the check is statically true.
        if (kind == ExprKind::kAssert &&
            inst->operand(0)->value_kind() == ir::ValueKind::kInstruction &&
            static_cast<const Instruction*>(inst->operand(0))->op() == Opcode::kFuncAddr) {
          // The fold is only exact when the FuncAddr has actually executed
          // by the time the assert reads its register (use-before-def IR is
          // verifier-legal: pre-definition the register holds a plain zero
          // and the assert rightly fires at O0) and when no user of the
          // assert can run before it.
          auto* fa = static_cast<Instruction*>(inst->operand(0));
          if (dt.BlockOf(fa) != nullptr && dt.Dominates(fa, inst) &&
              dt.DominatesAllReachableUses(inst)) {
            Retire(inst, fa, kind, ctx, dead, stats);
            continue;
          }
        }
        const void* a = vn.Number(inst->operand(0));
        const void* b_op =
            inst->operands().size() > 1 ? vn.Number(inst->operand(1)) : nullptr;
        const ExprKey key{inst->intrinsic(), inst->type(), a, b_op};
        auto [it, fresh] = index.emplace(key, exprs.size());
        if (fresh) {
          ExprInfo info;
          info.kind = kind;
          info.kills.resize(nblocks);
          if (kind == ExprKind::kSafeLoad &&
              inst->operand(0)->value_kind() == ir::ValueKind::kInstruction) {
            const auto* addr = static_cast<const Instruction*>(inst->operand(0));
            if (addr->op() == Opcode::kGlobalAddr) {
              info.addr_class = AddrClass::kBareGlobal;
            } else if (addr->op() == Opcode::kAlloca) {
              info.addr_class = AddrClass::kBareAlloca;
              info.addr_alloca = addr;
            }
          }
          exprs.push_back(std::move(info));
        }
        exprs[it->second].generators.push_back(inst);
        expr_of[inst] = it->second;
      }
    }
    if (exprs.empty()) {
      EraseInstructions(f, dead);
      return !dead.empty();
    }

    // Expressions killed when a given instruction executes, because it
    // redefines a non-invariant register the expression's operands read.
    // Invariant definitions are exempt: re-execution rewrites the register
    // with identical bits. Registering every generator of an operand's own
    // key keeps this correct across rewires (see header comment).
    std::unordered_map<const Instruction*, std::vector<size_t>> redef_kills;
    for (const auto& [ignored, ei] : index) {
      (void)ignored;
      for (const Instruction* g : exprs[ei].generators) {
        for (const Value* v : g->operands()) {
          if (v->value_kind() != ir::ValueKind::kInstruction || vn.IsInvariant(v)) {
            continue;
          }
          const auto* def = static_cast<const Instruction*>(v);
          redef_kills[def].push_back(ei);
          auto dep = expr_of.find(def);
          if (dep != expr_of.end()) {
            for (Instruction* other : exprs[dep->second].generators) {
              if (other != def) {
                redef_kills[other].push_back(ei);
              }
            }
          }
        }
      }
    }

    // --- kill positions ----------------------------------------------------
    // One alias refinement survives the attack model: a plain store whose
    // address operand *is* an alloca result writes exactly that frame slot —
    // the register holds the alloca's own address, so the write can reach
    // neither a global's fixed slot nor a different alloca's slot, no matter
    // what an attacker corrupted elsewhere. (Any derived address — indexed,
    // cast, loaded — may point anywhere once corrupted and kills
    // conservatively.) This is what lets safe-store gets survive the
    // alloca-based loop-counter updates every loop body performs.
    const bool calls_may_free = module_frees;
    for (size_t b = 0; b < nblocks; ++b) {
      for (size_t i = 0; i < rpo[b]->instructions().size(); ++i) {
        const Instruction* inst = rpo[b]->instructions()[i];
        const bool writes = WritesMemory(inst);
        const bool frees =
            inst->op() == Opcode::kFree ||
            (calls_may_free && (inst->op() == Opcode::kCall ||
                                inst->op() == Opcode::kIndirectCall ||
                                inst->op() == Opcode::kSpawn ||
                                inst->op() == Opcode::kJoin ||
                                inst->op() == Opcode::kYield));
        const Value* confined_to = nullptr;  // the one alloca a bare store hits
        if (inst->op() == Opcode::kStore &&
            inst->operand(1)->value_kind() == ir::ValueKind::kInstruction &&
            static_cast<const Instruction*>(inst->operand(1))->op() == Opcode::kAlloca) {
          confined_to = inst->operand(1);
        }
        if (writes || frees) {
          for (ExprInfo& e : exprs) {
            bool killed = (writes && e.kind == ExprKind::kSafeLoad) ||
                          (frees && e.kind == ExprKind::kTempCheck);
            if (killed && confined_to != nullptr &&
                (e.addr_class == AddrClass::kBareGlobal ||
                 (e.addr_class == AddrClass::kBareAlloca &&
                  e.addr_alloca != confined_to))) {
              killed = false;  // provably disjoint slots
            }
            if (killed) {
              e.kills[b].push_back(i);
            }
          }
        }
        auto it = redef_kills.find(inst);
        if (it != redef_kills.end()) {
          for (size_t ei : it->second) {
            auto& ks = exprs[ei].kills[b];
            if (ks.empty() || ks.back() != i) {
              ks.push_back(i);
            }
          }
        }
      }
    }

    // --- transform -----------------------------------------------------------
    // Cache of taint vectors per (expr, master).
    std::map<std::pair<size_t, const Instruction*>, std::vector<char>> taint_cache;

    auto has_kill_between = [&](const ExprInfo& e, size_t b, size_t lo, size_t hi) {
      for (size_t k : e.kills[b]) {
        if (k > lo && k < hi) {
          return true;
        }
      }
      return false;
    };
    auto has_kill_after = [&](const ExprInfo& e, size_t b, size_t p) {
      return !e.kills[b].empty() && e.kills[b].back() > p;
    };
    auto has_kill_before = [&](const ExprInfo& e, size_t b, size_t p) {
      return !e.kills[b].empty() && e.kills[b].front() < p;
    };

    // Taint[b]: some path from the master's execution to b's entry contains
    // a kill. Re-entering the master's block re-executes the master, so its
    // outgoing contribution depends only on kills *after* the master.
    auto taint_for = [&](size_t ei, const Instruction* master) -> const std::vector<char>& {
      auto key = std::make_pair(ei, master);
      auto cached = taint_cache.find(key);
      if (cached != taint_cache.end()) {
        return cached->second;
      }
      const ExprInfo& e = exprs[ei];
      const Position mp = pos.at(master);
      std::vector<char> taint(nblocks, 0);
      bool changed = true;
      while (changed) {
        changed = false;
        for (size_t b = 0; b < nblocks; ++b) {
          if (taint[b]) {
            continue;
          }
          char t = 0;
          for (const ir::BasicBlock* p : cfg.predecessors(rpo[b])) {
            const size_t pb = cfg.RpoIndex(p);
            if (pb == mp.block) {
              t = t || has_kill_after(e, pb, mp.index);
            } else {
              t = t || taint[pb] || !e.kills[pb].empty();
            }
            if (t) {
              break;
            }
          }
          if (t) {
            taint[b] = 1;
            changed = true;
          }
        }
      }
      return taint_cache.emplace(key, std::move(taint)).first->second;
    };

    auto kill_free_from = [&](size_t ei, const Instruction* master,
                              const Instruction* cand) {
      const ExprInfo& e = exprs[ei];
      const Position mp = pos.at(master);
      const Position cp = pos.at(cand);
      if (mp.block == cp.block && mp.index < cp.index) {
        return !has_kill_between(e, mp.block, mp.index, cp.index);
      }
      const std::vector<char>& taint = taint_for(ei, master);
      return !taint[cp.block] && !has_kill_before(e, cp.block, cp.index);
    };

    for (size_t b = 0; b < nblocks; ++b) {
      for (Instruction* inst : rpo[b]->instructions()) {
        auto it = expr_of.find(inst);
        if (it == expr_of.end() || dead.count(inst) > 0) {
          continue;
        }
        const ExprInfo& e = exprs[it->second];
        // Rewiring is only exact when no user can execute before this
        // instance and read its register pre-definition (use-before-def is
        // verifier-legal).
        if (e.kind != ExprKind::kTempCheck && !dt.DominatesAllReachableUses(inst)) {
          continue;
        }
        for (Instruction* master : e.generators) {
          if (master == inst || dead.count(master) > 0 || !dt.Dominates(master, inst)) {
            continue;
          }
          if (kill_free_from(it->second, master, inst)) {
            Retire(inst, master, e.kind, ctx, dead, stats);
            break;
          }
        }
      }
    }

    EraseInstructions(f, dead);
    return !dead.empty();
  }

  static void Retire(Instruction* inst, Instruction* master, ExprKind kind,
                     PipelineContext& ctx,
                     std::unordered_set<const Instruction*>& dead, PassStats& stats) {
    if (kind != ExprKind::kTempCheck) {
      inst->ReplaceAllUsesWith(master);
    }
    ctx.RecordOperands(inst);
    inst->DropOperandUses();
    dead.insert(inst);
    ++stats.removed_instructions;
    switch (inst->intrinsic()) {
      case IntrinsicId::kCpiLoad:
      case IntrinsicId::kCpiLoadUni:
      case IntrinsicId::kCpsLoad:
      case IntrinsicId::kCpsLoadUni:
      case IntrinsicId::kSbLoad:
        ++stats.eliminated_safe_store_ops;
        break;
      case IntrinsicId::kSealLoad:
        ++stats.eliminated_seal_ops;
        break;
      case IntrinsicId::kSealAssertCode:
        ++stats.eliminated_seal_ops;
        ++stats.eliminated_checks;
        break;
      default:
        ++stats.eliminated_checks;
        break;
    }
  }
};

}  // namespace

std::unique_ptr<Pass> CreateRedundancyEliminationPass() {
  return std::make_unique<RedundancyEliminationPass>();
}

}  // namespace cpi::opt
