// Seal→auth pair elision and leaf-frame return-token elision for PtrEnc
// (contributed by the ptrenc scheme via
// ProtectionScheme::ContributeOptPasses).
//
// Leaf frames: a function that provably cannot write memory or transfer
// control — no stores, store intrinsics, writing libcalls, calls, or heap
// ops — cannot touch its own saved return token between prologue and
// epilogue, and nothing else runs while its frame is live (the VM is
// single-threaded). The epilogue *authenticate* on that token is therefore
// unobservable and elided (the PAC deployments the scheme models make the
// corresponding leaf-function optimization). The prologue sign — and with
// it every byte the frame leaves in memory, live or stale — stays exactly
// as at O0, so no program read can ever tell the levels apart; only the
// authenticate work disappears.
//
// Pattern: a kSealStore writes a freshly-taken function address to a slot
// and a kSealLoad reads the same slot back with *no possible memory write in
// between* (straight-line, kill on anything that can write — the VM is
// deterministic and single-threaded, so with no intervening write the slot
// provably still holds the sealed word, even mid-attack). The load's
// authenticate then provably succeeds and strips back to the stored
// address with Code metadata — exactly the FuncAddr register — so the load
// is elided and its uses read the FuncAddr result directly. The store (and
// its seal) stays: the slot's contents must remain bit-identical for later
// loads, attacks and memory dumps.
//
// Only FuncAddr-produced values qualify: for any other stored value the
// sealing decision depends on runtime metadata (kSealStore only seals
// Code-tagged words), which a static pass cannot reproduce exactly.
#include <memory>
#include <unordered_map>

#include "src/opt/analysis.h"
#include "src/opt/dominators.h"
#include "src/opt/pass_manager.h"

namespace cpi::opt {
namespace {

using ir::Instruction;
using ir::IntrinsicId;
using ir::Opcode;
using ir::Value;

// Nothing in the function can write memory or leave the frame: loads,
// address/register arithmetic, read-only libcalls, seal loads/asserts,
// I/O and control flow only.
bool IsPureLeaf(const ir::Function& f) {
  for (const auto& bb : f.blocks()) {
    for (const Instruction* inst : bb->instructions()) {
      switch (inst->op()) {
        case Opcode::kStore:
        case Opcode::kCall:
        case Opcode::kIndirectCall:
        case Opcode::kMalloc:
        case Opcode::kFree:
        // Thread ops hand control to other threads (which may write
        // anything) and spawn itself writes the new thread's stacks.
        case Opcode::kSpawn:
        case Opcode::kJoin:
        case Opcode::kYield:
          return false;
        case Opcode::kLibCall:
          if (inst->lib_func() != ir::LibFunc::kStrlen &&
              inst->lib_func() != ir::LibFunc::kStrcmp) {
            return false;
          }
          break;
        case Opcode::kIntrinsic:
          if (WritesMemory(inst)) {
            return false;
          }
          break;
        default:
          break;
      }
    }
  }
  return true;
}

class SealElisionPass final : public Pass {
 public:
  const char* name() const override { return "seal-elision"; }

  bool Run(ir::Module& module, PipelineContext& ctx, PassStats& stats) override {
    if (!module.protection().ptrenc) {
      return false;
    }
    bool changed = false;
    for (const auto& f : module.functions()) {
      std::unordered_set<const Instruction*> dead;
      // Built on demand, for the use-before-def guard on rewires.
      std::unique_ptr<Cfg> cfg;
      std::unique_ptr<DominatorTree> dt;
      for (const auto& bb : f->blocks()) {
        // addr value -> funcaddr value sealed into that slot by the latest
        // tracked kSealStore.
        std::unordered_map<const Value*, Value*> tracked;
        for (Instruction* inst : bb->instructions()) {
          if (inst->op() == Opcode::kIntrinsic &&
              inst->intrinsic() == IntrinsicId::kSealStore) {
            // A seal store to one slot may alias every tracked slot (two
            // address values can coincide at run time): drop everything,
            // then track this store if its value qualifies. Qualifying also
            // requires the FuncAddr to have executed by the time the store
            // reads its register (use-before-def IR is verifier-legal:
            // pre-definition the register holds a plain zero and the store
            // seals nothing), which per-block tracking alone cannot see
            // when the definition lives in another block.
            tracked.clear();
            Value* v = inst->operand(1);
            if (v->value_kind() == ir::ValueKind::kInstruction &&
                static_cast<Instruction*>(v)->op() == Opcode::kFuncAddr) {
              if (dt == nullptr) {
                cfg = std::make_unique<Cfg>(*f);
                dt = std::make_unique<DominatorTree>(*cfg);
              }
              auto* fa = static_cast<Instruction*>(v);
              if (dt->BlockOf(fa) != nullptr && dt->BlockOf(inst) != nullptr &&
                  dt->Dominates(fa, inst)) {
                tracked[inst->operand(0)] = v;
              }
            }
            continue;
          }
          if (inst->op() == Opcode::kIntrinsic &&
              inst->intrinsic() == IntrinsicId::kSealLoad) {
            auto it = tracked.find(inst->operand(0));
            if (it != tracked.end()) {
              if (dt == nullptr) {
                cfg = std::make_unique<Cfg>(*f);
                dt = std::make_unique<DominatorTree>(*cfg);
              }
              // A use-before-def user would read the load's register before
              // the load ran; rewiring it would change that read
              // (verifier-legal IR).
              if (dt->DominatesAllReachableUses(inst)) {
                inst->ReplaceAllUsesWith(it->second);
                ctx.RecordOperands(inst);
                inst->DropOperandUses();
                dead.insert(inst);
                ++stats.removed_instructions;
                ++stats.eliminated_seal_ops;  // the elided authenticate
                ++stats.forwarded_loads;
              }
            }
            continue;  // reads don't invalidate tracking
          }
          if (WritesMemory(inst)) {
            tracked.clear();
            continue;
          }
          // A (re)definition of a tracked address or value register breaks
          // the slot/value association for subsequent loads. This can only
          // happen with use-before-def IR (the verifier does not enforce
          // dominance; a register may be read before its defining
          // instruction runs, holding a previous block-execution's value),
          // but such IR is legal, so the guard stays.
          for (auto it = tracked.begin(); it != tracked.end();) {
            if (it->first == inst || it->second == inst) {
              it = tracked.erase(it);
            } else {
              ++it;
            }
          }
        }
      }
      changed = changed || !dead.empty();
      EraseInstructions(*f, dead);

      if (!f->blocks().empty() && !f->ret_token_elidable() && IsPureLeaf(*f)) {
        f->set_ret_token_elidable(true);
        ++stats.leaf_ret_elisions;
        changed = true;
      }
    }
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> CreateSealElisionPass() {
  return std::make_unique<SealElisionPass>();
}

}  // namespace cpi::opt
