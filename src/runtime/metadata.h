// Safe-pointer-store entry: the value of a protected pointer plus its
// based-on metadata (Fig. 2: value | upper | lower | id).
#ifndef CPI_SRC_RUNTIME_METADATA_H_
#define CPI_SRC_RUNTIME_METADATA_H_

#include <cstdint>

namespace cpi::runtime {

enum class EntryKind : uint8_t {
  kNone = 0,  // no safe value at this address (location holds a regular value)
  kData = 1,  // sensitive data pointer with object bounds
  kCode = 2,  // code pointer; bounds are exactly [value, value]
};

struct SafeEntry {
  uint64_t value = 0;
  uint64_t lower = 0;
  uint64_t upper = 0;        // exclusive: the object occupies [lower, upper)
  uint64_t temporal_id = 0;  // 0 = static lifetime (globals, code)
  EntryKind kind = EntryKind::kNone;

  bool IsPresent() const { return kind != EntryKind::kNone; }

  // §3.2.2: universal pointers cast from non-sensitive values carry "invalid"
  // metadata (lower > upper) so they can never address the safe region.
  bool HasValidBounds() const { return lower <= upper; }

  // Spatial check for an access of `size` bytes at `addr`: the access must
  // start inside [lower, upper) and end at or before upper (the bound is
  // exclusive, so `addr == upper` is already out of bounds).
  bool InBounds(uint64_t addr, uint64_t size) const {
    return HasValidBounds() && addr >= lower && addr < upper && size <= upper - addr;
  }

  static SafeEntry Data(uint64_t value, uint64_t lower, uint64_t upper, uint64_t temporal_id) {
    return SafeEntry{value, lower, upper, temporal_id, EntryKind::kData};
  }
  static SafeEntry Code(uint64_t value) {
    // A code pointer's "object" is the single entry address: [value, value+1).
    return SafeEntry{value, value, value + 1, 0, EntryKind::kCode};
  }
  static SafeEntry Invalid(uint64_t value) {
    // lower > upper: never in bounds anywhere.
    return SafeEntry{value, 1, 0, 0, EntryKind::kData};
  }
};

// Size of one entry as laid out in the safe region; used for cache modelling
// and for the memory-overhead accounting of §5.2.
inline constexpr uint64_t kSafeEntryBytes = 32;

// Register-level metadata that travels with pointer values while they live in
// (virtual) registers — the v(b,e) "safe value" of the Appendix A semantics.
// Stores into the safe pointer store persist it; loads recover it.
struct RegMeta {
  uint64_t lower = 0;
  uint64_t upper = 0;
  uint64_t temporal_id = 0;
  EntryKind kind = EntryKind::kNone;  // kNone: a regular (unsafe) value

  bool IsSafeValue() const { return kind != EntryKind::kNone; }
  // Same exclusive-upper convention as SafeEntry::InBounds.
  bool InBounds(uint64_t addr, uint64_t size) const {
    return lower <= upper && addr >= lower && addr < upper && size <= upper - addr;
  }

  static RegMeta FromEntry(const SafeEntry& e) {
    return RegMeta{e.lower, e.upper, e.temporal_id, e.kind};
  }
  static RegMeta Data(uint64_t lower, uint64_t upper, uint64_t temporal_id) {
    return RegMeta{lower, upper, temporal_id, EntryKind::kData};
  }
  static RegMeta Code(uint64_t value) {
    return RegMeta{value, value + 1, 0, EntryKind::kCode};
  }
  static RegMeta Invalid() { return RegMeta{1, 0, 0, EntryKind::kData}; }
  static RegMeta None() { return RegMeta{}; }
};

}  // namespace cpi::runtime

#endif  // CPI_SRC_RUNTIME_METADATA_H_
