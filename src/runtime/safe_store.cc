// The three safe-pointer-store organisations (§4).
#include "src/runtime/safe_store.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "src/support/check.h"
#include "src/support/oom.h"

namespace cpi::runtime {

namespace {

// Logical base of the safe region in the VM's address space; entry addresses
// synthesised below this base feed the cache model. The actual isolation of
// this region is enforced by construction (regular memory operations cannot
// form addresses into it; see src/vm/memory.h).
constexpr uint64_t kSafeStoreBase = 0x6000'0000'0000ULL;

uint64_t SlotOf(uint64_t addr) { return addr >> 3; }

// ---------------------------------------------------------------------------
// Sparse direct-mapped array. One entry per 8-byte slot of the regular
// region, materialised in page-sized chunks on first touch — the "simple
// array relying on sparse address space support of the underlying OS" that
// §4 found fastest (with superpages). Memory cost is highest: every touched
// page reserves entries for all of its slots.
class ArrayStore final : public SafePointerStore {
 public:
  static constexpr uint64_t kSlotsPerPage = 1 << 16;  // 2 MB superpage of entries

  StoreKind kind() const override { return StoreKind::kArray; }

  void Set(uint64_t addr, const SafeEntry& entry, TouchList* touched) override {
    const uint64_t slot = SlotOf(addr);
    Page& page = GetPage(slot / kSlotsPerPage);
    SafeEntry& dst = page.entries[slot % kSlotsPerPage];
    if (!dst.IsPresent() && entry.IsPresent()) {
      ++live_entries_;
    } else if (dst.IsPresent() && !entry.IsPresent()) {
      --live_entries_;
    }
    dst = entry;
    Touch(slot, touched);
  }

  SafeEntry Get(uint64_t addr, TouchList* touched) const override {
    const uint64_t slot = SlotOf(addr);
    Touch(slot, touched);
    auto it = pages_.find(slot / kSlotsPerPage);
    if (it == pages_.end()) {
      return SafeEntry{};
    }
    return it->second->entries[slot % kSlotsPerPage];
  }

  void Clear(uint64_t addr, TouchList* touched) override {
    const uint64_t slot = SlotOf(addr);
    Touch(slot, touched);
    auto it = pages_.find(slot / kSlotsPerPage);
    if (it == pages_.end()) {
      return;
    }
    SafeEntry& dst = it->second->entries[slot % kSlotsPerPage];
    if (dst.IsPresent()) {
      --live_entries_;
    }
    dst = SafeEntry{};
  }

  uint64_t MemoryBytes() const override {
    return pages_.size() * kSlotsPerPage * kSafeEntryBytes;
  }

  uint64_t EntryCount() const override { return live_entries_; }

  bool CorruptEntry(uint64_t which, uint64_t xor_mask) override {
    if (live_entries_ == 0 || xor_mask == 0) {
      return false;
    }
    // pages_ iterates in hash order; scan page ids sorted so the corrupted
    // entry is a deterministic function of (which, store contents).
    std::vector<uint64_t> ids;
    ids.reserve(pages_.size());
    for (const auto& [id, page] : pages_) {
      (void)page;
      ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());
    uint64_t target = which % live_entries_;
    for (uint64_t id : ids) {
      for (SafeEntry& e : pages_[id]->entries) {
        if (!e.IsPresent()) {
          continue;
        }
        if (target-- == 0) {
          e.value ^= xor_mask;
          return true;
        }
      }
    }
    return false;
  }

 private:
  struct Page {
    SafeEntry entries[kSlotsPerPage];
  };

  static void Touch(uint64_t slot, TouchList* touched) {
    if (touched != nullptr) {
      // Direct-mapped: exactly one safe-region access, at an address whose
      // locality mirrors the program's own access locality.
      touched->Add(kSafeStoreBase + slot * kSafeEntryBytes);
    }
  }

  Page& GetPage(uint64_t page_id) {
    auto it = pages_.find(page_id);
    if (it == pages_.end()) {
      ConsumeGrowthAllocation();
      it = pages_.emplace(page_id, std::make_unique<Page>()).first;
    }
    return *it->second;
  }

  std::unordered_map<uint64_t, std::unique_ptr<Page>> pages_;
  uint64_t live_entries_ = 0;
};

// ---------------------------------------------------------------------------
// Two-level lookup table: a directory indexed by the high slot bits pointing
// at second-level tables — the layout Intel MPX uses for its bound tables
// (§4 "Future MPX-based implementation"). Each operation touches the
// directory and the table entry.
class TwoLevelStore final : public SafePointerStore {
 public:
  static constexpr uint64_t kSecondLevelSlots = 1 << 12;

  StoreKind kind() const override { return StoreKind::kTwoLevel; }

  void Set(uint64_t addr, const SafeEntry& entry, TouchList* touched) override {
    const uint64_t slot = SlotOf(addr);
    Touch(slot, touched);
    Table& table = GetTable(slot / kSecondLevelSlots);
    SafeEntry& dst = table.entries[slot % kSecondLevelSlots];
    if (!dst.IsPresent() && entry.IsPresent()) {
      ++live_entries_;
    } else if (dst.IsPresent() && !entry.IsPresent()) {
      --live_entries_;
    }
    dst = entry;
  }

  SafeEntry Get(uint64_t addr, TouchList* touched) const override {
    const uint64_t slot = SlotOf(addr);
    Touch(slot, touched);
    auto it = tables_.find(slot / kSecondLevelSlots);
    if (it == tables_.end()) {
      return SafeEntry{};
    }
    return it->second->entries[slot % kSecondLevelSlots];
  }

  void Clear(uint64_t addr, TouchList* touched) override {
    const uint64_t slot = SlotOf(addr);
    Touch(slot, touched);
    auto it = tables_.find(slot / kSecondLevelSlots);
    if (it == tables_.end()) {
      return;
    }
    SafeEntry& dst = it->second->entries[slot % kSecondLevelSlots];
    if (dst.IsPresent()) {
      --live_entries_;
    }
    dst = SafeEntry{};
  }

  uint64_t MemoryBytes() const override {
    if (tables_.empty()) {
      return 0;  // nothing materialised: a scheme that never stores pays nothing
    }
    // Directory (8 bytes per present table, rounded to a page) + tables.
    const uint64_t directory = 4096;
    return directory + tables_.size() * kSecondLevelSlots * kSafeEntryBytes;
  }

  uint64_t EntryCount() const override { return live_entries_; }

  bool CorruptEntry(uint64_t which, uint64_t xor_mask) override {
    if (live_entries_ == 0 || xor_mask == 0) {
      return false;
    }
    std::vector<uint64_t> ids;
    ids.reserve(tables_.size());
    for (const auto& [id, table] : tables_) {
      (void)table;
      ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());
    uint64_t target = which % live_entries_;
    for (uint64_t id : ids) {
      for (SafeEntry& e : tables_[id]->entries) {
        if (!e.IsPresent()) {
          continue;
        }
        if (target-- == 0) {
          e.value ^= xor_mask;
          return true;
        }
      }
    }
    return false;
  }

 private:
  struct Table {
    SafeEntry entries[kSecondLevelSlots];
  };

  static void Touch(uint64_t slot, TouchList* touched) {
    if (touched != nullptr) {
      const uint64_t dir_index = slot / kSecondLevelSlots;
      // Directory probe, then the entry in the second-level table.
      touched->Add(kSafeStoreBase + dir_index * 8);
      touched->Add(kSafeStoreBase + 0x1000'0000ULL + slot * kSafeEntryBytes);
    }
  }

  Table& GetTable(uint64_t table_id) {
    auto it = tables_.find(table_id);
    if (it == tables_.end()) {
      ConsumeGrowthAllocation();
      it = tables_.emplace(table_id, std::make_unique<Table>()).first;
    }
    return *it->second;
  }

  std::unordered_map<uint64_t, std::unique_ptr<Table>> tables_;
  uint64_t live_entries_ = 0;
};

// ---------------------------------------------------------------------------
// Open-addressing hash table with linear probing. Most memory-frugal (only
// live entries occupy space) but each operation costs one-plus-probes
// scattered safe-region touches, which is why §4 measured it slower than the
// array.
class HashStore final : public SafePointerStore {
 public:
  // `touch_bias` offsets every synthesised touch address; the sharded
  // wrapper gives each shard a disjoint bias so the cache model never
  // aliases two shards' independent probe sequences (slot indices are
  // per-table insertion history, unlike the array/two-level organisations
  // whose touch addresses are pure functions of the global slot).
  explicit HashStore(uint64_t touch_bias = 0) : touch_bias_(touch_bias) {}

  StoreKind kind() const override { return StoreKind::kHash; }

  // Pre-size to the smallest power-of-two table that holds `entries` live
  // entries below the rehash trigger.
  void Reserve(uint64_t entries) override {
    size_t target = kInitialSlots;
    while (NeedsGrowth(entries, target)) {
      target *= 2;
    }
    if (target > slots_.size()) {
      RehashTo(target);
    }
  }

  void Set(uint64_t addr, const SafeEntry& entry, TouchList* touched) override {
    if (!entry.IsPresent()) {
      Clear(addr, touched);
      return;
    }
    // The table materialises on first insertion, so an execution that never
    // stores a protected pointer reports zero resident safe-store memory.
    if (slots_.empty() || NeedsGrowth(live_entries_ + tombstones_, slots_.size())) {
      Rehash();
    }
    const uint64_t key = SlotOf(addr);
    uint64_t index = HashOf(key) & (slots_.size() - 1);
    // Probe for an existing live entry first; a key may live beyond a
    // tombstone, so insertion must not stop at the first reusable slot.
    size_t reusable = slots_.size();
    for (;;) {
      Slot& s = slots_[index];
      Touch(index, touched);
      if (s.state == SlotState::kLive && s.key == key) {
        s.entry = entry;
        return;
      }
      if (s.state == SlotState::kTombstone && reusable == slots_.size()) {
        reusable = index;
      }
      if (s.state == SlotState::kEmpty) {
        Slot& dst = reusable != slots_.size() ? slots_[reusable] : s;
        if (dst.state == SlotState::kTombstone) {
          --tombstones_;
        }
        dst.state = SlotState::kLive;
        dst.key = key;
        dst.entry = entry;
        ++live_entries_;
        return;
      }
      index = (index + 1) & (slots_.size() - 1);
    }
  }

  SafeEntry Get(uint64_t addr, TouchList* touched) const override {
    if (slots_.empty()) {
      return SafeEntry{};
    }
    const uint64_t key = SlotOf(addr);
    uint64_t index = HashOf(key) & (slots_.size() - 1);
    for (;;) {
      const Slot& s = slots_[index];
      Touch(index, touched);
      if (s.state == SlotState::kEmpty) {
        return SafeEntry{};
      }
      if (s.state == SlotState::kLive && s.key == key) {
        return s.entry;
      }
      index = (index + 1) & (slots_.size() - 1);
    }
  }

  void Clear(uint64_t addr, TouchList* touched) override {
    if (slots_.empty()) {
      return;
    }
    const uint64_t key = SlotOf(addr);
    uint64_t index = HashOf(key) & (slots_.size() - 1);
    for (;;) {
      Slot& s = slots_[index];
      Touch(index, touched);
      if (s.state == SlotState::kEmpty) {
        return;
      }
      if (s.state == SlotState::kLive && s.key == key) {
        s.state = SlotState::kTombstone;
        --live_entries_;
        ++tombstones_;
        return;
      }
      index = (index + 1) & (slots_.size() - 1);
    }
  }

  uint64_t MemoryBytes() const override { return slots_.size() * (kSafeEntryBytes + 16); }

  uint64_t EntryCount() const override { return live_entries_; }

  bool CorruptEntry(uint64_t which, uint64_t xor_mask) override {
    if (live_entries_ == 0 || xor_mask == 0) {
      return false;
    }
    // slots_ is a flat vector: index order is already deterministic.
    uint64_t target = which % live_entries_;
    for (Slot& s : slots_) {
      if (s.state != SlotState::kLive) {
        continue;
      }
      if (target-- == 0) {
        s.entry.value ^= xor_mask;
        return true;
      }
    }
    return false;
  }

 private:
  static constexpr size_t kInitialSlots = 1024;  // power of two

  enum class SlotState : uint8_t { kEmpty, kLive, kTombstone };
  struct Slot {
    SlotState state = SlotState::kEmpty;
    uint64_t key = 0;
    SafeEntry entry;
  };

  // The one load-factor rule (0.7, counting tombstones): shared by Set's
  // rehash trigger and Reserve's pre-sizing so they can never disagree.
  static bool NeedsGrowth(uint64_t occupied, size_t size) {
    return (occupied + 1) * 10 > size * 7;
  }

  static uint64_t Hash(uint64_t key) {
    // SplitMix64 finaliser: good avalanche for sequential addresses.
    uint64_t z = key + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Probe-start hash with a one-entry memo: CopyRange/MoveRange snapshots
  // issue Clear/Set (and Get/Set) pairs against the same slot key back to
  // back, so the second operation reuses the first one's hash.
  uint64_t HashOf(uint64_t key) const {
    if (key != memo_key_) {
      memo_key_ = key;
      memo_hash_ = Hash(key);
    }
    return memo_hash_;
  }

  void Touch(uint64_t index, TouchList* touched) const {
    if (touched != nullptr) {
      touched->Add(kSafeStoreBase + 0x2000'0000ULL + touch_bias_ +
                   index * (kSafeEntryBytes + 16));
    }
  }

  void Rehash() { RehashTo(std::max(slots_.size() * 2, kInitialSlots)); }

  void RehashTo(size_t new_size) {
    ConsumeGrowthAllocation();
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_size, Slot{});
    live_entries_ = 0;
    tombstones_ = 0;
    memo_key_ = ~0ULL;  // probe starts depend on the table size
    for (const Slot& s : old) {
      if (s.state == SlotState::kLive) {
        Set(s.key << 3, s.entry, nullptr);
      }
    }
  }

  std::vector<Slot> slots_;
  uint64_t live_entries_ = 0;
  uint64_t tombstones_ = 0;
  const uint64_t touch_bias_ = 0;
  mutable uint64_t memo_key_ = ~0ULL;
  mutable uint64_t memo_hash_ = 0;
};

// ---------------------------------------------------------------------------
// Sharded wrapper: per-thread write-local shards (§3.2.3 scaled out). Every
// key routes to exactly one of `count` private instances of the base
// organisation, so the shards partition the key space and never contend on
// shared structures — the mostly-lock-free design whose modeled cost the VM
// charges per shard crossing. State per key is identical at any shard count;
// only residency (per-shard pages/tables) and hash-probe neighbourhoods
// change, which is the same speed/memory trade-off §4 describes per
// organisation.
class ShardedStore final : public SafePointerStore {
 public:
  // Touch-address bias stride between hash shards: far larger than any
  // realistic table so shards' probe addresses never collide.
  static constexpr uint64_t kHashShardBias = 1ULL << 36;

  ShardedStore(StoreKind kind, uint32_t count, ShardFn shard_of)
      : kind_(kind), count_(count), shard_of_(shard_of) {
    shards_.reserve(count);
    for (uint32_t s = 0; s < count; ++s) {
      if (kind == StoreKind::kHash) {
        shards_.push_back(std::make_unique<HashStore>(s * kHashShardBias));
      } else {
        shards_.push_back(CreateSafeStore(kind));
      }
      // A global InjectAllocFailure must keep global-order semantics:
      // whichever shard grows next consumes the shared countdown.
      LinkGrowthFailure(*shards_.back(), *this);
    }
  }

  StoreKind kind() const override { return kind_; }
  uint32_t ShardCount() const override { return count_; }

  void Set(uint64_t addr, const SafeEntry& entry, TouchList* touched) override {
    ShardFor(addr).Set(addr, entry, touched);
  }
  SafeEntry Get(uint64_t addr, TouchList* touched) const override {
    return ShardFor(addr).Get(addr, touched);
  }
  void Clear(uint64_t addr, TouchList* touched) override {
    ShardFor(addr).Clear(addr, touched);
  }

  void Reserve(uint64_t entries) override {
    // Conservative: keys are not uniformly distributed over shards (routing
    // is by home region), so every shard pre-sizes for the full set.
    for (auto& s : shards_) {
      s->Reserve(entries);
    }
  }

  uint64_t MemoryBytes() const override {
    uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s->MemoryBytes();
    }
    return total;
  }

  uint64_t EntryCount() const override {
    uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s->EntryCount();
    }
    return total;
  }

  bool CorruptEntry(uint64_t which, uint64_t xor_mask) override {
    // Deterministic global order: shards in index order, each shard's own
    // organisation-specific order within.
    const uint64_t live = EntryCount();
    if (live == 0 || xor_mask == 0) {
      return false;
    }
    uint64_t target = which % live;
    for (auto& s : shards_) {
      const uint64_t n = s->EntryCount();
      if (target < n) {
        return s->CorruptEntry(target, xor_mask);
      }
      target -= n;
    }
    return false;
  }

  bool CorruptEntryInShard(uint32_t shard, uint64_t which, uint64_t xor_mask) override {
    CPI_CHECK(shard < count_);
    return shards_[shard]->CorruptEntry(which, xor_mask);
  }

  void InjectShardAllocFailure(uint32_t shard, uint64_t countdown) override {
    CPI_CHECK(shard < count_);
    // The shard's own countdown takes priority over the linked global one.
    shards_[shard]->InjectAllocFailure(countdown);
  }

 private:
  SafePointerStore& ShardFor(uint64_t addr) const {
    const uint32_t s = shard_of_(addr, count_);
    CPI_CHECK(s < count_);
    return *shards_[s];
  }

  const StoreKind kind_;
  const uint32_t count_;
  const ShardFn shard_of_;
  std::vector<std::unique_ptr<SafePointerStore>> shards_;
};

}  // namespace

void SafePointerStore::ConsumeGrowthAllocation() {
  if (alloc_failure_countdown_ != kAllocFailureDisarmed) {
    if (alloc_failure_countdown_ == 0) {
      alloc_failure_countdown_ = kAllocFailureDisarmed;
      throw SimulatedOom("safe pointer store growth failed");
    }
    --alloc_failure_countdown_;
    return;
  }
  if (linked_alloc_failure_ != nullptr && *linked_alloc_failure_ != kAllocFailureDisarmed) {
    if (*linked_alloc_failure_ == 0) {
      *linked_alloc_failure_ = kAllocFailureDisarmed;
      throw SimulatedOom("safe pointer store growth failed");
    }
    --*linked_alloc_failure_;
  }
}

void SafePointerStore::ClearRange(uint64_t addr, uint64_t size) {
  const uint64_t first = addr & ~7ULL;
  for (uint64_t a = first; a < addr + size; a += 8) {
    Clear(a, nullptr);
  }
}

void SafePointerStore::CopyRange(uint64_t dst, uint64_t src, uint64_t size) {
  // Snapshot the source entries before clearing the destination, so
  // overlapping ranges (forward or backward) transfer every entry intact.
  // Entries travel only between identically-aligned slots; a byte-shifted
  // copy of a pointer is no longer a pointer, so those entries are dropped.
  std::vector<std::pair<uint64_t, SafeEntry>> entries;  // ascending dst addresses
  if (((dst ^ src) & 7) == 0) {
    const uint64_t first = (src + 7) & ~7ULL;
    for (uint64_t a = first; a + 8 <= src + size; a += 8) {
      SafeEntry e = Get(a, nullptr);
      if (e.IsPresent()) {
        entries.emplace_back(dst + (a - src), e);
      }
    }
  }
  // Walk the destination once, writing each snapshotted entry immediately
  // after its slot's Clear: the Clear/Set pair probes the same key, so the
  // hash organisation's probe-start memo serves the second operation. The
  // final key->entry mapping is order-independent; hash-store slot indices
  // (and with them future touch addresses) can differ from the historical
  // clear-all-then-set-all order under probe collisions, which the committed
  // BENCH baselines account for.
  size_t next = 0;
  const uint64_t first = dst & ~7ULL;
  for (uint64_t a = first; a < dst + size; a += 8) {
    Clear(a, nullptr);
    if (next < entries.size() && entries[next].first == a) {
      Set(a, entries[next].second, nullptr);
      ++next;
    }
  }
  CPI_CHECK(next == entries.size());
}

void SafePointerStore::MoveRange(uint64_t dst, uint64_t src, uint64_t size) {
  if (dst == src) {
    return;
  }
  CopyRange(dst, src, size);
}

const char* StoreKindName(StoreKind kind) {
  switch (kind) {
    case StoreKind::kArray:
      return "array";
    case StoreKind::kTwoLevel:
      return "two-level";
    case StoreKind::kHash:
      return "hashtable";
  }
  CPI_UNREACHABLE();
}

std::unique_ptr<SafePointerStore> CreateSafeStore(StoreKind kind) {
  switch (kind) {
    case StoreKind::kArray:
      return std::make_unique<ArrayStore>();
    case StoreKind::kTwoLevel:
      return std::make_unique<TwoLevelStore>();
    case StoreKind::kHash:
      return std::make_unique<HashStore>();
  }
  CPI_UNREACHABLE();
}

std::unique_ptr<SafePointerStore> CreateSafeStore(StoreKind kind, uint32_t shards,
                                                  ShardFn shard_of) {
  if (shards <= 1) {
    return CreateSafeStore(kind);
  }
  CPI_CHECK(shard_of != nullptr);
  return std::make_unique<ShardedStore>(kind, shards, shard_of);
}

}  // namespace cpi::runtime
