// The safe pointer store: maps the regular-region address of a sensitive
// pointer to its protected value and metadata (§3.2.2, Fig. 2).
//
// Three organisations are implemented, mirroring §4 ("Runtime support
// library"): a simple sparse array, a two-level lookup table, and a hash
// table. They differ in lookup cost (number of safe-region memory touches per
// operation) and in resident memory — which is exactly the speed/memory
// trade-off §5.2 reports.
//
// Every operation reports which safe-region addresses it touched so the VM's
// cache model can charge realistic costs.
#ifndef CPI_SRC_RUNTIME_SAFE_STORE_H_
#define CPI_SRC_RUNTIME_SAFE_STORE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/runtime/metadata.h"

namespace cpi::runtime {

// Safe-region addresses touched by one store operation (bounded: the deepest
// organisation touches a directory, a table, and the entry).
struct TouchList {
  static constexpr int kMax = 4;
  uint64_t addrs[kMax];
  int count = 0;

  void Add(uint64_t addr) {
    if (count < kMax) {
      addrs[count++] = addr;
    }
  }
};

enum class StoreKind {
  kArray,     // sparse direct-mapped array (fastest; most memory)
  kTwoLevel,  // directory + second-level tables (MPX-style layout)
  kHash,      // open-addressing hash table (least memory; probe cost)
};

const char* StoreKindName(StoreKind kind);

class SafePointerStore {
 public:
  virtual ~SafePointerStore() = default;

  virtual StoreKind kind() const = 0;

  // Associates `entry` with the regular-region address `addr` (8-byte
  // aligned slots; unaligned addresses are rounded down, as pointer-sized
  // writes are).
  virtual void Set(uint64_t addr, const SafeEntry& entry, TouchList* touched) = 0;

  // Returns the entry at `addr` (kind == kNone when absent).
  virtual SafeEntry Get(uint64_t addr, TouchList* touched) const = 0;

  // Removes any entry at `addr` (used when a regular value overwrites a
  // universal-pointer slot).
  virtual void Clear(uint64_t addr, TouchList* touched) = 0;

  // Bulk helpers for the checked memory-transfer variants (§3.2.2).
  // CopyRange interleaves each destination slot's Clear with its Set so the
  // pair shares one probe-start hash (the hash organisation memoises it).
  void ClearRange(uint64_t addr, uint64_t size);
  void CopyRange(uint64_t dst, uint64_t src, uint64_t size);
  void MoveRange(uint64_t dst, uint64_t src, uint64_t size);

  // Pre-sizes the organisation for `entries` live entries. Benches with a
  // known working set call this to skip rehash churn; it is never called on
  // the measured paths (growing up front changes resident-memory numbers).
  virtual void Reserve(uint64_t entries) { (void)entries; }

  // Resident safe-region memory in bytes (the §5.2 memory-overhead metric).
  virtual uint64_t MemoryBytes() const = 0;

  // Number of live entries (diagnostics / tests).
  virtual uint64_t EntryCount() const = 0;

  // Number of shards backing this store. 1 for the plain organisations; the
  // sharded wrapper returned by the shard-aware CreateSafeStore overload
  // reports its configured count.
  virtual uint32_t ShardCount() const { return 1; }

  // Fault injection (vm::FaultPlan). InjectAllocFailure arms a one-shot
  // simulated OOM: after `countdown` more growth allocations (array pages,
  // second-level tables, hash rehashes) succeed, the next one throws
  // SimulatedOom — the VM catches it and reports the run as crashed. On a
  // sharded store the countdown is global: growth events consume it in
  // execution order no matter which shard grows.
  void InjectAllocFailure(uint64_t countdown) { alloc_failure_countdown_ = countdown; }

  // Per-shard variant (vm::FaultKind::kOomShard): only growth inside the
  // given shard consumes the countdown, so the failure is contained to that
  // shard's structures. On an unsharded store shard 0 is the whole store.
  virtual void InjectShardAllocFailure(uint32_t shard, uint64_t countdown) {
    (void)shard;
    InjectAllocFailure(countdown);
  }

  // XORs `xor_mask` into the protected value of the (`which` mod live)-th
  // live entry, in a deterministic organisation-specific order. Models an
  // attacker corrupting the metadata region itself (§3.2.3's secrecy
  // assumption): subsequent checks must fire on the forged bounds/value
  // rather than trust it. Returns false when the store holds no entries.
  virtual bool CorruptEntry(uint64_t which, uint64_t xor_mask) = 0;

  // Per-shard variant (vm::FaultKind::kCorruptShard): corrupts a live entry
  // of the given shard only, proving containment — entries homed to other
  // shards are untouched. Returns false when that shard holds no entries.
  virtual bool CorruptEntryInShard(uint32_t shard, uint64_t which, uint64_t xor_mask) {
    (void)shard;
    return CorruptEntry(which, xor_mask);
  }

 protected:
  // Growth paths call this before allocating backing storage. Consumes the
  // store's own countdown first; when the store is a shard of a sharded
  // store, it falls back to the parent's (global) countdown.
  void ConsumeGrowthAllocation();

  // Makes `shard`'s growth consume `parent`'s countdown whenever the
  // shard's own is disarmed (the sharded wrapper links each shard to
  // itself).
  static void LinkGrowthFailure(SafePointerStore& shard, SafePointerStore& parent) {
    shard.linked_alloc_failure_ = &parent.alloc_failure_countdown_;
  }

 private:
  static constexpr uint64_t kAllocFailureDisarmed = ~0ULL;
  uint64_t alloc_failure_countdown_ = kAllocFailureDisarmed;
  uint64_t* linked_alloc_failure_ = nullptr;
};

std::unique_ptr<SafePointerStore> CreateSafeStore(StoreKind kind);

// The shard routing function: maps a safe-store key (a regular-region
// address) to its shard. Supplied by the VM layer (vm::ShardOfAddress), so
// the runtime stays layout-agnostic. Must be pure.
using ShardFn = uint32_t (*)(uint64_t addr, uint32_t shard_count);

// Shard-aware factory. `shards` <= 1 returns the plain organisation
// (bit-for-bit the legacy store); otherwise a sharded wrapper routes every
// operation to one of `shards` private instances of the organisation via
// `shard_of(addr, shards)`. Entry state, bulk-transfer semantics and (for
// the array/two-level organisations) touch addresses are pure functions of
// the key, so behaviour is identical at every shard count.
std::unique_ptr<SafePointerStore> CreateSafeStore(StoreKind kind, uint32_t shards,
                                                  ShardFn shard_of);

}  // namespace cpi::runtime

#endif  // CPI_SRC_RUNTIME_SAFE_STORE_H_
