#include "src/runtime/seal.h"

#include "src/support/rng.h"

namespace cpi::runtime {

uint16_t PointerSealer::Mac(uint64_t value, uint64_t location) const {
  // SplitMix64 finaliser over the keyed (value, location) tuple: cheap, well
  // avalanched, and — like a real MAC — unforgeable without key_ for the
  // purposes of the simulation's deterministic attackers.
  uint64_t z = (value & kValueMask) ^ (location * 0x9e3779b97f4a7c15ULL) ^ key_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<uint16_t>(z % 0xffff) + 1;  // in [1, 0xffff]
}

uint64_t DeriveSealKey(uint64_t seed) { return Rng(seed ^ 0x5ea1'5ea1ULL).NextU64(); }

}  // namespace cpi::runtime
