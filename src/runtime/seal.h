// In-place pointer sealing (the PtrEnc scheme).
//
// PACTight/LIPPEN-style pointer protection without a separate safe region: a
// protected pointer is stored in ordinary (corruptible) memory, but its
// unused high 16 bits carry a keyed MAC computed over (pointer value,
// storage location). Loads authenticate the MAC before the value may be used
// as a code pointer; an attacker who overwrites the slot cannot forge the
// MAC without the key, and cannot replay a sealed pointer at a different
// location because the location is part of the MAC domain.
//
// The VM's address space keeps every legitimate value below 2^48 (see
// src/vm/layout.h), so the high 16 bits are always free to hold the tag —
// exactly the niche ARMv8.3 PAC uses on 48-bit virtual addresses.
#ifndef CPI_SRC_RUNTIME_SEAL_H_
#define CPI_SRC_RUNTIME_SEAL_H_

#include <cstdint>

namespace cpi::runtime {

class PointerSealer {
 public:
  // Number of value bits below the tag field.
  static constexpr int kValueBits = 48;
  static constexpr uint64_t kValueMask = (1ULL << kValueBits) - 1;

  explicit PointerSealer(uint64_t key) : key_(key) {}

  // MAC over (value's low 48 bits, location, key). Never zero, so a raw
  // (unsealed) word — whose high 16 bits are zero — can never authenticate.
  uint16_t Mac(uint64_t value, uint64_t location) const;

  // Seals `value` for storage at `location`.
  uint64_t Seal(uint64_t value, uint64_t location) const {
    return (value & kValueMask) |
           (static_cast<uint64_t>(Mac(value, location)) << kValueBits);
  }

  // Authenticates a word read from `location`. On success writes the
  // stripped pointer value to `*value` and returns true.
  bool Auth(uint64_t sealed, uint64_t location, uint64_t* value) const {
    const uint64_t stripped = sealed & kValueMask;
    if ((sealed >> kValueBits) != Mac(stripped, location)) {
      return false;
    }
    *value = stripped;
    return true;
  }

  // True when the word carries any tag bits at all (a raw value does not).
  static bool LooksSealed(uint64_t word) { return (word >> kValueBits) != 0; }

  static uint64_t Strip(uint64_t sealed) { return sealed & kValueMask; }

 private:
  uint64_t key_;
};

// Derives a per-run sealing key from the VM seed (the software analogue of
// the per-process PAC key the kernel programs at exec time).
uint64_t DeriveSealKey(uint64_t seed);

}  // namespace cpi::runtime

#endif  // CPI_SRC_RUNTIME_SEAL_H_
