// Temporal-safety support: CETS-style allocation identifiers.
//
// Every heap allocation receives a fresh id; free() kills it. A pointer's
// metadata carries the id of the object it is based on, so a dereference
// after free is detected even if the address range was reused — "freeing an
// array and allocating a new one with the same address creates a different
// object" (§3). The paper's prototype is spatial-only; this service backs the
// design's temporal extension (enabled via ProtectionFlags::temporal).
#ifndef CPI_SRC_RUNTIME_TEMPORAL_H_
#define CPI_SRC_RUNTIME_TEMPORAL_H_

#include <cstdint>
#include <unordered_set>

namespace cpi::runtime {

class TemporalIdService {
 public:
  // Id 0 is reserved for objects with static storage duration (globals,
  // functions, stacks handled elsewhere); it is always live.
  static constexpr uint64_t kStaticId = 0;

  uint64_t Allocate() {
    const uint64_t id = next_id_++;
    live_.insert(id);
    return id;
  }

  void Free(uint64_t id) { live_.erase(id); }

  bool IsLive(uint64_t id) const { return id == kStaticId || live_.count(id) > 0; }

  uint64_t live_count() const { return live_.size(); }

 private:
  uint64_t next_id_ = 1;
  std::unordered_set<uint64_t> live_;
};

}  // namespace cpi::runtime

#endif  // CPI_SRC_RUNTIME_TEMPORAL_H_
