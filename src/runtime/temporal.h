// Temporal-safety support: CETS-style allocation identifiers.
//
// Every heap allocation receives a fresh id; free() kills it. A pointer's
// metadata carries the id of the object it is based on, so a dereference
// after free is detected even if the address range was reused — "freeing an
// array and allocating a new one with the same address creates a different
// object" (§3). The paper's prototype is spatial-only; this service backs the
// design's temporal extension (enabled via ProtectionFlags::temporal).
#ifndef CPI_SRC_RUNTIME_TEMPORAL_H_
#define CPI_SRC_RUNTIME_TEMPORAL_H_

#include <cstdint>
#include <unordered_set>

namespace cpi::runtime {

class TemporalIdService {
 public:
  // Id 0 is reserved for objects with static storage duration (globals,
  // functions, stacks handled elsewhere); it is always live.
  static constexpr uint64_t kStaticId = 0;

  uint64_t Allocate() {
    const uint64_t id = next_id_++;
    live_.insert(id);
    return id;
  }

  // Registers an externally minted id (the VM's per-thread id namespaces) as
  // live. The id must be fresh: re-registering a live or already-freed id —
  // or kStaticId — is a bookkeeping error, reported by a false return (and
  // counted) so the caller can fail as loudly as a bad Free does.
  bool Register(uint64_t id) {
    const bool inserted = id != kStaticId && live_.insert(id).second;
    if (!inserted) {
      ++invalid_free_count_;
    }
    return inserted;
  }

  // Kills `id`. Returns false — and counts the event — for a double free or
  // a free of kStaticId instead of silently accepting it: CETS-style
  // temporal checking relies on dead ids staying dead, so a caller seeing
  // false must treat the operation as a violation, not a no-op.
  bool Free(uint64_t id) {
    if (id == kStaticId || live_.erase(id) == 0) {
      ++invalid_free_count_;
      return false;
    }
    return true;
  }

  bool IsLive(uint64_t id) const { return id == kStaticId || live_.count(id) > 0; }

  uint64_t live_count() const { return live_.size(); }
  // Double frees / frees of kStaticId / re-registrations observed so far.
  uint64_t invalid_free_count() const { return invalid_free_count_; }

 private:
  uint64_t next_id_ = 1;
  std::unordered_set<uint64_t> live_;
  uint64_t invalid_free_count_ = 0;
};

}  // namespace cpi::runtime

#endif  // CPI_SRC_RUNTIME_TEMPORAL_H_
