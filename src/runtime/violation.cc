#include "src/runtime/violation.h"

#include "src/support/check.h"

namespace cpi::runtime {

const char* ViolationName(Violation v) {
  switch (v) {
    case Violation::kNone: return "none";
    case Violation::kSpatialOutOfBounds: return "spatial-out-of-bounds";
    case Violation::kTemporalUseAfterFree: return "temporal-use-after-free";
    case Violation::kForgedCodePointer: return "forged-code-pointer";
    case Violation::kCfiBadTarget: return "cfi-bad-target";
    case Violation::kStackCookieSmashed: return "stack-cookie-smashed";
    case Violation::kDebugModeMismatch: return "debug-mode-mismatch";
    case Violation::kSoftBoundViolation: return "softbound-violation";
    case Violation::kPointerAuthFailure: return "pointer-auth-failure";
  }
  CPI_UNREACHABLE();
}

const char* IsolationKindName(IsolationKind k) {
  switch (k) {
    case IsolationKind::kSegment: return "segment";
    case IsolationKind::kInfoHiding: return "info-hiding";
    case IsolationKind::kSfi: return "sfi";
  }
  CPI_UNREACHABLE();
}

}  // namespace cpi::runtime
