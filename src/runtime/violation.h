// Security-violation and trap taxonomy shared by the runtime and the VM.
#ifndef CPI_SRC_RUNTIME_VIOLATION_H_
#define CPI_SRC_RUNTIME_VIOLATION_H_

#include <cstdint>
#include <string>

namespace cpi::runtime {

enum class Violation {
  kNone = 0,
  kSpatialOutOfBounds,  // bounds check failed on a sensitive dereference
  kTemporalUseAfterFree,
  kForgedCodePointer,   // indirect call through a non-safe code pointer
  kCfiBadTarget,        // CFI baseline: target outside the valid set
  kStackCookieSmashed,  // canary mismatch on return
  kDebugModeMismatch,   // debug mode: regular copy diverged from safe copy
  kSoftBoundViolation,  // full-memory-safety baseline check failed
  kPointerAuthFailure,  // PtrEnc: sealed-pointer MAC did not authenticate
};

const char* ViolationName(Violation v);

// §3.2.3: how the safe region is shielded from regular memory operations.
enum class IsolationKind {
  kSegment,     // x86-32 style hardware segments: regular access simply traps
  kInfoHiding,  // x86-64 style leak-proof randomisation of the region base
  kSfi,         // software fault isolation: regular accesses are masked
};

const char* IsolationKindName(IsolationKind k);

}  // namespace cpi::runtime

#endif  // CPI_SRC_RUNTIME_VIOLATION_H_
