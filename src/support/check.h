// Lightweight invariant-checking macros.
//
// CPI_CHECK aborts the process on violation; it is used for programmer errors
// (broken invariants inside this library), never for errors caused by input
// programs — those are reported through cpi::vm::Trap / cpi::Status instead.
#ifndef CPI_SRC_SUPPORT_CHECK_H_
#define CPI_SRC_SUPPORT_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace cpi {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "CPI_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace cpi

#define CPI_CHECK(expr)                                  \
  do {                                                   \
    if (!(expr)) {                                       \
      ::cpi::CheckFailed(__FILE__, __LINE__, #expr);     \
    }                                                    \
  } while (0)

#define CPI_UNREACHABLE() ::cpi::CheckFailed(__FILE__, __LINE__, "unreachable")

#endif  // CPI_SRC_SUPPORT_CHECK_H_
