// Simulated allocation failure, shared by every runtime component that can
// grow host-side storage on behalf of the simulated program (safe-store
// organisations, ByteMemory pages).
//
// The fuzzing harness arms these failures through vm::FaultPlan to prove the
// runtime degrades gracefully: an allocation failure inside a run must
// surface as a reported RunStatus::kCrash — never as an uncaught
// std::bad_alloc that kills the host process (the VM catches std::bad_alloc,
// so a *real* OOM on the same paths is contained the same way).
#ifndef CPI_SRC_SUPPORT_OOM_H_
#define CPI_SRC_SUPPORT_OOM_H_

#include <new>

namespace cpi {

class SimulatedOom : public std::bad_alloc {
 public:
  explicit SimulatedOom(const char* what) : what_(what) {}
  const char* what() const noexcept override { return what_; }

 private:
  const char* what_;
};

}  // namespace cpi

#endif  // CPI_SRC_SUPPORT_OOM_H_
