#include "src/support/pool.h"

namespace cpi {

namespace {

// Which pool the current thread works for (nullptr off-pool) and its worker
// index — lets Submit route to the local deque and PopTask pop LIFO.
thread_local ThreadPool* tls_pool = nullptr;
thread_local int tls_worker = -1;

}  // namespace

int ThreadPool::DefaultJobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int jobs) {
  jobs_ = jobs <= 0 ? DefaultJobs() : jobs;
  const int worker_count = jobs_ - 1;
  workers_.reserve(worker_count);
  for (int i = 0; i < worker_count; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(worker_count);
  for (int i = 0; i < worker_count; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> fn) {
  if (tls_pool == this && tls_worker >= 0) {
    Worker& w = *workers_[tls_worker];
    std::lock_guard<std::mutex> lock(w.mutex);
    w.deque.push_back(std::move(fn));
  } else {
    std::lock_guard<std::mutex> lock(injector_mutex_);
    injector_.push_back(std::move(fn));
  }
  // Empty critical section: orders the push before the notify so a worker
  // that evaluated its wait predicate cannot miss this wakeup.
  { std::lock_guard<std::mutex> lock(wake_mutex_); }
  wake_.notify_one();
}

bool ThreadPool::PopTask(std::function<void()>& out) {
  const int self = tls_pool == this ? tls_worker : -1;
  if (self >= 0) {
    Worker& w = *workers_[self];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (!w.deque.empty()) {
      out = std::move(w.deque.back());
      w.deque.pop_back();
      return true;
    }
  }
  {
    std::lock_guard<std::mutex> lock(injector_mutex_);
    if (!injector_.empty()) {
      out = std::move(injector_.front());
      injector_.pop_front();
      return true;
    }
  }
  for (size_t i = 0; i < workers_.size(); ++i) {
    if (static_cast<int>(i) == self) {
      continue;
    }
    Worker& w = *workers_[i];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (!w.deque.empty()) {
      out = std::move(w.deque.front());
      w.deque.pop_front();
      return true;
    }
  }
  return false;
}

bool ThreadPool::HasPending() {
  {
    std::lock_guard<std::mutex> lock(injector_mutex_);
    if (!injector_.empty()) {
      return true;
    }
  }
  for (const auto& w : workers_) {
    std::lock_guard<std::mutex> lock(w->mutex);
    if (!w->deque.empty()) {
      return true;
    }
  }
  return false;
}

bool ThreadPool::RunOneTask() {
  std::function<void()> task;
  if (!PopTask(task)) {
    return false;
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop(int index) {
  tls_pool = this;
  tls_worker = index;
  for (;;) {
    std::function<void()> task;
    if (PopTask(task)) {
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_.wait(lock, [this] { return stop_ || HasPending(); });
    if (stop_) {
      return;
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  if (n == 0) {
    return;
  }
  if (workers_.empty() || n == 1) {
    // Same exception contract as the parallel path: every index runs, and
    // the lowest-index exception (the first one, running in order) is
    // rethrown at the end.
    std::exception_ptr error;
    for (size_t i = 0; i < n; ++i) {
      try {
        body(i);
      } catch (...) {
        if (error == nullptr) {
          error = std::current_exception();
        }
      }
    }
    if (error != nullptr) {
      std::rethrow_exception(error);
    }
    return;
  }

  struct State {
    const std::function<void(size_t)>* body = nullptr;
    size_t n = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex error_mutex;
    size_t error_index = 0;
    std::exception_ptr error;
  };
  auto state = std::make_shared<State>();
  state->body = &body;
  state->n = n;

  // Drains indices until none remain. `body` outlives every dereference:
  // the caller below does not return before done == n, and a drainer that
  // starts later only observes next >= n and exits without touching it.
  auto drain = [state] {
    for (;;) {
      const size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state->n) {
        return;
      }
      try {
        (*state->body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->error_mutex);
        if (state->error == nullptr || i < state->error_index) {
          state->error = std::current_exception();
          state->error_index = i;
        }
      }
      state->done.fetch_add(1, std::memory_order_release);
    }
  };

  const size_t helpers = std::min(workers_.size(), n - 1);
  for (size_t i = 0; i < helpers; ++i) {
    Submit(drain);
  }
  drain();
  while (state->done.load(std::memory_order_acquire) < n) {
    if (!RunOneTask()) {
      std::this_thread::yield();
    }
  }
  if (state->error != nullptr) {
    std::rethrow_exception(state->error);
  }
}

}  // namespace cpi
