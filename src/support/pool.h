// A small work-stealing thread pool — the execution substrate of the
// measurement harness (src/workloads/measure.h) and the unified bench suite.
//
// `jobs` counts executors, not helper threads: ThreadPool(jobs) spawns
// jobs - 1 worker threads and the calling thread lends itself to
// ParallelFor / Await, so jobs == 1 means strictly serial execution on the
// calling thread with no worker threads at all — the property the
// serial-vs-parallel differential tests in tests/measure_test.cc rely on.
//
// Every worker owns a deque: tasks submitted from that worker push to its
// back and pop from its back (LIFO, cache-hot), idle workers steal from the
// front of other workers' deques (FIFO, oldest first), and submissions from
// non-pool threads go to a shared injector queue. Waiters never block the
// pool: ParallelFor and Await execute pending tasks while they wait, so a
// task may freely submit subtasks and wait for them (nested-submit safety —
// a single-worker pool cannot deadlock on nested waits).
#ifndef CPI_SRC_SUPPORT_POOL_H_
#define CPI_SRC_SUPPORT_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cpi {

class ThreadPool {
 public:
  // jobs <= 0 selects DefaultJobs() (hardware concurrency).
  explicit ThreadPool(int jobs = 0);
  // Joins the workers. Tasks that never started are dropped; the harness
  // call sites (ParallelFor / Await) always drain their own work first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // The executor count this pool was built with (workers + calling thread).
  int jobs() const { return jobs_; }

  // std::thread::hardware_concurrency(), at least 1.
  static int DefaultJobs();

  // Enqueues fn: onto the submitting worker's own deque when called from a
  // pool thread, onto the shared injector queue otherwise.
  void Submit(std::function<void()> fn);

  // Submit returning a future for the task's result; exceptions thrown by
  // fn surface from future.get() (use Await to wait without idling the
  // pool).
  template <typename F>
  auto SubmitTask(F&& fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Submit([task] { (*task)(); });
    return future;
  }

  // Runs body(i) for every i in [0, n), distributed over the executors. The
  // calling thread participates, so the call completes even with zero
  // workers and may be issued from inside a pool task. Every index runs
  // exactly once; if bodies throw, the exception from the lowest-numbered
  // index is rethrown after all indices finished (deterministic regardless
  // of scheduling).
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  // Blocks until `future` is ready, executing pending pool tasks while
  // waiting — safe to call from inside a task.
  template <typename T>
  T Await(std::future<T> future) {
    while (future.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      if (!RunOneTask()) {
        std::this_thread::yield();
      }
    }
    return future.get();
  }

  // Executes one pending task if any queue holds one; false when the whole
  // pool is idle. Exposed so blocked waiters keep the pool productive.
  bool RunOneTask();

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> deque;
  };

  void WorkerLoop(int index);
  // Pops in priority order: own deque back (when on a worker thread), the
  // injector front, then steals the front of the other workers' deques.
  bool PopTask(std::function<void()>& out);
  bool HasPending();

  int jobs_ = 1;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::mutex injector_mutex_;
  std::deque<std::function<void()>> injector_;
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  bool stop_ = false;
};

}  // namespace cpi

#endif  // CPI_SRC_SUPPORT_POOL_H_
