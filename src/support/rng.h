// Deterministic pseudo-random number generation.
//
// All workload generators, attack drivers and property tests draw randomness
// from this generator so that every experiment in the repository is exactly
// reproducible from a seed. The implementation is xoshiro256** seeded via
// SplitMix64, which is the standard, well-distributed, allocation-free choice.
#ifndef CPI_SRC_SUPPORT_RNG_H_
#define CPI_SRC_SUPPORT_RNG_H_

#include <cstdint>

#include "src/support/check.h"

namespace cpi {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform value in [0, bound). bound must be nonzero.
  uint64_t NextBelow(uint64_t bound) {
    CPI_CHECK(bound != 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
      const uint64_t r = NextU64();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform value in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    CPI_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo) + 1));
  }

  // True with probability num/den.
  bool Chance(uint64_t num, uint64_t den) { return NextBelow(den) < num; }

  double NextDouble() {  // in [0, 1)
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace cpi

#endif  // CPI_SRC_SUPPORT_RNG_H_
