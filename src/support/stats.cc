#include "src/support/stats.h"

#include <algorithm>
#include <cmath>

#include "src/support/check.h"

namespace cpi {

double Mean(const std::vector<double>& xs) {
  CPI_CHECK(!xs.empty());
  double sum = 0;
  for (double x : xs) {
    sum += x;
  }
  return sum / static_cast<double>(xs.size());
}

double Median(std::vector<double> xs) {
  CPI_CHECK(!xs.empty());
  std::sort(xs.begin(), xs.end());
  const size_t n = xs.size();
  if (n % 2 == 1) {
    return xs[n / 2];
  }
  return (xs[n / 2 - 1] + xs[n / 2]) / 2.0;
}

double Min(const std::vector<double>& xs) {
  CPI_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double Max(const std::vector<double>& xs) {
  CPI_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double Geomean(const std::vector<double>& xs) {
  CPI_CHECK(!xs.empty());
  double log_sum = 0;
  for (double x : xs) {
    CPI_CHECK(x > 0);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double StdDev(const std::vector<double>& xs) {
  CPI_CHECK(!xs.empty());
  const double mean = Mean(xs);
  double acc = 0;
  for (double x : xs) {
    acc += (x - mean) * (x - mean);
  }
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double OverheadPercent(double measured, double baseline) {
  CPI_CHECK(baseline > 0);
  return (measured / baseline - 1.0) * 100.0;
}

double Percent(uint64_t a, uint64_t b) {
  if (b == 0) {
    return 0.0;
  }
  return 100.0 * static_cast<double>(a) / static_cast<double>(b);
}

}  // namespace cpi
