// Small statistics helpers used when aggregating benchmark results into the
// summary rows the paper reports (Table 1 averages/medians/maxima, etc.).
#ifndef CPI_SRC_SUPPORT_STATS_H_
#define CPI_SRC_SUPPORT_STATS_H_

#include <cstdint>
#include <vector>

namespace cpi {

double Mean(const std::vector<double>& xs);
double Median(std::vector<double> xs);  // by value: sorts a copy
double Min(const std::vector<double>& xs);
double Max(const std::vector<double>& xs);
double Geomean(const std::vector<double>& xs);  // inputs must be > 0
double StdDev(const std::vector<double>& xs);

// Relative overhead of `measured` vs `baseline`, as a percentage.
// OverheadPercent(103, 100) == 3.0.
double OverheadPercent(double measured, double baseline);

// Percentage a/b (0 when b == 0).
double Percent(uint64_t a, uint64_t b);

}  // namespace cpi

#endif  // CPI_SRC_SUPPORT_STATS_H_
