#include "src/support/table.h"

#include <cstdio>
#include <sstream>

#include "src/support/check.h"

namespace cpi {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  CPI_CHECK(!headers_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  CPI_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::AddSeparator() { rows_.emplace_back(); }

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      out << (i == 0 ? "| " : " | ");
      out << row[i];
      out << std::string(widths[i] - row[i].size(), ' ');
    }
    out << " |\n";
  };
  auto emit_separator = [&] {
    for (size_t i = 0; i < widths.size(); ++i) {
      out << (i == 0 ? "|-" : "-|-");
      out << std::string(widths[i], '-');
    }
    out << "-|\n";
  };

  emit_row(headers_);
  emit_separator();
  for (const auto& row : rows_) {
    if (row.empty()) {
      emit_separator();
    } else {
      emit_row(row);
    }
  }
  return out.str();
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string Table::FormatPercent(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", value);
  return buf;
}

std::string Table::FormatDouble(double value, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace cpi
