// Fixed-width console table printer.
//
// Every bench binary regenerates one of the paper's tables/figures; this
// printer renders them in a uniform, diff-friendly format.
#ifndef CPI_SRC_SUPPORT_TABLE_H_
#define CPI_SRC_SUPPORT_TABLE_H_

#include <string>
#include <vector>

namespace cpi {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Appends a row; the row must have exactly as many cells as there are
  // headers.
  void AddRow(std::vector<std::string> cells);

  // Inserts a horizontal separator before the next added row.
  void AddSeparator();

  // Renders the whole table, including a header separator.
  std::string ToString() const;

  // Convenience: renders and writes to stdout.
  void Print() const;

  // Formats a double as e.g. "3.1%" (one decimal place, with sign for
  // negatives).
  static std::string FormatPercent(double value);
  static std::string FormatDouble(double value, int decimals);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace cpi

#endif  // CPI_SRC_SUPPORT_TABLE_H_
