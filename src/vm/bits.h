// Width-masking and bit-punning helpers shared by the reference interpreter
// and the predecoder. Keeping them in one place guarantees that a constant
// masked at decode time equals the same constant masked by Machine::Eval at
// run time — part of the bit-identical-counters invariant.
#ifndef CPI_SRC_VM_BITS_H_
#define CPI_SRC_VM_BITS_H_

#include <cstdint>
#include <cstring>

#include "src/ir/type.h"

namespace cpi::vm {

inline uint64_t MaskToWidth(uint64_t v, int bits) {
  if (bits >= 64) {
    return v;
  }
  return v & ((1ULL << bits) - 1);
}

inline int64_t SignExtend(uint64_t v, int bits) {
  if (bits >= 64) {
    return static_cast<int64_t>(v);
  }
  const uint64_t sign = 1ULL << (bits - 1);
  return static_cast<int64_t>((v ^ sign) - sign);
}

inline int TypeBits(const ir::Type* t) {
  if (t->IsInt()) {
    return static_cast<const ir::IntType*>(t)->bits();
  }
  return 64;  // pointers and floats
}

inline double BitsToDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, 8);
  return d;
}

inline uint64_t DoubleToBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, 8);
  return bits;
}

}  // namespace cpi::vm

#endif  // CPI_SRC_VM_BITS_H_
