#include "src/vm/cache.h"

#include "src/support/check.h"

namespace cpi::vm {

CacheModel::CacheModel() : CacheModel(Config{}) {}

CacheModel::CacheModel(const Config& config) : config_(config) {
  CPI_CHECK(config_.line_bytes > 0 && config_.ways > 0);
  num_sets_ = config_.size_bytes / (config_.line_bytes * config_.ways);
  CPI_CHECK(num_sets_ > 0 && (num_sets_ & (num_sets_ - 1)) == 0);
  lines_.assign(num_sets_ * config_.ways, Line{});
}

uint64_t CacheModel::Access(uint64_t addr) {
  ++tick_;
  const uint64_t line_addr = addr / config_.line_bytes;
  const uint64_t set = line_addr & (num_sets_ - 1);
  Line* set_lines = &lines_[set * config_.ways];

  for (uint64_t w = 0; w < config_.ways; ++w) {
    if (set_lines[w].valid && set_lines[w].tag == line_addr) {
      set_lines[w].lru = tick_;
      ++hits_;
      return config_.hit_cycles;
    }
  }

  // Miss: fill the LRU way.
  uint64_t victim = 0;
  for (uint64_t w = 1; w < config_.ways; ++w) {
    if (!set_lines[w].valid ||
        (set_lines[victim].valid && set_lines[w].lru < set_lines[victim].lru)) {
      victim = w;
    }
    if (!set_lines[victim].valid) {
      break;
    }
  }
  set_lines[victim] = Line{line_addr, tick_, true};
  ++misses_;
  return config_.miss_cycles;
}

void CacheModel::Reset() {
  tick_ = hits_ = misses_ = 0;
  for (Line& l : lines_) {
    l = Line{};
  }
}

}  // namespace cpi::vm
