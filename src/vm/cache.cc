#include "src/vm/cache.h"

#include "src/support/check.h"

namespace cpi::vm {

namespace {

bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

uint64_t Log2(uint64_t v) {
  uint64_t shift = 0;
  while ((1ULL << shift) < v) {
    ++shift;
  }
  return shift;
}

}  // namespace

CacheModel::CacheModel() : CacheModel(Config{}) {}

CacheModel::CacheModel(const Config& config) : config_(config) {
  CPI_CHECK(config_.line_bytes > 0 && config_.ways > 0);
  CPI_CHECK(IsPowerOfTwo(config_.line_bytes));
  num_sets_ = config_.size_bytes / (config_.line_bytes * config_.ways);
  CPI_CHECK(num_sets_ > 0 && IsPowerOfTwo(num_sets_));
  line_shift_ = Log2(config_.line_bytes);
  set_mask_ = num_sets_ - 1;
  lines_.assign(num_sets_ * config_.ways, Line{});
  set_tick_.assign(num_sets_, 0);
}

uint64_t CacheModel::Miss(Line* set_lines, uint64_t line_addr, uint64_t tick) {
  // Fill the LRU way.
  uint64_t victim = 0;
  for (uint64_t w = 1; w < config_.ways; ++w) {
    if (!set_lines[w].valid ||
        (set_lines[victim].valid && set_lines[w].lru < set_lines[victim].lru)) {
      victim = w;
    }
    if (!set_lines[victim].valid) {
      break;
    }
  }
  set_lines[victim] = Line{line_addr, tick, true};
  ++misses_;
  return config_.miss_cycles;
}

void CacheModel::Reset() {
  hits_ = misses_ = 0;
  for (Line& l : lines_) {
    l = Line{};
  }
  for (uint64_t& t : set_tick_) {
    t = 0;
  }
}

}  // namespace cpi::vm
