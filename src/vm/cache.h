// Set-associative L1 data-cache model.
//
// The cost model charges every memory access through this cache, which is
// what lets the safe stack reproduce the paper's locality result (§5.2: in 9
// of 19 SPEC benchmarks the safe stack *improved* performance because bulky
// arrays move away from the hot stack area).
#ifndef CPI_SRC_VM_CACHE_H_
#define CPI_SRC_VM_CACHE_H_

#include <cstdint>
#include <vector>

namespace cpi::vm {

class CacheModel {
 public:
  struct Config {
    uint64_t size_bytes = 32 * 1024;
    uint64_t line_bytes = 64;
    uint64_t ways = 8;
    uint64_t hit_cycles = 2;
    uint64_t miss_cycles = 24;
  };

  CacheModel();
  explicit CacheModel(const Config& config);

  // Returns the cycle cost of accessing `addr` and updates cache state.
  // Defined in the header so the execution loops can inline it — with tens
  // of millions of calls per benchmark cell this is the hottest leaf of the
  // whole cost model.
  uint64_t Access(uint64_t addr) {
    const uint64_t line_addr = addr >> line_shift_;
    const uint64_t set = line_addr & set_mask_;
    const uint64_t tick = ++set_tick_[set];
    Line* set_lines = &lines_[set * config_.ways];

    for (uint64_t w = 0; w < config_.ways; ++w) {
      if (set_lines[w].valid && set_lines[w].tag == line_addr) {
        set_lines[w].lru = tick;
        ++hits_;
        return config_.hit_cycles;
      }
    }
    return Miss(set_lines, line_addr, tick);
  }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  void Reset();

 private:
  struct Line {
    uint64_t tag = 0;
    uint64_t lru = 0;
    bool valid = false;
  };

  // Miss path: fill the LRU way. Out of line — misses are the rare case and
  // keeping the fill loop out of the inlined probe keeps the hot path small.
  uint64_t Miss(Line* set_lines, uint64_t line_addr, uint64_t tick);

  Config config_;
  uint64_t num_sets_;
  // Precomputed at construction (line size and set count are required to be
  // powers of two): every Access is then shift+mask, no division.
  uint64_t line_shift_;
  uint64_t set_mask_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::vector<Line> lines_;      // num_sets_ * ways
  // One LRU clock per set instead of a global tick: recency ordering within
  // a set (all that LRU replacement consults) is unchanged.
  std::vector<uint64_t> set_tick_;
};

}  // namespace cpi::vm

#endif  // CPI_SRC_VM_CACHE_H_
