// IR -> micro-op translation, plus the superinstruction tier's
// profile-guided fusion pass. One DecodedOp per IR instruction; every
// payload a handler needs at run time is resolved here, once per function.
#include "src/vm/decode.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <unordered_map>

#include "src/ir/intrinsics.h"
#include "src/support/check.h"
#include "src/vm/bits.h"

namespace cpi::vm {

namespace {

using ir::BasicBlock;
using ir::BinOp;
using ir::Function;
using ir::Instruction;
using ir::Opcode;
using ir::StackKind;
using ir::Type;
using ir::Value;
using ir::ValueKind;

OperandSlot SlotFor(const Value* v) {
  OperandSlot s;
  switch (v->value_kind()) {
    case ValueKind::kConstInt: {
      const auto* c = static_cast<const ir::ConstantInt*>(v);
      s.set_imm(MaskToWidth(c->value(), TypeBits(c->type())));
      return s;
    }
    case ValueKind::kConstFloat:
      s.set_imm(DoubleToBits(static_cast<const ir::ConstantFloat*>(v)->value()));
      return s;
    case ValueKind::kConstNull:
      s.set_imm(0);
      return s;
    case ValueKind::kArgument:
    case ValueKind::kInstruction:
      CPI_CHECK(v->value_id() != ir::kInvalidValueId);
      CPI_CHECK(v->value_id() != OperandSlot::kImmSlot);
      s.set_reg(v->value_id());
      return s;
  }
  CPI_UNREACHABLE();
}

std::unique_ptr<DecodedFunction> DecodeFunction(const Function& fn,
                                                const ir::Module& module,
                                                const ProgramLayout& layout) {
  auto out = std::make_unique<DecodedFunction>();
  out->func = &fn;

  // Pass 1: op index of every block once blocks are laid out back to back.
  std::unordered_map<const BasicBlock*, uint32_t> block_pc;
  uint32_t pc = 0;
  for (const auto& bb : fn.blocks()) {
    block_pc[bb.get()] = pc;
    out->block_starts.push_back(pc);
    pc += static_cast<uint32_t>(bb->instructions().size());
  }
  out->ops.reserve(pc);
  out->insts.reserve(pc);

  const bool safe_stack = module.protection().safe_stack;

  // Pass 2: emit.
  for (const auto& bb : fn.blocks()) {
    for (const Instruction* inst : bb->instructions()) {
      DecodedOp op;
      out->insts.push_back(inst);
      op.dest = inst->value_id();
      const auto& operands = inst->operands();
      switch (inst->op()) {
        case Opcode::kAlloca: {
          op.op = MicroOp::kAlloca;
          const Type* t = inst->extra_type();
          op.imm = std::max<uint64_t>(t->SizeInBytes(), 1);
          op.imm2 = std::max<uint64_t>(ir::AlignmentOf(t), 1) - 1;  // align mask
          op.flag = safe_stack && inst->stack_kind() != StackKind::kUnsafe;
          break;
        }
        case Opcode::kLoad:
          op.op = MicroOp::kLoad;
          op.a = SlotFor(operands[0]);
          op.imm = inst->type()->SizeInBytes();
          break;
        case Opcode::kStore: {
          op.op = MicroOp::kStore;
          op.a = SlotFor(operands[0]);
          op.b = SlotFor(operands[1]);
          const Type* pointee =
              static_cast<const ir::PointerType*>(operands[1]->type())->pointee();
          op.imm = pointee->IsVoid() ? 8 : pointee->SizeInBytes();
          break;
        }
        case Opcode::kFieldAddr: {
          op.op = MicroOp::kFieldAddr;
          op.a = SlotFor(operands[0]);
          const auto* st = static_cast<const ir::StructType*>(
              static_cast<const ir::PointerType*>(operands[0]->type())->pointee());
          const ir::StructField& field = st->fields()[inst->field_index()];
          op.imm = field.offset;
          op.imm2 = field.type->SizeInBytes();
          break;
        }
        case Opcode::kIndexAddr: {
          op.op = MicroOp::kIndexAddr;
          op.a = SlotFor(operands[0]);
          op.b = SlotFor(operands[1]);
          op.bits = static_cast<uint8_t>(TypeBits(operands[1]->type()));
          const Type* pointee =
              static_cast<const ir::PointerType*>(operands[0]->type())->pointee();
          op.imm = pointee->IsArray()
                       ? static_cast<const ir::ArrayType*>(pointee)->element()->SizeInBytes()
                       : pointee->SizeInBytes();
          break;
        }
        case Opcode::kBinOp:
          op.op = MicroOp::kBinOp;
          op.aux = static_cast<uint8_t>(inst->binop());
          op.a = SlotFor(operands[0]);
          op.b = SlotFor(operands[1]);
          op.bits = static_cast<uint8_t>(TypeBits(operands[0]->type()));
          op.bits2 = static_cast<uint8_t>(TypeBits(inst->type()));
          break;
        case Opcode::kCast:
          op.op = MicroOp::kCast;
          op.aux = static_cast<uint8_t>(inst->cast_kind());
          op.a = SlotFor(operands[0]);
          op.bits = static_cast<uint8_t>(TypeBits(operands[0]->type()));
          op.bits2 = static_cast<uint8_t>(TypeBits(inst->type()));
          break;
        case Opcode::kSelect:
          op.op = MicroOp::kSelect;
          op.a = SlotFor(operands[0]);
          op.b = SlotFor(operands[1]);
          op.c = SlotFor(operands[2]);
          break;
        case Opcode::kCall:
          op.op = MicroOp::kCall;
          op.imm = inst->callee()->ordinal();  // resolved via module at run time
          op.arg_begin = static_cast<uint32_t>(out->args.size());
          CPI_CHECK(operands.size() <= UINT16_MAX);
          op.arg_count = static_cast<uint16_t>(operands.size());
          for (const Value* v : operands) {
            out->args.push_back(SlotFor(v));
          }
          break;
        case Opcode::kIndirectCall:
          op.op = MicroOp::kIndirectCall;
          op.a = SlotFor(operands[0]);
          op.arg_begin = static_cast<uint32_t>(out->args.size());
          CPI_CHECK(operands.size() - 1 <= UINT16_MAX);
          op.arg_count = static_cast<uint16_t>(operands.size() - 1);
          for (size_t i = 1; i < operands.size(); ++i) {
            out->args.push_back(SlotFor(operands[i]));
          }
          break;
        case Opcode::kLibCall:
          op.op = MicroOp::kLibCall;
          op.aux = static_cast<uint8_t>(inst->lib_func());
          op.flag = inst->checked();
          CPI_CHECK(operands.size() <= 3);
          if (operands.size() > 0) op.a = SlotFor(operands[0]);
          if (operands.size() > 1) op.b = SlotFor(operands[1]);
          if (operands.size() > 2) op.c = SlotFor(operands[2]);
          break;
        case Opcode::kMalloc:
          op.op = MicroOp::kMalloc;
          op.a = SlotFor(operands[0]);
          break;
        case Opcode::kFree:
          op.op = MicroOp::kFree;
          op.a = SlotFor(operands[0]);
          break;
        case Opcode::kFuncAddr:
          op.op = MicroOp::kFuncAddr;
          op.imm = layout.CodeAddress(inst->callee());
          break;
        case Opcode::kGlobalAddr:
          op.op = MicroOp::kGlobalAddr;
          op.imm = layout.GlobalAddress(inst->global());
          op.imm2 = inst->global()->type()->SizeInBytes();
          break;
        case Opcode::kBr:
          op.op = MicroOp::kBr;
          op.target = block_pc.at(inst->successor(0));
          break;
        case Opcode::kCondBr:
          op.op = MicroOp::kCondBr;
          op.a = SlotFor(operands[0]);
          op.target = block_pc.at(inst->successor(0));
          op.target2 = block_pc.at(inst->successor(1));
          break;
        case Opcode::kRet:
          op.op = MicroOp::kRet;
          op.flag = !operands.empty();
          if (op.flag) {
            op.a = SlotFor(operands[0]);
          }
          break;
        case Opcode::kInput:
          op.op = MicroOp::kInput;
          break;
        case Opcode::kOutput:
          op.op = MicroOp::kOutput;
          op.a = SlotFor(operands[0]);
          break;
        case Opcode::kSpawn:
          op.op = MicroOp::kSpawn;
          op.imm = inst->callee()->ordinal();
          op.arg_begin = static_cast<uint32_t>(out->args.size());
          CPI_CHECK(operands.size() <= UINT16_MAX);
          op.arg_count = static_cast<uint16_t>(operands.size());
          for (const Value* v : operands) {
            out->args.push_back(SlotFor(v));
          }
          break;
        case Opcode::kJoin:
          op.op = MicroOp::kJoin;
          op.a = SlotFor(operands[0]);
          break;
        case Opcode::kYield:
          op.op = MicroOp::kYield;
          break;
        case Opcode::kIntrinsic:
          op.op = MicroOp::kIntrinsic;
          op.aux = static_cast<uint8_t>(inst->intrinsic());
          CPI_CHECK(operands.size() <= 3);
          if (operands.size() > 0) op.a = SlotFor(operands[0]);
          if (operands.size() > 1) op.b = SlotFor(operands[1]);
          if (operands.size() > 2) op.c = SlotFor(operands[2]);
          break;
      }
      CPI_CHECK(op.op != MicroOp::kCount);
      out->ops.push_back(op);
    }
  }
  CPI_CHECK(out->ops.size() == pc);
  return out;
}

// ---------------------------------------------------------------------------
// Superinstruction fusion: the static profiler + planner + rewriter.
//
// The "profile" is a cheap static one: every op is weighted by the nesting
// depth of the loops enclosing it, where a loop is any branch whose target
// op index is not after the branch itself (back edges in the flattened
// block layout — the same notion src/opt's CFG analyses use). Candidates
// are collected per basic block, ranked hottest-first, and fused greedily
// without overlap. Only the head op's opcode is rewritten; constituents
// keep their original opcodes, so branch targets stay valid.

// Ops a fused sequence may start with or continue through. Anything that can
// transfer control to another frame or thread, block, reschedule, or touch
// the scheduler-visible machine state (calls, libcalls, spawn/join/yield,
// ret, malloc/free, I/O, alloca) never fuses.
bool FusibleInner(MicroOp op) {
  switch (op) {
    case MicroOp::kLoad:
    case MicroOp::kStore:
    case MicroOp::kFieldAddr:
    case MicroOp::kIndexAddr:
    case MicroOp::kBinOp:
    case MicroOp::kCast:
    case MicroOp::kSelect:
    case MicroOp::kFuncAddr:
    case MicroOp::kGlobalAddr:
    case MicroOp::kIntrinsic:
      return true;
    default:
      return false;
  }
}

// A sequence may additionally *end* with the block's own terminating branch
// (which is still "straight-line": the branch is the last constituent).
bool FusibleTail(MicroOp op) {
  return FusibleInner(op) || op == MicroOp::kBr || op == MicroOp::kCondBr;
}

bool IsIntCompare(uint8_t aux) {
  const auto b = static_cast<BinOp>(aux);
  return b >= BinOp::kEq && b <= BinOp::kULe;
}

// Specialised triple opcode for three constituent micro-ops, or kCount when
// the shape is not in the hand-specialised list (the planner then falls back
// to pairing).
MicroOp TripleMacro(MicroOp a, MicroOp b, MicroOp c) {
  for (size_t k = 0; k < kNumTripleShapes; ++k) {
    if (kTripleShapes[k].a == a && kTripleShapes[k].b == b &&
        kTripleShapes[k].c == c) {
      return static_cast<MicroOp>(static_cast<size_t>(MacroOp::kTripleBase) + k);
    }
  }
  return MicroOp::kCount;
}

// Specialised macro opcode for a candidate. Pairs draw from the full
// head x tail matrix; triples only from kTripleShapes (FuseFunction never
// proposes other triples).
MicroOp PickMacro(const DecodedOp* o, uint32_t len) {
  if (len == 3) {
    const MicroOp m = TripleMacro(o[0].op, o[1].op, o[2].op);
    CPI_CHECK(m != MicroOp::kCount);
    return m;
  }
  // The fully-inlined compare+branch needs the branch to consume the
  // compare's result register; anything else takes the matrix path.
  if (o[0].op == MicroOp::kBinOp && o[1].op == MicroOp::kCondBr &&
      IsIntCompare(o[0].aux) && !o[1].a.is_imm() && o[1].a.reg == o[0].dest) {
    return static_cast<MicroOp>(MacroOp::kCmpBr);
  }
  const int h = FuseHeadIndex(o[0].op);
  const int t = FuseTailIndex(o[1].op);
  if (h >= 0 && t >= 0) return PairMacro(h, t);
  return static_cast<MicroOp>(MacroOp::kFuse2);
}

const char* MicroOpName(MicroOp op) {
  switch (op) {
    case MicroOp::kAlloca: return "alloca";
    case MicroOp::kLoad: return "load";
    case MicroOp::kStore: return "store";
    case MicroOp::kFieldAddr: return "fieldaddr";
    case MicroOp::kIndexAddr: return "indexaddr";
    case MicroOp::kBinOp: return "binop";
    case MicroOp::kCast: return "cast";
    case MicroOp::kSelect: return "select";
    case MicroOp::kCall: return "call";
    case MicroOp::kIndirectCall: return "indirectcall";
    case MicroOp::kLibCall: return "libcall";
    case MicroOp::kMalloc: return "malloc";
    case MicroOp::kFree: return "free";
    case MicroOp::kFuncAddr: return "funcaddr";
    case MicroOp::kGlobalAddr: return "globaladdr";
    case MicroOp::kBr: return "br";
    case MicroOp::kCondBr: return "condbr";
    case MicroOp::kRet: return "ret";
    case MicroOp::kInput: return "input";
    case MicroOp::kOutput: return "output";
    case MicroOp::kIntrinsic: return "intrinsic";
    case MicroOp::kSpawn: return "spawn";
    case MicroOp::kJoin: return "join";
    case MicroOp::kYield: return "yield";
    default: return "?";
  }
}

std::string ConstituentName(const DecodedOp& op) {
  std::string name = MicroOpName(op.op);
  switch (op.op) {
    case MicroOp::kBinOp:
      name += std::string("(") + ir::BinOpName(static_cast<BinOp>(op.aux)) + ")";
      break;
    case MicroOp::kIntrinsic:
      name += std::string("(") +
              ir::IntrinsicName(static_cast<ir::IntrinsicId>(op.aux)) + ")";
      break;
    default:
      break;
  }
  return name;
}

std::string PatternName(const DecodedOp* o, uint32_t len) {
  std::string name = ConstituentName(o[0]);
  for (uint32_t i = 1; i < len; ++i) {
    name += "+" + ConstituentName(o[i]);
  }
  return name;
}

// Loop-nesting weight of every op index: 8^depth, capped. Back edges are
// detected directly in the flat layout; a diff array turns the [target,
// branch] intervals into per-op depths in one prefix sum.
std::vector<uint64_t> LoopWeights(const std::vector<DecodedOp>& ops) {
  std::vector<int32_t> delta(ops.size() + 1, 0);
  for (size_t i = 0; i < ops.size(); ++i) {
    const DecodedOp& op = ops[i];
    if (op.op == MicroOp::kBr || op.op == MicroOp::kCondBr) {
      for (uint32_t target : {op.target, op.op == MicroOp::kCondBr ? op.target2 : op.target}) {
        if (target <= i) {
          ++delta[target];
          --delta[i + 1];
        }
      }
    }
  }
  std::vector<uint64_t> weight(ops.size(), 1);
  int32_t depth = 0;
  for (size_t i = 0; i < ops.size(); ++i) {
    depth += delta[i];
    const int32_t d = std::min(depth, 10);
    weight[i] = 1ULL << (3 * d);  // 8^depth
  }
  return weight;
}

struct PatternAccum {
  uint16_t id = 0;
  uint64_t sites = 0;
  uint64_t weight = 0;
};

struct FuseCandidate {
  uint32_t index = 0;
  uint32_t len = 0;
  uint64_t weight = 0;
};

// Rewrites hot straight-line sequences of `df` in place. Patterns
// accumulate into `patterns` (module-wide name -> id/sites/weight).
void FuseFunction(DecodedFunction& df, std::map<std::string, PatternAccum>& patterns,
                  uint64_t* fused_tail_ops) {
  std::vector<DecodedOp>& ops = df.ops;
  if (ops.empty()) return;
  const std::vector<uint64_t> weight = LoopWeights(ops);

  // Collect candidates per block; triples and pairs both, ranked later.
  std::vector<FuseCandidate> candidates;
  for (size_t b = 0; b < df.block_starts.size(); ++b) {
    const uint32_t begin = df.block_starts[b];
    const uint32_t end = b + 1 < df.block_starts.size()
                             ? df.block_starts[b + 1]
                             : static_cast<uint32_t>(ops.size());
    for (uint32_t i = begin; i < end; ++i) {
      if (!FusibleInner(ops[i].op)) continue;
      // Triples only where a specialised handler exists — a generic triple
      // would dispatch its constituents through a data-dependent jump and
      // lose the fusion win (the pair decomposition still captures it).
      if (i + 2 < end && FusibleInner(ops[i + 1].op) && FusibleTail(ops[i + 2].op) &&
          TripleMacro(ops[i].op, ops[i + 1].op, ops[i + 2].op) != MicroOp::kCount) {
        candidates.push_back({i, 3, weight[i]});
      }
      if (i + 1 < end && FusibleTail(ops[i + 1].op)) {
        candidates.push_back({i, 2, weight[i]});
      }
    }
  }

  // Hottest first; longer sequences win ties so a hot triple beats the pair
  // it contains; earlier sites win the remaining ties for determinism.
  std::sort(candidates.begin(), candidates.end(),
            [](const FuseCandidate& x, const FuseCandidate& y) {
              if (x.weight != y.weight) return x.weight > y.weight;
              if (x.len != y.len) return x.len > y.len;
              return x.index < y.index;
            });

  std::vector<bool> consumed(ops.size(), false);
  for (const FuseCandidate& c : candidates) {
    bool free = true;
    for (uint32_t i = c.index; i < c.index + c.len; ++i) {
      if (consumed[i]) {
        free = false;
        break;
      }
    }
    if (!free) continue;
    for (uint32_t i = c.index; i < c.index + c.len; ++i) {
      consumed[i] = true;
    }

    DecodedOp& head = ops[c.index];
    const MicroOp macro = PickMacro(&head, c.len);
    PatternAccum& acc = patterns[PatternName(&head, c.len)];
    if (acc.sites == 0) {
      acc.id = static_cast<uint16_t>(patterns.size() - 1);
    }
    ++acc.sites;
    acc.weight += c.weight;
    head.fuse_head = static_cast<uint8_t>(head.op);
    head.fuse_id = acc.id;
    head.op = macro;
    *fused_tail_ops += c.len - 1;
  }
}

}  // namespace

DecodedModule::DecodedModule(const ir::Module& module, const ProgramLayout& layout,
                             bool fuse) {
  functions_.reserve(module.functions().size());
  for (size_t i = 0; i < module.functions().size(); ++i) {
    const Function* fn = module.functions()[i].get();
    CPI_CHECK(fn->ordinal() == i);
    functions_.push_back(DecodeFunction(*fn, module, layout));
    ops_before_ += functions_.back()->ops.size();
  }
  ops_after_ = ops_before_;
  if (!fuse) return;

  std::map<std::string, PatternAccum> patterns;
  uint64_t fused_tails = 0;
  for (auto& df : functions_) {
    FuseFunction(*df, patterns, &fused_tails);
  }
  ops_after_ = ops_before_ - fused_tails;

  // The map assigned ids in insertion order; patterns_ is indexed by id.
  patterns_.resize(patterns.size());
  for (const auto& [name, acc] : patterns) {
    CPI_CHECK(acc.id < patterns_.size());
    patterns_[acc.id] = FusePattern{name, acc.sites, acc.weight};
  }
  AccumulateFusionDecode(*this);
}

// ---------------------------------------------------------------------------
// Process-wide fusion statistics.

namespace {

struct GlobalPattern {
  uint64_t sites = 0;
  uint64_t weight = 0;
  uint64_t hits = 0;
};

std::mutex g_fusion_mu;
std::map<std::string, GlobalPattern>& GlobalPatterns() {
  static auto* m = new std::map<std::string, GlobalPattern>();
  return *m;
}
uint64_t g_fused_modules = 0;
uint64_t g_ops_before = 0;
uint64_t g_ops_after = 0;

}  // namespace

void ResetFusionStats() {
  std::lock_guard<std::mutex> lock(g_fusion_mu);
  GlobalPatterns().clear();
  g_fused_modules = 0;
  g_ops_before = 0;
  g_ops_after = 0;
}

void AccumulateFusionDecode(const DecodedModule& m) {
  std::lock_guard<std::mutex> lock(g_fusion_mu);
  ++g_fused_modules;
  g_ops_before += m.ops_before_fusion();
  g_ops_after += m.ops_after_fusion();
  for (const FusePattern& p : m.patterns()) {
    GlobalPattern& g = GlobalPatterns()[p.name];
    g.sites += p.sites;
    g.weight += p.weight;
  }
}

void AccumulateFusionHits(const std::vector<FusePattern>& patterns,
                          const std::vector<uint64_t>& hits) {
  CPI_CHECK(hits.size() == patterns.size());
  std::lock_guard<std::mutex> lock(g_fusion_mu);
  for (size_t i = 0; i < patterns.size(); ++i) {
    if (hits[i] != 0) {
      GlobalPatterns()[patterns[i].name].hits += hits[i];
    }
  }
}

FusionStats GetFusionStats() {
  std::lock_guard<std::mutex> lock(g_fusion_mu);
  FusionStats stats;
  stats.modules = g_fused_modules;
  stats.ops_before = g_ops_before;
  stats.ops_after = g_ops_after;
  stats.patterns.reserve(GlobalPatterns().size());
  for (const auto& [name, g] : GlobalPatterns()) {
    stats.patterns.push_back(FusionPatternStat{name, g.sites, g.weight, g.hits});
  }
  std::sort(stats.patterns.begin(), stats.patterns.end(),
            [](const FusionPatternStat& x, const FusionPatternStat& y) {
              if (x.hits != y.hits) return x.hits > y.hits;
              return x.name < y.name;
            });
  return stats;
}

}  // namespace cpi::vm
