// IR -> micro-op translation. One DecodedOp per IR instruction; every
// payload a handler needs at run time is resolved here, once per function.
#include "src/vm/decode.h"

#include <unordered_map>

#include "src/support/check.h"
#include "src/vm/bits.h"

namespace cpi::vm {

namespace {

using ir::BasicBlock;
using ir::Function;
using ir::Instruction;
using ir::Opcode;
using ir::StackKind;
using ir::Type;
using ir::Value;
using ir::ValueKind;

OperandSlot SlotFor(const Value* v) {
  OperandSlot s;
  switch (v->value_kind()) {
    case ValueKind::kConstInt: {
      const auto* c = static_cast<const ir::ConstantInt*>(v);
      s.imm = MaskToWidth(c->value(), TypeBits(c->type()));
      return s;
    }
    case ValueKind::kConstFloat:
      s.imm = DoubleToBits(static_cast<const ir::ConstantFloat*>(v)->value());
      return s;
    case ValueKind::kConstNull:
      s.imm = 0;
      return s;
    case ValueKind::kArgument:
    case ValueKind::kInstruction:
      CPI_CHECK(v->value_id() != ir::kInvalidValueId);
      s.is_imm = false;
      s.reg = v->value_id();
      return s;
  }
  CPI_UNREACHABLE();
}

std::unique_ptr<DecodedFunction> DecodeFunction(const Function& fn,
                                                const ir::Module& module,
                                                const ProgramLayout& layout) {
  auto out = std::make_unique<DecodedFunction>();
  out->func = &fn;

  // Pass 1: op index of every block once blocks are laid out back to back.
  std::unordered_map<const BasicBlock*, uint32_t> block_pc;
  uint32_t pc = 0;
  for (const auto& bb : fn.blocks()) {
    block_pc[bb.get()] = pc;
    pc += static_cast<uint32_t>(bb->instructions().size());
  }
  out->ops.reserve(pc);

  const bool safe_stack = module.protection().safe_stack;

  // Pass 2: emit.
  for (const auto& bb : fn.blocks()) {
    for (const Instruction* inst : bb->instructions()) {
      DecodedOp op;
      op.inst = inst;
      op.dest = inst->value_id();
      const auto& operands = inst->operands();
      switch (inst->op()) {
        case Opcode::kAlloca: {
          op.op = MicroOp::kAlloca;
          const Type* t = inst->extra_type();
          op.imm = std::max<uint64_t>(t->SizeInBytes(), 1);
          op.imm2 = std::max<uint64_t>(ir::AlignmentOf(t), 1) - 1;  // align mask
          op.flag = safe_stack && inst->stack_kind() != StackKind::kUnsafe;
          break;
        }
        case Opcode::kLoad:
          op.op = MicroOp::kLoad;
          op.a = SlotFor(operands[0]);
          op.imm = inst->type()->SizeInBytes();
          break;
        case Opcode::kStore: {
          op.op = MicroOp::kStore;
          op.a = SlotFor(operands[0]);
          op.b = SlotFor(operands[1]);
          const Type* pointee =
              static_cast<const ir::PointerType*>(operands[1]->type())->pointee();
          op.imm = pointee->IsVoid() ? 8 : pointee->SizeInBytes();
          break;
        }
        case Opcode::kFieldAddr: {
          op.op = MicroOp::kFieldAddr;
          op.a = SlotFor(operands[0]);
          const auto* st = static_cast<const ir::StructType*>(
              static_cast<const ir::PointerType*>(operands[0]->type())->pointee());
          const ir::StructField& field = st->fields()[inst->field_index()];
          op.imm = field.offset;
          op.imm2 = field.type->SizeInBytes();
          break;
        }
        case Opcode::kIndexAddr: {
          op.op = MicroOp::kIndexAddr;
          op.a = SlotFor(operands[0]);
          op.b = SlotFor(operands[1]);
          op.bits = static_cast<uint8_t>(TypeBits(operands[1]->type()));
          const Type* pointee =
              static_cast<const ir::PointerType*>(operands[0]->type())->pointee();
          op.imm = pointee->IsArray()
                       ? static_cast<const ir::ArrayType*>(pointee)->element()->SizeInBytes()
                       : pointee->SizeInBytes();
          break;
        }
        case Opcode::kBinOp:
          op.op = MicroOp::kBinOp;
          op.aux = static_cast<uint8_t>(inst->binop());
          op.a = SlotFor(operands[0]);
          op.b = SlotFor(operands[1]);
          op.bits = static_cast<uint8_t>(TypeBits(operands[0]->type()));
          op.bits2 = static_cast<uint8_t>(TypeBits(inst->type()));
          break;
        case Opcode::kCast:
          op.op = MicroOp::kCast;
          op.aux = static_cast<uint8_t>(inst->cast_kind());
          op.a = SlotFor(operands[0]);
          op.bits = static_cast<uint8_t>(TypeBits(operands[0]->type()));
          op.bits2 = static_cast<uint8_t>(TypeBits(inst->type()));
          break;
        case Opcode::kSelect:
          op.op = MicroOp::kSelect;
          op.a = SlotFor(operands[0]);
          op.b = SlotFor(operands[1]);
          op.c = SlotFor(operands[2]);
          break;
        case Opcode::kCall:
          op.op = MicroOp::kCall;
          op.callee = inst->callee();
          op.arg_begin = static_cast<uint32_t>(out->args.size());
          op.arg_count = static_cast<uint32_t>(operands.size());
          for (const Value* v : operands) {
            out->args.push_back(SlotFor(v));
          }
          break;
        case Opcode::kIndirectCall:
          op.op = MicroOp::kIndirectCall;
          op.a = SlotFor(operands[0]);
          op.arg_begin = static_cast<uint32_t>(out->args.size());
          op.arg_count = static_cast<uint32_t>(operands.size() - 1);
          for (size_t i = 1; i < operands.size(); ++i) {
            out->args.push_back(SlotFor(operands[i]));
          }
          break;
        case Opcode::kLibCall:
          op.op = MicroOp::kLibCall;
          op.aux = static_cast<uint8_t>(inst->lib_func());
          op.flag = inst->checked();
          CPI_CHECK(operands.size() <= 3);
          if (operands.size() > 0) op.a = SlotFor(operands[0]);
          if (operands.size() > 1) op.b = SlotFor(operands[1]);
          if (operands.size() > 2) op.c = SlotFor(operands[2]);
          break;
        case Opcode::kMalloc:
          op.op = MicroOp::kMalloc;
          op.a = SlotFor(operands[0]);
          break;
        case Opcode::kFree:
          op.op = MicroOp::kFree;
          op.a = SlotFor(operands[0]);
          break;
        case Opcode::kFuncAddr:
          op.op = MicroOp::kFuncAddr;
          op.imm = layout.CodeAddress(inst->callee());
          break;
        case Opcode::kGlobalAddr:
          op.op = MicroOp::kGlobalAddr;
          op.imm = layout.GlobalAddress(inst->global());
          op.imm2 = inst->global()->type()->SizeInBytes();
          break;
        case Opcode::kBr:
          op.op = MicroOp::kBr;
          op.target = block_pc.at(inst->successor(0));
          break;
        case Opcode::kCondBr:
          op.op = MicroOp::kCondBr;
          op.a = SlotFor(operands[0]);
          op.target = block_pc.at(inst->successor(0));
          op.target2 = block_pc.at(inst->successor(1));
          break;
        case Opcode::kRet:
          op.op = MicroOp::kRet;
          op.flag = !operands.empty();
          if (op.flag) {
            op.a = SlotFor(operands[0]);
          }
          break;
        case Opcode::kInput:
          op.op = MicroOp::kInput;
          break;
        case Opcode::kOutput:
          op.op = MicroOp::kOutput;
          op.a = SlotFor(operands[0]);
          break;
        case Opcode::kSpawn:
          op.op = MicroOp::kSpawn;
          op.callee = inst->callee();
          op.arg_begin = static_cast<uint32_t>(out->args.size());
          op.arg_count = static_cast<uint32_t>(operands.size());
          for (const Value* v : operands) {
            out->args.push_back(SlotFor(v));
          }
          break;
        case Opcode::kJoin:
          op.op = MicroOp::kJoin;
          op.a = SlotFor(operands[0]);
          break;
        case Opcode::kYield:
          op.op = MicroOp::kYield;
          break;
        case Opcode::kIntrinsic:
          op.op = MicroOp::kIntrinsic;
          op.aux = static_cast<uint8_t>(inst->intrinsic());
          CPI_CHECK(operands.size() <= 3);
          if (operands.size() > 0) op.a = SlotFor(operands[0]);
          if (operands.size() > 1) op.b = SlotFor(operands[1]);
          if (operands.size() > 2) op.c = SlotFor(operands[2]);
          break;
      }
      CPI_CHECK(op.op != MicroOp::kCount);
      out->ops.push_back(op);
    }
  }
  CPI_CHECK(out->ops.size() == pc);
  return out;
}

}  // namespace

DecodedModule::DecodedModule(const ir::Module& module, const ProgramLayout& layout) {
  functions_.reserve(module.functions().size());
  for (size_t i = 0; i < module.functions().size(); ++i) {
    const Function* fn = module.functions()[i].get();
    CPI_CHECK(fn->ordinal() == i);
    functions_.push_back(DecodeFunction(*fn, module, layout));
  }
}

}  // namespace cpi::vm
