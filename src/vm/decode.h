// Predecoded execution format: the flat micro-op arrays the VM's
// threaded-dispatch engine executes, plus the superinstruction (macro-op)
// tier layered on top of them.
//
// The reference interpreter re-switches on ir::Opcode and re-resolves each
// operand's ir::ValueKind for every executed instruction, and chases
// Instruction/Value/Type object graphs for sizes, offsets and widths that
// never change. Decoding performs all of that exactly once per function:
//
//   * every operand collapses to an OperandSlot — a register index or a
//     fully-masked immediate (constants are masked to their type width at
//     decode time, the way Machine::Eval masks them at run time);
//   * type-derived quantities (load/store sizes, field offsets, element
//     sizes, operand bit widths, alloca sizes/alignments) become payload
//     fields of the DecodedOp;
//   * function and global addresses are baked in from the ProgramLayout;
//   * basic blocks flatten into one contiguous op array per function, with
//     branch targets resolved to op indices;
//   * instrumentation intrinsics decode like any other op, so instrumented
//     and vanilla runs share the same dispatch loop.
//
// The fused tier (engine kFused) then runs a profile-guided fusion pass over
// the decoded ops: a static profiler weights every op by its loop-nesting
// depth (back edges are branches whose target op index precedes them), and
// hot straight-line pairs/triples are rewritten into macro-ops. Fusion only
// replaces the *head* op's opcode; the constituent tail ops stay in the
// array with their original opcodes and payloads, so branch targets never
// need remapping — a jump into the middle of a fused sequence simply
// executes the tail as the plain micro-op it still is. A macro handler
// charges each constituent exactly what the dispatch loop would have
// (base cycles, fuel, cache traffic), which keeps the simulated Counters of
// all three tiers bit-for-bit identical (see tests/decode_test.cc and
// tests/fuse_test.cc); only wall-clock changes.
#ifndef CPI_SRC_VM_DECODE_H_
#define CPI_SRC_VM_DECODE_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/ir/module.h"
#include "src/vm/machine.h"

namespace cpi::vm {

// A pre-resolved operand: either an immediate (constants, already masked to
// their type width) or an index into the frame's register file. Packed to 12
// bytes — the sentinel register index doubles as the immediate tag — so that
// three of them plus payloads keep DecodedOp inside 80 bytes.
struct OperandSlot {
  static constexpr uint32_t kImmSlot = 0xffffffffu;

  uint32_t reg = kImmSlot;
  uint32_t imm_lo = 0;
  uint32_t imm_hi = 0;

  bool is_imm() const { return reg == kImmSlot; }
  uint64_t imm() const { return imm_lo | (static_cast<uint64_t>(imm_hi) << 32); }
  void set_imm(uint64_t v) {
    reg = kImmSlot;
    imm_lo = static_cast<uint32_t>(v);
    imm_hi = static_cast<uint32_t>(v >> 32);
  }
  void set_reg(uint32_t r) { reg = r; }
};
static_assert(sizeof(OperandSlot) == 12, "OperandSlot must stay 12 bytes");

// One handler per micro-op; the dispatch table in machine.cc is indexed by
// this. Values mirror ir::Opcode one-to-one — the win is not a different
// instruction set but the pre-resolved operands and payloads.
enum class MicroOp : uint8_t {
  kAlloca,
  kLoad,
  kStore,
  kFieldAddr,
  kIndexAddr,
  kBinOp,
  kCast,
  kSelect,
  kCall,
  kIndirectCall,
  kLibCall,
  kMalloc,
  kFree,
  kFuncAddr,
  kGlobalAddr,
  kBr,
  kCondBr,
  kRet,
  kInput,
  kOutput,
  kIntrinsic,
  kSpawn,
  kJoin,
  kYield,
  kCount,
};

// Macro-ops (superinstructions): opcode values continue MicroOp's numbering
// so one dispatch table serves both tiers. A macro-op is stored in the
// *head* DecodedOp of a fused sequence; its constituents keep their original
// micro opcodes at the following op indices.
//
// Every macro opcode names its constituents *statically*, so the handler
// reaches each constituent with a direct (predictable) call. That is the
// entire win: a generic "dispatch fuse_head at run time" handler would
// re-introduce exactly the data-dependent indirect jump that fusion exists
// to remove, and measures slower than not fusing at all. Pairs get a full
// head x tail opcode matrix; triples only the hand-specialised shapes below
// (anything else is planned as a pair plus a standalone op).

// Pair matrix vocabulary, in opcode-matrix order: every fusible inner op
// (decode.cc FusibleInner) may head a pair; tails additionally admit the
// block-terminating branches.
constexpr MicroOp kFuseHeadOps[] = {
    MicroOp::kLoad,      MicroOp::kStore,    MicroOp::kFieldAddr,
    MicroOp::kIndexAddr, MicroOp::kBinOp,    MicroOp::kCast,
    MicroOp::kSelect,    MicroOp::kFuncAddr, MicroOp::kGlobalAddr,
    MicroOp::kIntrinsic,
};
constexpr size_t kNumFuseHeads = sizeof(kFuseHeadOps) / sizeof(kFuseHeadOps[0]);
constexpr size_t kNumFuseTails = kNumFuseHeads + 2;  // + kBr, kCondBr

// Specialised triple shapes: the hottest three-op sequences by dynamic hit
// count across the bench suite (all workloads x all schemes). A triple saves
// two dispatches instead of one, so the top shapes earn their own opcodes;
// the long tail decomposes into pairs.
struct TripleShape {
  MicroOp a, b, c;
};
constexpr TripleShape kTripleShapes[] = {
    {MicroOp::kLoad, MicroOp::kBinOp, MicroOp::kCondBr},
    {MicroOp::kLoad, MicroOp::kGlobalAddr, MicroOp::kIndexAddr},
    {MicroOp::kStore, MicroOp::kLoad, MicroOp::kBinOp},
    {MicroOp::kBinOp, MicroOp::kStore, MicroOp::kBr},
    {MicroOp::kLoad, MicroOp::kIndexAddr, MicroOp::kLoad},
    {MicroOp::kLoad, MicroOp::kBinOp, MicroOp::kGlobalAddr},
    {MicroOp::kLoad, MicroOp::kBinOp, MicroOp::kStore},
    {MicroOp::kIndexAddr, MicroOp::kStore, MicroOp::kLoad},
    {MicroOp::kBinOp, MicroOp::kStore, MicroOp::kFieldAddr},
};
constexpr size_t kNumTripleShapes = sizeof(kTripleShapes) / sizeof(kTripleShapes[0]);

enum class MacroOp : uint8_t {
  kCmpBr = static_cast<uint8_t>(MicroOp::kCount),  // int compare + cond-branch,
                                                   // branch consumes the result
  kFuse2,      // generic pair fallback (vocabulary gaps; none today)
  kFuse3,      // generic triple fallback (never planned; kept defensively)
  kPairBase,   // head x tail matrix: kPairBase + head_index * kNumFuseTails + tail_index
  kTripleBase = kPairBase + kNumFuseHeads * kNumFuseTails,  // kTripleShapes order
  kEnd = kTripleBase + kNumTripleShapes,
};
static_assert(static_cast<size_t>(MacroOp::kEnd) <= 256,
              "macro opcodes must fit the uint8_t opcode byte");

// Total number of opcode slots across both tiers (dispatch table size).
constexpr size_t kNumOpcodes = static_cast<size_t>(MacroOp::kEnd);

inline bool IsMacroOp(MicroOp op) {
  return static_cast<uint8_t>(op) >= static_cast<uint8_t>(MicroOp::kCount);
}

// Matrix coordinates <-> opcodes. Index helpers return -1 for ops outside
// the vocabulary.
constexpr int FuseHeadIndex(MicroOp op) {
  for (size_t i = 0; i < kNumFuseHeads; ++i) {
    if (kFuseHeadOps[i] == op) return static_cast<int>(i);
  }
  return -1;
}
constexpr int FuseTailIndex(MicroOp op) {
  if (op == MicroOp::kBr) return static_cast<int>(kNumFuseHeads);
  if (op == MicroOp::kCondBr) return static_cast<int>(kNumFuseHeads) + 1;
  return FuseHeadIndex(op);
}
constexpr MicroOp PairMacro(int head, int tail) {
  return static_cast<MicroOp>(static_cast<size_t>(MacroOp::kPairBase) +
                              static_cast<size_t>(head) * kNumFuseTails +
                              static_cast<size_t>(tail));
}

// Number of constituent micro-ops a fused opcode covers (1 for plain
// micro-ops).
inline uint32_t FusedLength(MicroOp op) {
  if (!IsMacroOp(op)) return 1;
  const auto v = static_cast<uint8_t>(op);
  if (v == static_cast<uint8_t>(MacroOp::kFuse3) ||
      v >= static_cast<uint8_t>(MacroOp::kTripleBase)) {
    return 3;
  }
  return 2;
}

struct DecodedOp {
  MicroOp op = MicroOp::kCount;
  // Sub-operation: BinOp / CastKind / LibFunc / IntrinsicId, as applicable.
  uint8_t aux = 0;
  // Operand bit widths: `bits` is the binop LHS / cast source / index width,
  // `bits2` the result width the value is masked to.
  uint8_t bits = 64;
  uint8_t bits2 = 64;
  // Result register (ir::kInvalidValueId for void results).
  uint32_t dest = 0xffffffffu;
  // Up to three pre-resolved operands (every opcode except calls has <= 3).
  OperandSlot a, b, c;
  // Fused head only: index into DecodedModule::patterns() (dynamic hit
  // stats) and the head's original micro opcode (generic macro dispatch).
  uint16_t fuse_id = 0;
  uint8_t fuse_head = 0;
  // kAlloca: safe-stack placement; kLibCall: checked variant; kRet: has a
  // return value.
  bool flag = false;
  // Opcode-specific payload (sizes, offsets, baked addresses, call/spawn
  // callee ordinals); see decode.cc.
  uint64_t imm = 0;
  uint64_t imm2 = 0;
  // Branch targets as op indices (kCondBr: taken / fall-through).
  uint32_t target = 0;
  uint32_t target2 = 0;
  // Call arguments: a [arg_begin, arg_begin+arg_count) range of pre-resolved
  // slots in DecodedFunction::args.
  uint32_t arg_begin = 0;
  uint16_t arg_count = 0;
};
// One cache line holds a fused pair's head and tail plus change; keeping the
// hot op stream at 80 bytes (down from 112) is a measurable win for both
// engines.
static_assert(sizeof(DecodedOp) == 80, "DecodedOp must stay 80 bytes");

struct DecodedFunction {
  const ir::Function* func = nullptr;
  std::vector<DecodedOp> ops;     // blocks flattened in block order
  std::vector<OperandSlot> args;  // call-argument slot pool
  // Cold side table, parallel to `ops`: the IR instruction each op was
  // decoded from. Only the call path reads it at run time
  // (Frame::pending_call and return-value plumbing).
  std::vector<const ir::Instruction*> insts;
  // Op index of each basic block's first op, in block order (fusion never
  // crosses these; tests introspect them).
  std::vector<uint32_t> block_starts;
};

// One distinct fused shape discovered in a module, e.g.
// "binop(slt)+condbr" or "intrinsic(cpi_load)+intrinsic(cpi_assert_code)".
struct FusePattern {
  std::string name;
  uint64_t sites = 0;    // static fusion sites rewritten to this shape
  uint64_t weight = 0;   // sum of loop-nesting weights of those sites
};

// All functions of a module, decoded once per Execute call and cached for
// its lifetime. Indexed by ir::Function::ordinal(), which also underlies
// code addresses — so an indirect-call target address resolves to its
// decoded body with pure arithmetic. With `fuse` set, the profile-guided
// fusion pass runs over every function after decoding.
class DecodedModule {
 public:
  DecodedModule(const ir::Module& module, const ProgramLayout& layout,
                bool fuse = false);

  const DecodedFunction& ForFunction(const ir::Function* f) const {
    CPI_CHECK(f->ordinal() < functions_.size());
    return *functions_[f->ordinal()];
  }

  // Fusion metadata (empty when decoded without fusion).
  const std::vector<FusePattern>& patterns() const { return patterns_; }
  uint64_t ops_before_fusion() const { return ops_before_; }
  uint64_t ops_after_fusion() const { return ops_after_; }

 private:
  std::vector<std::unique_ptr<DecodedFunction>> functions_;
  std::vector<FusePattern> patterns_;
  uint64_t ops_before_ = 0;
  uint64_t ops_after_ = 0;
};

// Process-wide fusion statistics, aggregated across every fused
// DecodedModule built and every fused execution since the last reset (the
// bench drivers run many cells; the suite reports the aggregate). Static
// site/weight numbers accumulate at decode time, dynamic hit counts when a
// Machine finishes running. Thread-safe.
struct FusionPatternStat {
  std::string name;
  uint64_t sites = 0;
  uint64_t weight = 0;
  uint64_t hits = 0;  // dynamic executions of the fused form
};

struct FusionStats {
  uint64_t modules = 0;      // fused DecodedModules built
  uint64_t ops_before = 0;   // decoded ops before fusion, summed
  uint64_t ops_after = 0;    // dispatched ops after fusion, summed
  std::vector<FusionPatternStat> patterns;  // sorted by hits, descending
};

void ResetFusionStats();
FusionStats GetFusionStats();
// Internal: called by DecodedModule / Machine to accumulate.
void AccumulateFusionDecode(const DecodedModule& m);
void AccumulateFusionHits(const std::vector<FusePattern>& patterns,
                          const std::vector<uint64_t>& hits);

}  // namespace cpi::vm

#endif  // CPI_SRC_VM_DECODE_H_
