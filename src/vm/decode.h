// Predecoded execution format: the flat micro-op arrays the VM's
// threaded-dispatch engine executes.
//
// The reference interpreter re-switches on ir::Opcode and re-resolves each
// operand's ir::ValueKind for every executed instruction, and chases
// Instruction/Value/Type object graphs for sizes, offsets and widths that
// never change. Decoding performs all of that exactly once per function:
//
//   * every operand collapses to an OperandSlot — a register index or a
//     fully-masked immediate (constants are masked to their type width at
//     decode time, the way Machine::Eval masks them at run time);
//   * type-derived quantities (load/store sizes, field offsets, element
//     sizes, operand bit widths, alloca sizes/alignments) become payload
//     fields of the DecodedOp;
//   * function and global addresses are baked in from the ProgramLayout;
//   * basic blocks flatten into one contiguous op array per function, with
//     branch targets resolved to op indices;
//   * instrumentation intrinsics decode like any other op, so instrumented
//     and vanilla runs share the same dispatch loop.
//
// Decoding is a pure representation change: one DecodedOp per IR
// instruction, no fusion, no reordering — which is what lets the decoded
// engine reproduce the reference interpreter's simulated Counters bit for
// bit (see tests/decode_test.cc).
#ifndef CPI_SRC_VM_DECODE_H_
#define CPI_SRC_VM_DECODE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/ir/module.h"
#include "src/vm/machine.h"

namespace cpi::vm {

// A pre-resolved operand: either an immediate (constants, already masked to
// their type width) or an index into the frame's register file.
struct OperandSlot {
  uint64_t imm = 0;
  uint32_t reg = 0;
  bool is_imm = true;
};

// One handler per micro-op; the dispatch table in machine.cc is indexed by
// this. Values mirror ir::Opcode one-to-one — the win is not a different
// instruction set but the pre-resolved operands and payloads.
enum class MicroOp : uint8_t {
  kAlloca,
  kLoad,
  kStore,
  kFieldAddr,
  kIndexAddr,
  kBinOp,
  kCast,
  kSelect,
  kCall,
  kIndirectCall,
  kLibCall,
  kMalloc,
  kFree,
  kFuncAddr,
  kGlobalAddr,
  kBr,
  kCondBr,
  kRet,
  kInput,
  kOutput,
  kIntrinsic,
  kSpawn,
  kJoin,
  kYield,
  kCount,
};

struct DecodedOp {
  MicroOp op = MicroOp::kCount;
  // Sub-operation: BinOp / CastKind / LibFunc / IntrinsicId, as applicable.
  uint8_t aux = 0;
  // Operand bit widths: `bits` is the binop LHS / cast source / index width,
  // `bits2` the result width the value is masked to.
  uint8_t bits = 64;
  uint8_t bits2 = 64;
  // Result register (ir::kInvalidValueId for void results).
  uint32_t dest = 0xffffffffu;
  // Up to three pre-resolved operands (every opcode except calls has <= 3).
  OperandSlot a, b, c;
  // Opcode-specific payload (sizes, offsets, baked addresses); see decode.cc.
  uint64_t imm = 0;
  uint64_t imm2 = 0;
  // Branch targets as op indices (kCondBr: taken / fall-through).
  uint32_t target = 0;
  uint32_t target2 = 0;
  // Call arguments: a [arg_begin, arg_begin+arg_count) range of pre-resolved
  // slots in DecodedFunction::args.
  uint32_t arg_begin = 0;
  uint32_t arg_count = 0;
  // kAlloca: safe-stack placement; kLibCall: checked variant; kRet: has a
  // return value.
  bool flag = false;
  // The IR instruction this op was decoded from. Calls keep their identity
  // here (Frame::pending_call and return-value plumbing), and the shared
  // libcall/intrinsic bodies use it for nothing else.
  const ir::Instruction* inst = nullptr;
  const ir::Function* callee = nullptr;
};

struct DecodedFunction {
  const ir::Function* func = nullptr;
  std::vector<DecodedOp> ops;      // blocks flattened in block order
  std::vector<OperandSlot> args;   // call-argument slot pool
};

// All functions of a module, decoded once per Execute call and cached for
// its lifetime. Indexed by ir::Function::ordinal(), which also underlies
// code addresses — so an indirect-call target address resolves to its
// decoded body with pure arithmetic.
class DecodedModule {
 public:
  DecodedModule(const ir::Module& module, const ProgramLayout& layout);

  const DecodedFunction& ForFunction(const ir::Function* f) const {
    CPI_CHECK(f->ordinal() < functions_.size());
    return *functions_[f->ordinal()];
  }

 private:
  std::vector<std::unique_ptr<DecodedFunction>> functions_;
};

}  // namespace cpi::vm

#endif  // CPI_SRC_VM_DECODE_H_
