// Fault injection for the VM: adversarial perturbations of the *simulated*
// runtime, applied at deterministic instruction counts.
//
// A FaultPlan is the fuzzing harness's probe set (bench/fuzz, src/fuzz):
// each event models a failure the paper's threat model or deployment story
// has to survive — direct safe-region corruption (the "what if CPI's
// secrecy/isolation assumption breaks" question of §3.2.3), allocation
// failure in the runtime's own data structures, and adversarial preemption
// points. The contract under any plan is *graceful containment*: the run
// must terminate with a reported RunResult (ok, violation, crash or
// out-of-fuel) — never crash the host process.
//
// Events fire at the first dispatch boundary at or after `at_instruction`.
// On the fused tier a superinstruction charges its constituents in one
// batch, so the boundary can land up to two constituents later than on the
// decoded tier — firing points are exact per engine, reproducible across
// runs, but not guaranteed identical across engines.
#ifndef CPI_SRC_VM_FAULT_H_
#define CPI_SRC_VM_FAULT_H_

#include <cstdint>
#include <vector>

namespace cpi::vm {

enum class FaultKind : uint8_t {
  kNone = 0,
  // XOR a byte of the current thread's live safe-stack frame data (ret
  // tokens, safe allocas). Models an attacker who broke the isolation
  // mechanism and writes the safe region directly.
  kCorruptSafeStack,
  // Flip bits in the value of a live safe-pointer-store entry. Models
  // corruption of the metadata region itself (CPI's secrecy assumption).
  kCorruptSafeStore,
  // The next growth allocation inside the safe pointer store (page, table
  // or rehash) fails with a simulated OOM.
  kOomSafeStore,
  // Collapse the current thread's heap arena: the next fresh malloc reports
  // out-of-memory.
  kOomHeapArena,
  // The next regular-region page materialisation fails with a simulated
  // OOM (ByteMemory allocation failure).
  kOomPageAlloc,
  // Force a context switch at an adversarial point (ignores the quantum).
  kForcePreempt,
  // Flip bits in a live entry of one shard of the sharded safe pointer
  // store (arg selects the shard mod ShardCount). Containment is per shard:
  // entries homed to every other shard must stay intact.
  kCorruptShard,
  // The next growth allocation inside one shard of the sharded store fails
  // with a simulated OOM; other shards keep growing normally.
  kOomShard,
};

inline constexpr int kNumFaultKinds = 9;  // including kNone

inline const char* FaultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kCorruptSafeStack:
      return "corrupt-safe-stack";
    case FaultKind::kCorruptSafeStore:
      return "corrupt-safe-store";
    case FaultKind::kOomSafeStore:
      return "oom-safe-store";
    case FaultKind::kOomHeapArena:
      return "oom-heap-arena";
    case FaultKind::kOomPageAlloc:
      return "oom-page-alloc";
    case FaultKind::kForcePreempt:
      return "force-preempt";
    case FaultKind::kCorruptShard:
      return "corrupt-one-shard";
    case FaultKind::kOomShard:
      return "oom-one-shard";
  }
  return "?";
}

struct FaultEvent {
  FaultKind kind = FaultKind::kNone;
  // Fires at the first dispatch boundary where the executed-instruction
  // counter is >= this value.
  uint64_t at_instruction = 0;
  // Kind-specific payload: byte offset for kCorruptSafeStack, entry index
  // for kCorruptSafeStore, countdown seed for the OOM kinds. The low bits
  // also derive the XOR mask for the corruption kinds (never zero).
  uint64_t arg = 0;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
};

}  // namespace cpi::vm

#endif  // CPI_SRC_VM_FAULT_H_
