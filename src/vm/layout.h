// Simulated address-space layout (Fig. 2).
//
//   regular region (attacker-writable through memory bugs):
//     code            [read/execute only, never writable]
//     ro globals      [read-only data: string constants, jump tables]
//     rw globals
//     heap
//     unsafe stacks   (the T' stacks of Fig. 2; the only stack when no
//                      SafeStack pass ran)
//   safe region (reachable only via intrinsics / compiler-generated frames):
//     safe pointer store
//     safe stacks
//
// The two regions are disjoint address ranges; no address pointing into the
// safe region is ever stored in the regular region (the leak-proof
// information-hiding argument of §3.2.3 — tests assert this invariant).
#ifndef CPI_SRC_VM_LAYOUT_H_
#define CPI_SRC_VM_LAYOUT_H_

#include <cstdint>

namespace cpi::vm {

inline constexpr uint64_t kCodeBase = 0x0000'1000'0000ULL;
inline constexpr uint64_t kCodeStride = 16;  // one "entry point" per function
inline constexpr uint64_t kCodeLimit = 0x0000'1100'0000ULL;

inline constexpr uint64_t kRoGlobalBase = 0x0000'2000'0000ULL;
inline constexpr uint64_t kRwGlobalBase = 0x0000'3000'0000ULL;
inline constexpr uint64_t kHeapBase = 0x0000'4000'0000ULL;
inline constexpr uint64_t kHeapLimit = 0x0000'7000'0000ULL;

// The regular stack grows down from here (unsafe stack under SafeStack).
inline constexpr uint64_t kStackTop = 0x0000'7fff'f000ULL;
inline constexpr uint64_t kStackLimit = 0x0000'7000'0000ULL;  // lowest valid

// Everything at or above this base belongs to the safe region.
inline constexpr uint64_t kSafeRegionBase = 0x6000'0000'0000ULL;
// Safe stacks grow down from here.
inline constexpr uint64_t kSafeStackTop = 0x6f00'0000'0000ULL;

// --- simulated threads (vm::Scheduler) --------------------------------------
// Every simulated thread owns a private unsafe-stack region in regular
// memory and a private safe-stack region in the safe region (CPI's safe
// stacks are per-thread by design, §3.2.3/§3.2.4). Regions are strided down
// from the single-thread tops, so thread 0 — the main thread — keeps exactly
// the classic layout and single-threaded programs are laid out (and charged)
// byte-identically to the pre-scheduler VM. The stride exceeds the mapped
// region size, leaving an unmapped guard gap between consecutive stacks.
inline constexpr uint64_t kMaxThreads = 16;
inline constexpr uint64_t kStackRegionBytes = 4ULL << 20;        // mapped per stack
inline constexpr uint64_t kThreadStackStride = 0x0080'0000ULL;   // 8 MiB apart
// Spawned threads allocate from private heap arenas carved from the top of
// the heap range, so concurrent mallocs produce schedule-independent
// addresses (per-thread arenas, like production allocators). Thread 0 keeps
// growing from kHeapBase; its limit shrinks below the lowest spawned arena.
inline constexpr uint64_t kThreadHeapBytes = 0x0200'0000ULL;     // 32 MiB arena

inline constexpr uint64_t UnsafeStackTopFor(uint64_t tid) {
  return kStackTop - tid * kThreadStackStride;
}
inline constexpr uint64_t SafeStackTopFor(uint64_t tid) {
  return kSafeStackTop - tid * kThreadStackStride;
}
// The thread whose safe-stack region contains `addr`; kMaxThreads when the
// address falls outside every region (e.g. into a guard gap).
inline constexpr uint64_t SafeStackOwnerOf(uint64_t addr) {
  if (addr >= kSafeStackTop || addr < SafeStackTopFor(kMaxThreads - 1) - kStackRegionBytes) {
    return kMaxThreads;
  }
  const uint64_t tid = (kSafeStackTop - 1 - addr) / kThreadStackStride;
  return addr >= SafeStackTopFor(tid) - kStackRegionBytes ? tid : kMaxThreads;
}

// --- safe-region sharding ---------------------------------------------------
// The sharded safe pointer store partitions its keys (regular-region
// addresses of protected pointers) by the thread whose memory region the
// address belongs to — its "home". Per-thread unsafe stacks and heap arenas
// home to their owning tid; everything else (globals, thread 0's heap, code)
// homes to the main thread. The mapping is a pure function of the address
// and the static layout above, so it is identical across engines, quanta and
// schedules — which is what lets the contention model charge per-shard costs
// without breaking the bit-identical-counters contract.
inline constexpr uint64_t HomeOf(uint64_t addr) {
  // Safe-stack slice of Ms: owned by the stack's thread.
  if (const uint64_t owner = SafeStackOwnerOf(addr); owner < kMaxThreads) {
    return owner;
  }
  // Unsafe stacks stride down from kStackTop; guard gaps home to thread 0.
  if (addr < kStackTop && addr >= UnsafeStackTopFor(kMaxThreads - 1) - kStackRegionBytes) {
    const uint64_t tid = (kStackTop - 1 - addr) / kThreadStackStride;
    if (addr >= UnsafeStackTopFor(tid) - kStackRegionBytes) {
      return tid;
    }
    return 0;
  }
  // Spawned threads' heap arenas are carved down from kHeapLimit; arena t
  // (t >= 1) is [kHeapLimit - t*kThreadHeapBytes, kHeapLimit - (t-1)*...).
  if (addr < kHeapLimit && addr >= kHeapLimit - (kMaxThreads - 1) * kThreadHeapBytes) {
    return (kHeapLimit - 1 - addr) / kThreadHeapBytes + 1;
  }
  return 0;
}

// The shard a safe-store key lives in. Homes are hashed (SplitMix64) onto
// shards rather than taken mod `count`: with only kMaxThreads static homes a
// modulo mapping would keep every shard shared until count >= kMaxThreads,
// hiding the contention decline the shard ablation exists to show.
inline constexpr uint64_t ShardHash(uint64_t home) {
  uint64_t z = home + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
inline constexpr uint32_t ShardOfAddress(uint64_t addr, uint32_t count) {
  if (count <= 1) {
    return 0;
  }
  return static_cast<uint32_t>(ShardHash(HomeOf(addr)) % count);
}

// Return tokens: values the VM uses to represent saved return addresses in
// stack memory. Deliberately a distinct range so a corrupted token is
// distinguishable from a code address (jumping to one or the other behaves
// differently, as on real hardware).
inline constexpr uint64_t kRetTokenBase = 0x0000'0800'0000'0000ULL;

inline bool IsInSafeRegion(uint64_t addr) { return addr >= kSafeRegionBase; }
inline bool IsCodeAddress(uint64_t addr) { return addr >= kCodeBase && addr < kCodeLimit; }
inline bool IsRetToken(uint64_t addr) {
  return addr >= kRetTokenBase && addr < kRetTokenBase + 0x0100'0000'0000ULL;
}

}  // namespace cpi::vm

#endif  // CPI_SRC_VM_LAYOUT_H_
