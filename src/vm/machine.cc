#include "src/vm/machine.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <map>
#include <new>
#include <unordered_map>

#include "src/runtime/seal.h"
#include "src/support/rng.h"
#include "src/vm/bits.h"
#include "src/vm/decode.h"
#include "src/vm/layout.h"

namespace cpi::vm {

const char* RunStatusName(RunStatus s) {
  switch (s) {
    case RunStatus::kOk: return "ok";
    case RunStatus::kViolation: return "violation";
    case RunStatus::kCrash: return "crash";
    case RunStatus::kOutOfFuel: return "out-of-fuel";
  }
  CPI_UNREACHABLE();
}

const char* EngineKindName(EngineKind e) {
  switch (e) {
    case EngineKind::kReference: return "reference";
    case EngineKind::kDecoded: return "decoded";
    case EngineKind::kFused: return "fused";
  }
  CPI_UNREACHABLE();
}

namespace {

using ir::BasicBlock;
using ir::BinOp;
using ir::CastKind;
using ir::Function;
using ir::Instruction;
using ir::IntrinsicId;
using ir::LibFunc;
using ir::Opcode;
using ir::StackKind;
using ir::Type;
using ir::Value;
using ir::ValueKind;
using runtime::EntryKind;
using runtime::IsolationKind;
using runtime::RegMeta;
using runtime::SafeEntry;
using runtime::TouchList;
using runtime::Violation;

// --- cost model ------------------------------------------------------------
constexpr uint64_t kBaseCycles = 1;
constexpr uint64_t kCallCycles = 3;
constexpr uint64_t kAllocCycles = 24;
constexpr uint64_t kFloatExtraCycles = 2;
constexpr uint64_t kDivExtraCycles = 12;
constexpr uint64_t kSfiMaskCycles = 1;
constexpr uint64_t kLibCallSetupCycles = 8;
constexpr uint64_t kSpawnCycles = 200;  // clone+stack setup, amortised
constexpr uint64_t kJoinCycles = 24;    // futex-style wake handshake
constexpr uint64_t kSbShadowBase = 0x5000'0000'0000ULL;
constexpr uint64_t kMaxOutputWords = 1u << 22;

// MaskToWidth / SignExtend / TypeBits / BitsToDouble / DoubleToBits live in
// src/vm/bits.h, shared with the predecoder.

struct HeapBlock {
  uint64_t size = 0;
  uint64_t temporal_id = 0;
  bool live = false;
};

class Machine {
 public:
  Machine(const ir::Module& module, const RunOptions& options)
      : module_(module),
        options_(options),
        store_(options.use_safe_store
                   ? runtime::CreateSafeStore(options.store,
                                              std::max<uint32_t>(options.shards, 1),
                                              &ShardOfAddress)
                   : nullptr),
        sealer_(runtime::DeriveSealKey(options.seed)),
        shards_(std::max<uint32_t>(options.shards, 1)),
        migrate_(options.migrate && std::max<uint32_t>(options.shards, 1) > 1) {
    // Static shard-ownership table: shard s is write-local to thread t when
    // t's home is the only one hashing to s; otherwise (including the
    // single-shard default, shared by construction) the shard is contended
    // for every thread. Pure function of the shard count — never of the
    // schedule — so charges stay engine/quantum-invariant.
    shard_owner_.assign(shards_, -1);
    if (shards_ > 1) {
      for (uint64_t h = 0; h < kMaxThreads; ++h) {
        const uint32_t s = static_cast<uint32_t>(ShardHash(h) % shards_);
        shard_owner_[s] = shard_owner_[s] == -1 ? static_cast<int32_t>(h) : -2;
      }
    }
    if (migrate_) {
      // Epoch 0: only the main thread has ever lived, so only its home is
      // claimed — this is where the epoch model beats the static table,
      // which must reserve every home slot for a thread that may never
      // spawn. Until the first spawn publishes epoch 1 nothing is charged
      // anyway (concurrent_ is false), which is what keeps single-threaded
      // migrate-on runs byte-identical at every shard count.
      for (uint64_t h = 0; h < kMaxThreads; ++h) {
        home_owner_[h] = -1;
      }
      home_owner_[0] = 0;
      EpochTable base;
      base.owner = DeriveEpochOwners();
      base.frozen.assign(shards_, 0);
      epochs_.push_back(std::move(base));
    }
  }

  RunResult Run();

 private:
  struct Frame {
    const Function* func = nullptr;
    std::vector<uint64_t> regs;
    std::vector<RegMeta> meta;
    const BasicBlock* bb = nullptr;
    // Decoded engine: the function's micro-op array. `ip` then indexes into
    // it (the reference interpreter indexes bb->instructions() instead).
    const DecodedFunction* dfunc = nullptr;
    size_t ip = 0;
    const Instruction* pending_call = nullptr;
    uint64_t saved_sp = 0;
    uint64_t saved_safe_sp = 0;
    uint64_t ret_slot = 0;       // address of the saved-return-token word
    bool ret_slot_safe = false;  // token lives in the safe region
    uint64_t token = 0;
    // Chained return MACs (ProtectionFlags::ret_chain): the thread's chain
    // head at the moment this frame was pushed — the predecessor the saved
    // token was sealed over, restored as the head when this frame returns.
    uint64_t saved_chain = 0;
    uint64_t cookie_addr = 0;  // 0: no cookie
    bool no_continuation = false;
  };

  // One simulated thread. Thread 0 is the main thread; its regions coincide
  // with the classic single-thread layout, so a program that never spawns is
  // executed — and charged — byte-identically to the pre-scheduler VM.
  // Every thread owns: its call stack (frames), its unsafe-stack cursor in
  // shared regular memory, a private ByteMemory-backed safe stack (the
  // per-thread slice of Ms), a private L1 cache (threads model cores), a
  // private heap arena + free lists (schedule-independent malloc addresses),
  // and private ret-token/temporal-id sequences. Everything a thread shares
  // — regular memory, the safe pointer store, the heap block table — is
  // deterministic under the fixed-quantum round-robin below.
  struct ThreadContext {
    enum class State { kRunnable, kJoining, kDone };

    ThreadContext(uint64_t id, const CacheModel::Config& cache_config)
        : tid(id), cache(cache_config) {}

    uint64_t tid = 0;
    State state = State::kRunnable;
    uint64_t join_target = 0;  // valid while kJoining
    bool reaped = false;       // a finished thread may be joined exactly once
    uint64_t exit_value = 0;
    RegMeta exit_meta;

    std::vector<Frame> frames;
    uint64_t sp = 0;
    uint64_t safe_sp = 0;
    uint64_t token_counter = 0;
    // Chained return MACs: the sealed token of the innermost live frame (0
    // before the first call). Per-thread — each thread authenticates its own
    // chain, like PACStack's per-thread CR register.
    uint64_t ret_chain_head = 0;
    uint64_t temporal_counter = 0;  // spawned threads mint (tid<<48 | n) ids
    uint64_t heap_next = 0;
    uint64_t heap_limit = 0;
    std::unordered_map<uint64_t, std::vector<uint64_t>> free_lists;  // size -> addrs
    ByteMemory safe_stack;
    CacheModel cache;
    // Epoch-local ownership snapshot (RunOptions::migrate): index into
    // epochs_, adopted at this thread's birth and at its *own* spawn/join
    // ops only. A thread's contention charges are therefore a pure function
    // of its own operation stream plus happens-before-ordered spawn/join
    // events — never of how quanta interleaved the threads.
    uint32_t epoch = 0;
  };

  // --- setup ---------------------------------------------------------------
  void LoadProgram();
  // Run()'s body up to (but excluding) the result aggregation, so the
  // std::bad_alloc containment in Run() covers load + every engine loop
  // while aggregation still happens for contained-OOM runs.
  void RunToCompletion();

  // --- fault injection -----------------------------------------------------
  // Armed from RunOptions::faults. The loops compare the instruction counter
  // against fault_at_ (UINT64_MAX when no event is pending), so a run
  // without a plan pays one never-taken branch per dispatch and nothing
  // else. Fault actions charge no simulated cycles: they model an external
  // adversary / failing host, not program work.
  __attribute__((noinline, cold)) void ApplyPendingFaults();
  void InjectFault(const FaultEvent& e);

  // --- trap handling -------------------------------------------------------
  // Traps fire at most once per run; keeping them out of line keeps the
  // flattened fused loop's hot code small.
  __attribute__((noinline, cold)) void Trap(RunStatus status, Violation v,
                                            std::string message) {
    if (done_) {
      return;
    }
    done_ = true;
    result_.status = status;
    result_.violation = v;
    result_.message = std::move(message);
  }
  __attribute__((noinline, cold)) void Crash(std::string message) {
    Trap(RunStatus::kCrash, Violation::kNone, std::move(message));
  }
  __attribute__((noinline, cold)) void Abort(Violation v, std::string message) {
    Trap(RunStatus::kViolation, v, std::move(message));
  }

  // --- cost accounting -----------------------------------------------------
  __attribute__((always_inline)) void Cycles(uint64_t n) {
    result_.counters.cycles += n;
  }
  __attribute__((always_inline)) void ChargeAccess(uint64_t addr) {
    ++result_.counters.mem_accesses;
    Cycles(cur_->cache.Access(addr));
  }
  void ChargeRegularAccess(uint64_t addr) {
    ChargeAccess(addr);
    if (options_.isolation == IsolationKind::kSfi) {
      Cycles(kSfiMaskCycles);  // the SFI mask on every regular access
    }
  }

  // --- value plumbing ------------------------------------------------------
  uint64_t Eval(const Frame& f, const Value* v) const;
  RegMeta EvalMeta(const Frame& f, const Value* v) const;
  __attribute__((always_inline)) void SetRegId(Frame& f, uint32_t id,
                                               uint64_t value, const RegMeta& meta) {
    f.regs[id] = value;
    f.meta[id] = meta;
  }
  void SetReg(Frame& f, const Instruction* inst, uint64_t value, const RegMeta& meta) {
    SetRegId(f, inst->value_id(), value, meta);
  }
  // Decoded-operand plumbing: constants were masked at decode time.
  __attribute__((always_inline)) static uint64_t SlotVal(const Frame& f,
                                                         const OperandSlot& s) {
    return s.is_imm() ? s.imm() : f.regs[s.reg];
  }
  __attribute__((always_inline)) static RegMeta SlotMeta(const Frame& f,
                                                         const OperandSlot& s) {
    return s.is_imm() ? RegMeta::None() : f.meta[s.reg];
  }

  // Operand accessors bridging the two engines into the shared semantic
  // bodies (DoLibCall / DoIntrinsic / DoRet): InstOps re-evaluates IR
  // operands the way the reference interpreter always has; SlotOps reads
  // pre-resolved slots.
  struct InstOps {
    Machine& m;
    Frame& f;
    const Instruction* inst;
    uint64_t value(size_t i) const { return m.Eval(f, inst->operand(i)); }
    RegMeta meta(size_t i) const { return m.EvalMeta(f, inst->operand(i)); }
    void set(uint64_t v, const RegMeta& mt) const { m.SetReg(f, inst, v, mt); }
  };
  struct SlotOps {
    Machine& m;
    Frame& f;
    const DecodedOp& op;
    const OperandSlot& slot(size_t i) const { return i == 0 ? op.a : i == 1 ? op.b : op.c; }
    uint64_t value(size_t i) const { return SlotVal(f, slot(i)); }
    RegMeta meta(size_t i) const { return SlotMeta(f, slot(i)); }
    void set(uint64_t v, const RegMeta& mt) const { m.SetRegId(f, op.dest, v, mt); }
  };

  // --- routed memory access ------------------------------------------------
  // Returns the backing memory for `addr`, enforcing safe-region isolation:
  // only accesses whose provenance (`meta`) proves a compiler-generated
  // safe-stack object may touch the safe region. Returns nullptr after
  // trapping.
  ByteMemory* Route(uint64_t addr, const RegMeta& meta, bool for_write);
  bool DataRead(uint64_t addr, uint64_t size, const RegMeta& addr_meta, uint64_t* out);
  bool DataWrite(uint64_t addr, uint64_t size, const RegMeta& addr_meta, uint64_t value);

  // Byte-granular helpers for the libc-style routines; charge per 8-byte
  // chunk.
  bool ReadByteRouted(uint64_t addr, const RegMeta& meta, uint8_t* out);
  bool WriteByteRouted(uint64_t addr, const RegMeta& meta, uint8_t value);
  void ChargeChunked(uint64_t addr, uint64_t len);

  // --- frames ---------------------------------------------------------------
  bool PushFrame(const Function* callee, const std::vector<uint64_t>& args,
                 const std::vector<RegMeta>& arg_meta, bool no_continuation);
  void PopFrame();
  void ReturnToCaller(uint64_t value, const RegMeta& meta);

  // --- execution ------------------------------------------------------------
  void Step();
  void ExecBinOp(Frame& f, const Instruction* inst);
  void ExecCast(Frame& f, const Instruction* inst);
  void ExecLibCall(Frame& f, const Instruction* inst);
  void ExecIntrinsic(Frame& f, const Instruction* inst);
  void ExecRet(Frame& f, const Instruction* inst);
  void ExecCallCommon(Frame& f, const Instruction* inst, const Function* callee,
                      size_t first_arg_index);

  // Semantic bodies shared verbatim by both engines, parameterised over the
  // operand source (InstOps / SlotOps). Each advances f.ip exactly like the
  // reference switch arms did.
  template <typename Ops>
  void DoLibCall(Frame& f, LibFunc func, bool checked, const Ops& ops);
  template <typename Ops>
  void DoIntrinsic(Frame& f, IntrinsicId id, const Ops& ops);
  template <typename Ops>
  void DoRet(Frame& f, bool has_value, const Ops& ops);
  template <typename Ops>
  void DoBinOp(Frame& f, BinOp bop, int bits, int result_bits, const Ops& ops);
  template <typename Ops>
  void DoCast(Frame& f, CastKind kind, int src_bits, int dst_bits, const Ops& ops);
  void DoMalloc(Frame& f, uint64_t requested, uint32_t dest);
  void DoFree(Frame& f, uint64_t addr);
  // Thread ops, shared by both engines.
  void DoSpawn(Frame& f, const Function* callee, std::vector<uint64_t> args,
               std::vector<RegMeta> metas, uint32_t dest);
  void DoJoin(Frame& f, uint64_t tid, uint32_t dest);
  void DoYield(Frame& f);
  // Fresh allocation identifier for the current thread, written to *id.
  // Thread 0 draws from the classic shared sequence (1, 2, ...); spawned
  // threads mint from a private namespace so ids are schedule-independent.
  // Returns false (after trapping) if the minted id failed to register.
  bool AllocateTemporalId(uint64_t* id);
  // Argument marshalling + frame push shared by direct and indirect decoded
  // calls.
  void DoCallSlots(Frame& f, const DecodedOp& op, const Function* callee);

  // --- decoded engine -------------------------------------------------------
  using Handler = void (*)(Machine&, Frame&, const DecodedOp&);
  static const Handler kDispatch[kNumOpcodes];
  void RunDecodedLoop();
  void RunFusedLoop();
  // Charges the dispatch-loop costs (fuel check, instruction count, base
  // cycles, quantum tick) for the next constituent of a fused sequence —
  // exactly what RunDecodedLoop's header would have charged had the
  // constituent been dispatched on its own. The quantum tick is clamped so
  // a macro never reschedules mid-sequence; the loop's own decrement fires
  // the (at most two ops deferred) context switch right after the macro,
  // which race-free programs cannot observe (tests/sched_test.cc sweeps the
  // quantum for exactly this invariance). Returns false when the macro must
  // stop (trap, including out-of-fuel between constituents).
  // Batched charging for a macro's tail constituents: one fuel-headroom
  // check, one counter update, one clamped quantum step — instead of a
  // FusedStep per tail. Returns false when fewer than `tails` steps of fuel
  // remain; the caller then falls back to per-constituent FusedStep
  // charging so an out-of-fuel trap lands on exactly the same constituent
  // as unfused dispatch would.
  __attribute__((always_inline)) bool PrechargeTails(uint64_t tails) {
    if (result_.counters.instructions + tails > options_.max_steps) {
      return false;
    }
    result_.counters.instructions += tails;
    Cycles(tails * kBaseCycles);
    // == applying FusedStep's clamped decrement `tails` times.
    const uint64_t dec = quantum_left_ - 1 < tails ? quantum_left_ - 1 : tails;
    quantum_left_ -= dec;
    return true;
  }
  // A constituent trapped after PrechargeTails: the constituents after it
  // never ran, so return their pre-charged costs — trap-time counters stay
  // bit-identical to unfused dispatch, where charging stops at the trap.
  __attribute__((always_inline)) void UnchargeTails(uint64_t not_run) {
    result_.counters.instructions -= not_run;
    result_.counters.cycles -= not_run * kBaseCycles;
  }
  __attribute__((always_inline)) bool FusedStep() {
    if (done_) {
      return false;
    }
    if (result_.counters.instructions >= options_.max_steps) {
      Trap(RunStatus::kOutOfFuel, Violation::kNone, "step budget exhausted");
      return false;
    }
    ++result_.counters.instructions;
    Cycles(kBaseCycles);
    if (quantum_left_ > 1) {
      --quantum_left_;
    }
    return true;
  }
  static void OpAlloca(Machine& m, Frame& f, const DecodedOp& op);
  static void OpLoad(Machine& m, Frame& f, const DecodedOp& op);
  static void OpStore(Machine& m, Frame& f, const DecodedOp& op);
  static void OpFieldAddr(Machine& m, Frame& f, const DecodedOp& op);
  static void OpIndexAddr(Machine& m, Frame& f, const DecodedOp& op);
  static void OpBinOp(Machine& m, Frame& f, const DecodedOp& op);
  static void OpCast(Machine& m, Frame& f, const DecodedOp& op);
  static void OpSelect(Machine& m, Frame& f, const DecodedOp& op);
  static void OpCall(Machine& m, Frame& f, const DecodedOp& op);
  static void OpIndirectCall(Machine& m, Frame& f, const DecodedOp& op);
  static void OpLibCall(Machine& m, Frame& f, const DecodedOp& op);
  static void OpMalloc(Machine& m, Frame& f, const DecodedOp& op);
  static void OpFree(Machine& m, Frame& f, const DecodedOp& op);
  static void OpFuncAddr(Machine& m, Frame& f, const DecodedOp& op);
  static void OpGlobalAddr(Machine& m, Frame& f, const DecodedOp& op);
  static void OpBr(Machine& m, Frame& f, const DecodedOp& op);
  static void OpCondBr(Machine& m, Frame& f, const DecodedOp& op);
  static void OpRet(Machine& m, Frame& f, const DecodedOp& op);
  static void OpInput(Machine& m, Frame& f, const DecodedOp& op);
  static void OpOutput(Machine& m, Frame& f, const DecodedOp& op);
  static void OpIntrinsic(Machine& m, Frame& f, const DecodedOp& op);
  static void OpSpawn(Machine& m, Frame& f, const DecodedOp& op);
  static void OpJoin(Machine& m, Frame& f, const DecodedOp& op);
  static void OpYield(Machine& m, Frame& f, const DecodedOp& op);

  // --- fused engine (superinstruction handlers) -----------------------------
  // Each executes its constituents' micro semantics back to back, charging
  // the tails in one batch (PrechargeTails) so the simulated Counters match
  // the unfused dispatch bit for bit. Constituent ops still sit in the op
  // array after the head with their original opcodes; straight-line
  // constituents advance f.ip by exactly one, so tails are *(&op + k).
  //
  // FusePair/FuseTriple are instantiated once per macro opcode with the
  // constituent handlers as template arguments: every constituent is a
  // direct, statically-predictable call. kTraps* marks constituents that can
  // trap (loads, stores, binop division, intrinsics); only those pay a done_
  // check and a counter rollback path.
  static void OpCmpBr(Machine& m, Frame& f, const DecodedOp& op);
  template <Handler A, Handler B, bool kTrapsA>
  static void FusePair(Machine& m, Frame& f, const DecodedOp& op) {
    ++m.fuse_hits_[op.fuse_id];
    if (!m.PrechargeTails(1)) {  // out-of-fuel boundary: exact per-op charging
      A(m, f, op);
      if (!m.FusedStep()) return;
      B(m, f, f.dfunc->ops[f.ip]);
      return;
    }
    A(m, f, op);
    if (kTrapsA && m.done_) {
      m.UnchargeTails(1);
      return;
    }
    B(m, f, *(&op + 1));
  }
  template <Handler A, Handler B, Handler C, bool kTrapsA, bool kTrapsB>
  static void FuseTriple(Machine& m, Frame& f, const DecodedOp& op) {
    ++m.fuse_hits_[op.fuse_id];
    if (!m.PrechargeTails(2)) {  // out-of-fuel boundary: exact per-op charging
      A(m, f, op);
      if (!m.FusedStep()) return;
      B(m, f, f.dfunc->ops[f.ip]);
      if (!m.FusedStep()) return;
      C(m, f, f.dfunc->ops[f.ip]);
      return;
    }
    A(m, f, op);
    if (kTrapsA && m.done_) {
      m.UnchargeTails(2);
      return;
    }
    B(m, f, *(&op + 1));
    if (kTrapsB && m.done_) {
      m.UnchargeTails(1);
      return;
    }
    C(m, f, *(&op + 2));
  }
  static void OpFuse2(Machine& m, Frame& f, const DecodedOp& op);
  static void OpFuse3(Machine& m, Frame& f, const DecodedOp& op);
  // Dispatches one constituent of a generic fused sequence. The switch
  // covers exactly the fusible micro-op set (decode.cc: FusibleInner /
  // FusibleTail), so the generic macro handlers inline their constituents
  // instead of bouncing through kDispatch — the whole point of fusing.
  __attribute__((always_inline)) static void DispatchConstituent(
      Machine& m, Frame& f, const DecodedOp& op, MicroOp opcode) {
    switch (opcode) {
      case MicroOp::kLoad: OpLoad(m, f, op); break;
      case MicroOp::kStore: OpStore(m, f, op); break;
      case MicroOp::kFieldAddr: OpFieldAddr(m, f, op); break;
      case MicroOp::kIndexAddr: OpIndexAddr(m, f, op); break;
      case MicroOp::kBinOp: OpBinOp(m, f, op); break;
      case MicroOp::kCast: OpCast(m, f, op); break;
      case MicroOp::kSelect: OpSelect(m, f, op); break;
      case MicroOp::kFuncAddr: OpFuncAddr(m, f, op); break;
      case MicroOp::kGlobalAddr: OpGlobalAddr(m, f, op); break;
      case MicroOp::kBr: OpBr(m, f, op); break;
      case MicroOp::kCondBr: OpCondBr(m, f, op); break;
      case MicroOp::kIntrinsic: OpIntrinsic(m, f, op); break;
      default: kDispatch[static_cast<size_t>(opcode)](m, f, op); break;
    }
  }

  // --- scheduler ------------------------------------------------------------
  // Rotates to the next runnable thread (round-robin by thread id, starting
  // after the current one) and refills the quantum. Context switches charge
  // no simulated cycles: with one runnable thread this is a no-op, which is
  // what keeps single-thread programs cycle-identical at any quantum.
  void Reschedule();

  // --- safe store helpers ---------------------------------------------------
  // A module whose instrumentation emits safe-store intrinsics must run with
  // a scheme whose runtime requirements include the store.
  void StoreSet(uint64_t addr, const SafeEntry& entry) {
    CPI_CHECK(store_ != nullptr);
    TouchList t;
    store_->Set(addr, entry, &t);
    ChargeStoreTouches(addr, t, /*is_read=*/false);
  }
  SafeEntry StoreGet(uint64_t addr) {
    CPI_CHECK(store_ != nullptr);
    TouchList t;
    SafeEntry e = store_->Get(addr, &t);
    ChargeStoreTouches(addr, t, /*is_read=*/true);
    return e;
  }
  void StoreClear(uint64_t addr) {
    CPI_CHECK(store_ != nullptr);
    TouchList t;
    store_->Clear(addr, &t);
    ChargeStoreTouches(addr, t, /*is_read=*/false);
  }
  // The shard-crossing rule (see OpCosts::sync): an access is contended
  // unless its key's shard is write-local to the executing thread. Reads pay
  // like writes — epoch validation against a shard another thread can write
  // is conservatively treated as a crossing (and at the default shard count
  // of 1 the one shard is shared, reproducing the flat model exactly).
  bool ShardContended(uint64_t addr) const {
    return shard_owner_[ShardOfAddress(addr, shards_)] !=
           static_cast<int32_t>(cur_->tid);
  }
  // Epoch variant (RunOptions::migrate): judged against the accessing
  // thread's own epoch snapshot. Owned shards are free like the static
  // model; additionally, *reads* of a shard its owner froze at a publish
  // boundary are free — RCU's grace-period guarantee, the published data
  // cannot change under a reader between its adoption points. Writes always
  // pay unless the shard is owned: a writer must take the shard's lock no
  // matter what snapshot it holds.
  bool ShardContendedEpoch(uint64_t addr, bool is_read) const {
    const EpochTable& e = epochs_[cur_->epoch];
    const uint32_t s = ShardOfAddress(addr, shards_);
    if (e.owner[s] == static_cast<int32_t>(cur_->tid)) {
      return false;
    }
    return !(is_read && e.frozen[s]);
  }
  void ChargeStoreTouches(uint64_t addr, const TouchList& t, bool is_read) {
    ++result_.counters.safe_store_ops;
    if (concurrent_ && (migrate_ ? ShardContendedEpoch(addr, is_read)
                                 : ShardContended(addr))) {
      ++result_.counters.store_contended_ops;
      Cycles(options_.costs.sync);
    }
    for (int i = 0; i < t.count; ++i) {
      ChargeAccess(t.addrs[i]);
    }
  }
  // Bulk safe-store mutation (checked memcpy/memmove/clear): `ops` per-word
  // operations at 2 cycles each. The shard crossing is judged once for the
  // whole transfer by its destination base address — a checked memcpy
  // publishes into one region, so one epoch/ownership validation covers the
  // batch (documented accounting rule; ranges almost never straddle homes).
  // Bulk transfers mutate the destination shard, so under migration they are
  // writes: the frozen-read exemption never applies.
  void ChargeBulkStoreOps(uint64_t dst_addr, uint64_t ops) {
    result_.counters.safe_store_ops += ops;
    Cycles(ops * 2);
    if (concurrent_ && (migrate_ ? ShardContendedEpoch(dst_addr, /*is_read=*/false)
                                 : ShardContended(dst_addr))) {
      result_.counters.store_contended_ops += ops;
      Cycles(ops * options_.costs.sync);
    }
  }
  // Re-derives shard ownership from the dynamic home→thread map and
  // publishes it as a new epoch. Called only at spawn/join boundaries (the
  // only points where the map changes), always by the thread executing the
  // spawn/join — in every shipped workload and generated program that is a
  // single coordinator thread, so the publish sequence is ordered by
  // happens-before and charges stay engine/quantum-invariant. Each shard
  // whose owner changed is a *migration*: it costs the publisher one
  // OpCosts::sync (the release-store installing the new owner) and is
  // counted in Counters::shard_migrations. Shards the publisher owns come
  // out frozen — publish-then-spawn/join makes their current contents
  // visible to every thread adopting this epoch, so reads need no sync
  // until the owner changes again.
  // Owner of each shard under the current home->thread claim map: the one
  // thread owning every claimed home that hashes into the shard, -1 when no
  // claimed home does (nobody has lived there), -2 when claimed homes of
  // two different threads collide (genuinely shared). Unclaimed homes do
  // not poison a shard — that is the whole advantage over the static
  // table, which has to pessimise for all kMaxThreads possible homes.
  std::vector<int32_t> DeriveEpochOwners() const {
    std::vector<int32_t> owner(shards_, -1);
    for (uint64_t h = 0; h < kMaxThreads; ++h) {
      const int32_t o = home_owner_[h];
      if (o < 0) {
        continue;
      }
      const uint32_t s = static_cast<uint32_t>(ShardHash(h) % shards_);
      if (owner[s] == -1) {
        owner[s] = o;
      } else if (owner[s] != o) {
        owner[s] = -2;  // mixed ownership: shared
      }
    }
    return owner;
  }

  void PublishEpoch() {
    const EpochTable& prev = epochs_.back();
    EpochTable next;
    next.owner = DeriveEpochOwners();
    next.frozen.assign(shards_, 0);
    uint64_t migrated = 0;
    for (uint32_t s = 0; s < shards_; ++s) {
      if (next.owner[s] != prev.owner[s]) {
        ++migrated;  // owner changed: any previous freeze is invalidated
      } else {
        next.frozen[s] = prev.frozen[s];
      }
      if (next.owner[s] >= 0 && next.owner[s] == static_cast<int32_t>(cur_->tid)) {
        next.frozen[s] = 1;
      }
    }
    if (migrated > 0) {
      result_.counters.shard_migrations += migrated;
      Cycles(migrated * options_.costs.sync);
    }
    if (next.owner != prev.owner || next.frozen != prev.frozen) {
      epochs_.push_back(std::move(next));
    }
    cur_->epoch = static_cast<uint32_t>(epochs_.size() - 1);
  }
  void ChargeCheck() {
    ++result_.counters.checks;
    if (!options_.mpx_assist) {
      Cycles(options_.costs.check);
    }
  }
  // One PAC-style sign or authenticate operation (PtrEnc).
  void ChargeSeal() {
    ++result_.counters.seal_ops;
    Cycles(options_.costs.seal);
  }
  void ChargeAuth() {
    ++result_.counters.seal_ops;
    Cycles(options_.costs.auth);
  }

  // Temporal liveness (only enforced when the module was instrumented with
  // the temporal extension).
  bool TemporallyLive(const RegMeta& meta) const {
    return !module_.protection().temporal || temporal_.IsLive(meta.temporal_id);
  }

  const Function* FunctionAtAddress(uint64_t addr) const {
    if (!IsCodeAddress(addr) || (addr - kCodeBase) % kCodeStride != 0) {
      return nullptr;
    }
    const uint64_t index = (addr - kCodeBase) / kCodeStride;
    if (index >= module_.functions().size()) {
      return nullptr;
    }
    return module_.functions()[index].get();
  }
  uint64_t CodeAddressOf(const Function* f) const { return layout_.CodeAddress(f); }

  // --- state ----------------------------------------------------------------
  const ir::Module& module_;
  RunOptions options_;
  RunResult result_;
  bool done_ = false;

  ByteMemory regular_;     // Mu (shared by every thread)
  std::unique_ptr<runtime::SafePointerStore> store_;  // shared safe store
  runtime::PointerSealer sealer_;
  runtime::TemporalIdService temporal_;
  std::unordered_map<uint64_t, RegMeta> sb_shadow_;  // SoftBound baseline

  // Threads. Contexts live for the whole run (joins and cross-thread frees
  // consult finished threads); cur_ is the executing thread.
  std::vector<std::unique_ptr<ThreadContext>> threads_;
  ThreadContext* cur_ = nullptr;
  size_t cur_index_ = 0;
  uint64_t quantum_left_ = 1;
  bool resched_ = false;    // current thread yielded / blocked / finished
  bool concurrent_ = false; // a spawn has happened; sync costs now apply

  // Safe-store sharding (RunOptions::shards): shard_owner_[s] is the tid the
  // shard is write-local to, or negative when shared (unclaimed / hash
  // collision / the single-shard default).
  const uint32_t shards_;
  std::vector<int32_t> shard_owner_;

  // Epoch-based ownership migration (RunOptions::migrate, only armed when
  // shards_ > 1). home_owner_[h] is the thread currently owning static home
  // slot h; a completed join retires the target's slots as one FIFO group
  // and the next spawn adopts the oldest group (worker-pool slot reuse).
  // epochs_ holds every published owner/frozen table; threads index into it
  // through their snapshot (ThreadContext::epoch).
  struct EpochTable {
    std::vector<int32_t> owner;
    std::vector<uint8_t> frozen;
  };
  const bool migrate_;
  int32_t home_owner_[kMaxThreads] = {};
  std::deque<std::vector<uint8_t>> retired_homes_;
  std::vector<EpochTable> epochs_;

  ProgramLayout layout_;  // flat per-ordinal address vectors
  std::unique_ptr<DecodedModule> decoded_;  // null when running the reference
  // Dynamic executions per fused pattern (indexed like decoded_->patterns());
  // flushed into the process-wide fusion stats when the run finishes.
  std::vector<uint64_t> fuse_hits_;

  // Heap block table (shared; arenas and free lists are per-thread).
  std::map<uint64_t, HeapBlock> heap_blocks_;

  uint64_t cookie_value_ = 0;
  size_t input_word_pos_ = 0;
  size_t input_byte_pos_ = 0;

  // Fault plan, sorted by firing point; next_fault_ indexes the next unfired
  // event and fault_at_ caches its firing instruction count.
  std::vector<FaultEvent> fault_events_;
  size_t next_fault_ = 0;
  uint64_t fault_at_ = ~0ULL;
};

// ---------------------------------------------------------------------------
// Setup

void Machine::LoadProgram() {
  layout_ = ComputeProgramLayout(module_);
  for (const auto& g : module_.globals()) {
    const uint64_t addr = layout_.GlobalAddress(g.get());
    const uint64_t size = g->type()->SizeInBytes();
    regular_.MapRange(addr, size, /*writable=*/!g->is_const());
    if (!g->initializer().empty()) {
      regular_.LoaderWrite(addr, g->initializer().data(),
                           std::min<uint64_t>(size, g->initializer().size()));
    }
  }

  // Main thread (tid 0) with the classic stack layout.
  threads_.push_back(std::make_unique<ThreadContext>(0, options_.cache));
  cur_ = threads_[0].get();
  cur_index_ = 0;
  cur_->sp = kStackTop - 16;
  cur_->safe_sp = kSafeStackTop - 16;
  cur_->heap_next = kHeapBase;
  cur_->heap_limit = kHeapLimit;
  regular_.MapRange(kStackTop - kStackRegionBytes, kStackRegionBytes, /*writable=*/true);
  cur_->safe_stack.MapRange(kSafeStackTop - kStackRegionBytes, kStackRegionBytes,
                            /*writable=*/true);

  cookie_value_ = Rng(options_.seed ^ 0xc00c1e).NextU64() | 1;
}

// ---------------------------------------------------------------------------
// Values

uint64_t Machine::Eval(const Frame& f, const Value* v) const {
  switch (v->value_kind()) {
    case ValueKind::kConstInt: {
      const auto* c = static_cast<const ir::ConstantInt*>(v);
      return MaskToWidth(c->value(), TypeBits(c->type()));
    }
    case ValueKind::kConstFloat:
      return DoubleToBits(static_cast<const ir::ConstantFloat*>(v)->value());
    case ValueKind::kConstNull:
      return 0;
    case ValueKind::kArgument:
    case ValueKind::kInstruction:
      CPI_CHECK(v->value_id() != ir::kInvalidValueId);
      return f.regs[v->value_id()];
  }
  CPI_UNREACHABLE();
}

RegMeta Machine::EvalMeta(const Frame& f, const Value* v) const {
  switch (v->value_kind()) {
    case ValueKind::kConstInt:
    case ValueKind::kConstFloat:
    case ValueKind::kConstNull:
      return RegMeta::None();
    case ValueKind::kArgument:
    case ValueKind::kInstruction:
      return f.meta[v->value_id()];
  }
  CPI_UNREACHABLE();
}

// ---------------------------------------------------------------------------
// Routed memory access: the isolation mechanism of §3.2.3.

ByteMemory* Machine::Route(uint64_t addr, const RegMeta& meta, bool for_write) {
  if (!IsInSafeRegion(addr)) {
    return &regular_;
  }
  // Compiler-generated access to a safe-stack object: the provenance of the
  // address proves it is based on an object that itself lives in the safe
  // region. Anything else — a forged or corrupted address — hits the
  // isolation mechanism. Safe stacks are per-thread ByteMemory instances;
  // the address (or, off the end of a region, the provenance base) selects
  // the owning thread, so pointers to safe-stack objects passed between
  // threads keep working — the safe region is one shared address space, as
  // in the paper. A derived address landing in no thread's region faults on
  // the base object's (or the current thread's) memory, exactly as an
  // out-of-region access faulted on the old single safe-stack instance.
  if (meta.IsSafeValue() && meta.kind == EntryKind::kData && meta.lower >= kSafeRegionBase &&
      meta.lower <= meta.upper) {
    uint64_t owner = SafeStackOwnerOf(addr);
    if (owner >= threads_.size()) {
      owner = SafeStackOwnerOf(meta.lower);
    }
    return owner < threads_.size() ? &threads_[owner]->safe_stack : &cur_->safe_stack;
  }
  switch (options_.isolation) {
    case IsolationKind::kSegment:
      // Segment limits: the hardware faults immediately.
      Crash("segment violation: regular access to the safe region");
      return nullptr;
    case IsolationKind::kInfoHiding:
      // The safe region base is randomised in a 48-bit space and its address
      // never leaks to the regular region; a guessed address is unmapped.
      Crash("fault: access to unmapped address (safe region is hidden)");
      return nullptr;
    case IsolationKind::kSfi: {
      // The masked address falls back into the regular region.
      (void)for_write;
      return &regular_;
    }
  }
  CPI_UNREACHABLE();
}

bool Machine::DataRead(uint64_t addr, uint64_t size, const RegMeta& addr_meta, uint64_t* out) {
  ByteMemory* mem = Route(addr, addr_meta, /*for_write=*/false);
  if (mem == nullptr) {
    return false;
  }
  uint64_t effective = addr;
  if (mem == &regular_ && IsInSafeRegion(addr)) {
    effective = addr & (kSafeRegionBase - 1);  // SFI mask
  }
  uint64_t raw = 0;
  const MemFault fault = mem->Read(effective, &raw, size);
  if (fault != MemFault::kNone) {
    Crash("fault: read of unmapped address");
    return false;
  }
  if (mem == &regular_) {
    ChargeRegularAccess(effective);
  } else {
    ChargeAccess(effective);
  }
  *out = raw;
  return true;
}

bool Machine::DataWrite(uint64_t addr, uint64_t size, const RegMeta& addr_meta, uint64_t value) {
  ByteMemory* mem = Route(addr, addr_meta, /*for_write=*/true);
  if (mem == nullptr) {
    return false;
  }
  uint64_t effective = addr;
  if (mem == &regular_ && IsInSafeRegion(addr)) {
    effective = addr & (kSafeRegionBase - 1);
  }
  const MemFault fault = mem->Write(effective, &value, size);
  if (fault == MemFault::kUnmapped) {
    Crash("fault: write to unmapped address");
    return false;
  }
  if (fault == MemFault::kReadOnly) {
    Crash("fault: write to read-only memory");
    return false;
  }
  if (mem == &regular_) {
    ChargeRegularAccess(effective);
  } else {
    ChargeAccess(effective);
  }
  return true;
}

bool Machine::ReadByteRouted(uint64_t addr, const RegMeta& meta, uint8_t* out) {
  ByteMemory* mem = Route(addr, meta, /*for_write=*/false);
  if (mem == nullptr) {
    return false;
  }
  if (mem->ReadByte(addr, out) != MemFault::kNone) {
    Crash("fault: read of unmapped address");
    return false;
  }
  return true;
}

bool Machine::WriteByteRouted(uint64_t addr, const RegMeta& meta, uint8_t value) {
  ByteMemory* mem = Route(addr, meta, /*for_write=*/true);
  if (mem == nullptr) {
    return false;
  }
  const MemFault fault = mem->WriteByte(addr, value);
  if (fault != MemFault::kNone) {
    Crash(fault == MemFault::kReadOnly ? "fault: write to read-only memory"
                                       : "fault: write to unmapped address");
    return false;
  }
  return true;
}

void Machine::ChargeChunked(uint64_t addr, uint64_t len) {
  // One cache access per touched 8-byte chunk plus a cycle per 16 bytes of
  // work — the cost of a tuned memcpy loop.
  for (uint64_t a = addr & ~7ULL; a < addr + len; a += 8) {
    ChargeRegularAccess(a);
  }
  Cycles(len / 16 + 1);
}

// ---------------------------------------------------------------------------
// Frames

bool Machine::PushFrame(const Function* callee, const std::vector<uint64_t>& args,
                        const std::vector<RegMeta>& arg_meta, bool no_continuation) {
  if (cur_->frames.size() > 2000) {
    Crash("stack overflow: call depth limit");
    return false;
  }
  ++result_.counters.calls;
  Cycles(kCallCycles);

  Frame f;
  f.func = callee;
  f.regs.assign(callee->register_count(), 0);
  f.meta.assign(callee->register_count(), RegMeta::None());
  CPI_CHECK(args.size() == callee->args().size());
  for (size_t i = 0; i < args.size(); ++i) {
    f.regs[callee->args()[i]->value_id()] = args[i];
    f.meta[callee->args()[i]->value_id()] = arg_meta[i];
  }
  f.bb = callee->entry();
  if (decoded_ != nullptr) {
    f.dfunc = &decoded_->ForFunction(callee);
  }
  f.ip = 0;
  f.saved_sp = cur_->sp;
  f.saved_safe_sp = cur_->safe_sp;
  f.no_continuation = no_continuation;
  // Ret tokens are per-thread sequences: the thread id in the high bits
  // keeps tokens unique across threads while thread 0 reproduces the
  // classic single-thread values bit for bit.
  f.token = kRetTokenBase + (cur_->tid << 36) + (++cur_->token_counter << 4);

  const bool safe_stack = module_.protection().safe_stack;
  // Chained return MACs (ProtectionFlags::ret_chain): sign the saved token
  // over its slot XOR the thread's current chain head. The predecessor's
  // full sealed word enters the MAC's location domain, so every token
  // authenticates the entire chain suffix — and the sealed word becomes the
  // new head. Applies to safe-stack slots too (cpi+ptrenc-ret-chain layers
  // chain authentication over the isolated stack).
  const bool ret_chain = module_.protection().ret_chain;
  if (safe_stack) {
    cur_->safe_sp -= 8;
    f.ret_slot = cur_->safe_sp;
    f.ret_slot_safe = true;
    uint64_t slot_word = f.token;
    if (ret_chain) {
      f.saved_chain = cur_->ret_chain_head;
      slot_word = sealer_.Seal(f.token, f.ret_slot ^ f.saved_chain);
      ChargeSeal();
      cur_->ret_chain_head = slot_word;
    }
    if (cur_->safe_stack.WriteU64(f.ret_slot, slot_word) != MemFault::kNone) {
      Crash("stack overflow: safe stack exhausted");
      return false;
    }
    ChargeAccess(f.ret_slot);
  } else {
    cur_->sp -= 8;
    f.ret_slot = cur_->sp;
    f.ret_slot_safe = false;
    uint64_t slot_word = f.token;
    if (module_.protection().ptrenc) {
      // PAC-style prologue: sign the saved return token against its slot.
      // Always — even for ret_token_elidable leaves — so the frame image in
      // memory is byte-identical across opt levels; leaves elide only the
      // epilogue authenticate (see DoRet).
      slot_word = sealer_.Seal(f.token, f.ret_slot);
      ChargeSeal();
    } else if (ret_chain) {
      f.saved_chain = cur_->ret_chain_head;
      slot_word = sealer_.Seal(f.token, f.ret_slot ^ f.saved_chain);
      ChargeSeal();
      cur_->ret_chain_head = slot_word;
    }
    if (regular_.WriteU64(f.ret_slot, slot_word) != MemFault::kNone) {
      Crash("stack overflow: stack exhausted");
      return false;
    }
    ChargeRegularAccess(f.ret_slot);
    if (callee->has_stack_cookie()) {
      cur_->sp -= 8;
      f.cookie_addr = cur_->sp;
      regular_.WriteU64(f.cookie_addr, cookie_value_);
      ChargeRegularAccess(f.cookie_addr);
    }
  }

  cur_->frames.push_back(std::move(f));
  return true;
}

void Machine::PopFrame() {
  CPI_CHECK(!cur_->frames.empty());
  cur_->sp = cur_->frames.back().saved_sp;
  cur_->safe_sp = cur_->frames.back().saved_safe_sp;
  cur_->frames.pop_back();
}

void Machine::ReturnToCaller(uint64_t value, const RegMeta& meta) {
  PopFrame();
  if (cur_->frames.empty()) {
    if (cur_->tid == 0) {
      // Main returning ends the whole process, as exit() would.
      done_ = true;
      result_.status = RunStatus::kOk;
      result_.exit_code = value;
      return;
    }
    // A worker's root function returned: park the thread's result for join
    // and wake any thread already blocked on it.
    cur_->state = ThreadContext::State::kDone;
    cur_->exit_value = value;
    cur_->exit_meta = meta;
    for (auto& t : threads_) {
      if (t->state == ThreadContext::State::kJoining && t->join_target == cur_->tid) {
        t->state = ThreadContext::State::kRunnable;
      }
    }
    resched_ = true;
    return;
  }
  Frame& caller = cur_->frames.back();
  CPI_CHECK(caller.pending_call != nullptr);
  if (!caller.pending_call->type()->IsVoid()) {
    SetReg(caller, caller.pending_call, value, meta);
  }
  caller.pending_call = nullptr;
  ++caller.ip;
}

// ---------------------------------------------------------------------------
// Main loop

RunResult Machine::Run() {
  try {
    RunToCompletion();
  } catch (const std::bad_alloc& e) {
    // Allocation failure inside the simulated runtime — injected via a
    // FaultPlan or genuinely hit on the same paths — is contained as a
    // crashed *run*; the host process (and a fuzzing campaign) carries on.
    Trap(RunStatus::kCrash, Violation::kNone, std::string("out of memory: ") + e.what());
  }
  if (decoded_ != nullptr && !decoded_->patterns().empty()) {
    AccumulateFusionHits(decoded_->patterns(), fuse_hits_);
  }

  // Per-thread caches and safe stacks aggregate into the run totals; the
  // sums are order-independent, so they stay deterministic at any quantum.
  for (const auto& t : threads_) {
    result_.counters.cache_hits += t->cache.hits();
    result_.counters.cache_misses += t->cache.misses();
    result_.memory.safe_stack_bytes += t->safe_stack.mapped_bytes();
  }
  result_.memory.regular_bytes = regular_.mapped_bytes();
  result_.memory.safe_store_bytes = store_ != nullptr ? store_->MemoryBytes() : 0;
  result_.memory.safe_store_entries = store_ != nullptr ? store_->EntryCount() : 0;
  return result_;
}

void Machine::RunToCompletion() {
  LoadProgram();
  if (options_.faults != nullptr && !options_.faults->events.empty()) {
    fault_events_ = options_.faults->events;
    std::stable_sort(fault_events_.begin(), fault_events_.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                       return a.at_instruction < b.at_instruction;
                     });
    fault_at_ = fault_events_.front().at_instruction;
  }
  if (options_.engine != EngineKind::kReference) {
    // One-time translation to the flat micro-op form — plus the fusion pass
    // on the fused tier — cached for the whole run (the decoded module
    // outlives every frame pushed below).
    decoded_ = std::make_unique<DecodedModule>(module_, layout_,
                                               options_.engine == EngineKind::kFused);
    fuse_hits_.assign(decoded_->patterns().size(), 0);
  }

  const Function* main_fn = module_.FindFunction("main");
  CPI_CHECK(main_fn != nullptr);
  CPI_CHECK(main_fn->args().empty());
  PushFrame(main_fn, {}, {}, /*no_continuation=*/false);

  quantum_left_ = std::max<uint64_t>(options_.quantum, 1);
  switch (options_.engine) {
    case EngineKind::kReference:
      while (!done_) {
        if (result_.counters.instructions >= options_.max_steps) {
          Trap(RunStatus::kOutOfFuel, Violation::kNone, "step budget exhausted");
          break;
        }
        if (result_.counters.instructions >= fault_at_) {
          ApplyPendingFaults();
        }
        Step();
        if ((resched_ || --quantum_left_ == 0) && !done_) {
          Reschedule();
        }
      }
      break;
    case EngineKind::kDecoded:
      RunDecodedLoop();
      break;
    case EngineKind::kFused:
      RunFusedLoop();
      break;
  }
}

void Machine::ApplyPendingFaults() {
  const uint64_t now = result_.counters.instructions;
  while (next_fault_ < fault_events_.size() &&
         fault_events_[next_fault_].at_instruction <= now) {
    InjectFault(fault_events_[next_fault_++]);
  }
  fault_at_ = next_fault_ < fault_events_.size()
                  ? fault_events_[next_fault_].at_instruction
                  : ~0ULL;
}

void Machine::InjectFault(const FaultEvent& e) {
  switch (e.kind) {
    case FaultKind::kNone:
      return;
    case FaultKind::kCorruptSafeStack: {
      // Flip a byte of the current thread's live safe-stack data (the region
      // just above safe_sp: ret tokens, safe allocas, cookies). When the
      // scheme maps no safe stack the probe lands on unmapped memory and is
      // a no-op — exactly the §3.2.3 "guessing under information hiding"
      // situation.
      const uint64_t addr = cur_->safe_sp + e.arg % 64;
      uint8_t mask = static_cast<uint8_t>(e.arg >> 8);
      if (mask == 0) {
        mask = 0x80;
      }
      uint8_t byte = 0;
      if (cur_->safe_stack.ReadByte(addr, &byte) != MemFault::kNone) {
        return;
      }
      if (cur_->safe_stack.WriteByte(addr, byte ^ mask) != MemFault::kNone) {
        return;
      }
      break;
    }
    case FaultKind::kCorruptSafeStore: {
      if (store_ == nullptr || !store_->CorruptEntry(e.arg, (e.arg >> 8) | 1)) {
        return;
      }
      break;
    }
    case FaultKind::kOomSafeStore:
      if (store_ == nullptr) {
        return;
      }
      store_->InjectAllocFailure(e.arg % 4);
      break;
    case FaultKind::kOomHeapArena:
      // Collapse the current thread's arena: the next malloc that cannot be
      // served from a free list reports out-of-memory.
      cur_->heap_limit = cur_->heap_next;
      break;
    case FaultKind::kOomPageAlloc:
      regular_.ArmAllocFailure(e.arg % 4);
      break;
    case FaultKind::kForcePreempt:
      resched_ = true;
      break;
    case FaultKind::kCorruptShard: {
      // Corrupt a live entry of one shard only (arg picks the shard; the
      // containment contract is that every other shard's entries survive
      // intact). On the unsharded default the one shard is the whole store.
      if (store_ == nullptr) {
        return;
      }
      const uint32_t shard = static_cast<uint32_t>(e.arg % store_->ShardCount());
      if (!store_->CorruptEntryInShard(shard, e.arg >> 4, (e.arg >> 8) | 1)) {
        return;
      }
      break;
    }
    case FaultKind::kOomShard:
      if (store_ == nullptr) {
        return;
      }
      store_->InjectShardAllocFailure(
          static_cast<uint32_t>(e.arg % store_->ShardCount()), e.arg % 4);
      break;
  }
  ++result_.faults_injected;
}

void Machine::Reschedule() {
  resched_ = false;
  quantum_left_ = std::max<uint64_t>(options_.quantum, 1);
  const size_t n = threads_.size();
  for (size_t step = 1; step <= n; ++step) {
    const size_t idx = (cur_index_ + step) % n;
    if (threads_[idx]->state == ThreadContext::State::kRunnable) {
      cur_index_ = idx;
      cur_ = threads_[idx].get();
      return;
    }
  }
  // Every live thread is blocked in join: the process can never progress.
  Crash("deadlock: all threads blocked");
}

void Machine::Step() {
  Frame& f = cur_->frames.back();
  CPI_CHECK(f.ip < f.bb->instructions().size());
  const Instruction* inst = f.bb->instructions()[f.ip];
  ++result_.counters.instructions;
  Cycles(kBaseCycles);

  switch (inst->op()) {
    case Opcode::kAlloca: {
      const Type* t = inst->extra_type();
      const uint64_t size = std::max<uint64_t>(t->SizeInBytes(), 1);
      const uint64_t align = std::max<uint64_t>(ir::AlignmentOf(t), 1);
      const bool on_safe = module_.protection().safe_stack &&
                           inst->stack_kind() != StackKind::kUnsafe;
      uint64_t& sp = on_safe ? cur_->safe_sp : cur_->sp;
      sp -= size;
      sp &= ~(align - 1);
      const uint64_t addr = sp;
      SetReg(f, inst, addr, RegMeta::Data(addr, addr + size, runtime::TemporalIdService::kStaticId));
      ++f.ip;
      break;
    }
    case Opcode::kLoad: {
      const uint64_t addr = Eval(f, inst->operand(0));
      const RegMeta addr_meta = EvalMeta(f, inst->operand(0));
      const uint64_t size = inst->type()->SizeInBytes();
      uint64_t raw = 0;
      if (!DataRead(addr, size, addr_meta, &raw)) {
        return;
      }
      SetReg(f, inst, raw, RegMeta::None());
      ++f.ip;
      break;
    }
    case Opcode::kStore: {
      const uint64_t value = Eval(f, inst->operand(0));
      const uint64_t addr = Eval(f, inst->operand(1));
      const RegMeta addr_meta = EvalMeta(f, inst->operand(1));
      const Type* pointee =
          static_cast<const ir::PointerType*>(inst->operand(1)->type())->pointee();
      const uint64_t size =
          pointee->IsVoid() ? 8 : pointee->SizeInBytes();
      if (!DataWrite(addr, size, addr_meta, value)) {
        return;
      }
      ++f.ip;
      break;
    }
    case Opcode::kFieldAddr: {
      const uint64_t base = Eval(f, inst->operand(0));
      const RegMeta base_meta = EvalMeta(f, inst->operand(0));
      const auto* st = static_cast<const ir::StructType*>(
          static_cast<const ir::PointerType*>(inst->operand(0)->type())->pointee());
      const ir::StructField& field = st->fields()[inst->field_index()];
      const uint64_t addr = base + field.offset;
      RegMeta meta = RegMeta::None();
      if (base_meta.IsSafeValue() && base_meta.kind == EntryKind::kData) {
        // Sub-object narrowing: the field is its own target object (§3,
        // based-on case (iii)).
        meta = RegMeta::Data(addr, addr + field.type->SizeInBytes(), base_meta.temporal_id);
      }
      SetReg(f, inst, addr, meta);
      ++f.ip;
      break;
    }
    case Opcode::kIndexAddr: {
      const uint64_t base = Eval(f, inst->operand(0));
      const int64_t index = SignExtend(Eval(f, inst->operand(1)),
                                       TypeBits(inst->operand(1)->type()));
      const Type* pointee =
          static_cast<const ir::PointerType*>(inst->operand(0)->type())->pointee();
      const uint64_t elem_size = pointee->IsArray()
                                     ? static_cast<const ir::ArrayType*>(pointee)->element()
                                           ->SizeInBytes()
                                     : pointee->SizeInBytes();
      const uint64_t addr = base + static_cast<uint64_t>(index) * elem_size;
      // Array indexing stays based on the same target object: metadata
      // propagates unchanged (based-on case (iv)).
      SetReg(f, inst, addr, EvalMeta(f, inst->operand(0)));
      ++f.ip;
      break;
    }
    case Opcode::kBinOp:
      ExecBinOp(f, inst);
      break;
    case Opcode::kCast:
      ExecCast(f, inst);
      break;
    case Opcode::kSelect: {
      const uint64_t cond = Eval(f, inst->operand(0));
      const Value* chosen = cond != 0 ? inst->operand(1) : inst->operand(2);
      SetReg(f, inst, Eval(f, chosen), EvalMeta(f, chosen));
      ++f.ip;
      break;
    }
    case Opcode::kCall:
      ExecCallCommon(f, inst, inst->callee(), /*first_arg_index=*/0);
      break;
    case Opcode::kIndirectCall: {
      const uint64_t target = Eval(f, inst->operand(0));
      const Function* callee = FunctionAtAddress(target);
      if (callee == nullptr) {
        Crash("indirect call to a non-code address");
        return;
      }
      if (callee->type()->params().size() != inst->operands().size() - 1) {
        Crash("indirect call with mismatched signature");
        return;
      }
      ExecCallCommon(f, inst, callee, /*first_arg_index=*/1);
      break;
    }
    case Opcode::kLibCall:
      ExecLibCall(f, inst);
      break;
    case Opcode::kMalloc:
      DoMalloc(f, Eval(f, inst->operand(0)), inst->value_id());
      break;
    case Opcode::kFree:
      DoFree(f, Eval(f, inst->operand(0)));
      break;
    case Opcode::kFuncAddr: {
      const uint64_t addr = CodeAddressOf(inst->callee());
      SetReg(f, inst, addr, RegMeta::Code(addr));
      ++f.ip;
      break;
    }
    case Opcode::kGlobalAddr: {
      const uint64_t addr = layout_.GlobalAddress(inst->global());
      SetReg(f, inst, addr,
             RegMeta::Data(addr, addr + inst->global()->type()->SizeInBytes(),
                           runtime::TemporalIdService::kStaticId));
      ++f.ip;
      break;
    }
    case Opcode::kBr:
      f.bb = inst->successor(0);
      f.ip = 0;
      break;
    case Opcode::kCondBr: {
      const uint64_t cond = Eval(f, inst->operand(0));
      f.bb = inst->successor(cond != 0 ? 0 : 1);
      f.ip = 0;
      break;
    }
    case Opcode::kRet:
      ExecRet(f, inst);
      break;
    case Opcode::kInput: {
      uint64_t v = 0;
      if (input_word_pos_ < options_.input_words.size()) {
        v = options_.input_words[input_word_pos_++];
      }
      Cycles(2);
      SetReg(f, inst, v, RegMeta::None());
      ++f.ip;
      break;
    }
    case Opcode::kOutput: {
      if (result_.output.size() >= kMaxOutputWords) {
        Crash("output limit exceeded");
        return;
      }
      Cycles(2);
      result_.output.push_back(Eval(f, inst->operand(0)));
      ++f.ip;
      break;
    }
    case Opcode::kIntrinsic:
      ExecIntrinsic(f, inst);
      break;
    case Opcode::kSpawn: {
      std::vector<uint64_t> args;
      std::vector<RegMeta> metas;
      for (size_t i = 0; i < inst->operands().size(); ++i) {
        args.push_back(Eval(f, inst->operand(i)));
        metas.push_back(EvalMeta(f, inst->operand(i)));
      }
      DoSpawn(f, inst->callee(), std::move(args), std::move(metas), inst->value_id());
      break;
    }
    case Opcode::kJoin:
      DoJoin(f, Eval(f, inst->operand(0)), inst->value_id());
      break;
    case Opcode::kYield:
      DoYield(f);
      break;
  }
}

// ---------------------------------------------------------------------------
// Arithmetic

void Machine::ExecBinOp(Frame& f, const Instruction* inst) {
  DoBinOp(f, inst->binop(), TypeBits(inst->operand(0)->type()), TypeBits(inst->type()),
          InstOps{*this, f, inst});
}

template <typename Ops>
void Machine::DoBinOp(Frame& f, BinOp op, int bits, int result_bits, const Ops& ops) {
  const uint64_t x = ops.value(0);
  const uint64_t y = ops.value(1);
  uint64_t r = 0;

  if (op >= BinOp::kFAdd) {
    Cycles(kFloatExtraCycles);
    const double fx = BitsToDouble(x);
    const double fy = BitsToDouble(y);
    switch (op) {
      case BinOp::kFAdd: r = DoubleToBits(fx + fy); break;
      case BinOp::kFSub: r = DoubleToBits(fx - fy); break;
      case BinOp::kFMul: r = DoubleToBits(fx * fy); break;
      case BinOp::kFDiv:
        Cycles(kDivExtraCycles);
        r = DoubleToBits(fy == 0.0 ? 0.0 : fx / fy);
        break;
      case BinOp::kFEq: r = fx == fy; break;
      case BinOp::kFNe: r = fx != fy; break;
      case BinOp::kFLt: r = fx < fy; break;
      case BinOp::kFLe: r = fx <= fy; break;
      case BinOp::kFGt: r = fx > fy; break;
      case BinOp::kFGe: r = fx >= fy; break;
      default: CPI_UNREACHABLE();
    }
    ops.set(r, RegMeta::None());
    ++f.ip;
    return;
  }

  const int64_t sx = SignExtend(x, bits);
  const int64_t sy = SignExtend(y, bits);
  switch (op) {
    case BinOp::kAdd: r = x + y; break;
    case BinOp::kSub: r = x - y; break;
    case BinOp::kMul: r = x * y; break;
    case BinOp::kSDiv:
      Cycles(kDivExtraCycles);
      if (sy == 0) { Crash("division by zero"); return; }
      if (sx == INT64_MIN && sy == -1) { r = static_cast<uint64_t>(INT64_MIN); break; }
      r = static_cast<uint64_t>(sx / sy);
      break;
    case BinOp::kUDiv:
      Cycles(kDivExtraCycles);
      if (y == 0) { Crash("division by zero"); return; }
      r = x / y;
      break;
    case BinOp::kSRem:
      Cycles(kDivExtraCycles);
      if (sy == 0) { Crash("division by zero"); return; }
      if (sx == INT64_MIN && sy == -1) { r = 0; break; }
      r = static_cast<uint64_t>(sx % sy);
      break;
    case BinOp::kURem:
      Cycles(kDivExtraCycles);
      if (y == 0) { Crash("division by zero"); return; }
      r = x % y;
      break;
    case BinOp::kAnd: r = x & y; break;
    case BinOp::kOr: r = x | y; break;
    case BinOp::kXor: r = x ^ y; break;
    case BinOp::kShl: r = x << (y & 63); break;
    case BinOp::kLShr: r = x >> (y & 63); break;
    case BinOp::kAShr: r = static_cast<uint64_t>(sx >> (y & 63)); break;
    case BinOp::kEq: r = x == y; break;
    case BinOp::kNe: r = x != y; break;
    case BinOp::kSLt: r = sx < sy; break;
    case BinOp::kSLe: r = sx <= sy; break;
    case BinOp::kSGt: r = sx > sy; break;
    case BinOp::kSGe: r = sx >= sy; break;
    case BinOp::kULt: r = x < y; break;
    case BinOp::kULe: r = x <= y; break;
    default: CPI_UNREACHABLE();
  }
  r = MaskToWidth(r, result_bits);

  // Pointer arithmetic propagates the based-on metadata of the pointer
  // operand (based-on case (iv)).
  RegMeta meta = RegMeta::None();
  if (op == BinOp::kAdd || op == BinOp::kSub) {
    const RegMeta ma = ops.meta(0);
    const RegMeta mb = ops.meta(1);
    if (ma.IsSafeValue() && !mb.IsSafeValue()) {
      meta = ma;
    } else if (mb.IsSafeValue() && !ma.IsSafeValue() && op == BinOp::kAdd) {
      meta = mb;
    }
  }
  ops.set(r, meta);
  ++f.ip;
}

void Machine::ExecCast(Frame& f, const Instruction* inst) {
  DoCast(f, inst->cast_kind(), TypeBits(inst->operand(0)->type()), TypeBits(inst->type()),
         InstOps{*this, f, inst});
}

template <typename Ops>
void Machine::DoCast(Frame& f, CastKind kind, int src_bits, int dst_bits, const Ops& ops) {
  const uint64_t x = ops.value(0);
  const RegMeta meta = ops.meta(0);
  uint64_t r = x;
  RegMeta out = meta;  // Levee's relaxation: casts propagate metadata
  switch (kind) {
    case CastKind::kBitcast:
    case CastKind::kPtrToInt:
    case CastKind::kIntToPtr:
      break;
    case CastKind::kTrunc:
      r = MaskToWidth(x, dst_bits);
      if (dst_bits < 64) {
        out = RegMeta::None();  // a truncated pointer is no longer a pointer
      }
      break;
    case CastKind::kZExt:
      r = MaskToWidth(x, src_bits);
      break;
    case CastKind::kSExt:
      r = MaskToWidth(static_cast<uint64_t>(SignExtend(x, src_bits)), dst_bits);
      break;
    case CastKind::kIntToFloat:
      r = DoubleToBits(static_cast<double>(SignExtend(x, src_bits)));
      out = RegMeta::None();
      break;
    case CastKind::kFloatToInt:
      r = MaskToWidth(static_cast<uint64_t>(static_cast<int64_t>(BitsToDouble(x))), dst_bits);
      out = RegMeta::None();
      break;
  }
  ops.set(r, out);
  ++f.ip;
}

// ---------------------------------------------------------------------------
// Calls and returns

void Machine::ExecCallCommon(Frame& f, const Instruction* inst, const Function* callee,
                             size_t first_arg_index) {
  std::vector<uint64_t> args;
  std::vector<RegMeta> metas;
  for (size_t i = first_arg_index; i < inst->operands().size(); ++i) {
    args.push_back(Eval(f, inst->operand(i)));
    metas.push_back(EvalMeta(f, inst->operand(i)));
  }
  f.pending_call = inst;
  PushFrame(callee, args, metas, /*no_continuation=*/false);
}

// ---------------------------------------------------------------------------
// Heap

bool Machine::AllocateTemporalId(uint64_t* id) {
  if (cur_->tid == 0) {
    *id = temporal_.Allocate();
    return true;
  }
  *id = (cur_->tid << 48) | ++cur_->temporal_counter;
  if (!temporal_.Register(*id)) {
    // A collision means the per-thread namespace itself broke — fail as
    // loudly as a bad Free does, not with a delayed temporal violation.
    Crash("temporal: allocation id collision");
    return false;
  }
  return true;
}

void Machine::DoMalloc(Frame& f, uint64_t requested, uint32_t dest) {
  const uint64_t size = std::max<uint64_t>((requested + 15) & ~15ULL, 16);
  Cycles(kAllocCycles);
  uint64_t addr = 0;
  auto& free_list = cur_->free_lists[size];
  if (!free_list.empty()) {
    addr = free_list.back();
    free_list.pop_back();
  } else {
    if (cur_->heap_next + size > cur_->heap_limit) {
      Crash("out of memory");
      return;
    }
    addr = cur_->heap_next;
    cur_->heap_next += size;
    regular_.MapRange(addr, size, /*writable=*/true);
  }
  uint64_t id = 0;
  if (!AllocateTemporalId(&id)) {
    return;
  }
  heap_blocks_[addr] = HeapBlock{size, id, true};
  SetRegId(f, dest, addr, RegMeta::Data(addr, addr + requested, id));
  ++f.ip;
}

void Machine::DoFree(Frame& f, uint64_t addr) {
  Cycles(kAllocCycles);
  if (addr == 0) {  // free(NULL) is a no-op
    ++f.ip;
    return;
  }
  auto it = heap_blocks_.find(addr);
  if (it == heap_blocks_.end() || !it->second.live) {
    Crash("invalid or double free");
    return;
  }
  it->second.live = false;
  if (!temporal_.Free(it->second.temporal_id)) {
    // The block table already filters double-frees, so a rejected id means
    // the allocation bookkeeping itself diverged — surface it loudly.
    Crash("temporal: free of a dead or static allocation id");
    return;
  }
  // Freed memory goes to the *freeing* thread's cache (tcmalloc-style):
  // every thread's allocator state — and with it every future malloc
  // address — is then a pure function of that thread's own operation
  // stream, never of when another thread's free happened to be scheduled.
  cur_->free_lists[it->second.size].push_back(addr);
  ++f.ip;
}

// ---------------------------------------------------------------------------
// Threads

void Machine::DoSpawn(Frame& f, const Function* callee, std::vector<uint64_t> args,
                      std::vector<RegMeta> metas, uint32_t dest) {
  if (threads_.size() >= kMaxThreads) {
    Crash("spawn: thread limit reached");
    return;
  }
  const uint64_t tid = threads_.size();
  const uint64_t arena_base = kHeapLimit - tid * kThreadHeapBytes;
  if (threads_[0]->heap_next > arena_base) {
    // Thread 0's bump pointer already grew past where this thread's arena
    // would start: carving it out would alias live allocations. Fail the
    // spawn loudly instead of silently overlapping heaps.
    Crash("spawn: heap arenas exhausted");
    return;
  }
  Cycles(kSpawnCycles);
  ++result_.counters.thread_spawns;
  concurrent_ = true;
  if (migrate_) {
    // The new thread claims its own home slot (tids are never reused, so
    // the slot is necessarily unclaimed) and inherits the oldest retired
    // home group (the homes of the earliest joined-and-unclaimed thread,
    // plus everything that thread had inherited in its turn), then the
    // spawner publishes the new ownership epoch before the thread can run.
    home_owner_[tid] = static_cast<int32_t>(tid);
    if (!retired_homes_.empty()) {
      for (uint8_t h : retired_homes_.front()) {
        home_owner_[h] = static_cast<int32_t>(tid);
      }
      retired_homes_.pop_front();
    }
    PublishEpoch();
  }

  threads_.push_back(std::make_unique<ThreadContext>(tid, options_.cache));
  ThreadContext* t = threads_.back().get();
  t->sp = UnsafeStackTopFor(tid) - 16;
  t->safe_sp = SafeStackTopFor(tid) - 16;
  t->heap_next = arena_base;
  t->heap_limit = arena_base + kThreadHeapBytes;
  // The new thread is born into the epoch its spawner just published (or
  // epoch 0 with migration off) — the publish happened-before the thread
  // exists, so the snapshot adoption is race-free by construction.
  t->epoch = cur_->epoch;
  // Thread 0 grows upward from kHeapBase; cap it below the lowest arena so
  // the regions can never interleave.
  threads_[0]->heap_limit = std::min(threads_[0]->heap_limit, arena_base);
  regular_.MapRange(UnsafeStackTopFor(tid) - kStackRegionBytes, kStackRegionBytes,
                    /*writable=*/true);
  t->safe_stack.MapRange(SafeStackTopFor(tid) - kStackRegionBytes, kStackRegionBytes,
                         /*writable=*/true);

  // The root frame is set up in the new thread's context (its token, its
  // stacks, its cache), then control returns to the spawner; the new thread
  // first runs when the scheduler rotates to it.
  ThreadContext* spawner = cur_;
  cur_ = t;
  const bool ok = PushFrame(callee, args, metas, /*no_continuation=*/false);
  cur_ = spawner;
  if (!ok) {
    return;
  }
  SetRegId(f, dest, tid, RegMeta::None());
  ++f.ip;
}

void Machine::DoJoin(Frame& f, uint64_t tid, uint32_t dest) {
  if (tid == 0 || tid == cur_->tid || tid >= threads_.size()) {
    Crash("join: invalid thread id");
    return;
  }
  ThreadContext& target = *threads_[tid];
  if (target.state != ThreadContext::State::kDone) {
    // Block and re-execute this join when the target finishes. The charge
    // the main loop already made is rolled back so a join costs exactly one
    // instruction no matter when (or whether) it had to wait — that is what
    // keeps counters identical across quanta.
    --result_.counters.instructions;
    result_.counters.cycles -= kBaseCycles;
    cur_->state = ThreadContext::State::kJoining;
    cur_->join_target = tid;
    resched_ = true;
    return;  // ip unchanged
  }
  if (target.reaped) {
    Crash("join: thread already joined");
    return;
  }
  target.reaped = true;
  Cycles(kJoinCycles);
  if (migrate_) {
    // Retire the joined thread's home slots as one FIFO group — the next
    // spawn inherits them wholesale — and publish the new epoch. This runs
    // only on the *completed* join path: the blocking path above rolled its
    // charge back and re-executes, so the publish (and its migration
    // charges) happens exactly once per join regardless of waiting.
    std::vector<uint8_t> group;
    for (uint64_t h = 0; h < kMaxThreads; ++h) {
      if (home_owner_[h] == static_cast<int32_t>(tid)) {
        group.push_back(static_cast<uint8_t>(h));
        home_owner_[h] = -1;
      }
    }
    if (!group.empty()) {
      retired_homes_.push_back(std::move(group));
    }
    PublishEpoch();
  }
  SetRegId(f, dest, target.exit_value, target.exit_meta);
  ++f.ip;
}

void Machine::DoYield(Frame& f) {
  resched_ = true;
  ++f.ip;
}

void Machine::ExecRet(Frame& f, const Instruction* inst) {
  DoRet(f, !inst->operands().empty(), InstOps{*this, f, inst});
}

template <typename Ops>
void Machine::DoRet(Frame& f, bool has_value, const Ops& ops) {
  // Stack-cookie baseline: validate the canary before using the return slot.
  if (f.cookie_addr != 0) {
    uint64_t cookie = 0;
    regular_.ReadU64(f.cookie_addr, &cookie);
    ChargeRegularAccess(f.cookie_addr);
    if (cookie != cookie_value_) {
      Abort(Violation::kStackCookieSmashed, "stack smashing detected");
      return;
    }
  }

  uint64_t token = 0;
  if (f.ret_slot_safe) {
    cur_->safe_stack.ReadU64(f.ret_slot, &token);
    ChargeAccess(f.ret_slot);
  } else {
    regular_.ReadU64(f.ret_slot, &token);
    ChargeRegularAccess(f.ret_slot);
    if (module_.protection().ptrenc) {
      // Leaf-frame elision (ir::Function::ret_token_elidable): a provably
      // pure leaf cannot have written memory while its frame was live, so
      // the slot must still hold the prologue's sealed word — verified by
      // recomputation, no authenticate charged. Anything else (including a
      // word this check unexpectedly rejects) takes the exact O0 path.
      if (f.func->ret_token_elidable() &&
          token == sealer_.Seal(f.token, f.ret_slot)) {
        token = f.token;
      } else {
        // PAC-style epilogue: authenticate before the token may steer
        // control.
        ChargeAuth();
        uint64_t stripped = 0;
        if (!sealer_.Auth(token, f.ret_slot, &stripped)) {
          Abort(Violation::kPointerAuthFailure,
                "ptrenc: saved return address failed authentication");
          return;
        }
        token = stripped;
      }
    }
  }

  if (module_.protection().ret_chain) {
    // Chain epilogue: the slot must still hold the thread's chain head, and
    // that word must authenticate over slot ⊕ predecessor. A genuine stale
    // token from elsewhere in the chain fails the head comparison; a forged
    // word fails the MAC. No leaf elision — the chain head moves on every
    // call, so every return pays the authenticate.
    ChargeAuth();
    uint64_t stripped = 0;
    if (token != cur_->ret_chain_head ||
        !sealer_.Auth(token, f.ret_slot ^ f.saved_chain, &stripped)) {
      Abort(Violation::kPointerAuthFailure,
            "ret-chain: saved return address broke the authentication chain");
      return;
    }
    token = stripped;
    cur_->ret_chain_head = f.saved_chain;
  }

  if (token == f.token) {
    if (f.no_continuation) {
      Crash("return from a hijacked context");
      return;
    }
    uint64_t value = 0;
    RegMeta meta = RegMeta::None();
    if (has_value) {
      value = ops.value(0);
      meta = ops.meta(0);
    }
    ReturnToCaller(value, meta);
    return;
  }

  // The saved return address was corrupted: transfer control to wherever it
  // points, exactly like the ret instruction would.
  const Function* target = FunctionAtAddress(token);
  if (target != nullptr) {
    ++result_.counters.hijack_transfers;
    PopFrame();
    if (!cur_->frames.empty()) {
      cur_->frames.back().pending_call = nullptr;
    }
    std::vector<uint64_t> args(target->args().size(), 0);
    std::vector<RegMeta> metas(target->args().size(), RegMeta::None());
    PushFrame(target, args, metas, /*no_continuation=*/true);
    return;
  }
  Crash("return to a non-code address");
}

// ---------------------------------------------------------------------------
// Libc-style routines

void Machine::ExecLibCall(Frame& f, const Instruction* inst) {
  DoLibCall(f, inst->lib_func(), inst->checked(), InstOps{*this, f, inst});
}

template <typename Ops>
void Machine::DoLibCall(Frame& f, LibFunc func, bool checked, const Ops& ops) {
  Cycles(kLibCallSetupCycles);
  const ir::ProtectionFlags& prot = module_.protection();

  auto value_of = [&](size_t i) { return ops.value(i); };
  auto meta_of = [&](size_t i) { return ops.meta(i); };

  // C-string length helper (bounded scan so a missing NUL faults eventually).
  auto scan_strlen = [&](uint64_t addr, const RegMeta& meta, uint64_t* len) {
    for (uint64_t i = 0;; ++i) {
      uint8_t b = 0;
      if (!ReadByteRouted(addr + i, meta, &b)) {
        return false;
      }
      if (b == 0) {
        *len = i;
        return true;
      }
    }
  };

  // SoftBound baseline: a checked libcall validates the whole touched range
  // against the pointer's bounds before a single byte moves.
  auto sb_range_check = [&](const RegMeta& meta, uint64_t addr, uint64_t n) {
    if (!prot.softbound || !checked || n == 0) {
      // Zero-length transfers access no memory; a one-past-the-end pointer
      // (addr == upper, legal C) must not trip the exclusive-bound check.
      return true;
    }
    ChargeCheck();
    if (!meta.IsSafeValue() || !meta.InBounds(addr, n)) {
      Abort(Violation::kSoftBoundViolation, "softbound: libcall range check failed");
      return false;
    }
    return true;
  };

  // CPI/CPS checked variants move safe-store entries along with the bytes
  // (§3.2.2 type-specific memcpy); charge one store op per word.
  auto move_entries = [&](uint64_t dst, uint64_t src, uint64_t n, bool is_move) {
    if (!(prot.cpi || prot.cps) || !checked) {
      return;
    }
    if (is_move) {
      store_->MoveRange(dst, src, n);
    } else {
      store_->CopyRange(dst, src, n);
    }
    ChargeBulkStoreOps(dst, n / 8 + 1);
  };
  // PtrEnc checked variants re-seal moved pointers: the storage location is
  // part of the MAC domain, so a sealed word copied to a new address must be
  // authenticated against its old slot and signed for its new one. Words
  // that do not authenticate (plain data, or a byte-shifted pointer) are
  // left as-is — they simply never authenticate at their new home.
  auto reseal_entries = [&](uint64_t dst, uint64_t src, uint64_t n) {
    if (!prot.ptrenc || !checked || ((dst ^ src) & 7) != 0 || dst == src) {
      return;
    }
    const RegMeta dm = meta_of(0);
    for (uint64_t d = (dst + 7) & ~7ULL; d + 8 <= dst + n; d += 8) {
      uint64_t word = 0;
      if (!DataRead(d, 8, dm, &word)) {
        return;
      }
      uint64_t value = 0;
      ChargeAuth();
      if (sealer_.Auth(word, src + (d - dst), &value)) {
        ChargeSeal();
        if (!DataWrite(d, 8, dm, sealer_.Seal(value, d))) {
          return;
        }
      }
    }
  };
  auto clear_entries = [&](uint64_t dst, uint64_t n) {
    if (!(prot.cpi || prot.cps) || !checked) {
      return;
    }
    store_->ClearRange(dst, n);
    ChargeBulkStoreOps(dst, n / 8 + 1);
  };

  auto copy_bytes = [&](uint64_t dst, const RegMeta& dm, uint64_t src, const RegMeta& sm,
                        uint64_t n, bool backward) -> bool {
    for (uint64_t i = 0; i < n; ++i) {
      const uint64_t off = backward ? n - 1 - i : i;
      uint8_t b = 0;
      if (!ReadByteRouted(src + off, sm, &b) || !WriteByteRouted(dst + off, dm, b)) {
        return false;
      }
    }
    ChargeChunked(src, n);
    ChargeChunked(dst, n);
    return true;
  };

  switch (func) {
    case LibFunc::kStrlen: {
      uint64_t len = 0;
      if (!scan_strlen(value_of(0), meta_of(0), &len)) {
        return;
      }
      ChargeChunked(value_of(0), len + 1);
      ops.set(len, RegMeta::None());
      break;
    }
    case LibFunc::kStrcmp: {
      const uint64_t a = value_of(0);
      const uint64_t b = value_of(1);
      const RegMeta ma = meta_of(0);
      const RegMeta mb = meta_of(1);
      uint64_t i = 0;
      int64_t r = 0;
      for (;; ++i) {
        uint8_t ca = 0;
        uint8_t cb = 0;
        if (!ReadByteRouted(a + i, ma, &ca) || !ReadByteRouted(b + i, mb, &cb)) {
          return;
        }
        if (ca != cb) {
          r = ca < cb ? -1 : 1;
          break;
        }
        if (ca == 0) {
          break;
        }
      }
      ChargeChunked(a, i + 1);
      ChargeChunked(b, i + 1);
      ops.set(static_cast<uint64_t>(r), RegMeta::None());
      break;
    }
    case LibFunc::kStrcpy: {
      const uint64_t dst = value_of(0);
      const uint64_t src = value_of(1);
      uint64_t len = 0;
      if (!scan_strlen(src, meta_of(1), &len)) {
        return;
      }
      if (!sb_range_check(meta_of(0), dst, len + 1) ||
          !sb_range_check(meta_of(1), src, len + 1)) {
        return;
      }
      if (!copy_bytes(dst, meta_of(0), src, meta_of(1), len + 1, /*backward=*/false)) {
        return;
      }
      clear_entries(dst, len + 1);
      ops.set(dst, meta_of(0));
      break;
    }
    case LibFunc::kStrncpy: {
      const uint64_t dst = value_of(0);
      const uint64_t src = value_of(1);
      const uint64_t n = value_of(2);
      if (!sb_range_check(meta_of(0), dst, n)) {
        return;
      }
      uint64_t len = 0;
      if (!scan_strlen(src, meta_of(1), &len)) {
        return;
      }
      const uint64_t copy = std::min(len, n);
      if (!copy_bytes(dst, meta_of(0), src, meta_of(1), copy, /*backward=*/false)) {
        return;
      }
      for (uint64_t i = copy; i < n; ++i) {
        if (!WriteByteRouted(dst + i, meta_of(0), 0)) {
          return;
        }
      }
      clear_entries(dst, n);
      ops.set(dst, meta_of(0));
      break;
    }
    case LibFunc::kStrcat: {
      const uint64_t dst = value_of(0);
      const uint64_t src = value_of(1);
      uint64_t dst_len = 0;
      uint64_t src_len = 0;
      if (!scan_strlen(dst, meta_of(0), &dst_len) || !scan_strlen(src, meta_of(1), &src_len)) {
        return;
      }
      if (!sb_range_check(meta_of(0), dst, dst_len + src_len + 1)) {
        return;
      }
      if (!copy_bytes(dst + dst_len, meta_of(0), src, meta_of(1), src_len + 1,
                      /*backward=*/false)) {
        return;
      }
      clear_entries(dst + dst_len, src_len + 1);
      ops.set(dst, meta_of(0));
      break;
    }
    case LibFunc::kMemcpy:
    case LibFunc::kMemmove: {
      const uint64_t dst = value_of(0);
      const uint64_t src = value_of(1);
      const uint64_t n = value_of(2);
      if (!sb_range_check(meta_of(0), dst, n) || !sb_range_check(meta_of(1), src, n)) {
        return;
      }
      const bool backward = func == LibFunc::kMemmove && dst > src && dst < src + n;
      if (n > 0 && !copy_bytes(dst, meta_of(0), src, meta_of(1), n, backward)) {
        return;
      }
      move_entries(dst, src, n, func == LibFunc::kMemmove);
      reseal_entries(dst, src, n);
      ops.set(dst, meta_of(0));
      break;
    }
    case LibFunc::kMemset: {
      const uint64_t dst = value_of(0);
      const uint8_t byte = static_cast<uint8_t>(value_of(1));
      const uint64_t n = value_of(2);
      if (!sb_range_check(meta_of(0), dst, n)) {
        return;
      }
      for (uint64_t i = 0; i < n; ++i) {
        if (!WriteByteRouted(dst + i, meta_of(0), byte)) {
          return;
        }
      }
      ChargeChunked(dst, n);
      clear_entries(dst, n);
      ops.set(dst, meta_of(0));
      break;
    }
    case LibFunc::kInputBytes: {
      const uint64_t dst = value_of(0);
      const uint64_t max = value_of(1);
      const uint64_t available = options_.input_bytes.size() - input_byte_pos_;
      const uint64_t n = std::min(max, available);
      if (!sb_range_check(meta_of(0), dst, n)) {
        return;
      }
      for (uint64_t i = 0; i < n; ++i) {
        if (!WriteByteRouted(dst + i, meta_of(0), options_.input_bytes[input_byte_pos_ + i])) {
          return;
        }
      }
      input_byte_pos_ += n;
      ChargeChunked(dst, n);
      clear_entries(dst, n);
      ops.set(n, RegMeta::None());
      break;
    }
  }
  if (!done_) {
    ++f.ip;
  }
}

// ---------------------------------------------------------------------------
// Instrumentation intrinsics

void Machine::ExecIntrinsic(Frame& f, const Instruction* inst) {
  DoIntrinsic(f, inst->intrinsic(), InstOps{*this, f, inst});
}

template <typename Ops>
void Machine::DoIntrinsic(Frame& f, IntrinsicId id, const Ops& ops) {
  const ir::ProtectionFlags& prot = module_.protection();
  switch (id) {
    // --- CPI ---------------------------------------------------------------
    case IntrinsicId::kCpiStore: {
      const uint64_t addr = ops.value(0);
      const uint64_t value = ops.value(1);
      const RegMeta vm = ops.meta(1);
      SafeEntry entry;
      if (vm.kind == EntryKind::kCode) {
        entry = SafeEntry::Code(value);
      } else if (vm.IsSafeValue()) {
        entry = SafeEntry{value, vm.lower, vm.upper, vm.temporal_id, EntryKind::kData};
      } else {
        entry = SafeEntry::Invalid(value);  // e.g. storing NULL
      }
      StoreSet(addr, entry);
      if (prot.debug_mode) {
        // Debug mode (§3.2.2): mirror into the regular region too.
        if (!DataWrite(addr, 8, ops.meta(0), value)) {
          return;
        }
      }
      break;
    }
    case IntrinsicId::kCpiLoad: {
      const uint64_t addr = ops.value(0);
      const SafeEntry e = StoreGet(addr);
      if (!e.IsPresent()) {
        // Never stored through the safe store: yields a regular value, whose
        // use in any checked context aborts.
        uint64_t raw = 0;
        if (!DataRead(addr, 8, ops.meta(0), &raw)) {
          return;
        }
        ops.set(raw, RegMeta::None());
        break;
      }
      if (prot.debug_mode) {
        uint64_t mirror = 0;
        if (!DataRead(addr, 8, ops.meta(0), &mirror)) {
          return;
        }
        if (mirror != e.value) {
          Abort(Violation::kDebugModeMismatch,
                "debug mode: regular copy of a protected pointer diverged");
          return;
        }
      }
      ops.set(e.value, RegMeta::FromEntry(e));
      break;
    }
    case IntrinsicId::kCpiStoreUni: {
      const uint64_t addr = ops.value(0);
      const uint64_t value = ops.value(1);
      const RegMeta vm = ops.meta(1);
      const bool safe_value = vm.IsSafeValue() && (vm.kind == EntryKind::kCode ||
                                                   vm.lower <= vm.upper);
      if (safe_value) {
        SafeEntry entry = vm.kind == EntryKind::kCode
                              ? SafeEntry::Code(value)
                              : SafeEntry{value, vm.lower, vm.upper, vm.temporal_id,
                                          EntryKind::kData};
        StoreSet(addr, entry);
        if (prot.debug_mode) {
          if (!DataWrite(addr, 8, ops.meta(0), value)) {
            return;
          }
        }
      } else {
        // A regular value: store to the regular region and kill any stale
        // protected entry for this slot.
        StoreClear(addr);
        if (!DataWrite(addr, 8, ops.meta(0), value)) {
          return;
        }
      }
      break;
    }
    case IntrinsicId::kCpiLoadUni: {
      const uint64_t addr = ops.value(0);
      const SafeEntry e = StoreGet(addr);
      if (e.IsPresent()) {
        if (prot.debug_mode) {
          uint64_t mirror = 0;
          if (!DataRead(addr, 8, ops.meta(0), &mirror)) {
            return;
          }
          if (mirror != e.value) {
            Abort(Violation::kDebugModeMismatch,
                  "debug mode: regular copy of a protected pointer diverged");
            return;
          }
        }
        ops.set(e.value, RegMeta::FromEntry(e));
      } else {
        uint64_t raw = 0;
        if (!DataRead(addr, 8, ops.meta(0), &raw)) {
          return;
        }
        ops.set(raw, RegMeta::None());
      }
      break;
    }
    case IntrinsicId::kCpiBoundsCheck: {
      const uint64_t addr = ops.value(0);
      const uint64_t size = ops.value(1);
      const RegMeta meta = ops.meta(0);
      ChargeCheck();
      if (!meta.IsSafeValue() || !meta.InBounds(addr, size)) {
        Abort(Violation::kSpatialOutOfBounds, "CPI: sensitive dereference out of bounds");
        return;
      }
      if (!TemporallyLive(meta)) {
        Abort(Violation::kTemporalUseAfterFree, "CPI: use after free of sensitive object");
        return;
      }
      break;
    }
    case IntrinsicId::kCpiAssertCode: {
      const uint64_t value = ops.value(0);
      const RegMeta meta = ops.meta(0);
      ChargeCheck();
      if (meta.kind != EntryKind::kCode || value != meta.lower) {
        Abort(Violation::kForgedCodePointer, "CPI: indirect call through unsafe code pointer");
        return;
      }
      ops.set(value, meta);
      break;
    }

    // --- CPS ---------------------------------------------------------------
    case IntrinsicId::kCpsStore: {
      const uint64_t addr = ops.value(0);
      const uint64_t value = ops.value(1);
      const RegMeta vm = ops.meta(1);
      StoreSet(addr, vm.kind == EntryKind::kCode ? SafeEntry::Code(value)
                                                 : SafeEntry::Invalid(value));
      if (prot.debug_mode) {
        if (!DataWrite(addr, 8, ops.meta(0), value)) {
          return;
        }
      }
      break;
    }
    case IntrinsicId::kCpsLoad: {
      const uint64_t addr = ops.value(0);
      const SafeEntry e = StoreGet(addr);
      if (e.IsPresent()) {
        if (prot.debug_mode) {
          uint64_t mirror = 0;
          if (!DataRead(addr, 8, ops.meta(0), &mirror)) {
            return;
          }
          if (mirror != e.value) {
            Abort(Violation::kDebugModeMismatch,
                  "debug mode: regular copy of a protected pointer diverged");
            return;
          }
        }
        ops.set(e.value, RegMeta::FromEntry(e));
      } else {
        uint64_t raw = 0;
        if (!DataRead(addr, 8, ops.meta(0), &raw)) {
          return;
        }
        ops.set(raw, RegMeta::None());
      }
      break;
    }
    case IntrinsicId::kCpsStoreUni: {
      const uint64_t addr = ops.value(0);
      const uint64_t value = ops.value(1);
      const RegMeta vm = ops.meta(1);
      if (vm.kind == EntryKind::kCode) {
        StoreSet(addr, SafeEntry::Code(value));
      } else {
        StoreClear(addr);
        if (!DataWrite(addr, 8, ops.meta(0), value)) {
          return;
        }
      }
      break;
    }
    case IntrinsicId::kCpsLoadUni: {
      const uint64_t addr = ops.value(0);
      const SafeEntry e = StoreGet(addr);
      if (e.IsPresent() && e.kind == EntryKind::kCode) {
        ops.set(e.value, RegMeta::FromEntry(e));
      } else {
        uint64_t raw = 0;
        if (!DataRead(addr, 8, ops.meta(0), &raw)) {
          return;
        }
        ops.set(raw, RegMeta::None());
      }
      break;
    }
    case IntrinsicId::kCpsAssertCode: {
      const uint64_t value = ops.value(0);
      const RegMeta meta = ops.meta(0);
      ChargeCheck();
      if (meta.kind != EntryKind::kCode) {
        Abort(Violation::kForgedCodePointer, "CPS: indirect call through unsafe code pointer");
        return;
      }
      ops.set(value, meta);
      break;
    }

    // --- SoftBound baseline --------------------------------------------------
    case IntrinsicId::kSbStore: {
      const uint64_t addr = ops.value(0);
      const uint64_t value = ops.value(1);
      if (!DataWrite(addr, 8, ops.meta(0), value)) {
        return;
      }
      sb_shadow_[addr] = ops.meta(1);
      ChargeAccess(kSbShadowBase + (addr >> 3) * 16);
      ChargeAccess(kSbShadowBase + (addr >> 3) * 16 + 8);
      break;
    }
    case IntrinsicId::kSbLoad: {
      const uint64_t addr = ops.value(0);
      uint64_t raw = 0;
      if (!DataRead(addr, 8, ops.meta(0), &raw)) {
        return;
      }
      RegMeta meta = RegMeta::None();
      auto it = sb_shadow_.find(addr);
      if (it != sb_shadow_.end()) {
        meta = it->second;
      }
      ChargeAccess(kSbShadowBase + (addr >> 3) * 16);
      ChargeAccess(kSbShadowBase + (addr >> 3) * 16 + 8);
      ops.set(raw, meta);
      break;
    }
    case IntrinsicId::kSbCheck: {
      const uint64_t addr = ops.value(0);
      const uint64_t size = ops.value(1);
      const RegMeta meta = ops.meta(0);
      // Full memory safety checks every dereference, and the bounds usually
      // have to be re-fetched from the disjoint metadata space (SoftBound's
      // dominant cost); CPI's checks, by contrast, ride on metadata already
      // loaded by the fused safe-store access.
      ChargeCheck();
      Cycles(2);
      ChargeAccess(kSbShadowBase + (addr >> 3) * 16);
      if (!meta.IsSafeValue() || !meta.InBounds(addr, size)) {
        Abort(Violation::kSoftBoundViolation, "softbound: dereference check failed");
        return;
      }
      if (!TemporallyLive(meta)) {
        Abort(Violation::kTemporalUseAfterFree, "softbound: use after free");
        return;
      }
      break;
    }

    // --- CFI baseline --------------------------------------------------------
    case IntrinsicId::kCfiCheck: {
      const uint64_t value = ops.value(0);
      ++result_.counters.checks;
      Cycles(options_.costs.cfi_check);
      const Function* target = FunctionAtAddress(value);
      if (target == nullptr || !target->address_taken()) {
        Abort(Violation::kCfiBadTarget, "CFI: indirect call target not in the valid set");
        return;
      }
      ops.set(value, ops.meta(0));
      break;
    }

    // --- PtrEnc: in-place pointer sealing --------------------------------
    case IntrinsicId::kSealStore: {
      const uint64_t addr = ops.value(0);
      const uint64_t value = ops.value(1);
      const RegMeta vm = ops.meta(1);
      uint64_t word = value;
      if (vm.kind == EntryKind::kCode) {
        word = sealer_.Seal(value, addr);
        ChargeSeal();
      }
      if (!DataWrite(addr, 8, ops.meta(0), word)) {
        return;
      }
      break;
    }
    case IntrinsicId::kSealLoad: {
      const uint64_t addr = ops.value(0);
      uint64_t raw = 0;
      if (!DataRead(addr, 8, ops.meta(0), &raw)) {
        return;
      }
      // Authenticate unconditionally (the aut instruction runs either way).
      // A valid MAC strips to a usable code pointer; anything else — plain
      // data, or an attacker-corrupted slot — stays a regular value whose
      // use as a call target aborts at kSealAssertCode.
      ChargeAuth();
      uint64_t value = 0;
      if (sealer_.Auth(raw, addr, &value)) {
        ops.set(value, RegMeta::Code(value));
      } else {
        ops.set(raw, RegMeta::None());
      }
      break;
    }
    case IntrinsicId::kSealAssertCode: {
      const uint64_t value = ops.value(0);
      const RegMeta meta = ops.meta(0);
      ChargeAuth();
      ++result_.counters.checks;
      if (meta.kind != EntryKind::kCode) {
        Abort(Violation::kPointerAuthFailure,
              "ptrenc: indirect call through unauthenticated pointer");
        return;
      }
      ops.set(value, meta);
      break;
    }
  }
  if (!done_) {
    ++f.ip;
  }
}


// ---------------------------------------------------------------------------
// Decoded engine: one handler per micro-op, dispatched through a function-
// pointer table. Each handler is the corresponding Step() arm with operands
// and type-derived payloads pre-resolved at decode time; cost charging and
// trap behaviour are identical, instruction for instruction.

void Machine::OpAlloca(Machine& m, Frame& f, const DecodedOp& op) {
  uint64_t& sp = op.flag ? m.cur_->safe_sp : m.cur_->sp;
  sp -= op.imm;
  sp &= ~op.imm2;  // imm2 = alignment - 1
  const uint64_t addr = sp;
  m.SetRegId(f, op.dest, addr,
             RegMeta::Data(addr, addr + op.imm, runtime::TemporalIdService::kStaticId));
  ++f.ip;
}

void Machine::OpLoad(Machine& m, Frame& f, const DecodedOp& op) {
  const uint64_t addr = SlotVal(f, op.a);
  uint64_t raw = 0;
  if (!m.DataRead(addr, op.imm, SlotMeta(f, op.a), &raw)) {
    return;
  }
  m.SetRegId(f, op.dest, raw, RegMeta::None());
  ++f.ip;
}

void Machine::OpStore(Machine& m, Frame& f, const DecodedOp& op) {
  const uint64_t value = SlotVal(f, op.a);
  const uint64_t addr = SlotVal(f, op.b);
  if (!m.DataWrite(addr, op.imm, SlotMeta(f, op.b), value)) {
    return;
  }
  ++f.ip;
}

void Machine::OpFieldAddr(Machine& m, Frame& f, const DecodedOp& op) {
  const uint64_t base = SlotVal(f, op.a);
  const RegMeta base_meta = SlotMeta(f, op.a);
  const uint64_t addr = base + op.imm;  // imm = field offset
  RegMeta meta = RegMeta::None();
  if (base_meta.IsSafeValue() && base_meta.kind == EntryKind::kData) {
    // Sub-object narrowing (based-on case (iii)); imm2 = field size.
    meta = RegMeta::Data(addr, addr + op.imm2, base_meta.temporal_id);
  }
  m.SetRegId(f, op.dest, addr, meta);
  ++f.ip;
}

void Machine::OpIndexAddr(Machine& m, Frame& f, const DecodedOp& op) {
  const uint64_t base = SlotVal(f, op.a);
  const int64_t index = SignExtend(SlotVal(f, op.b), op.bits);
  const uint64_t addr = base + static_cast<uint64_t>(index) * op.imm;  // imm = elem size
  m.SetRegId(f, op.dest, addr, SlotMeta(f, op.a));
  ++f.ip;
}

void Machine::OpBinOp(Machine& m, Frame& f, const DecodedOp& op) {
  m.DoBinOp(f, static_cast<BinOp>(op.aux), op.bits, op.bits2, SlotOps{m, f, op});
}

void Machine::OpCast(Machine& m, Frame& f, const DecodedOp& op) {
  m.DoCast(f, static_cast<CastKind>(op.aux), op.bits, op.bits2, SlotOps{m, f, op});
}

void Machine::OpSelect(Machine& m, Frame& f, const DecodedOp& op) {
  const uint64_t cond = SlotVal(f, op.a);
  const OperandSlot& chosen = cond != 0 ? op.b : op.c;
  m.SetRegId(f, op.dest, SlotVal(f, chosen), SlotMeta(f, chosen));
  ++f.ip;
}

void Machine::DoCallSlots(Frame& f, const DecodedOp& op, const Function* callee) {
  std::vector<uint64_t> args(op.arg_count);
  std::vector<RegMeta> metas(op.arg_count);
  const OperandSlot* slots = f.dfunc->args.data() + op.arg_begin;
  for (uint32_t i = 0; i < op.arg_count; ++i) {
    args[i] = SlotVal(f, slots[i]);
    metas[i] = SlotMeta(f, slots[i]);
  }
  // The call instruction's identity lives in the cold side table, parallel
  // to the op array (return-value plumbing needs the ir::Instruction).
  f.pending_call = f.dfunc->insts[&op - f.dfunc->ops.data()];
  PushFrame(callee, args, metas, /*no_continuation=*/false);
}

void Machine::OpCall(Machine& m, Frame& f, const DecodedOp& op) {
  // imm = callee ordinal, baked at decode time.
  m.DoCallSlots(f, op, m.module_.functions()[op.imm].get());
}

void Machine::OpIndirectCall(Machine& m, Frame& f, const DecodedOp& op) {
  const uint64_t target = SlotVal(f, op.a);
  const Function* callee = m.FunctionAtAddress(target);
  if (callee == nullptr) {
    m.Crash("indirect call to a non-code address");
    return;
  }
  if (callee->type()->params().size() != op.arg_count) {
    m.Crash("indirect call with mismatched signature");
    return;
  }
  m.DoCallSlots(f, op, callee);
}

void Machine::OpLibCall(Machine& m, Frame& f, const DecodedOp& op) {
  m.DoLibCall(f, static_cast<LibFunc>(op.aux), op.flag, SlotOps{m, f, op});
}

void Machine::OpMalloc(Machine& m, Frame& f, const DecodedOp& op) {
  m.DoMalloc(f, SlotVal(f, op.a), op.dest);
}

void Machine::OpFree(Machine& m, Frame& f, const DecodedOp& op) {
  m.DoFree(f, SlotVal(f, op.a));
}

void Machine::OpFuncAddr(Machine& m, Frame& f, const DecodedOp& op) {
  m.SetRegId(f, op.dest, op.imm, RegMeta::Code(op.imm));  // imm = code address
  ++f.ip;
}

void Machine::OpGlobalAddr(Machine& m, Frame& f, const DecodedOp& op) {
  // imm = global address, imm2 = global size.
  m.SetRegId(f, op.dest, op.imm,
             RegMeta::Data(op.imm, op.imm + op.imm2, runtime::TemporalIdService::kStaticId));
  ++f.ip;
}

void Machine::OpBr(Machine&, Frame& f, const DecodedOp& op) { f.ip = op.target; }

void Machine::OpCondBr(Machine&, Frame& f, const DecodedOp& op) {
  f.ip = SlotVal(f, op.a) != 0 ? op.target : op.target2;
}

void Machine::OpRet(Machine& m, Frame& f, const DecodedOp& op) {
  m.DoRet(f, op.flag, SlotOps{m, f, op});
}

void Machine::OpInput(Machine& m, Frame& f, const DecodedOp& op) {
  uint64_t v = 0;
  if (m.input_word_pos_ < m.options_.input_words.size()) {
    v = m.options_.input_words[m.input_word_pos_++];
  }
  m.Cycles(2);
  m.SetRegId(f, op.dest, v, RegMeta::None());
  ++f.ip;
}

void Machine::OpOutput(Machine& m, Frame& f, const DecodedOp& op) {
  if (m.result_.output.size() >= kMaxOutputWords) {
    m.Crash("output limit exceeded");
    return;
  }
  m.Cycles(2);
  m.result_.output.push_back(SlotVal(f, op.a));
  ++f.ip;
}

void Machine::OpIntrinsic(Machine& m, Frame& f, const DecodedOp& op) {
  m.DoIntrinsic(f, static_cast<IntrinsicId>(op.aux), SlotOps{m, f, op});
}

void Machine::OpSpawn(Machine& m, Frame& f, const DecodedOp& op) {
  std::vector<uint64_t> args(op.arg_count);
  std::vector<RegMeta> metas(op.arg_count);
  const OperandSlot* slots = f.dfunc->args.data() + op.arg_begin;
  for (uint32_t i = 0; i < op.arg_count; ++i) {
    args[i] = SlotVal(f, slots[i]);
    metas[i] = SlotMeta(f, slots[i]);
  }
  m.DoSpawn(f, m.module_.functions()[op.imm].get(), std::move(args), std::move(metas),
            op.dest);
}

void Machine::OpJoin(Machine& m, Frame& f, const DecodedOp& op) {
  m.DoJoin(f, SlotVal(f, op.a), op.dest);
}

void Machine::OpYield(Machine& m, Frame& f, const DecodedOp&) { m.DoYield(f); }

// ---------------------------------------------------------------------------
// Fused engine: superinstruction handlers. The head op carries the macro
// opcode; its constituents follow it in the op array with their original
// micro opcodes and payloads. Almost every macro is a FusePair/FuseTriple
// template instantiation (declared in the class body): the pair matrix and
// the specialised triple shapes are expanded directly into the dispatch
// table below. OpCmpBr additionally inlines both constituent bodies;
// OpFuse2/OpFuse3 are the generic fallbacks driven by fuse_head.

void Machine::OpCmpBr(Machine& m, Frame& f, const DecodedOp& op) {
  ++m.fuse_hits_[op.fuse_id];
  // Head: integer compare (the planner only picks kCmpBr for these, and
  // only when the branch consumes the compare's destination register).
  const uint64_t x = SlotVal(f, op.a);
  const uint64_t y = SlotVal(f, op.b);
  const int64_t sx = SignExtend(x, op.bits);
  const int64_t sy = SignExtend(y, op.bits);
  uint64_t r = 0;
  switch (static_cast<BinOp>(op.aux)) {
    case BinOp::kEq: r = x == y; break;
    case BinOp::kNe: r = x != y; break;
    case BinOp::kSLt: r = sx < sy; break;
    case BinOp::kSLe: r = sx <= sy; break;
    case BinOp::kSGt: r = sx > sy; break;
    case BinOp::kSGe: r = sx >= sy; break;
    case BinOp::kULt: r = x < y; break;
    case BinOp::kULe: r = x <= y; break;
    default: CPI_UNREACHABLE();
  }
  r = MaskToWidth(r, op.bits2);
  m.SetRegId(f, op.dest, r, RegMeta::None());
  ++f.ip;
  // Tail: the conditional branch, on the value just computed. Neither
  // constituent can trap, so the batched charge never needs rolling back.
  if (!m.PrechargeTails(1)) {
    if (!m.FusedStep()) return;
  }
  const DecodedOp& t = *(&op + 1);
  f.ip = r != 0 ? t.target : t.target2;
}

void Machine::OpFuse2(Machine& m, Frame& f, const DecodedOp& op) {
  ++m.fuse_hits_[op.fuse_id];
  if (!m.PrechargeTails(1)) {
    DispatchConstituent(m, f, op, static_cast<MicroOp>(op.fuse_head));
    if (!m.FusedStep()) return;
    const DecodedOp& t = f.dfunc->ops[f.ip];
    DispatchConstituent(m, f, t, t.op);
    return;
  }
  DispatchConstituent(m, f, op, static_cast<MicroOp>(op.fuse_head));
  if (m.done_) {
    m.UnchargeTails(1);
    return;
  }
  // Straight-line constituents sit right after the head (every fusible
  // inner op advances f.ip by exactly one), so tails are *(&op + k).
  const DecodedOp& t = *(&op + 1);
  DispatchConstituent(m, f, t, t.op);
}

void Machine::OpFuse3(Machine& m, Frame& f, const DecodedOp& op) {
  ++m.fuse_hits_[op.fuse_id];
  if (!m.PrechargeTails(2)) {
    DispatchConstituent(m, f, op, static_cast<MicroOp>(op.fuse_head));
    if (!m.FusedStep()) return;
    const DecodedOp& t1 = f.dfunc->ops[f.ip];
    DispatchConstituent(m, f, t1, t1.op);
    if (!m.FusedStep()) return;
    const DecodedOp& t2 = f.dfunc->ops[f.ip];
    DispatchConstituent(m, f, t2, t2.op);
    return;
  }
  DispatchConstituent(m, f, op, static_cast<MicroOp>(op.fuse_head));
  if (m.done_) {
    m.UnchargeTails(2);
    return;
  }
  const DecodedOp& t1 = *(&op + 1);
  DispatchConstituent(m, f, t1, t1.op);
  if (m.done_) {
    m.UnchargeTails(1);
    return;
  }
  const DecodedOp& t2 = *(&op + 2);
  DispatchConstituent(m, f, t2, t2.op);
}

// The pair matrix and triple shapes, expanded into FusePair/FuseTriple
// instantiations. Head/tail order MUST match kFuseHeadOps (tails = heads +
// kBr + kCondBr) and kTripleShapes in decode.h — the fuser computes the
// macro opcode as a matrix index. The bool after each head marks whether
// that constituent can trap (loads, stores, binop division, intrinsics).
#define CPI_FUSE_TAILS(P, H, HT)                                         \
  P(H, HT, Load) P(H, HT, Store) P(H, HT, FieldAddr) P(H, HT, IndexAddr) \
  P(H, HT, BinOp) P(H, HT, Cast) P(H, HT, Select) P(H, HT, FuncAddr)     \
  P(H, HT, GlobalAddr) P(H, HT, Intrinsic) P(H, HT, Br) P(H, HT, CondBr)
#define CPI_FUSE_PAIRS(P)                                                 \
  CPI_FUSE_TAILS(P, Load, true) CPI_FUSE_TAILS(P, Store, true)            \
  CPI_FUSE_TAILS(P, FieldAddr, false) CPI_FUSE_TAILS(P, IndexAddr, false) \
  CPI_FUSE_TAILS(P, BinOp, true) CPI_FUSE_TAILS(P, Cast, false)           \
  CPI_FUSE_TAILS(P, Select, false) CPI_FUSE_TAILS(P, FuncAddr, false)     \
  CPI_FUSE_TAILS(P, GlobalAddr, false) CPI_FUSE_TAILS(P, Intrinsic, true)
#define CPI_PAIR_ENTRY(H, HT, T) \
  &Machine::FusePair<&Machine::Op##H, &Machine::Op##T, HT>,
#define CPI_TRIPLE_ENTRY(A, AT, B, BT, C) \
  &Machine::FuseTriple<&Machine::Op##A, &Machine::Op##B, &Machine::Op##C, AT, BT>,

// Indexed by MicroOp then MacroOp; must match the enum orders in decode.h.
const Machine::Handler Machine::kDispatch[kNumOpcodes] = {
    &Machine::OpAlloca,   &Machine::OpLoad,         &Machine::OpStore,
    &Machine::OpFieldAddr, &Machine::OpIndexAddr,   &Machine::OpBinOp,
    &Machine::OpCast,     &Machine::OpSelect,       &Machine::OpCall,
    &Machine::OpIndirectCall, &Machine::OpLibCall,  &Machine::OpMalloc,
    &Machine::OpFree,     &Machine::OpFuncAddr,     &Machine::OpGlobalAddr,
    &Machine::OpBr,       &Machine::OpCondBr,       &Machine::OpRet,
    &Machine::OpInput,    &Machine::OpOutput,       &Machine::OpIntrinsic,
    &Machine::OpSpawn,    &Machine::OpJoin,         &Machine::OpYield,
    // Macro-ops (fused tier only; the decoded tier never emits them).
    &Machine::OpCmpBr,
    &Machine::OpFuse2,
    &Machine::OpFuse3,
    // kPairBase: the head x tail matrix.
    CPI_FUSE_PAIRS(CPI_PAIR_ENTRY)
    // kTripleBase: kTripleShapes order.
    CPI_TRIPLE_ENTRY(Load, true, BinOp, true, CondBr)
    CPI_TRIPLE_ENTRY(Load, true, GlobalAddr, false, IndexAddr)
    CPI_TRIPLE_ENTRY(Store, true, Load, true, BinOp)
    CPI_TRIPLE_ENTRY(BinOp, true, Store, true, Br)
    CPI_TRIPLE_ENTRY(Load, true, IndexAddr, false, Load)
    CPI_TRIPLE_ENTRY(Load, true, BinOp, true, GlobalAddr)
    CPI_TRIPLE_ENTRY(Load, true, BinOp, true, Store)
    CPI_TRIPLE_ENTRY(IndexAddr, false, Store, true, Load)
    CPI_TRIPLE_ENTRY(BinOp, true, Store, true, FieldAddr)
};
#undef CPI_FUSE_TAILS
#undef CPI_FUSE_PAIRS
#undef CPI_PAIR_ENTRY
#undef CPI_TRIPLE_ENTRY


void Machine::RunDecodedLoop() {
  while (!done_) {
    if (result_.counters.instructions >= options_.max_steps) {
      Trap(RunStatus::kOutOfFuel, Violation::kNone, "step budget exhausted");
      break;
    }
    if (result_.counters.instructions >= fault_at_) {
      ApplyPendingFaults();
    }
    Frame& f = cur_->frames.back();
    // Same malformed-IR guard as the reference Step(): a block missing its
    // terminator must abort loudly, not fall through into the next block's
    // flattened ops.
    CPI_CHECK(f.ip < f.dfunc->ops.size());
    const DecodedOp& op = f.dfunc->ops[f.ip];
    ++result_.counters.instructions;
    Cycles(kBaseCycles);
    kDispatch[static_cast<size_t>(op.op)](*this, f, op);
    if ((resched_ || --quantum_left_ == 0) && !done_) {
      Reschedule();
    }
  }
}

// The fused tier's loop: identical charging structure to RunDecodedLoop
// (the macro handlers charge their tails through FusedStep), with the
// hottest handlers dispatched through a switch so the compiler can inline
// them into the loop body instead of an indirect call per op.
void Machine::RunFusedLoop() {
  while (!done_) {
    if (result_.counters.instructions >= options_.max_steps) {
      Trap(RunStatus::kOutOfFuel, Violation::kNone, "step budget exhausted");
      break;
    }
    if (result_.counters.instructions >= fault_at_) {
      ApplyPendingFaults();
    }
    Frame& f = cur_->frames.back();
    CPI_CHECK(f.ip < f.dfunc->ops.size());
    const DecodedOp& op = f.dfunc->ops[f.ip];
    ++result_.counters.instructions;
    Cycles(kBaseCycles);
    kDispatch[static_cast<size_t>(op.op)](*this, f, op);
    if ((resched_ || --quantum_left_ == 0) && !done_) {
      Reschedule();
    }
  }
}

}  // namespace

RunResult Execute(const ir::Module& module, const RunOptions& options) {
  Machine machine(module, options);
  return machine.Run();
}

ProgramLayout ComputeProgramLayout(const ir::Module& module) {
  ProgramLayout layout;
  layout.code.resize(module.functions().size());
  for (size_t i = 0; i < module.functions().size(); ++i) {
    CPI_CHECK(module.functions()[i]->ordinal() == i);
    layout.code[i] = kCodeBase + i * kCodeStride;
  }
  layout.globals.resize(module.globals().size());
  uint64_t ro = kRoGlobalBase;
  uint64_t rw = kRwGlobalBase;
  for (const auto& g : module.globals()) {
    const uint64_t size = g->type()->SizeInBytes();
    const uint64_t align = ir::AlignmentOf(g->type());
    uint64_t& cursor = g->is_const() ? ro : rw;
    cursor = (cursor + align - 1) / align * align;
    CPI_CHECK(g->ordinal() < layout.globals.size());
    layout.globals[g->ordinal()] = cursor;
    cursor += size;
  }
  return layout;
}

uint64_t FirstHeapAddress() { return kHeapBase; }

}  // namespace cpi::vm
