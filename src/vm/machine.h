// The execution engine.
//
// Interprets an (optionally instrumented) module against the dual-region
// memory model of Appendix A: a regular region Mu that memory bugs can
// corrupt freely, and a safe region Ms (safe pointer store + safe stacks)
// reachable only through intrinsics and compiler-generated frame accesses.
//
// The machine charges every operation through a deterministic cycle + cache
// cost model, so protection overheads are measured as simulated-cycle ratios
// — stable, explainable numbers whose *shape* tracks the paper's wall-clock
// results.
//
// Control-flow hijacking is modelled faithfully: saved return addresses are
// ordinary (corruptible) memory words when no safe stack is active; a
// corrupted return slot or function pointer transfers control to whatever it
// decodes to, exactly like a ret/call on real hardware.
#ifndef CPI_SRC_VM_MACHINE_H_
#define CPI_SRC_VM_MACHINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/ir/module.h"
#include "src/runtime/safe_store.h"
#include "src/runtime/temporal.h"
#include "src/runtime/violation.h"
#include "src/vm/cache.h"
#include "src/vm/fault.h"
#include "src/vm/memory.h"

namespace cpi::vm {

enum class RunStatus {
  kOk,         // main returned normally
  kViolation,  // a protection mechanism aborted the program (attack prevented)
  kCrash,      // memory fault, bad jump, division by zero, ...
  kOutOfFuel,  // step budget exhausted
};

const char* RunStatusName(RunStatus s);

// Execution tiers. All three produce bit-identical RunResults — simulated
// counters, output, memory footprint, violations — and differ only in
// wall-clock (tests/decode_test.cc and tests/fuse_test.cc enforce the
// equivalence). kFused is the default everywhere; the slower tiers exist as
// oracles and escape hatches (`--engine` in the bench drivers).
enum class EngineKind : uint8_t {
  kReference,  // tier 1: tree-walking evaluator over the IR object graph
  kDecoded,    // tier 2: predecoded micro-op dispatch
  kFused,      // tier 3: predecoded + profile-guided superinstructions
};

const char* EngineKindName(EngineKind e);

// Per-operation cycle costs of the active protection scheme. Each
// core::ProtectionScheme fills in the entries its instrumentation exercises
// (via ConfigureRun), so the cost model is scheme-supplied data rather than
// machine-internal constants.
struct OpCosts {
  uint64_t check = 1;      // software bounds / code-pointer assert
  uint64_t cfi_check = 3;  // coarse-CFI valid-set membership test
  uint64_t seal = 4;       // PAC-style sign (PtrEnc store / call setup)
  uint64_t auth = 4;       // PAC-style authenticate (PtrEnc load / return)
  // Shard-crossing premium on safe-pointer-store operations once the run
  // has spawned a second thread (§3.2.3: the safe region is shared process
  // state). The store is partitioned into RunOptions::shards per-thread
  // write-local shards; an access pays this premium exactly when its key's
  // shard is not owned by the accessing thread (epoch validation against a
  // foreign-writable shard — conservatively charged on reads and writes
  // alike). At the default shard count of 1 the single shard is shared by
  // every thread, so every concurrent access pays — the historical flat
  // model, byte for byte. Single-threaded runs never pay it.
  uint64_t sync = 2;
};

struct RunOptions {
  uint64_t max_steps = 200'000'000;
  runtime::StoreKind store = runtime::StoreKind::kArray;
  runtime::IsolationKind isolation = runtime::IsolationKind::kSegment;
  // Which execution tier runs the program. Every tier produces bit-identical
  // RunResults (the differential tests enforce this); the reference
  // interpreter exists as the oracle, not as a supported fast path.
  EngineKind engine = EngineKind::kFused;
  // §4 "Future MPX-based implementation": hardware-assisted bounds checks
  // cost no extra cycles (metadata traffic remains).
  bool mpx_assist = false;
  // Whether a safe pointer store backs the run (schemes that protect
  // pointers in place — or not at all — set this false via ConfigureRun and
  // no store is ever allocated).
  bool use_safe_store = true;
  // Shard count of the safe pointer store (vm::ShardOfAddress routing).
  // 1 — the default — is the legacy shared store with the flat concurrent
  // sync premium; every recorded table is at 1. Behaviour (status, output,
  // per-op entry state) is identical at any count; cycles/cache/memory
  // legitimately vary with it (bench/ablation_shards sweeps it).
  uint32_t shards = 1;
  // Epoch-based shard-ownership migration. When false (the default) the
  // owner table is the static one precomputed from the layout — the PR 8
  // model, byte for byte. When true (and shards > 1), the machine re-derives
  // shard ownership at every spawn/join boundary, publishes it as a new
  // epoch (charging OpCosts::sync once per *migrated* shard to the
  // publishing thread, counted in Counters::shard_migrations), and gives
  // readers an RCU-style path: a thread consults the owner snapshot it
  // adopted at its own birth/spawn/join, pays nothing on shards it owns in
  // that epoch, and pays nothing on *reads* of shards the publisher froze
  // at the boundary (publish-then-spawn makes the data visible without
  // sync). Single-threaded runs never publish, so they are byte-identical
  // to migrate=false at every shard count.
  bool migrate = false;
  OpCosts costs;
  // Scheduling quantum of the deterministic round-robin thread scheduler:
  // how many instructions a runnable thread executes before the next one
  // runs. Purely a simulated-interleaving knob — context switches are free
  // in the cost model, and race-free programs produce identical counters at
  // any quantum (tests/sched_test.cc sweeps it).
  uint64_t quantum = 64;
  uint64_t seed = 1;  // stack cookie value derivation
  std::vector<uint64_t> input_words;
  std::vector<uint8_t> input_bytes;
  CacheModel::Config cache;
  // Optional adversarial fault plan (see src/vm/fault.h). Null — the normal
  // case — takes zero dispatch-loop cost; the historical tables depend on
  // that. The plan outlives the run; the machine does not copy it.
  const FaultPlan* faults = nullptr;
};

struct Counters {
  uint64_t instructions = 0;
  uint64_t cycles = 0;
  uint64_t mem_accesses = 0;
  uint64_t safe_store_ops = 0;
  // Safe-store ops that paid the shard-crossing sync premium (0 while
  // single-threaded; == safe_store_ops-after-first-spawn at shard count 1).
  uint64_t store_contended_ops = 0;
  // Shards whose owner changed at an epoch publish (RunOptions::migrate;
  // each one charged OpCosts::sync once to the publishing thread). Always 0
  // with migration off or single-threaded.
  uint64_t shard_migrations = 0;
  uint64_t seal_ops = 0;  // PtrEnc sign/authenticate operations
  uint64_t checks = 0;
  uint64_t calls = 0;
  uint64_t hijack_transfers = 0;  // control transfers via corrupted state
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t thread_spawns = 0;  // simulated threads created (0 when single-threaded)
};

struct MemoryFootprint {
  uint64_t regular_bytes = 0;     // mapped Mu pages
  uint64_t safe_store_bytes = 0;  // resident safe pointer store
  uint64_t safe_stack_bytes = 0;  // mapped safe-stack pages
  uint64_t safe_store_entries = 0;

  uint64_t TotalBytes() const { return regular_bytes + safe_store_bytes + safe_stack_bytes; }
};

struct RunResult {
  RunStatus status = RunStatus::kOk;
  runtime::Violation violation = runtime::Violation::kNone;
  std::string message;
  uint64_t exit_code = 0;
  std::vector<uint64_t> output;
  Counters counters;
  MemoryFootprint memory;
  // How many FaultPlan events actually fired during the run (0 without a
  // plan). The fuzz harness uses this for fault-coverage accounting.
  uint64_t faults_injected = 0;

  bool OutputContains(uint64_t marker) const {
    for (uint64_t v : output) {
      if (v == marker) {
        return true;
      }
    }
    return false;
  }
};

// Executes module's main() under the given options. The module must verify
// (ir::VerifyModule) and have had RenumberValues() run by the caller — the
// core::Compiler facade takes care of both.
RunResult Execute(const ir::Module& module, const RunOptions& options);

// The (deterministic) addresses the loader will assign. Attack drivers use
// this the way real exploits use known binary layouts: to embed target
// addresses in their payloads. Addresses are flat vectors indexed by the
// function/global ordinal, so the VM's per-instruction lookups are plain
// array reads rather than map searches.
struct ProgramLayout {
  std::vector<uint64_t> code;     // by ir::Function::ordinal()
  std::vector<uint64_t> globals;  // by ir::GlobalVariable::ordinal()

  uint64_t CodeAddress(const ir::Function* f) const {
    CPI_CHECK(f->ordinal() < code.size());
    return code[f->ordinal()];
  }
  uint64_t GlobalAddress(const ir::GlobalVariable* g) const {
    CPI_CHECK(g->ordinal() < globals.size());
    return globals[g->ordinal()];
  }
};

ProgramLayout ComputeProgramLayout(const ir::Module& module);

// Address of the first heap allocation (predictable, like a heap groom).
uint64_t FirstHeapAddress();

}  // namespace cpi::vm

#endif  // CPI_SRC_VM_MACHINE_H_
