#include "src/vm/memory.h"

#include <cstring>

#include "src/support/oom.h"

namespace cpi::vm {

void ByteMemory::MapRange(uint64_t start, uint64_t size, bool writable) {
  if (size == 0) {
    // An empty range maps nothing. Without this guard an unaligned `start`
    // rounded `last` past `first` and silently mapped a full page,
    // inflating mapped_bytes() — and with it the §5.2 memory tables.
    return;
  }
  InvalidateTranslationCache();
  const uint64_t first = start / kPageBytes;
  const uint64_t last = (start + size + kPageBytes - 1) / kPageBytes;
  for (uint64_t p = first; p < last; ++p) {
    Page& page = pages_[p];
    page.mapped = true;
    // Remap semantics: the most recent mapping wins, exactly like mprotect.
    // The old or-merge could never drop writability, so a page remapped
    // read-only (code/constant data) stayed silently writable.
    page.writable = writable;
  }
}

void ByteMemory::UnmapRange(uint64_t start, uint64_t size) {
  InvalidateTranslationCache();
  // Only whole pages strictly inside the range are unmapped; partial pages at
  // the edges stay (they may still back neighbouring objects).
  uint64_t first = (start + kPageBytes - 1) / kPageBytes;
  uint64_t last = (start + size) / kPageBytes;
  for (uint64_t p = first; p < last; ++p) {
    pages_.erase(p);
  }
}

ByteMemory::Page* ByteMemory::FindPageSlow(uint64_t id) {
  auto it = pages_.find(id);
  Page* page = (it == pages_.end() || !it->second.mapped) ? nullptr : &it->second;
  cached_id_ = id;
  cached_page_ = page;
  return page;
}

uint8_t* ByteMemory::MaterializePage(Page& page) {
  if (alloc_failure_countdown_ != kAllocFailureDisarmed) {
    if (alloc_failure_countdown_ == 0) {
      alloc_failure_countdown_ = kAllocFailureDisarmed;
      throw SimulatedOom("page materialisation failed");
    }
    --alloc_failure_countdown_;
  }
  page.bytes = std::make_unique<uint8_t[]>(kPageBytes);
  std::memset(page.bytes.get(), 0, kPageBytes);
  return page.bytes.get();
}

bool ByteMemory::IsMapped(uint64_t addr) const { return FindPage(addr) != nullptr; }

bool ByteMemory::IsWritable(uint64_t addr) const {
  const Page* p = FindPage(addr);
  return p != nullptr && p->writable;
}

MemFault ByteMemory::ReadSlow(uint64_t addr, void* out, uint64_t size) const {
  uint8_t* dst = static_cast<uint8_t*>(out);
  uint64_t done = 0;
  while (done < size) {
    const uint64_t a = addr + done;
    const Page* page = FindPage(a);
    if (page == nullptr) {
      return MemFault::kUnmapped;
    }
    const uint64_t in_page = a % kPageBytes;
    const uint64_t chunk = std::min(size - done, kPageBytes - in_page);
    if (page->bytes == nullptr) {
      std::memset(dst + done, 0, chunk);
    } else {
      std::memcpy(dst + done, page->bytes.get() + in_page, chunk);
    }
    done += chunk;
  }
  return MemFault::kNone;
}

MemFault ByteMemory::WriteSlow(uint64_t addr, const void* data, uint64_t size) {
  const uint8_t* src = static_cast<const uint8_t*>(data);
  // Validate the whole range first so partially-applied writes cannot occur.
  for (uint64_t a = addr / kPageBytes; a <= (addr + size - 1) / kPageBytes; ++a) {
    const Page* page = FindPage(a * kPageBytes);
    if (page == nullptr) {
      return MemFault::kUnmapped;
    }
    if (!page->writable) {
      return MemFault::kReadOnly;
    }
  }
  uint64_t done = 0;
  while (done < size) {
    const uint64_t a = addr + done;
    Page* page = FindPage(a);
    const uint64_t in_page = a % kPageBytes;
    const uint64_t chunk = std::min(size - done, kPageBytes - in_page);
    std::memcpy(PageBytes(*page) + in_page, src + done, chunk);
    done += chunk;
  }
  return MemFault::kNone;
}

void ByteMemory::LoaderWrite(uint64_t addr, const void* data, uint64_t size) {
  InvalidateTranslationCache();
  const uint8_t* src = static_cast<const uint8_t*>(data);
  uint64_t done = 0;
  while (done < size) {
    const uint64_t a = addr + done;
    Page& page = pages_[a / kPageBytes];
    page.mapped = true;
    const uint64_t in_page = a % kPageBytes;
    const uint64_t chunk = std::min(size - done, kPageBytes - in_page);
    std::memcpy(PageBytes(page) + in_page, src + done, chunk);
    done += chunk;
  }
}

}  // namespace cpi::vm
