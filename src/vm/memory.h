// Sparse byte-addressable memory with page permissions.
//
// One instance backs the regular region (Mu), another the safe stacks (the
// byte-addressable part of Ms; the safe pointer store keeps its own storage).
// Loads/stores of unmapped addresses fault, exactly like touching an unmapped
// page on real hardware — this is what turns wild attacker guesses under
// information-hiding isolation into crashes (§3.2.3).
#ifndef CPI_SRC_VM_MEMORY_H_
#define CPI_SRC_VM_MEMORY_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>

namespace cpi::vm {

enum class MemFault {
  kNone = 0,
  kUnmapped,
  kReadOnly,
};

class ByteMemory {
 public:
  static constexpr uint64_t kPageBytes = 4096;

  // Makes [start, start+size) accessible. Pages materialise lazily,
  // zero-filled. A zero-size range maps nothing. Remapping is mprotect-like:
  // every page the (page-rounded) range touches takes the new writability,
  // the previous permission does not linger.
  void MapRange(uint64_t start, uint64_t size, bool writable);

  // Removes access (used when unsafe frames are popped so that dangling
  // stack references fault).
  void UnmapRange(uint64_t start, uint64_t size);

  bool IsMapped(uint64_t addr) const;
  bool IsWritable(uint64_t addr) const;

  // Single-page accesses (virtually all of them: the VM reads/writes 1-8
  // byte scalars) take the inline fast path; page-straddling accesses fall
  // back to the chunked loop in memory.cc.
  MemFault Read(uint64_t addr, void* out, uint64_t size) const {
    if ((addr & (kPageBytes - 1)) + size <= kPageBytes) {
      const Page* page = FindPage(addr);
      if (page == nullptr) {
        return MemFault::kUnmapped;
      }
      if (page->bytes == nullptr) {
        std::memset(out, 0, size);
      } else {
        std::memcpy(out, page->bytes.get() + (addr & (kPageBytes - 1)), size);
      }
      return MemFault::kNone;
    }
    return ReadSlow(addr, out, size);
  }
  MemFault Write(uint64_t addr, const void* data, uint64_t size) {
    if ((addr & (kPageBytes - 1)) + size <= kPageBytes) {
      Page* page = FindPage(addr);
      if (page == nullptr) {
        return MemFault::kUnmapped;
      }
      if (!page->writable) {
        return MemFault::kReadOnly;
      }
      std::memcpy(PageBytes(*page) + (addr & (kPageBytes - 1)), data, size);
      return MemFault::kNone;
    }
    return WriteSlow(addr, data, size);
  }

  MemFault ReadU64(uint64_t addr, uint64_t* out) const { return Read(addr, out, 8); }
  MemFault WriteU64(uint64_t addr, uint64_t value) { return Write(addr, &value, 8); }
  MemFault ReadByte(uint64_t addr, uint8_t* out) const { return Read(addr, out, 1); }
  MemFault WriteByte(uint64_t addr, uint8_t value) { return Write(addr, &value, 1); }

  // Raw write ignoring the read-only bit — used by the loader to place
  // constant data, never by program execution.
  void LoaderWrite(uint64_t addr, const void* data, uint64_t size);

  uint64_t mapped_bytes() const { return pages_.size() * kPageBytes; }

  // Fault injection (vm::FaultPlan, kOomPageAlloc): after `countdown` more
  // page materialisations succeed, the next one throws SimulatedOom. The VM
  // catches it and reports the run as crashed; the harness asserts the host
  // survives. One-shot: the failure disarms itself after firing.
  void ArmAllocFailure(uint64_t countdown) { alloc_failure_countdown_ = countdown; }

 private:
  struct Page {
    std::unique_ptr<uint8_t[]> bytes;
    bool writable = false;
    bool mapped = false;
  };

  Page* FindPage(uint64_t addr) {
    const uint64_t id = addr / kPageBytes;
    if (id == cached_id_) {
      return cached_page_;
    }
    return FindPageSlow(id);
  }
  const Page* FindPage(uint64_t addr) const {
    return const_cast<ByteMemory*>(this)->FindPage(addr);
  }
  Page* FindPageSlow(uint64_t id);
  uint8_t* PageBytes(Page& page) {
    if (page.bytes == nullptr) {
      return MaterializePage(page);
    }
    return page.bytes.get();
  }
  uint8_t* MaterializePage(Page& page);
  MemFault ReadSlow(uint64_t addr, void* out, uint64_t size) const;
  MemFault WriteSlow(uint64_t addr, const void* data, uint64_t size);
  void InvalidateTranslationCache() const {
    cached_id_ = ~0ULL;
    cached_page_ = nullptr;
  }

  std::unordered_map<uint64_t, Page> pages_;
  // Armed by ArmAllocFailure; kDisarmed means allocations always succeed.
  static constexpr uint64_t kAllocFailureDisarmed = ~0ULL;
  uint64_t alloc_failure_countdown_ = kAllocFailureDisarmed;
  // One-entry translation cache: program accesses hit the same page in
  // bursts, so most lookups skip the hash table. Pointers into pages_ are
  // stable across inserts (node-based container); the cache is invalidated
  // on every map/unmap. Purely a host-side speedup — no simulated cost
  // depends on it.
  mutable uint64_t cached_id_ = ~0ULL;
  mutable Page* cached_page_ = nullptr;
};

}  // namespace cpi::vm

#endif  // CPI_SRC_VM_MEMORY_H_
