// Sparse byte-addressable memory with page permissions.
//
// One instance backs the regular region (Mu), another the safe stacks (the
// byte-addressable part of Ms; the safe pointer store keeps its own storage).
// Loads/stores of unmapped addresses fault, exactly like touching an unmapped
// page on real hardware — this is what turns wild attacker guesses under
// information-hiding isolation into crashes (§3.2.3).
#ifndef CPI_SRC_VM_MEMORY_H_
#define CPI_SRC_VM_MEMORY_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

namespace cpi::vm {

enum class MemFault {
  kNone = 0,
  kUnmapped,
  kReadOnly,
};

class ByteMemory {
 public:
  static constexpr uint64_t kPageBytes = 4096;

  // Makes [start, start+size) accessible. Pages materialise lazily,
  // zero-filled.
  void MapRange(uint64_t start, uint64_t size, bool writable);

  // Removes access (used when unsafe frames are popped so that dangling
  // stack references fault).
  void UnmapRange(uint64_t start, uint64_t size);

  bool IsMapped(uint64_t addr) const;
  bool IsWritable(uint64_t addr) const;

  MemFault Read(uint64_t addr, void* out, uint64_t size) const;
  MemFault Write(uint64_t addr, const void* data, uint64_t size);

  MemFault ReadU64(uint64_t addr, uint64_t* out) const;
  MemFault WriteU64(uint64_t addr, uint64_t value);
  MemFault ReadByte(uint64_t addr, uint8_t* out) const;
  MemFault WriteByte(uint64_t addr, uint8_t value);

  // Raw write ignoring the read-only bit — used by the loader to place
  // constant data, never by program execution.
  void LoaderWrite(uint64_t addr, const void* data, uint64_t size);

  uint64_t mapped_bytes() const { return pages_.size() * kPageBytes; }

 private:
  struct Page {
    std::unique_ptr<uint8_t[]> bytes;
    bool writable = false;
    bool mapped = false;
  };

  Page* FindPage(uint64_t addr);
  const Page* FindPage(uint64_t addr) const;
  uint8_t* PageBytes(Page& page);

  std::unordered_map<uint64_t, Page> pages_;
};

}  // namespace cpi::vm

#endif  // CPI_SRC_VM_MEMORY_H_
