#include "src/workloads/common.h"

namespace cpi::workloads {

LoopBlocks BeginLoop(ir::IRBuilder& b, ir::Function* f, ir::Value* slot, ir::Value* start,
                     ir::Value* limit, const std::string& tag) {
  LoopBlocks loop;
  loop.slot = slot;
  loop.header = f->CreateBlock(tag + ".header");
  loop.body = f->CreateBlock(tag + ".body");
  loop.exit = f->CreateBlock(tag + ".exit");

  b.Store(start, slot);
  b.Br(loop.header);

  b.SetInsertPoint(loop.header);
  ir::Value* i = b.Load(slot, tag + ".i");
  b.CondBr(b.ICmpSLt(i, limit), loop.body, loop.exit);

  b.SetInsertPoint(loop.body);
  loop.index = b.Load(slot, tag + ".idx");
  return loop;
}

void EndLoop(ir::IRBuilder& b, const LoopBlocks& loop, uint64_t step) {
  ir::Value* i = b.Load(loop.slot);
  b.Store(b.Add(i, b.I64(step)), loop.slot);
  b.Br(loop.header);
  b.SetInsertPoint(loop.exit);
}

ir::GlobalVariable* MakeChecksumGlobal(ir::Module& m) {
  return m.CreateGlobal("checksum", m.types().I64());
}

void AccumulateChecksum(ir::IRBuilder& b, ir::GlobalVariable* checksum, ir::Value* value) {
  ir::Value* addr = b.GlobalAddr(checksum);
  ir::Value* old = b.Load(addr);
  b.Store(b.Add(b.Mul(old, b.I64(31)), value), addr);
}

void EmitChecksumAndRet(ir::IRBuilder& b, ir::GlobalVariable* checksum) {
  ir::Value* addr = b.GlobalAddr(checksum);
  b.Output(b.Load(addr));
  b.Ret(b.I64(0));
}

}  // namespace cpi::workloads
