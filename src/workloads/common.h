// Shared IR-emission helpers for workload generators.
#ifndef CPI_SRC_WORKLOADS_COMMON_H_
#define CPI_SRC_WORKLOADS_COMMON_H_

#include <string>

#include "src/ir/builder.h"

namespace cpi::workloads {

// Emits a canonical counted loop:
//
//   store start -> slot
//   br header
// header:
//   i = load slot ; condbr (i < limit), body, exit
// body:
//   ...            <- builder insert point after BeginLoop
//   (EndLoop: store i+step -> slot ; br header; insert point moves to exit)
//
// `slot` must be an i64 alloca created in the entry block (so nested loops
// do not grow the stack frame per iteration).
struct LoopBlocks {
  ir::BasicBlock* header = nullptr;
  ir::BasicBlock* body = nullptr;
  ir::BasicBlock* exit = nullptr;
  ir::Value* slot = nullptr;
  ir::Value* index = nullptr;  // valid inside the body
};

LoopBlocks BeginLoop(ir::IRBuilder& b, ir::Function* f, ir::Value* slot, ir::Value* start,
                     ir::Value* limit, const std::string& tag);
void EndLoop(ir::IRBuilder& b, const LoopBlocks& loop, uint64_t step = 1);

// Defines a global i64 `checksum` accumulator and returns it; workloads fold
// results into it and output it at the end so that differential tests can
// compare behaviour across protection levels.
ir::GlobalVariable* MakeChecksumGlobal(ir::Module& m);

// checksum = checksum * 31 + value
void AccumulateChecksum(ir::IRBuilder& b, ir::GlobalVariable* checksum, ir::Value* value);

// output(load checksum); ret 0   -- standard workload epilogue.
void EmitChecksumAndRet(ir::IRBuilder& b, ir::GlobalVariable* checksum);

}  // namespace cpi::workloads

#endif  // CPI_SRC_WORKLOADS_COMMON_H_
