// Concurrent workloads: the Table 4 web-server scenarios re-run as
// multi-worker servers on the VM's simulated thread scheduler, plus a
// producer/consumer pointer-chasing pair.
//
// Every workload here is race-free by construction: workers operate on
// disjoint request shards / locals slices / private heap allocations, share
// only read-only tables (routes, opcode tables, the static page) and the
// safe pointer store, and report partial checksums through join. That is
// what makes the tables deterministic not just across --jobs and engines but
// across *scheduler quanta*: each thread's instruction stream is independent
// of how the round-robin interleaves it (tests/sched_test.cc sweeps the
// quantum and asserts bit-identical counters).
#include "src/workloads/common.h"
#include "src/workloads/workloads.h"

namespace cpi::workloads {
namespace {

using ir::Function;
using ir::GlobalVariable;
using ir::IRBuilder;
using ir::Module;
using ir::StructType;
using ir::Value;

constexpr uint64_t kWorkers = 4;

// Folds the workers' partial checksums into the checksum global, in spawn
// order, and emits the standard epilogue.
void JoinWorkersAndFinish(IRBuilder& b, GlobalVariable* checksum,
                          const std::vector<Value*>& tids) {
  for (Value* tid : tids) {
    AccumulateChecksum(b, checksum, b.Join(tid));
  }
  EmitChecksumAndRet(b, checksum);
}

// --- mt static page ----------------------------------------------------------
// The Table 4 static-page scenario sharded across kWorkers threads: each
// worker strlen+memcpys the shared constant page into its own response
// buffer and yields between requests (a worker waiting for the next
// connection).
std::unique_ptr<Module> BuildMtStaticPage(int scale) {
  auto m = std::make_unique<Module>("server.mt-static");
  auto& t = m->types();
  IRBuilder b(m.get());
  GlobalVariable* checksum = MakeChecksumGlobal(*m);

  const uint64_t page_size = 2048;
  GlobalVariable* page =
      m->CreateGlobal("page", t.ArrayOf(t.CharTy(), page_size), /*is_const=*/true);
  {
    std::vector<uint8_t> content(page_size);
    for (uint64_t i = 0; i < page_size - 1; ++i) {
      content[i] = static_cast<uint8_t>('a' + (i * 17) % 25);
    }
    content[page_size - 1] = 0;
    page->set_initializer(std::move(content));
  }

  Function* worker = m->CreateFunction("worker", t.FunctionTy(t.I64(), {t.I64()}));
  {
    b.SetInsertPoint(worker->CreateBlock("entry"));
    Value* shard = worker->arg(0);
    Value* r_slot = b.Alloca(t.I64(), "req");
    Value* acc_slot = b.Alloca(t.I64(), "acc");
    b.Store(shard, acc_slot);
    Value* resp = b.Malloc(b.I64(page_size + 128), t.PointerTo(t.CharTy()), "resp");

    LoopBlocks reqs = BeginLoop(b, worker, r_slot, b.I64(0), b.I64(100 * scale), "req");
    Value* page0 = b.IndexAddr(b.GlobalAddr(page), b.I64(0));
    Value* len = b.LibCall(ir::LibFunc::kStrlen, {page0});
    b.LibCall(ir::LibFunc::kMemcpy, {resp, page0, b.Add(len, b.I64(1))});
    b.Store(b.Add(b.Mul(b.Load(acc_slot), b.I64(31)), len), acc_slot);
    b.Yield();
    EndLoop(b, reqs);

    b.Free(resp);
    b.Ret(b.Load(acc_slot));
  }

  Function* main = m->CreateFunction("main", t.FunctionTy(t.I64(), {}));
  b.SetInsertPoint(main->CreateBlock("entry"));
  std::vector<Value*> tids;
  for (uint64_t w = 0; w < kWorkers; ++w) {
    tids.push_back(b.Spawn(worker, {b.I64(w)}, "w" + std::to_string(w)));
  }
  JoinWorkersAndFinish(b, checksum, tids);
  return m;
}

// --- mt wsgi page ------------------------------------------------------------
// Route dispatch through a shared handler table (function pointers — the
// loads every worker performs go through the shared safe pointer store under
// CPI/CPS) with one private response buffer per worker.
std::unique_ptr<Module> BuildMtWsgiPage(int scale) {
  auto m = std::make_unique<Module>("server.mt-wsgi");
  auto& t = m->types();
  IRBuilder b(m.get());
  GlobalVariable* checksum = MakeChecksumGlobal(*m);

  const ir::FunctionType* handler_ty =
      t.FunctionTy(t.I64(), {t.PointerTo(t.CharTy()), t.I64()});
  StructType* route = t.GetOrCreateStruct("route");
  route->SetBody({{"name", t.ArrayOf(t.CharTy(), 16), 0},
                  {"handler", t.PointerTo(handler_ty), 0}});
  const uint64_t n_routes = 8;
  GlobalVariable* routes = m->CreateGlobal("routes", t.ArrayOf(route, n_routes));

  std::vector<Function*> handlers;
  for (int k = 0; k < 4; ++k) {
    Function* h = m->CreateFunction("handler_" + std::to_string(k), handler_ty);
    b.SetInsertPoint(h->CreateBlock("entry"));
    Value* buf = h->arg(0);
    Value* req = h->arg(1);
    Value* i_slot = b.Alloca(t.I64(), "i");
    LoopBlocks body = BeginLoop(b, h, i_slot, b.I64(0), b.I64(64), "fmt");
    Value* c = b.Binary(ir::BinOp::kAnd,
                        b.Add(b.Mul(body.index, b.I64(k + 3)), req), b.I64(63));
    b.Store(b.Cast(ir::CastKind::kTrunc, b.Add(c, b.I64('0')), t.CharTy()),
            b.IndexAddr(buf, body.index));
    EndLoop(b, body);
    b.Store(b.Char(0), b.IndexAddr(buf, b.I64(64)));
    b.Ret(b.LibCall(ir::LibFunc::kStrlen, {buf}));
    handlers.push_back(h);
  }

  // worker(shard): each request picks its route from the shared table and
  // runs the handler against the worker's own buffer.
  Function* worker = m->CreateFunction("worker", t.FunctionTy(t.I64(), {t.I64()}));
  {
    b.SetInsertPoint(worker->CreateBlock("entry"));
    Value* shard = worker->arg(0);
    Value* r_slot = b.Alloca(t.I64(), "req");
    Value* acc_slot = b.Alloca(t.I64(), "acc");
    b.Store(b.I64(0), acc_slot);
    Value* resp = b.Malloc(b.I64(256), t.PointerTo(t.CharTy()), "resp");

    LoopBlocks reqs = BeginLoop(b, worker, r_slot, b.I64(0), b.I64(75 * scale), "req");
    Value* global_req = b.Add(b.Mul(reqs.index, b.I64(kWorkers)), shard);
    Value* idx = b.Binary(ir::BinOp::kURem, global_req, b.I64(n_routes));
    Value* entry = b.IndexAddr(b.GlobalAddr(routes), idx);
    Value* handler = b.Load(b.FieldAddr(entry, "handler"));
    Value* len = b.IndirectCall(handler, {resp, global_req});
    b.Store(b.Add(b.Mul(b.Load(acc_slot), b.I64(31)), len), acc_slot);
    b.Yield();
    EndLoop(b, reqs);

    b.Free(resp);
    b.Ret(b.Load(acc_slot));
  }

  Function* main = m->CreateFunction("main", t.FunctionTy(t.I64(), {}));
  b.SetInsertPoint(main->CreateBlock("entry"));
  Value* i_slot = b.Alloca(t.I64(), "i");

  // Register routes before any worker exists; the table is read-only from
  // then on.
  LoopBlocks reg = BeginLoop(b, main, i_slot, b.I64(0), b.I64(n_routes), "reg");
  Value* entry = b.IndexAddr(b.GlobalAddr(routes), reg.index);
  Value* which = b.Binary(ir::BinOp::kAnd, reg.index, b.I64(3));
  Value* h01 = b.Select(b.ICmpEq(which, b.I64(0)), b.FuncAddr(handlers[0]),
                        b.FuncAddr(handlers[1]));
  Value* h23 = b.Select(b.ICmpEq(which, b.I64(2)), b.FuncAddr(handlers[2]),
                        b.FuncAddr(handlers[3]));
  Value* h = b.Select(b.ICmpSLt(which, b.I64(2)), h01, h23);
  b.Store(h, b.FieldAddr(entry, "handler"));
  EndLoop(b, reg);

  std::vector<Value*> tids;
  for (uint64_t w = 0; w < kWorkers; ++w) {
    tids.push_back(b.Spawn(worker, {b.I64(w)}, "w" + std::to_string(w)));
  }
  JoinWorkersAndFinish(b, checksum, tids);
  return m;
}

// --- mt dynamic page ---------------------------------------------------------
// The boxed-value interpreter of the dynamic-page scenario with one locals
// slice per worker: universal void* payloads in every hot loop (CPI's worst
// case, §5.3), now mutated by four threads against the shared safe store.
std::unique_ptr<Module> BuildMtDynamicPage(int scale) {
  auto m = std::make_unique<Module>("server.mt-dynamic");
  auto& t = m->types();
  IRBuilder b(m.get());
  GlobalVariable* checksum = MakeChecksumGlobal(*m);

  StructType* box = t.GetOrCreateStruct("pyobj");
  box->SetBody({{"tag", t.I64(), 0}, {"payload", t.VoidPtrTy(), 0}});

  const uint64_t slice = 32;  // boxed locals per worker
  const uint64_t n_slots = kWorkers * slice;
  const ir::FunctionType* op_ty = t.FunctionTy(t.VoidTy(), {t.I64(), t.I64()});
  GlobalVariable* optable = m->CreateGlobal("optable", t.ArrayOf(t.PointerTo(op_ty), 16));
  GlobalVariable* locals = m->CreateGlobal("locals", t.ArrayOf(t.PointerTo(box), n_slots));

  Function* box_new =
      m->CreateFunction("box_new", t.FunctionTy(t.PointerTo(box), {t.I64(), t.I64()}));
  {
    b.SetInsertPoint(box_new->CreateBlock("entry"));
    Value* obj = b.Malloc(b.I64(box->SizeInBytes()), t.PointerTo(box));
    Value* cell = b.Malloc(b.I64(8), t.PointerTo(t.I64()));
    b.Store(box_new->arg(1), cell);
    b.Store(box_new->arg(0), b.FieldAddr(obj, "tag"));
    b.Store(b.Bitcast(cell, t.VoidPtrTy()), b.FieldAddr(obj, "payload"));
    b.Ret(obj);
  }

  Function* box_val = m->CreateFunction("box_val", t.FunctionTy(t.I64(), {t.I64()}));
  {
    b.SetInsertPoint(box_val->CreateBlock("entry"));
    Value* obj = b.Load(b.IndexAddr(b.GlobalAddr(locals), box_val->arg(0)));
    Value* payload = b.Load(b.FieldAddr(obj, "payload"));
    Value* cell = b.Bitcast(payload, t.PointerTo(t.I64()));
    b.Ret(b.Load(cell));
  }

  // Opcode handlers take (base, pc): `base` is the worker's first locals
  // slot, so every box access stays inside the worker's own slice.
  std::vector<Function*> ops;
  for (int k = 0; k < 4; ++k) {
    Function* op = m->CreateFunction("pyop_" + std::to_string(k), op_ty);
    b.SetInsertPoint(op->CreateBlock("entry"));
    Value* base = op->arg(0);
    Value* pc = op->arg(1);
    Value* s0 = b.Add(base, b.Binary(ir::BinOp::kAnd, pc, b.I64(slice - 1)));
    Value* s1 = b.Add(base, b.Binary(ir::BinOp::kAnd, b.Add(pc, b.I64(1)),
                                     b.I64(slice - 1)));
    Value* a = b.Call(box_val, {s0});
    Value* c = b.Call(box_val, {s1});
    Value* r;
    switch (k) {
      case 0: r = b.Add(a, c); break;
      case 1: r = b.Mul(a, b.I64(3)); break;
      case 2: r = b.Xor(a, c); break;
      default: r = b.Sub(c, a); break;
    }
    Value* slot0 = b.IndexAddr(b.GlobalAddr(locals), s0);
    Value* slot1 = b.IndexAddr(b.GlobalAddr(locals), s1);
    Value* dst = b.Load(slot0);
    b.Store(b.I64(k), b.FieldAddr(dst, "tag"));
    Value* payload = b.Load(b.FieldAddr(dst, "payload"));
    b.Store(r, b.Bitcast(payload, t.PointerTo(t.I64())));
    b.Store(payload, b.FieldAddr(dst, "payload"));
    Value* other = b.Load(slot1);
    b.Store(other, slot0);
    b.Store(dst, slot1);
    b.Ret();
    ops.push_back(op);
  }

  // worker(shard): populate the shard's locals slice with its own boxes
  // (per-thread heap arenas keep the addresses schedule-independent), then
  // run the request loop against it.
  Function* worker = m->CreateFunction("worker", t.FunctionTy(t.I64(), {t.I64()}));
  {
    b.SetInsertPoint(worker->CreateBlock("entry"));
    Value* shard = worker->arg(0);
    Value* i_slot = b.Alloca(t.I64(), "i");
    Value* r_slot = b.Alloca(t.I64(), "req");
    Value* pc_slot = b.Alloca(t.I64(), "pc");
    Value* base = b.Mul(shard, b.I64(slice));

    LoopBlocks init = BeginLoop(b, worker, i_slot, b.I64(0), b.I64(slice), "init");
    Value* boxed = b.Call(box_new, {b.I64(0), b.Mul(b.Add(init.index, shard), b.I64(7))});
    b.Store(boxed, b.IndexAddr(b.GlobalAddr(locals), b.Add(base, init.index)));
    EndLoop(b, init);

    LoopBlocks reqs = BeginLoop(b, worker, r_slot, b.I64(0), b.I64(30 * scale), "req");
    LoopBlocks prog = BeginLoop(b, worker, pc_slot, b.I64(0), b.I64(24), "op");
    Value* op_idx = b.Binary(ir::BinOp::kAnd, b.Mul(prog.index, b.I64(5)), b.I64(15));
    Value* op_fn = b.Load(b.IndexAddr(b.GlobalAddr(optable), op_idx));
    b.IndirectCall(op_fn, {base, b.Add(prog.index, reqs.index)});
    EndLoop(b, prog);
    EndLoop(b, reqs);

    b.Ret(b.Call(box_val, {base}));
  }

  Function* main = m->CreateFunction("main", t.FunctionTy(t.I64(), {}));
  b.SetInsertPoint(main->CreateBlock("entry"));
  Value* i_slot = b.Alloca(t.I64(), "i");
  LoopBlocks opinit = BeginLoop(b, main, i_slot, b.I64(0), b.I64(4), "opinit");
  for (int k = 0; k < 4; ++k) {
    Value* idx = b.Add(b.Mul(opinit.index, b.I64(4)), b.I64(k));
    b.Store(b.FuncAddr(ops[k]), b.IndexAddr(b.GlobalAddr(optable), idx));
  }
  EndLoop(b, opinit);

  std::vector<Value*> tids;
  for (uint64_t w = 0; w < kWorkers; ++w) {
    tids.push_back(b.Spawn(worker, {b.I64(w)}, "w" + std::to_string(w)));
  }
  JoinWorkersAndFinish(b, checksum, tids);
  return m;
}

// --- producer / consumer -----------------------------------------------------
// Cross-thread pointer flow: the producer thread builds a linked chain of
// heap nodes and hands the head pointer to the consumer thread (through the
// spawn-args / join-result channel), which chases the chain, folds the
// payloads and frees every node — cross-thread frees of blocks another
// thread's arena allocated.
std::unique_ptr<Module> BuildProducerConsumer(int scale) {
  auto m = std::make_unique<Module>("server.mt-prodcons");
  auto& t = m->types();
  IRBuilder b(m.get());
  GlobalVariable* checksum = MakeChecksumGlobal(*m);

  StructType* node = t.GetOrCreateStruct("chain_node");
  node->SetBody({{"next", t.VoidPtrTy(), 0}, {"val", t.I64(), 0}});

  // producer(n) -> head address: builds the chain front-to-back.
  Function* producer = m->CreateFunction("producer", t.FunctionTy(t.I64(), {t.I64()}));
  {
    b.SetInsertPoint(producer->CreateBlock("entry"));
    Value* n = producer->arg(0);
    Value* i_slot = b.Alloca(t.I64(), "i");
    Value* head_slot = b.Alloca(t.VoidPtrTy(), "head");
    b.Store(b.Null(t.VoidPtrTy()), head_slot);

    LoopBlocks build = BeginLoop(b, producer, i_slot, b.I64(0), n, "build");
    Value* fresh = b.Malloc(b.I64(node->SizeInBytes()), t.PointerTo(node));
    b.Store(b.Load(head_slot), b.FieldAddr(fresh, "next"));
    b.Store(b.Mul(build.index, b.I64(17)), b.FieldAddr(fresh, "val"));
    b.Store(b.Bitcast(fresh, t.VoidPtrTy()), head_slot);
    b.Yield();
    EndLoop(b, build);

    b.Ret(b.PtrToInt(b.Load(head_slot)));
  }

  // consumer(head) -> folded sum: chases and frees the chain.
  Function* consumer = m->CreateFunction("consumer", t.FunctionTy(t.I64(), {t.I64()}));
  {
    b.SetInsertPoint(consumer->CreateBlock("entry"));
    Value* cur_slot = b.Alloca(t.VoidPtrTy(), "cur");
    Value* acc_slot = b.Alloca(t.I64(), "acc");
    b.Store(b.IntToPtr(consumer->arg(0), t.VoidPtrTy()), cur_slot);
    b.Store(b.I64(0), acc_slot);

    ir::BasicBlock* header = consumer->CreateBlock("chase.header");
    ir::BasicBlock* body = consumer->CreateBlock("chase.body");
    ir::BasicBlock* exit = consumer->CreateBlock("chase.exit");
    b.Br(header);
    b.SetInsertPoint(header);
    Value* raw = b.Load(cur_slot);
    b.CondBr(b.ICmpNe(b.PtrToInt(raw), b.I64(0)), body, exit);
    b.SetInsertPoint(body);
    Value* cur = b.Bitcast(b.Load(cur_slot), t.PointerTo(node));
    Value* val = b.Load(b.FieldAddr(cur, "val"));
    b.Store(b.Add(b.Mul(b.Load(acc_slot), b.I64(31)), val), acc_slot);
    Value* next = b.Load(b.FieldAddr(cur, "next"));
    b.Store(next, cur_slot);
    b.Free(cur);
    b.Yield();
    b.Br(header);
    b.SetInsertPoint(exit);
    b.Ret(b.Load(acc_slot));
  }

  // Scale grows the chain, not the number of spawns: simulated thread ids
  // are never recycled, so a run spawns a bounded number of threads.
  Function* main = m->CreateFunction("main", t.FunctionTy(t.I64(), {}));
  b.SetInsertPoint(main->CreateBlock("entry"));
  Value* head = b.Join(b.Spawn(producer, {b.I64(400 * scale)}, "prod"));
  Value* sum = b.Join(b.Spawn(consumer, {head}, "cons"));
  AccumulateChecksum(b, checksum, sum);
  EmitChecksumAndRet(b, checksum);
  return m;
}

// --- epoll-style event loop --------------------------------------------------
// The mt-* scenarios scaled to "millions of users" shape: each worker owns a
// disjoint slab of keep-alive connections (SO_REUSEPORT-style sharding) in
// its *own heap arena* — conn objects carry a handler function pointer, so
// every dispatch is a safe-store access homed to the worker's shard. Each
// epoch processes a pseudo-random ready batch (what epoll_wait would
// return, computed by index arithmetic so the program stays branch-free and
// race-free), then churns a few connections (close + fresh accept), which
// re-reads the shared handler table — the main-thread-homed accesses that
// set the contention floor the shard ablation levels off at.
std::unique_ptr<Module> BuildEventLoop(int scale) {
  auto m = std::make_unique<Module>("server.mt-epoll");
  auto& t = m->types();
  IRBuilder b(m.get());
  GlobalVariable* checksum = MakeChecksumGlobal(*m);

  constexpr uint64_t kConns = 512;   // per worker: kWorkers*512 live connections
  constexpr uint64_t kBatch = 64;    // connections per epoll_wait batch
  constexpr uint64_t kChurn = 8;     // closes + fresh accepts per epoch
  const uint64_t epochs = 3 * static_cast<uint64_t>(scale);

  const ir::FunctionType* handler_ty =
      t.FunctionTy(t.I64(), {t.PointerTo(t.CharTy()), t.I64()});
  StructType* conn = t.GetOrCreateStruct("conn");
  conn->SetBody({{"handler", t.PointerTo(handler_ty), 0},
                 {"state", t.I64(), 0},
                 {"reqs", t.I64(), 0}});

  // The shared handler table (read-only after main's registration loop).
  const uint64_t n_handlers = 4;
  GlobalVariable* handlers =
      m->CreateGlobal("handlers", t.ArrayOf(t.PointerTo(handler_ty), n_handlers));

  std::vector<Function*> hfns;
  for (uint64_t k = 0; k < n_handlers; ++k) {
    Function* h = m->CreateFunction("ev_handler_" + std::to_string(k), handler_ty);
    b.SetInsertPoint(h->CreateBlock("entry"));
    Value* buf = h->arg(0);
    Value* req = h->arg(1);
    Value* i_slot = b.Alloca(t.I64(), "i");
    LoopBlocks body = BeginLoop(b, h, i_slot, b.I64(0), b.I64(16), "fmt");
    Value* c = b.Binary(ir::BinOp::kAnd,
                        b.Add(b.Mul(body.index, b.I64(2 * k + 3)), req), b.I64(63));
    b.Store(b.Cast(ir::CastKind::kTrunc, b.Add(c, b.I64('0')), t.CharTy()),
            b.IndexAddr(buf, body.index));
    EndLoop(b, body);
    b.Store(b.Char(0), b.IndexAddr(buf, b.I64(16)));
    b.Ret(b.LibCall(ir::LibFunc::kStrlen, {buf}));
    hfns.push_back(h);
  }

  // accept(conns, i, which, state): close any previous connection in slot i
  // and install a fresh one whose handler comes from the shared table.
  Function* accept_fn = m->CreateFunction(
      "ev_accept", t.FunctionTy(t.VoidTy(),
                                {t.PointerTo(t.PointerTo(conn)), t.I64(), t.I64(), t.I64()}));
  {
    b.SetInsertPoint(accept_fn->CreateBlock("entry"));
    Value* conns = accept_fn->arg(0);
    Value* idx = accept_fn->arg(1);
    Value* which = accept_fn->arg(2);
    Value* state = accept_fn->arg(3);
    Value* fresh = b.Malloc(b.I64(conn->SizeInBytes()), t.PointerTo(conn), "conn");
    Value* h = b.Load(b.IndexAddr(b.GlobalAddr(handlers),
                                  b.Binary(ir::BinOp::kAnd, which, b.I64(n_handlers - 1))));
    b.Store(h, b.FieldAddr(fresh, "handler"));
    b.Store(state, b.FieldAddr(fresh, "state"));
    b.Store(b.I64(0), b.FieldAddr(fresh, "reqs"));
    b.Store(fresh, b.IndexAddr(conns, idx));
    b.Ret();
  }

  // worker(shard): own connection slab, then the event loop.
  Function* worker = m->CreateFunction("worker", t.FunctionTy(t.I64(), {t.I64()}));
  {
    b.SetInsertPoint(worker->CreateBlock("entry"));
    Value* shard = worker->arg(0);
    Value* i_slot = b.Alloca(t.I64(), "i");
    Value* e_slot = b.Alloca(t.I64(), "epoch");
    Value* k_slot = b.Alloca(t.I64(), "k");
    Value* j_slot = b.Alloca(t.I64(), "j");
    Value* acc_slot = b.Alloca(t.I64(), "acc");
    b.Store(shard, acc_slot);
    Value* conns =
        b.Malloc(b.I64(kConns * 8), t.PointerTo(t.PointerTo(conn)), "conns");
    Value* resp = b.Malloc(b.I64(64), t.PointerTo(t.CharTy()), "resp");

    // Accept the initial keep-alive population.
    LoopBlocks init = BeginLoop(b, worker, i_slot, b.I64(0), b.I64(kConns), "init");
    b.Call(accept_fn, {conns, init.index, b.Add(init.index, shard),
                       b.Add(b.Mul(init.index, b.I64(7)), shard)});
    EndLoop(b, init);

    LoopBlocks ep = BeginLoop(b, worker, e_slot, b.I64(0), b.I64(epochs), "epoch");
    // Ready batch: the connections "epoll_wait" reported this epoch. The
    // stride is odd, so batch indices are distinct within an epoch.
    LoopBlocks batch = BeginLoop(b, worker, k_slot, b.I64(0), b.I64(kBatch), "batch");
    Value* ready = b.Binary(
        ir::BinOp::kAnd,
        b.Add(b.Mul(batch.index, b.I64(5)), b.Mul(ep.index, b.I64(3))),
        b.I64(kConns - 1));
    Value* cptr = b.Load(b.IndexAddr(conns, ready));
    Value* h = b.Load(b.FieldAddr(cptr, "handler"));
    Value* state = b.Load(b.FieldAddr(cptr, "state"));
    Value* len = b.IndirectCall(h, {resp, b.Add(state, ep.index)});
    b.Store(b.Add(b.Mul(state, b.I64(31)), len), b.FieldAddr(cptr, "state"));
    b.Store(b.Add(b.Load(b.FieldAddr(cptr, "reqs")), b.I64(1)),
            b.FieldAddr(cptr, "reqs"));
    b.Store(b.Add(b.Mul(b.Load(acc_slot), b.I64(31)), len), acc_slot);
    EndLoop(b, batch);

    // Keep-alive churn: a few connections close and fresh ones are accepted
    // in their slots (free + malloc in this worker's arena; handler re-read
    // from the shared table).
    LoopBlocks churn = BeginLoop(b, worker, j_slot, b.I64(0), b.I64(kChurn), "churn");
    Value* slot = b.Binary(
        ir::BinOp::kAnd,
        b.Add(b.Mul(churn.index, b.I64(11)), b.Mul(ep.index, b.I64(7))),
        b.I64(kConns - 1));
    b.Free(b.Load(b.IndexAddr(conns, slot)));
    b.Call(accept_fn, {conns, slot, b.Add(b.Add(slot, ep.index), shard),
                       b.Add(b.Mul(ep.index, b.I64(13)), slot)});
    EndLoop(b, churn);
    b.Yield();
    EndLoop(b, ep);

    // Drain: close every connection and fold the states.
    LoopBlocks drain = BeginLoop(b, worker, i_slot, b.I64(0), b.I64(kConns), "drain");
    Value* dptr = b.Load(b.IndexAddr(conns, drain.index));
    b.Store(b.Add(b.Mul(b.Load(acc_slot), b.I64(31)),
                  b.Load(b.FieldAddr(dptr, "state"))),
            acc_slot);
    b.Free(dptr);
    EndLoop(b, drain);
    b.Free(resp);
    b.Free(conns);
    b.Ret(b.Load(acc_slot));
  }

  Function* main = m->CreateFunction("main", t.FunctionTy(t.I64(), {}));
  b.SetInsertPoint(main->CreateBlock("entry"));
  Value* i_slot = b.Alloca(t.I64(), "i");

  // Register handlers before any worker exists; read-only from then on.
  LoopBlocks reg = BeginLoop(b, main, i_slot, b.I64(0), b.I64(n_handlers), "reg");
  Value* which = b.Binary(ir::BinOp::kAnd, reg.index, b.I64(3));
  Value* h01 = b.Select(b.ICmpEq(which, b.I64(0)), b.FuncAddr(hfns[0]),
                        b.FuncAddr(hfns[1]));
  Value* h23 = b.Select(b.ICmpEq(which, b.I64(2)), b.FuncAddr(hfns[2]),
                        b.FuncAddr(hfns[3]));
  Value* h = b.Select(b.ICmpSLt(which, b.I64(2)), h01, h23);
  b.Store(h, b.IndexAddr(b.GlobalAddr(handlers), reg.index));
  EndLoop(b, reg);

  std::vector<Value*> tids;
  for (uint64_t w = 0; w < kWorkers; ++w) {
    tids.push_back(b.Spawn(worker, {b.I64(w)}, "w" + std::to_string(w)));
  }
  JoinWorkersAndFinish(b, checksum, tids);
  return m;
}

// --- epoll-style event loop with worker churn ---------------------------------
// The "millions of users" shape driving the epoch-ownership model
// (Config::migrate): a fixed pool of worker *slots* whose threads retire and
// respawn across generations, serving thousands of keep-alive connections
// that outlive the thread that accepted them. Generation 0's workers accept
// the population into their own heap arenas and publish the cells through a
// shared connection table; each later generation's worker inherits its
// predecessor's home slots at the spawn/join boundary and keeps serving the
// same cells — accesses the static owner table charges as cross-thread
// forever, but that the epoch model re-homes after one migration. Requests
// flow through a bounded per-slot handoff queue with backpressure (overflow
// is counted and folded into the checksum, so dropping is observable
// behaviour), are served in batches, and a little keep-alive churn replaces
// cells with fresh ones from the serving thread's own arena. Main drains and
// closes everything at the end. Race-free by construction: generations are
// joined before their successors spawn, and concurrent workers touch
// disjoint table/queue regions.
std::unique_ptr<Module> BuildChurnServer(int scale) {
  auto m = std::make_unique<Module>("server.mt-epoll-churn");
  auto& t = m->types();
  IRBuilder b(m.get());
  GlobalVariable* checksum = MakeChecksumGlobal(*m);

  constexpr uint64_t kSlots = 3;       // worker-pool slots (concurrent threads)
  constexpr uint64_t kGens = 5;        // generations: kSlots*kGens spawns + main
                                       // == vm::kMaxThreads, tids never recycled
  constexpr uint64_t kConns = 384;     // per slot: 1152 keep-alive connections
  constexpr uint64_t kBatch = 48;      // requests produced per epoch
  constexpr uint64_t kQueueCap = 32;   // handoff-queue capacity (< kBatch:
                                       // every epoch exercises backpressure)
  constexpr uint64_t kChurn = 6;       // closes + fresh accepts per epoch
  const uint64_t epochs = 2 * static_cast<uint64_t>(scale);

  const ir::FunctionType* handler_ty =
      t.FunctionTy(t.I64(), {t.PointerTo(t.CharTy()), t.I64()});
  StructType* conn = t.GetOrCreateStruct("churn_conn");
  conn->SetBody({{"handler", t.PointerTo(handler_ty), 0},
                 {"state", t.I64(), 0},
                 {"reqs", t.I64(), 0}});

  const uint64_t n_handlers = 4;
  GlobalVariable* handlers = m->CreateGlobal(
      "churn_handlers", t.ArrayOf(t.PointerTo(handler_ty), n_handlers));
  // The shared connection-cell table: cells are allocated in worker arenas
  // but *published* here, so they survive their accepting thread.
  GlobalVariable* conn_table =
      m->CreateGlobal("conn_table", t.ArrayOf(t.PointerTo(conn), kSlots * kConns));
  // Per-slot bounded handoff queues (plain request tokens in regular
  // memory — the queue models the event-loop → worker-pool handoff, not
  // safe-region traffic).
  GlobalVariable* handoff =
      m->CreateGlobal("handoff", t.ArrayOf(t.I64(), kSlots * kQueueCap));

  std::vector<Function*> hfns;
  hfns.reserve(n_handlers);
  for (uint64_t k = 0; k < n_handlers; ++k) {
    Function* h = m->CreateFunction("churn_handler_" + std::to_string(k), handler_ty);
    b.SetInsertPoint(h->CreateBlock("entry"));
    Value* buf = h->arg(0);
    Value* req = h->arg(1);
    Value* i_slot = b.Alloca(t.I64(), "i");
    LoopBlocks body = BeginLoop(b, h, i_slot, b.I64(0), b.I64(16), "fmt");
    Value* c = b.Binary(ir::BinOp::kAnd,
                        b.Add(b.Mul(body.index, b.I64(2 * k + 5)), req), b.I64(63));
    b.Store(b.Cast(ir::CastKind::kTrunc, b.Add(c, b.I64('0')), t.CharTy()),
            b.IndexAddr(buf, body.index));
    EndLoop(b, body);
    b.Store(b.Char(0), b.IndexAddr(buf, b.I64(16)));
    b.Ret(b.LibCall(ir::LibFunc::kStrlen, {buf}));
    hfns.push_back(h);
  }

  // accept(idx, which, state): install a fresh connection (allocated in the
  // *calling* thread's arena, handler from the shared table) into the shared
  // cell table at idx.
  Function* accept_fn = m->CreateFunction(
      "churn_accept", t.FunctionTy(t.VoidTy(), {t.I64(), t.I64(), t.I64()}));
  {
    b.SetInsertPoint(accept_fn->CreateBlock("entry"));
    Value* idx = accept_fn->arg(0);
    Value* which = accept_fn->arg(1);
    Value* state = accept_fn->arg(2);
    Value* fresh = b.Malloc(b.I64(conn->SizeInBytes()), t.PointerTo(conn), "conn");
    Value* h = b.Load(b.IndexAddr(b.GlobalAddr(handlers),
                                  b.Binary(ir::BinOp::kAnd, which, b.I64(n_handlers - 1))));
    b.Store(h, b.FieldAddr(fresh, "handler"));
    b.Store(state, b.FieldAddr(fresh, "state"));
    b.Store(b.I64(0), b.FieldAddr(fresh, "reqs"));
    b.Store(fresh, b.IndexAddr(b.GlobalAddr(conn_table), idx));
    b.Ret();
  }

  // worker(slot, gen): generation 0 accepts the slot's population; every
  // generation serves it through the handoff queue, churns a few cells into
  // its own arena, and returns its partial checksum (including the drop
  // count — backpressure is part of the observable behaviour).
  Function* worker = m->CreateFunction("worker", t.FunctionTy(t.I64(), {t.I64(), t.I64()}));
  {
    b.SetInsertPoint(worker->CreateBlock("entry"));
    Value* slot = worker->arg(0);
    Value* gen = worker->arg(1);
    Value* i_slot = b.Alloca(t.I64(), "i");
    Value* e_slot = b.Alloca(t.I64(), "epoch");
    Value* q_slot = b.Alloca(t.I64(), "q");
    Value* d_slot = b.Alloca(t.I64(), "d");
    Value* c_slot = b.Alloca(t.I64(), "c");
    Value* acc_slot = b.Alloca(t.I64(), "acc");
    Value* drops_slot = b.Alloca(t.I64(), "drops");
    b.Store(b.Add(slot, b.Mul(gen, b.I64(kSlots))), acc_slot);
    b.Store(b.I64(0), drops_slot);
    Value* resp = b.Malloc(b.I64(64), t.PointerTo(t.CharTy()), "resp");
    Value* base = b.Mul(slot, b.I64(kConns));
    Value* qbase = b.Mul(slot, b.I64(kQueueCap));

    ir::BasicBlock* boot = worker->CreateBlock("boot");
    ir::BasicBlock* serve = worker->CreateBlock("serve");
    b.CondBr(b.ICmpEq(gen, b.I64(0)), boot, serve);

    // Generation 0 only: accept the slot's keep-alive population.
    b.SetInsertPoint(boot);
    LoopBlocks init = BeginLoop(b, worker, i_slot, b.I64(0), b.I64(kConns), "init");
    b.Call(accept_fn, {b.Add(base, init.index), b.Add(init.index, slot),
                       b.Add(b.Mul(init.index, b.I64(7)), slot)});
    EndLoop(b, init);
    b.Br(serve);

    b.SetInsertPoint(serve);
    LoopBlocks ep = BeginLoop(b, worker, e_slot, b.I64(0), b.I64(epochs), "epoch");

    // Produce a request batch into the bounded handoff queue. kBatch >
    // kQueueCap, so the tail of every batch hits backpressure: rejected
    // tokens overwrite the last queue word and are counted as drops.
    LoopBlocks prod = BeginLoop(b, worker, q_slot, b.I64(0), b.I64(kBatch), "prod");
    Value* token = b.Binary(
        ir::BinOp::kAnd,
        b.Add(b.Mul(prod.index, b.I64(5)),
              b.Add(b.Mul(ep.index, b.I64(3)), b.Mul(gen, b.I64(11)))),
        b.I64(kConns - 1));
    Value* fits = b.ICmpSLt(prod.index, b.I64(kQueueCap));
    Value* qidx = b.Select(fits, prod.index, b.I64(kQueueCap - 1));
    b.Store(token, b.IndexAddr(b.GlobalAddr(handoff), b.Add(qbase, qidx)));
    b.Store(b.Add(b.Load(drops_slot), b.Select(fits, b.I64(0), b.I64(1))),
            drops_slot);
    EndLoop(b, prod);

    // Drain the queue: every accepted token dispatches one connection. On
    // generations > 0 these cells live in a *predecessor's* arena — the
    // accesses the epoch model re-homes to this thread and the static model
    // keeps charging forever.
    LoopBlocks drain = BeginLoop(b, worker, d_slot, b.I64(0), b.I64(kQueueCap), "drain");
    Value* req = b.Load(b.IndexAddr(b.GlobalAddr(handoff), b.Add(qbase, drain.index)));
    Value* cptr = b.Load(b.IndexAddr(b.GlobalAddr(conn_table), b.Add(base, req)));
    Value* h = b.Load(b.FieldAddr(cptr, "handler"));
    Value* state = b.Load(b.FieldAddr(cptr, "state"));
    Value* len = b.IndirectCall(h, {resp, b.Add(state, drain.index)});
    b.Store(b.Add(b.Mul(state, b.I64(31)), len), b.FieldAddr(cptr, "state"));
    b.Store(b.Add(b.Load(b.FieldAddr(cptr, "reqs")), b.I64(1)),
            b.FieldAddr(cptr, "reqs"));
    b.Store(b.Add(b.Mul(b.Load(acc_slot), b.I64(31)), len), acc_slot);
    EndLoop(b, drain);

    // Keep-alive churn: close a few connections and accept replacements in
    // this thread's own arena — cells genuinely change homes across
    // generations.
    LoopBlocks churn = BeginLoop(b, worker, c_slot, b.I64(0), b.I64(kChurn), "churn");
    Value* victim = b.Binary(
        ir::BinOp::kAnd,
        b.Add(b.Mul(churn.index, b.I64(13)),
              b.Add(b.Mul(ep.index, b.I64(7)), b.Mul(gen, b.I64(3)))),
        b.I64(kConns - 1));
    Value* vidx = b.Add(base, victim);
    b.Free(b.Load(b.IndexAddr(b.GlobalAddr(conn_table), vidx)));
    b.Call(accept_fn, {vidx, b.Add(victim, b.Add(gen, ep.index)),
                       b.Add(b.Mul(ep.index, b.I64(13)), victim)});
    EndLoop(b, churn);
    b.Yield();
    EndLoop(b, ep);

    b.Free(resp);
    b.Ret(b.Add(b.Mul(b.Load(acc_slot), b.I64(31)), b.Load(drops_slot)));
  }

  // Main: register handlers, run the worker-slot pool through kGens
  // generations (join generation g before spawning g+1 — the spawn/join
  // boundary where home slots are inherited and epochs publish), then drain
  // the surviving population.
  Function* main = m->CreateFunction("main", t.FunctionTy(t.I64(), {}));
  b.SetInsertPoint(main->CreateBlock("entry"));
  Value* i_slot = b.Alloca(t.I64(), "i");

  LoopBlocks reg = BeginLoop(b, main, i_slot, b.I64(0), b.I64(n_handlers), "reg");
  Value* which = b.Binary(ir::BinOp::kAnd, reg.index, b.I64(3));
  Value* h01 = b.Select(b.ICmpEq(which, b.I64(0)), b.FuncAddr(hfns[0]),
                        b.FuncAddr(hfns[1]));
  Value* h23 = b.Select(b.ICmpEq(which, b.I64(2)), b.FuncAddr(hfns[2]),
                        b.FuncAddr(hfns[3]));
  Value* h = b.Select(b.ICmpSLt(which, b.I64(2)), h01, h23);
  b.Store(h, b.IndexAddr(b.GlobalAddr(handlers), reg.index));
  EndLoop(b, reg);

  for (uint64_t g = 0; g < kGens; ++g) {
    std::vector<Value*> tids;
    tids.reserve(kSlots);
    for (uint64_t w = 0; w < kSlots; ++w) {
      tids.push_back(b.Spawn(worker, {b.I64(w), b.I64(g)},
                             "g" + std::to_string(g) + "w" + std::to_string(w)));
    }
    for (Value* tid : tids) {
      AccumulateChecksum(b, checksum, b.Join(tid));
    }
  }

  LoopBlocks fin = BeginLoop(b, main, i_slot, b.I64(0), b.I64(kSlots * kConns), "fin");
  Value* cptr = b.Load(b.IndexAddr(b.GlobalAddr(conn_table), fin.index));
  AccumulateChecksum(b, checksum, b.Load(b.FieldAddr(cptr, "state")));
  b.Free(cptr);
  EndLoop(b, fin);

  EmitChecksumAndRet(b, checksum);
  return m;
}

}  // namespace

const std::vector<Workload>& EventLoop() {
  static const std::vector<Workload>* workloads = new std::vector<Workload>{
      {"mt-event-loop", "C", BuildEventLoop, {}},
  };
  return *workloads;
}

const std::vector<Workload>& ChurnServer() {
  static const std::vector<Workload>* workloads = new std::vector<Workload>{
      {"mt-epoll-churn", "C", BuildChurnServer, {}},
  };
  return *workloads;
}

const std::vector<Workload>& ConcurrentServer() {
  static const std::vector<Workload>* workloads = new std::vector<Workload>{
      {"mt-static-page", "C", BuildMtStaticPage, {}},
      {"mt-wsgi-page", "C", BuildMtWsgiPage, {}},
      {"mt-dynamic-page", "C", BuildMtDynamicPage, {}},
      {"mt-producer-consumer", "C", BuildProducerConsumer, {}},
  };
  return *workloads;
}

}  // namespace cpi::workloads
