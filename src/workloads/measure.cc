#include "src/workloads/measure.h"

#include <cstdio>

#include "src/ir/clone.h"
#include "src/support/check.h"
#include "src/support/pool.h"
#include "src/support/stats.h"

namespace cpi::workloads {

double Measurement::OverheadPct(core::Protection p) const {
  const auto it = overhead_pct.find(p);
  if (it == overhead_pct.end()) {
    const auto st = status.find(p);
    std::fprintf(stderr, "workload %s: no overhead for protection %s (status: %s)\n",
                 workload.c_str(), core::ProtectionName(p),
                 st == status.end() ? "not measured" : vm::RunStatusName(st->second));
    CPI_CHECK(it != overhead_pct.end());
  }
  return it->second;
}

std::vector<std::unique_ptr<ir::Module>> BuildWorkloads(
    const std::vector<Workload>& workloads, int scale, int jobs) {
  std::vector<std::unique_ptr<ir::Module>> built(workloads.size());
  ThreadPool pool(jobs);
  pool.ParallelFor(workloads.size(),
                   [&](size_t i) { built[i] = workloads[i].build(scale); });
  return built;
}

std::vector<const ir::Module*> ModuleViews(
    const std::vector<std::unique_ptr<ir::Module>>& built) {
  std::vector<const ir::Module*> views;
  views.reserve(built.size());
  for (const auto& m : built) {
    views.push_back(m.get());
  }
  return views;
}

CellResult RunCell(const ir::Module& built, const Workload& workload,
                   const MeasureCell& cell) {
  auto module = ir::CloneModule(built);
  core::Compiler compiler(cell.config);
  const core::CompileOutput co = compiler.Instrument(*module);
  const vm::RunResult r = core::Run(*module, cell.config, workload.input);
  CellResult out;
  out.status = r.status;
  out.cycles = r.counters.cycles;
  out.memory_bytes = r.memory.TotalBytes();
  out.safe_store_bytes = r.memory.safe_store_bytes;
  out.safe_store_ops = r.counters.safe_store_ops;
  out.store_contended_ops = r.counters.store_contended_ops;
  out.shard_migrations = r.counters.shard_migrations;
  out.stats = co.stats;
  return out;
}

std::vector<CellResult> RunCells(const std::vector<Workload>& workloads,
                                 const std::vector<const ir::Module*>& built,
                                 const std::vector<MeasureCell>& cells, int jobs) {
  CPI_CHECK(workloads.size() == built.size());
  std::vector<CellResult> results(cells.size());
  ThreadPool pool(jobs);
  pool.ParallelFor(cells.size(), [&](size_t i) {
    const MeasureCell& cell = cells[i];
    CPI_CHECK(cell.workload < built.size());
    results[i] = RunCell(*built[cell.workload], workloads[cell.workload], cell);
  });
  return results;
}

std::vector<Measurement> MeasureWorkloads(const std::vector<Workload>& workloads,
                                          const std::vector<const ir::Module*>& built,
                                          const std::vector<core::Protection>& protections,
                                          const core::Config& base, int jobs) {
  // Cell order: per workload, the vanilla baseline then each protection
  // column. The reduction below consumes results in exactly this order, so
  // the Measurement vector is independent of how the pool interleaved them.
  const size_t stride = 1 + protections.size();
  std::vector<MeasureCell> cells;
  cells.reserve(workloads.size() * stride);
  for (size_t wi = 0; wi < workloads.size(); ++wi) {
    MeasureCell vanilla;
    vanilla.workload = wi;
    vanilla.config = base;
    vanilla.config.protection = core::Protection::kNone;
    cells.push_back(vanilla);
    for (core::Protection p : protections) {
      MeasureCell cell;
      cell.workload = wi;
      cell.config = base;
      cell.config.protection = p;
      cells.push_back(cell);
    }
  }

  const std::vector<CellResult> results = RunCells(workloads, built, cells, jobs);

  std::vector<Measurement> out;
  out.reserve(workloads.size());
  for (size_t wi = 0; wi < workloads.size(); ++wi) {
    const CellResult& vanilla = results[wi * stride];
    CPI_CHECK(vanilla.status == vm::RunStatus::kOk);
    Measurement m;
    m.workload = workloads[wi].name;
    m.language = workloads[wi].language;
    m.stats = vanilla.stats;
    m.vanilla_cycles = vanilla.cycles;
    m.vanilla_memory_bytes = vanilla.memory_bytes;
    for (size_t pi = 0; pi < protections.size(); ++pi) {
      const core::Protection p = protections[pi];
      const CellResult& r = results[wi * stride + 1 + pi];
      m.status[p] = r.status;
      if (r.status != vm::RunStatus::kOk) {
        continue;
      }
      m.overhead_pct[p] = OverheadPercent(static_cast<double>(r.cycles),
                                          static_cast<double>(m.vanilla_cycles));
      m.memory_bytes[p] = r.memory_bytes;
    }
    out.push_back(std::move(m));
  }
  return out;
}

std::vector<Measurement> MeasureWorkloads(const std::vector<Workload>& workloads,
                                          const std::vector<core::Protection>& protections,
                                          int scale, const core::Config& base, int jobs) {
  const auto built = BuildWorkloads(workloads, scale, jobs);
  return MeasureWorkloads(workloads, ModuleViews(built), protections, base, jobs);
}

std::vector<double> OverheadColumn(const std::vector<Measurement>& measurements,
                                   core::Protection protection) {
  std::vector<double> column;
  for (const auto& m : measurements) {
    column.push_back(m.OverheadPct(protection));
  }
  return column;
}

std::vector<core::Protection> OverheadProtections() {
  std::vector<core::Protection> out;
  for (const core::ProtectionScheme* s : core::SchemeRegistry::OverheadColumns()) {
    out.push_back(s->id());
  }
  return out;
}

std::vector<double> OverheadColumnForLanguage(const std::vector<Measurement>& measurements,
                                              core::Protection protection,
                                              const std::string& language) {
  std::vector<double> column;
  for (const auto& m : measurements) {
    if (m.language == language) {
      column.push_back(m.OverheadPct(protection));
    }
  }
  return column;
}

}  // namespace cpi::workloads
