#include "src/workloads/measure.h"

#include "src/ir/clone.h"
#include "src/support/stats.h"

namespace cpi::workloads {

std::vector<Measurement> MeasureWorkloads(const std::vector<Workload>& workloads,
                                          const std::vector<core::Protection>& protections,
                                          int scale, const core::Config& base) {
  std::vector<Measurement> out;
  for (const auto& w : workloads) {
    Measurement m;
    m.workload = w.name;
    m.language = w.language;

    // One frontend build per workload; every protection column instruments
    // its own clone (instrumentation mutates the module in place).
    auto built = w.build(scale);

    {
      core::Config vanilla = base;
      vanilla.protection = core::Protection::kNone;
      auto module = ir::CloneModule(*built);
      core::Compiler compiler(vanilla);
      core::CompileOutput co = compiler.Instrument(*module);
      m.stats = co.stats;
      vm::RunResult r = core::Run(*module, vanilla, w.input);
      CPI_CHECK(r.status == vm::RunStatus::kOk);
      m.vanilla_cycles = r.counters.cycles;
      m.vanilla_memory_bytes = r.memory.TotalBytes();
    }

    for (core::Protection p : protections) {
      core::Config config = base;
      config.protection = p;
      auto module = ir::CloneModule(*built);
      vm::RunResult r = core::InstrumentAndRun(*module, config, w.input);
      CPI_CHECK(r.status == vm::RunStatus::kOk);
      m.overhead_pct[p] = OverheadPercent(static_cast<double>(r.counters.cycles),
                                          static_cast<double>(m.vanilla_cycles));
      m.memory_bytes[p] = r.memory.TotalBytes();
    }
    out.push_back(std::move(m));
  }
  return out;
}

std::vector<double> OverheadColumn(const std::vector<Measurement>& measurements,
                                   core::Protection protection) {
  std::vector<double> column;
  for (const auto& m : measurements) {
    column.push_back(m.overhead_pct.at(protection));
  }
  return column;
}

std::vector<core::Protection> OverheadProtections() {
  std::vector<core::Protection> out;
  for (const core::ProtectionScheme* s : core::SchemeRegistry::OverheadColumns()) {
    out.push_back(s->id());
  }
  return out;
}

std::vector<double> OverheadColumnForLanguage(const std::vector<Measurement>& measurements,
                                              core::Protection protection,
                                              const std::string& language) {
  std::vector<double> column;
  for (const auto& m : measurements) {
    if (m.language == language) {
      column.push_back(m.overhead_pct.at(protection));
    }
  }
  return column;
}

}  // namespace cpi::workloads
