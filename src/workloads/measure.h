// Measurement harness shared by the bench binaries: runs workloads under
// several protection configurations and reports relative overheads (in
// simulated cycles) plus the static compilation statistics of Table 2.
//
// The harness is organised around *cells*. A MeasureCell is one
// (workload × configuration) execution: clone the workload's pre-built
// module, instrument the clone under the cell's Config, run it. Cells are
// independent by construction (ir::CloneModule gives every cell its own
// module and VM), so RunCells executes them across a work-stealing thread
// pool (src/support/pool.h) and writes each result into its own slot — the
// reduction that follows consumes results in cell order, which makes every
// derived Measurement bit-identical at any `jobs` value. That invariant is
// enforced by the serial-vs-parallel differential test in
// tests/measure_test.cc.
#ifndef CPI_SRC_WORKLOADS_MEASURE_H_
#define CPI_SRC_WORKLOADS_MEASURE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/levee.h"
#include "src/core/scheme.h"
#include "src/workloads/workloads.h"

namespace cpi::workloads {

struct Measurement {
  std::string workload;
  std::string language;
  uint64_t vanilla_cycles = 0;
  // protection -> overhead percent vs the vanilla run. Entries exist only
  // for protections whose run completed (see `status`).
  std::map<core::Protection, double> overhead_pct;
  // protection -> total memory footprint in bytes (for §5.2 memory numbers).
  std::map<core::Protection, uint64_t> memory_bytes;
  // protection -> run status. SoftBound legitimately fails some workloads
  // (unsafe pointer idioms produce false violations, like the paper
  // reports); such columns are recorded here instead of aborting the sweep.
  std::map<core::Protection, vm::RunStatus> status;
  uint64_t vanilla_memory_bytes = 0;
  // Static statistics (FNUStack / MOCPS / MOCPI).
  analysis::ModuleStats stats;

  // Overhead for `p`, CPI_CHECKed to have been measured and completed — for
  // drivers whose columns must always succeed (Table 1 / Fig. 4 / Table 4).
  // Drivers that tolerate failing columns (Table 3 / Fig. 5) consult
  // `status` instead.
  double OverheadPct(core::Protection p) const;
};

// One (workload × configuration) execution unit of the measurement layer.
struct MeasureCell {
  size_t workload = 0;  // index into the parallel workload/built vectors
  core::Config config;  // full configuration this cell runs under
};

// Raw observations from one cell; the harnesses reduce these in cell order.
struct CellResult {
  vm::RunStatus status = vm::RunStatus::kOk;
  uint64_t cycles = 0;
  uint64_t memory_bytes = 0;      // total footprint (MemoryFootprint::TotalBytes)
  uint64_t safe_store_bytes = 0;  // resident safe pointer store
  uint64_t safe_store_ops = 0;    // safe-pointer-store operations executed
  // Store ops that paid the shard-crossing sync premium (the shard
  // ablation's contention metric; == safe_store_ops after the first spawn
  // at the default shard count of 1).
  uint64_t store_contended_ops = 0;
  // Shards whose owner changed at an epoch publish (Config::migrate; 0 with
  // migration off).
  uint64_t shard_migrations = 0;
  analysis::ModuleStats stats;    // static stats under the cell's config
};

// Frontend-builds every workload once, in parallel across `jobs` threads
// (jobs <= 0 selects hardware concurrency; 1 is strictly serial).
std::vector<std::unique_ptr<ir::Module>> BuildWorkloads(
    const std::vector<Workload>& workloads, int scale, int jobs = 1);

// Non-owning view of a BuildWorkloads result, as RunCells consumes it.
std::vector<const ir::Module*> ModuleViews(
    const std::vector<std::unique_ptr<ir::Module>>& built);

// Runs one cell against the workload's pre-built base module.
CellResult RunCell(const ir::Module& built, const Workload& workload,
                   const MeasureCell& cell);

// Executes `cells` across `jobs` threads. Results come back indexed like
// `cells`, regardless of the execution interleaving.
std::vector<CellResult> RunCells(const std::vector<Workload>& workloads,
                                 const std::vector<const ir::Module*>& built,
                                 const std::vector<MeasureCell>& cells, int jobs = 1);

// Runs every workload under vanilla plus each protection in `protections`,
// using `base` for all other configuration knobs, across `jobs` threads.
std::vector<Measurement> MeasureWorkloads(const std::vector<Workload>& workloads,
                                          const std::vector<core::Protection>& protections,
                                          int scale, const core::Config& base = {},
                                          int jobs = 1);

// Same, against pre-built base modules (the suite driver shares one
// BuildWorkloads result across every table).
std::vector<Measurement> MeasureWorkloads(const std::vector<Workload>& workloads,
                                          const std::vector<const ir::Module*>& built,
                                          const std::vector<core::Protection>& protections,
                                          const core::Config& base = {}, int jobs = 1);

// Column of overhead values for one protection, in workload order.
std::vector<double> OverheadColumn(const std::vector<Measurement>& measurements,
                                   core::Protection protection);

// Same, restricted to one language ("C" / "C++").
std::vector<double> OverheadColumnForLanguage(const std::vector<Measurement>& measurements,
                                              core::Protection protection,
                                              const std::string& language);

// The registry schemes that report an overhead column (Table 1 / Fig. 4 /
// Table 4 / §5.2 shape), as the protection list MeasureWorkloads consumes.
std::vector<core::Protection> OverheadProtections();

}  // namespace cpi::workloads

#endif  // CPI_SRC_WORKLOADS_MEASURE_H_
