// Measurement harness shared by the bench binaries: runs workloads under
// several protection configurations and reports relative overheads (in
// simulated cycles) plus the static compilation statistics of Table 2.
#ifndef CPI_SRC_WORKLOADS_MEASURE_H_
#define CPI_SRC_WORKLOADS_MEASURE_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/levee.h"
#include "src/core/scheme.h"
#include "src/workloads/workloads.h"

namespace cpi::workloads {

struct Measurement {
  std::string workload;
  std::string language;
  uint64_t vanilla_cycles = 0;
  // protection -> overhead percent vs the vanilla run.
  std::map<core::Protection, double> overhead_pct;
  // protection -> total memory footprint in bytes (for §5.2 memory numbers).
  std::map<core::Protection, uint64_t> memory_bytes;
  uint64_t vanilla_memory_bytes = 0;
  // Static statistics (FNUStack / MOCPS / MOCPI).
  analysis::ModuleStats stats;
};

// Runs every workload under vanilla plus each protection in `protections`,
// using `base` for all other configuration knobs.
std::vector<Measurement> MeasureWorkloads(const std::vector<Workload>& workloads,
                                          const std::vector<core::Protection>& protections,
                                          int scale, const core::Config& base = {});

// Column of overhead values for one protection, in workload order.
std::vector<double> OverheadColumn(const std::vector<Measurement>& measurements,
                                   core::Protection protection);

// Same, restricted to one language ("C" / "C++").
std::vector<double> OverheadColumnForLanguage(const std::vector<Measurement>& measurements,
                                              core::Protection protection,
                                              const std::string& language);

// The registry schemes that report an overhead column (Table 1 / Fig. 4 /
// Table 4 / §5.2 shape), as the protection list MeasureWorkloads consumes.
std::vector<core::Protection> OverheadProtections();

}  // namespace cpi::workloads

#endif  // CPI_SRC_WORKLOADS_MEASURE_H_
