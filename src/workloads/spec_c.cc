// The C-language SPEC CPU2006 workload models (12 of Table 2's 19 rows).
//
// Each generator reproduces the pointer-usage profile the paper attributes to
// that benchmark: perlbench's function-pointer opcode dispatch, gcc's structs
// with embedded handlers, mcf's pointer chasing with no code pointers, plain
// numeric kernels, etc.
#include "src/workloads/common.h"
#include "src/workloads/workloads.h"

namespace cpi::workloads {
namespace {

using ir::Function;
using ir::GlobalVariable;
using ir::IRBuilder;
using ir::Module;
using ir::StructType;
using ir::Value;

// --- 400.perlbench ----------------------------------------------------------
// Opcode dispatch through a table of function pointers, called one by one in
// the main loop (§3.3 discusses exactly this pattern: the reason perlbench is
// a CPS outlier).
std::unique_ptr<Module> BuildPerlbench(int scale) {
  auto m = std::make_unique<Module>("400.perlbench");
  auto& t = m->types();
  IRBuilder b(m.get());
  GlobalVariable* checksum = MakeChecksumGlobal(*m);

  GlobalVariable* vstack = m->CreateGlobal("vstack", t.ArrayOf(t.I64(), 64));
  GlobalVariable* vsp = m->CreateGlobal("vsp", t.I64());
  const ir::FunctionType* op_ty = t.FunctionTy(t.VoidTy(), {});
  const ir::PointerType* op_ptr_ty = t.PointerTo(op_ty);
  GlobalVariable* dispatch = m->CreateGlobal("dispatch", t.ArrayOf(op_ptr_ty, 256));

  // Eight opcode handlers operating on the value stack.
  std::vector<Function*> ops;
  for (int k = 0; k < 8; ++k) {
    Function* op = m->CreateFunction("op_" + std::to_string(k), op_ty);
    b.SetInsertPoint(op->CreateBlock("entry"));
    Value* sp_addr = b.GlobalAddr(vsp);
    Value* sp = b.Load(sp_addr);
    Value* idx = b.Binary(ir::BinOp::kAnd, sp, b.I64(63));
    Value* slot = b.IndexAddr(b.GlobalAddr(vstack), idx);
    Value* top = b.Load(slot);
    Value* result;
    switch (k) {
      case 0: result = b.Add(top, b.I64(17)); break;
      case 1: result = b.Sub(top, b.I64(5)); break;
      case 2: result = b.Mul(top, b.I64(3)); break;
      case 3: result = b.Xor(top, b.I64(0x5a5a)); break;
      case 4: result = b.Binary(ir::BinOp::kShl, top, b.I64(1)); break;
      case 5: result = b.Binary(ir::BinOp::kLShr, top, b.I64(1)); break;
      case 6: result = b.Binary(ir::BinOp::kOr, top, b.I64(0x101)); break;
      default: result = b.Add(b.Mul(top, b.I64(7)), b.I64(1)); break;
    }
    b.Store(result, slot);
    b.Store(b.Add(sp, b.I64(k % 3 == 0 ? 1 : 0)), sp_addr);
    b.Ret();
    ops.push_back(op);
  }

  Function* main = m->CreateFunction("main", t.FunctionTy(t.I64(), {}));
  b.SetInsertPoint(main->CreateBlock("entry"));
  Value* i_slot = b.Alloca(t.I64(), "i");
  Value* pc_slot = b.Alloca(t.I64(), "pc");
  b.Store(b.I64(12345), pc_slot);

  // Fill the dispatch table (the "compiled program").
  LoopBlocks fill = BeginLoop(b, main, i_slot, b.I64(0), b.I64(32), "fill");
  for (int k = 0; k < 8; ++k) {
    Value* idx = b.Add(b.Mul(fill.index, b.I64(8)), b.I64(k));
    b.Store(b.FuncAddr(ops[k]), b.IndexAddr(b.GlobalAddr(dispatch), idx));
  }
  EndLoop(b, fill);

  // Main execution loop: load a handler pointer, call it.
  LoopBlocks run = BeginLoop(b, main, i_slot, b.I64(0), b.I64(20000 * scale), "run");
  Value* pc = b.Load(pc_slot);
  Value* next_pc = b.Add(b.Mul(pc, b.I64(1103515245)), b.I64(12345));
  b.Store(next_pc, pc_slot);
  Value* op_idx = b.Binary(ir::BinOp::kAnd, b.Binary(ir::BinOp::kLShr, next_pc, b.I64(16)),
                           b.I64(255));
  Value* handler = b.Load(b.IndexAddr(b.GlobalAddr(dispatch), op_idx), "handler");
  b.IndirectCall(handler, {});
  EndLoop(b, run);

  AccumulateChecksum(b, checksum, b.Load(b.IndexAddr(b.GlobalAddr(vstack), b.I64(0))));
  AccumulateChecksum(b, checksum, b.Load(b.GlobalAddr(vsp)));
  EmitChecksumAndRet(b, checksum);
  return m;
}

// --- 401.bzip2 ---------------------------------------------------------------
// Byte-oriented compression loops over char buffers: frequency counting,
// run-length detection, block moves. Almost no sensitive pointers, but char
// arrays everywhere (cookies / unsafe frames).
std::unique_ptr<Module> BuildBzip2(int scale) {
  auto m = std::make_unique<Module>("401.bzip2");
  auto& t = m->types();
  IRBuilder b(m.get());
  GlobalVariable* checksum = MakeChecksumGlobal(*m);
  GlobalVariable* freq = m->CreateGlobal("freq", t.ArrayOf(t.I64(), 256));
  GlobalVariable* block = m->CreateGlobal("block", t.ArrayOf(t.CharTy(), 4096));

  Function* main = m->CreateFunction("main", t.FunctionTy(t.I64(), {}));
  b.SetInsertPoint(main->CreateBlock("entry"));
  Value* i_slot = b.Alloca(t.I64(), "i");
  Value* j_slot = b.Alloca(t.I64(), "j");
  Value* run_slot = b.Alloca(t.I64(), "run");

  // Seed the block deterministically.
  LoopBlocks seed = BeginLoop(b, main, i_slot, b.I64(0), b.I64(4096), "seed");
  Value* byte = b.Binary(ir::BinOp::kAnd,
                         b.Binary(ir::BinOp::kLShr, b.Mul(seed.index, b.I64(2654435761)),
                                  b.I64(24)),
                         b.I64(255));
  b.Store(b.Cast(ir::CastKind::kTrunc, byte, t.CharTy()),
          b.IndexAddr(b.GlobalAddr(block), seed.index));
  EndLoop(b, seed);

  LoopBlocks outer = BeginLoop(b, main, j_slot, b.I64(0), b.I64(20 * scale), "pass");
  // Frequency count + RLE length.
  b.Store(b.I64(0), run_slot);
  LoopBlocks scan = BeginLoop(b, main, i_slot, b.I64(0), b.I64(4095), "scan");
  Value* cur = b.Load(b.IndexAddr(b.GlobalAddr(block), scan.index));
  Value* cur64 = b.Cast(ir::CastKind::kZExt, cur, t.I64());
  Value* f_slot = b.IndexAddr(b.GlobalAddr(freq), cur64);
  b.Store(b.Add(b.Load(f_slot), b.I64(1)), f_slot);
  Value* nxt = b.Load(b.IndexAddr(b.GlobalAddr(block), b.Add(scan.index, b.I64(1))));
  Value* same = b.ICmpEq(cur64, b.Cast(ir::CastKind::kZExt, nxt, t.I64()));
  b.Store(b.Add(b.Load(run_slot), same), run_slot);
  EndLoop(b, scan);
  // Rotate the block by one (memmove-style shift).
  Value* block0 = b.IndexAddr(b.GlobalAddr(block), b.I64(0));
  Value* block1 = b.IndexAddr(b.GlobalAddr(block), b.I64(1));
  b.LibCall(ir::LibFunc::kMemmove, {block0, block1, b.I64(4095)});
  AccumulateChecksum(b, checksum, b.Load(run_slot));
  EndLoop(b, outer);

  AccumulateChecksum(b, checksum,
                     b.Load(b.IndexAddr(b.GlobalAddr(freq), b.I64(65))));
  EmitChecksumAndRet(b, checksum);
  return m;
}

// --- 403.gcc -----------------------------------------------------------------
// "gcc embeds function pointers in some of its data structures and then uses
// pointers to these structures frequently" (§5.2) — a heap-allocated insn
// chain whose nodes carry handler pointers.
std::unique_ptr<Module> BuildGcc(int scale) {
  auto m = std::make_unique<Module>("403.gcc");
  auto& t = m->types();
  IRBuilder b(m.get());
  GlobalVariable* checksum = MakeChecksumGlobal(*m);

  StructType* insn = t.GetOrCreateStruct("insn");
  const ir::FunctionType* handler_ty = t.FunctionTy(t.I64(), {t.PointerTo(insn)});
  insn->SetBody({{"op", t.I64(), 0},
                 {"next", t.PointerTo(insn), 0},
                 {"handler", t.PointerTo(handler_ty), 0}});

  std::vector<Function*> handlers;
  for (int k = 0; k < 4; ++k) {
    Function* h = m->CreateFunction("fold_" + std::to_string(k), handler_ty);
    b.SetInsertPoint(h->CreateBlock("entry"));
    Value* node = h->arg(0);
    Value* op = b.Load(b.FieldAddr(node, "op"));
    // Constant-folding-style integer work: real gcc does substantial
    // computation per insn between its pointer operations.
    Value* r = op;
    for (int step = 0; step < 56; ++step) {
      switch ((k + step) % 4) {
        case 0: r = b.Add(b.Mul(r, b.I64(33)), b.I64(step + 1)); break;
        case 1: r = b.Xor(r, b.Binary(ir::BinOp::kLShr, r, b.I64(7))); break;
        case 2: r = b.Sub(b.Binary(ir::BinOp::kShl, r, b.I64(1)), r); break;
        default: r = b.Binary(ir::BinOp::kOr, r, b.I64(0x11)); break;
      }
    }
    b.Store(r, b.FieldAddr(node, "op"));
    b.Ret(r);
    handlers.push_back(h);
  }

  Function* main = m->CreateFunction("main", t.FunctionTy(t.I64(), {}));
  b.SetInsertPoint(main->CreateBlock("entry"));
  Value* i_slot = b.Alloca(t.I64(), "i");
  Value* p_slot = b.Alloca(t.I64(), "pass");
  Value* head_slot = b.Alloca(t.PointerTo(insn), "head");
  Value* cur_slot = b.Alloca(t.PointerTo(insn), "cur");
  b.Store(b.Null(t.PointerTo(insn)), head_slot);

  const uint64_t chain = 512;
  LoopBlocks build = BeginLoop(b, main, i_slot, b.I64(0), b.I64(chain), "build");
  Value* node = b.Malloc(b.I64(insn->SizeInBytes()), t.PointerTo(insn));
  b.Store(build.index, b.FieldAddr(node, "op"));
  b.Store(b.Load(head_slot), b.FieldAddr(node, "next"));
  // handler = handlers[i % 4], chosen with nested selects.
  Value* sel = b.Binary(ir::BinOp::kAnd, build.index, b.I64(3));
  Value* h01 = b.Select(b.ICmpEq(sel, b.I64(0)), b.FuncAddr(handlers[0]),
                        b.FuncAddr(handlers[1]));
  Value* h23 = b.Select(b.ICmpEq(sel, b.I64(2)), b.FuncAddr(handlers[2]),
                        b.FuncAddr(handlers[3]));
  Value* h = b.Select(b.ICmpSLt(sel, b.I64(2)), h01, h23);
  b.Store(h, b.FieldAddr(node, "handler"));
  b.Store(node, head_slot);
  EndLoop(b, build);

  // Walk the chain repeatedly, dispatching each node's handler — every
  // p->next load is a sensitive pointer load under CPI.
  LoopBlocks passes = BeginLoop(b, main, p_slot, b.I64(0), b.I64(30 * scale), "pass");
  b.Store(b.Load(head_slot), cur_slot);
  ir::BasicBlock* walk_header = main->CreateBlock("walk.header");
  ir::BasicBlock* walk_body = main->CreateBlock("walk.body");
  ir::BasicBlock* walk_exit = main->CreateBlock("walk.exit");
  b.Br(walk_header);
  b.SetInsertPoint(walk_header);
  Value* cur = b.Load(cur_slot);
  b.CondBr(b.ICmpNe(b.PtrToInt(cur), b.I64(0)), walk_body, walk_exit);
  b.SetInsertPoint(walk_body);
  Value* cur2 = b.Load(cur_slot);
  Value* handler = b.Load(b.FieldAddr(cur2, "handler"));
  Value* res = b.IndirectCall(handler, {cur2});
  AccumulateChecksum(b, checksum, res);
  b.Store(b.Load(b.FieldAddr(cur2, "next")), cur_slot);
  b.Br(walk_header);
  b.SetInsertPoint(walk_exit);
  EndLoop(b, passes);

  EmitChecksumAndRet(b, checksum);
  return m;
}

// --- 429.mcf -------------------------------------------------------------------
// Pointer chasing over heap nodes that contain NO code pointers: CPI leaves
// the hot loop untouched (MOCPI is tiny for mcf in Table 2).
std::unique_ptr<Module> BuildMcf(int scale) {
  auto m = std::make_unique<Module>("429.mcf");
  auto& t = m->types();
  IRBuilder b(m.get());
  GlobalVariable* checksum = MakeChecksumGlobal(*m);

  StructType* node = t.GetOrCreateStruct("node");
  node->SetBody({{"next", t.PointerTo(node), 0}, {"dist", t.I64(), 0},
                 {"cost", t.I64(), 0}});

  // mcf-style codes stash pointers in integer fields (packed arc arrays);
  // this round-trip through integer memory is exactly the unsafe idiom that
  // makes benchmarks "terminate with an error when instrumented by
  // SoftBound" (§5.2) while CPI, instrumenting only sensitive pointers, is
  // unaffected.
  GlobalVariable* stash = m->CreateGlobal("packed_head", t.I64());

  Function* main = m->CreateFunction("main", t.FunctionTy(t.I64(), {}));
  b.SetInsertPoint(main->CreateBlock("entry"));
  Value* i_slot = b.Alloca(t.I64(), "i");
  Value* p_slot = b.Alloca(t.I64(), "pass");
  Value* head_slot = b.Alloca(t.PointerTo(node), "head");
  Value* cur_slot = b.Alloca(t.PointerTo(node), "cur");
  b.Store(b.Null(t.PointerTo(node)), head_slot);

  const uint64_t count = 2048;
  LoopBlocks build = BeginLoop(b, main, i_slot, b.I64(0), b.I64(count), "build");
  Value* n = b.Malloc(b.I64(node->SizeInBytes()), t.PointerTo(node));
  b.Store(b.Load(head_slot), b.FieldAddr(n, "next"));
  b.Store(b.I64(1) , b.FieldAddr(n, "dist"));
  b.Store(b.Binary(ir::BinOp::kAnd, b.Mul(build.index, b.I64(2654435761)), b.I64(1023)),
          b.FieldAddr(n, "cost"));
  b.Store(n, head_slot);
  EndLoop(b, build);

  // Relaxation passes: chase next pointers, update distances.
  LoopBlocks passes = BeginLoop(b, main, p_slot, b.I64(0), b.I64(40 * scale), "pass");
  b.Store(b.Load(head_slot), cur_slot);
  ir::BasicBlock* wh = main->CreateBlock("walk.header");
  ir::BasicBlock* wb = main->CreateBlock("walk.body");
  ir::BasicBlock* we = main->CreateBlock("walk.exit");
  b.Br(wh);
  b.SetInsertPoint(wh);
  Value* cur = b.Load(cur_slot);
  b.CondBr(b.ICmpNe(b.PtrToInt(cur), b.I64(0)), wb, we);
  b.SetInsertPoint(wb);
  Value* cur2 = b.Load(cur_slot);
  Value* dist = b.Load(b.FieldAddr(cur2, "dist"));
  Value* cost = b.Load(b.FieldAddr(cur2, "cost"));
  b.Store(b.Add(dist, cost), b.FieldAddr(cur2, "dist"));
  b.Store(b.Load(b.FieldAddr(cur2, "next")), cur_slot);
  b.Br(wh);
  b.SetInsertPoint(we);
  Value* head = b.Load(head_slot);
  AccumulateChecksum(b, checksum, b.Load(b.FieldAddr(head, "dist")));
  EndLoop(b, passes);

  // The pointer-through-integer-memory round trip.
  b.Store(b.PtrToInt(b.Load(head_slot)), b.GlobalAddr(stash));
  Value* packed = b.Load(b.GlobalAddr(stash));
  Value* unpacked = b.IntToPtr(packed, t.PointerTo(node));
  AccumulateChecksum(b, checksum, b.Load(b.FieldAddr(unpacked, "cost")));

  EmitChecksumAndRet(b, checksum);
  return m;
}

// --- numeric kernels: 433.milc / 470.lbm / 482.sphinx3 / 462.libquantum /
// 456.hmmer — plain array crunching with essentially no sensitive pointers.
std::unique_ptr<Module> BuildNumericKernel(const std::string& name, int flavor, int scale) {
  auto m = std::make_unique<Module>(name);
  auto& t = m->types();
  IRBuilder b(m.get());
  GlobalVariable* checksum = MakeChecksumGlobal(*m);
  const uint64_t n = 512;
  GlobalVariable* fa = m->CreateGlobal("fa", t.ArrayOf(t.FloatTy(), n));
  GlobalVariable* fb = m->CreateGlobal("fb", t.ArrayOf(t.FloatTy(), n));
  GlobalVariable* ia = m->CreateGlobal("ia", t.ArrayOf(t.I64(), n));

  // Even numeric codes have a sliver of sensitive activity: a progress
  // callback dispatched once per pass (this is what keeps the Table 1
  // medians slightly above zero).
  const ir::FunctionType* cb_ty = t.FunctionTy(t.VoidTy(), {t.I64()});
  GlobalVariable* progress_cb = m->CreateGlobal("progress_cb", t.PointerTo(cb_ty));
  Function* progress = m->CreateFunction("progress", cb_ty);
  {
    b.SetInsertPoint(progress->CreateBlock("entry"));
    // A local scratch line whose address escapes: this function needs an
    // unsafe frame, nudging FNUStack away from zero like real codebases.
    Value* scratch = b.Alloca(t.ArrayOf(t.CharTy(), 16), "scratch");
    Value* s0 = b.IndexAddr(scratch, b.I64(0));
    b.LibCall(ir::LibFunc::kMemset, {s0, b.I64(0), b.I64(16)});
    b.Ret();
  }

  Function* main = m->CreateFunction("main", t.FunctionTy(t.I64(), {}));
  b.SetInsertPoint(main->CreateBlock("entry"));
  Value* i_slot = b.Alloca(t.I64(), "i");
  Value* p_slot = b.Alloca(t.I64(), "pass");
  b.Store(b.FuncAddr(progress), b.GlobalAddr(progress_cb));

  LoopBlocks init = BeginLoop(b, main, i_slot, b.I64(0), b.I64(n), "init");
  Value* fi = b.Cast(ir::CastKind::kIntToFloat, init.index, t.FloatTy());
  b.Store(b.Binary(ir::BinOp::kFAdd, fi, b.F64(1.5)),
          b.IndexAddr(b.GlobalAddr(fa), init.index));
  b.Store(b.Binary(ir::BinOp::kFMul, fi, b.F64(0.75)),
          b.IndexAddr(b.GlobalAddr(fb), init.index));
  b.Store(b.Mul(init.index, b.I64(2654435761)), b.IndexAddr(b.GlobalAddr(ia), init.index));
  EndLoop(b, init);

  LoopBlocks passes = BeginLoop(b, main, p_slot, b.I64(0), b.I64(60 * scale), "pass");
  LoopBlocks inner = BeginLoop(b, main, i_slot, b.I64(0), b.I64(n - 2), "sweep");
  if (flavor == 0 || flavor == 2) {  // float stencil / gaussian-style
    Value* a0 = b.Load(b.IndexAddr(b.GlobalAddr(fa), inner.index));
    Value* a1 = b.Load(b.IndexAddr(b.GlobalAddr(fa), b.Add(inner.index, b.I64(1))));
    Value* bb = b.Load(b.IndexAddr(b.GlobalAddr(fb), inner.index));
    Value* v = b.Binary(ir::BinOp::kFMul, b.Binary(ir::BinOp::kFAdd, a0, a1), bb);
    if (flavor == 2) {
      Value* d = b.Binary(ir::BinOp::kFSub, v, a0);
      v = b.Binary(ir::BinOp::kFMul, d, d);
    }
    b.Store(v, b.IndexAddr(b.GlobalAddr(fa), inner.index));
  } else {  // integer bit kernel (libquantum/hmmer-style)
    Value* x = b.Load(b.IndexAddr(b.GlobalAddr(ia), inner.index));
    Value* y = b.Load(b.IndexAddr(b.GlobalAddr(ia), b.Add(inner.index, b.I64(1))));
    Value* v = b.Xor(b.Binary(ir::BinOp::kShl, x, b.I64(1)), y);
    if (flavor == 3) {  // DP max-accumulate
      Value* keep = b.ICmpSLt(x, y);
      v = b.Select(keep, y, x);
      v = b.Add(v, b.I64(3));
    }
    b.Store(v, b.IndexAddr(b.GlobalAddr(ia), inner.index));
  }
  EndLoop(b, inner);
  Value* cb = b.Load(b.GlobalAddr(progress_cb));
  b.IndirectCall(cb, {passes.index});
  EndLoop(b, passes);

  Value* f0 = b.Load(b.IndexAddr(b.GlobalAddr(fa), b.I64(7)));
  AccumulateChecksum(b, checksum, b.Cast(ir::CastKind::kFloatToInt, f0, t.I64()));
  AccumulateChecksum(b, checksum, b.Load(b.IndexAddr(b.GlobalAddr(ia), b.I64(7))));
  EmitChecksumAndRet(b, checksum);
  return m;
}

// --- 445.gobmk / 458.sjeng ------------------------------------------------------
// Recursive game-tree search with board arrays handed down by pointer (unsafe
// stack frames) and a small evaluator function-pointer table.
std::unique_ptr<Module> BuildGameTree(const std::string& name, uint64_t board_bytes,
                                      int scale) {
  auto m = std::make_unique<Module>(name);
  auto& t = m->types();
  IRBuilder b(m.get());
  GlobalVariable* checksum = MakeChecksumGlobal(*m);

  const ir::FunctionType* eval_ty =
      t.FunctionTy(t.I64(), {t.PointerTo(t.CharTy())});
  GlobalVariable* eval_table =
      m->CreateGlobal("eval_table", t.ArrayOf(t.PointerTo(eval_ty), 4));

  std::vector<Function*> evals;
  for (int k = 0; k < 2; ++k) {
    Function* e = m->CreateFunction("eval_" + std::to_string(k), eval_ty);
    b.SetInsertPoint(e->CreateBlock("entry"));
    Value* board = e->arg(0);
    Value* slot = b.Alloca(t.I64(), "acc");
    b.Store(b.I64(0), slot);
    Value* idx = b.Alloca(t.I64(), "i");
    LoopBlocks sum = BeginLoop(b, e, idx, b.I64(0), b.I64(board_bytes), "sum");
    Value* c = b.Load(b.IndexAddr(board, sum.index));
    Value* c64 = b.Cast(ir::CastKind::kZExt, c, t.I64());
    Value* acc = b.Load(slot);
    b.Store(k == 0 ? b.Add(acc, c64) : b.Xor(acc, b.Mul(c64, b.I64(3))), slot);
    EndLoop(b, sum);
    b.Ret(b.Load(slot));
    evals.push_back(e);
  }

  // search(depth, seed): fills a local board, recurses on two branches,
  // evaluates leaves via the table.
  Function* search =
      m->CreateFunction("search", t.FunctionTy(t.I64(), {t.I64(), t.I64()}));
  {
    b.SetInsertPoint(search->CreateBlock("entry"));
    Value* depth = search->arg(0);
    Value* seed = search->arg(1);
    Value* board = b.Alloca(t.ArrayOf(t.CharTy(), 64), "board");
    Value* i_slot = b.Alloca(t.I64(), "i");
    ir::BasicBlock* leaf = search->CreateBlock("leaf");
    ir::BasicBlock* rec = search->CreateBlock("rec");

    LoopBlocks fill = BeginLoop(b, search, i_slot, b.I64(0), b.I64(board_bytes), "fill");
    Value* v = b.Binary(ir::BinOp::kAnd, b.Mul(b.Add(seed, fill.index), b.I64(31)),
                        b.I64(255));
    b.Store(b.Cast(ir::CastKind::kTrunc, v, t.CharTy()),
            b.IndexAddr(board, fill.index));
    EndLoop(b, fill);

    b.CondBr(b.ICmpSLt(depth, b.I64(1)), leaf, rec);

    b.SetInsertPoint(leaf);
    Value* which = b.Binary(ir::BinOp::kAnd, seed, b.I64(1));
    Value* fn = b.Load(b.IndexAddr(b.GlobalAddr(eval_table), which));
    Value* board0 = b.IndexAddr(board, b.I64(0));
    Value* score = b.IndirectCall(fn, {board0});
    b.Ret(score);

    b.SetInsertPoint(rec);
    Value* d1 = b.Sub(depth, b.I64(1));
    Value* left = b.Call(search, {d1, b.Add(b.Mul(seed, b.I64(2)), b.I64(1))});
    Value* right = b.Call(search, {d1, b.Add(b.Mul(seed, b.I64(2)), b.I64(2))});
    Value* best = b.Select(b.ICmpSLt(left, right), right, left);
    b.Ret(b.Add(best, b.Cast(ir::CastKind::kZExt,
                             b.Load(b.IndexAddr(board, b.I64(3))), t.I64())));
  }

  Function* main = m->CreateFunction("main", t.FunctionTy(t.I64(), {}));
  b.SetInsertPoint(main->CreateBlock("entry"));
  Value* r_slot = b.Alloca(t.I64(), "round");
  b.Store(b.FuncAddr(evals[0]), b.IndexAddr(b.GlobalAddr(eval_table), b.I64(0)));
  b.Store(b.FuncAddr(evals[1]), b.IndexAddr(b.GlobalAddr(eval_table), b.I64(1)));
  b.Store(b.FuncAddr(evals[0]), b.IndexAddr(b.GlobalAddr(eval_table), b.I64(2)));
  b.Store(b.FuncAddr(evals[1]), b.IndexAddr(b.GlobalAddr(eval_table), b.I64(3)));
  LoopBlocks rounds = BeginLoop(b, main, r_slot, b.I64(0), b.I64(scale), "round");
  Value* score = b.Call(search, {b.I64(9), rounds.index});
  AccumulateChecksum(b, checksum, score);
  EndLoop(b, rounds);
  EmitChecksumAndRet(b, checksum);
  return m;
}

// --- 464.h264ref ---------------------------------------------------------------
// Frame-buffer block copies: memcpy-heavy, which is exactly the libc
// memory-function overhead source §5.2 discusses.
std::unique_ptr<Module> BuildH264(int scale) {
  auto m = std::make_unique<Module>("464.h264ref");
  auto& t = m->types();
  IRBuilder b(m.get());
  GlobalVariable* checksum = MakeChecksumGlobal(*m);
  const uint64_t frame = 8192;

  Function* main = m->CreateFunction("main", t.FunctionTy(t.I64(), {}));
  b.SetInsertPoint(main->CreateBlock("entry"));
  Value* i_slot = b.Alloca(t.I64(), "i");
  Value* p_slot = b.Alloca(t.I64(), "pass");
  Value* ref = b.Malloc(b.I64(frame), t.PointerTo(t.CharTy()), "ref");
  Value* cur = b.Malloc(b.I64(frame), t.PointerTo(t.CharTy()), "cur");

  LoopBlocks init = BeginLoop(b, main, i_slot, b.I64(0), b.I64(frame), "init");
  Value* v = b.Binary(ir::BinOp::kAnd, b.Mul(init.index, b.I64(37)), b.I64(255));
  b.Store(b.Cast(ir::CastKind::kTrunc, v, t.CharTy()), b.IndexAddr(ref, init.index));
  EndLoop(b, init);

  LoopBlocks passes = BeginLoop(b, main, p_slot, b.I64(0), b.I64(50 * scale), "pass");
  // Motion-compensation-style block copies at a sliding offset.
  Value* offset = b.Binary(ir::BinOp::kAnd, b.Mul(passes.index, b.I64(193)), b.I64(4095));
  Value* src = b.IndexAddr(ref, offset);
  b.LibCall(ir::LibFunc::kMemcpy, {cur, src, b.I64(4096)});
  // SAD over a 256-byte block.
  Value* sad_slot = b.Alloca(t.I64(), "sad");
  b.Store(b.I64(0), sad_slot);
  LoopBlocks sad = BeginLoop(b, main, i_slot, b.I64(0), b.I64(256), "sad");
  Value* a = b.Cast(ir::CastKind::kZExt, b.Load(b.IndexAddr(cur, sad.index)), t.I64());
  Value* r = b.Cast(ir::CastKind::kZExt, b.Load(b.IndexAddr(ref, sad.index)), t.I64());
  Value* d = b.Sub(a, r);
  Value* abs = b.Select(b.ICmpSLt(d, b.I64(0)), b.Sub(b.I64(0), d), d);
  b.Store(b.Add(b.Load(sad_slot), abs), sad_slot);
  EndLoop(b, sad);
  AccumulateChecksum(b, checksum, b.Load(sad_slot));
  EndLoop(b, passes);

  b.Free(ref);
  b.Free(cur);
  EmitChecksumAndRet(b, checksum);
  return m;
}

}  // namespace

// Exposed to the registry in registry.cc.
std::unique_ptr<Module> SpecPerlbench(int scale) { return BuildPerlbench(scale); }
std::unique_ptr<Module> SpecBzip2(int scale) { return BuildBzip2(scale); }
std::unique_ptr<Module> SpecGcc(int scale) { return BuildGcc(scale); }
std::unique_ptr<Module> SpecMcf(int scale) { return BuildMcf(scale); }
std::unique_ptr<Module> SpecMilc(int scale) { return BuildNumericKernel("433.milc", 0, scale); }
std::unique_ptr<Module> SpecGobmk(int scale) { return BuildGameTree("445.gobmk", 64, scale); }
std::unique_ptr<Module> SpecHmmer(int scale) {
  return BuildNumericKernel("456.hmmer", 3, scale);
}
std::unique_ptr<Module> SpecSjeng(int scale) { return BuildGameTree("458.sjeng", 32, scale); }
std::unique_ptr<Module> SpecLibquantum(int scale) {
  return BuildNumericKernel("462.libquantum", 1, scale);
}
std::unique_ptr<Module> SpecH264ref(int scale) { return BuildH264(scale); }
std::unique_ptr<Module> SpecLbm(int scale) { return BuildNumericKernel("470.lbm", 0, scale); }
std::unique_ptr<Module> SpecSphinx3(int scale) {
  return BuildNumericKernel("482.sphinx3", 2, scale);
}

}  // namespace cpi::workloads
