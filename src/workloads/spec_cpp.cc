// The C++-language SPEC CPU2006 workload models (7 of Table 2's 19 rows).
//
// C++ here means the vtable pattern: every object embeds a pointer to a
// struct of function pointers, which makes every pointer to such an object
// *sensitive* under CPI ("abundant use of pointers to C++ objects that
// contain virtual function tables", §5.2) — these are the workloads where CPI
// is most expensive and CPS's relaxation pays off.
#include "src/workloads/common.h"
#include "src/workloads/workloads.h"

namespace cpi::workloads {
namespace {

using ir::Function;
using ir::GlobalVariable;
using ir::IRBuilder;
using ir::Module;
using ir::StructType;
using ir::Value;

// A miniature class hierarchy: one object layout, N concrete classes, each
// with its own vtable global filled at startup (the compiler/runtime-created
// code pointers §3.2.1 lists as implicitly sensitive).
struct Hierarchy {
  StructType* obj = nullptr;    // { vt: VTable*, a: i64, b: i64, x: f64 }
  StructType* vtable = nullptr; // { m0: Method*, m1: Method* }
  const ir::FunctionType* method_ty = nullptr;
  std::vector<GlobalVariable*> vtables;              // one per class
  std::vector<std::vector<Function*>> methods;       // [class][method]
};

// Builds the types and per-class method stubs; `emit_method` fills each
// method body (receives `self` and must Ret an i64).
Hierarchy MakeHierarchy(
    Module& m, IRBuilder& b, const std::string& prefix, int num_classes,
    const std::function<void(IRBuilder&, Function*, int cls, int method, Value* self)>&
        emit_method) {
  Hierarchy h;
  auto& t = m.types();
  h.obj = t.GetOrCreateStruct(prefix + "_obj");
  h.vtable = t.GetOrCreateStruct(prefix + "_vtable");
  h.method_ty = t.FunctionTy(t.I64(), {t.PointerTo(h.obj)});
  h.vtable->SetBody({{"m0", t.PointerTo(h.method_ty), 0},
                     {"m1", t.PointerTo(h.method_ty), 0}});
  h.obj->SetBody({{"vt", t.PointerTo(h.vtable), 0},
                  {"a", t.I64(), 0},
                  {"b", t.I64(), 0},
                  {"x", t.FloatTy(), 0}});
  for (int c = 0; c < num_classes; ++c) {
    h.vtables.push_back(
        m.CreateGlobal(prefix + "_vt_" + std::to_string(c), h.vtable));
    std::vector<Function*> ms;
    for (int k = 0; k < 2; ++k) {
      Function* fn = m.CreateFunction(
          prefix + "_c" + std::to_string(c) + "_m" + std::to_string(k), h.method_ty);
      b.SetInsertPoint(fn->CreateBlock("entry"));
      emit_method(b, fn, c, k, fn->arg(0));
      ms.push_back(fn);
    }
    h.methods.push_back(ms);
  }
  return h;
}

// Emits vtable initialisation into the current insert point (runs once in
// main): vt_c.m_k = &method.
void InitVtables(IRBuilder& b, const Hierarchy& h) {
  for (size_t c = 0; c < h.vtables.size(); ++c) {
    Value* vt = b.GlobalAddr(h.vtables[c]);
    b.Store(b.FuncAddr(h.methods[c][0]), b.FieldAddr(vt, "m0"));
    b.Store(b.FuncAddr(h.methods[c][1]), b.FieldAddr(vt, "m1"));
  }
}

// obj->vt->m_k(obj): the two sensitive loads plus the protected indirect call
// of a C++ virtual dispatch.
Value* EmitVCall(IRBuilder& b, Value* obj, const std::string& method) {
  Value* vt = b.Load(b.FieldAddr(obj, "vt"));
  Value* fn = b.Load(b.FieldAddr(vt, method));
  return b.IndirectCall(fn, {obj});
}

// Allocates and initialises one object of class `cls`.
Value* EmitNewObject(IRBuilder& b, const Hierarchy& h, int cls, Value* a, Value* bv) {
  Value* obj = b.Malloc(b.I64(h.obj->SizeInBytes()),
                        b.module()->types().PointerTo(h.obj));
  b.Store(b.GlobalAddr(h.vtables[cls]), b.FieldAddr(obj, "vt"));
  b.Store(a, b.FieldAddr(obj, "a"));
  b.Store(bv, b.FieldAddr(obj, "b"));
  b.Store(b.F64(1.0), b.FieldAddr(obj, "x"));
  return obj;
}

void EmitArithMethod(IRBuilder& b, Function* fn, int cls, int method, Value* self) {
  Value* a = b.Load(b.FieldAddr(self, "a"));
  Value* bv = b.Load(b.FieldAddr(self, "b"));
  // Virtual methods in the modelled benchmarks do real work between the
  // dispatch points; without this ballast the sensitive-op fraction (and so
  // the measured overhead) would be unrealistically high.
  Value* r = a;
  for (int step = 0; step < 10; ++step) {
    switch ((cls * 2 + method + step) % 4) {
      case 0: r = b.Add(r, bv); break;
      case 1: r = b.Mul(r, b.I64(3)); break;
      case 2: r = b.Xor(r, b.Binary(ir::BinOp::kLShr, r, b.I64(5))); break;
      default: r = b.Sub(b.Mul(r, b.I64(5)), bv); break;
    }
  }
  b.Store(r, b.FieldAddr(self, "a"));
  (void)fn;
  b.Ret(r);
}

// --- 471.omnetpp --------------------------------------------------------------
// Discrete-event simulation: a ring of polymorphic event objects, constant
// virtual dispatch, frequent allocation/free. The highest MOCPI in Table 2.
std::unique_ptr<Module> BuildOmnetpp(int scale) {
  auto m = std::make_unique<Module>("471.omnetpp");
  auto& t = m->types();
  IRBuilder b(m.get());
  GlobalVariable* checksum = MakeChecksumGlobal(*m);

  Hierarchy h = MakeHierarchy(*m, b, "ev", 3, EmitArithMethod);
  const uint64_t ring_size = 64;
  GlobalVariable* ring =
      m->CreateGlobal("ring", t.ArrayOf(t.PointerTo(h.obj), ring_size));

  Function* main = m->CreateFunction("main", t.FunctionTy(t.I64(), {}));
  b.SetInsertPoint(main->CreateBlock("entry"));
  Value* i_slot = b.Alloca(t.I64(), "i");
  Value* s_slot = b.Alloca(t.I64(), "step");
  InitVtables(b, h);

  // Fill the ring: stores of sensitive object pointers.
  LoopBlocks fill = BeginLoop(b, main, i_slot, b.I64(0), b.I64(ring_size), "fill");
  Value* o0 = EmitNewObject(b, h, 0, fill.index, b.I64(7));
  b.Store(o0, b.IndexAddr(b.GlobalAddr(ring), fill.index));
  EndLoop(b, fill);

  // Event loop: pop an event (sensitive load), dispatch, replace it with a
  // fresh one of a rotating class (alloc/free churn).
  LoopBlocks steps = BeginLoop(b, main, s_slot, b.I64(0), b.I64(6000 * scale), "step");
  Value* pos = b.Binary(ir::BinOp::kURem, steps.index, b.I64(ring_size));
  Value* slot = b.IndexAddr(b.GlobalAddr(ring), pos);
  Value* ev = b.Load(slot, "ev");
  Value* r = EmitVCall(b, ev, "m0");
  AccumulateChecksum(b, checksum, r);
  // Every 8th event is retired and replaced.
  ir::BasicBlock* replace = main->CreateBlock("replace");
  ir::BasicBlock* keep = main->CreateBlock("keep");
  Value* retire = b.ICmpEq(b.Binary(ir::BinOp::kAnd, steps.index, b.I64(7)), b.I64(0));
  b.CondBr(retire, replace, keep);
  b.SetInsertPoint(replace);
  Value* old = b.Load(slot);
  b.Free(old);
  Value* fresh = EmitNewObject(b, h, 1, r, steps.index);
  b.Store(fresh, slot);
  b.Br(keep);
  b.SetInsertPoint(keep);
  EndLoop(b, steps);

  EmitChecksumAndRet(b, checksum);
  return m;
}

// --- 447.dealII ----------------------------------------------------------------
// Finite elements: a heap array of polymorphic element objects; the assembly
// loop virtually dispatches into numeric method bodies.
std::unique_ptr<Module> BuildDealII(int scale) {
  auto m = std::make_unique<Module>("447.dealII");
  auto& t = m->types();
  IRBuilder b(m.get());
  GlobalVariable* checksum = MakeChecksumGlobal(*m);

  Hierarchy h = MakeHierarchy(
      *m, b, "el", 3,
      [](IRBuilder& bb, Function* fn, int cls, int method, Value* self) {
        (void)fn;
        Value* x = bb.Load(bb.FieldAddr(self, "x"));
        Value* a = bb.Load(bb.FieldAddr(self, "a"));
        Value* fa = bb.Cast(ir::CastKind::kIntToFloat, a, bb.module()->types().FloatTy());
        // Quadrature-style floating-point work per element.
        Value* y = x;
        for (int q = 0; q < 8; ++q) {
          y = bb.Binary(ir::BinOp::kFAdd, bb.Binary(ir::BinOp::kFMul, y, fa),
                        bb.F64(0.25 * (cls + q + 1)));
          y = bb.Binary(ir::BinOp::kFMul, y, bb.F64(0.5));
        }
        if (method == 1) {
          y = bb.Binary(ir::BinOp::kFMul, y, y);
        }
        bb.Store(y, bb.FieldAddr(self, "x"));
        bb.Ret(bb.Cast(ir::CastKind::kFloatToInt, y, bb.module()->types().I64()));
      });

  const uint64_t elems = 192;
  GlobalVariable* mesh = m->CreateGlobal("mesh", t.ArrayOf(t.PointerTo(h.obj), elems));

  Function* main = m->CreateFunction("main", t.FunctionTy(t.I64(), {}));
  b.SetInsertPoint(main->CreateBlock("entry"));
  Value* i_slot = b.Alloca(t.I64(), "i");
  Value* p_slot = b.Alloca(t.I64(), "pass");
  InitVtables(b, h);

  LoopBlocks fill = BeginLoop(b, main, i_slot, b.I64(0), b.I64(elems), "fill");
  Value* cls_sel = b.Binary(ir::BinOp::kURem, fill.index, b.I64(3));
  Value* o0 = EmitNewObject(b, h, 0, fill.index, b.I64(2));
  // Overwrite vt for classes 1/2 via selects (keeps one allocation site).
  Value* vt1 = b.Select(b.ICmpEq(cls_sel, b.I64(1)), b.GlobalAddr(h.vtables[1]),
                        b.GlobalAddr(h.vtables[0]));
  Value* vt = b.Select(b.ICmpEq(cls_sel, b.I64(2)), b.GlobalAddr(h.vtables[2]), vt1);
  b.Store(vt, b.FieldAddr(o0, "vt"));
  b.Store(o0, b.IndexAddr(b.GlobalAddr(mesh), fill.index));
  EndLoop(b, fill);

  LoopBlocks passes = BeginLoop(b, main, p_slot, b.I64(0), b.I64(40 * scale), "pass");
  LoopBlocks each = BeginLoop(b, main, i_slot, b.I64(0), b.I64(elems), "elem");
  Value* obj = b.Load(b.IndexAddr(b.GlobalAddr(mesh), each.index), "el");
  Value* area = EmitVCall(b, obj, "m0");
  Value* integ = EmitVCall(b, obj, "m1");
  AccumulateChecksum(b, checksum, b.Add(area, integ));
  EndLoop(b, each);
  EndLoop(b, passes);

  EmitChecksumAndRet(b, checksum);
  return m;
}

// --- 444.namd -------------------------------------------------------------------
// Numeric force computation with large local arrays whose addresses escape to
// helpers: they must live on the unsafe stack (namd has Table 2's highest
// FNUStack, 75.8%), and moving them there is where the safe stack's locality
// benefit shows up (§5.2).
std::unique_ptr<Module> BuildNamd(int scale) {
  auto m = std::make_unique<Module>("444.namd");
  auto& t = m->types();
  IRBuilder b(m.get());
  GlobalVariable* checksum = MakeChecksumGlobal(*m);
  const uint64_t n = 1024;
  const ir::PointerType* f64p = t.PointerTo(t.FloatTy());

  Function* fill = m->CreateFunction("fill", t.FunctionTy(t.VoidTy(), {f64p, t.I64()}));
  {
    b.SetInsertPoint(fill->CreateBlock("entry"));
    Value* arr = fill->arg(0);
    Value* seed = fill->arg(1);
    Value* i_slot = b.Alloca(t.I64(), "i");
    LoopBlocks l = BeginLoop(b, fill, i_slot, b.I64(0), b.I64(n), "fill");
    Value* v = b.Cast(ir::CastKind::kIntToFloat, b.Add(l.index, seed), t.FloatTy());
    b.Store(b.Binary(ir::BinOp::kFMul, v, b.F64(0.001)), b.IndexAddr(arr, l.index));
    EndLoop(b, l);
    b.Ret();
  }

  Function* reduce = m->CreateFunction("reduce", t.FunctionTy(t.I64(), {f64p}));
  {
    b.SetInsertPoint(reduce->CreateBlock("entry"));
    Value* arr = reduce->arg(0);
    Value* acc = b.Alloca(t.FloatTy(), "acc");
    Value* i_slot = b.Alloca(t.I64(), "i");
    b.Store(b.F64(0.0), acc);
    LoopBlocks l = BeginLoop(b, reduce, i_slot, b.I64(0), b.I64(n), "sum");
    Value* v = b.Load(b.IndexAddr(arr, l.index));
    b.Store(b.Binary(ir::BinOp::kFAdd, b.Load(acc), v), acc);
    EndLoop(b, l);
    b.Ret(b.Cast(ir::CastKind::kFloatToInt,
                 b.Binary(ir::BinOp::kFMul, b.Load(acc), b.F64(1000.0)), t.I64()));
  }

  Function* pass = m->CreateFunction("force_pass", t.FunctionTy(t.I64(), {t.I64()}));
  {
    b.SetInsertPoint(pass->CreateBlock("entry"));
    Value* seed = pass->arg(0);
    // Two 8 KB local arrays; their addresses escape into fill/reduce.
    Value* pos = b.Alloca(t.ArrayOf(t.FloatTy(), n), "pos");
    Value* frc = b.Alloca(t.ArrayOf(t.FloatTy(), n), "frc");
    Value* i_slot = b.Alloca(t.I64(), "i");
    Value* pos0 = b.IndexAddr(pos, b.I64(0));
    Value* frc0 = b.IndexAddr(frc, b.I64(0));
    b.Call(fill, {pos0, seed});
    LoopBlocks l = BeginLoop(b, pass, i_slot, b.I64(0), b.I64(n), "force");
    Value* a = b.Load(b.IndexAddr(pos, l.index));
    Value* rev = b.Load(b.IndexAddr(pos, b.Sub(b.I64(n - 1), l.index)));
    Value* f = b.Binary(ir::BinOp::kFAdd, b.Binary(ir::BinOp::kFMul, a, b.F64(1.0001)),
                        b.Binary(ir::BinOp::kFMul, rev, b.F64(0.5)));
    b.Store(f, b.IndexAddr(frc, l.index));
    EndLoop(b, l);
    b.Ret(b.Call(reduce, {frc0}));
  }

  Function* main = m->CreateFunction("main", t.FunctionTy(t.I64(), {}));
  b.SetInsertPoint(main->CreateBlock("entry"));
  Value* r_slot = b.Alloca(t.I64(), "r");
  LoopBlocks rounds = BeginLoop(b, main, r_slot, b.I64(0), b.I64(30 * scale), "round");
  AccumulateChecksum(b, checksum, b.Call(pass, {rounds.index}));
  EndLoop(b, rounds);
  EmitChecksumAndRet(b, checksum);
  return m;
}

// --- 450.soplex ------------------------------------------------------------------
// Sparse linear algebra with a polymorphic pricing strategy: mostly numeric,
// one virtual dispatch per pivot.
std::unique_ptr<Module> BuildSoplex(int scale) {
  auto m = std::make_unique<Module>("450.soplex");
  auto& t = m->types();
  IRBuilder b(m.get());
  GlobalVariable* checksum = MakeChecksumGlobal(*m);

  Hierarchy h = MakeHierarchy(*m, b, "pricer", 2, EmitArithMethod);
  const uint64_t n = 256;
  GlobalVariable* vals = m->CreateGlobal("vals", t.ArrayOf(t.FloatTy(), n));
  GlobalVariable* idxs = m->CreateGlobal("idxs", t.ArrayOf(t.I64(), n));

  Function* main = m->CreateFunction("main", t.FunctionTy(t.I64(), {}));
  b.SetInsertPoint(main->CreateBlock("entry"));
  Value* i_slot = b.Alloca(t.I64(), "i");
  Value* p_slot = b.Alloca(t.I64(), "pivot");
  InitVtables(b, h);
  Value* pricer = EmitNewObject(b, h, 0, b.I64(11), b.I64(3));

  LoopBlocks init = BeginLoop(b, main, i_slot, b.I64(0), b.I64(n), "init");
  b.Store(b.Cast(ir::CastKind::kIntToFloat, init.index, t.FloatTy()),
          b.IndexAddr(b.GlobalAddr(vals), init.index));
  b.Store(b.Binary(ir::BinOp::kURem, b.Mul(init.index, b.I64(7)), b.I64(n)),
          b.IndexAddr(b.GlobalAddr(idxs), init.index));
  EndLoop(b, init);

  LoopBlocks pivots = BeginLoop(b, main, p_slot, b.I64(0), b.I64(60 * scale), "pivot");
  // Sparse update sweep.
  LoopBlocks sweep = BeginLoop(b, main, i_slot, b.I64(0), b.I64(n), "sweep");
  Value* j = b.Load(b.IndexAddr(b.GlobalAddr(idxs), sweep.index));
  Value* vj = b.Load(b.IndexAddr(b.GlobalAddr(vals), j));
  Value* vi = b.Load(b.IndexAddr(b.GlobalAddr(vals), sweep.index));
  b.Store(b.Binary(ir::BinOp::kFAdd, vi, b.Binary(ir::BinOp::kFMul, vj, b.F64(0.125))),
          b.IndexAddr(b.GlobalAddr(vals), sweep.index));
  EndLoop(b, sweep);
  AccumulateChecksum(b, checksum, EmitVCall(b, pricer, "m0"));
  EndLoop(b, pivots);

  EmitChecksumAndRet(b, checksum);
  return m;
}

// --- 453.povray -----------------------------------------------------------------
// Ray tracing: a linked list of polymorphic shapes (sensitive next pointers),
// virtual intersection tests, and char-buffer texture names (cookies/unsafe
// frames).
std::unique_ptr<Module> BuildPovray(int scale) {
  auto m = std::make_unique<Module>("453.povray");
  auto& t = m->types();
  IRBuilder b(m.get());
  GlobalVariable* checksum = MakeChecksumGlobal(*m);

  StructType* shape = t.GetOrCreateStruct("shape");
  const ir::FunctionType* isect_ty =
      t.FunctionTy(t.I64(), {t.PointerTo(shape), t.I64()});
  shape->SetBody({{"isect", t.PointerTo(isect_ty), 0},
                  {"next", t.PointerTo(shape), 0},
                  {"radius", t.FloatTy(), 0},
                  {"name", t.ArrayOf(t.CharTy(), 16), 0}});

  std::vector<Function*> isects;
  for (int k = 0; k < 2; ++k) {
    Function* fn = m->CreateFunction("isect_" + std::to_string(k), isect_ty);
    b.SetInsertPoint(fn->CreateBlock("entry"));
    Value* self = fn->arg(0);
    Value* ray = fn->arg(1);
    Value* r = b.Load(b.FieldAddr(self, "radius"));
    Value* fray = b.Cast(ir::CastKind::kIntToFloat, ray, t.FloatTy());
    Value* d = b.Binary(ir::BinOp::kFSub, b.Binary(ir::BinOp::kFMul, fray, b.F64(0.01)), r);
    Value* hit = k == 0 ? b.Binary(ir::BinOp::kFLt, d, b.F64(0.0))
                        : b.Binary(ir::BinOp::kFLe, b.Binary(ir::BinOp::kFMul, d, d),
                                   b.F64(4.0));
    b.Ret(hit);
    isects.push_back(fn);
  }

  GlobalVariable* name_src =
      m->CreateGlobal("name_src", t.ArrayOf(t.CharTy(), 8), /*is_const=*/true);
  name_src->set_initializer({'g', 'r', 'a', 'n', 'i', 't', 'e', 0});

  Function* main = m->CreateFunction("main", t.FunctionTy(t.I64(), {}));
  b.SetInsertPoint(main->CreateBlock("entry"));
  Value* i_slot = b.Alloca(t.I64(), "i");
  Value* head_slot = b.Alloca(t.PointerTo(shape), "head");
  Value* cur_slot = b.Alloca(t.PointerTo(shape), "cur");
  b.Store(b.Null(t.PointerTo(shape)), head_slot);

  LoopBlocks build = BeginLoop(b, main, i_slot, b.I64(0), b.I64(24), "scene");
  Value* s = b.Malloc(b.I64(shape->SizeInBytes()), t.PointerTo(shape));
  Value* which = b.Binary(ir::BinOp::kAnd, build.index, b.I64(1));
  Value* fn = b.Select(b.ICmpEq(which, b.I64(0)), b.FuncAddr(isects[0]),
                       b.FuncAddr(isects[1]));
  b.Store(fn, b.FieldAddr(s, "isect"));
  b.Store(b.Load(head_slot), b.FieldAddr(s, "next"));
  b.Store(b.Cast(ir::CastKind::kIntToFloat, build.index, t.FloatTy()),
          b.FieldAddr(s, "radius"));
  Value* name0 = b.IndexAddr(b.FieldAddr(s, "name"), b.I64(0));
  Value* src0 = b.IndexAddr(b.GlobalAddr(name_src), b.I64(0));
  b.LibCall(ir::LibFunc::kStrcpy, {name0, src0});
  b.Store(s, head_slot);
  EndLoop(b, build);

  LoopBlocks rays = BeginLoop(b, main, i_slot, b.I64(0), b.I64(3000 * scale), "ray");
  b.Store(b.Load(head_slot), cur_slot);
  ir::BasicBlock* wh = main->CreateBlock("walk.header");
  ir::BasicBlock* wb = main->CreateBlock("walk.body");
  ir::BasicBlock* we = main->CreateBlock("walk.exit");
  b.Br(wh);
  b.SetInsertPoint(wh);
  Value* cur = b.Load(cur_slot);
  b.CondBr(b.ICmpNe(b.PtrToInt(cur), b.I64(0)), wb, we);
  b.SetInsertPoint(wb);
  Value* cur2 = b.Load(cur_slot);
  Value* isect = b.Load(b.FieldAddr(cur2, "isect"));
  Value* hit = b.IndirectCall(isect, {cur2, rays.index});
  AccumulateChecksum(b, checksum, hit);
  b.Store(b.Load(b.FieldAddr(cur2, "next")), cur_slot);
  b.Br(wh);
  b.SetInsertPoint(we);
  EndLoop(b, rays);

  EmitChecksumAndRet(b, checksum);
  return m;
}

// --- 473.astar ------------------------------------------------------------------
// Grid pathfinding: plain data nodes (not sensitive) plus one heuristic
// function pointer.
std::unique_ptr<Module> BuildAstar(int scale) {
  auto m = std::make_unique<Module>("473.astar");
  auto& t = m->types();
  IRBuilder b(m.get());
  GlobalVariable* checksum = MakeChecksumGlobal(*m);
  const uint64_t dim = 64;

  const ir::FunctionType* heur_ty = t.FunctionTy(t.I64(), {t.I64(), t.I64()});
  GlobalVariable* heur_ptr = m->CreateGlobal("heur", t.PointerTo(heur_ty));
  Function* manhattan = m->CreateFunction("manhattan", heur_ty);
  {
    b.SetInsertPoint(manhattan->CreateBlock("entry"));
    Value* dx = b.Sub(b.I64(dim - 1), manhattan->arg(0));
    Value* dy = b.Sub(b.I64(dim - 1), manhattan->arg(1));
    Value* ax = b.Select(b.ICmpSLt(dx, b.I64(0)), b.Sub(b.I64(0), dx), dx);
    Value* ay = b.Select(b.ICmpSLt(dy, b.I64(0)), b.Sub(b.I64(0), dy), dy);
    b.Ret(b.Add(ax, ay));
  }

  Function* main = m->CreateFunction("main", t.FunctionTy(t.I64(), {}));
  b.SetInsertPoint(main->CreateBlock("entry"));
  Value* i_slot = b.Alloca(t.I64(), "i");
  Value* r_slot = b.Alloca(t.I64(), "round");
  Value* grid = b.Malloc(b.I64(dim * dim * 8), t.PointerTo(t.I64()), "grid");
  b.Store(b.FuncAddr(manhattan), b.GlobalAddr(heur_ptr));

  LoopBlocks init = BeginLoop(b, main, i_slot, b.I64(0), b.I64(dim * dim), "init");
  b.Store(b.Binary(ir::BinOp::kAnd, b.Mul(init.index, b.I64(2654435761)), b.I64(15)),
          b.IndexAddr(grid, init.index));
  EndLoop(b, init);

  LoopBlocks rounds = BeginLoop(b, main, r_slot, b.I64(0), b.I64(30 * scale), "round");
  // Dijkstra-flavoured sweep: cost[i] = min(cost[i], cost[i-1] + w) + h().
  LoopBlocks sweep = BeginLoop(b, main, i_slot, b.I64(1), b.I64(dim * dim), "sweep");
  Value* prev = b.Load(b.IndexAddr(grid, b.Sub(sweep.index, b.I64(1))));
  Value* here = b.Load(b.IndexAddr(grid, sweep.index));
  Value* relax = b.Add(prev, b.I64(1));
  Value* best = b.Select(b.ICmpSLt(relax, here), relax, here);
  b.Store(best, b.IndexAddr(grid, sweep.index));
  EndLoop(b, sweep);
  Value* h_fn = b.Load(b.GlobalAddr(heur_ptr));
  Value* x = b.Binary(ir::BinOp::kAnd, rounds.index, b.I64(dim - 1));
  Value* est = b.IndirectCall(h_fn, {x, x});
  Value* goal = b.Load(b.IndexAddr(grid, b.I64(dim * dim - 1)));
  AccumulateChecksum(b, checksum, b.Add(goal, est));
  EndLoop(b, rounds);

  b.Free(grid);
  EmitChecksumAndRet(b, checksum);
  return m;
}

// --- 483.xalancbmk ----------------------------------------------------------------
// XML transformation: a polymorphic node tree with inline name buffers;
// recursive virtual traversal plus string comparisons — both MOCPS and MOCPI
// are high.
std::unique_ptr<Module> BuildXalanc(int scale) {
  auto m = std::make_unique<Module>("483.xalancbmk");
  auto& t = m->types();
  IRBuilder b(m.get());
  GlobalVariable* checksum = MakeChecksumGlobal(*m);

  StructType* node = t.GetOrCreateStruct("xml_node");
  const ir::FunctionType* visit_ty = t.FunctionTy(t.I64(), {t.PointerTo(node)});
  node->SetBody({{"visit", t.PointerTo(visit_ty), 0},
                 {"left", t.PointerTo(node), 0},
                 {"right", t.PointerTo(node), 0},
                 {"name", t.ArrayOf(t.CharTy(), 16), 0},
                 {"value", t.I64(), 0}});

  GlobalVariable* tag_a = m->CreateGlobal("tag_a", t.ArrayOf(t.CharTy(), 8), true);
  tag_a->set_initializer({'e', 'l', 'e', 'm', 0});
  GlobalVariable* tag_b = m->CreateGlobal("tag_b", t.ArrayOf(t.CharTy(), 8), true);
  tag_b->set_initializer({'a', 't', 't', 'r', 0});

  std::vector<Function*> visits;
  for (int k = 0; k < 2; ++k) {
    Function* fn = m->CreateFunction("visit_" + std::to_string(k), visit_ty);
    b.SetInsertPoint(fn->CreateBlock("entry"));
    Value* self = fn->arg(0);
    Value* name0 = b.IndexAddr(b.FieldAddr(self, "name"), b.I64(0));
    Value* tag0 = b.IndexAddr(b.GlobalAddr(k == 0 ? tag_a : tag_b), b.I64(0));
    Value* cmp = b.LibCall(ir::LibFunc::kStrcmp, {name0, tag0});
    Value* v = b.Load(b.FieldAddr(self, "value"));
    // Transformation work per node (xpath-evaluation stand-in).
    Value* r = v;
    for (int step = 0; step < 8; ++step) {
      r = b.Add(b.Mul(r, b.I64(k == 0 ? 3 : 7)),
                b.Xor(r, b.Binary(ir::BinOp::kLShr, r, b.I64(3))));
    }
    r = b.Add(r, b.Select(b.ICmpEq(cmp, b.I64(0)), b.I64(100), b.I64(1)));
    b.Store(r, b.FieldAddr(self, "value"));
    b.Ret(r);
    visits.push_back(fn);
  }

  // traverse(n): vcall n->visit(n), recurse left/right.
  Function* traverse = m->CreateFunction("traverse", visit_ty);
  {
    b.SetInsertPoint(traverse->CreateBlock("entry"));
    Value* n = traverse->arg(0);
    ir::BasicBlock* body = traverse->CreateBlock("body");
    ir::BasicBlock* null_bb = traverse->CreateBlock("null");
    b.CondBr(b.ICmpNe(b.PtrToInt(n), b.I64(0)), body, null_bb);
    b.SetInsertPoint(null_bb);
    b.Ret(b.I64(0));
    b.SetInsertPoint(body);
    Value* visit = b.Load(b.FieldAddr(n, "visit"));
    Value* r = b.IndirectCall(visit, {n});
    Value* left = b.Load(b.FieldAddr(n, "left"));
    Value* right = b.Load(b.FieldAddr(n, "right"));
    Value* rl = b.Call(traverse, {left});
    Value* rr = b.Call(traverse, {right});
    b.Ret(b.Add(r, b.Add(rl, rr)));
  }

  // build(depth, seed) -> node*
  Function* build = m->CreateFunction(
      "build", t.FunctionTy(t.PointerTo(node), {t.I64(), t.I64()}));
  {
    b.SetInsertPoint(build->CreateBlock("entry"));
    Value* depth = build->arg(0);
    Value* seed = build->arg(1);
    ir::BasicBlock* leaf = build->CreateBlock("leaf");
    ir::BasicBlock* inner = build->CreateBlock("inner");
    b.CondBr(b.ICmpSLt(depth, b.I64(1)), leaf, inner);
    b.SetInsertPoint(leaf);
    b.Ret(b.Null(t.PointerTo(node)));
    b.SetInsertPoint(inner);
    Value* n = b.Malloc(b.I64(node->SizeInBytes()), t.PointerTo(node));
    Value* which = b.Binary(ir::BinOp::kAnd, seed, b.I64(1));
    Value* fn = b.Select(b.ICmpEq(which, b.I64(0)), b.FuncAddr(visits[0]),
                         b.FuncAddr(visits[1]));
    b.Store(fn, b.FieldAddr(n, "visit"));
    Value* name0 = b.IndexAddr(b.FieldAddr(n, "name"), b.I64(0));
    Value* tag0 = b.IndexAddr(b.GlobalAddr(tag_a), b.I64(0));
    b.LibCall(ir::LibFunc::kStrcpy, {name0, tag0});
    b.Store(seed, b.FieldAddr(n, "value"));
    Value* d1 = b.Sub(depth, b.I64(1));
    Value* l = b.Call(build, {d1, b.Mul(seed, b.I64(3))});
    Value* r = b.Call(build, {d1, b.Add(b.Mul(seed, b.I64(3)), b.I64(1))});
    b.Store(l, b.FieldAddr(n, "left"));
    b.Store(r, b.FieldAddr(n, "right"));
    b.Ret(n);
  }

  Function* main = m->CreateFunction("main", t.FunctionTy(t.I64(), {}));
  b.SetInsertPoint(main->CreateBlock("entry"));
  Value* r_slot = b.Alloca(t.I64(), "round");
  Value* root = b.Call(build, {b.I64(8), b.I64(1)});
  LoopBlocks rounds = BeginLoop(b, main, r_slot, b.I64(0), b.I64(15 * scale), "round");
  AccumulateChecksum(b, checksum, b.Call(traverse, {root}));
  EndLoop(b, rounds);
  EmitChecksumAndRet(b, checksum);
  return m;
}

}  // namespace

std::unique_ptr<Module> SpecNamd(int scale) { return BuildNamd(scale); }
std::unique_ptr<Module> SpecDealII(int scale) { return BuildDealII(scale); }
std::unique_ptr<Module> SpecSoplex(int scale) { return BuildSoplex(scale); }
std::unique_ptr<Module> SpecPovray(int scale) { return BuildPovray(scale); }
std::unique_ptr<Module> SpecOmnetpp(int scale) { return BuildOmnetpp(scale); }
std::unique_ptr<Module> SpecAstar(int scale) { return BuildAstar(scale); }
std::unique_ptr<Module> SpecXalancbmk(int scale) { return BuildXalanc(scale); }

}  // namespace cpi::workloads
