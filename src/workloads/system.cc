// System-level workloads: the Phoronix-like "server setting" suite (Fig. 4)
// and the three web-server scenarios of Table 4.
//
// The dynamic-page workload deliberately models the boxed-value style of the
// Python interpreter (universal void* payloads everywhere): §5.3 singles this
// pattern out as the source of CPI's unusually high overhead on dynamic pages
// and pybench.
#include "src/workloads/common.h"
#include "src/workloads/workloads.h"

namespace cpi::workloads {
namespace {

using ir::Function;
using ir::GlobalVariable;
using ir::IRBuilder;
using ir::Module;
using ir::StructType;
using ir::Value;

// --- static page -------------------------------------------------------------
// Copy a constant page into a response buffer, compute headers: almost pure
// memcpy/strlen over char data.
std::unique_ptr<Module> BuildStaticPage(int scale) {
  auto m = std::make_unique<Module>("server.static");
  auto& t = m->types();
  IRBuilder b(m.get());
  GlobalVariable* checksum = MakeChecksumGlobal(*m);

  const uint64_t page_size = 2048;
  GlobalVariable* page =
      m->CreateGlobal("page", t.ArrayOf(t.CharTy(), page_size), /*is_const=*/true);
  {
    std::vector<uint8_t> content(page_size);
    for (uint64_t i = 0; i < page_size - 1; ++i) {
      content[i] = static_cast<uint8_t>('a' + (i * 17) % 25);
    }
    content[page_size - 1] = 0;
    page->set_initializer(std::move(content));
  }

  Function* main = m->CreateFunction("main", t.FunctionTy(t.I64(), {}));
  b.SetInsertPoint(main->CreateBlock("entry"));
  Value* r_slot = b.Alloca(t.I64(), "req");
  Value* resp = b.Malloc(b.I64(page_size + 128), t.PointerTo(t.CharTy()), "resp");

  LoopBlocks reqs = BeginLoop(b, main, r_slot, b.I64(0), b.I64(400 * scale), "req");
  Value* page0 = b.IndexAddr(b.GlobalAddr(page), b.I64(0));
  Value* len = b.LibCall(ir::LibFunc::kStrlen, {page0});
  b.LibCall(ir::LibFunc::kMemcpy, {resp, page0, b.Add(len, b.I64(1))});
  AccumulateChecksum(b, checksum, len);
  EndLoop(b, reqs);

  b.Free(resp);
  EmitChecksumAndRet(b, checksum);
  return m;
}

// --- wsgi page -----------------------------------------------------------------
// Route dispatch through a handler table (structs embedding function
// pointers) plus string formatting of the response.
std::unique_ptr<Module> BuildWsgiPage(int scale) {
  auto m = std::make_unique<Module>("server.wsgi");
  auto& t = m->types();
  IRBuilder b(m.get());
  GlobalVariable* checksum = MakeChecksumGlobal(*m);

  const ir::FunctionType* handler_ty =
      t.FunctionTy(t.I64(), {t.PointerTo(t.CharTy()), t.I64()});
  StructType* route = t.GetOrCreateStruct("route");
  route->SetBody({{"name", t.ArrayOf(t.CharTy(), 16), 0},
                  {"handler", t.PointerTo(handler_ty), 0}});
  const uint64_t n_routes = 8;
  GlobalVariable* routes = m->CreateGlobal("routes", t.ArrayOf(route, n_routes));

  std::vector<Function*> handlers;
  for (int k = 0; k < 4; ++k) {
    Function* h = m->CreateFunction("handler_" + std::to_string(k), handler_ty);
    b.SetInsertPoint(h->CreateBlock("entry"));
    Value* buf = h->arg(0);
    Value* req = h->arg(1);
    Value* i_slot = b.Alloca(t.I64(), "i");
    LoopBlocks body = BeginLoop(b, h, i_slot, b.I64(0), b.I64(64), "fmt");
    Value* c = b.Binary(ir::BinOp::kAnd,
                        b.Add(b.Mul(body.index, b.I64(k + 3)), req), b.I64(63));
    b.Store(b.Cast(ir::CastKind::kTrunc, b.Add(c, b.I64('0')), t.CharTy()),
            b.IndexAddr(buf, body.index));
    EndLoop(b, body);
    b.Store(b.Char(0), b.IndexAddr(buf, b.I64(64)));
    b.Ret(b.LibCall(ir::LibFunc::kStrlen, {buf}));
    handlers.push_back(h);
  }

  Function* main = m->CreateFunction("main", t.FunctionTy(t.I64(), {}));
  b.SetInsertPoint(main->CreateBlock("entry"));
  Value* i_slot = b.Alloca(t.I64(), "i");
  Value* r_slot = b.Alloca(t.I64(), "req");
  Value* resp = b.Malloc(b.I64(256), t.PointerTo(t.CharTy()), "resp");

  // Register routes.
  LoopBlocks reg = BeginLoop(b, main, i_slot, b.I64(0), b.I64(n_routes), "reg");
  Value* entry = b.IndexAddr(b.GlobalAddr(routes), reg.index);
  Value* which = b.Binary(ir::BinOp::kAnd, reg.index, b.I64(3));
  Value* h01 = b.Select(b.ICmpEq(which, b.I64(0)), b.FuncAddr(handlers[0]),
                        b.FuncAddr(handlers[1]));
  Value* h23 = b.Select(b.ICmpEq(which, b.I64(2)), b.FuncAddr(handlers[2]),
                        b.FuncAddr(handlers[3]));
  Value* h = b.Select(b.ICmpSLt(which, b.I64(2)), h01, h23);
  b.Store(h, b.FieldAddr(entry, "handler"));
  EndLoop(b, reg);

  LoopBlocks reqs = BeginLoop(b, main, r_slot, b.I64(0), b.I64(300 * scale), "req");
  Value* idx = b.Binary(ir::BinOp::kURem, reqs.index, b.I64(n_routes));
  Value* entry2 = b.IndexAddr(b.GlobalAddr(routes), idx);
  Value* handler = b.Load(b.FieldAddr(entry2, "handler"));
  Value* len = b.IndirectCall(handler, {resp, reqs.index});
  AccumulateChecksum(b, checksum, len);
  EndLoop(b, reqs);

  b.Free(resp);
  EmitChecksumAndRet(b, checksum);
  return m;
}

// --- dynamic page ----------------------------------------------------------------
// Python-style template interpreter: boxed objects with void* payloads, a
// function-pointer opcode table, and string building. Universal pointers in
// the hot loop make this the worst case for CPI (138.8% in Table 4).
std::unique_ptr<Module> BuildDynamicPage(int scale) {
  auto m = std::make_unique<Module>("server.dynamic");
  auto& t = m->types();
  IRBuilder b(m.get());
  GlobalVariable* checksum = MakeChecksumGlobal(*m);

  // Boxed value: { tag, payload: void* } — the payload is a universal
  // pointer, so every access is CPI-instrumented.
  StructType* box = t.GetOrCreateStruct("pyobj");
  box->SetBody({{"tag", t.I64(), 0}, {"payload", t.VoidPtrTy(), 0}});

  const ir::FunctionType* op_ty = t.FunctionTy(t.VoidTy(), {t.I64()});
  GlobalVariable* optable = m->CreateGlobal("optable", t.ArrayOf(t.PointerTo(op_ty), 16));
  const uint64_t n_slots = 32;
  GlobalVariable* locals = m->CreateGlobal("locals", t.ArrayOf(t.PointerTo(box), n_slots));

  // box_new(tag, v): heap-allocate a box whose payload points at a heap i64.
  Function* box_new =
      m->CreateFunction("box_new", t.FunctionTy(t.PointerTo(box), {t.I64(), t.I64()}));
  {
    b.SetInsertPoint(box_new->CreateBlock("entry"));
    Value* obj = b.Malloc(b.I64(box->SizeInBytes()), t.PointerTo(box));
    Value* cell = b.Malloc(b.I64(8), t.PointerTo(t.I64()));
    b.Store(box_new->arg(1), cell);
    b.Store(box_new->arg(0), b.FieldAddr(obj, "tag"));
    b.Store(b.Bitcast(cell, t.VoidPtrTy()), b.FieldAddr(obj, "payload"));
    b.Ret(obj);
  }

  // box_val(slot): unbox locals[slot] -> i64.
  Function* box_val = m->CreateFunction("box_val", t.FunctionTy(t.I64(), {t.I64()}));
  {
    b.SetInsertPoint(box_val->CreateBlock("entry"));
    Value* obj = b.Load(b.IndexAddr(b.GlobalAddr(locals), box_val->arg(0)));
    Value* payload = b.Load(b.FieldAddr(obj, "payload"));
    Value* cell = b.Bitcast(payload, t.PointerTo(t.I64()));
    b.Ret(b.Load(cell));
  }

  // Opcode handlers over the locals table. Like CPython's eval loop, every
  // opcode is dominated by box traffic: loads/stores of object pointers
  // (sensitive: the box holds a void*) and of the void* payloads themselves
  // (universal) — with only occasional allocation.
  std::vector<Function*> ops;
  for (int k = 0; k < 4; ++k) {
    Function* op = m->CreateFunction("pyop_" + std::to_string(k), op_ty);
    b.SetInsertPoint(op->CreateBlock("entry"));
    Value* pc = op->arg(0);
    Value* s0 = b.Binary(ir::BinOp::kAnd, pc, b.I64(n_slots - 1));
    Value* s1 = b.Binary(ir::BinOp::kAnd, b.Add(pc, b.I64(1)), b.I64(n_slots - 1));
    Value* a = b.Call(box_val, {s0});
    Value* c = b.Call(box_val, {s1});
    Value* r;
    switch (k) {
      case 0: r = b.Add(a, c); break;
      case 1: r = b.Mul(a, b.I64(3)); break;
      case 2: r = b.Xor(a, c); break;
      default: r = b.Sub(c, a); break;
    }
    // In-place rebind: dst->tag = k; *(i64*)dst->payload = r — unboxing and
    // reboxing through the universal payload pointer.
    Value* slot0 = b.IndexAddr(b.GlobalAddr(locals), s0);
    Value* slot1 = b.IndexAddr(b.GlobalAddr(locals), s1);
    Value* dst = b.Load(slot0);
    b.Store(b.I64(k), b.FieldAddr(dst, "tag"));
    Value* payload = b.Load(b.FieldAddr(dst, "payload"));
    b.Store(r, b.Bitcast(payload, t.PointerTo(t.I64())));
    b.Store(payload, b.FieldAddr(dst, "payload"));  // refresh (INCREF-style)
    // Rotate the two locals (object-pointer shuffling, as bytecode stack
    // slots do).
    Value* other = b.Load(slot1);
    b.Store(other, slot0);
    b.Store(dst, slot1);
    b.Ret();
    ops.push_back(op);
  }

  Function* main = m->CreateFunction("main", t.FunctionTy(t.I64(), {}));
  b.SetInsertPoint(main->CreateBlock("entry"));
  Value* i_slot = b.Alloca(t.I64(), "i");
  Value* r_slot = b.Alloca(t.I64(), "req");
  Value* pc_slot = b.Alloca(t.I64(), "pc");

  // Initialise locals and the opcode table.
  LoopBlocks init = BeginLoop(b, main, i_slot, b.I64(0), b.I64(n_slots), "init");
  Value* boxed = b.Call(box_new, {b.I64(0), b.Mul(init.index, b.I64(7))});
  b.Store(boxed, b.IndexAddr(b.GlobalAddr(locals), init.index));
  EndLoop(b, init);
  LoopBlocks opinit = BeginLoop(b, main, i_slot, b.I64(0), b.I64(4), "opinit");
  for (int k = 0; k < 4; ++k) {
    Value* idx = b.Add(b.Mul(opinit.index, b.I64(4)), b.I64(k));
    b.Store(b.FuncAddr(ops[k]), b.IndexAddr(b.GlobalAddr(optable), idx));
  }
  EndLoop(b, opinit);

  // Request loop: each request runs a short template program.
  LoopBlocks reqs = BeginLoop(b, main, r_slot, b.I64(0), b.I64(120 * scale), "req");
  LoopBlocks prog = BeginLoop(b, main, pc_slot, b.I64(0), b.I64(24), "op");
  Value* op_idx = b.Binary(ir::BinOp::kAnd, b.Mul(prog.index, b.I64(5)), b.I64(15));
  Value* op_fn = b.Load(b.IndexAddr(b.GlobalAddr(optable), op_idx));
  b.IndirectCall(op_fn, {b.Add(prog.index, reqs.index)});
  EndLoop(b, prog);
  AccumulateChecksum(b, checksum, b.Call(box_val, {b.I64(0)}));
  EndLoop(b, reqs);

  EmitChecksumAndRet(b, checksum);
  return m;
}

// --- Phoronix-style workloads ----------------------------------------------------
// Mixes of the same building blocks with different emphases.

// openssl-like: big-integer style modular multiply-accumulate loops.
std::unique_ptr<Module> BuildOpenssl(int scale) {
  auto m = std::make_unique<Module>("phoronix.openssl");
  auto& t = m->types();
  IRBuilder b(m.get());
  GlobalVariable* checksum = MakeChecksumGlobal(*m);
  GlobalVariable* limbs = m->CreateGlobal("limbs", t.ArrayOf(t.I64(), 64));

  Function* main = m->CreateFunction("main", t.FunctionTy(t.I64(), {}));
  b.SetInsertPoint(main->CreateBlock("entry"));
  Value* i_slot = b.Alloca(t.I64(), "i");
  Value* r_slot = b.Alloca(t.I64(), "round");

  LoopBlocks init = BeginLoop(b, main, i_slot, b.I64(0), b.I64(64), "init");
  b.Store(b.Add(b.Mul(init.index, b.I64(0x9e3779b9)), b.I64(1)),
          b.IndexAddr(b.GlobalAddr(limbs), init.index));
  EndLoop(b, init);

  LoopBlocks rounds = BeginLoop(b, main, r_slot, b.I64(0), b.I64(1500 * scale), "round");
  LoopBlocks mul = BeginLoop(b, main, i_slot, b.I64(0), b.I64(63), "mul");
  Value* lo = b.Load(b.IndexAddr(b.GlobalAddr(limbs), mul.index));
  Value* hi = b.Load(b.IndexAddr(b.GlobalAddr(limbs), b.Add(mul.index, b.I64(1))));
  Value* prod = b.Add(b.Mul(lo, b.I64(0x10001)), b.Binary(ir::BinOp::kLShr, hi, b.I64(7)));
  b.Store(prod, b.IndexAddr(b.GlobalAddr(limbs), mul.index));
  EndLoop(b, mul);
  EndLoop(b, rounds);

  AccumulateChecksum(b, checksum, b.Load(b.IndexAddr(b.GlobalAddr(limbs), b.I64(5))));
  EmitChecksumAndRet(b, checksum);
  return m;
}

// sqlite-like: ordered table with a function-pointer comparator (qsort
// style).
std::unique_ptr<Module> BuildSqlite(int scale) {
  auto m = std::make_unique<Module>("phoronix.sqlite");
  auto& t = m->types();
  IRBuilder b(m.get());
  GlobalVariable* checksum = MakeChecksumGlobal(*m);
  const uint64_t n = 256;
  GlobalVariable* table = m->CreateGlobal("table", t.ArrayOf(t.I64(), n));

  const ir::FunctionType* cmp_ty = t.FunctionTy(t.I64(), {t.I64(), t.I64()});
  GlobalVariable* cmp_ptr = m->CreateGlobal("cmp", t.PointerTo(cmp_ty));
  Function* cmp_asc = m->CreateFunction("cmp_asc", cmp_ty);
  {
    b.SetInsertPoint(cmp_asc->CreateBlock("entry"));
    b.Ret(b.ICmpSLt(cmp_asc->arg(0), cmp_asc->arg(1)));
  }

  Function* main = m->CreateFunction("main", t.FunctionTy(t.I64(), {}));
  b.SetInsertPoint(main->CreateBlock("entry"));
  Value* i_slot = b.Alloca(t.I64(), "i");
  Value* r_slot = b.Alloca(t.I64(), "round");
  b.Store(b.FuncAddr(cmp_asc), b.GlobalAddr(cmp_ptr));

  LoopBlocks init = BeginLoop(b, main, i_slot, b.I64(0), b.I64(n), "init");
  b.Store(b.Binary(ir::BinOp::kAnd, b.Mul(init.index, b.I64(2654435761)), b.I64(0xffff)),
          b.IndexAddr(b.GlobalAddr(table), init.index));
  EndLoop(b, init);

  // Insertion passes: one bubble sweep per round using the comparator.
  LoopBlocks rounds = BeginLoop(b, main, r_slot, b.I64(0), b.I64(60 * scale), "round");
  LoopBlocks sweep = BeginLoop(b, main, i_slot, b.I64(0), b.I64(n - 1), "sweep");
  Value* a_slot = b.IndexAddr(b.GlobalAddr(table), sweep.index);
  Value* b_slot = b.IndexAddr(b.GlobalAddr(table), b.Add(sweep.index, b.I64(1)));
  Value* av = b.Load(a_slot);
  Value* bv = b.Load(b_slot);
  Value* cmp_fn = b.Load(b.GlobalAddr(cmp_ptr));
  Value* lt = b.IndirectCall(cmp_fn, {bv, av});
  Value* new_a = b.Select(lt, bv, av);
  Value* new_b = b.Select(lt, av, bv);
  b.Store(new_a, a_slot);
  b.Store(new_b, b_slot);
  EndLoop(b, sweep);
  // Perturb so later rounds keep working.
  Value* mix = b.Xor(b.Load(b.IndexAddr(b.GlobalAddr(table), b.I64(0))), rounds.index);
  b.Store(mix, b.IndexAddr(b.GlobalAddr(table), b.I64(n / 2)));
  EndLoop(b, rounds);

  AccumulateChecksum(b, checksum, b.Load(b.IndexAddr(b.GlobalAddr(table), b.I64(1))));
  EmitChecksumAndRet(b, checksum);
  return m;
}

// redis-like: open-addressing hash table of heap entries, no code pointers in
// the hot path.
std::unique_ptr<Module> BuildRedis(int scale) {
  auto m = std::make_unique<Module>("phoronix.redis");
  auto& t = m->types();
  IRBuilder b(m.get());
  GlobalVariable* checksum = MakeChecksumGlobal(*m);

  StructType* entry = t.GetOrCreateStruct("dict_entry");
  entry->SetBody({{"key", t.I64(), 0}, {"value", t.I64(), 0}});
  const uint64_t n = 512;
  GlobalVariable* dict = m->CreateGlobal("dict", t.ArrayOf(t.PointerTo(entry), n));

  Function* main = m->CreateFunction("main", t.FunctionTy(t.I64(), {}));
  b.SetInsertPoint(main->CreateBlock("entry"));
  Value* i_slot = b.Alloca(t.I64(), "i");
  Value* o_slot = b.Alloca(t.I64(), "op");

  LoopBlocks init = BeginLoop(b, main, i_slot, b.I64(0), b.I64(n), "init");
  Value* e = b.Malloc(b.I64(entry->SizeInBytes()), t.PointerTo(entry));
  b.Store(b.Mul(init.index, b.I64(11)), b.FieldAddr(e, "key"));
  b.Store(b.I64(0), b.FieldAddr(e, "value"));
  b.Store(e, b.IndexAddr(b.GlobalAddr(dict), init.index));
  EndLoop(b, init);

  LoopBlocks opsl = BeginLoop(b, main, o_slot, b.I64(0), b.I64(8000 * scale), "op");
  Value* h = b.Binary(ir::BinOp::kAnd,
                      b.Binary(ir::BinOp::kLShr, b.Mul(opsl.index, b.I64(2654435761)),
                               b.I64(13)),
                      b.I64(n - 1));
  Value* slot_e = b.Load(b.IndexAddr(b.GlobalAddr(dict), h));
  Value* v_slot = b.FieldAddr(slot_e, "value");
  b.Store(b.Add(b.Load(v_slot), b.I64(1)), v_slot);
  EndLoop(b, opsl);

  Value* probe = b.Load(b.IndexAddr(b.GlobalAddr(dict), b.I64(42)));
  AccumulateChecksum(b, checksum, b.Load(b.FieldAddr(probe, "value")));
  EmitChecksumAndRet(b, checksum);
  return m;
}

// apache-like: request parsing (string ops) + handler dispatch — the same
// profile as the wsgi scenario, run at double request volume.
std::unique_ptr<Module> BuildApache(int scale) { return BuildWsgiPage(scale * 2); }

}  // namespace

// C workload builders (defined in spec_c.cc).
std::unique_ptr<Module> SpecPerlbench(int scale);
std::unique_ptr<Module> SpecBzip2(int scale);
std::unique_ptr<Module> SpecGcc(int scale);
std::unique_ptr<Module> SpecMcf(int scale);
std::unique_ptr<Module> SpecMilc(int scale);
std::unique_ptr<Module> SpecGobmk(int scale);
std::unique_ptr<Module> SpecHmmer(int scale);
std::unique_ptr<Module> SpecSjeng(int scale);
std::unique_ptr<Module> SpecLibquantum(int scale);
std::unique_ptr<Module> SpecH264ref(int scale);
std::unique_ptr<Module> SpecLbm(int scale);
std::unique_ptr<Module> SpecSphinx3(int scale);
// C++ workload builders (defined in spec_cpp.cc).
std::unique_ptr<Module> SpecNamd(int scale);
std::unique_ptr<Module> SpecDealII(int scale);
std::unique_ptr<Module> SpecSoplex(int scale);
std::unique_ptr<Module> SpecPovray(int scale);
std::unique_ptr<Module> SpecOmnetpp(int scale);
std::unique_ptr<Module> SpecAstar(int scale);
std::unique_ptr<Module> SpecXalancbmk(int scale);

const std::vector<Workload>& SpecCpu2006() {
  static const std::vector<Workload>* workloads = new std::vector<Workload>{
      {"400.perlbench", "C", SpecPerlbench, {}},
      {"401.bzip2", "C", SpecBzip2, {}},
      {"403.gcc", "C", SpecGcc, {}},
      {"429.mcf", "C", SpecMcf, {}},
      {"433.milc", "C", SpecMilc, {}},
      {"444.namd", "C++", SpecNamd, {}},
      {"445.gobmk", "C", SpecGobmk, {}},
      {"447.dealII", "C++", SpecDealII, {}},
      {"450.soplex", "C++", SpecSoplex, {}},
      {"453.povray", "C++", SpecPovray, {}},
      {"456.hmmer", "C", SpecHmmer, {}},
      {"458.sjeng", "C", SpecSjeng, {}},
      {"462.libquantum", "C", SpecLibquantum, {}},
      {"464.h264ref", "C", SpecH264ref, {}},
      {"470.lbm", "C", SpecLbm, {}},
      {"471.omnetpp", "C++", SpecOmnetpp, {}},
      {"473.astar", "C++", SpecAstar, {}},
      {"482.sphinx3", "C", SpecSphinx3, {}},
      {"483.xalancbmk", "C++", SpecXalancbmk, {}},
  };
  return *workloads;
}

const std::vector<Workload>& Phoronix() {
  static const std::vector<Workload>* workloads = new std::vector<Workload>{
      {"compress-gzip", "C", SpecBzip2, {}},
      {"openssl", "C", BuildOpenssl, {}},
      {"sqlite", "C", BuildSqlite, {}},
      {"apache", "C", BuildApache, {}},
      {"redis", "C", BuildRedis, {}},
      {"ffmpeg", "C", SpecH264ref, {}},
      {"pybench", "C", BuildDynamicPage, {}},
      {"encode-mp3", "C", SpecSphinx3, {}},
  };
  return *workloads;
}

const std::vector<Workload>& WebServer() {
  static const std::vector<Workload>* workloads = new std::vector<Workload>{
      {"static-page", "C", BuildStaticPage, {}},
      {"wsgi-test-page", "C", BuildWsgiPage, {}},
      {"dynamic-page", "C", BuildDynamicPage, {}},
  };
  return *workloads;
}

const Workload* FindWorkload(const std::string& name) {
  for (const auto* list :
       {&SpecCpu2006(), &Phoronix(), &WebServer(), &ConcurrentServer(), &EventLoop(),
        &ChurnServer()}) {
    for (const Workload& w : *list) {
      if (w.name == name) {
        return &w;
      }
    }
  }
  return nullptr;
}

}  // namespace cpi::workloads
