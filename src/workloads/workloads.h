// Synthetic workload generators.
//
// The paper evaluates on SPEC CPU2006, the Phoronix suite, and a web-server
// stack — none of which can ship here. Each generator below reproduces the
// *pointer-usage profile* that drives CPI/CPS overhead for one benchmark the
// paper names (Table 2 correlates these fractions with Fig. 3's overheads):
// opcode-dispatch interpreters (perlbench), vtable-heavy C++ (omnetpp,
// xalancbmk, dealII), pointer-chasing (mcf), plain array number-crunching
// (milc, lbm, hmmer, libquantum), function-pointer-laden C (gcc, sjeng), and
// so on. Workload behaviour is deterministic given the input seed.
#ifndef CPI_SRC_WORKLOADS_WORKLOADS_H_
#define CPI_SRC_WORKLOADS_WORKLOADS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/levee.h"
#include "src/ir/module.h"

namespace cpi::workloads {

struct Workload {
  std::string name;      // paper benchmark it models, e.g. "400.perlbench"
  std::string language;  // "C" or "C++" (Table 1 splits averages by language)
  // Builds a fresh module; `scale` controls run length (1 = bench size;
  // tests use smaller values).
  std::function<std::unique_ptr<ir::Module>(int scale)> build;
  core::Input input;  // deterministic input fed to every run
};

// The 19 C/C++ SPEC CPU2006 rows of Table 2.
const std::vector<Workload>& SpecCpu2006();

// A Phoronix-like "server setting" suite (Fig. 4).
const std::vector<Workload>& Phoronix();

// The three web-server scenarios of Table 4 (static page / wsgi / dynamic
// page).
const std::vector<Workload>& WebServer();

// The Table 4 scenarios re-run as multi-worker servers on the simulated
// thread scheduler, plus a producer/consumer pointer-chasing pair. Race-free
// by construction, so counters are deterministic at any scheduler quantum.
const std::vector<Workload>& ConcurrentServer();

// The epoll-style event-loop server: per-worker keep-alive connection slabs
// (handler function pointers in worker-homed heap arenas), pseudo-random
// ready batches, connection churn against the shared handler table. The
// driving workload of the safe-store shard ablation (bench/ablation_shards).
// Kept out of ConcurrentServer() so the recorded table4_concurrent baseline
// is untouched.
const std::vector<Workload>& EventLoop();

// The event loop scaled to connection churn across a retiring/respawning
// worker pool: thousands of keep-alive connections published through a
// shared cell table, a bounded per-slot handoff queue with backpressure,
// request batching, and worker generations that inherit their predecessors'
// connection cells — the workload where epoch-based shard-ownership
// migration (Config::migrate) pays and static ownership cannot. Drives
// bench/ablation_churn; kept out of EventLoop()/ConcurrentServer() so the
// recorded ablation_shards and table4_concurrent baselines are untouched.
const std::vector<Workload>& ChurnServer();

const Workload* FindWorkload(const std::string& name);

}  // namespace cpi::workloads

#endif  // CPI_SRC_WORKLOADS_WORKLOADS_H_
