// Unit tests for the static analyses: the Fig. 7 sensitivity criterion
// (including recursive struct graphs), the CPS restriction, the safe-stack
// escape analysis, and the memory-op classifier with its char* heuristic and
// unsafe-cast dataflow.
#include <gtest/gtest.h>

#include "src/analysis/classify.h"
#include "src/analysis/safe_stack.h"
#include "src/analysis/sensitivity.h"
#include "src/ir/builder.h"

namespace cpi::analysis {
namespace {

using ir::IRBuilder;
using ir::Module;
using ir::StructType;
using ir::Value;

TEST(SensitivityTest, Fig7TruthTable) {
  Module m("t");
  auto& t = m.types();
  Sensitivity s(m);

  // sensitive(int) = false
  EXPECT_FALSE(s.IsSensitive(t.I64()));
  EXPECT_FALSE(s.IsSensitive(t.I8()));
  EXPECT_FALSE(s.IsSensitive(t.FloatTy()));
  // universal pointers are sensitive
  EXPECT_TRUE(s.IsSensitive(t.VoidPtrTy()));
  EXPECT_TRUE(s.IsSensitive(t.CharPtrTy()));
  // code pointers are sensitive
  const auto* fn_ty = t.FunctionTy(t.VoidTy(), {});
  EXPECT_TRUE(s.IsSensitive(t.PointerTo(fn_ty)));
  // pointer-to-sensitive is sensitive (recursion through p*)
  EXPECT_TRUE(s.IsSensitive(t.PointerTo(t.PointerTo(fn_ty))));
  EXPECT_TRUE(s.IsSensitive(t.PointerTo(t.VoidPtrTy())));
  // plain data pointers are not
  EXPECT_FALSE(s.IsSensitive(t.PointerTo(t.I64())));
  EXPECT_FALSE(s.IsSensitive(t.PointerTo(t.PointerTo(t.I64()))));
}

TEST(SensitivityTest, StructWithCodePointerMemberIsSensitive) {
  Module m("t");
  auto& t = m.types();
  const auto* fn_ty = t.FunctionTy(t.I64(), {});
  StructType* with_fp = t.GetOrCreateStruct("with_fp");
  with_fp->SetBody({{"x", t.I64(), 0}, {"fp", t.PointerTo(fn_ty), 0}});
  StructType* plain = t.GetOrCreateStruct("plain");
  plain->SetBody({{"x", t.I64(), 0}, {"y", t.FloatTy(), 0}});

  Sensitivity s(m);
  EXPECT_TRUE(s.IsSensitive(with_fp));
  EXPECT_TRUE(s.IsSensitive(t.PointerTo(with_fp)));  // the C++-object case
  EXPECT_FALSE(s.IsSensitive(plain));
  EXPECT_FALSE(s.IsSensitive(t.PointerTo(plain)));
  // Arrays inherit their element's sensitivity.
  EXPECT_TRUE(s.IsSensitive(t.ArrayOf(t.PointerTo(fn_ty), 4)));
  EXPECT_FALSE(s.IsSensitive(t.ArrayOf(t.I64(), 4)));
}

TEST(SensitivityTest, RecursiveStructsReachFixpoint) {
  Module m("t");
  auto& t = m.types();
  // Benign cycle: node -> node (no code pointers anywhere).
  StructType* node = t.GetOrCreateStruct("node");
  node->SetBody({{"next", t.PointerTo(node), 0}, {"v", t.I64(), 0}});
  // Mutual cycle where one side holds a function pointer.
  StructType* a = t.GetOrCreateStruct("a");
  StructType* bb = t.GetOrCreateStruct("b");
  const auto* fn_ty = t.FunctionTy(t.VoidTy(), {});
  a->SetBody({{"peer", t.PointerTo(bb), 0}});
  bb->SetBody({{"peer", t.PointerTo(a), 0}, {"fp", t.PointerTo(fn_ty), 0}});

  Sensitivity s(m);
  EXPECT_FALSE(s.IsSensitive(node));
  EXPECT_FALSE(s.IsSensitive(t.PointerTo(node)));
  EXPECT_TRUE(s.IsSensitive(a));
  EXPECT_TRUE(s.IsSensitive(bb));
  // Query again in the other order against a fresh analysis (cache paths).
  Sensitivity s2(m);
  EXPECT_TRUE(s2.IsSensitive(bb));
  EXPECT_TRUE(s2.IsSensitive(a));
  EXPECT_FALSE(s2.IsSensitive(node));
}

TEST(SensitivityTest, AnnotatedTypesBecomeSensitive) {
  // §4 "Sensitive data protection": the struct ucred analogue.
  Module m("t");
  auto& t = m.types();
  StructType* ucred = t.GetOrCreateStruct("ucred");
  ucred->SetBody({{"uid", t.I64(), 0}, {"gid", t.I64(), 0}});
  {
    Sensitivity s(m);
    EXPECT_FALSE(s.IsSensitive(ucred));
  }
  m.AnnotateSensitive(ucred);
  {
    Sensitivity s(m);
    EXPECT_TRUE(s.IsSensitive(ucred));
    EXPECT_TRUE(s.IsSensitive(t.PointerTo(ucred)));
  }
}

TEST(SensitivityTest, CpsRestriction) {
  Module m("t");
  auto& t = m.types();
  const auto* fn_ty = t.FunctionTy(t.VoidTy(), {});
  StructType* with_fp = t.GetOrCreateStruct("with_fp");
  with_fp->SetBody({{"fp", t.PointerTo(fn_ty), 0}});

  Sensitivity s(m);
  EXPECT_TRUE(s.IsSensitiveForCps(t.PointerTo(fn_ty)));
  EXPECT_TRUE(s.IsSensitiveForCps(t.VoidPtrTy()));
  // CPS leaves pointers-to-code-pointers and object pointers alone (§3.3).
  EXPECT_FALSE(s.IsSensitiveForCps(t.PointerTo(t.PointerTo(fn_ty))));
  EXPECT_FALSE(s.IsSensitiveForCps(t.PointerTo(with_fp)));
}

TEST(SensitivityTest, ContainsCodePointer) {
  Module m("t");
  auto& t = m.types();
  const auto* fn_ty = t.FunctionTy(t.VoidTy(), {});
  StructType* vt = t.GetOrCreateStruct("vt");
  vt->SetBody({{"m0", t.PointerTo(fn_ty), 0}});
  StructType* obj = t.GetOrCreateStruct("obj");
  obj->SetBody({{"vt", t.PointerTo(vt), 0}});

  EXPECT_TRUE(ContainsCodePointer(vt));
  EXPECT_TRUE(ContainsCodePointer(t.ArrayOf(t.PointerTo(fn_ty), 8)));
  // obj holds a *pointer to* a vtable, not code pointers themselves.
  EXPECT_FALSE(ContainsCodePointer(obj));
  EXPECT_FALSE(ContainsCodePointer(t.I64()));
}

// --- safe stack ------------------------------------------------------------

struct SafeStackCase {
  const char* name;
  // Builds a function and returns the alloca under test.
  std::function<ir::Instruction*(Module&, IRBuilder&, ir::Function*)> build;
  bool expect_safe;
};

class SafeStackParamTest : public ::testing::TestWithParam<SafeStackCase> {};

TEST_P(SafeStackParamTest, ClassifiesAlloca) {
  const SafeStackCase& c = GetParam();
  Module m("t");
  auto& t = m.types();
  ir::Function* f = m.CreateFunction("main", t.FunctionTy(t.I64(), {}));
  IRBuilder b(&m);
  b.SetInsertPoint(f->CreateBlock("entry"));
  ir::Instruction* alloca_inst = c.build(m, b, f);
  if (!b.insert_block()->HasTerminator()) {
    b.Ret(b.I64(0));
  }
  SafeStackResult r = AnalyzeSafeStack(*f);
  EXPECT_EQ(r.unsafe_allocas.count(alloca_inst) == 0, c.expect_safe) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    SafeStack, SafeStackParamTest,
    ::testing::Values(
        SafeStackCase{"scalar_load_store_is_safe",
                      [](Module& m, IRBuilder& b, ir::Function*) {
                        auto* a = b.Alloca(m.types().I64());
                        b.Store(b.I64(1), a);
                        b.Load(a);
                        return a;
                      },
                      true},
        SafeStackCase{"constant_index_in_bounds_is_safe",
                      [](Module& m, IRBuilder& b, ir::Function*) {
                        auto* a = b.Alloca(m.types().ArrayOf(m.types().I64(), 4));
                        b.Store(b.I64(1), b.IndexAddr(a, b.I64(3)));
                        return a;
                      },
                      true},
        SafeStackCase{"constant_index_out_of_bounds_is_unsafe",
                      [](Module& m, IRBuilder& b, ir::Function*) {
                        auto* a = b.Alloca(m.types().ArrayOf(m.types().I64(), 4));
                        b.Store(b.I64(1), b.IndexAddr(a, b.I64(4)));
                        return a;
                      },
                      false},
        SafeStackCase{"dynamic_index_is_unsafe",
                      [](Module& m, IRBuilder& b, ir::Function*) {
                        auto* a = b.Alloca(m.types().ArrayOf(m.types().I64(), 4));
                        ir::Value* i = b.Input();
                        b.Store(b.I64(1), b.IndexAddr(a, i));
                        return a;
                      },
                      false},
        SafeStackCase{"address_stored_to_memory_is_unsafe",
                      [](Module& m, IRBuilder& b, ir::Function*) {
                        auto& t = m.types();
                        auto* a = b.Alloca(t.I64());
                        auto* holder = b.Alloca(t.PointerTo(t.I64()));
                        b.Store(a, holder);
                        return a;
                      },
                      false},
        SafeStackCase{"address_passed_to_libcall_is_unsafe",
                      [](Module& m, IRBuilder& b, ir::Function*) {
                        auto* a = b.Alloca(m.types().ArrayOf(m.types().CharTy(), 16));
                        ir::Value* p = b.IndexAddr(a, b.I64(0));
                        b.LibCall(ir::LibFunc::kMemset, {p, b.I64(0), b.I64(16)});
                        return a;
                      },
                      false},
        SafeStackCase{"ptrtoint_escape_is_unsafe",
                      [](Module& m, IRBuilder& b, ir::Function*) {
                        auto* a = b.Alloca(m.types().I64());
                        b.PtrToInt(a);
                        return a;
                      },
                      false},
        SafeStackCase{"field_access_through_struct_is_safe",
                      [](Module& m, IRBuilder& b, ir::Function*) {
                        auto& t = m.types();
                        StructType* st = t.GetOrCreateStruct("pair");
                        st->SetBody({{"a", t.I64(), 0}, {"b", t.I64(), 0}});
                        auto* obj = b.Alloca(st);
                        b.Store(b.I64(1), b.FieldAddr(obj, "a"));
                        b.Load(b.FieldAddr(obj, "b"));
                        return obj;
                      },
                      true}),
    [](const ::testing::TestParamInfo<SafeStackCase>& info) { return info.param.name; });

// --- classifier --------------------------------------------------------------

TEST(ClassifierTest, FunctionPointerLoadsAreProtectedUnderBoth) {
  Module m("t");
  auto& t = m.types();
  const auto* fn_ty = t.FunctionTy(t.VoidTy(), {});
  ir::GlobalVariable* g = m.CreateGlobal("fp", t.PointerTo(fn_ty));
  ir::Function* f = m.CreateFunction("main", t.FunctionTy(t.I64(), {}));
  IRBuilder b(&m);
  b.SetInsertPoint(f->CreateBlock("entry"));
  ir::Value* load = b.Load(b.GlobalAddr(g));
  (void)load;
  b.Ret(b.I64(0));

  for (Protection p : {Protection::kCpi, Protection::kCps}) {
    ClassifyOptions o;
    o.protection = p;
    Classifier c(m, o);
    const auto& fc = c.ForFunction(f);
    int protected_ops = 0;
    for (const auto& [inst, cls] : fc.mem_ops) {
      if (cls == MemOpClass::kProtected) {
        ++protected_ops;
      }
    }
    EXPECT_EQ(protected_ops, 1) << (p == Protection::kCpi ? "cpi" : "cps");
  }
}

TEST(ClassifierTest, ObjectPointerOpsAreCpiOnlyNotCps) {
  Module m("t");
  auto& t = m.types();
  const auto* fn_ty = t.FunctionTy(t.VoidTy(), {});
  StructType* obj = t.GetOrCreateStruct("obj");
  obj->SetBody({{"fp", t.PointerTo(fn_ty), 0}});
  ir::GlobalVariable* g = m.CreateGlobal("slot", t.PointerTo(obj));
  ir::Function* f = m.CreateFunction("main", t.FunctionTy(t.I64(), {}));
  IRBuilder b(&m);
  b.SetInsertPoint(f->CreateBlock("entry"));
  b.Load(b.GlobalAddr(g));  // loads an obj* (sensitive for CPI, not CPS)
  b.Ret(b.I64(0));

  auto count_protected = [&](Protection p) {
    ClassifyOptions o;
    o.protection = p;
    Classifier c(m, o);
    int n = 0;
    for (const auto& [inst, cls] : c.ForFunction(f).mem_ops) {
      if (cls != MemOpClass::kNone) {
        ++n;
      }
    }
    return n;
  };
  EXPECT_EQ(count_protected(Protection::kCpi), 1);
  EXPECT_EQ(count_protected(Protection::kCps), 0);
}

TEST(ClassifierTest, CharStarHeuristicSuppressesStringOps) {
  Module m("t");
  auto& t = m.types();
  ir::GlobalVariable* msg = m.CreateGlobal("msg", t.ArrayOf(t.CharTy(), 8), true);
  ir::Function* f = m.CreateFunction("main", t.FunctionTy(t.I64(), {}));
  IRBuilder b(&m);
  b.SetInsertPoint(f->CreateBlock("entry"));
  // A char* that demonstrably holds a string (flows into strlen).
  ir::Value* p = b.IndexAddr(b.GlobalAddr(msg), b.I64(0));
  ir::Value* slot = b.Alloca(t.CharPtrTy());
  b.Store(p, slot);
  b.LibCall(ir::LibFunc::kStrlen, {p});
  b.Ret(b.I64(0));

  auto protected_count = [&](bool heuristic) {
    ClassifyOptions o;
    o.protection = Protection::kCpi;
    o.char_star_heuristic = heuristic;
    Classifier c(m, o);
    int n = 0;
    for (const auto& [inst, cls] : c.ForFunction(f).mem_ops) {
      if (cls != MemOpClass::kNone) {
        ++n;
      }
    }
    return n;
  };
  // With the heuristic the store of the string-y char* is unprotected; the
  // conservative analysis protects it as universal.
  EXPECT_LT(protected_count(true), protected_count(false));
}

TEST(ClassifierTest, CastDataflowTaintsIntSlots) {
  Module m("t");
  auto& t = m.types();
  const auto* fn_ty = t.FunctionTy(t.VoidTy(), {});
  ir::Function* f = m.CreateFunction("main", t.FunctionTy(t.I64(), {}));
  IRBuilder b(&m);
  b.SetInsertPoint(f->CreateBlock("entry"));
  // An i64 slot whose value is later cast to a function pointer: the §3.2.1
  // dataflow analysis must instrument its loads/stores.
  ir::Value* slot = b.Alloca(t.I64(), "raw");
  b.Store(b.I64(0), slot);
  ir::Value* raw = b.Load(slot);
  b.IntToPtr(raw, t.PointerTo(fn_ty));
  b.Ret(b.I64(0));

  auto protected_count = [&](bool dataflow) {
    ClassifyOptions o;
    o.protection = Protection::kCpi;
    o.cast_dataflow = dataflow;
    Classifier c(m, o);
    int n = 0;
    for (const auto& [inst, cls] : c.ForFunction(f).mem_ops) {
      if (cls != MemOpClass::kNone) {
        ++n;
      }
    }
    return n;
  };
  EXPECT_EQ(protected_count(false), 0);
  EXPECT_GE(protected_count(true), 2);  // the store and the load
}

TEST(ClassifierTest, MemcpyOfSensitiveStructIsChecked) {
  Module m("t");
  auto& t = m.types();
  const auto* fn_ty = t.FunctionTy(t.VoidTy(), {});
  StructType* holder = t.GetOrCreateStruct("holder");
  holder->SetBody({{"fp", t.PointerTo(fn_ty), 0}});
  ir::Function* f = m.CreateFunction("main", t.FunctionTy(t.I64(), {}));
  IRBuilder b(&m);
  b.SetInsertPoint(f->CreateBlock("entry"));
  ir::Value* a = b.Malloc(b.I64(8), t.PointerTo(holder));
  ir::Value* c = b.Malloc(b.I64(8), t.PointerTo(holder));
  ir::Value* ac = b.Bitcast(a, t.CharPtrTy());
  ir::Value* cc = b.Bitcast(c, t.CharPtrTy());
  auto* call = static_cast<ir::Instruction*>(b.LibCall(ir::LibFunc::kMemcpy, {cc, ac, b.I64(8)}));
  b.Ret(b.I64(0));

  ClassifyOptions o;
  Classifier classifier(m, o);
  EXPECT_EQ(classifier.ForFunction(f).checked_libcalls.count(call), 1u);
}

TEST(ClassifierTest, BoundsChecksOnSensitiveDerefRoots) {
  Module m("t");
  auto& t = m.types();
  const auto* fn_ty = t.FunctionTy(t.VoidTy(), {});
  StructType* obj = t.GetOrCreateStruct("obj2");
  obj->SetBody({{"fp", t.PointerTo(fn_ty), 0}, {"count", t.I64(), 0}});
  // main(obj* o) { return o->count; } — the load derefs a sensitive pointer.
  ir::Function* f = m.CreateFunction("main", t.FunctionTy(t.I64(), {}));
  ir::Function* g = m.CreateFunction("get", t.FunctionTy(t.I64(), {t.PointerTo(obj)}));
  IRBuilder b(&m);
  b.SetInsertPoint(g->CreateBlock("entry"));
  auto* load = static_cast<ir::Instruction*>(b.Load(b.FieldAddr(g->arg(0), "count")));
  b.Ret(load);
  b.SetInsertPoint(f->CreateBlock("entry"));
  b.Ret(b.I64(0));

  ClassifyOptions o;
  Classifier classifier(m, o);
  EXPECT_EQ(classifier.ForFunction(g).needs_bounds_check.count(load), 1u);
  // The load itself moves an i64, so it is not rewritten, only checked.
  EXPECT_EQ(classifier.ForFunction(g).mem_ops.at(load), MemOpClass::kNone);
}

TEST(ModuleStatsTest, PercentagesAreConsistent) {
  ModuleStats s;
  s.total_functions = 4;
  s.unsafe_frame_functions = 1;
  s.total_mem_ops = 200;
  s.instrumented_cpi = 20;
  s.instrumented_cps = 5;
  EXPECT_DOUBLE_EQ(s.FnuStackPercent(), 25.0);
  EXPECT_DOUBLE_EQ(s.MoCpiPercent(), 10.0);
  EXPECT_DOUBLE_EQ(s.MoCpsPercent(), 2.5);
  ModuleStats empty;
  EXPECT_DOUBLE_EQ(empty.FnuStackPercent(), 0.0);
  EXPECT_DOUBLE_EQ(empty.MoCpiPercent(), 0.0);
}

}  // namespace
}  // namespace cpi::analysis
