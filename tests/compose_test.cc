// CompositeScheme tests: the staged-pipeline contract that makes schemes
// stackable.
//
// The load-bearing properties:
//   - a 1-element composite is indistinguishable from its base scheme (same
//     instrumented program, same counters, same memory shape) across every
//     engine, O0/O1 and the scheduler-quantum sweep — composition adds no
//     cost and no behaviour of its own;
//   - composition is order-independent: a+b and b+a schedule the same
//     pipeline (built-ins carry pairwise-distinct stage orders), so every
//     simulated observable matches;
//   - stacks whose stage write tags overlap are rejected with a diagnostic
//     instead of silently picking an order;
//   - the chained return MAC composes onto CPI and still turns a saved-return
//     overwrite into a kPointerAuthFailure abort.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/attacks/ripe.h"
#include "src/core/scheme.h"
#include "src/ir/clone.h"
#include "src/workloads/workloads.h"

namespace cpi {
namespace {

using core::CompositeScheme;
using core::Config;
using core::Protection;
using core::ProtectionScheme;
using core::SchemeRegistry;
using vm::RunResult;

void ExpectIdentical(const RunResult& a, const RunResult& b, const std::string& label) {
  EXPECT_EQ(a.status, b.status) << label;
  EXPECT_EQ(a.violation, b.violation) << label;
  EXPECT_EQ(a.message, b.message) << label;
  EXPECT_EQ(a.exit_code, b.exit_code) << label;
  EXPECT_EQ(a.output, b.output) << label;

  const vm::Counters& ac = a.counters;
  const vm::Counters& bc = b.counters;
  EXPECT_EQ(ac.instructions, bc.instructions) << label;
  EXPECT_EQ(ac.cycles, bc.cycles) << label;
  EXPECT_EQ(ac.mem_accesses, bc.mem_accesses) << label;
  EXPECT_EQ(ac.safe_store_ops, bc.safe_store_ops) << label;
  EXPECT_EQ(ac.store_contended_ops, bc.store_contended_ops) << label;
  EXPECT_EQ(ac.seal_ops, bc.seal_ops) << label;
  EXPECT_EQ(ac.checks, bc.checks) << label;
  EXPECT_EQ(ac.calls, bc.calls) << label;
  EXPECT_EQ(ac.hijack_transfers, bc.hijack_transfers) << label;
  EXPECT_EQ(ac.cache_hits, bc.cache_hits) << label;
  EXPECT_EQ(ac.cache_misses, bc.cache_misses) << label;
  EXPECT_EQ(ac.thread_spawns, bc.thread_spawns) << label;

  EXPECT_EQ(a.memory.regular_bytes, b.memory.regular_bytes) << label;
  EXPECT_EQ(a.memory.safe_store_bytes, b.memory.safe_store_bytes) << label;
  EXPECT_EQ(a.memory.safe_stack_bytes, b.memory.safe_stack_bytes) << label;
  EXPECT_EQ(a.memory.safe_store_entries, b.memory.safe_store_entries) << label;
}

RunResult RunFresh(const workloads::Workload& w, const Config& config) {
  auto module = w.build(1);
  return core::InstrumentAndRun(*module, config, w.input);
}

std::unique_ptr<CompositeScheme> MustMake(
    std::vector<const ProtectionScheme*> parts) {
  std::string error;
  auto composite = CompositeScheme::Make(std::move(parts), &error);
  EXPECT_NE(composite, nullptr) << error;
  return composite;
}

// A 1-element composite must be byte-identical to its base scheme: the
// pipeline scheduler, the delta-summed costs and the merged runtime facets
// all reduce to the base scheme's own configuration. Swept across engines,
// O0/O1 and scheduler quanta on a threaded workload so any divergence in any
// tier's counter stream would surface.
TEST(CompositeTest, OneElementCompositeIsByteIdenticalToItsBase) {
  const workloads::Workload& w = workloads::ConcurrentServer().front();
  for (const char* base_name : {"cpi", "ptrenc", "safestack", "softbound"}) {
    const ProtectionScheme* base = SchemeRegistry::FindByName(base_name);
    ASSERT_NE(base, nullptr) << base_name;
    const auto composite = MustMake({base});
    for (vm::EngineKind engine :
         {vm::EngineKind::kReference, vm::EngineKind::kDecoded,
          vm::EngineKind::kFused}) {
      for (int opt : {0, 1}) {
        for (uint64_t quantum : {1ull, 64ull, 4096ull}) {
          Config base_config;
          base_config.protection = base->id();
          base_config.scheme = base;
          base_config.engine = engine;
          base_config.opt_level = opt;
          base_config.thread_quantum = quantum;
          Config comp_config = base_config;
          comp_config.scheme = composite.get();
          const std::string label = std::string(base_name) + " engine=" +
                                    vm::EngineKindName(engine) + " O" +
                                    std::to_string(opt) +
                                    " quantum=" + std::to_string(quantum);
          ExpectIdentical(RunFresh(w, base_config), RunFresh(w, comp_config),
                          label);
        }
      }
    }
  }
}

// a+b and b+a must be the same scheme: the scheduler orders stages by their
// declared order values, not by listing order. Checked on every simulated
// observable, for both a single-threaded SPEC model and a threaded server.
TEST(CompositeTest, CompositionIsOrderIndependent) {
  const ProtectionScheme* ptrenc = SchemeRegistry::FindByName("ptrenc");
  const ProtectionScheme* safestack = SchemeRegistry::FindByName("safestack");
  const ProtectionScheme* cpi_s = SchemeRegistry::FindByName("cpi");
  const ProtectionScheme* chain = SchemeRegistry::FindByName("ptrenc-ret-chain");
  ASSERT_TRUE(ptrenc && safestack && cpi_s && chain);

  const struct {
    const ProtectionScheme* a;
    const ProtectionScheme* b;
  } pairs[] = {{ptrenc, safestack}, {cpi_s, chain}};
  for (const auto& pair : pairs) {
    const auto ab = MustMake({pair.a, pair.b});
    const auto ba = MustMake({pair.b, pair.a});
    for (const workloads::Workload* w :
         {&workloads::SpecCpu2006().front(), &workloads::ConcurrentServer().front()}) {
      Config config_ab;
      config_ab.protection = ab->id();
      config_ab.scheme = ab.get();
      Config config_ba = config_ab;
      config_ba.protection = ba->id();
      config_ba.scheme = ba.get();
      ExpectIdentical(RunFresh(*w, config_ab), RunFresh(*w, config_ba),
                      std::string(ab->name()) + " vs " + ba->name() + " on " + w->name);
    }
  }
}

// Overlapping write tags have no order-independent meaning; Make must refuse
// them (and repeated components) with a diagnostic naming the clash.
TEST(CompositeTest, ConflictingStacksAreRejected) {
  const ProtectionScheme* cpi_s = SchemeRegistry::FindByName("cpi");
  const ProtectionScheme* cps = SchemeRegistry::FindByName("cps");
  const ProtectionScheme* safestack = SchemeRegistry::FindByName("safestack");
  const ProtectionScheme* ptrenc = SchemeRegistry::FindByName("ptrenc");
  const ProtectionScheme* chain = SchemeRegistry::FindByName("ptrenc-ret-chain");
  ASSERT_TRUE(cpi_s && cps && safestack && ptrenc && chain);

  std::string error;
  // Both rewrite pointer loads/stores and indirect calls.
  EXPECT_EQ(CompositeScheme::Make({cpi_s, cps}, &error), nullptr);
  EXPECT_NE(error.find("conflict"), std::string::npos) << error;

  // CPI already carries the safe-stack stage.
  error.clear();
  EXPECT_EQ(CompositeScheme::Make({cpi_s, safestack}, &error), nullptr);
  EXPECT_NE(error.find("stack-layout"), std::string::npos) << error;

  // PtrEnc owns the saved return-token format itself.
  error.clear();
  EXPECT_EQ(CompositeScheme::Make({ptrenc, chain}, &error), nullptr);
  EXPECT_NE(error.find("ret-mac"), std::string::npos) << error;

  // A repeated component is a conflict with itself.
  error.clear();
  EXPECT_EQ(CompositeScheme::Make({cpi_s, cpi_s}, &error), nullptr);
  EXPECT_FALSE(error.empty());
}

// Spec resolution: single names return the registered scheme, the blessed
// composite spellings return the pre-registered composite (idempotently),
// and unknown components are named in the error.
TEST(CompositeTest, FindOrRegisterCompositeResolvesSpecs) {
  std::string error;
  EXPECT_EQ(SchemeRegistry::FindOrRegisterComposite("cpi", &error),
            SchemeRegistry::FindByName("cpi"));

  const ProtectionScheme* blessed =
      SchemeRegistry::FindOrRegisterComposite("ptrenc+safestack", &error);
  ASSERT_NE(blessed, nullptr) << error;
  EXPECT_EQ(blessed, SchemeRegistry::FindByName("ptrenc+safestack"));
  EXPECT_EQ(blessed, SchemeRegistry::FindOrRegisterComposite("ptrenc+safestack", &error));

  EXPECT_EQ(SchemeRegistry::FindOrRegisterComposite("cpi+nope", &error), nullptr);
  EXPECT_NE(error.find("unknown scheme 'nope'"), std::string::npos) << error;

  error.clear();
  EXPECT_EQ(SchemeRegistry::FindOrRegisterComposite("cpi+cps", &error), nullptr);
  EXPECT_FALSE(error.empty());
}

// The PACStack-style chain on top of CPI: the composite keeps CPI's verdicts
// and the ret-chain stage still converts a saved-return overwrite into an
// authentication abort rather than a hijack.
TEST(CompositeTest, RetChainOnCpiTurnsReturnOverwriteIntoAuthAbort) {
  const ProtectionScheme* chain = SchemeRegistry::FindByName("ptrenc-ret-chain");
  ASSERT_NE(chain, nullptr);

  attacks::AttackSpec spec;
  spec.technique = attacks::Technique::kDirectOverflow;
  spec.location = attacks::Location::kStack;
  spec.target = attacks::Target::kReturnAddress;

  // Standalone: return protection only, so the chain is the defense.
  Config config;
  config.protection = chain->id();
  config.scheme = chain;
  attacks::AttackResult r = attacks::RunAttack(spec, config);
  EXPECT_FALSE(r.Hijacked()) << r.message;
  EXPECT_EQ(r.violation, runtime::Violation::kPointerAuthFailure) << r.message;

  // Stacked on CPI: nothing hijacks anywhere in the matrix.
  const ProtectionScheme* stacked =
      SchemeRegistry::FindByName("cpi+ptrenc-ret-chain");
  ASSERT_NE(stacked, nullptr);
  Config stacked_config;
  stacked_config.protection = stacked->id();
  stacked_config.scheme = stacked;
  for (const auto& result : attacks::RunAttackMatrix(stacked_config)) {
    EXPECT_FALSE(result.Hijacked()) << result.spec.Name() << ": " << result.message;
  }
}

}  // namespace
}  // namespace cpi
