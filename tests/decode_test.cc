// Differential tests for the predecoded threaded-dispatch engine.
//
// The decoded engine is a pure wall-clock optimisation: its simulated
// behaviour — cycle counts, cache hits/misses, memory footprint, program
// output, violations — must be bit-identical to the tree-walking reference
// interpreter. These tests run both engines over every workload x every
// registered protection scheme (plus attack programs that exercise the
// hijack/crash/violation paths) and assert full RunResult equality.
//
// ir::CloneModule rides on the same invariant: a clone must instrument and
// run exactly like a fresh build.
#include <gtest/gtest.h>

#include "src/attacks/ripe.h"
#include "src/core/scheme.h"
#include "src/ir/clone.h"
#include "src/workloads/measure.h"
#include "src/workloads/workloads.h"

namespace cpi {
namespace {

using core::Config;
using core::ProtectionScheme;
using vm::RunResult;

void ExpectIdentical(const RunResult& decoded, const RunResult& reference,
                     const std::string& label) {
  EXPECT_EQ(decoded.status, reference.status) << label;
  EXPECT_EQ(decoded.violation, reference.violation) << label;
  EXPECT_EQ(decoded.message, reference.message) << label;
  EXPECT_EQ(decoded.exit_code, reference.exit_code) << label;
  EXPECT_EQ(decoded.output, reference.output) << label;

  const vm::Counters& dc = decoded.counters;
  const vm::Counters& rc = reference.counters;
  EXPECT_EQ(dc.instructions, rc.instructions) << label;
  EXPECT_EQ(dc.cycles, rc.cycles) << label;
  EXPECT_EQ(dc.mem_accesses, rc.mem_accesses) << label;
  EXPECT_EQ(dc.safe_store_ops, rc.safe_store_ops) << label;
  EXPECT_EQ(dc.store_contended_ops, rc.store_contended_ops) << label;
  EXPECT_EQ(dc.seal_ops, rc.seal_ops) << label;
  EXPECT_EQ(dc.checks, rc.checks) << label;
  EXPECT_EQ(dc.calls, rc.calls) << label;
  EXPECT_EQ(dc.hijack_transfers, rc.hijack_transfers) << label;
  EXPECT_EQ(dc.cache_hits, rc.cache_hits) << label;
  EXPECT_EQ(dc.cache_misses, rc.cache_misses) << label;

  const vm::MemoryFootprint& dm = decoded.memory;
  const vm::MemoryFootprint& rm = reference.memory;
  EXPECT_EQ(dm.regular_bytes, rm.regular_bytes) << label;
  EXPECT_EQ(dm.safe_store_bytes, rm.safe_store_bytes) << label;
  EXPECT_EQ(dm.safe_stack_bytes, rm.safe_stack_bytes) << label;
  EXPECT_EQ(dm.safe_store_entries, rm.safe_store_entries) << label;
}

// Instrument + run one clone of `built` per engine and compare.
void RunBothEngines(const ir::Module& built, Config config, const core::Input& input,
                    const std::string& label) {
  config.reference_interpreter = false;
  auto decoded_module = ir::CloneModule(built);
  const RunResult decoded = core::InstrumentAndRun(*decoded_module, config, input);

  config.reference_interpreter = true;
  auto reference_module = ir::CloneModule(built);
  const RunResult reference = core::InstrumentAndRun(*reference_module, config, input);

  ExpectIdentical(decoded, reference, label);
}

// The acceptance bar: every workload x every registered scheme agrees on the
// whole RunResult, down to individual counter values.
TEST(DecodeDifferentialTest, AllWorkloadsAllSchemes) {
  for (const workloads::Workload& w : workloads::SpecCpu2006()) {
    auto built = w.build(1);
    for (const ProtectionScheme* s : core::SchemeRegistry::All()) {
      Config config;
      config.protection = s->id();
      config.scheme = s;  // composites run as composites, not their first part
      RunBothEngines(*built, config, w.input, w.name + " / " + s->name());
    }
  }
}

// The hash and two-level store organisations exercise different safe-store
// touch patterns (probe chains, directory walks) and the checked-libcall
// CopyRange path; cover them for the store-backed schemes.
TEST(DecodeDifferentialTest, AlternativeStoreOrganisations) {
  for (const workloads::Workload& w : workloads::SpecCpu2006()) {
    auto built = w.build(1);
    for (core::Protection p : {core::Protection::kCps, core::Protection::kCpi}) {
      for (runtime::StoreKind store :
           {runtime::StoreKind::kHash, runtime::StoreKind::kTwoLevel}) {
        Config config;
        config.protection = p;
        config.store = store;
        RunBothEngines(*built, config, w.input,
                       w.name + " / " + core::ProtectionName(p) + " / " +
                           runtime::StoreKindName(store));
      }
    }
  }
}

// Attack programs drive the paths benign workloads never reach: corrupted
// return tokens, hijack transfers into no-continuation frames, protection
// aborts, and plain crashes. Both engines must tell the same story.
TEST(DecodeDifferentialTest, AttackMatrixAllSchemes) {
  const std::vector<attacks::AttackSpec> matrix = attacks::GenerateAttackMatrix();
  for (const ProtectionScheme* s : core::SchemeRegistry::All()) {
    for (const attacks::AttackSpec& spec : matrix) {
      Config config;
      config.protection = s->id();
      config.scheme = s;

      config.reference_interpreter = false;
      const attacks::AttackResult decoded = attacks::RunAttack(spec, config);

      config.reference_interpreter = true;
      const attacks::AttackResult reference = attacks::RunAttack(spec, config);

      const std::string label = spec.Name() + " / " + s->name();
      EXPECT_EQ(decoded.outcome, reference.outcome) << label;
      EXPECT_EQ(decoded.status, reference.status) << label;
      EXPECT_EQ(decoded.violation, reference.violation) << label;
      EXPECT_EQ(decoded.message, reference.message) << label;
    }
  }
}

// CloneModule preserves ordinals, layout and numbering: a clone's run is
// bit-identical to the original's under the same configuration.
TEST(CloneModuleTest, CloneRunsIdenticallyToFreshBuild) {
  for (const workloads::Workload& w : workloads::SpecCpu2006()) {
    for (core::Protection p :
         {core::Protection::kNone, core::Protection::kCpi, core::Protection::kPtrEnc}) {
      Config config;
      config.protection = p;

      auto original = w.build(1);
      auto clone = ir::CloneModule(*original);

      const RunResult from_original = core::InstrumentAndRun(*original, config, w.input);
      const RunResult from_clone = core::InstrumentAndRun(*clone, config, w.input);
      ExpectIdentical(from_clone, from_original,
                      w.name + " clone / " + core::ProtectionName(p));
    }
  }
}

// A clone is fully detached from its source: instrumenting the clone must
// not touch the original module.
TEST(CloneModuleTest, CloneIsIndependent) {
  const workloads::Workload& w = workloads::SpecCpu2006().front();
  auto original = w.build(1);
  const size_t before = original->InstructionCount();

  auto clone = ir::CloneModule(*original);
  Config config;
  config.protection = core::Protection::kCpi;
  core::Compiler compiler(config);
  compiler.Instrument(*clone);

  EXPECT_EQ(original->InstructionCount(), before);
  EXPECT_FALSE(original->protection().cpi);
  EXPECT_TRUE(clone->protection().cpi);
  EXPECT_GT(clone->InstructionCount(), before);
}

}  // namespace
}  // namespace cpi
